// Execution-semantics tests, parameterized over every engine tier and the
// two principal bounds strategies: the same Wasm module must behave
// identically (WebAssembly spec semantics) everywhere — trapping division,
// masked shifts, NaN-aware min/max, trapping float->int truncation, memory
// bounds, CFI-checked indirect calls, call-stack exhaustion.
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "wasm/builder.hpp"

namespace sledge::engine {
namespace {

using sledge::testutil::run_module;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using V = wasm::ValType;

class ExecTest
    : public ::testing::TestWithParam<std::tuple<Tier, BoundsStrategy>> {
 protected:
  WasmModule::Config config() const {
    WasmModule::Config cfg;
    cfg.tier = std::get<0>(GetParam());
    cfg.strategy = std::get<1>(GetParam());
    return cfg;
  }

  // Builds a module with one exported function "f".
  template <typename Fn>
  std::vector<uint8_t> module_with(std::vector<V> params,
                                   std::vector<V> results, Fn&& emit,
                                   bool with_memory = true) {
    ModuleBuilder b;
    uint32_t t = b.add_type(std::move(params), std::move(results));
    if (with_memory) b.set_memory(1, 4);
    uint32_t f = b.declare_function(t);
    emit(b.function(f));
    b.export_function("f", f);
    return b.build();
  }

  InvokeOutcome run(const std::vector<uint8_t>& bytes,
                    const std::vector<Value>& args) {
    return run_module(bytes, config(), "f", args);
  }
};

TEST_P(ExecTest, AddWraps) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32Add);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(INT32_MAX), Value::i32(1)});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), INT32_MIN);
}

TEST_P(ExecTest, DivByZeroTraps) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32DivS);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(10), Value::i32(0)});
  EXPECT_EQ(out.trap, TrapCode::kDivByZero) << out.describe();
}

TEST_P(ExecTest, DivOverflowTraps) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32DivS);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(INT32_MIN), Value::i32(-1)});
  EXPECT_EQ(out.trap, TrapCode::kIntegerOverflow);
}

TEST_P(ExecTest, RemOfMinByMinusOneIsZero) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32RemS);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(INT32_MIN), Value::i32(-1)});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 0);
}

TEST_P(ExecTest, ShiftCountsAreMasked) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32Shl);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(1), Value::i32(33)});  // 33 & 31 == 1
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value->as_i32(), 2);
}

TEST_P(ExecTest, RotlWorks) {
  auto bytes = module_with({V::kI32, V::kI32}, {V::kI32},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kI32Rotl);
                             f.end();
                           });
  auto out = run(bytes, {Value::i32(static_cast<int32_t>(0x80000001u)),
                         Value::i32(1)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(static_cast<uint32_t>(out.value->as_i32()), 3u);
}

TEST_P(ExecTest, ClzCtzOfZero) {
  auto bytes = module_with({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.emit(Op::kI32Clz);
    f.local_get(0);
    f.emit(Op::kI32Ctz);
    f.emit(Op::kI32Add);
    f.end();
  });
  auto out = run(bytes, {Value::i32(0)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value->as_i32(), 64);  // 32 + 32
}

TEST_P(ExecTest, FloatMinPropagatesNaN) {
  auto bytes = module_with({V::kF64, V::kF64}, {V::kF64},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kF64Min);
                             f.end();
                           });
  auto out = run(bytes, {Value::f64(std::nan("")), Value::f64(1.0)});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isnan(out.value->as_f64()));
}

TEST_P(ExecTest, FloatMinNegativeZero) {
  auto bytes = module_with({V::kF64, V::kF64}, {V::kF64},
                           [](FunctionBuilder& f) {
                             f.local_get(0);
                             f.local_get(1);
                             f.emit(Op::kF64Min);
                             f.end();
                           });
  auto out = run(bytes, {Value::f64(0.0), Value::f64(-0.0)});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::signbit(out.value->as_f64()));
}

TEST_P(ExecTest, TruncNaNTraps) {
  auto bytes = module_with({V::kF64}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.emit(Op::kI32TruncF64S);
    f.end();
  });
  auto out = run(bytes, {Value::f64(std::nan(""))});
  EXPECT_EQ(out.trap, TrapCode::kInvalidConversion);
}

TEST_P(ExecTest, TruncOutOfRangeTraps) {
  auto bytes = module_with({V::kF64}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.emit(Op::kI32TruncF64S);
    f.end();
  });
  EXPECT_EQ(run(bytes, {Value::f64(3e10)}).trap, TrapCode::kIntegerOverflow);
  auto ok = run(bytes, {Value::f64(-2147483648.0)});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value->as_i32(), INT32_MIN);
}

TEST_P(ExecTest, SignExtension) {
  auto bytes = module_with({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.emit(Op::kI32Extend8S);
    f.end();
  });
  auto out = run(bytes, {Value::i32(0x180)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value->as_i32(), -128);
}

TEST_P(ExecTest, MemoryLoadStoreWidths) {
  auto bytes = module_with({}, {V::kI64}, [](FunctionBuilder& f) {
    // store i64 at 8, read back pieces.
    f.i32_const(8);
    f.i64_const(static_cast<int64_t>(0x1122334455667788ull));
    f.mem(Op::kI64Store);
    f.i32_const(8);
    f.mem(Op::kI64Load8U);  // LE low byte: 0x88
    f.i32_const(9);
    f.mem(Op::kI64Load16S);  // bytes 9..10 = 0x6677 -> positive
    f.emit(Op::kI64Add);
    f.end();
  });
  auto out = run(bytes, {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i64(), 0x88 + 0x6677);
}

TEST_P(ExecTest, OutOfBoundsLoadTraps) {
  auto bytes = module_with({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.mem(Op::kI32Load);
    f.end();
  });
  // Memory is 1 page (65536 bytes): offset 65533 + width 4 is out.
  auto out = run(bytes, {Value::i32(65533)});
  if (std::get<1>(GetParam()) == BoundsStrategy::kNone) {
    GTEST_SKIP() << "no bounds checks in kNone mode";
  }
  EXPECT_EQ(out.trap, TrapCode::kOutOfBoundsMemory) << out.describe();
}

TEST_P(ExecTest, FarOutOfBoundsLoadTraps) {
  auto bytes = module_with({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
    f.local_get(0);
    f.mem(Op::kI32Load);
    f.end();
  });
  if (std::get<1>(GetParam()) == BoundsStrategy::kNone) {
    GTEST_SKIP() << "no bounds checks in kNone mode";
  }
  auto out = run(bytes, {Value::i32(static_cast<int32_t>(0x7FFFFFF0u))});
  EXPECT_EQ(out.trap, TrapCode::kOutOfBoundsMemory) << out.describe();
}

TEST_P(ExecTest, MemoryGrowAndSize) {
  auto bytes = module_with({}, {V::kI32}, [](FunctionBuilder& f) {
    f.i32_const(2);
    f.memory_grow();       // old size = 1
    f.memory_size();       // new size = 3
    f.emit(Op::kI32Mul);   // 1 * 3
    f.end();
  });
  auto out = run(bytes, {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 3);
}

TEST_P(ExecTest, MemoryGrowBeyondMaxFails) {
  auto bytes = module_with({}, {V::kI32}, [](FunctionBuilder& f) {
    f.i32_const(100);  // max is 4 pages
    f.memory_grow();
    f.end();
  });
  auto out = run(bytes, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value->as_i32(), -1);
}

TEST_P(ExecTest, GrownMemoryIsAccessible) {
  auto bytes = module_with({}, {V::kI32}, [](FunctionBuilder& f) {
    f.i32_const(1);
    f.memory_grow();
    f.emit(Op::kDrop);
    f.i32_const(70000);  // in page 2
    f.i32_const(77);
    f.mem(Op::kI32Store);
    f.i32_const(70000);
    f.mem(Op::kI32Load);
    f.end();
  });
  auto out = run(bytes, {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 77);
}

TEST_P(ExecTest, GlobalsMutate) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {V::kI32});
  b.add_global(V::kI32, true, 10);
  uint32_t f = b.declare_function(t);
  auto& fb = b.function(f);
  fb.global_get(0);
  fb.i32_const(5);
  fb.emit(Op::kI32Add);
  fb.global_set(0);
  fb.global_get(0);
  fb.end();
  b.export_function("f", f);
  auto out = run(b.build(), {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 15);
}

TEST_P(ExecTest, BrTableSelectsCase) {
  auto bytes = module_with({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
    f.block();          // depth 2 -> returns 100
    f.block();          // depth 1 -> returns 200
    f.block();          // depth 0 -> returns 300
    f.local_get(0);
    f.br_table({0, 1}, 2);
    f.end();
    f.i32_const(300);
    f.ret();
    f.end();
    f.i32_const(200);
    f.ret();
    f.end();
    f.i32_const(100);
    f.end();
  });
  auto r0 = run(bytes, {Value::i32(0)});
  auto r1 = run(bytes, {Value::i32(1)});
  auto r9 = run(bytes, {Value::i32(9)});  // default
  ASSERT_TRUE(r0.ok() && r1.ok() && r9.ok());
  EXPECT_EQ(r0.value->as_i32(), 300);
  EXPECT_EQ(r1.value->as_i32(), 200);
  EXPECT_EQ(r9.value->as_i32(), 100);
}

TEST_P(ExecTest, UnreachableTraps) {
  auto bytes = module_with({}, {}, [](FunctionBuilder& f) {
    f.emit(Op::kUnreachable);
    f.end();
  });
  EXPECT_EQ(run(bytes, {}).trap, TrapCode::kUnreachable);
}

TEST_P(ExecTest, CallIndirectDispatches) {
  ModuleBuilder b;
  uint32_t t_i = b.add_type({V::kI32}, {V::kI32});
  uint32_t t_entry = b.add_type({V::kI32, V::kI32}, {V::kI32});
  b.set_table(2, 2);
  uint32_t f_dbl = b.declare_function(t_i);
  uint32_t f_neg = b.declare_function(t_i);
  uint32_t f_go = b.declare_function(t_entry);
  {
    auto& f = b.function(f_dbl);
    f.local_get(0);
    f.local_get(0);
    f.emit(Op::kI32Add);
    f.end();
  }
  {
    auto& f = b.function(f_neg);
    f.i32_const(0);
    f.local_get(0);
    f.emit(Op::kI32Sub);
    f.end();
  }
  {
    auto& f = b.function(f_go);
    f.local_get(0);      // arg
    f.local_get(1);      // table index
    f.call_indirect(t_i);
    f.end();
  }
  b.add_element(0, {f_dbl, f_neg});
  b.export_function("f", f_go);
  auto bytes = b.build();
  auto r0 = run(bytes, {Value::i32(21), Value::i32(0)});
  auto r1 = run(bytes, {Value::i32(21), Value::i32(1)});
  ASSERT_TRUE(r0.ok() && r1.ok()) << r0.describe() << r1.describe();
  EXPECT_EQ(r0.value->as_i32(), 42);
  EXPECT_EQ(r1.value->as_i32(), -21);
}

TEST_P(ExecTest, CallIndirectTypeMismatchTrapsCfi) {
  ModuleBuilder b;
  uint32_t t_i = b.add_type({V::kI32}, {V::kI32});
  uint32_t t_d = b.add_type({V::kF64}, {V::kF64});
  uint32_t t_entry = b.add_type({}, {V::kF64});
  b.set_table(1, 1);
  uint32_t f_int = b.declare_function(t_i);
  uint32_t f_go = b.declare_function(t_entry);
  {
    auto& f = b.function(f_int);
    f.local_get(0);
    f.end();
  }
  {
    auto& f = b.function(f_go);
    f.f64_const(1.0);
    f.i32_const(0);
    f.call_indirect(t_d);  // table holds an (i32)->i32 function
    f.end();
  }
  b.add_element(0, {f_int});
  b.export_function("f", f_go);
  EXPECT_EQ(run(b.build(), {}).trap, TrapCode::kIndirectCallType);
}

TEST_P(ExecTest, CallIndirectNullAndOobTrap) {
  ModuleBuilder b;
  uint32_t t_v = b.add_type({}, {});
  uint32_t t_entry = b.add_type({V::kI32}, {});
  b.set_table(3, 3);  // entries 0..2, none initialized
  uint32_t f_go = b.declare_function(t_entry);
  {
    auto& f = b.function(f_go);
    f.local_get(0);
    f.call_indirect(t_v);
    f.end();
  }
  b.export_function("f", f_go);
  auto bytes = b.build();
  EXPECT_EQ(run(bytes, {Value::i32(1)}).trap, TrapCode::kIndirectCallNull);
  EXPECT_EQ(run(bytes, {Value::i32(50)}).trap, TrapCode::kIndirectCallOob);
}

TEST_P(ExecTest, InfiniteRecursionExhaustsCallStack) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {});
  uint32_t f = b.declare_function(t);
  auto& fb = b.function(f);
  fb.call(f);
  fb.end();
  b.export_function("f", f);
  EXPECT_EQ(run(b.build(), {}).trap, TrapCode::kCallStackExhausted);
}

TEST_P(ExecTest, LoopComputesFactorial) {
  auto bytes = module_with({V::kI32}, {V::kI64}, [](FunctionBuilder& f) {
    uint32_t acc = f.add_local(V::kI64);
    uint32_t i = f.add_local(V::kI32);
    f.i64_const(1);
    f.local_set(acc);
    f.i32_const(1);
    f.local_set(i);
    f.block();
    f.loop();
    f.local_get(i);
    f.local_get(0);
    f.emit(Op::kI32GtS);
    f.br_if(1);
    f.local_get(acc);
    f.local_get(i);
    f.emit(Op::kI64ExtendI32S);
    f.emit(Op::kI64Mul);
    f.local_set(acc);
    f.local_get(i);
    f.i32_const(1);
    f.emit(Op::kI32Add);
    f.local_set(i);
    f.br(0);
    f.end();
    f.end();
    f.local_get(acc);
    f.end();
  });
  auto out = run(bytes, {Value::i32(20)});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i64(), 2432902008176640000ll);
}

TEST_P(ExecTest, DataSegmentsInitializeMemory) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {V::kI32});
  b.set_memory(1, 1);
  b.add_data(100, {0x0D, 0xF0, 0xAD, 0x0B});
  uint32_t f = b.declare_function(t);
  auto& fb = b.function(f);
  fb.i32_const(100);
  fb.mem(Op::kI32Load);
  fb.end();
  b.export_function("f", f);
  auto out = run(b.build(), {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(static_cast<uint32_t>(out.value->as_i32()), 0x0BADF00Du);
}

TEST_P(ExecTest, StartFunctionRuns) {
  ModuleBuilder b;
  uint32_t t_v = b.add_type({}, {});
  uint32_t t_r = b.add_type({}, {V::kI32});
  b.add_global(V::kI32, true, 0);
  uint32_t f_start = b.declare_function(t_v);
  uint32_t f_read = b.declare_function(t_r);
  {
    auto& f = b.function(f_start);
    f.i32_const(1234);
    f.global_set(0);
    f.end();
  }
  {
    auto& f = b.function(f_read);
    f.global_get(0);
    f.end();
  }
  b.set_start(f_start);
  b.export_function("f", f_read);
  auto out = run(b.build(), {});
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 1234);
}

TEST_P(ExecTest, SelectPicksByCondition) {
  auto bytes = module_with({V::kI32}, {V::kF64}, [](FunctionBuilder& f) {
    f.f64_const(2.5);
    f.f64_const(-7.25);
    f.local_get(0);
    f.emit(Op::kSelect);
    f.end();
  });
  auto t = run(bytes, {Value::i32(1)});
  auto e = run(bytes, {Value::i32(0)});
  ASSERT_TRUE(t.ok() && e.ok());
  EXPECT_DOUBLE_EQ(t.value->as_f64(), 2.5);
  EXPECT_DOUBLE_EQ(e.value->as_f64(), -7.25);
}

TEST_P(ExecTest, HostImportRoundTrip) {
  // Uses the serverless ABI: copy request into memory and write it back.
  ModuleBuilder b;
  uint32_t t_rr = b.add_type({V::kI32, V::kI32, V::kI32}, {V::kI32});
  uint32_t t_rw = b.add_type({V::kI32, V::kI32}, {V::kI32});
  uint32_t t_len = b.add_type({}, {V::kI32});
  uint32_t imp_len = b.add_import("env", "req_len", t_len);
  uint32_t imp_read = b.add_import("env", "req_read", t_rr);
  uint32_t imp_write = b.add_import("env", "resp_write", t_rw);
  b.set_memory(1, 1);
  uint32_t f = b.declare_function(t_len);
  auto& fb = b.function(f);
  uint32_t len = fb.add_local(V::kI32);
  fb.call(imp_len);
  fb.local_set(len);
  fb.i32_const(0);   // dst
  fb.i32_const(0);   // off
  fb.local_get(len);
  fb.call(imp_read);
  fb.emit(Op::kDrop);
  fb.i32_const(0);
  fb.local_get(len);
  fb.call(imp_write);
  fb.end();
  b.export_function("f", f);

  ServerlessEnv env;
  env.request = {5, 6, 7, 8, 9};
  auto out = run_module(b.build(), config(), "f", {}, &env);
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(out.value->as_i32(), 5);
  EXPECT_EQ(env.response, env.request);
}

TEST_P(ExecTest, HostPointerValidationTraps) {
  // resp_write with a bad pointer/length must trap, not leak memory.
  ModuleBuilder b;
  uint32_t t_rw = b.add_type({V::kI32, V::kI32}, {V::kI32});
  uint32_t t_f = b.add_type({}, {V::kI32});
  uint32_t imp_write = b.add_import("env", "resp_write", t_rw);
  b.set_memory(1, 1);
  uint32_t f = b.declare_function(t_f);
  auto& fb = b.function(f);
  fb.i32_const(65000);
  fb.i32_const(10000);  // 65000 + 10000 > 65536
  fb.call(imp_write);
  fb.end();
  b.export_function("f", f);
  ServerlessEnv env;
  auto out = run_module(b.build(), config(), "f", {}, &env);
  EXPECT_EQ(out.trap, TrapCode::kOutOfBoundsMemory) << out.describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, ExecTest,
    ::testing::Combine(::testing::Values(Tier::kInterp, Tier::kInterpFast,
                                         Tier::kAotO0, Tier::kAot),
                       ::testing::Values(BoundsStrategy::kSoftware,
                                         BoundsStrategy::kVmGuard)),
    sledge::testutil::param_name);

}  // namespace
}  // namespace sledge::engine
