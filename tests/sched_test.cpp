// SchedulerPolicy unit tests: ordering and preemption contracts of the
// three per-worker policies (round-robin, FIFO run-to-completion, EDF) at
// the data-structure level. Sandboxes are created but never dispatched, so
// this binary is sanitizer-safe (no swapcontext, no SIGALRM).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "minicc/minicc.hpp"
#include "sledge/sandbox.hpp"
#include "sledge/scheduler_policy.hpp"

namespace sledge::runtime {
namespace {

// One interpreter-tier module shared by every test; sandboxes over it are
// pure queue entries here (never run).
const engine::WasmModule* test_module() {
  static engine::WasmModule* mod = [] {
    auto wasm = minicc::compile_to_wasm("int state[1]; int main() { return state[0]; }");
    if (!wasm.ok()) return static_cast<engine::WasmModule*>(nullptr);
    engine::WasmModule::Config cfg;
    cfg.tier = engine::Tier::kInterp;
    cfg.strategy = engine::BoundsStrategy::kSoftware;
    auto m = engine::WasmModule::load(*wasm, cfg);
    if (!m.ok()) return static_cast<engine::WasmModule*>(nullptr);
    return new engine::WasmModule(m.take());
  }();
  return mod;
}

// deadline_abs_ns = 0 means "no deadline" (EDF sorts these last).
std::unique_ptr<Sandbox> make_sandbox(uint64_t deadline_abs_ns = 0) {
  auto sb = Sandbox::create(test_module(), {});
  EXPECT_NE(sb, nullptr);
  if (sb) sb->set_limits(0, deadline_abs_ns);
  return sb;
}

TEST(SchedPolicyTest, FactoryAndContracts) {
  auto rr = SchedulerPolicy::make(SchedPolicy::kRoundRobin);
  EXPECT_EQ(rr->kind(), SchedPolicy::kRoundRobin);
  EXPECT_TRUE(rr->allows_preemption());
  EXPECT_FALSE(rr->admit_eagerly());

  auto fifo = SchedulerPolicy::make(SchedPolicy::kFifoRunToCompletion);
  EXPECT_EQ(fifo->kind(), SchedPolicy::kFifoRunToCompletion);
  EXPECT_FALSE(fifo->allows_preemption());  // timer must never be armed
  EXPECT_FALSE(fifo->admit_eagerly());

  auto edf = SchedulerPolicy::make(SchedPolicy::kEdf);
  EXPECT_EQ(edf->kind(), SchedPolicy::kEdf);
  EXPECT_TRUE(edf->allows_preemption());
  EXPECT_TRUE(edf->admit_eagerly());  // needs the full candidate set

  for (auto* p : {rr.get(), fifo.get(), edf.get()}) {
    EXPECT_TRUE(p->empty());
    EXPECT_EQ(p->pick_next(), nullptr);
  }

  EXPECT_STREQ(to_string(SchedPolicy::kRoundRobin), "round_robin");
  EXPECT_STREQ(to_string(SchedPolicy::kFifoRunToCompletion), "fifo");
  EXPECT_STREQ(to_string(SchedPolicy::kEdf), "edf");
}

TEST(SchedPolicyTest, RoundRobinRotatesPreemptedToTail) {
  ASSERT_NE(test_module(), nullptr);
  auto a = make_sandbox(), b = make_sandbox(), c = make_sandbox();
  auto rr = SchedulerPolicy::make(SchedPolicy::kRoundRobin);
  rr->enqueue(a.get());
  rr->enqueue(b.get());
  rr->enqueue(c.get());
  EXPECT_EQ(rr->size(), 3u);

  EXPECT_EQ(rr->pick_next(), a.get());
  rr->enqueue(a.get());  // quantum expired: rotate to the tail
  EXPECT_EQ(rr->pick_next(), b.get());
  EXPECT_EQ(rr->pick_next(), c.get());
  EXPECT_EQ(rr->pick_next(), a.get());
  EXPECT_TRUE(rr->empty());
}

TEST(SchedPolicyTest, FifoPicksInAdmissionOrder) {
  ASSERT_NE(test_module(), nullptr);
  // Deadlines must NOT reorder FIFO: tightest-deadline sandbox last in,
  // still last out.
  auto a = make_sandbox(300), b = make_sandbox(200), c = make_sandbox(100);
  auto fifo = SchedulerPolicy::make(SchedPolicy::kFifoRunToCompletion);
  fifo->enqueue(a.get());
  fifo->enqueue(b.get());
  fifo->enqueue(c.get());
  EXPECT_EQ(fifo->pick_next(), a.get());
  EXPECT_EQ(fifo->pick_next(), b.get());
  EXPECT_EQ(fifo->pick_next(), c.get());
  EXPECT_EQ(fifo->pick_next(), nullptr);
}

TEST(SchedPolicyTest, EdfPicksEarliestDeadlineFirst) {
  ASSERT_NE(test_module(), nullptr);
  auto loose = make_sandbox(300), tight = make_sandbox(100),
       mid = make_sandbox(200);
  auto edf = SchedulerPolicy::make(SchedPolicy::kEdf);
  edf->enqueue(loose.get());
  edf->enqueue(tight.get());
  edf->enqueue(mid.get());
  EXPECT_EQ(edf->size(), 3u);

  EXPECT_EQ(edf->pick_next(), tight.get());
  EXPECT_EQ(edf->pick_next(), mid.get());
  EXPECT_EQ(edf->pick_next(), loose.get());
  EXPECT_TRUE(edf->empty());
}

TEST(SchedPolicyTest, EdfDeadlineLessSandboxesSortLast) {
  ASSERT_NE(test_module(), nullptr);
  auto none = make_sandbox(0);  // no deadline
  auto late = make_sandbox(7), early = make_sandbox(5);
  auto edf = SchedulerPolicy::make(SchedPolicy::kEdf);
  edf->enqueue(none.get());  // admitted first, must still lose
  edf->enqueue(late.get());
  edf->enqueue(early.get());
  EXPECT_EQ(edf->pick_next(), early.get());
  EXPECT_EQ(edf->pick_next(), late.get());
  EXPECT_EQ(edf->pick_next(), none.get());
}

TEST(SchedPolicyTest, EdfBreaksTiesInAdmissionOrder) {
  ASSERT_NE(test_module(), nullptr);
  auto a = make_sandbox(500), b = make_sandbox(500), c = make_sandbox(500);
  auto edf = SchedulerPolicy::make(SchedPolicy::kEdf);
  edf->enqueue(a.get());
  edf->enqueue(b.get());
  edf->enqueue(c.get());
  EXPECT_EQ(edf->pick_next(), a.get());
  EXPECT_EQ(edf->pick_next(), b.get());
  EXPECT_EQ(edf->pick_next(), c.get());
}

TEST(SchedPolicyTest, EdfReenqueueKeepsOrderingAcrossPreemptions) {
  ASSERT_NE(test_module(), nullptr);
  auto tight = make_sandbox(100), loose = make_sandbox(200);
  auto edf = SchedulerPolicy::make(SchedPolicy::kEdf);
  edf->enqueue(loose.get());
  edf->enqueue(tight.get());
  // The tight sandbox is preempted at quantum expiry and re-enqueued; it
  // must still beat the loose one.
  EXPECT_EQ(edf->pick_next(), tight.get());
  edf->enqueue(tight.get());
  EXPECT_EQ(edf->pick_next(), tight.get());
  edf->enqueue(tight.get());
  EXPECT_EQ(edf->size(), 2u);
  EXPECT_EQ(edf->pick_next(), tight.get());
  EXPECT_EQ(edf->pick_next(), loose.get());
}

}  // namespace
}  // namespace sledge::runtime
