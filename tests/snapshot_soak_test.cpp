// Concurrency soaks for the snapshot subsystem, sanitizer-safe: sandboxes
// are created and destroyed but never dispatched (no ucontext swaps, which
// TSan cannot track), interpreter tiers only. Covers the registry's
// build-once guarantee under racing first requests, concurrent
// snapshot-backed create/destroy cycling through the resource pool, and
// WarmPool push/pop against a replenisher-style producer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "minicc/minicc.hpp"
#include "sledge/resource_pool.hpp"
#include "sledge/sandbox.hpp"
#include "sledge/snapshot.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

class SnapshotSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.configure(SandboxResourcePool::Config{});
    pool.purge();
    pool.reset_counters();
    SnapshotRegistry::instance().clear();
    SnapshotRegistry::instance().reset_counters();
  }
  void TearDown() override {
    SnapshotRegistry::instance().clear();
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.purge();
    pool.configure(SandboxResourcePool::Config{});
  }

  Result<engine::WasmModule> load_module() {
    auto wasm = minicc::compile_to_wasm(R"(
int state[8];
int main() { state[0] = state[0] + 1; return state[0]; }
)");
    EXPECT_TRUE(wasm.ok()) << wasm.error_message();
    engine::WasmModule::Config cfg;
    cfg.tier = engine::Tier::kInterpFast;
    cfg.strategy = engine::BoundsStrategy::kVmGuard;
    return engine::WasmModule::load(*wasm, cfg);
  }
};

// N threads race the first snapshot-tier instantiation: exactly one
// template build, everyone lands on the same template, every sandbox is
// snapshot-backed.
TEST_F(SnapshotSoakTest, ConcurrentFirstRequestsBuildOnce) {
  auto mod = load_module();
  ASSERT_TRUE(mod.ok()) << mod.error_message();

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50;
  std::atomic<int> backed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto sb = Sandbox::create(&mod.value(), {}, -1, false,
                                  InstantiationMode::kSnapshot);
        if (sb && sb->snapshot_backed()) {
          backed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(backed.load(), kThreads * kItersPerThread);
  SnapshotRegistry::Counters c = SnapshotRegistry::instance().counters();
  EXPECT_EQ(c.builds, 1u) << "racing first requests built more than once";
  EXPECT_EQ(c.build_failures, 0u);
  EXPECT_EQ(c.hits, static_cast<uint64_t>(kThreads * kItersPerThread));
  SnapshotRegistry::instance().invalidate(&mod.value());
}

// Snapshot-backed regions cycling through the shared resource pool under
// threads must never corrupt each other (TSan watches the free lists; the
// recycle path runs on every destruction).
TEST_F(SnapshotSoakTest, ConcurrentCreateDestroyThroughPool) {
  auto mod = load_module();
  ASSERT_TRUE(mod.ok()) << mod.error_message();
  // Build the template up front so the soak measures steady state.
  ASSERT_NE(SnapshotRegistry::instance().get_or_build(&mod.value()), nullptr);

  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 80;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto sb = Sandbox::create(&mod.value(), {}, -1, false,
                                  InstantiationMode::kSnapshot);
        if (!sb || !sb->snapshot_backed()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Destructor releases memory+stack back to the pool: the next
        // iteration (any thread) may adopt the recycled region.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  SnapshotRegistry::instance().invalidate(&mod.value());
}

// WarmPool under a replenisher-style producer racing consumers: every
// sandbox is either popped exactly once or dropped by clear()/push-refusal;
// counters reconcile.
TEST_F(SnapshotSoakTest, WarmPoolProducerConsumerRace) {
  auto mod = load_module();
  ASSERT_TRUE(mod.ok()) << mod.error_message();
  ASSERT_NE(SnapshotRegistry::instance().get_or_build(&mod.value()), nullptr);

  WarmPool pool;
  pool.set_target(4);
  std::atomic<bool> run{true};
  std::atomic<int> produced{0};

  std::thread producer([&]() {
    while (run.load(std::memory_order_acquire)) {
      auto sb = Sandbox::create(&mod.value(), {}, -1, false,
                                InstantiationMode::kSnapshot);
      if (!sb) continue;
      if (pool.push(std::move(sb))) {
        produced.fetch_add(1, std::memory_order_relaxed);
      }
      // At-target pushes return false and the sandbox is dropped here,
      // exactly like the runtime replenisher.
    }
  });

  std::atomic<int> consumed{0};
  constexpr int kConsumers = 4;
  constexpr int kWantEach = 25;
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&]() {
      int got = 0;
      while (got < kWantEach) {
        auto sb = pool.pop();
        if (sb) {
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
      consumed.fetch_add(got, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : consumers) t.join();
  run.store(false, std::memory_order_release);
  producer.join();
  pool.set_target(0);
  pool.clear();

  EXPECT_EQ(consumed.load(), kConsumers * kWantEach);
  EXPECT_EQ(pool.size(), 0u);
  // Everything consumed was produced; the remainder was drained by clear().
  EXPECT_GE(produced.load(), consumed.load());
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(consumed.load()));
  SnapshotRegistry::instance().invalidate(&mod.value());
}

}  // namespace
}  // namespace sledge::runtime
