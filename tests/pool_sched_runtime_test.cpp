// Pool + scheduling policy through the full runtime: cross-request
// isolation under warm reuse (every bounds strategy), EDF ordering under
// contention with preemption both on and off, FIFO's no-preemption
// guarantee, round-robin parity with the seed, and the stats surface.
// Uses ucontext dispatch, so not sanitizer-labeled.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const std::string& src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

// Answers 'z' when its state is pristine (all zeros), 'x' when a previous
// request's write leaked through — the cross-tenant canary.
const char* kCanarySrc = R"(
int state[4];
char out[1];
int main() {
  if (state[0] == 0) { out[0] = 122; } else { out[0] = 120; }
  state[0] = 1234;
  resp_write(out, 1);
  return 0;
}
)";

class PoolSchedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.configure(SandboxResourcePool::Config{});
    pool.purge();
    pool.reset_counters();
  }
};

// Warm starts must be indistinguishable from cold ones to the tenant: a
// stateful module sees zeros on every request even though (counter-checked)
// its memory came off the free list, under all four bounds strategies.
TEST_F(PoolSchedTest, PooledRequestsStayIsolatedAllStrategies) {
  auto wasm = compile(kCanarySrc);
  ASSERT_FALSE(wasm.empty());
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  for (engine::BoundsStrategy strategy :
       {engine::BoundsStrategy::kNone, engine::BoundsStrategy::kSoftware,
        engine::BoundsStrategy::kMpxSim, engine::BoundsStrategy::kVmGuard}) {
    SCOPED_TRACE(engine::to_string(strategy));
    engine::WasmModule::Config cfg;  // default kAot tier
    cfg.strategy = strategy;
    auto mod = engine::WasmModule::load(wasm, cfg);
    ASSERT_TRUE(mod.ok()) << mod.error_message();

    pool.purge();
    pool.reset_counters();
    for (int i = 0; i < 6; ++i) {
      auto sb = Sandbox::create(&mod.value(), {});
      ASSERT_NE(sb, nullptr);
      EXPECT_EQ(sb->pooled(), i > 0);  // first request is the cold one
      ASSERT_TRUE(run_sandbox_inline(sb.get()).is_ok());
      EXPECT_EQ(sb->state(), SandboxState::kComplete);
      ASSERT_EQ(sb->response().size(), 1u);
      EXPECT_EQ(sb->response()[0], 'z') << "request " << i
                                        << " saw a previous tenant's write";
    }
    SandboxResourcePool::Counters c = pool.counters();
    EXPECT_EQ(c.memory_hits, 5u);
    EXPECT_EQ(c.memory_misses, 1u);
  }
}

// EDF must run the tighter-deadline request first even when it arrives
// last, with preemption on (blocker is descheduled at quantum expiry) and
// off (ordering applies between run-to-completion slots).
TEST_F(PoolSchedTest, EdfRunsTighterDeadlineFirstUnderContention) {
  for (bool preempt : {true, false}) {
    SCOPED_TRACE(preempt ? "preemption" : "cooperative");
    RuntimeConfig cfg;
    cfg.workers = 1;
    cfg.sched = SchedPolicy::kEdf;
    cfg.preemption = preempt;
    cfg.quantum_us = 2000;
    Runtime rt(cfg);
    // The blocker must keep the worker busy for the whole submission window
    // (its only job is to let loose and tight queue up behind it), so it
    // spins well past the setup sleeps. Deadlines are far above actual
    // runtime so nothing is killed, but tight (3 s) must be ordered before
    // loose (10 s).
    ASSERT_TRUE(rt.register_module("blocker",
                                   compile(testutil::spin_src(80000000)))
                    .is_ok());
    ModuleLimits tight_limits;
    tight_limits.deadline_ns = 3'000'000'000;
    ASSERT_TRUE(rt.register_module("tight",
                                   compile(testutil::spin_src(20000000)),
                                   tight_limits)
                    .is_ok());
    ModuleLimits loose_limits;
    loose_limits.deadline_ns = 10'000'000'000;
    ASSERT_TRUE(rt.register_module("loose",
                                   compile(testutil::spin_src(20000000)),
                                   loose_limits)
                    .is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    uint64_t tight_end = 0, loose_end = 0;
    std::thread blocker([&] {
      int status = 0;
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                       "/blocker", {}, &status);
      EXPECT_TRUE(r.ok()) << r.error_message();
      EXPECT_EQ(status, 200);
    });
    // Let the blocker occupy the single worker (admission is counted before
    // dispatch, so give the worker a moment to actually pick it up), then
    // queue loose BEFORE tight: completion order must still be tight first.
    while (rt.inflight() == 0) ::usleep(200);
    ::usleep(5000);
    std::thread loose([&] {
      int status = 0;
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/loose",
                                       {}, &status);
      loose_end = now_ns();
      EXPECT_TRUE(r.ok()) << r.error_message();
      EXPECT_EQ(status, 200);
    });
    ::usleep(5000);
    std::thread tight([&] {
      int status = 0;
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/tight",
                                       {}, &status);
      tight_end = now_ns();
      EXPECT_TRUE(r.ok()) << r.error_message();
      EXPECT_EQ(status, 200);
    });
    blocker.join();
    loose.join();
    tight.join();
    EXPECT_LT(tight_end, loose_end)
        << "EDF served the looser deadline first";
    rt.stop();
    EXPECT_EQ(rt.totals().killed, 0u);
  }
}

// FIFO run-to-completion: the quantum timer is never armed, so even a long
// request with preemption enabled in the config finishes with zero
// preemptions and everything still completes.
TEST_F(PoolSchedTest, FifoNeverPreempts) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.sched = SchedPolicy::kFifoRunToCompletion;
  cfg.preemption = true;  // config allows it; the policy must refuse
  cfg.quantum_us = 1000;
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("spin", compile(testutil::spin_src(30000000)))
          .is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread spinner([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin",
                                     {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  });
  while (rt.inflight() == 0) ::usleep(200);
  int status = 0;
  auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {},
                                   &status);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(status, 200);
  spinner.join();
  rt.stop();
  EXPECT_EQ(rt.totals().preemptions, 0u);
  EXPECT_EQ(rt.totals().completed, 2u);
}

// Round-robin keeps the seed's behavior: a long request under a short
// quantum gets preempted, and short requests interleave past it.
TEST_F(PoolSchedTest, RoundRobinStillPreempts) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.sched = SchedPolicy::kRoundRobin;
  cfg.quantum_us = 1000;
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("spin", compile(testutil::spin_src(30000000)))
          .is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread spinner([&] {
    int status = 0;
    (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin", {},
                                  &status);
    EXPECT_EQ(status, 200);
  });
  while (rt.inflight() == 0) ::usleep(200);
  for (int i = 0; i < 3; ++i) {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                     {}, &status);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  }
  spinner.join();
  rt.stop();
  EXPECT_GT(rt.totals().preemptions, 0u);
}

// The pool ablation knob: pool.enabled=false in the runtime config makes
// every request a cold start; enabled (default) warms up after the first.
TEST_F(PoolSchedTest, PoolKnobControlsWarmStarts) {
  for (bool enabled : {false, true}) {
    SCOPED_TRACE(enabled ? "pool on" : "pool off");
    RuntimeConfig cfg;
    cfg.workers = 1;
    cfg.pool.enabled = enabled;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
    ASSERT_TRUE(rt.start().is_ok());
    for (int i = 0; i < 5; ++i) {
      int status = 0;
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                       {}, &status);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(status, 200);
    }
    rt.stop();
    Runtime::Totals t = rt.totals();
    EXPECT_EQ(t.completed, 5u);
    if (enabled) {
      EXPECT_GE(t.pool_hits, 3u);  // all but the cold start(s)
    } else {
      EXPECT_EQ(t.pool_hits, 0u);
      EXPECT_EQ(t.pool_misses, 5u);
    }
  }
}

// The operator-facing stats surface names the scheduler and reports the
// warm/cold split.
TEST_F(PoolSchedTest, StatsReportShowsSchedulerAndPool) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.sched = SchedPolicy::kEdf;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  for (int i = 0; i < 3; ++i) {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                     {}, &status);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  }
  rt.stop();
  std::string report = rt.stats_report();
  EXPECT_NE(report.find("sched=edf"), std::string::npos) << report;
  EXPECT_NE(report.find("pool: warm="), std::string::npos) << report;
  EXPECT_NE(report.find("startup pooled"), std::string::npos) << report;
}

}  // namespace
}  // namespace sledge::runtime
