// Listener front-door tests: the SO_REUSEPORT shard fan-out and the
// data-path bugfixes it exposed — chunked requests answered 501 without
// desyncing the pipelined byte stream, strict Content-Length (400 on
// malformed / conflicting values), the EMFILE accept livelock (reserve-fd
// shed + bounded CPU + recovery), shard-correct loan/return of kept-alive
// connections, and a 2k-connection mixed-status soak that reconciles
// exactly against runtime counters and the /admin/stats shard aggregates.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Blocking read of exactly one HTTP/1.1 response (status + Content-Length
// body); returns false on connection error or malformed bytes.
bool recv_response(int fd, int* status, std::string* body,
                   std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

json::Value scrape_json(uint16_t port) {
  auto body = loadgen::http_get("127.0.0.1", port, "/admin/stats");
  EXPECT_TRUE(body.ok()) << body.error_message();
  auto doc = json::parse(body.ok() ? *body : "null");
  EXPECT_TRUE(doc.ok()) << doc.error_message();
  return doc.ok() ? *doc : json::Value();
}

// ---- Chunked requests: 501 without desyncing the connection ----

TEST(ListenerTest, ChunkedRequest501ThenPipelinedRequestSurvives) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.num_listeners = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int fd = raw_connect(rt.bound_port());
  // A chunked POST and a normal keep-alive POST pipelined in one write. The
  // old parser treated the chunk bytes as the next request (garbage 400);
  // now the chunk framing is consumed, the chunked request answered 501,
  // and the pipelined successor still runs.
  std::string pipelined =
      "POST /ping HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
      "POST /ping HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(send_all(fd, pipelined));

  int status = 0;
  std::string body, carry;
  ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
  EXPECT_EQ(status, 501);
  ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "p");
  ::close(fd);

  rt.stop();
  EXPECT_EQ(rt.totals().completed, 1u);  // only the non-chunked request ran
}

// ---- Strict Content-Length end to end ----

TEST(ListenerTest, MalformedContentLengthAnswered400) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.num_listeners = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  for (const char* cl : {"+5", "-1", "5x", "4 2"}) {
    int fd = raw_connect(rt.bound_port());
    std::string req = "POST /ping HTTP/1.1\r\nContent-Length: " +
                      std::string(cl) + "\r\n\r\n";
    ASSERT_TRUE(send_all(fd, req));
    int status = 0;
    std::string body, carry;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << cl;
    EXPECT_EQ(status, 400) << cl;
    // 400 closes the connection: the stream position is unknowable.
    char c;
    EXPECT_EQ(::recv(fd, &c, 1, 0), 0) << cl;
    ::close(fd);
  }

  // Conflicting duplicate Content-Length values: smuggling vector, 400.
  int fd = raw_connect(rt.bound_port());
  ASSERT_TRUE(send_all(fd,
                       "POST /ping HTTP/1.1\r\nContent-Length: 5\r\n"
                       "Content-Length: 6\r\n\r\n"));
  int status = 0;
  std::string body, carry;
  ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
  EXPECT_EQ(status, 400);
  ::close(fd);

  rt.stop();
  EXPECT_EQ(rt.totals().completed, 0u);
}

// ---- EMFILE accept livelock: shed, bounded CPU, recovery ----

int count_open_fds() {
  int n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (!d) return -1;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

uint64_t process_cpu_ns() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  auto tv_ns = [](const timeval& tv) {
    return static_cast<uint64_t>(tv.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(tv.tv_usec) * 1'000ull;
  };
  return tv_ns(ru.ru_utime) + tv_ns(ru.ru_stime);
}

// Restores RLIMIT_NOFILE and closes the filler fds even when an ASSERT
// aborts the test body early — later tests must not inherit fd pressure.
struct ScopedFdPressure {
  rlimit orig{};
  std::vector<int> fillers;
  bool active = false;
  ~ScopedFdPressure() { release(); }
  void release() {
    for (int fd : fillers) ::close(fd);
    fillers.clear();
    if (active) ::setrlimit(RLIMIT_NOFILE, &orig);
    active = false;
  }
};

TEST(ListenerTest, EmfileAcceptShedsAndRecovers) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.num_listeners = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Sanity: the path works before fd pressure.
  auto ok = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {});
  ASSERT_TRUE(ok.ok()) << ok.error_message();

  // Pre-allocate the client socket, then exhaust the process fd table under
  // a lowered RLIMIT_NOFILE (connect() itself needs no new fd).
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  timeval rcvto{2, 0};
  ::setsockopt(probe, SOL_SOCKET, SO_RCVTIMEO, &rcvto, sizeof(rcvto));
  ScopedFdPressure pressure;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &pressure.orig), 0);
  int used = count_open_fds();
  ASSERT_GT(used, 0);
  rlimit low{static_cast<rlim_t>(used + 8), pressure.orig.rlim_max};
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);
  pressure.active = true;
  for (int fd = ::open("/dev/null", O_RDONLY); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY)) {
    pressure.fillers.push_back(fd);
    ASSERT_LT(pressure.fillers.size(), 64u);  // the lowered limit must bite
  }
  ASSERT_EQ(errno, EMFILE);

  // The connection now pending in the accept backlog cannot get a normal
  // fd: the listener must shed it through its reserve fd (accept-and-close)
  // instead of spinning on the level-triggered EPOLLIN forever.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rt.bound_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  uint64_t deadline = now_ns() + 2'000'000'000ull;
  while (rt.totals().accept_errors == 0 && now_ns() < deadline) {
    ::usleep(1000);
  }
  EXPECT_GE(rt.totals().accept_errors, 1u);
  // The shed hangs up on the probe connection.
  char c;
  ssize_t r = ::recv(probe, &c, 1, 0);
  EXPECT_LE(r, 0);

  // Livelock regression: under persistent fd pressure the listener's CPU
  // stays bounded (the old code spun accept->EMFILE->return at 100%).
  uint64_t cpu0 = process_cpu_ns();
  uint64_t wall0 = now_ns();
  ::usleep(300'000);
  uint64_t cpu_spent = process_cpu_ns() - cpu0;
  uint64_t wall_spent = now_ns() - wall0;
  EXPECT_LT(cpu_spent, wall_spent / 2)
      << "listener burned " << cpu_spent << "ns CPU over " << wall_spent
      << "ns wall under fd pressure";

  // Recovery: free the fds, lift the limit — the next request must be
  // accepted and served normally.
  ::close(probe);
  pressure.release();
  auto again =
      loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {});
  ASSERT_TRUE(again.ok()) << again.error_message();
  rt.stop();
}

// ---- Shard-aware loan/return ----

TEST(ListenerTest, TwoShardsPipelinedKeepAliveReturnsToOwningShard) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.num_listeners = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Several connections, spread by the kernel across the two REUSEPORT
  // shards. Each sends two pipelined function requests in one write: the
  // second request's bytes arrive while the fd is loaned to a worker, land
  // in the owning shard's stash, and must replay on that shard when the
  // worker returns the fd. A wrong-shard return would orphan the stash and
  // hang the second response.
  constexpr int kConns = 8;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) fds.push_back(raw_connect(rt.bound_port()));
  const std::string two =
      "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
      "POST /ping HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
  for (int fd : fds) ASSERT_TRUE(send_all(fd, two));
  for (int fd : fds) {
    int status = 0;
    std::string body, carry;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "p");
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "p");
    ::close(fd);
  }

  // /admin/stats aggregates across shards: two listener entries whose
  // accepted counts sum to every connection opened (ours + this scrape).
  json::Value stats = scrape_json(rt.bound_port());
  const json::Array& shards = stats["listeners"].as_array();
  ASSERT_EQ(shards.size(), 2u);
  int64_t accepted = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    accepted += shards[i]["accepted"].as_int(0);
    EXPECT_EQ(shards[i]["id"].as_int(-1), static_cast<int64_t>(i));
  }
  EXPECT_EQ(accepted, kConns + 1);
  EXPECT_EQ(stats["totals"]["accepted"].as_int(0), accepted);

  rt.stop();
  EXPECT_EQ(rt.totals().completed, 2u * kConns);
}

// ---- 2k-connection mixed-status soak: exact reconciliation ----

TEST(ListenerTest, TwoShardSoak2kConnectionsReconcilesExactly) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.num_listeners = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  constexpr int kRounds = 500;  // x4 connections per round = 2000
  uint64_t n200 = 0, n404 = 0, n503 = 0;
  auto one = [&](const std::string& target, bool fault) -> int {
    std::optional<testutil::ScopedSandboxAllocFault> f;
    if (fault) f.emplace();
    int fd = raw_connect(rt.bound_port());
    std::string req = "POST " + target +
                      " HTTP/1.1\r\nContent-Length: 0\r\n"
                      "Connection: close\r\n\r\n";
    EXPECT_TRUE(send_all(fd, req));
    int status = 0;
    std::string body, carry;
    EXPECT_TRUE(recv_response(fd, &status, &body, &carry));
    ::close(fd);
    return status;
  };
  for (int r = 0; r < kRounds; ++r) {
    int s1 = one("/ping", false);
    EXPECT_EQ(s1, 200);
    n200 += s1 == 200;
    int s2 = one("/ghost", false);
    EXPECT_EQ(s2, 404);
    n404 += s2 == 404;
    int s3 = one("/ping", true);  // alloc fault -> 503 Overloaded
    EXPECT_EQ(s3, 503);
    n503 += s3 == 503;
    int s4 = one("/ping", false);
    EXPECT_EQ(s4, 200);
    n200 += s4 == 200;
  }
  EXPECT_EQ(n200, 2u * kRounds);

  // Exact reconciliation against the runtime's own books.
  Runtime::Totals t = rt.totals();
  EXPECT_EQ(t.completed, n200);
  EXPECT_EQ(t.shed, n503);
  EXPECT_EQ(t.failed, 0u);
  EXPECT_EQ(t.accepted, 4u * kRounds);
  EXPECT_EQ(t.accept_errors, 0u);
  EXPECT_EQ(rt.inflight(), 0);

  // And against the shard aggregates exposed over /admin/stats: both shards
  // saw traffic, and their sum matches the totals.
  json::Value stats = scrape_json(rt.bound_port());
  const json::Array& shards = stats["listeners"].as_array();
  ASSERT_EQ(shards.size(), 2u);
  int64_t accepted = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    int64_t shard = shards[i]["accepted"].as_int(0);
    EXPECT_GT(shard, 0) << "shard " << i << " never accepted";
    accepted += shard;
  }
  EXPECT_EQ(accepted, 4 * kRounds + 1);

  rt.stop();
  EXPECT_EQ(rt.totals().completed, n200);  // stable across stop()
}

}  // namespace
}  // namespace sledge::runtime
