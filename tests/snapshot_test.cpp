// Snapshot/COW instantiation subsystem: sealed memfd templates, the
// MAP_PRIVATE seeded-instantiate path, the tenant-isolation guarantees the
// design leans on (private mappings + recycle-to-zero after a template
// mapping), graceful degradation when memfd_create is unavailable, and the
// warm-pool autoscaler policy math.
#include <gtest/gtest.h>

#include <cstring>

#include "engine/memory.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/resource_pool.hpp"
#include "sledge/runtime.hpp"
#include "sledge/snapshot.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

using engine::BoundsStrategy;
using engine::LinearMemory;

constexpr BoundsStrategy kAllStrategies[] = {
    BoundsStrategy::kNone, BoundsStrategy::kSoftware, BoundsStrategy::kMpxSim,
    BoundsStrategy::kVmGuard};

// Each test owns the process-wide pool and snapshot registry.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.configure(SandboxResourcePool::Config{});
    pool.purge();
    pool.reset_counters();
    SnapshotRegistry::instance().clear();
    SnapshotRegistry::instance().reset_counters();
  }
  void TearDown() override {
    // Templates are keyed by module address; a later test could load a
    // module at the same address, so never leave entries behind.
    SnapshotRegistry::instance().clear();
    SnapshotRegistry::set_memfd_fault_hook(nullptr);
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.purge();
    pool.configure(SandboxResourcePool::Config{});
  }
};

// A module whose observable behavior depends on prior tenant writes: main
// returns the previous value of state[0] and then scribbles over it.
const char* kCanarySrc = R"(
int state[4];
int main() { int old = state[0]; state[0] = 1111; return old; }
)";

// ---- Template isolation across the COW mapping --------------------------

// The core cross-tenant property: tenant B instantiated from the same
// template must see the pristine template image, never tenant A's writes,
// under every bounds strategy.
TEST_F(SnapshotTest, SecondTenantNeverSeesFirstTenantWrites) {
  auto wasm = minicc::compile_to_wasm(kCanarySrc);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  SandboxResourcePool& pool = SandboxResourcePool::instance();

  for (BoundsStrategy strategy : kAllStrategies) {
    SCOPED_TRACE(engine::to_string(strategy));
    engine::WasmModule::Config cfg;
    cfg.tier = engine::Tier::kInterpFast;
    cfg.strategy = strategy;
    auto mod = engine::WasmModule::load(*wasm, cfg);
    ASSERT_TRUE(mod.ok()) << mod.error_message();

    const SnapshotTemplate* tmpl =
        SnapshotRegistry::instance().get_or_build(&mod.value());
    ASSERT_NE(tmpl, nullptr);
    ASSERT_GE(tmpl->fd, 0);
    ASSERT_GT(tmpl->content_bytes, 0u);

    auto seeded = [&]() {
      LinearMemory mem =
          pool.acquire_memory(strategy, 0, tmpl->max_pages, nullptr);
      EXPECT_TRUE(mem.valid());
      EXPECT_TRUE(
          mem.map_template(tmpl->fd, tmpl->content_bytes, tmpl->max_pages));
      return mod->instantiate_seeded(std::move(mem), tmpl->seed);
    };

    // Tenant A: template state is pristine (main never ran at capture
    // time), then A dirties it through its private mapping.
    auto a = seeded();
    ASSERT_TRUE(a.ok()) << a.error_message();
    auto out_a = a.value().call("main", {});
    ASSERT_TRUE(out_a.ok()) << out_a.describe();
    EXPECT_EQ(out_a.value->as_i32(), 0);
    pool.release_memory(a.value().reclaim_memory());

    // Tenant B: fresh private mapping of the same sealed fd — A's write
    // must be invisible.
    auto b = seeded();
    ASSERT_TRUE(b.ok()) << b.error_message();
    auto out_b = b.value().call("main", {});
    ASSERT_TRUE(out_b.ok()) << out_b.describe();
    EXPECT_EQ(out_b.value->as_i32(), 0) << "tenant A bytes leaked through COW";
    pool.release_memory(b.value().reclaim_memory());

    SnapshotRegistry::instance().invalidate(&mod.value());
  }
}

// The recycle regression the design doc calls out: MADV_DONTNEED on a
// private *file* mapping restores template bytes, not zeros, so recycle()
// must replace a template-backed region with anonymous memory before it
// re-enters the pool. A pooled (non-snapshot) tenant that inherits the
// region must read zeros — garbage canary included.
TEST_F(SnapshotTest, RecycledTemplateRegionReadsZeroAllStrategies) {
  auto wasm = minicc::compile_to_wasm(kCanarySrc);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  SandboxResourcePool& pool = SandboxResourcePool::instance();

  for (BoundsStrategy strategy : kAllStrategies) {
    SCOPED_TRACE(engine::to_string(strategy));
    engine::WasmModule::Config cfg;
    cfg.tier = engine::Tier::kInterpFast;
    cfg.strategy = strategy;
    auto mod = engine::WasmModule::load(*wasm, cfg);
    ASSERT_TRUE(mod.ok()) << mod.error_message();
    const SnapshotTemplate* tmpl =
        SnapshotRegistry::instance().get_or_build(&mod.value());
    ASSERT_NE(tmpl, nullptr);

    pool.purge();
    LinearMemory mem =
        pool.acquire_memory(strategy, 0, tmpl->max_pages, nullptr);
    ASSERT_TRUE(mem.valid());
    ASSERT_TRUE(
        mem.map_template(tmpl->fd, tmpl->content_bytes, tmpl->max_pages));
    uint8_t* base = mem.base();
    std::memset(base, 0xAB, mem.size_bytes());  // garbage canary
    pool.release_memory(std::move(mem));

    bool from_pool = false;
    LinearMemory reused =
        pool.acquire_memory(strategy, 1, tmpl->max_pages, &from_pool);
    ASSERT_TRUE(reused.valid());
    EXPECT_TRUE(from_pool);
    EXPECT_EQ(reused.base(), base);  // genuinely the same region
    for (uint64_t i = 0; i < reused.size_bytes(); ++i) {
      ASSERT_EQ(reused.base()[i], 0)
          << "template/canary byte survived recycle at offset " << i;
    }
    pool.release_memory(std::move(reused));
    SnapshotRegistry::instance().invalidate(&mod.value());
  }
}

// Seeded instantiation must be behaviorally identical to a cold one, for
// every execution tier (the AoT inst-block path and the interpreter
// globals/table path are entirely different code).
TEST_F(SnapshotTest, SeededMatchesColdAcrossTiers) {
  const char* src = R"(
int acc[3];
int main() {
  acc[0] = acc[0] + 7;
  acc[1] = acc[1] + acc[0] * 3;
  return acc[0] * 1000 + acc[1];
}
)";
  auto wasm = minicc::compile_to_wasm(src);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  SandboxResourcePool& pool = SandboxResourcePool::instance();

  for (engine::Tier tier : {engine::Tier::kInterp, engine::Tier::kInterpFast,
                            engine::Tier::kAot}) {
    SCOPED_TRACE(engine::to_string(tier));
    engine::WasmModule::Config cfg;
    cfg.tier = tier;
    cfg.strategy = BoundsStrategy::kVmGuard;
    auto mod = engine::WasmModule::load(*wasm, cfg);
    ASSERT_TRUE(mod.ok()) << mod.error_message();

    auto cold = mod->instantiate();
    ASSERT_TRUE(cold.ok()) << cold.error_message();
    auto cold_out = cold.value().call("main", {});
    ASSERT_TRUE(cold_out.ok()) << cold_out.describe();

    const SnapshotTemplate* tmpl =
        SnapshotRegistry::instance().get_or_build(&mod.value());
    ASSERT_NE(tmpl, nullptr);
    for (int i = 0; i < 2; ++i) {
      LinearMemory mem = pool.acquire_memory(BoundsStrategy::kVmGuard, 0,
                                             tmpl->max_pages, nullptr);
      ASSERT_TRUE(mem.valid());
      ASSERT_TRUE(
          mem.map_template(tmpl->fd, tmpl->content_bytes, tmpl->max_pages));
      auto seeded = mod->instantiate_seeded(std::move(mem), tmpl->seed);
      ASSERT_TRUE(seeded.ok()) << seeded.error_message();
      auto out = seeded.value().call("main", {});
      ASSERT_TRUE(out.ok()) << out.describe();
      EXPECT_EQ(out.value->as_i32(), cold_out.value->as_i32())
          << "seeded instantiation diverged from cold (iteration " << i << ")";
      pool.release_memory(seeded.value().reclaim_memory());
    }
    SnapshotRegistry::instance().invalidate(&mod.value());
  }
}

// A snapshot-backed memory must still be able to grow past the template
// image: pages above content_bytes come from the anonymous reservation and
// must read as zeros.
TEST_F(SnapshotTest, GrowPastTemplateYieldsZeroPages) {
  auto wasm = minicc::compile_to_wasm(kCanarySrc);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  engine::WasmModule::Config cfg;
  cfg.tier = engine::Tier::kInterpFast;
  cfg.strategy = BoundsStrategy::kSoftware;
  auto mod = engine::WasmModule::load(*wasm, cfg);
  ASSERT_TRUE(mod.ok()) << mod.error_message();
  const SnapshotTemplate* tmpl =
      SnapshotRegistry::instance().get_or_build(&mod.value());
  ASSERT_NE(tmpl, nullptr);

  SandboxResourcePool& pool = SandboxResourcePool::instance();
  uint32_t ceiling = tmpl->max_pages + 2;
  LinearMemory mem =
      pool.acquire_memory(BoundsStrategy::kSoftware, 0, ceiling, nullptr);
  ASSERT_TRUE(mem.valid());
  ASSERT_TRUE(mem.map_template(tmpl->fd, tmpl->content_bytes, ceiling));
  uint64_t image = mem.size_bytes();
  int32_t old_pages = mem.grow(2);
  ASSERT_GE(old_pages, 0);
  for (uint64_t i = image; i < mem.size_bytes(); ++i) {
    ASSERT_EQ(mem.base()[i], 0) << "grown page not zero at offset " << i;
  }
  pool.release_memory(std::move(mem));
}

// ---- Graceful degradation ------------------------------------------------

bool fail_memfd() { return true; }

// Kernels without memfd_create (or sealing) must degrade to the pooled
// tier: creation still succeeds, just not snapshot-backed, and the failure
// is remembered (one build attempt, not a per-request storm).
TEST_F(SnapshotTest, MemfdUnavailableFallsBackToPooled) {
  auto wasm = minicc::compile_to_wasm(kCanarySrc);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  engine::WasmModule::Config cfg;
  cfg.tier = engine::Tier::kInterpFast;
  cfg.strategy = BoundsStrategy::kVmGuard;
  auto mod = engine::WasmModule::load(*wasm, cfg);
  ASSERT_TRUE(mod.ok()) << mod.error_message();

  SnapshotRegistry::set_memfd_fault_hook(&fail_memfd);
  for (int i = 0; i < 3; ++i) {
    auto sb = Sandbox::create(&mod.value(), {}, -1, false,
                              InstantiationMode::kSnapshot);
    ASSERT_NE(sb, nullptr);
    EXPECT_FALSE(sb->snapshot_backed());
  }
  SnapshotRegistry::Counters c = SnapshotRegistry::instance().counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 3u);
  EXPECT_EQ(c.builds, 0u);
  EXPECT_EQ(c.build_failures, 1u);  // remembered, not retried per request

  // Hook removed (the "kernel" regains memfd) + invalidate: builds recover.
  SnapshotRegistry::set_memfd_fault_hook(nullptr);
  SnapshotRegistry::instance().invalidate(&mod.value());
  auto sb = Sandbox::create(&mod.value(), {}, -1, false,
                            InstantiationMode::kSnapshot);
  ASSERT_NE(sb, nullptr);
  EXPECT_TRUE(sb->snapshot_backed());
  sb.reset();
  SnapshotRegistry::instance().invalidate(&mod.value());
}

// ---- Registry lifecycle --------------------------------------------------

TEST_F(SnapshotTest, RegistryBuildsOncePerModuleAndInvalidates) {
  auto wasm = minicc::compile_to_wasm(kCanarySrc);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  engine::WasmModule::Config cfg;
  cfg.tier = engine::Tier::kInterpFast;
  cfg.strategy = BoundsStrategy::kVmGuard;
  auto mod = engine::WasmModule::load(*wasm, cfg);
  ASSERT_TRUE(mod.ok()) << mod.error_message();

  const SnapshotTemplate* t1 =
      SnapshotRegistry::instance().get_or_build(&mod.value());
  const SnapshotTemplate* t2 =
      SnapshotRegistry::instance().get_or_build(&mod.value());
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1, t2);  // cached, not rebuilt
  EXPECT_EQ(SnapshotRegistry::instance().counters().builds, 1u);

  SnapshotRegistry::instance().invalidate(&mod.value());
  const SnapshotTemplate* t3 =
      SnapshotRegistry::instance().get_or_build(&mod.value());
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(SnapshotRegistry::instance().counters().builds, 2u);
  SnapshotRegistry::instance().invalidate(&mod.value());
}

// ---- Autoscaler policy math ----------------------------------------------

TEST(WarmPoolTargetTest, PolicyMath) {
  WarmPoolConfig cfg;  // max 8, interval 2000us, headroom 1.5, decay 2s
  // Disabled or capped out: always zero.
  WarmPoolConfig off = cfg;
  off.enabled = false;
  EXPECT_EQ(warm_pool_target(1000.0, 0, off), 0);
  WarmPoolConfig zero_cap = cfg;
  zero_cap.max_per_module = 0;
  EXPECT_EQ(warm_pool_target(1000.0, 0, zero_cap), 0);
  // No traffic or idle past the decay window: zero.
  EXPECT_EQ(warm_pool_target(0.0, 0, cfg), 0);
  EXPECT_EQ(warm_pool_target(1000.0, 3'000'000'000ull, cfg), 0);
  // rate * interval * headroom, rounded up: 1000/s * 2ms * 1.5 = 3.
  EXPECT_EQ(warm_pool_target(1000.0, 0, cfg), 3);
  // Rounding up: 100/s * 2ms * 1.5 = 0.3 -> 1.
  EXPECT_EQ(warm_pool_target(100.0, 0, cfg), 1);
  // Clamped at max_per_module.
  EXPECT_EQ(warm_pool_target(1e7, 0, cfg), 8);
  // Idle exactly at the decay boundary still counts as active.
  EXPECT_EQ(warm_pool_target(1000.0, 2'000'000'000ull, cfg), 3);
}

TEST(ArrivalRateEstimatorTest, WindowedRate) {
  ArrivalRateEstimator est;
  EXPECT_DOUBLE_EQ(est.rate_per_sec(1'000'000'000ull), 0.0);  // no arrivals
  est.note_arrival(1'000'000'000ull);
  EXPECT_DOUBLE_EQ(est.rate_per_sec(2'000'000'000ull), 0.0);  // one arrival

  // 10 arrivals 1ms apart starting at t=1s: oldest retained is t=1s, so at
  // the last arrival (t=1.009s) the rate is 10 / 9ms.
  for (int i = 1; i < 10; ++i) {
    est.note_arrival(1'000'000'000ull + static_cast<uint64_t>(i) * 1'000'000);
  }
  EXPECT_EQ(est.total(), 10u);
  EXPECT_EQ(est.last_arrival_ns(), 1'009'000'000ull);
  EXPECT_NEAR(est.rate_per_sec(1'009'000'000ull), 10.0 / 0.009, 1e-6);

  // Fill past the window: the oldest retained stamp slides forward.
  for (int i = 10; i < 200; ++i) {
    est.note_arrival(1'000'000'000ull + static_cast<uint64_t>(i) * 1'000'000);
  }
  // 200 arrivals total; window holds the last 64. Oldest retained is
  // arrival 136 (t = 1s + 136ms), newest is t = 1s + 199ms.
  double rate = est.rate_per_sec(1'199'000'000ull);
  EXPECT_NEAR(rate, 64.0 / 0.063, 1e-6);
}

TEST(WarmPoolTest, PushPopHonorsTarget) {
  auto wasm = minicc::compile_to_wasm(testutil::spin_src(1));
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  engine::WasmModule::Config cfg;
  cfg.tier = engine::Tier::kInterpFast;
  auto mod = engine::WasmModule::load(*wasm, cfg);
  ASSERT_TRUE(mod.ok()) << mod.error_message();

  WarmPool pool;
  EXPECT_EQ(pool.pop(), nullptr);  // empty
  auto make = [&]() {
    return Sandbox::create(&mod.value(), {}, -1, false,
                           InstantiationMode::kPooled);
  };
  // Target 0: pushes are refused (replenisher lost the race with decay).
  EXPECT_FALSE(pool.push(make()));
  EXPECT_EQ(pool.size(), 0u);

  pool.set_target(2);
  EXPECT_TRUE(pool.push(make()));
  EXPECT_TRUE(pool.push(make()));
  EXPECT_FALSE(pool.push(make()));  // at target
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.refills(), 2u);

  EXPECT_NE(pool.pop(), nullptr);
  EXPECT_NE(pool.pop(), nullptr);
  EXPECT_EQ(pool.pop(), nullptr);
  EXPECT_EQ(pool.hits(), 2u);

  pool.set_target(1);
  EXPECT_TRUE(pool.push(make()));
  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
}

// ---- End-to-end through the runtime --------------------------------------

// A runtime configured for snapshot instantiation serves correct responses
// and reports snapshot-tier startups and registry hits in its snapshot().
TEST_F(SnapshotTest, RuntimeServesSnapshotTier) {
  const char* src = R"(
char out[2];
int main() { out[0] = 111; out[1] = 107; resp_write(out, 2); return 0; }
)";
  auto wasm = minicc::compile_to_wasm(src);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.num_listeners = 1;
  cfg.engine.tier = engine::Tier::kInterpFast;
  cfg.instantiation = InstantiationMode::kSnapshot;
  cfg.warm_pool.enabled = false;  // deterministic: every request on-demand
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ok", *wasm).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  for (int i = 0; i < 8; ++i) {
    int status = 0;
    auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ok",
                                        {}, &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 200);
    EXPECT_EQ(std::string(resp->begin(), resp->end()), "ok");
  }
  rt.stop();

  Runtime::StatsSnapshot snap = rt.snapshot();
  ASSERT_EQ(snap.modules.size(), 1u);
  EXPECT_EQ(snap.modules[0].requests, 8u);
  EXPECT_EQ(snap.modules[0].startup_snapshot.count, 8u)
      << "requests not recorded on the snapshot startup tier";
  SnapshotRegistry::Counters c = SnapshotRegistry::instance().counters();
  EXPECT_EQ(c.builds, 1u);
  EXPECT_GE(c.hits, 8u);
}

}  // namespace
}  // namespace sledge::runtime
