// Deadline enforcement and graceful degradation (paper §3.4 multi-tenancy):
// a runaway request must be killed with 504 close to its budget while
// concurrent well-behaved tenants keep completing; blocked sandboxes honor
// wall-clock deadlines; stop() drains in-flight requests instead of
// abandoning them.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const std::string& src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

const char* kSleepSrc = R"(
char out[1];
int main() { sleep_ms(200); out[0] = 122; resp_write(out, 1); return 0; }
)";

// The acceptance scenario: an infinite loop against a module with a 50 ms
// CPU budget comes back 504 in under 2x the budget, while a concurrent
// well-behaved module keeps serving, and the runtime stays healthy after.
TEST(DeadlineTest, RunawayGets504WithinTwiceBudgetWithoutCollateral) {
  constexpr uint64_t kBudgetNs = 50'000'000;  // 50 ms
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.quantum_us = 5000;
  Runtime rt(cfg);
  ModuleLimits limits;
  limits.execution_budget_ns = kBudgetNs;
  ASSERT_TRUE(
      rt.register_module("loop", compile(testutil::kInfiniteLoopSrc), limits)
          .is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int loop_status = 0;
  double loop_ms = 0;
  std::thread runaway([&] {
    uint64_t t0 = now_ns();
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/loop",
                                     {}, &loop_status);
    loop_ms = ns_to_ms(now_ns() - t0);
    EXPECT_TRUE(r.ok()) << r.error_message();
  });

  // While the runaway burns its budget, the other tenant must be served.
  for (int i = 0; i < 5; ++i) {
    int status = 0;
    auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                        {}, &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 200);
    EXPECT_EQ(*resp, (std::vector<uint8_t>{'p'}));
  }

  runaway.join();
  EXPECT_EQ(loop_status, 504);
  EXPECT_LT(loop_ms, 2.0 * ns_to_ms(kBudgetNs));

  // Runtime stays healthy afterwards.
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);

  EXPECT_EQ(rt.totals().killed, 1u);
  std::string report = rt.stats_report();
  EXPECT_NE(report.find("killed=1"), std::string::npos) << report;
  EXPECT_NE(report.find("kills=1"), std::string::npos) << report;
  rt.stop();
}

// Same enforcement through the runtime-wide default budget (no per-module
// override), sharing one worker with a well-behaved tenant.
TEST(DeadlineTest, RuntimeDefaultBudgetAppliesToAllModules) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.quantum_us = 2000;
  cfg.execution_budget_ns = 30'000'000;  // 30 ms for everyone
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("loop", compile(testutil::kInfiniteLoopSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread runaway([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/loop",
                                     {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 504);
  });
  // Well-behaved pings (well under budget) share the single worker.
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  runaway.join();
  rt.stop();
  EXPECT_EQ(rt.totals().killed, 1u);
}

// Wall-clock deadlines cover time spent cooperatively blocked: a sandbox
// sleeping 200 ms under a 40 ms deadline is killed early, from the blocked
// state, with a 504.
TEST(DeadlineTest, WallClockDeadlineKillsBlockedSandbox) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ModuleLimits limits;
  limits.deadline_ns = 40'000'000;  // 40 ms, sleep is 200 ms
  ASSERT_TRUE(rt.register_module("sleep", compile(kSleepSrc), limits).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  uint64_t t0 = now_ns();
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/sleep",
                                      {}, &status);
  double ms = ns_to_ms(now_ns() - t0);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 504);
  EXPECT_LT(ms, 150.0);  // killed well before the 200 ms sleep finishes
  rt.stop();
  EXPECT_EQ(rt.totals().killed, 1u);
}

// Kills must not poison the engine's trap plumbing: after a kill on the
// same worker, a genuinely trapping request still reports 500 (not 504,
// not a crash) and a healthy request still completes.
TEST(DeadlineTest, TrapHandlingSurvivesAKill) {
  const char* trap_src = "int main() { int z = 0; return 1 / z; }";
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.execution_budget_ns = 20'000'000;
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("loop", compile(testutil::kInfiniteLoopSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("boom", compile(trap_src)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int status = 0;
  (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/loop", {},
                                &status);
  EXPECT_EQ(status, 504);
  (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/boom", {},
                                &status);
  EXPECT_EQ(status, 500);
  (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {},
                                &status);
  EXPECT_EQ(status, 200);
  rt.stop();
  auto t = rt.totals();
  EXPECT_EQ(t.killed, 1u);
  EXPECT_EQ(t.failed, 1u);
  EXPECT_EQ(t.completed, 1u);
}

// stop() must drain in-flight work within the grace period: a request that
// is mid-flight when stop() begins still gets its 200.
TEST(DeadlineTest, StopDrainsInFlightRequests) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.drain_grace_ns = 5'000'000'000;  // generous bound
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("spin", compile(testutil::spin_src(20000000)))
                  .is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int status = 0;
  std::vector<uint8_t> body;
  std::thread client([&] {
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin",
                                     {}, &status);
    ASSERT_TRUE(r.ok()) << r.error_message();
    body = *r;
  });
  // Let the request get admitted, then stop while it is executing.
  while (rt.inflight() == 0 && rt.totals().completed == 0) ::usleep(500);
  rt.stop();
  client.join();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, (std::vector<uint8_t>{'s'}));
  EXPECT_EQ(rt.totals().completed, 1u);
  EXPECT_EQ(rt.totals().drained, 0u);
}

// A runaway with no budget cannot stall shutdown forever: the drain grace
// period bounds stop(), and the abandoned sandbox is counted.
TEST(DeadlineTest, DrainGracePeriodBoundsShutdown) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.quantum_us = 2000;
  cfg.drain_grace_ns = 100'000'000;  // 100 ms grace
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("loop", compile(testutil::kInfiniteLoopSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread client([&] {
    int status = 0;
    // Connection dies at shutdown; either outcome is fine, it must not hang.
    (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/loop", {},
                                  &status);
  });
  while (rt.inflight() == 0) ::usleep(500);
  uint64_t t0 = now_ns();
  rt.stop();
  double stop_ms = ns_to_ms(now_ns() - t0);
  EXPECT_LT(stop_ms, 2000.0);  // grace (100ms) + teardown, not forever
  EXPECT_EQ(rt.totals().drained, 1u);
  client.join();
}

}  // namespace
}  // namespace sledge::runtime
