// Sanitizer-safe soak of the zero-copy dataplane's shared state: the
// transfer-buffer pool (pow2 bucketing, 4 KiB floor, zero-on-tenant-change,
// outstanding-loan ledger), the TransferLoan last-holder-returns contract
// under racing destructor orders, and the dispatcher's locality-hinted
// inject queues (no sandbox lost or duplicated, hints routed, overflow to
// the shared entrance). No sandbox ever *executes* here — no ucontext
// switches or SIGALRM — so the whole file runs under tsan and asan; this is
// what the `tsan-invoke` preset races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sledge/dispatcher.hpp"
#include "sledge/resource_pool.hpp"

namespace sledge::runtime {
namespace {

bool is_pow2(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

bool all_zero(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

uint64_t outstanding() {
  return SandboxResourcePool::instance().counters().transfer_outstanding;
}

// Capacity contract: pow2-bucketed with a 4 KiB floor, always >= the
// requested minimum, and the outstanding gauge tracks live loans exactly.
TEST(InvokeSoakTest, TransferBucketingFloorAndPow2) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.purge();
  const uint64_t base = outstanding();

  struct Case {
    size_t min_cap;
    size_t want_cap;
  };
  for (const Case& c : {Case{1, 4096}, Case{4096, 4096}, Case{4097, 8192},
                        Case{5000, 8192}, Case{65536, 65536},
                        Case{100'000, 131'072}}) {
    TransferBuffer* tb = pool.acquire_transfer(c.min_cap, 1);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(tb->cap, c.want_cap) << "min_cap=" << c.min_cap;
    EXPECT_TRUE(is_pow2(tb->cap));
    EXPECT_GE(tb->cap, c.min_cap);
    EXPECT_EQ(outstanding(), base + 1);
    // The full capacity is writable (ASan would flag an undersized alloc).
    std::memset(tb->data, 0x5a, tb->cap);
    pool.release_transfer(tb);
    EXPECT_EQ(outstanding(), base);
  }
}

// Isolation canary: a pooled buffer whose next borrower is a different
// tenant pair is zeroed before handout — one chain's payload can never
// leak into another tenant's buffer. Fresh buffers start zeroed too.
TEST(InvokeSoakTest, ZeroedOnTenantChange) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.purge();

  auto before = pool.counters();
  TransferBuffer* tb = pool.acquire_transfer(32768, 0xAAAA);
  ASSERT_NE(tb, nullptr);
  EXPECT_TRUE(all_zero(tb->data, tb->cap));  // fresh buffers start zeroed
  std::memset(tb->data, 0xEE, tb->cap);      // tenant A's "secret"
  tb->len = 1234;
  pool.release_transfer(tb);

  // Same tenant key: served warm from the bucket (zeroing skipped is the
  // perf point, but contents are this tenant's own — nothing to assert).
  tb = pool.acquire_transfer(32768, 0xAAAA);
  ASSERT_NE(tb, nullptr);
  pool.release_transfer(tb);

  // Tenant change: the recycled buffer must come back fully zeroed.
  tb = pool.acquire_transfer(32768, 0xBBBB);
  ASSERT_NE(tb, nullptr);
  EXPECT_TRUE(all_zero(tb->data, tb->cap));
  pool.release_transfer(tb);

  auto after = pool.counters();
  EXPECT_EQ(after.transfer_misses - before.transfer_misses, 1u);
  EXPECT_EQ(after.transfer_hits - before.transfer_hits, 2u);
  EXPECT_EQ(after.transfer_outstanding, before.transfer_outstanding);
}

// TransferLoan contract: parent hostcall frame, InvokeJoin, and child
// sandbox all hold shared references and may die in any order on any
// thread; whoever drops last returns the buffer to the pool exactly once.
TEST(InvokeSoakTest, LoanLastHolderReturnsExactlyOnce) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.purge();
  const uint64_t base = outstanding();
  Rng rng(0x10a7);

  for (int round = 0; round < 200; ++round) {
    TransferBuffer* tb = pool.acquire_transfer(4096, round);
    ASSERT_NE(tb, nullptr);
    auto loan = std::make_shared<TransferLoan>(tb);
    ASSERT_EQ(outstanding(), base + 1);

    // Three "holders" racing to be the one that drops last.
    std::vector<std::thread> holders;
    for (int h = 0; h < 3; ++h) {
      uint32_t spin = rng.below(500);
      holders.emplace_back([ref = loan, spin]() mutable {
        volatile uint32_t sink = 0;
        for (uint32_t i = 0; i < spin; ++i) sink = i;
        (void)sink;
        ref.reset();
      });
    }
    loan.reset();
    for (std::thread& t : holders) t.join();
    ASSERT_EQ(outstanding(), base) << "round " << round;
  }
}

// Threaded pool soak: four tenants hammer overlapping size buckets with
// loans whose last reference drops on another thread (the worker-to-worker
// release path). Under tsan this races acquire/release/zeroing; the ledger
// must read zero once everyone is done.
TEST(InvokeSoakTest, ThreadedAcquireReleaseSoak) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.purge();
  const uint64_t base = outstanding();

  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool] {
      Rng rng(0x50AC + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        size_t min_cap = 1 + rng.below(20'000);
        uint64_t tenant = rng.below(4);
        TransferBuffer* tb = pool.acquire_transfer(min_cap, tenant);
        ASSERT_NE(tb, nullptr);
        ASSERT_GE(tb->cap, min_cap);
        ASSERT_TRUE(is_pow2(tb->cap));
        tb->data[0] = static_cast<uint8_t>(i);
        tb->data[tb->cap - 1] = static_cast<uint8_t>(t);
        tb->len = min_cap;
        auto loan = std::make_shared<TransferLoan>(tb);
        if (rng.chance(0.25)) {
          // Cross-thread release: the detached holder drops last.
          std::thread([ref = std::move(loan)]() mutable {
            ref.reset();
          }).join();
        } else {
          loan.reset();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(outstanding(), base);

  auto c = pool.counters();
  EXPECT_GT(c.transfer_hits, 0u);  // warm reuse actually happened
}

// Locality-hinted injection routes to the hinted worker's queue, overflows
// past the per-worker cap (16) to the shared entrance, and loses nothing.
TEST(InvokeSoakTest, HintedInjectRoutesAndOverflows) {
  constexpr int kWorkers = 4;
  Distributor d(DistPolicy::kWorkStealing, kWorkers);
  // The Distributor never dereferences queued pointers (that is what makes
  // this sanitizer-safe): tag values stand in for sandboxes.
  auto tag = [](uintptr_t i) { return reinterpret_cast<Sandbox*>(i); };

  // 20 hinted injects at worker 1: 16 land on its hinted queue, 4 overflow
  // to the shared side entrance where any worker may fetch them.
  for (uintptr_t i = 1; i <= 20; ++i) d.inject(tag(i), 1);
  Sandbox* out = nullptr;
  int from_worker3 = 0;
  while (d.fetch(3, &out)) ++from_worker3;
  EXPECT_EQ(from_worker3, 4);  // only the overflow is visible elsewhere
  int from_worker1 = 0;
  while (d.fetch(1, &out)) ++from_worker1;
  EXPECT_EQ(from_worker1, 16);  // the hinted 16 stayed home
}

// Concurrency contract of the hinted path: racing producers (listener push,
// unhinted inject, hinted inject to every worker) against racing consumers;
// every sandbox fetched exactly once, none invented, none lost.
TEST(InvokeSoakTest, HintedInjectNoLossNoDupUnderRace) {
  static constexpr int kWorkers = 4;
  static constexpr uintptr_t kPerProducer = 5000;
  static constexpr int kProducers = 3;
  static constexpr uintptr_t kTotal = kPerProducer * kProducers;
  Distributor d(DistPolicy::kWorkStealing, kWorkers);
  auto tag = [](uintptr_t i) { return reinterpret_cast<Sandbox*>(i); };

  std::atomic<bool> producers_done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &d, &tag] {
      Rng rng(0xF00D + static_cast<uint64_t>(p));
      uintptr_t lo = 1 + static_cast<uintptr_t>(p) * kPerProducer;
      for (uintptr_t i = lo; i < lo + kPerProducer; ++i) {
        if (p == 0) {
          d.push(tag(i));  // the listener-shard front door
        } else {
          // Hinted and unhinted side entrances, hint cycling all workers.
          int hint = static_cast<int>(rng.below(kWorkers + 1)) - 1;
          d.inject(tag(i), hint);
        }
      }
    });
  }

  std::vector<std::atomic<uint32_t>> seen(kTotal + 1);
  for (auto& s : seen) s.store(0);
  std::atomic<uint64_t> fetched{0};
  std::vector<std::thread> consumers;
  for (int w = 0; w < kWorkers; ++w) {
    consumers.emplace_back([w, &d, &seen, &fetched, &producers_done] {
      Sandbox* out = nullptr;
      for (;;) {
        if (d.fetch(w, &out)) {
          uintptr_t id = reinterpret_cast<uintptr_t>(out);
          ASSERT_GE(id, 1u);
          ASSERT_LE(id, kTotal);
          seen[id].fetch_add(1, std::memory_order_relaxed);
          fetched.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   fetched.load(std::memory_order_relaxed) == kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(fetched.load(), kTotal);
  for (uintptr_t i = 1; i <= kTotal; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "sandbox " << i;
  }
  EXPECT_EQ(d.backlog_estimate(), 0);
}

}  // namespace
}  // namespace sledge::runtime
