// Wasm layer tests: LEB128 encoding, binary decoding (including a
// truncation-sweep property test), and builder round-trips.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/leb128.hpp"
#include "wasm/validator.hpp"

namespace sledge::wasm {
namespace {

TEST(Leb128Test, U32RoundTrip) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 300u, 16384u, 0xFFFFFFu, 0xFFFFFFFFu}) {
    ByteWriter w;
    w.u32_leb(v);
    ByteReader r(w.bytes);
    EXPECT_EQ(r.read_u32_leb(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Leb128Test, I32RoundTrip) {
  for (int32_t v : {0, 1, -1, 63, 64, -64, -65, 127, 128, INT32_MAX,
                    INT32_MIN, -123456}) {
    ByteWriter w;
    w.i32_leb(v);
    ByteReader r(w.bytes);
    EXPECT_EQ(r.read_i32_leb(), v) << v;
    EXPECT_TRUE(r.ok());
  }
}

TEST(Leb128Test, I64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, INT64_MAX, INT64_MIN,
                    int64_t{1} << 40, -(int64_t{1} << 40)}) {
    ByteWriter w;
    w.i64_leb(v);
    ByteReader r(w.bytes);
    EXPECT_EQ(r.read_i64_leb(), v) << v;
    EXPECT_TRUE(r.ok());
  }
}

TEST(Leb128Test, RejectsOverlongU32) {
  // Six continuation bytes is over the u32 limit.
  std::vector<uint8_t> bytes = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  ByteReader r(bytes);
  r.read_u32_leb();
  EXPECT_FALSE(r.ok());
}

TEST(Leb128Test, RejectsNonzeroHighBits) {
  // 5th byte with bits beyond 32 set.
  std::vector<uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  ByteReader r(bytes);
  r.read_u32_leb();
  EXPECT_FALSE(r.ok());
}

TEST(Leb128Test, PropertyRandomRoundTrip) {
  sledge::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    uint32_t u = rng.next_u32();
    int64_t s = static_cast<int64_t>(rng.next_u64());
    ByteWriter w;
    w.u32_leb(u);
    w.i64_leb(s);
    ByteReader r(w.bytes);
    EXPECT_EQ(r.read_u32_leb(), u);
    EXPECT_EQ(r.read_i64_leb(), s);
    EXPECT_TRUE(r.ok());
  }
}

// A small, representative module used by several tests.
std::vector<uint8_t> sample_module() {
  ModuleBuilder b;
  using V = ValType;
  uint32_t t_bin = b.add_type({V::kI32, V::kI32}, {V::kI32});
  uint32_t t_nul = b.add_type({}, {V::kI32});
  uint32_t imp = b.add_import("env", "req_len", t_nul);
  b.set_memory(1, 2);
  b.set_table(2, 4);
  b.add_global(V::kI32, true, 7);
  b.add_global(V::kF64, false, 0x3FF0000000000000ull);  // 1.0
  uint32_t f_add = b.declare_function(t_bin);
  uint32_t f_go = b.declare_function(t_nul);
  {
    auto& f = b.function(f_add);
    f.local_get(0);
    f.local_get(1);
    f.emit(Op::kI32Add);
    f.end();
  }
  {
    auto& f = b.function(f_go);
    f.i32_const(20);
    f.i32_const(22);
    f.i32_const(0);
    f.call_indirect(t_bin);
    f.end();
  }
  b.add_element(0, {f_add, imp});
  b.add_data(16, {1, 2, 3, 4});
  b.export_function("add", f_add);
  b.export_function("go", f_go);
  b.add_export("mem", ExternalKind::kMemory, 0);
  return b.build();
}

TEST(DecoderTest, DecodesBuilderOutput) {
  auto mod = decode(sample_module());
  ASSERT_TRUE(mod.ok()) << mod.error_message();
  EXPECT_EQ(mod->types.size(), 2u);
  EXPECT_EQ(mod->imports.size(), 1u);
  EXPECT_EQ(mod->functions.size(), 2u);
  ASSERT_TRUE(mod->memory.has_value());
  EXPECT_EQ(mod->memory->min, 1u);
  EXPECT_EQ(mod->memory->max, 2u);
  ASSERT_TRUE(mod->table.has_value());
  EXPECT_EQ(mod->table->min, 2u);
  EXPECT_EQ(mod->globals.size(), 2u);
  EXPECT_EQ(mod->globals[0].init_value, 7u);
  EXPECT_TRUE(mod->globals[0].mutable_);
  EXPECT_FALSE(mod->globals[1].mutable_);
  EXPECT_EQ(mod->exports.size(), 3u);
  ASSERT_EQ(mod->data.size(), 1u);
  EXPECT_EQ(mod->data[0].offset, 16u);
  EXPECT_EQ(mod->data[0].bytes, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_NE(mod->find_export("add", ExternalKind::kFunction), nullptr);
  EXPECT_EQ(mod->find_export("nope", ExternalKind::kFunction), nullptr);
  EXPECT_TRUE(validate(*mod).is_ok());
}

TEST(DecoderTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = {0x00, 'b', 's', 'm', 1, 0, 0, 0};
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(DecoderTest, RejectsBadVersion) {
  std::vector<uint8_t> bytes = {0x00, 'a', 's', 'm', 2, 0, 0, 0};
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(DecoderTest, RejectsEmpty) {
  EXPECT_FALSE(decode(std::vector<uint8_t>{}).ok());
}

// Property: truncating a valid module mid-section must be rejected; a
// prefix is only allowed to decode when it ends exactly on a section
// boundary (in which case it is a legitimately smaller module). No prefix
// may crash the decoder.
TEST(DecoderTest, PropertyTruncationAlwaysRejected) {
  std::vector<uint8_t> bytes = sample_module();

  // Walk the section headers to find the legal cut points.
  std::set<size_t> boundaries = {8};  // after magic+version
  {
    size_t pos = 8;
    while (pos < bytes.size()) {
      ++pos;  // id byte
      uint32_t size = 0;
      int shift = 0;
      while (pos < bytes.size()) {
        uint8_t b = bytes[pos++];
        size |= static_cast<uint32_t>(b & 0x7F) << shift;
        shift += 7;
        if ((b & 0x80) == 0) break;
      }
      pos += size;
      boundaries.insert(pos);
    }
  }

  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    auto result = decode(prefix);
    if (boundaries.count(len)) {
      continue;  // may legitimately decode as a smaller module
    }
    EXPECT_FALSE(result.ok()) << "truncated to " << len << " bytes";
  }
}

// Property: single-byte corruptions never crash the decoder (they may or
// may not decode; decoded modules must then survive validation without
// crashing too).
TEST(DecoderTest, PropertyByteFlipsNeverCrash) {
  std::vector<uint8_t> bytes = sample_module();
  sledge::Rng rng(41);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    size_t pos = 8 + rng.below(static_cast<uint32_t>(bytes.size() - 8));
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
    auto result = decode(mutated);
    if (result.ok()) {
      (void)validate(*result);  // must not crash
    }
  }
}

TEST(DecoderTest, RejectsOutOfOrderSections) {
  // memory section (5) followed by type section (1).
  ByteWriter w;
  w.u8(0); w.u8('a'); w.u8('s'); w.u8('m');
  w.u8(1); w.u8(0); w.u8(0); w.u8(0);
  w.u8(5); w.u32_leb(3); w.u32_leb(1); w.u8(0); w.u32_leb(1);
  w.u8(1); w.u32_leb(1); w.u32_leb(0);
  EXPECT_FALSE(decode(w.bytes).ok());
}

TEST(DecoderTest, RejectsNonFunctionImports) {
  ByteWriter w;
  w.u8(0); w.u8('a'); w.u8('s'); w.u8('m');
  w.u8(1); w.u8(0); w.u8(0); w.u8(0);
  // import section with a memory import
  ByteWriter payload;
  payload.u32_leb(1);
  payload.name("env");
  payload.name("memory");
  payload.u8(2);  // memory import
  payload.u8(0);
  payload.u32_leb(1);
  w.u8(2);
  w.u32_leb(static_cast<uint32_t>(payload.bytes.size()));
  w.raw(payload.bytes);
  EXPECT_FALSE(decode(w.bytes).ok());
}

TEST(DecoderTest, AcceptsCustomSections) {
  std::vector<uint8_t> bytes = sample_module();
  // Append a custom section (id 0).
  bytes.push_back(0);
  bytes.push_back(3);
  bytes.push_back(1);  // name length 1
  bytes.push_back('x');
  bytes.push_back(0xAB);  // payload
  EXPECT_TRUE(decode(bytes).ok());
}

TEST(BuilderTest, TypeDeduplication) {
  ModuleBuilder b;
  uint32_t t1 = b.add_type({ValType::kI32}, {ValType::kI32});
  uint32_t t2 = b.add_type({ValType::kI32}, {ValType::kI32});
  uint32_t t3 = b.add_type({ValType::kI64}, {ValType::kI32});
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);
}

TEST(BuilderTest, MemoryWithoutMax) {
  ModuleBuilder b;
  b.set_memory(3);
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(mod->memory.has_value());
  EXPECT_EQ(mod->memory->min, 3u);
  EXPECT_FALSE(mod->memory->has_max);
}

}  // namespace
}  // namespace sledge::wasm
