// mini-C compiler tests: lexer/parser/sema diagnostics and end-to-end
// execution of every language feature through the fast interpreter, plus a
// native-twin equivalence check through the C backend.
#include <gtest/gtest.h>

#include <dlfcn.h>

#include "minicc/lexer.hpp"
#include "minicc/minicc.hpp"
#include "test_util.hpp"

namespace sledge::minicc {
namespace {

using engine::Tier;
using engine::Value;
using sledge::testutil::run_module;

engine::WasmModule::Config fast_cfg() {
  engine::WasmModule::Config cfg;
  cfg.tier = Tier::kInterpFast;
  return cfg;
}

// Compiles `src` and runs exported `fn` with int args; expects an int.
int32_t run_int(const std::string& src, const std::string& fn,
                std::vector<int32_t> args = {}) {
  auto wasm = compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  if (!wasm.ok()) return INT32_MIN;
  std::vector<Value> values;
  for (int32_t a : args) values.push_back(Value::i32(a));
  auto out = run_module(wasm.value(), fast_cfg(), fn, values);
  EXPECT_TRUE(out.ok()) << out.describe();
  if (!out.ok() || !out.value) return INT32_MIN;
  return out.value->as_i32();
}

double run_double(const std::string& src, const std::string& fn,
                  std::vector<double> args = {}) {
  auto wasm = compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  if (!wasm.ok()) return -1;
  std::vector<Value> values;
  for (double a : args) values.push_back(Value::f64(a));
  auto out = run_module(wasm.value(), fast_cfg(), fn, values);
  EXPECT_TRUE(out.ok()) << out.describe();
  if (!out.ok() || !out.value) return -1;
  return out.value->as_f64();
}

TEST(LexerTest, TokenizesOperators) {
  auto toks = lex("<< >> <= >= == != && || ++ -- += /*c*/ //x\nb");
  ASSERT_TRUE(toks.ok());
  const auto& t = *toks;
  Tok expected[] = {Tok::kShl, Tok::kShr, Tok::kLe, Tok::kGe, Tok::kEq,
                    Tok::kNe, Tok::kAndAnd, Tok::kOrOr, Tok::kPlusPlus,
                    Tok::kMinusMinus, Tok::kPlusEq, Tok::kIdent, Tok::kEof};
  ASSERT_EQ(t.size(), 13u);
  for (size_t i = 0; i < 13; ++i) EXPECT_EQ(t[i].kind, expected[i]) << i;
  EXPECT_EQ(t[11].line, 2);  // comment newline counted
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(lex("int a @ b;").ok());
  EXPECT_FALSE(lex("x $ y").ok());
}

TEST(LexerTest, NumbersAndSuffixes) {
  auto toks = lex("42 0x1F 3.5 1e3 2.5f 7L");
  ASSERT_TRUE(toks.ok());
  const auto& t = *toks;
  EXPECT_EQ(t[0].int_value, 42);
  EXPECT_EQ(t[1].int_value, 31);
  EXPECT_DOUBLE_EQ(t[2].float_value, 3.5);
  EXPECT_DOUBLE_EQ(t[3].float_value, 1000.0);
  EXPECT_EQ(t[4].kind, Tok::kFloatLit);
  EXPECT_EQ(t[4].text, "f");
  EXPECT_EQ(t[5].kind, Tok::kIntLit);
  EXPECT_EQ(t[5].text, "L");
}

TEST(LexerTest, UnterminatedCommentErrors) {
  EXPECT_FALSE(lex("int a; /* never closed").ok());
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(frontend("int main( { return 0; }").ok());
  EXPECT_FALSE(frontend("int main() { return 0 }").ok());
  EXPECT_FALSE(frontend("int main() { if return; }").ok());
  EXPECT_FALSE(frontend("int x[; ").ok());
  EXPECT_FALSE(frontend("int main() { 1 = 2; }").ok());
}

TEST(SemaTest, RejectsTypeErrors) {
  EXPECT_FALSE(frontend("int main() { return y; }").ok());
  EXPECT_FALSE(frontend("int main() { foo(); return 0; }").ok());
  EXPECT_FALSE(frontend("double d; int main() { return d[0]; }").ok());
  EXPECT_FALSE(frontend("int a[4]; int main() { return a; }").ok());
  EXPECT_FALSE(frontend("int a[4][4]; int main() { return a[0]; }").ok());
  EXPECT_FALSE(frontend("int main() { break; }").ok());
  EXPECT_FALSE(frontend("int main() { int x; int x; return 0; }").ok());
  EXPECT_FALSE(frontend("void f() {} int main() { return f() + 1; }").ok());
  EXPECT_FALSE(frontend("int main() { return 1.5 % 2; }").ok());
  EXPECT_FALSE(frontend("int sqrt() { return 0; }").ok());
}

TEST(SemaTest, RejectsBadBuiltinUse) {
  EXPECT_FALSE(frontend("int main() { return req_len(1); }").ok());
  EXPECT_FALSE(frontend("int main() { return req_read(1, 2, 3); }").ok());
  EXPECT_FALSE(frontend("int x; int main() { return req_read(x, 0, 1); }").ok());
}

TEST(MiniccExecTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(run_int("int main() { return 2 + 3 * 4 - 6 / 2; }", "main"), 11);
  EXPECT_EQ(run_int("int main() { return (2 + 3) * 4 % 7; }", "main"), 6);
  EXPECT_EQ(run_int("int main() { return 1 << 4 | 3; }", "main"), 19);
  EXPECT_EQ(run_int("int main() { return ~0 & 0xFF; }", "main"), 255);
  EXPECT_EQ(run_int("int main() { return -7 / 2; }", "main"), -3);  // trunc
  EXPECT_EQ(run_int("int main() { return -7 % 2; }", "main"), -1);
}

TEST(MiniccExecTest, ComparisonAndLogical) {
  EXPECT_EQ(run_int("int main() { return (3 < 4) + (4 <= 4) + (5 > 9); }",
                    "main"),
            2);
  EXPECT_EQ(run_int("int main() { return 1 && 2; }", "main"), 1);
  EXPECT_EQ(run_int("int main() { return 0 || 0; }", "main"), 0);
  EXPECT_EQ(run_int("int main() { return !5; }", "main"), 0);
  EXPECT_EQ(run_int("int main() { return !0; }", "main"), 1);
}

TEST(MiniccExecTest, ShortCircuitSkipsSideEffects) {
  const char* src = R"(
    int g = 0;
    int bump() { g = g + 1; return 1; }
    int main() {
      int a = 0 && bump();
      int b = 1 || bump();
      return g * 10 + a + b;
    }
  )";
  EXPECT_EQ(run_int(src, "main"), 1);  // bump never ran
}

TEST(MiniccExecTest, TernaryAndNestedCalls) {
  const char* src = R"(
    int maxi(int a, int b) { return a > b ? a : b; }
    int main() { return maxi(maxi(1, 7), 5); }
  )";
  EXPECT_EQ(run_int(src, "main"), 7);
}

TEST(MiniccExecTest, WhileForBreakContinue) {
  const char* src = R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 20) break;
        sum += i;
      }
      int j = 0;
      while (j < 5) { sum += 100; j++; }
      return sum;
    }
  )";
  // odd numbers 1..19 sum to 100, plus 500
  EXPECT_EQ(run_int(src, "main"), 600);
}

TEST(MiniccExecTest, RecursionWorks) {
  const char* src = R"(
    int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
    int main() { return fact(10); }
  )";
  EXPECT_EQ(run_int(src, "main"), 3628800);
}

TEST(MiniccExecTest, ForwardReferences) {
  // mini-C has no prototypes; later same-file definitions resolve fine.
  const char* src = R"(
    int odd(int n) { if (n == 0) return 0; return even(n - 1); }
    int even(int n) { if (n == 0) return 1; return odd(n - 1); }
    int main() { return even(10) * 10 + odd(7); }
  )";
  EXPECT_EQ(run_int(src, "main"), 11);
}

TEST(MiniccExecTest, GlobalsAndArrays2D) {
  const char* src = R"(
    int counter = 5;
    double M[4][6];
    int main() {
      for (int i = 0; i < 4; i++)
        for (int j = 0; j < 6; j++)
          M[i][j] = (double)(i * 10 + j);
      counter += 1;
      return (int)M[3][5] + counter;
    }
  )";
  EXPECT_EQ(run_int(src, "main"), 41);
}

TEST(MiniccExecTest, CharArraysPromoteAndNarrow) {
  const char* src = R"(
    char buf[8];
    int main() {
      buf[0] = 300;        // narrows to 44
      buf[1] = 255;
      return buf[0] + buf[1];  // 44 + 255 (unsigned char reads)
    }
  )";
  EXPECT_EQ(run_int(src, "main"), 299);
}

TEST(MiniccExecTest, TypeConversions) {
  EXPECT_EQ(run_int("int main() { return (int)3.99; }", "main"), 3);
  EXPECT_EQ(run_int("int main() { return (int)-3.99; }", "main"), -3);
  EXPECT_DOUBLE_EQ(
      run_double("double main() { return (double)7 / (double)2; }", "main"),
      3.5);
  EXPECT_EQ(run_int("long big() { return 5000000000L; }\n"
                    "int main() { return (int)(big() / 1000000000L); }",
                    "main"),
            5);
  EXPECT_DOUBLE_EQ(run_double("float h() { return 0.5f; }\n"
                              "double main() { return (double)h() + 0.25; }",
                              "main"),
                   0.75);
}

TEST(MiniccExecTest, MathBuiltins) {
  EXPECT_DOUBLE_EQ(run_double("double main() { return sqrt(16.0); }", "main"),
                   4.0);
  EXPECT_DOUBLE_EQ(
      run_double("double main() { return fabs(-2.5) + floor(1.9) + ceil(0.1); }",
                 "main"),
      4.5);
  EXPECT_NEAR(run_double("double main() { return exp(1.0); }", "main"),
              2.718281828, 1e-8);
  EXPECT_NEAR(run_double("double main() { return pow(2.0, 10.0); }", "main"),
              1024.0, 1e-9);
  EXPECT_NEAR(run_double("double main() { return sin(0.0) + cos(0.0); }",
                         "main"),
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      run_double("double main() { return fmin(1.0, 2.0) + fmax(1.0, 2.0); }",
                 "main"),
      3.0);
}

TEST(MiniccExecTest, CompoundAssignAndIncDec) {
  const char* src = R"(
    int main() {
      int x = 10;
      x += 5; x -= 3; x *= 2; x /= 4;
      int y = ++x;        // value-of-assignment semantics
      int z = x--;        // documented quirk: postfix == prefix value
      return x * 100 + y * 10 + z;
    }
  )";
  // x: 10->15->12->24->6; ++x -> 7, y=7; x-- -> 6, z=6; x=6
  // 6*100 + 7*10 + 6 = 676
  EXPECT_EQ(run_int(src, "main"), 676);
}

TEST(MiniccExecTest, ServerlessAbi) {
  const char* src = R"(
    char buf[64];
    int main() {
      int n = req_len();
      req_read(buf, 0, n);
      for (int i = 0; i < n; i++) buf[i] = buf[i] + 1;
      resp_write(buf, n);
      return n;
    }
  )";
  auto wasm = compile_to_wasm(src);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  engine::ServerlessEnv env;
  env.request = {'a', 'b', 'c'};
  auto out = run_module(wasm.value(), fast_cfg(), "run", {}, &env);
  ASSERT_TRUE(out.ok()) << out.describe();
  EXPECT_EQ(env.response, (std::vector<uint8_t>{'b', 'c', 'd'}));
}

TEST(MiniccExecTest, MainExportedAsRun) {
  auto wasm = compile_to_wasm("int main() { return 7; }");
  ASSERT_TRUE(wasm.ok());
  auto out = run_module(wasm.value(), fast_cfg(), "run", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value->as_i32(), 7);
}

TEST(CodegenCTest, EmitsCompilableC) {
  const char* src = R"(
    double A[3][3];
    int helper(int x) { return x * 2; }
    int main() {
      A[1][2] = sqrt(2.0);
      return helper(21) + (int)A[1][2];
    }
  )";
  auto c = compile_to_c(src, "tw_");
  ASSERT_TRUE(c.ok()) << c.error_message();
  EXPECT_NE(c->find("int32_t tw_main(void)"), std::string::npos);
  EXPECT_NE(c->find("static double tw_A[3][3]"), std::string::npos);
  EXPECT_NE(c->find("tw_helper"), std::string::npos);
  EXPECT_NE(c->find("sqrt"), std::string::npos);
}

// Native-twin equivalence: run a program in Wasm and compile its C twin
// with the system compiler; results must agree.
TEST(CodegenCTest, NativeTwinAgreesWithWasm) {
  const char* src = R"(
    double acc[4];
    int main() {
      double s = 0.0;
      for (int i = 1; i <= 64; i++) {
        acc[i % 4] = sqrt((double)i) * 3.0;
        s += acc[i % 4];
      }
      return (int)s;
    }
  )";
  int32_t wasm_result = run_int(src, "main");

  // Build + dlopen the C twin.
  auto c = compile_to_c(src, "twin_");
  ASSERT_TRUE(c.ok());
  std::string full = *c +
                     "\nint32_t mc_req_len(void){return 0;}"
                     "\nint32_t mc_req_read(void*d,int32_t o,int32_t l){(void)d;(void)o;(void)l;return 0;}"
                     "\nint32_t mc_resp_write(const void*s,int32_t l){(void)s;(void)l;return 0;}"
                     "\nvoid mc_sleep_ms(int32_t m){(void)m;}"
                     "\nvoid mc_debug_i32(int32_t v){(void)v;}"
                     "\ndouble mc_req_f64(int32_t o){(void)o;return 0;}"
                     "\nvoid mc_resp_f64(double v){(void)v;}"
                     "\nint32_t mc_req_i32(int32_t o){(void)o;return 0;}"
                     "\nvoid mc_resp_i32(int32_t v){(void)v;}\n";
  auto compiled = engine::compile_c_to_so(full, engine::CcOptions{});
  ASSERT_TRUE(compiled.ok()) << compiled.error_message();
  void* handle = dlopen(compiled->so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(handle, nullptr) << dlerror();
  auto twin_main =
      reinterpret_cast<int32_t (*)()>(dlsym(handle, "twin_main"));
  ASSERT_NE(twin_main, nullptr);
  EXPECT_EQ(twin_main(), wasm_result);
  dlclose(handle);
  engine::remove_work_dir(*compiled);
}

}  // namespace
}  // namespace sledge::minicc
