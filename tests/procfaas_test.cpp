// procfaas (Nuclio-model baseline) tests: the fork+exec invocation path,
// the HTTP server end-to-end with real function binaries, and the
// fork-only mode.
#include <gtest/gtest.h>

#include <cstdlib>

#include "loadgen/loadgen.hpp"
#include "procfaas/procfaas.hpp"

namespace sledge::procfaas {
namespace {

// fn_* binaries live next to the apps library in the build tree; the test
// binary receives the directory via compile definition.
std::string fn_path(const std::string& app) {
  return std::string(SLEDGE_FN_BINDIR) + "/fn_" + app;
}

TEST(SpawnTest, ForkExecRoundTrip) {
  std::vector<uint8_t> req = {'h', 'i'};
  std::vector<uint8_t> resp;
  ASSERT_TRUE(spawn_function_process(fn_path("echo"), req, &resp));
  EXPECT_EQ(resp, req);
}

TEST(SpawnTest, LargePayloadNoDeadlock) {
  // Larger than the pipe buffer in both directions.
  std::vector<uint8_t> req(400000);
  for (size_t i = 0; i < req.size(); ++i) req[i] = static_cast<uint8_t>(i);
  std::vector<uint8_t> resp;
  ASSERT_TRUE(spawn_function_process(fn_path("echo"), req, &resp));
  EXPECT_EQ(resp, req);
}

TEST(SpawnTest, MissingBinaryFails) {
  std::vector<uint8_t> resp;
  EXPECT_FALSE(spawn_function_process("/no/such/binary", {}, &resp));
}

TEST(ProcFaasTest, ServesPingOverHttp) {
  ProcFaasConfig cfg;
  cfg.max_workers = 2;
  ProcFaas pf(cfg);
  ASSERT_TRUE(pf.register_function("ping", fn_path("ping")).is_ok());
  ASSERT_TRUE(pf.start().is_ok());

  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", pf.bound_port(), "/ping",
                                      {}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*resp, (std::vector<uint8_t>{'p'}));
  pf.stop();
  EXPECT_EQ(pf.totals().requests, 1u);
}

TEST(ProcFaasTest, UnknownFunctionIs404) {
  ProcFaasConfig cfg;
  cfg.max_workers = 1;
  ProcFaas pf(cfg);
  ASSERT_TRUE(pf.start().is_ok());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", pf.bound_port(), "/nope",
                                      {}, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 404);
  pf.stop();
}

TEST(ProcFaasTest, RejectsUnregisterableBinary) {
  ProcFaasConfig cfg;
  ProcFaas pf(cfg);
  EXPECT_FALSE(pf.register_function("x", "/does/not/exist").is_ok());
}

TEST(ProcFaasTest, ConcurrentClientsEchoCorrectly) {
  ProcFaasConfig cfg;
  cfg.max_workers = 4;
  ProcFaas pf(cfg);
  ASSERT_TRUE(pf.register_function("echo", fn_path("echo")).is_ok());
  ASSERT_TRUE(pf.start().is_ok());

  loadgen::Options opt;
  opt.port = pf.bound_port();
  opt.path = "/echo";
  opt.body = {9, 8, 7};
  opt.expect_body = {9, 8, 7};
  opt.concurrency = 4;
  opt.total_requests = 40;
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 40u);
  EXPECT_EQ(report->errors, 0u);
  pf.stop();
}

// Regression: sustained concurrency above max_workers used to livelock —
// children inherited the pipe write-ends of overlapping invocations (no
// O_CLOEXEC) and never saw stdin EOF.
TEST(ProcFaasTest, SustainedOverSubscriptionDoesNotLivelock) {
  ProcFaasConfig cfg;
  cfg.max_workers = 4;
  ProcFaas pf(cfg);
  ASSERT_TRUE(pf.register_function("ping", fn_path("ping")).is_ok());
  ASSERT_TRUE(pf.start().is_ok());

  loadgen::Options opt;
  opt.port = pf.bound_port();
  opt.path = "/ping";
  opt.expect_body = {'p'};
  opt.concurrency = 12;  // 3x the worker cap, keep-alive connections
  opt.total_requests = 120;
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 120u);
  EXPECT_EQ(report->errors, 0u);
  pf.stop();
}

TEST(ProcFaasTest, ForkOnlyModeRunsHandlerInChild) {
  ProcFaasConfig cfg;
  cfg.max_workers = 1;
  cfg.mode = Mode::kForkOnly;
  ProcFaas pf(cfg);
  ASSERT_TRUE(pf.register_function(
                    "double",
                    [](const std::vector<uint8_t>& in,
                       std::vector<uint8_t>* out) {
                      for (uint8_t b : in) {
                        out->push_back(static_cast<uint8_t>(b * 2));
                      }
                    })
                  .is_ok());
  ASSERT_TRUE(pf.start().is_ok());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", pf.bound_port(), "/double",
                                      {1, 2, 3}, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*resp, (std::vector<uint8_t>{2, 4, 6}));
  pf.stop();
}

}  // namespace
}  // namespace sledge::procfaas
