// Dispatcher conformance + admission integration tests through the full
// server: one parameterized contract across every dispatcher×scheduler
// combination (no request lost or double-executed), global-EDF admit order
// under an injected burst (observed via the access log), the weighted
// fair-share starvation bound with one hot and one cold module, the
// 504-early "never consumes a sandbox slot" property, and a 2k-request
// mixed-deadline overload soak whose client-observed response codes must
// reconcile exactly with the server's shed/kill counters.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/json.hpp"
#include "http/http.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const std::string& src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

json::Value scrape_json(uint16_t port) {
  auto body = loadgen::http_get("127.0.0.1", port, "/admin/stats");
  EXPECT_TRUE(body.ok()) << body.error_message();
  auto doc = json::parse(body.ok() ? *body : "null");
  EXPECT_TRUE(doc.ok()) << doc.error_message();
  return doc.ok() ? *doc : json::Value();
}

int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads one full HTTP/1.1 response, returning the raw header block so tests
// can assert on Retry-After / Connection.
bool recv_response_full(int fd, int* status, std::string* headers,
                        std::string* body, std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *headers = buf.substr(0, header_end);
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

// ---- Conformance: every dispatcher × every scheduler -------------------

class DispatchConformanceTest
    : public ::testing::TestWithParam<std::tuple<DispatchPolicy, SchedPolicy>> {
};

// Replays one seeded arrival script over two modules through N concurrent
// clients. Contract: every request is answered exactly once with the right
// module's response, and the server's counters account for each admit
// exactly once (completed == admitted == sent: nothing lost, nothing run
// twice).
TEST_P(DispatchConformanceTest, SeededScriptNoLossNoDuplication) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.dispatcher = std::get<0>(GetParam());
  cfg.sched = std::get<1>(GetParam());
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("alpha", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(
      rt.register_module("beta", compile(testutil::spin_src(20000))).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  const auto script =
      testutil::arrival_script(/*seed=*/1234, /*count=*/90, /*modules=*/2,
                               /*max_gap_us=*/150);
  int sent_per_module[2] = {0, 0};
  for (const auto& a : script) sent_per_module[a.module]++;

  constexpr int kClients = 3;
  std::atomic<int> ok_count{0};
  auto client = [&](int tid) {
    for (size_t i = static_cast<size_t>(tid); i < script.size();
         i += kClients) {
      const auto& a = script[i];
      ::usleep(static_cast<useconds_t>(a.gap_us));
      int status = 0;
      auto resp = loadgen::single_request(
          "127.0.0.1", rt.bound_port(), a.module == 0 ? "/alpha" : "/beta",
          {}, &status);
      ASSERT_TRUE(resp.ok()) << resp.error_message();
      EXPECT_EQ(status, 200);
      ASSERT_EQ(resp->size(), 1u);
      EXPECT_EQ((*resp)[0], a.module == 0 ? 'p' : 's')
          << "response from the wrong module";
      ok_count.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) clients.emplace_back(client, t);
  for (auto& t : clients) t.join();
  ASSERT_EQ(ok_count.load(), 90);

  // Quiesce, then reconcile: admitted == completed == sent, per module and
  // in total; nothing shed, nothing failed, nothing double-finalized.
  json::Value doc;
  for (int i = 0; i < 100; ++i) {
    doc = scrape_json(rt.bound_port());
    if (doc["totals"]["completed"].as_int() >= 90) break;
    ::usleep(5000);
  }
  EXPECT_EQ(doc["totals"]["completed"].as_int(), 90);
  EXPECT_EQ(doc["totals"]["failed"].as_int(), 0);
  EXPECT_EQ(doc["totals"]["killed"].as_int(), 0);
  EXPECT_EQ(doc["totals"]["shed"].as_int(), 0);
  EXPECT_EQ(doc["totals"]["shed_deadline"].as_int(), 0);
  EXPECT_EQ(doc["modules"]["alpha"]["requests"].as_int(),
            sent_per_module[0]);
  EXPECT_EQ(doc["modules"]["beta"]["requests"].as_int(), sent_per_module[1]);
  EXPECT_EQ(doc["modules"]["alpha"]["inflight"].as_int(), 0);
  EXPECT_EQ(doc["modules"]["beta"]["inflight"].as_int(), 0);
  rt.stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DispatchConformanceTest,
    ::testing::Combine(::testing::Values(DispatchPolicy::kWorkStealing,
                                         DispatchPolicy::kGlobalEdf,
                                         DispatchPolicy::kShardedByModule),
                       ::testing::Values(SchedPolicy::kRoundRobin,
                                         SchedPolicy::kFifoRunToCompletion,
                                         SchedPolicy::kEdf)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

// ---- Global-EDF admit order under a burst -------------------------------

// One worker, FIFO run-to-completion: while a long CPU-bound blocker holds
// the core, a burst arrives in reverse deadline order. The global-EDF heap
// must hand them out tightest-deadline-first; the access log records the
// actual completion order.
TEST(GlobalEdfOrderTest, BurstCompletesInDeadlineOrder) {
  std::string log_path = ::testing::TempDir() + "sledge_edf_order.jsonl";
  std::remove(log_path.c_str());

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.dispatcher = DispatchPolicy::kGlobalEdf;
  cfg.sched = SchedPolicy::kFifoRunToCompletion;
  cfg.access_log_path = log_path;
  Runtime rt(cfg);

  // The blocker has the tightest relative deadline AND arrives first, so it
  // sorts first in the heap no matter how admission interleaves with the
  // worker's fetch. Deadlines are generous (seconds) so nothing is killed;
  // only their ORDER matters.
  ModuleLimits lim;
  lim.deadline_ns = 2'000'000'000;
  ASSERT_TRUE(rt.register_module("blocker",
                                 compile(testutil::spin_src(150'000'000)),
                                 lim)
                  .is_ok());
  const char* names[] = {"d100", "d200", "d300"};
  for (int i = 0; i < 3; ++i) {
    lim.deadline_ns = 3'000'000'000ull + static_cast<uint64_t>(i) * 1'000'000'000ull;
    ASSERT_TRUE(rt.register_module(names[i],
                                   compile(testutil::spin_src(50'000)), lim)
                    .is_ok());
  }
  ASSERT_TRUE(rt.start().is_ok());

  std::thread blocker([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                     "/blocker", {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  });
  // Wait until the blocker is admitted (and, with an idle worker, fetched
  // immediately) before the burst: the stats endpoint runs on the listener
  // thread, so it stays responsive while the single worker spins.
  auto wait_inflight = [&](int64_t want) {
    for (int i = 0; i < 500; ++i) {
      if (scrape_json(rt.bound_port())["inflight"].as_int() >= want) {
        return true;
      }
      ::usleep(1'000);
    }
    return false;
  };
  ASSERT_TRUE(wait_inflight(1));
  ::usleep(5'000);  // the idle worker has certainly fetched it by now

  // Burst in REVERSE deadline order: loosest first.
  std::vector<std::thread> burst;
  for (int i = 2; i >= 0; --i) {
    burst.emplace_back([&, i] {
      int status = 0;
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                       std::string("/") + names[i], {},
                                       &status);
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(status, 200);
    });
    ::usleep(2'000);  // keep client-side send order deterministic
  }
  // All three burst requests must be queued in the heap while the blocker
  // still holds the core — otherwise deadline order is vacuous.
  ASSERT_TRUE(wait_inflight(4)) << "burst not fully queued behind blocker";
  for (auto& t : burst) t.join();
  blocker.join();
  rt.stop();  // flushes worker access-log buffers

  // The single worker writes log lines in completion order.
  std::vector<std::string> order;
  std::ifstream in(log_path);
  std::string line;
  while (std::getline(in, line)) {
    auto doc = json::parse(line);
    ASSERT_TRUE(doc.ok()) << line;
    order.push_back((*doc)["module"].as_string());
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "blocker");
  EXPECT_EQ(order[1], "d100");  // tightest deadline, sent LAST
  EXPECT_EQ(order[2], "d200");
  EXPECT_EQ(order[3], "d300");  // loosest deadline, sent FIRST
  std::remove(log_path.c_str());
}

// ---- Weighted fair shares: starvation bound -----------------------------

// One hot module flooding from 6 clients against a cold tenant issuing
// sequential requests. With max_pending=8 and equal weights each module's
// share is 4 slots, so the hot module saturates at 4 in flight (admission
// is listener-serial) and the cold module's slots can never be taken: all
// 20 cold requests MUST succeed while the hot module visibly sheds.
TEST(FairShareTest, ColdTenantNeverStarved) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.max_pending = 8;
  cfg.admission = AdmissionPolicy::kExpectedSlack;
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("hot", compile(testutil::spin_src(2'000'000)))
          .is_ok());
  ASSERT_TRUE(rt.register_module("cold", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hot_ok{0}, hot_shed{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < 6; ++i) {
    flood.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        int status = 0;
        auto r = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                         "/hot", {}, &status);
        if (r.ok() && status == 200) {
          hot_ok.fetch_add(1, std::memory_order_relaxed);
        } else if (status == 503) {
          hot_shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ::usleep(30'000);  // let the flood saturate the hot module's share
  int cold_ok = 0;
  for (int i = 0; i < 20; ++i) {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/cold",
                                     {}, &status);
    ASSERT_TRUE(r.ok()) << "cold request " << i << ": " << r.error_message();
    EXPECT_EQ(status, 200) << "cold request " << i << " was shed";
    if (status == 200) ++cold_ok;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : flood) t.join();

  EXPECT_EQ(cold_ok, 20);  // the starvation bound
  EXPECT_GT(hot_ok.load(), 0u);
  EXPECT_GT(hot_shed.load(), 0u);  // the flood did hit the share cap

  json::Value doc = scrape_json(rt.bound_port());
  EXPECT_GT(doc["modules"]["hot"]["shed"].as_int(), 0);
  EXPECT_EQ(doc["modules"]["cold"]["shed"].as_int(), 0);
  rt.stop();
}

// ---- 504-early consumes no sandbox slot ---------------------------------

// Warm the predictor with an unconstrained module, then tighten its
// deadline below the observed exec p99: every subsequent request must be
// rejected 504-early from the listener — without ever building a sandbox
// (startup histogram frozen), with Retry-After, and honoring keep-alive.
TEST(SlackAdmissionTest, Early504ConsumesNoSandboxSlot) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.admission = AdmissionPolicy::kExpectedSlack;
  Runtime rt(cfg);
  ASSERT_TRUE(
      rt.register_module("tight", compile(testutil::spin_src(1'000'000)))
          .is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Warm-up: enough completions to publish window p99s (>= kMinSamples).
  loadgen::Options warm;
  warm.port = rt.bound_port();
  warm.path = "/tight";
  warm.concurrency = 2;
  warm.total_requests = 40;
  auto report = loadgen::run_load(warm);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->ok, 40u);

  json::Value before;
  for (int i = 0; i < 100; ++i) {
    before = scrape_json(rt.bound_port());
    if (before["totals"]["completed"].as_int() >= 40 &&
        before["inflight"].as_int() == 0) {
      break;
    }
    ::usleep(5000);
  }
  const int64_t startup_count =
      before["modules"]["tight"]["startup"]["count"].as_int();
  ASSERT_GE(startup_count, 40);
  // The predictor is live and visible: exec p99 of a ~ms spin loop is far
  // above the deadline we are about to impose.
  ASSERT_GT(before["modules"]["tight"]["predicted_exec_p99_ns"].as_number(),
            200e3);

  // Quiescent limit change: deadline far below exec p99.
  ModuleLimits lim;
  lim.deadline_ns = 200'000;  // 200 us
  ASSERT_TRUE(rt.update_module_limits("tight", lim).is_ok());

  // Two pipelined requests on ONE kept-alive connection: both must come
  // back 504 with Retry-After, on the same socket (keep-alive honored).
  int fd = raw_connect(rt.bound_port());
  std::string req =
      http::serialize_request("POST", "/tight", {}, /*keep_alive=*/true);
  ASSERT_TRUE(send_all(fd, req + req));
  std::string carry;
  for (int i = 0; i < 2; ++i) {
    int status = 0;
    std::string headers, body;
    ASSERT_TRUE(recv_response_full(fd, &status, &headers, &body, &carry))
        << "response " << i;
    EXPECT_EQ(status, 504);
    EXPECT_NE(headers.find("Retry-After: 1"), std::string::npos) << headers;
    EXPECT_NE(headers.find("Connection: keep-alive"), std::string::npos);
  }
  ::close(fd);

  int status = 0;
  auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/tight",
                                   {}, &status);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(status, 504);

  // No sandbox slot was consumed: startup/requests/completed all frozen,
  // and the sheds are accounted as 504-early exactly.
  json::Value after = scrape_json(rt.bound_port());
  EXPECT_EQ(after["modules"]["tight"]["startup"]["count"].as_int(),
            startup_count);
  EXPECT_EQ(after["modules"]["tight"]["requests"].as_int(),
            before["modules"]["tight"]["requests"].as_int());
  EXPECT_EQ(after["totals"]["completed"].as_int(),
            before["totals"]["completed"].as_int());
  EXPECT_EQ(after["totals"]["shed_deadline"].as_int(), 3);
  EXPECT_EQ(after["modules"]["tight"]["shed_deadline"].as_int(), 3);
  EXPECT_EQ(after["inflight"].as_int(), 0);
  rt.stop();
}

// ---- 2k-request mixed-deadline overload soak ----------------------------

// Global-EDF dispatch + EDF workers + slack admission under a 2k-request
// two-tenant burst (tight-deadline CPU burner vs. loose-deadline ping).
// Regression contract: the client-observed response codes reconcile
// EXACTLY with the server's counters — 503s == shed, 504s == killed +
// shed_deadline, 200s == completed, 500s == failed — i.e. no response is
// lost, duplicated, or misaccounted even under sustained overload.
TEST(OverloadSoakTest, TwoThousandRequestReconciliation) {
  RuntimeConfig cfg;
  cfg.workers = 3;
  cfg.dispatcher = DispatchPolicy::kGlobalEdf;
  cfg.sched = SchedPolicy::kEdf;
  cfg.admission = AdmissionPolicy::kExpectedSlack;
  cfg.max_pending = 12;
  Runtime rt(cfg);

  ModuleLimits loose;
  loose.deadline_ns = 2'000'000'000;  // 2 s: effectively never missed
  ASSERT_TRUE(
      rt.register_module("svc_fast", compile(kPingSrc), loose).is_ok());
  ModuleLimits tight;
  tight.deadline_ns = 25'000'000;  // 25 ms against a multi-ms spin
  ASSERT_TRUE(rt.register_module("svc_slow",
                                 compile(testutil::spin_src(1'500'000)),
                                 tight)
                  .is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  auto drive = [&](const char* path, loadgen::Report* out) {
    loadgen::Options opt;
    opt.port = rt.bound_port();
    opt.path = path;
    opt.concurrency = 8;
    opt.total_requests = 1000;
    auto r = loadgen::run_load(opt);
    ASSERT_TRUE(r.ok());
    *out = std::move(*r);
  };
  loadgen::Report fast, slow;
  std::thread fast_t(drive, "/svc_fast", &fast);
  std::thread slow_t(drive, "/svc_slow", &slow);
  fast_t.join();
  slow_t.join();

  // Every issued request got an HTTP response (keep-alive survived every
  // control-path response; nothing needed the reconnect fallback).
  EXPECT_EQ(fast.count(0), 0u);
  EXPECT_EQ(slow.count(0), 0u);
  const uint64_t seen_200 = fast.count(200) + slow.count(200);
  const uint64_t seen_500 = fast.count(500) + slow.count(500);
  const uint64_t seen_503 = fast.count(503) + slow.count(503);
  const uint64_t seen_504 = fast.count(504) + slow.count(504);
  EXPECT_EQ(seen_200 + seen_500 + seen_503 + seen_504, 2000u);

  // Quiesce, then reconcile client-side observations with server counters.
  json::Value doc;
  for (int i = 0; i < 100; ++i) {
    doc = scrape_json(rt.bound_port());
    if (doc["inflight"].as_int() == 0) break;
    ::usleep(10000);
  }
  EXPECT_EQ(static_cast<uint64_t>(doc["totals"]["completed"].as_int()),
            seen_200);
  EXPECT_EQ(static_cast<uint64_t>(doc["totals"]["failed"].as_int()),
            seen_500);
  EXPECT_EQ(static_cast<uint64_t>(doc["totals"]["shed"].as_int()), seen_503);
  EXPECT_EQ(static_cast<uint64_t>(doc["totals"]["killed"].as_int()) +
                static_cast<uint64_t>(
                    doc["totals"]["shed_deadline"].as_int()),
            seen_504);
  // The overload was real: the slow tenant shed and/or missed deadlines.
  EXPECT_GT(seen_503 + seen_504, 0u);
  rt.stop();
}

}  // namespace
}  // namespace sledge::runtime
