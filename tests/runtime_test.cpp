// Sledge runtime tests: sandbox lifecycle, inline execution, the full
// HTTP -> sandbox -> response path under every distribution policy,
// keep-alive reuse, error responses, scheduler fairness under preemption,
// cooperative sleeping, and high-churn behavior.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "apps/workloads.hpp"
#include "http/http.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

const char* kEchoSrc = R"(
char buf[65536];
int main() {
  int n = req_len();
  if (n > 65536) n = 65536;
  req_read(buf, 0, n);
  resp_write(buf, n);
  return n;
}
)";

const char* kTrapSrc = R"(
int main() { int zero = 0; return 1 / zero; }
)";

const char* kSleepSrc = R"(
char out[1];
int main() { sleep_ms(30); out[0] = 122; resp_write(out, 1); return 0; }
)";

// ---- Sandbox unit tests (no server) ----

TEST(SandboxTest, CreateRunTeardownInline) {
  auto wasm = compile(kEchoSrc);
  engine::WasmModule::Config cfg;
  auto mod = engine::WasmModule::load(wasm, cfg);
  ASSERT_TRUE(mod.ok()) << mod.error_message();

  auto sb = Sandbox::create(&mod.value(), {1, 2, 3});
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->state(), SandboxState::kRunnable);
  EXPECT_GT(sb->startup_cost_ns(), 0u);

  Status s = run_sandbox_inline(sb.get());
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_EQ(sb->state(), SandboxState::kComplete);
  EXPECT_EQ(sb->response(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_GE(sb->done_ns(), sb->first_run_ns());
}

TEST(SandboxTest, TrapBecomesFailedState) {
  auto wasm = compile(kTrapSrc);
  engine::WasmModule::Config cfg;
  auto mod = engine::WasmModule::load(wasm, cfg);
  ASSERT_TRUE(mod.ok());
  auto sb = Sandbox::create(&mod.value(), {});
  ASSERT_NE(sb, nullptr);
  Status s = run_sandbox_inline(sb.get());
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(sb->state(), SandboxState::kFailed);
  EXPECT_EQ(sb->outcome().trap, engine::TrapCode::kDivByZero);
}

TEST(SandboxTest, CooperativeSleepBlocksAndResumes) {
  auto wasm = compile(kSleepSrc);
  engine::WasmModule::Config cfg;
  auto mod = engine::WasmModule::load(wasm, cfg);
  ASSERT_TRUE(mod.ok());
  auto sb = Sandbox::create(&mod.value(), {});
  ASSERT_NE(sb, nullptr);

  // First dispatch must come back blocked, not complete.
  ucontext_t here;
  sb->dispatch(&here);
  EXPECT_EQ(sb->state(), SandboxState::kBlocked);
  EXPECT_GT(sb->wake_at_ns(), now_ns());

  Status s = run_sandbox_inline(sb.get());
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_EQ(sb->response(), (std::vector<uint8_t>{'z'}));
}

TEST(SandboxTest, ChurnHundredsOfSandboxes) {
  auto wasm = compile(kPingSrc);
  engine::WasmModule::Config cfg;
  auto mod = engine::WasmModule::load(wasm, cfg);
  ASSERT_TRUE(mod.ok());
  for (int i = 0; i < 300; ++i) {
    auto sb = Sandbox::create(&mod.value(), {});
    ASSERT_NE(sb, nullptr) << "iteration " << i;
    ASSERT_TRUE(run_sandbox_inline(sb.get()).is_ok());
  }
}

// ---- Full-runtime tests ----

class RuntimePolicyTest : public ::testing::TestWithParam<DistPolicy> {};

TEST_P(RuntimePolicyTest, EndToEndPingAndEcho) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.policy = GetParam();
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("echo", compile(kEchoSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*resp, (std::vector<uint8_t>{'p'}));

  std::vector<uint8_t> payload(5000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/echo",
                                 payload, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*resp, payload);

  rt.stop();
  EXPECT_EQ(rt.totals().completed, 2u);
}

TEST_P(RuntimePolicyTest, ConcurrentLoadAllSucceed) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.policy = GetParam();
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  loadgen::Options opt;
  opt.port = rt.bound_port();
  opt.path = "/ping";
  opt.concurrency = 8;
  opt.total_requests = 400;
  opt.expect_body = {'p'};
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_EQ(report->ok, 400u);
  EXPECT_EQ(report->errors, 0u);
  rt.stop();
}

INSTANTIATE_TEST_SUITE_P(Policies, RuntimePolicyTest,
                         ::testing::Values(DistPolicy::kWorkStealing,
                                           DistPolicy::kGlobalLock,
                                           DistPolicy::kPerWorker),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(RuntimeTest, UnknownRouteIs404) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  auto resp =
      loadgen::single_request("127.0.0.1", rt.bound_port(), "/ghost", {},
                              &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 404);
  rt.stop();
}

TEST(RuntimeTest, TrappingFunctionIs500) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("boom", compile(kTrapSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/boom",
                                      {}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 500);
  rt.stop();
  EXPECT_EQ(rt.totals().failed, 1u);
}

TEST(RuntimeTest, KeepAliveServesManyRequestsPerConnection) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  loadgen::Options opt;
  opt.port = rt.bound_port();
  opt.path = "/ping";
  opt.concurrency = 1;  // a single connection reused
  opt.total_requests = 50;
  opt.keep_alive = true;
  opt.expect_body = {'p'};
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 50u);
  rt.stop();
}

TEST(RuntimeTest, DuplicateModuleRejected) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("x", compile(kPingSrc)).is_ok());
  EXPECT_FALSE(rt.register_module("x", compile(kPingSrc)).is_ok());
}

TEST(RuntimeTest, InvalidModuleRejected) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  EXPECT_FALSE(rt.register_module("bad", {0, 1, 2, 3}).is_ok());
}

// The paper's temporal-isolation property (§3.4): a short function must not
// be starved by a long-running one sharing the worker core.
TEST(RuntimeTest, PreemptionPreventsStarvation) {
  const char* spin_src = R"(
    char out[1];
    int main() {
      double x = 1.0;
      for (int i = 0; i < 120000000; i++) { x += 0.5; if (x > 1e16) x = 1.0; }
      out[0] = 115;
      resp_write(out, 1);
      return (int)x;
    }
  )";
  RuntimeConfig cfg;
  cfg.workers = 1;  // force sharing
  cfg.quantum_us = 5000;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("spin", compile(spin_src)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread spinner([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin",
                                     {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  });
  ::usleep(30000);  // let the spinner occupy the core

  uint64_t t0 = now_ns();
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  double ping_ms = ns_to_ms(now_ns() - t0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  // The spin function needs hundreds of ms; a preempted ping should finish
  // within a few quanta. Generous bound to avoid CI flakiness.
  EXPECT_LT(ping_ms, 100.0);

  spinner.join();
  EXPECT_GT(rt.totals().preemptions, 0u);
  rt.stop();
}

TEST(RuntimeTest, SleepingFunctionDoesNotHoldWorker) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("sleep", compile(kSleepSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread sleeper([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/sleep",
                                     {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  });
  ::usleep(5000);  // sleeper should now be blocked on its timer

  uint64_t t0 = now_ns();
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  double ping_ms = ns_to_ms(now_ns() - t0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  EXPECT_LT(ping_ms, 25.0);  // well under the 30ms sleep
  sleeper.join();
  rt.stop();
}

// ---- Overload shedding (503) and keep-alive connection hand-back ----

// With max_pending=1 and a single worker occupied by a sleeping request, a
// second request must be shed with 503 instead of queuing; once the first
// completes, the runtime admits again.
TEST(RuntimeTest, OverloadShedsWith503AndRecovers) {
  const char* long_sleep_src = R"(
char out[1];
int main() { sleep_ms(150); out[0] = 122; resp_write(out, 1); return 0; }
)";
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.max_pending = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("sleep", compile(long_sleep_src)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread holder([&] {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/sleep",
                                     {}, &status);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  });
  while (rt.inflight() == 0) ::usleep(200);  // holder admitted

  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/sleep",
                                      {}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 503);
  holder.join();

  // Capacity is back: the next request is admitted and served.
  resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/sleep", {},
                                 &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);

  rt.stop();
  EXPECT_EQ(rt.totals().shed, 1u);
  EXPECT_EQ(rt.totals().completed, 2u);
  EXPECT_NE(rt.stats_report().find("shed=1"), std::string::npos);
}

// Resource exhaustion at sandbox creation (fault-injected) also sheds with
// 503, and service resumes once the pressure clears.
TEST(RuntimeTest, SandboxCreateFailureSheds503) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  {
    testutil::ScopedSandboxAllocFault fault;
    int status = 0;
    auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                        {}, &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 503);
  }
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(status, 200);
  rt.stop();
  EXPECT_EQ(rt.totals().shed, 1u);
}

namespace rawhttp {

// Blocking one-response read off a raw socket: enough parsing (status line +
// Content-Length) to verify pipelined keep-alive behavior byte-for-byte.
bool recv_response(int fd, int* status, std::string* body) {
  std::string buf;
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t content_len = 0;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = buf.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
        size_t cl = buf.find("Content-Length:");
        if (cl == std::string::npos || cl > header_end) return false;
        content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      }
    }
    if (header_end != std::string::npos) {
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *body = buf.substr(body_start, content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace rawhttp

// One raw connection, many requests: responses written by workers (200 via
// the sandbox path, then return_connection back to the listener) interleave
// with responses written by the listener itself (404), and every request on
// the shared socket gets exactly one in-order answer.
TEST(RuntimeTest, KeepAliveRoundTripMixesWorkerAndListenerResponses) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rt.bound_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const char* targets[] = {"/ping", "/ghost", "/ping", "/ghost", "/ping",
                           "/ping"};
  int expect[] = {200, 404, 200, 404, 200, 200};
  for (size_t i = 0; i < std::size(targets); ++i) {
    std::string req = http::serialize_request("POST", targets[i], {},
                                              /*keep_alive=*/true);
    ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(req.size()))
        << "request " << i;
    int status = 0;
    std::string body;
    ASSERT_TRUE(rawhttp::recv_response(fd, &status, &body)) << "request " << i;
    EXPECT_EQ(status, expect[i]) << "request " << i;
    if (expect[i] == 200) EXPECT_EQ(body, "p") << "request " << i;
  }
  ::close(fd);
  rt.stop();
  EXPECT_EQ(rt.totals().completed, 4u);
}

TEST(RuntimeTest, StatsReportMentionsModules) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {});
  rt.stop();
  std::string report = rt.stats_report();
  EXPECT_NE(report.find("ping"), std::string::npos);
  EXPECT_NE(report.find("completed=1"), std::string::npos);
}

}  // namespace
}  // namespace sledge::runtime
