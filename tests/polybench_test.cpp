// PolyBench kernel tests: every kernel compiles, validates, runs on the
// fast interpreter and the AoT tier, and both produce the same checksum
// (bit-exact f64) — per-kernel differential coverage for Figure 5's
// workload.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "apps/workloads.hpp"
#include "test_util.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace sledge::apps {
namespace {

using engine::Tier;
using engine::WasmModule;

class PolybenchTest : public ::testing::TestWithParam<std::string> {};

double checksum_on(const std::vector<uint8_t>& wasm, Tier tier) {
  engine::WasmModule::Config cfg;
  cfg.tier = tier;
  auto mod = WasmModule::load(wasm, cfg);
  EXPECT_TRUE(mod.ok()) << mod.error_message();
  if (!mod.ok()) return -1;
  auto sb = mod->instantiate();
  EXPECT_TRUE(sb.ok());
  if (!sb.ok()) return -1;
  std::vector<uint8_t> response;
  auto out = sb->run_serverless({}, &response);
  EXPECT_TRUE(out.ok()) << out.describe();
  EXPECT_GE(response.size(), 8u);
  double v = 0;
  if (response.size() >= 8) std::memcpy(&v, response.data(), 8);
  return v;
}

TEST_P(PolybenchTest, CompilesValidatesAndTiersAgree) {
  auto wasm = polybench_wasm(GetParam());
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();

  auto decoded = wasm::decode(wasm.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(wasm::validate(*decoded).is_ok());

  double fast = checksum_on(wasm.value(), Tier::kInterpFast);
  double aot = checksum_on(wasm.value(), Tier::kAot);
  EXPECT_EQ(fast, aot) << "fast=" << fast << " aot=" << aot;
  EXPECT_TRUE(std::isfinite(fast)) << fast;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PolybenchTest,
                         ::testing::ValuesIn(polybench_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The classic interpreter is the semantic reference; spot-check a numeric,
// a solver, and a stencil kernel against it (full sweep lives in the
// pb_check harness and the differential suite).
TEST(PolybenchReferenceTest, SlowTierMatchesOnRepresentatives) {
  for (const char* name : {"gemm", "ludcmp", "jacobi-2d"}) {
    auto wasm = polybench_wasm(name);
    ASSERT_TRUE(wasm.ok());
    double slow = checksum_on(wasm.value(), Tier::kInterp);
    double aot = checksum_on(wasm.value(), Tier::kAot);
    EXPECT_EQ(slow, aot) << name;
  }
}

}  // namespace
}  // namespace sledge::apps
