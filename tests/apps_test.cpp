// Application workload tests: every app compiles, runs on the engine, and
// satisfies domain-specific correctness properties; wasm and native twins
// agree on identical inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "apps/workloads.hpp"
#include "common/rng.hpp"
#include "procfaas/procfaas.hpp"
#include "test_util.hpp"

namespace sledge::apps {
namespace {

using engine::Tier;
using engine::WasmModule;

std::string fn_path(const std::string& app) {
  return std::string(SLEDGE_FN_BINDIR) + "/fn_" + app;
}

engine::WasmModule::Config aot_cfg() {
  engine::WasmModule::Config cfg;
  cfg.tier = Tier::kAot;
  return cfg;
}

// Runs app `name` on the engine with its canonical request.
std::vector<uint8_t> run_app(const std::string& name,
                             const std::vector<uint8_t>& request) {
  auto wasm = app_wasm(name);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  if (!wasm.ok()) return {};
  auto mod = WasmModule::load(wasm.value(), aot_cfg());
  EXPECT_TRUE(mod.ok()) << mod.error_message();
  if (!mod.ok()) return {};
  auto sb = mod->instantiate();
  EXPECT_TRUE(sb.ok());
  if (!sb.ok()) return {};
  std::vector<uint8_t> response;
  auto out = sb->run_serverless(request, &response);
  EXPECT_TRUE(out.ok()) << name << ": " << out.describe();
  return response;
}

double read_f64(const std::vector<uint8_t>& bytes, size_t idx) {
  double v = 0;
  if ((idx + 1) * 8 <= bytes.size()) {
    std::memcpy(&v, bytes.data() + idx * 8, 8);
  }
  return v;
}

int32_t read_i32(const std::vector<uint8_t>& bytes, size_t off) {
  int32_t v = 0;
  if (off + 4 <= bytes.size()) std::memcpy(&v, bytes.data() + off, 4);
  return v;
}

class AppCompilesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppCompilesTest, CompilesAndRunsOnAllTiers) {
  auto wasm = app_wasm(GetParam());
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();
  for (Tier tier : {Tier::kInterpFast, Tier::kAot}) {
    engine::WasmModule::Config cfg;
    cfg.tier = tier;
    auto mod = WasmModule::load(wasm.value(), cfg);
    ASSERT_TRUE(mod.ok()) << mod.error_message();
    auto sb = mod->instantiate();
    ASSERT_TRUE(sb.ok());
    std::vector<uint8_t> response;
    auto out = sb->run_serverless(app_request(GetParam()), &response);
    EXPECT_TRUE(out.ok()) << out.describe();
    EXPECT_FALSE(response.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCompilesTest,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

TEST(EkfTest, StateMovesTowardMeasurement) {
  std::vector<uint8_t> request = app_request("ekf");
  std::vector<uint8_t> response = run_app("ekf", request);
  ASSERT_EQ(response.size(), 576u);  // x[8] + P[8][8]

  // Input state x[0]=0, measurement z[0]=0.12 after a 0.1s predict with
  // vx=1: prediction is 0.1; the update must pull toward 0.12.
  double x0 = read_f64(response, 0);
  EXPECT_GT(x0, 0.09);
  EXPECT_LT(x0, 0.13);

  // Covariance must shrink after incorporating a measurement.
  double p00 = read_f64(response, 8);  // P[0][0]
  EXPECT_GT(p00, 0.0);
  EXPECT_LT(p00, 1.0);
}

TEST(EkfTest, RepeatedUpdatesConverge) {
  // Feed the filter its own output: tracking a constant position should
  // collapse the covariance over iterations.
  std::vector<uint8_t> state = app_request("ekf");
  double first_p00 = 0, last_p00 = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<uint8_t> response = run_app("ekf", state);
    ASSERT_EQ(response.size(), 576u);
    last_p00 = read_f64(response, 8);
    if (i == 0) first_p00 = last_p00;
    // Rebuild the request: returned state+P plus a fresh measurement.
    state.assign(response.begin(), response.end());
    double z[4] = {read_f64(response, 0) + 0.05, 0.0, 0.0, 0.0};
    const uint8_t* zp = reinterpret_cast<const uint8_t*>(z);
    state.insert(state.end(), zp, zp + 32);
  }
  EXPECT_LT(last_p00, first_p00);
  EXPECT_GT(last_p00, 0.0);
}

TEST(GocrTest, RecognizesCleanPage) {
  std::vector<uint8_t> response = run_app("gocr", app_request("gocr"));
  std::string text(response.begin(), response.end());
  // Page renders "SLEDGE0" repeated; with 3% noise recognition must hold.
  EXPECT_NE(text.find("SLEDGE0"), std::string::npos) << text;
}

TEST(GocrTest, SurvivesModerateNoise) {
  std::vector<uint8_t> page = app_request("gocr");
  sledge::Rng rng(3);
  // Flip 5% of pixels.
  for (auto& b : page) {
    if (rng.below(100) < 5) b = b ? 0 : 1;
  }
  std::vector<uint8_t> response = run_app("gocr", page);
  std::string text(response.begin(), response.end());
  // Count how many of the first row's 16 characters match the expectation.
  const char* expect = "SLEDGE0SLEDGE0SL";
  int correct = 0;
  for (int i = 0; i < 16 && i < static_cast<int>(text.size()); ++i) {
    if (text[i] == expect[i]) ++correct;
  }
  EXPECT_GE(correct, 12) << text;
}

TEST(Cifar10Test, DeterministicClassAndScores) {
  std::vector<uint8_t> r1 = run_app("cifar10", app_request("cifar10"));
  std::vector<uint8_t> r2 = run_app("cifar10", app_request("cifar10"));
  ASSERT_EQ(r1.size(), 1u + 40u);  // class byte + 10 i32 scores
  EXPECT_EQ(r1, r2);
  EXPECT_LT(r1[0], 10);  // a valid class id
  // The argmax score must actually be the maximum.
  int best = r1[0];
  int32_t best_score = read_i32(r1, 1 + best * 4);
  for (int k = 0; k < 10; ++k) {
    EXPECT_LE(read_i32(r1, 1 + k * 4), best_score) << k;
  }
}

TEST(Cifar10Test, DifferentImagesCanDiffer) {
  std::vector<uint8_t> img1 = app_request("cifar10");
  std::vector<uint8_t> img2(3072, 200);  // saturated image
  auto r1 = run_app("cifar10", img1);
  auto r2 = run_app("cifar10", img2);
  ASSERT_FALSE(r1.empty());
  ASSERT_FALSE(r2.empty());
  // Scores must differ even if the argmax happens to coincide.
  EXPECT_NE(std::vector<uint8_t>(r1.begin() + 1, r1.end()),
            std::vector<uint8_t>(r2.begin() + 1, r2.end()));
}

TEST(ResizeTest, OutputDimensionsAndRange) {
  std::vector<uint8_t> response = run_app("resize", app_request("resize"));
  ASSERT_EQ(response.size(), 12288u);  // 128 x 96
}

TEST(ResizeTest, PreservesConstantRegions) {
  std::vector<uint8_t> img(49152, 128);  // flat gray
  std::vector<uint8_t> out = run_app("resize", img);
  ASSERT_EQ(out.size(), 12288u);
  for (size_t i = 0; i < out.size(); i += 997) {
    EXPECT_NEAR(out[i], 128, 1) << i;
  }
}

TEST(ResizeTest, PreservesMeanBrightness) {
  std::vector<uint8_t> img = app_request("resize");
  std::vector<uint8_t> out = run_app("resize", img);
  ASSERT_EQ(out.size(), 12288u);
  double in_mean = 0, out_mean = 0;
  for (uint8_t b : img) in_mean += b;
  for (uint8_t b : out) out_mean += b;
  in_mean /= static_cast<double>(img.size());
  out_mean /= static_cast<double>(out.size());
  EXPECT_NEAR(in_mean, out_mean, 4.0);
}

TEST(LpdTest, FindsPlantedPlate) {
  std::vector<uint8_t> response = run_app("lpd", app_request("lpd"));
  ASSERT_GE(response.size(), 16u);
  int32_t x = read_i32(response, 0);
  int32_t y = read_i32(response, 4);
  int32_t w = read_i32(response, 8);
  int32_t h = read_i32(response, 12);
  // Planted plate: (110, 150, 100, 30). The detected box must overlap it.
  int32_t ix = std::max(x, 110), iy = std::max(y, 150);
  int32_t ix2 = std::min(x + w, 110 + 100), iy2 = std::min(y + h, 150 + 30);
  EXPECT_GT(ix2, ix) << "no x overlap: " << x << "," << w;
  EXPECT_GT(iy2, iy) << "no y overlap: " << y << "," << h;
}

// Native twin agreement: the exact same request through the natively
// compiled binary and the Wasm build must agree.
class TwinTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TwinTest, NativeAndWasmAgree) {
  const std::string& name = GetParam();
  std::vector<uint8_t> request = app_request(name);
  std::vector<uint8_t> wasm_out = run_app(name, request);
  std::vector<uint8_t> native_out;
  ASSERT_TRUE(procfaas::spawn_function_process(fn_path(name), request,
                                               &native_out));
  ASSERT_EQ(wasm_out.size(), native_out.size());
  if (name == "ekf") {
    // Float results: compare with tolerance (compilers may fuse FP ops
    // differently between the two builds).
    for (size_t i = 0; i < wasm_out.size() / 8; ++i) {
      EXPECT_NEAR(read_f64(wasm_out, i), read_f64(native_out, i), 1e-9) << i;
    }
  } else {
    EXPECT_EQ(wasm_out, native_out);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, TwinTest,
                         ::testing::Values("ekf", "gocr", "cifar10", "resize",
                                           "lpd"),
                         [](const auto& info) { return info.param; });

TEST(WorkloadCatalogTest, SourcesExistForAllApps) {
  for (const std::string& name : app_names()) {
    auto src = load_app_source(name);
    EXPECT_TRUE(src.ok()) << name << ": " << src.error_message();
    EXPECT_FALSE(src->empty());
  }
  for (const std::string& name : polybench_names()) {
    auto src = load_polybench_source(name);
    EXPECT_TRUE(src.ok()) << name << ": " << src.error_message();
  }
  EXPECT_EQ(polybench_names().size(), 30u);
}

}  // namespace
}  // namespace sledge::apps
