// LinearMemory tests: all four bounds strategies, growth semantics, guard
// traps, bounds-directory maintenance, and base-pointer stability.
#include <gtest/gtest.h>

#include <cstring>

#include "engine/memory.hpp"
#include "engine/trap.hpp"

namespace sledge::engine {
namespace {

class MemoryStrategyTest : public ::testing::TestWithParam<BoundsStrategy> {};

TEST_P(MemoryStrategyTest, CreateReadWrite) {
  auto mem = LinearMemory::create(GetParam(), 2, 4);
  ASSERT_TRUE(mem.ok()) << mem.error_message();
  EXPECT_EQ(mem->pages(), 2u);
  EXPECT_EQ(mem->size_bytes(), 2u * 65536);
  uint32_t v = 0xDEADBEEF;
  std::memcpy(mem->base() + 1000, &v, 4);
  uint32_t back = 0;
  std::memcpy(&back, mem->base() + 1000, 4);
  EXPECT_EQ(back, v);
}

TEST_P(MemoryStrategyTest, MemoryIsZeroInitialized) {
  auto mem = LinearMemory::create(GetParam(), 1, 1);
  ASSERT_TRUE(mem.ok());
  for (size_t i = 0; i < 65536; i += 4096) {
    EXPECT_EQ(mem->base()[i], 0) << i;
  }
}

TEST_P(MemoryStrategyTest, GrowKeepsBaseStable) {
  auto mem = LinearMemory::create(GetParam(), 1, 8);
  ASSERT_TRUE(mem.ok());
  uint8_t* base = mem->base();
  EXPECT_EQ(mem->grow(3), 1);
  EXPECT_EQ(mem->pages(), 4u);
  EXPECT_EQ(mem->base(), base);
  // New pages accessible.
  mem->base()[3 * 65536 + 5] = 42;
  EXPECT_EQ(mem->base()[3 * 65536 + 5], 42);
}

TEST_P(MemoryStrategyTest, GrowBeyondMaxFails) {
  auto mem = LinearMemory::create(GetParam(), 1, 2);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->grow(5), -1);
  EXPECT_EQ(mem->pages(), 1u);
  EXPECT_EQ(mem->grow(1), 1);
  EXPECT_EQ(mem->grow(1), -1);
}

TEST_P(MemoryStrategyTest, GrowByZeroSucceeds) {
  auto mem = LinearMemory::create(GetParam(), 1, 2);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->grow(0), 1);
  EXPECT_EQ(mem->pages(), 1u);
}

TEST_P(MemoryStrategyTest, InBoundsCheck) {
  auto mem = LinearMemory::create(GetParam(), 1, 1);
  ASSERT_TRUE(mem.ok());
  EXPECT_TRUE(mem->in_bounds(0, 4));
  EXPECT_TRUE(mem->in_bounds(65532, 4));
  EXPECT_FALSE(mem->in_bounds(65533, 4));
  EXPECT_FALSE(mem->in_bounds(65536, 1));
  EXPECT_FALSE(mem->in_bounds(0xFFFFFFFFull, 8));
}

TEST_P(MemoryStrategyTest, MoveTransfersOwnership) {
  auto mem = LinearMemory::create(GetParam(), 1, 2);
  ASSERT_TRUE(mem.ok());
  uint8_t* base = mem->base();
  LinearMemory moved = mem.take();
  EXPECT_EQ(moved.base(), base);
  EXPECT_TRUE(moved.valid());
  moved.base()[0] = 9;
  EXPECT_EQ(moved.base()[0], 9);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MemoryStrategyTest,
                         ::testing::Values(BoundsStrategy::kNone,
                                           BoundsStrategy::kSoftware,
                                           BoundsStrategy::kMpxSim,
                                           BoundsStrategy::kVmGuard),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MemoryTest, MpxSimDirectoryTracksSize) {
  auto mem = LinearMemory::create(BoundsStrategy::kMpxSim, 1, 4);
  ASSERT_TRUE(mem.ok());
  BoundsDirEntry* dir = mem->bounds_dir();
  ASSERT_NE(dir, nullptr);
  for (int i = 0; i < kBoundsDirEntries; ++i) {
    EXPECT_EQ(dir[i].lo, 0u);
    EXPECT_EQ(dir[i].hi, 65536u);
  }
  mem->grow(2);
  for (int i = 0; i < kBoundsDirEntries; ++i) {
    EXPECT_EQ(dir[i].hi, 3u * 65536);
  }
}

TEST(MemoryTest, NonMpxHasNoDirectory) {
  auto mem = LinearMemory::create(BoundsStrategy::kSoftware, 1, 1);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->bounds_dir(), nullptr);
}

// The vm_guard mechanism end-to-end: a fault beyond the committed pages
// must surface as a kOutOfBoundsMemory trap via the SIGSEGV handler.
TEST(MemoryTest, VmGuardFaultBecomesTrap) {
  auto mem = LinearMemory::create(BoundsStrategy::kVmGuard, 1, 1);
  ASSERT_TRUE(mem.ok());
  ensure_sigaltstack();

  TrapFrame frame;
  bool trapped = false;
  if (sigsetjmp(frame.env, 1) == 0) {
    TrapScope scope(&frame);
    volatile uint8_t* beyond = mem->base() + 2 * 65536;  // uncommitted
    *beyond = 1;  // faults
    FAIL() << "write beyond committed memory did not fault";
  } else {
    trapped = true;
    EXPECT_EQ(frame.code, TrapCode::kOutOfBoundsMemory);
  }
  EXPECT_TRUE(trapped);
}

TEST(MemoryTest, GuardRegionUnregisteredAfterDestruction) {
  // After the memory is destroyed, faulting addresses must no longer map to
  // traps. We verify indirectly via the registry API (dereferencing freed
  // mappings is UB).
  auto mem = LinearMemory::create(BoundsStrategy::kVmGuard, 1, 1);
  ASSERT_TRUE(mem.ok());
  // Destroys and unregisters; absence of crashes/leaks is checked by the
  // churn loop below.
}

TEST(MemoryTest, CreateDestroyChurn) {
  // The runtime creates one memory per request; exercise rapid churn.
  for (int i = 0; i < 500; ++i) {
    auto mem = LinearMemory::create(
        i % 2 ? BoundsStrategy::kVmGuard : BoundsStrategy::kSoftware, 1, 16);
    ASSERT_TRUE(mem.ok()) << "iteration " << i;
    mem->base()[123] = static_cast<uint8_t>(i);
  }
}

}  // namespace
}  // namespace sledge::engine
