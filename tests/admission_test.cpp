// Admission-control and dispatcher-layer tests at the data-structure level:
// the expected-slack AdmissionController's admit invariant under randomized
// (seeded) workloads, the SlackPredictor's sliding-window behaviour (the
// guard against sticky all-time p99s latching the server shut), and the
// Dispatcher push/inject/fetch contract — including a multi-threaded
// overload soak. Sandboxes are created but never dispatched, so this binary
// is sanitizer-safe (no swapcontext, no SIGALRM) and rides the TSan preset.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "minicc/minicc.hpp"
#include "sledge/admission.hpp"
#include "sledge/dispatcher.hpp"
#include "sledge/sandbox.hpp"

namespace sledge::runtime {
namespace {

// One interpreter-tier module shared by every test; sandboxes over it are
// pure queue entries here (never run).
const engine::WasmModule* test_module() {
  static engine::WasmModule* mod = [] {
    auto wasm =
        minicc::compile_to_wasm("int state[1]; int main() { return state[0]; }");
    if (!wasm.ok()) return static_cast<engine::WasmModule*>(nullptr);
    engine::WasmModule::Config cfg;
    cfg.tier = engine::Tier::kInterp;
    cfg.strategy = engine::BoundsStrategy::kSoftware;
    auto m = engine::WasmModule::load(*wasm, cfg);
    if (!m.ok()) return static_cast<engine::WasmModule*>(nullptr);
    return new engine::WasmModule(m.take());
  }();
  return mod;
}

std::unique_ptr<Sandbox> make_sandbox(uint64_t deadline_abs_ns = 0,
                                      void* tag = nullptr) {
  auto sb = Sandbox::create(test_module(), {});
  EXPECT_NE(sb, nullptr);
  if (sb) {
    sb->set_limits(0, deadline_abs_ns);
    sb->user_tag = tag;
  }
  return sb;
}

// ---- AdmissionController ----------------------------------------------

TEST(AdmissionTest, ToStringCoverage) {
  EXPECT_STREQ(to_string(AdmissionPolicy::kQueueDepth), "depth");
  EXPECT_STREQ(to_string(AdmissionPolicy::kExpectedSlack), "slack");
  EXPECT_STREQ(to_string(AdmitVerdict::kAdmit), "admit");
  EXPECT_STREQ(to_string(AdmitVerdict::kShedOverload), "shed_overload");
  EXPECT_STREQ(to_string(AdmitVerdict::kShedDeadline), "shed_deadline");
  EXPECT_STREQ(to_string(DispatchPolicy::kWorkStealing), "work_stealing");
  EXPECT_STREQ(to_string(DispatchPolicy::kGlobalEdf), "global_edf");
  EXPECT_STREQ(to_string(DispatchPolicy::kShardedByModule), "sharded_module");
}

TEST(AdmissionTest, FairShareArithmetic) {
  // Equal weights split the window evenly; everyone keeps at least 1 slot.
  EXPECT_EQ(AdmissionController::fair_share(8, 1, 2), 4);
  EXPECT_EQ(AdmissionController::fair_share(8, 1, 8), 1);
  EXPECT_EQ(AdmissionController::fair_share(8, 1, 100), 1);  // floor of 1
  // Weighted: a weight-3 tenant out of total 4 gets 3/4 of the window.
  EXPECT_EQ(AdmissionController::fair_share(8, 3, 4), 6);
  // Weight 0 is "inherit": treated as 1.
  EXPECT_EQ(AdmissionController::fair_share(8, 0, 4), 2);
  // max_pending == 0 disables the cap entirely.
  EXPECT_EQ(AdmissionController::fair_share(0, 1, 2), INT64_MAX);
}

TEST(AdmissionTest, DepthPolicyMatchesLegacyBehaviour) {
  AdmissionController ctl(AdmissionPolicy::kQueueDepth, 4);
  AdmitRequest in;
  in.deadline_rel_ns = 1;  // hopeless deadline...
  in.exec_cpu_p99_ns = 1'000'000'000;
  in.queue_wait_p99_ns = 1'000'000'000;
  in.predictor_ready = true;
  in.module_inflight = 100;  // ...and way past any fair share
  for (int64_t inflight = 0; inflight < 8; ++inflight) {
    in.inflight = inflight;
    // Depth policy looks at nothing but the global count.
    EXPECT_EQ(ctl.check(in), inflight < 4 ? AdmitVerdict::kAdmit
                                          : AdmitVerdict::kShedOverload);
  }
}

// The tentpole invariant, stated over randomized workloads:
// accepted => predicted slack >= 0 at admit time (deadline present and
// predictor warm), and every rejection is attributable to a concrete rule.
TEST(AdmissionTest, PropertyAcceptedImpliesNonNegativeSlack) {
  Rng rng(0xad315510ull);
  for (int trial = 0; trial < 20000; ++trial) {
    int64_t max_pending = rng.below(3) == 0 ? 0 : rng.below(32);
    AdmissionController ctl(AdmissionPolicy::kExpectedSlack, max_pending);
    AdmitRequest in;
    in.inflight = rng.below(40);
    in.module_inflight = rng.below(20);
    in.tenant_weight = rng.below(4);  // 0 = inherit
    in.total_weight = 1 + rng.below(8);
    in.deadline_rel_ns = rng.chance(0.2) ? 0 : rng.below(2'000'000);
    in.queue_wait_p99_ns = rng.below(2'000'000);
    in.exec_cpu_p99_ns = rng.below(2'000'000);
    in.predictor_ready = rng.chance(0.8);

    AdmitVerdict v = ctl.check(in);
    bool gate_active = in.deadline_rel_ns != 0 && in.predictor_ready;
    switch (v) {
      case AdmitVerdict::kAdmit:
        if (gate_active) {
          // The headline property: predicted completion meets the deadline.
          EXPECT_LE(in.queue_wait_p99_ns + in.exec_cpu_p99_ns,
                    in.deadline_rel_ns);
        }
        if (max_pending > 0) {
          EXPECT_LT(in.inflight, max_pending);
          EXPECT_LT(in.module_inflight,
                    AdmissionController::fair_share(
                        max_pending, in.tenant_weight, in.total_weight));
        }
        break;
      case AdmitVerdict::kShedDeadline:
        // 504-early only ever means: unmeetable even from an empty queue.
        ASSERT_TRUE(gate_active);
        EXPECT_GT(in.exec_cpu_p99_ns, in.deadline_rel_ns);
        break;
      case AdmitVerdict::kShedOverload: {
        bool depth = max_pending > 0 && in.inflight >= max_pending;
        bool share =
            max_pending > 0 &&
            in.module_inflight >= AdmissionController::fair_share(
                                      max_pending, in.tenant_weight,
                                      in.total_weight);
        bool slack = gate_active &&
                     in.queue_wait_p99_ns + in.exec_cpu_p99_ns >
                         in.deadline_rel_ns;
        EXPECT_TRUE(depth || share || slack);
        break;
      }
    }
  }
}

TEST(AdmissionTest, DepthPolicyNeverShedsDeadline) {
  Rng rng(0xdeadbeefull);
  AdmissionController ctl(AdmissionPolicy::kQueueDepth, 8);
  for (int trial = 0; trial < 5000; ++trial) {
    AdmitRequest in;
    in.inflight = rng.below(16);
    in.module_inflight = rng.below(16);
    in.deadline_rel_ns = rng.below(1'000'000);
    in.queue_wait_p99_ns = rng.below(10'000'000);
    in.exec_cpu_p99_ns = rng.below(10'000'000);
    in.predictor_ready = true;
    EXPECT_NE(ctl.check(in), AdmitVerdict::kShedDeadline);
  }
}

// ---- SlackPredictor ----------------------------------------------------

TEST(SlackPredictorTest, NotReadyUntilMinSamples) {
  SlackPredictor p;
  for (uint64_t i = 0; i + 1 < SlackPredictor::kMinSamples; ++i) {
    p.record(100, 200);
    EXPECT_FALSE(p.ready());
  }
  p.record(100, 200);
  EXPECT_TRUE(p.ready());
  // ready() implies published percentiles, never stale zeros.
  EXPECT_EQ(p.queue_wait_p99_ns(), 100u);
  EXPECT_EQ(p.exec_cpu_p99_ns(), 200u);
}

TEST(SlackPredictorTest, WindowForgetsOldBursts) {
  // The self-regulation property: after an overload burst ages out of the
  // window, the published p99 drops back down. A cumulative histogram would
  // keep the burst's p99 forever and latch the admission gate shut.
  SlackPredictor p;
  for (size_t i = 0; i < SlackPredictor::kWindow; ++i) p.record(1000, 1000);
  EXPECT_EQ(p.queue_wait_p99_ns(), 1000u);

  for (size_t i = 0; i < SlackPredictor::kWindow; ++i) {
    p.record(9'000'000, 9'000'000);  // overload burst
  }
  EXPECT_EQ(p.queue_wait_p99_ns(), 9'000'000u);
  EXPECT_EQ(p.exec_cpu_p99_ns(), 9'000'000u);

  for (size_t i = 0; i < SlackPredictor::kWindow; ++i) p.record(1000, 1000);
  EXPECT_EQ(p.queue_wait_p99_ns(), 1000u);  // burst fully forgotten
  EXPECT_EQ(p.exec_cpu_p99_ns(), 1000u);
}

TEST(SlackPredictorTest, P99TracksOrderStatistic) {
  // 256-sample window, 1% outliers: the p99 must sit at/above the bulk and
  // at/below the max; with ~2 outliers in the window it lands on one.
  SlackPredictor p;
  Rng rng(7);
  for (int i = 0; i < 1024; ++i) {
    bool outlier = rng.below(100) >= 99;
    p.record(outlier ? 50'000 : 100, outlier ? 80'000 : 200);
  }
  EXPECT_GE(p.queue_wait_p99_ns(), 100u);
  EXPECT_LE(p.queue_wait_p99_ns(), 50'000u);
  EXPECT_GE(p.exec_cpu_p99_ns(), 200u);
  EXPECT_LE(p.exec_cpu_p99_ns(), 80'000u);
  EXPECT_TRUE(p.ready());
}

// ---- Dispatcher contracts ----------------------------------------------

class DispatcherContractTest
    : public ::testing::TestWithParam<DispatchPolicy> {};

// Every pushed/injected sandbox comes back from exactly one fetch: no loss,
// no duplication, across all worker indices.
TEST_P(DispatcherContractTest, NoLossNoDuplication) {
  ASSERT_NE(test_module(), nullptr);
  constexpr int kWorkers = 4;
  auto d = Dispatcher::make(GetParam(), DistPolicy::kWorkStealing, kWorkers);
  ASSERT_EQ(d->kind(), GetParam());

  int tags[3];  // distinct module identities for the sharded dispatcher
  std::vector<std::unique_ptr<Sandbox>> owned;
  std::set<Sandbox*> expected;
  for (int i = 0; i < 60; ++i) {
    auto sb = make_sandbox(/*deadline_abs_ns=*/1000 + i, &tags[i % 3]);
    ASSERT_NE(sb, nullptr);
    expected.insert(sb.get());
    if (i % 5 == 0) {
      d->inject(sb.get());  // the sb_invoke side entrance
    } else {
      d->push(sb.get());
    }
    owned.push_back(std::move(sb));
  }
  EXPECT_GT(d->backlog_estimate(), 0);

  std::set<Sandbox*> fetched;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int w = 0; w < kWorkers; ++w) {
      Sandbox* sb = nullptr;
      while (d->fetch(w, &sb)) {
        EXPECT_TRUE(fetched.insert(sb).second) << "double-fetched sandbox";
        progress = true;
      }
    }
  }
  EXPECT_EQ(fetched, expected);
  for (int w = 0; w < kWorkers; ++w) {
    Sandbox* sb = nullptr;
    EXPECT_FALSE(d->fetch(w, &sb));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDispatchers, DispatcherContractTest,
                         ::testing::Values(DispatchPolicy::kWorkStealing,
                                           DispatchPolicy::kGlobalEdf,
                                           DispatchPolicy::kShardedByModule),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(GlobalEdfDispatcherTest, FetchesInDeadlineOrder) {
  auto d = Dispatcher::make(DispatchPolicy::kGlobalEdf,
                            DistPolicy::kWorkStealing, 2);
  // Push out of order, with deadline-less entries mixed in (sort last).
  const uint64_t deadlines[] = {500, 100, 0, 300, 200, 0, 400};
  std::vector<std::unique_ptr<Sandbox>> owned;
  for (uint64_t dl : deadlines) {
    auto sb = make_sandbox(dl);
    ASSERT_NE(sb, nullptr);
    d->push(sb.get());
    owned.push_back(std::move(sb));
  }
  std::vector<uint64_t> order;
  Sandbox* sb = nullptr;
  // Alternate fetching workers: the admit order is global, not per-worker.
  for (int w = 0; d->fetch(w % 2, &sb); ++w) {
    order.push_back(sb->deadline_at_ns());
  }
  EXPECT_EQ(order,
            (std::vector<uint64_t>{100, 200, 300, 400, 500, 0, 0}));
}

TEST(GlobalEdfDispatcherTest, EqualDeadlinesBreakFifo) {
  auto d = Dispatcher::make(DispatchPolicy::kGlobalEdf,
                            DistPolicy::kWorkStealing, 1);
  std::vector<std::unique_ptr<Sandbox>> owned;
  std::vector<Sandbox*> in_order;
  for (int i = 0; i < 8; ++i) {
    auto sb = make_sandbox(777);  // all identical deadlines
    ASSERT_NE(sb, nullptr);
    in_order.push_back(sb.get());
    d->push(sb.get());
    owned.push_back(std::move(sb));
  }
  Sandbox* sb = nullptr;
  for (Sandbox* want : in_order) {
    ASSERT_TRUE(d->fetch(0, &sb));
    EXPECT_EQ(sb, want);  // seq tie-break preserves arrival order
  }
}

TEST(ShardedDispatcherTest, ModuleAlwaysLandsOnSameWorker) {
  constexpr int kWorkers = 3;
  auto d = Dispatcher::make(DispatchPolicy::kShardedByModule,
                            DistPolicy::kWorkStealing, kWorkers);
  int tags[5];
  std::vector<std::unique_ptr<Sandbox>> owned;
  for (int i = 0; i < 50; ++i) {
    auto sb = make_sandbox(0, &tags[i % 5]);
    ASSERT_NE(sb, nullptr);
    d->push(sb.get());
    owned.push_back(std::move(sb));
  }
  // Each tag's sandboxes must all come out of one and only one shard.
  std::map<void*, int> tag_to_worker;
  size_t fetched = 0;
  for (int w = 0; w < kWorkers; ++w) {
    Sandbox* sb = nullptr;
    while (d->fetch(w, &sb)) {
      ++fetched;
      auto [it, fresh] = tag_to_worker.emplace(sb->user_tag, w);
      if (!fresh) {
        EXPECT_EQ(it->second, w) << "module split across shards";
      }
    }
  }
  EXPECT_EQ(fetched, 50u);
  EXPECT_EQ(tag_to_worker.size(), 5u);
}

// ---- Multi-threaded overload soak (the TSan target) --------------------
//
// The full-server soak lives in dispatch_test.cpp (ucontext + SIGALRM are
// not sanitizer-trackable); this one exercises the same dispatcher and
// predictor concurrency with real threads: one listener-like pusher, three
// worker-side injectors, four fetching workers, 2k sandboxes of mixed
// deadlines, plus concurrent predictor reads against a recording writer.
class DispatcherSoakTest : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(DispatcherSoakTest, ThreadedBurstNoLossNoDuplication) {
  ASSERT_NE(test_module(), nullptr);
  constexpr int kWorkers = 4;
  constexpr int kInjectors = 3;
  constexpr int kPerProducer = 500;
  constexpr int kTotal = (1 + kInjectors) * kPerProducer;  // 2000

  auto d = Dispatcher::make(GetParam(), DistPolicy::kWorkStealing, kWorkers);

  int tags[7];
  std::mutex owned_mu;
  std::vector<std::unique_ptr<Sandbox>> owned;
  owned.reserve(kTotal);

  auto produce = [&](int producer, bool via_push) {
    Rng rng(0x50a4 + static_cast<uint64_t>(producer));
    for (int i = 0; i < kPerProducer; ++i) {
      uint64_t deadline = rng.chance(0.2) ? 0 : 1000 + rng.below(1'000'000);
      auto sb = make_sandbox(deadline, &tags[rng.below(7)]);
      ASSERT_NE(sb, nullptr);
      Sandbox* raw = sb.get();
      {
        std::lock_guard<std::mutex> lock(owned_mu);
        owned.push_back(std::move(sb));
      }
      if (via_push) {
        d->push(raw);  // single pusher: the listener-thread contract
      } else {
        d->inject(raw);
      }
    }
  };

  std::atomic<int> fetched_total{0};
  std::array<std::vector<Sandbox*>, kWorkers> per_worker;
  auto consume = [&](int w) {
    while (fetched_total.load(std::memory_order_acquire) < kTotal) {
      Sandbox* sb = nullptr;
      if (d->fetch(w, &sb)) {
        per_worker[static_cast<size_t>(w)].push_back(sb);
        fetched_total.fetch_add(1, std::memory_order_acq_rel);
      } else {
        std::this_thread::yield();
      }
    }
  };

  // Concurrent predictor traffic rides along: a writer recording mixed
  // samples with lock-free readers polling the published p99s (the
  // listener-vs-worker interaction on the admit path).
  SlackPredictor predictor;
  std::atomic<bool> stop_predictor{false};
  std::thread predictor_writer([&] {
    Rng rng(99);
    while (!stop_predictor.load(std::memory_order_acquire)) {
      predictor.record(rng.below(100000), rng.below(100000));
    }
  });
  std::thread predictor_reader([&] {
    while (!stop_predictor.load(std::memory_order_acquire)) {
      (void)predictor.queue_wait_p99_ns();
      (void)predictor.exec_cpu_p99_ns();
      (void)predictor.ready();
    }
  });

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) threads.emplace_back(consume, w);
  threads.emplace_back(produce, 0, /*via_push=*/true);
  for (int p = 0; p < kInjectors; ++p) {
    threads.emplace_back(produce, 1 + p, /*via_push=*/false);
  }
  for (auto& t : threads) t.join();
  stop_predictor.store(true, std::memory_order_release);
  predictor_writer.join();
  predictor_reader.join();

  std::set<Sandbox*> fetched;
  for (const auto& v : per_worker) {
    for (Sandbox* sb : v) {
      EXPECT_TRUE(fetched.insert(sb).second) << "double-fetched sandbox";
    }
  }
  EXPECT_EQ(fetched.size(), static_cast<size_t>(kTotal));
  EXPECT_EQ(owned.size(), static_cast<size_t>(kTotal));
  for (const auto& sb : owned) EXPECT_EQ(fetched.count(sb.get()), 1u);
  EXPECT_EQ(d->backlog_estimate(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllDispatchers, DispatcherSoakTest,
                         ::testing::Values(DispatchPolicy::kWorkStealing,
                                           DispatchPolicy::kGlobalEdf,
                                           DispatchPolicy::kShardedByModule),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace sledge::runtime
