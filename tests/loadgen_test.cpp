// Load-generator tests: request accounting, latency recording, expect-body
// validation, connection-failure handling — against a live Sledge runtime.
#include <gtest/gtest.h>

#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"

namespace sledge::loadgen {
namespace {

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

class LoadgenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::RuntimeConfig cfg;
    cfg.workers = 2;
    rt_ = std::make_unique<runtime::Runtime>(cfg);
    auto wasm = minicc::compile_to_wasm(kPingSrc);
    ASSERT_TRUE(wasm.ok());
    ASSERT_TRUE(rt_->register_module("ping", wasm.value()).is_ok());
    ASSERT_TRUE(rt_->start().is_ok());
  }
  void TearDown() override { rt_->stop(); }

  std::unique_ptr<runtime::Runtime> rt_;
};

TEST_F(LoadgenTest, CountsExactlyTotalRequests) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 3;
  opt.total_requests = 101;  // deliberately not divisible by concurrency
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok + report->errors, 101u);
  EXPECT_EQ(report->ok, 101u);
  EXPECT_EQ(report->latency.count(), 101u);
  EXPECT_GT(report->throughput_rps, 0.0);
  EXPECT_GT(report->latency.mean_ns(), 0u);
}

TEST_F(LoadgenTest, ExpectBodyMismatchCountsAsError) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 1;
  opt.total_requests = 5;
  opt.expect_body = {'q'};  // function replies 'p'
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 5u);
}

TEST_F(LoadgenTest, NonKeepAliveMode) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 2;
  opt.total_requests = 20;
  opt.keep_alive = false;
  opt.expect_body = {'p'};
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 20u);
}

TEST_F(LoadgenTest, NotFoundRouteIsError) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/missing";
  opt.concurrency = 1;
  opt.total_requests = 3;
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 3u);
}

TEST(LoadgenStandaloneTest, ConnectFailureReported) {
  // A port with (almost certainly) no listener.
  auto resp = single_request("127.0.0.1", 1, "/x", {});
  EXPECT_FALSE(resp.ok());

  Options opt;
  opt.port = 1;
  opt.concurrency = 1;
  opt.total_requests = 2;
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 2u);
}

TEST(LoadgenStandaloneTest, RejectsBadOptions) {
  Options opt;
  opt.concurrency = 0;
  EXPECT_FALSE(run_load(opt).ok());
  opt.concurrency = 1;
  opt.total_requests = 0;
  EXPECT_FALSE(run_load(opt).ok());
}

}  // namespace
}  // namespace sledge::loadgen
