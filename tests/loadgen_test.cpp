// Load-generator tests: request accounting, latency recording, expect-body
// validation, connection-failure handling — against a live Sledge runtime.
#include <gtest/gtest.h>

#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"

namespace sledge::loadgen {
namespace {

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

class LoadgenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::RuntimeConfig cfg;
    cfg.workers = 2;
    rt_ = std::make_unique<runtime::Runtime>(cfg);
    auto wasm = minicc::compile_to_wasm(kPingSrc);
    ASSERT_TRUE(wasm.ok());
    ASSERT_TRUE(rt_->register_module("ping", wasm.value()).is_ok());
    ASSERT_TRUE(rt_->start().is_ok());
  }
  void TearDown() override { rt_->stop(); }

  std::unique_ptr<runtime::Runtime> rt_;
};

TEST_F(LoadgenTest, CountsExactlyTotalRequests) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 3;
  opt.total_requests = 101;  // deliberately not divisible by concurrency
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok + report->errors, 101u);
  EXPECT_EQ(report->ok, 101u);
  EXPECT_EQ(report->latency.count(), 101u);
  EXPECT_GT(report->throughput_rps, 0.0);
  EXPECT_GT(report->latency.mean_ns(), 0u);
}

TEST_F(LoadgenTest, ExpectBodyMismatchCountsAsError) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 1;
  opt.total_requests = 5;
  opt.expect_body = {'q'};  // function replies 'p'
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 5u);
}

TEST_F(LoadgenTest, NonKeepAliveMode) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 2;
  opt.total_requests = 20;
  opt.keep_alive = false;
  opt.expect_body = {'p'};
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 20u);
}

TEST_F(LoadgenTest, NotFoundRouteIsError) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/missing";
  opt.concurrency = 1;
  opt.total_requests = 3;
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 3u);
}

TEST(LoadgenStandaloneTest, ConnectFailureReported) {
  // A port with (almost certainly) no listener.
  auto resp = single_request("127.0.0.1", 1, "/x", {});
  EXPECT_FALSE(resp.ok());

  Options opt;
  opt.port = 1;
  opt.concurrency = 1;
  opt.total_requests = 2;
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->errors, 2u);
}

TEST(LoadgenStandaloneTest, RejectsBadOptions) {
  Options opt;
  opt.concurrency = 0;
  EXPECT_FALSE(run_load(opt).ok());
  opt.concurrency = 1;
  opt.total_requests = 0;
  EXPECT_FALSE(run_load(opt).ok());
}

// ---- Open-loop arrival schedule math (deterministic, no sockets) ---------

TEST(ArrivalScheduleTest, FlatRateIsUniform) {
  ArrivalSchedule s;
  s.base_rps = 100.0;
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 12.34), 100.0);
  auto times = schedule_arrival_times(s, 5);
  ASSERT_EQ(times.size(), 5u);
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], 0.01 * static_cast<double>(i + 1), 1e-12);
  }
}

TEST(ArrivalScheduleTest, DiurnalSinusoid) {
  ArrivalSchedule s;
  s.base_rps = 100.0;
  s.diurnal_amplitude = 0.5;
  s.diurnal_period_s = 40.0;
  // Peak at a quarter period, trough at three quarters, base at the nodes.
  EXPECT_NEAR(schedule_rate_at(s, 0.0), 100.0, 1e-9);
  EXPECT_NEAR(schedule_rate_at(s, 10.0), 150.0, 1e-9);
  EXPECT_NEAR(schedule_rate_at(s, 20.0), 100.0, 1e-9);
  EXPECT_NEAR(schedule_rate_at(s, 30.0), 50.0, 1e-9);
  // Full-depth troughs never stall the schedule: rate floors at 0.1 rps.
  s.diurnal_amplitude = 0.9999;
  EXPECT_GE(schedule_rate_at(s, 30.0), 0.1);
}

TEST(ArrivalScheduleTest, BurstWindows) {
  ArrivalSchedule s;
  s.base_rps = 10.0;
  s.burst_multiplier = 5.0;
  s.burst_every_s = 10.0;
  s.burst_len_s = 2.0;
  // Bursting inside [k*10, k*10+2), base elsewhere.
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 1.999), 50.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 9.9), 10.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 10.1), 50.0);
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 21.5), 50.0);
  // Disabled bursts (every = 0) leave the rate flat.
  s.burst_every_s = 0.0;
  EXPECT_DOUBLE_EQ(schedule_rate_at(s, 0.5), 10.0);
}

TEST(ArrivalScheduleTest, ArrivalTimesFollowInstantaneousRate) {
  ArrivalSchedule s;
  s.base_rps = 10.0;
  s.burst_multiplier = 10.0;
  s.burst_every_s = 100.0;
  s.burst_len_s = 1.0;
  // Burst active for t in [0, 1): gaps of 10ms; after t = 1: gaps of 100ms.
  auto times = schedule_arrival_times(s, 120);
  ASSERT_EQ(times.size(), 120u);
  EXPECT_NEAR(times[0], 0.01, 1e-12);
  for (size_t i = 1; i < times.size(); ++i) {
    ASSERT_GT(times[i], times[i - 1]);  // strictly increasing
    double gap = times[i] - times[i - 1];
    if (times[i - 1] < 1.0) {
      EXPECT_NEAR(gap, 0.01, 1e-9) << "burst gap at arrival " << i;
    } else {
      EXPECT_NEAR(gap, 0.1, 1e-9) << "base gap at arrival " << i;
    }
  }
}

// Open-loop end-to-end: a short bursty schedule against the live runtime
// completes every request and takes at least the schedule's span.
TEST_F(LoadgenTest, OpenLoopScheduleCompletesAllRequests) {
  Options opt;
  opt.port = rt_->bound_port();
  opt.path = "/ping";
  opt.concurrency = 4;
  opt.total_requests = 60;
  opt.expect_body = {'p'};
  opt.schedule.enabled = true;
  opt.schedule.base_rps = 400.0;
  opt.schedule.burst_multiplier = 4.0;
  opt.schedule.burst_every_s = 0.1;
  opt.schedule.burst_len_s = 0.02;
  auto expected = schedule_arrival_times(opt.schedule, opt.total_requests);
  auto report = run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 60u);
  // Pacing actually happened: the run cannot beat the schedule's last
  // arrival offset.
  EXPECT_GE(report->duration_s, expected.back());
}

}  // namespace
}  // namespace sledge::loadgen
