// Validator tests: positive cases for well-typed control flow and negative
// cases for every class of type error the validator must reject.
#include <gtest/gtest.h>

#include <functional>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace sledge::wasm {
namespace {

using V = ValType;

// Builds a single-function module with the body provided by `emit` and runs
// decode+validate on it.
Status check_body(std::vector<V> params, std::vector<V> results,
                  const std::function<void(FunctionBuilder&)>& emit,
                  bool with_memory = true, bool with_table = false) {
  ModuleBuilder b;
  uint32_t t = b.add_type(std::move(params), std::move(results));
  if (with_memory) b.set_memory(1, 1);
  if (with_table) b.set_table(1, 1);
  uint32_t f = b.declare_function(t);
  emit(b.function(f));
  auto mod = decode(b.build());
  if (!mod.ok()) return Status::error("decode: " + mod.error_message());
  return validate(*mod);
}

TEST(ValidatorTest, AcceptsSimpleArith) {
  EXPECT_TRUE(check_body({V::kI32, V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                f.local_get(0);
                f.local_get(1);
                f.emit(Op::kI32Add);
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, RejectsOperandTypeMismatch) {
  EXPECT_FALSE(check_body({V::kI32, V::kF64}, {V::kI32},
                          [](FunctionBuilder& f) {
                            f.local_get(0);
                            f.local_get(1);
                            f.emit(Op::kI32Add);  // i32+f64
                            f.end();
                          })
                   .is_ok());
}

TEST(ValidatorTest, RejectsStackUnderflow) {
  EXPECT_FALSE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                 f.emit(Op::kI32Add);  // nothing on the stack
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsLeftoverValues) {
  EXPECT_FALSE(check_body({}, {}, [](FunctionBuilder& f) {
                 f.i32_const(1);  // dangling value at end
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsMissingResult) {
  EXPECT_FALSE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                 f.end();  // no value produced
               }).is_ok());
}

TEST(ValidatorTest, RejectsWrongResultType) {
  EXPECT_FALSE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                 f.f32_const(1.0f);
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, AcceptsBlockWithResult) {
  EXPECT_TRUE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                f.block(V::kI32);
                f.i32_const(5);
                f.end();
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, AcceptsBranchCarriesValue) {
  EXPECT_TRUE(check_body({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                f.block(V::kI32);
                f.i32_const(99);
                f.local_get(0);
                f.br_if(0);
                f.end();
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, RejectsBranchDepthOutOfRange) {
  EXPECT_FALSE(check_body({}, {}, [](FunctionBuilder& f) {
                 f.block();
                 f.br(5);
                 f.end();
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsBranchValueTypeMismatch) {
  EXPECT_FALSE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                 f.block(V::kI32);
                 f.f64_const(1.0);
                 f.br(0);  // carries f64 to an i32 label
                 f.end();
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, AcceptsLoopBranchTakesNothing) {
  EXPECT_TRUE(check_body({V::kI32}, {}, [](FunctionBuilder& f) {
                f.block();
                f.loop();
                f.local_get(0);
                f.emit(Op::kI32Eqz);
                f.br_if(1);   // exit
                f.br(0);      // continue (loop label: no values)
                f.end();
                f.end();
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, RejectsIfWithResultWithoutElse) {
  EXPECT_FALSE(check_body({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                 f.local_get(0);
                 f.if_(V::kI32);
                 f.i32_const(1);
                 f.end();  // no else: false path yields nothing
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, AcceptsIfElseWithResult) {
  EXPECT_TRUE(check_body({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                f.local_get(0);
                f.if_(V::kI32);
                f.i32_const(1);
                f.else_();
                f.i32_const(2);
                f.end();
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, RejectsIfArmsDisagree) {
  EXPECT_FALSE(check_body({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                 f.local_get(0);
                 f.if_(V::kI32);
                 f.i32_const(1);
                 f.else_();
                 f.f32_const(2.0f);
                 f.end();
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsSelectTypeMismatch) {
  EXPECT_FALSE(check_body({}, {}, [](FunctionBuilder& f) {
                 f.i32_const(1);
                 f.f64_const(2.0);
                 f.i32_const(0);
                 f.emit(Op::kSelect);
                 f.emit(Op::kDrop);
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsBadLocalIndex) {
  EXPECT_FALSE(check_body({V::kI32}, {}, [](FunctionBuilder& f) {
                 f.local_get(3);
                 f.emit(Op::kDrop);
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsLocalSetTypeMismatch) {
  EXPECT_FALSE(check_body({V::kI32}, {}, [](FunctionBuilder& f) {
                 f.f64_const(1.0);
                 f.local_set(0);
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsMemoryOpsWithoutMemory) {
  EXPECT_FALSE(check_body({}, {V::kI32},
                          [](FunctionBuilder& f) {
                            f.i32_const(0);
                            f.mem(Op::kI32Load);
                            f.end();
                          },
                          /*with_memory=*/false)
                   .is_ok());
}

TEST(ValidatorTest, RejectsCallIndirectWithoutTable) {
  EXPECT_FALSE(check_body({}, {},
                          [](FunctionBuilder& f) {
                            f.i32_const(0);
                            f.call_indirect(0);
                            f.emit(Op::kDrop);
                            f.end();
                          },
                          /*with_memory=*/true, /*with_table=*/false)
                   .is_ok());
}

TEST(ValidatorTest, RejectsSetOfImmutableGlobal) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {});
  b.add_global(V::kI32, /*mutable=*/false, 1);
  uint32_t f = b.declare_function(t);
  auto& fb = b.function(f);
  fb.i32_const(2);
  fb.global_set(0);
  fb.end();
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate(*mod).is_ok());
}

TEST(ValidatorTest, AcceptsCodeAfterUnconditionalBranch) {
  // Unreachable code is validated polymorphically.
  EXPECT_TRUE(check_body({}, {V::kI32}, [](FunctionBuilder& f) {
                f.block(V::kI32);
                f.i32_const(1);
                f.br(0);
                f.emit(Op::kI32Add);  // unreachable: stack-polymorphic
                f.end();
                f.end();
              }).is_ok());
}

TEST(ValidatorTest, RejectsBrTableInconsistentLabels) {
  EXPECT_FALSE(check_body({V::kI32}, {V::kI32}, [](FunctionBuilder& f) {
                 f.block(V::kI32);   // label 1 expects i32
                 f.block();          // label 0 expects nothing
                 f.local_get(0);
                 f.br_table({0}, 1);  // mixed arities
                 f.end();
                 f.i32_const(0);
                 f.end();
                 f.end();
               }).is_ok());
}

TEST(ValidatorTest, RejectsDataSegmentBeyondMemory) {
  ModuleBuilder b;
  b.set_memory(1, 1);
  b.add_data(65530, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate(*mod).is_ok());
}

TEST(ValidatorTest, RejectsElementSegmentBeyondTable) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {});
  b.set_table(1, 1);
  uint32_t f = b.declare_function(t);
  b.function(f).end();
  b.add_element(1, {f});  // offset 1 + 1 entry > table min 1
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate(*mod).is_ok());
}

TEST(ValidatorTest, RejectsBadExportIndex) {
  ModuleBuilder b;
  uint32_t t = b.add_type({}, {});
  uint32_t f = b.declare_function(t);
  b.function(f).end();
  b.export_function("ghost", 42);
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate(*mod).is_ok());
}

TEST(ValidatorTest, RejectsStartWithParams) {
  ModuleBuilder b;
  uint32_t t = b.add_type({V::kI32}, {});
  uint32_t f = b.declare_function(t);
  auto& fb = b.function(f);
  fb.end();
  b.set_start(f);
  auto mod = decode(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate(*mod).is_ok());
}

}  // namespace
}  // namespace sledge::wasm
