// SandboxResourcePool: warm reuse of linear memories and execution stacks
// with the cross-tenant isolation guarantee (recycled regions read as
// zeros), free-list caps, the reclaim watermark, and the engine-level
// recycled-instantiate path. Sanitizer-safe: interpreter tiers only, no
// ucontext dispatch, no faults taken.
#include <gtest/gtest.h>

#include <cstring>

#include "engine/memory.hpp"
#include "minicc/minicc.hpp"
#include "sledge/resource_pool.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

using engine::BoundsStrategy;
using engine::LinearMemory;

constexpr BoundsStrategy kAllStrategies[] = {
    BoundsStrategy::kNone, BoundsStrategy::kSoftware, BoundsStrategy::kMpxSim,
    BoundsStrategy::kVmGuard};

// Each test owns the process-wide pool: known config in, empty pool out.
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.configure(SandboxResourcePool::Config{});
    pool.purge();
    pool.reset_counters();
  }
  void TearDown() override {
    SandboxResourcePool& pool = SandboxResourcePool::instance();
    pool.purge();
    pool.configure(SandboxResourcePool::Config{});
  }
};

TEST_F(PoolTest, ReservationBytesBucketsByStrategy) {
  // vm_guard reserves the full 32-bit span + slack regardless of the
  // declared ceiling — one bucket serves every module.
  EXPECT_EQ(LinearMemory::reservation_bytes(BoundsStrategy::kVmGuard, 1),
            LinearMemory::reservation_bytes(BoundsStrategy::kVmGuard, 4096));
  EXPECT_GE(LinearMemory::reservation_bytes(BoundsStrategy::kVmGuard, 1),
            (4ull << 30));
  // Non-guard strategies reserve exactly the growth ceiling.
  EXPECT_EQ(LinearMemory::reservation_bytes(BoundsStrategy::kSoftware, 8),
            8 * wasm::kPageSize);
  EXPECT_EQ(LinearMemory::reservation_bytes(BoundsStrategy::kMpxSim, 3),
            3 * wasm::kPageSize);
}

// The isolation property pooling depends on: a reused region must read as
// zeros no matter what the previous occupant wrote, under every bounds
// strategy.
TEST_F(PoolTest, RecycledMemoryReadsZeroAllStrategies) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  for (BoundsStrategy strategy : kAllStrategies) {
    SCOPED_TRACE(engine::to_string(strategy));
    bool from_pool = true;
    LinearMemory mem = pool.acquire_memory(strategy, 2, 4, &from_pool);
    ASSERT_TRUE(mem.valid());
    EXPECT_FALSE(from_pool);  // pool was empty: cold path
    uint8_t* base = mem.base();
    std::memset(base, 0xAB, mem.size_bytes());  // dirty canary

    pool.release_memory(std::move(mem));
    LinearMemory reused = pool.acquire_memory(strategy, 2, 4, &from_pool);
    ASSERT_TRUE(reused.valid());
    EXPECT_TRUE(from_pool);
    EXPECT_EQ(reused.base(), base);  // genuinely the same region
    EXPECT_EQ(reused.pages(), 2u);
    for (uint64_t i = 0; i < reused.size_bytes(); ++i) {
      ASSERT_EQ(reused.base()[i], 0) << "stale byte at offset " << i;
    }
    pool.release_memory(std::move(reused));
  }
  SandboxResourcePool::Counters c = pool.counters();
  EXPECT_EQ(c.memory_hits, 4u);
  EXPECT_EQ(c.memory_misses, 4u);
}

// A recycled region serves any ceiling that fits its reservation: grow to
// the old ceiling, recycle, reset to a different spec, grow to the new one.
TEST_F(PoolTest, ResetRearmsGrowthCeiling) {
  auto mem_or = LinearMemory::create(BoundsStrategy::kSoftware, 1, 4);
  ASSERT_TRUE(mem_or.ok());
  LinearMemory mem = mem_or.take();
  EXPECT_EQ(mem.grow(3), 1);   // 1 -> 4, at ceiling
  EXPECT_EQ(mem.grow(1), -1);  // past ceiling

  ASSERT_TRUE(mem.recycle());
  EXPECT_EQ(mem.size_bytes(), 0u);
  ASSERT_TRUE(mem.reset(2, 3));
  EXPECT_EQ(mem.pages(), 2u);
  EXPECT_EQ(mem.max_pages(), 3u);
  EXPECT_EQ(mem.grow(1), 2);   // 2 -> 3, new ceiling
  EXPECT_EQ(mem.grow(1), -1);  // new ceiling enforced

  // A ceiling that does not fit the reservation must be refused.
  ASSERT_TRUE(mem.recycle());
  EXPECT_FALSE(mem.reset(1, 5));  // reservation is 4 pages
}

// Acquire only matches regions whose (strategy, reservation) bucket fits;
// anything else is a miss that falls back to create().
TEST_F(PoolTest, MismatchedSpecMisses) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.release_memory(
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 4, nullptr));

  bool from_pool = true;
  // Different strategy: miss.
  LinearMemory m1 =
      pool.acquire_memory(BoundsStrategy::kMpxSim, 1, 4, &from_pool);
  EXPECT_FALSE(from_pool);
  // Same strategy, bigger reservation needed: miss.
  LinearMemory m2 =
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 8, &from_pool);
  EXPECT_FALSE(from_pool);
  // Exact bucket: hit.
  LinearMemory m3 =
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 4, &from_pool);
  EXPECT_TRUE(from_pool);
}

TEST_F(PoolTest, ReclaimWatermarkReleasesToOs) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  SandboxResourcePool::Config cfg;
  cfg.per_thread_cap = 0;  // everything overflows to the global pool
  cfg.global_cap = 2;      // watermark
  pool.configure(cfg);

  for (int i = 0; i < 4; ++i) {
    pool.release_memory(
        pool.acquire_memory(BoundsStrategy::kSoftware, 1, 1, nullptr));
  }
  // First two releases pooled, the rest dropped at the watermark. (Each
  // acquire drains the pool again, so only the steady-state release after a
  // full pool counts: acquire(hit), release(pooled) repeats.)
  SandboxResourcePool::Counters c = pool.counters();
  EXPECT_EQ(c.released, 0u);  // cap 2 never exceeded by a lone region
  pool.release_memory(
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 2, nullptr));
  pool.release_memory(
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 3, nullptr));
  pool.release_memory(
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 4, nullptr));
  c = pool.counters();
  EXPECT_GE(c.released, 1u);  // third distinct bucket entry hit the cap
}

TEST_F(PoolTest, StacksAreReusedWithGuardIntact) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  constexpr size_t kStack = 256 * 1024;
  constexpr size_t kGuard = 16 * 1024;

  bool from_pool = true;
  ExecStack* s1 = pool.acquire_stack(kStack, kGuard, &from_pool);
  ASSERT_NE(s1, nullptr);
  EXPECT_FALSE(from_pool);
  EXPECT_EQ(s1->size, kStack + kGuard);  // mapping includes the guard
  EXPECT_EQ(s1->guard_size, kGuard);
  EXPECT_GE(s1->guard_id, 0);  // registered with the trap table
  uint8_t* base = s1->base;

  pool.release_stack(s1);
  ExecStack* s2 = pool.acquire_stack(kStack, kGuard, &from_pool);
  ASSERT_NE(s2, nullptr);
  EXPECT_TRUE(from_pool);
  EXPECT_EQ(s2->base, base);  // same mapping, registration kept alive

  // A different geometry is a miss, not a mismatched reuse.
  ExecStack* s3 = pool.acquire_stack(kStack * 2, kGuard, &from_pool);
  ASSERT_NE(s3, nullptr);
  EXPECT_FALSE(from_pool);
  pool.release_stack(s2);
  pool.release_stack(s3);

  SandboxResourcePool::Counters c = pool.counters();
  EXPECT_EQ(c.stack_hits, 1u);
  EXPECT_EQ(c.stack_misses, 2u);
}

TEST_F(PoolTest, DisabledPoolAlwaysRunsCold) {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  SandboxResourcePool::Config cfg;
  cfg.enabled = false;
  pool.configure(cfg);

  pool.release_memory(
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 4, nullptr));
  bool from_pool = true;
  LinearMemory mem =
      pool.acquire_memory(BoundsStrategy::kSoftware, 1, 4, &from_pool);
  EXPECT_TRUE(mem.valid());
  EXPECT_FALSE(from_pool);

  ExecStack* stack = pool.acquire_stack(64 * 1024, 4096, nullptr);
  ASSERT_NE(stack, nullptr);
  pool.release_stack(stack);
  stack = pool.acquire_stack(64 * 1024, 4096, &from_pool);
  ASSERT_NE(stack, nullptr);
  EXPECT_FALSE(from_pool);
  pool.release_stack(stack);
}

// End-to-end isolation through the engine: a module that reads its own
// state must see zeros when instantiated over a recycled memory that a
// previous "tenant" dirtied. Interpreter tiers (no cc, sanitizer-safe).
TEST_F(PoolTest, RecycledInstantiateSeesFreshState) {
  const char* src = R"(
int state[4];
int main() { int old = state[0]; state[0] = 1234; return old; }
)";
  auto wasm = minicc::compile_to_wasm(src);
  ASSERT_TRUE(wasm.ok()) << wasm.error_message();

  SandboxResourcePool& pool = SandboxResourcePool::instance();
  for (engine::Tier tier : {engine::Tier::kInterp, engine::Tier::kInterpFast}) {
    for (BoundsStrategy strategy :
         {BoundsStrategy::kSoftware, BoundsStrategy::kVmGuard}) {
      SCOPED_TRACE(std::string(engine::to_string(tier)) + "/" +
                   engine::to_string(strategy));
      engine::WasmModule::Config cfg;
      cfg.tier = tier;
      cfg.strategy = strategy;
      auto mod = engine::WasmModule::load(*wasm, cfg);
      ASSERT_TRUE(mod.ok()) << mod.error_message();
      auto spec = mod->memory_spec();
      ASSERT_TRUE(spec.has_memory);

      pool.purge();
      // Tenant A: runs over a fresh memory, leaves 1234 behind.
      {
        LinearMemory mem = pool.acquire_memory(spec.strategy, spec.min_pages,
                                               spec.max_pages, nullptr);
        ASSERT_TRUE(mem.valid());
        auto sb = mod->instantiate(std::move(mem));
        ASSERT_TRUE(sb.ok()) << sb.error_message();
        auto out = sb->call("main", {});
        ASSERT_TRUE(out.ok()) << out.describe();
        EXPECT_EQ(out.value->as_i32(), 0);
        pool.release_memory(sb->reclaim_memory());
      }
      // Tenant B: adopts the recycled region; stale 1234 must be gone.
      {
        bool from_pool = false;
        LinearMemory mem = pool.acquire_memory(spec.strategy, spec.min_pages,
                                               spec.max_pages, &from_pool);
        ASSERT_TRUE(mem.valid());
        EXPECT_TRUE(from_pool);
        auto sb = mod->instantiate(std::move(mem));
        ASSERT_TRUE(sb.ok()) << sb.error_message();
        auto out = sb->call("main", {});
        ASSERT_TRUE(out.ok()) << out.describe();
        EXPECT_EQ(out.value->as_i32(), 0) << "stale tenant state leaked";
        pool.release_memory(sb->reclaim_memory());
      }
    }
  }
}

}  // namespace
}  // namespace sledge::runtime
