// Observability-plane tests: live /admin/stats (JSON) and /admin/metrics
// (Prometheus) endpoints, per-request phase tracing (queue_wait / startup /
// exec_cpu / response_write histograms and their consistency), the
// structured access log, and the listener data-path bugfixes — pipelined
// request bytes are replayed instead of dropped, and control-path
// responses (404/503) survive short writes to slow readers intact.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/json.hpp"
#include "http/http.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

const char* kSleepSrc = R"(
char out[1];
int main() { sleep_ms(5); out[0] = 122; resp_write(out, 1); return 0; }
)";

int raw_connect(uint16_t port, int rcvbuf = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Blocking read of exactly one HTTP/1.1 response (status + Content-Length
// body); returns false on connection error or malformed bytes.
bool recv_response(int fd, int* status, std::string* body,
                   std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

// Like recv_response, but also hands back the raw header block so tests can
// assert on control-path headers (Retry-After, Connection).
bool recv_response_headers(int fd, int* status, std::string* headers,
                           std::string* body, std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *headers = buf.substr(0, header_end);
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

json::Value scrape_json(uint16_t port, const char* path = "/admin/stats") {
  auto body = loadgen::http_get("127.0.0.1", port, path);
  EXPECT_TRUE(body.ok()) << body.error_message();
  auto doc = json::parse(body.ok() ? *body : "null");
  EXPECT_TRUE(doc.ok()) << doc.error_message();
  return doc.ok() ? *doc : json::Value();
}

// ---- Tentpole: live admin endpoints + phase tracing ----

TEST(ObservabilityTest, AdminStatsLivePollDuringBurst) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("sleep", compile(kSleepSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::thread burst([&] {
    loadgen::Options opt;
    opt.port = rt.bound_port();
    opt.path = "/sleep";
    opt.concurrency = 4;
    opt.total_requests = 120;
    auto report = loadgen::run_load(opt);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->ok, 120u);
  });

  // Poll the live server repeatedly: every poll must parse, and the
  // counters must be monotone (never regress between polls).
  uint64_t last_completed = 0, last_requests = 0;
  for (int i = 0; i < 10; ++i) {
    json::Value doc = scrape_json(rt.bound_port());
    ASSERT_TRUE(doc.is_object());
    uint64_t completed =
        static_cast<uint64_t>(doc["totals"]["completed"].as_int());
    uint64_t requests = static_cast<uint64_t>(
        doc["modules"]["sleep"]["requests"].as_int());
    EXPECT_GE(completed, last_completed) << "poll " << i;
    EXPECT_GE(requests, last_requests) << "poll " << i;
    last_completed = completed;
    last_requests = requests;
    ::usleep(5000);
  }
  burst.join();

  // Quiesce (all completions + response writes recorded), then check the
  // phase histograms are populated and mutually consistent.
  json::Value doc;
  for (int i = 0; i < 100; ++i) {
    doc = scrape_json(rt.bound_port());
    if (doc["inflight"].as_int() == 0 &&
        doc["modules"]["sleep"]["response_write"]["count"].as_int() >= 120) {
      break;
    }
    ::usleep(10000);
  }
  const json::Value& mod = doc["modules"]["sleep"];
  EXPECT_EQ(mod["requests"].as_int(), 120);
  for (const char* phase :
       {"queue_wait", "startup", "exec_cpu", "response_write", "end_to_end"}) {
    EXPECT_GE(mod[phase]["count"].as_int(), 120) << phase;
    EXPECT_GE(mod[phase]["max_ns"].as_number(), mod[phase]["p50_ns"].as_number())
        << phase;
  }
  // The sleep module blocks 5 ms per request, so end-to-end dominates CPU.
  EXPECT_GT(mod["end_to_end"]["p50_ns"].as_number(), 5e6);
  // Acceptance: phase sums are consistent — queue + startup + exec never
  // exceed end-to-end (all four recorded for the same completed set).
  double queue = mod["queue_wait"]["sum_ns"].as_number();
  double startup = mod["startup"]["sum_ns"].as_number();
  double exec = mod["exec_cpu"]["sum_ns"].as_number();
  double e2e = mod["end_to_end"]["sum_ns"].as_number();
  EXPECT_LE(queue + startup + exec, e2e * 1.0001 + 1e3)
      << "queue=" << queue << " startup=" << startup << " exec=" << exec;
  EXPECT_GT(exec, 0.0);
  rt.stop();
}

TEST(ObservabilityTest, AdminMetricsPrometheusExposition) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  for (int i = 0; i < 3; ++i) {
    int status = 0;
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                     {}, &status);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(status, 200);
  }
  // Let the response_write completions land before scraping.
  ::usleep(50000);

  auto body = loadgen::http_get("127.0.0.1", rt.bound_port(),
                                "/admin/metrics");
  ASSERT_TRUE(body.ok()) << body.error_message();
  const std::string& text = *body;
  for (const char* needle : {
           "# TYPE sledge_completed_total counter",
           "sledge_completed_total 3",
           "sledge_requests_total{module=\"ping\"} 3",
           "# TYPE sledge_queue_wait_seconds summary",
           "sledge_queue_wait_seconds{module=\"ping\",quantile=\"0.99\"}",
           "sledge_startup_seconds_count{module=\"ping\"} 3",
           "sledge_exec_cpu_seconds_sum{module=\"ping\"}",
           "sledge_response_write_seconds_count{module=\"ping\"} 3",
           "sledge_end_to_end_seconds{module=\"ping\",quantile=\"0.5\"}",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
  rt.stop();
}

TEST(ObservabilityTest, AdminEndpointCanBeDisabled) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.admin_endpoint = false;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  auto body = loadgen::http_get("127.0.0.1", rt.bound_port(), "/admin/stats",
                                &status);
  EXPECT_FALSE(body.ok());
  EXPECT_EQ(status, 404);
  rt.stop();
}

TEST(ObservabilityTest, LoadgenScrapesServerStats) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  loadgen::Options opt;
  opt.port = rt.bound_port();
  opt.path = "/ping";
  opt.concurrency = 4;
  opt.total_requests = 80;
  opt.expect_body = {'p'};
  opt.scrape_path = "/admin/stats";
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 80u);
  ASSERT_FALSE(report->server_stats.empty());
  auto doc = json::parse(report->server_stats);
  ASSERT_TRUE(doc.ok()) << doc.error_message();
  EXPECT_EQ((*doc)["modules"]["ping"]["requests"].as_int(), 80);
  rt.stop();
}

// ---- Structured access log ----

TEST(ObservabilityTest, AccessLogWritesOneJsonLinePerRequest) {
  std::string path = ::testing::TempDir() + "sledge_access_log_test.jsonl";
  ::unlink(path.c_str());

  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.access_log_path = path;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  loadgen::Options opt;
  opt.port = rt.bound_port();
  opt.path = "/ping";
  opt.concurrency = 3;
  opt.total_requests = 30;
  opt.expect_body = {'p'};
  auto report = loadgen::run_load(opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ok, 30u);
  rt.stop();  // workers flush their buffered lines before joining

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    auto doc = json::parse(line);
    ASSERT_TRUE(doc.ok()) << doc.error_message() << ": " << line;
    EXPECT_EQ((*doc)["module"].as_string(), "ping");
    EXPECT_EQ((*doc)["status"].as_int(), 200);
    EXPECT_GT((*doc)["bytes"].as_int(), 0);
    EXPECT_GE((*doc)["worker"].as_int(), 0);
    EXPECT_GE((*doc)["e2e_us"].as_number(), 0.0);
    EXPECT_GE((*doc)["exec_cpu_us"].as_number(), 0.0);
    EXPECT_GE((*doc)["dispatches"].as_int(), 1);
    EXPECT_TRUE((*doc)["write_ok"].as_bool());
  }
  EXPECT_EQ(lines, 30);
  ::unlink(path.c_str());
}

// ---- Listener bugfix: pipelined request bytes are replayed, not dropped --

TEST(ObservabilityTest, PipelinedRequestsOnOneConnectionAllAnswered) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int fd = raw_connect(rt.bound_port());
  // Six requests in one burst of bytes: before the fix the listener threw
  // away everything after the first admitted request, hanging the client.
  std::string burst;
  for (int i = 0; i < 6; ++i) {
    burst += http::serialize_request("POST", "/ping", {}, /*keep_alive=*/true);
  }
  ASSERT_TRUE(send_all(fd, burst));

  std::string carry;
  for (int i = 0; i < 6; ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "response " << i;
    EXPECT_EQ(status, 200) << "response " << i;
    EXPECT_EQ(body, "p") << "response " << i;
  }
  ::close(fd);
  rt.stop();
  EXPECT_EQ(rt.totals().completed, 6u);
}

TEST(ObservabilityTest, PipelinedMixOfSandboxAndListenerResponses) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int fd = raw_connect(rt.bound_port());
  // Worker-written (200) and listener-written (404) responses interleave;
  // pipelined bytes cross both admission and error paths.
  const char* targets[] = {"/ping", "/ghost", "/ping", "/ghost", "/ping"};
  int expect[] = {200, 404, 200, 404, 200};
  std::string burst;
  for (const char* t : targets) {
    burst += http::serialize_request("POST", t, {}, /*keep_alive=*/true);
  }
  ASSERT_TRUE(send_all(fd, burst));

  std::string carry;
  for (size_t i = 0; i < std::size(targets); ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "response " << i;
    EXPECT_EQ(status, expect[i]) << "response " << i;
  }
  ::close(fd);
  rt.stop();
  EXPECT_EQ(rt.totals().completed, 3u);
}

// ---- Listener bugfix: short writes on control paths are completed ----

// A slow reader (tiny receive buffer, reads nothing until the end) pipelines
// enough 404s that the listener's ::send must hit EAGAIN; every response
// must still arrive intact. Before the fix, the truncated remainder was
// silently dropped.
TEST(ObservabilityTest, SlowReaderReceivesEvery404Intact) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.start().is_ok());

  constexpr int kRequests = 2000;
  int fd = raw_connect(rt.bound_port(), /*rcvbuf=*/1024);
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += http::serialize_request("POST", "/ghost", {},
                                     /*keep_alive=*/true);
  }
  ASSERT_TRUE(send_all(fd, burst));

  std::string carry;
  for (int i = 0; i < kRequests; ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "response " << i;
    ASSERT_EQ(status, 404) << "response " << i;
    if (i % 100 == 0) ::usleep(1000);  // stay slow: keep the window tight
  }
  ::close(fd);
  rt.stop();
}

TEST(ObservabilityTest, SlowReaderReceivesEvery503Intact) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  constexpr int kRequests = 500;
  testutil::ScopedSandboxAllocFault fault;  // every create -> 503 shed
  int fd = raw_connect(rt.bound_port(), /*rcvbuf=*/1024);
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += http::serialize_request("POST", "/ping", {},
                                     /*keep_alive=*/true);
  }
  ASSERT_TRUE(send_all(fd, burst));

  std::string carry;
  for (int i = 0; i < kRequests; ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "response " << i;
    ASSERT_EQ(status, 503) << "response " << i;
  }
  ::close(fd);
  rt.stop();
  EXPECT_EQ(rt.totals().shed, static_cast<uint64_t>(kRequests));
}

// ---- Retry-After on admission rejections (overload vs. drain) ----

// An overload 503 tells the client the condition is transient: it carries
// "Retry-After: 1" and keeps the connection alive, so the SAME socket can
// retry successfully once the backlog clears.
TEST(ObservabilityTest, Overload503CarriesRetryAfterAndKeepsConnection) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.max_pending = 1;
  Runtime rt(cfg);
  const char* kSleep60Src = R"(
char out[1];
int main() { sleep_ms(60); out[0] = 122; resp_write(out, 1); return 0; }
)";
  ASSERT_TRUE(rt.register_module("sleep", compile(kSleep60Src)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Connection A occupies the single admission slot with a blocked sandbox.
  int fd_a = raw_connect(rt.bound_port());
  ASSERT_TRUE(send_all(
      fd_a, http::serialize_request("POST", "/sleep", {}, true)));
  bool saturated = false;
  for (int i = 0; i < 500 && !saturated; ++i) {
    saturated = rt.inflight() >= 1;
    if (!saturated) ::usleep(1'000);
  }
  ASSERT_TRUE(saturated);

  // Connection B is shed: 503 + Retry-After: 1, connection kept alive.
  int fd_b = raw_connect(rt.bound_port());
  ASSERT_TRUE(
      send_all(fd_b, http::serialize_request("POST", "/ping", {}, true)));
  int status = 0;
  std::string headers, body, carry_b;
  ASSERT_TRUE(recv_response_headers(fd_b, &status, &headers, &body, &carry_b));
  EXPECT_EQ(status, 503);
  EXPECT_NE(headers.find("Retry-After: 1"), std::string::npos) << headers;
  EXPECT_NE(headers.find("Connection: keep-alive"), std::string::npos)
      << headers;

  // Drain connection A (the sleeper finishes), then retry on the SAME
  // socket B: the keep-alive promise must be real.
  std::string carry_a;
  ASSERT_TRUE(recv_response_headers(fd_a, &status, &headers, &body, &carry_a));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(
      send_all(fd_b, http::serialize_request("POST", "/ping", {}, true)));
  ASSERT_TRUE(recv_response_headers(fd_b, &status, &headers, &body, &carry_b));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "p");

  ::close(fd_a);
  ::close(fd_b);
  rt.stop();
  EXPECT_EQ(rt.totals().shed, 1u);
}

// A drain 503 is a different condition: the server is going away for the
// drain-grace window, so it advertises the longer "Retry-After: 5" —
// clients can distinguish "back off briefly" from "find another replica".
TEST(ObservabilityTest, Drain503CarriesLongerRetryAfter) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  const char* kSleep100Src = R"(
char out[1];
int main() { sleep_ms(100); out[0] = 122; resp_write(out, 1); return 0; }
)";
  ASSERT_TRUE(rt.register_module("sleep", compile(kSleep100Src)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Keep one request in flight so stop() has something to drain, giving us
  // a window in which the listener is up but shedding.
  int fd_a = raw_connect(rt.bound_port());
  ASSERT_TRUE(send_all(
      fd_a, http::serialize_request("POST", "/sleep", {}, true)));
  for (int i = 0; i < 500 && rt.inflight() < 1; ++i) ::usleep(1'000);
  ASSERT_GE(rt.inflight(), 1);

  // Connect BEFORE the drain starts (accept behavior during drain is not
  // the contract under test), then wait for the draining flag.
  int fd_b = raw_connect(rt.bound_port());
  std::thread stopper([&] { rt.stop(); });
  for (int i = 0; i < 500 && !rt.draining(); ++i) ::usleep(1'000);
  ASSERT_TRUE(rt.draining());

  ASSERT_TRUE(
      send_all(fd_b, http::serialize_request("POST", "/ping", {}, true)));
  int status = 0;
  std::string headers, body, carry;
  ASSERT_TRUE(recv_response_headers(fd_b, &status, &headers, &body, &carry));
  EXPECT_EQ(status, 503);
  EXPECT_NE(headers.find("Retry-After: 5"), std::string::npos) << headers;
  EXPECT_NE(headers.find("Connection: keep-alive"), std::string::npos)
      << headers;

  stopper.join();
  ::close(fd_a);
  ::close(fd_b);
  EXPECT_EQ(rt.totals().shed, 1u);
  EXPECT_EQ(rt.totals().completed, 1u);  // the sleeper drained cleanly
}

// ---- Histogram percentile cache (sort once per snapshot) ----

TEST(ObservabilityTest, HistogramBatchPercentilesMatchSingle) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.record(1001 - i);  // reverse order
  auto batch = h.percentiles({0.0, 0.5, 0.9, 0.99, 1.0});
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[0], 1u);
  EXPECT_EQ(batch[1], h.percentile_ns(0.5));
  EXPECT_EQ(batch[2], h.percentile_ns(0.9));
  EXPECT_EQ(batch[3], h.percentile_ns(0.99));
  EXPECT_EQ(batch[4], 1000u);
  // Nearest-rank: p50 of 1..1000 is the 500th order statistic.
  EXPECT_EQ(batch[1], 500u);
  EXPECT_EQ(batch[3], 990u);

  // Interleaved record/percentile keeps the cache coherent.
  h.record(5000);
  EXPECT_EQ(h.max_ns(), 5000u);
  auto s = h.summary();
  EXPECT_EQ(s.count, 1001u);
  EXPECT_EQ(s.max_ns, 5000u);
  EXPECT_DOUBLE_EQ(s.sum_ns, (1000.0 * 1001.0) / 2 + 5000.0);
}

}  // namespace
}  // namespace sledge::runtime
