// Differential conformance suite for the inter-function dataplane: the
// same seeded chain workloads must produce byte-identical responses under
// the copy and shm (zero-copy transfer-buffer) dataplanes across every
// dispatcher, with invoke counters that reconcile exactly and no transfer
// buffer left outstanding afterwards. Also covers the sb_invoke_stream
// pipelined hand-off (both the HTTP-connection and upstream-join channel
// paths), deadline kills mid-chain, keep-alive connection-loan recycling
// (generation-tag regression), and stop() with chains still in flight
// (shutdown orphan-drain regression).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/resource_pool.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const std::string& src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

std::vector<uint8_t> compile_app(const std::string& name) {
  auto src = apps::load_app_source(name);
  EXPECT_TRUE(src.ok()) << src.error_message();
  return compile(src.ok() ? src.value() : std::string{});
}

int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool recv_response(int fd, int* status, std::string* body,
                   std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

// Seeded request payloads shared by every (dataplane, dispatcher) leg so
// the legs are byte-comparable. Lengths span empty, sub-bucket, and
// several-KiB (the .mc chain stages cap at 4096).
std::vector<std::vector<uint8_t>> seeded_payloads(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<std::vector<uint8_t>> payloads;
  for (int i = 0; i < count; ++i) {
    std::vector<uint8_t> p(rng.below(3500));
    for (uint8_t& b : p) b = static_cast<uint8_t>(rng.next_u32());
    payloads.push_back(std::move(p));
  }
  payloads.emplace_back();  // empty request rides the dataplane too
  return payloads;
}

uint64_t transfer_outstanding() {
  return SandboxResourcePool::instance().counters().transfer_outstanding;
}

// The pool is process-global; releases race the HTTP response by a few
// scheduler ticks, so "no leak" is an eventually-zero property.
void expect_no_outstanding_transfers(const char* where) {
  for (int i = 0; i < 500 && transfer_outstanding() != 0; ++i) ::usleep(10'000);
  EXPECT_EQ(transfer_outstanding(), 0u) << where;
}

struct ChainRun {
  std::vector<std::vector<uint8_t>> chain;   // /chain responses, in order
  std::vector<std::vector<uint8_t>> nested;  // /chain_nested responses
  uint64_t invokes = 0;
  uint64_t zerocopy = 0;  // sum of per-module invoke_zerocopy
  uint64_t local = 0;     // sum of per-module invoke_local
};

ChainRun run_chain_workload(InvokeDataplane dataplane,
                            DispatchPolicy dispatcher,
                            const std::vector<std::vector<uint8_t>>& payloads) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.dispatcher = dispatcher;
  cfg.invoke_dataplane = dataplane;
  cfg.deadline_ns = 5'000'000'000;  // EDF needs finite deadlines to order by
  Runtime rt(cfg);
  EXPECT_TRUE(rt.register_module("chain", compile_app("chain")).is_ok());
  EXPECT_TRUE(
      rt.register_module("chain_nested", compile_app("chain_nested")).is_ok());
  EXPECT_TRUE(rt.register_module("echo", compile_app("echo")).is_ok());
  EXPECT_TRUE(rt.start().is_ok());

  ChainRun run;
  for (const auto& payload : payloads) {
    for (bool nested : {false, true}) {
      int status = 0;
      const char* path = nested ? "/chain_nested" : "/chain";
      auto resp =
          loadgen::single_request("127.0.0.1", rt.bound_port(), path, payload,
                                  &status);
      EXPECT_TRUE(resp.ok()) << resp.error_message();
      EXPECT_EQ(status, 200)
          << path << " dataplane=" << to_string(dataplane)
          << " dispatcher=" << to_string(dispatcher);
      (nested ? run.nested : run.chain)
          .push_back(resp.ok() ? *resp : std::vector<uint8_t>{});
    }
  }
  run.invokes = rt.totals().invokes;

  auto doc = json::parse(rt.stats_json());
  EXPECT_TRUE(doc.ok()) << doc.error_message();
  if (doc.ok()) {
    for (const char* name : {"chain", "chain_nested", "echo"}) {
      const json::Value& m = (*doc)["modules"][name];
      run.zerocopy += static_cast<uint64_t>(m["invoke_zerocopy"].as_int(0));
      run.local += static_cast<uint64_t>(m["invoke_local"].as_int(0));
    }
  }
  rt.stop();
  return run;
}

// Tentpole acceptance: the dataplane is a transport, not a semantic — for
// every dispatcher, copy and shm runs of the same seeded workload return
// byte-identical responses (which also equal the payload: the chains
// terminate in /echo), the invoke ledger reconciles exactly (1 child per
// /chain, 2 per /chain_nested), shm actually rides transfer buffers
// (invoke_zerocopy > 0) while copy never does, and every loaned buffer is
// back in the pool afterwards.
TEST(InvokeDataplaneTest, DifferentialCopyVsShmAcrossDispatchers) {
  const auto payloads = seeded_payloads(0xD1FF, 8);
  const uint64_t expected_invokes = payloads.size() * 3;  // 1 + 2 per payload

  for (DispatchPolicy dispatcher :
       {DispatchPolicy::kWorkStealing, DispatchPolicy::kGlobalEdf,
        DispatchPolicy::kShardedByModule}) {
    ChainRun copy =
        run_chain_workload(InvokeDataplane::kCopy, dispatcher, payloads);
    expect_no_outstanding_transfers("after copy run");
    ChainRun shm =
        run_chain_workload(InvokeDataplane::kShm, dispatcher, payloads);
    expect_no_outstanding_transfers("after shm run");

    ASSERT_EQ(copy.chain.size(), payloads.size());
    ASSERT_EQ(shm.chain.size(), payloads.size());
    ASSERT_EQ(copy.nested.size(), payloads.size());
    ASSERT_EQ(shm.nested.size(), payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(copy.chain[i], shm.chain[i])
          << "chain payload " << i << " " << to_string(dispatcher);
      EXPECT_EQ(copy.nested[i], shm.nested[i])
          << "nested payload " << i << " " << to_string(dispatcher);
      EXPECT_EQ(shm.chain[i], payloads[i]);
      EXPECT_EQ(shm.nested[i], payloads[i]);
    }
    EXPECT_EQ(copy.invokes, expected_invokes) << to_string(dispatcher);
    EXPECT_EQ(shm.invokes, expected_invokes) << to_string(dispatcher);
    EXPECT_EQ(copy.zerocopy, 0u) << to_string(dispatcher);
    EXPECT_GT(shm.zerocopy, 0u) << to_string(dispatcher);
    if (dispatcher == DispatchPolicy::kWorkStealing) {
      // Locality hints are only requested where the dispatcher honors them.
      EXPECT_GT(shm.local, 0u);
    } else {
      EXPECT_EQ(shm.local, 0u) << to_string(dispatcher);
      EXPECT_EQ(copy.local, 0u) << to_string(dispatcher);
    }
  }
}

// Per-module dataplane override: a module whose limits pin
// invoke_dataplane rides that plane regardless of the runtime-wide
// default, and the responses stay byte-identical either way. The
// invoke_zerocopy counter lands on the callee module, so it is the
// observable for which plane the caller's invokes actually used.
TEST(InvokeDataplaneTest, PerModuleDataplaneOverride) {
  const auto payloads = seeded_payloads(0x0E44, 4);
  struct Case {
    InvokeDataplane global;
    InvokeDataplaneOverride override_;
    bool expect_zerocopy;
  };
  for (const Case& c : {Case{InvokeDataplane::kShm,
                             InvokeDataplaneOverride::kCopy, false},
                        Case{InvokeDataplane::kCopy,
                             InvokeDataplaneOverride::kShm, true}}) {
    RuntimeConfig cfg;
    cfg.workers = 2;
    cfg.invoke_dataplane = c.global;
    Runtime rt(cfg);
    ModuleLimits limits;
    limits.invoke_dataplane = c.override_;
    ASSERT_TRUE(
        rt.register_module("chain", compile_app("chain"), limits).is_ok());
    ASSERT_TRUE(rt.register_module("echo", compile_app("echo")).is_ok());
    ASSERT_TRUE(rt.start().is_ok());
    for (const auto& payload : payloads) {
      int status = 0;
      auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                          "/chain", payload, &status);
      ASSERT_TRUE(resp.ok()) << resp.error_message();
      EXPECT_EQ(status, 200);
      EXPECT_EQ(*resp, payload);
    }
    auto doc = json::parse(rt.stats_json());
    ASSERT_TRUE(doc.ok()) << doc.error_message();
    uint64_t zerocopy = static_cast<uint64_t>(
        (*doc)["modules"]["echo"]["invoke_zerocopy"].as_int(0));
    if (c.expect_zerocopy) {
      EXPECT_GT(zerocopy, 0u) << "shm override ignored in copy runtime";
    } else {
      EXPECT_EQ(zerocopy, 0u) << "copy override ignored in shm runtime";
    }
    rt.stop();
    expect_no_outstanding_transfers("after override run");
  }
}

// sb_invoke_stream, HTTP-channel path: /chain3 -> relay -> echo, each hop a
// hand-off of both payload and response channel. The original caller's
// reply is written by echo two stages downstream; the head and middle
// stages retire without joining. Both new stats surfaces must show it.
TEST(InvokeDataplaneTest, StreamChainHandsOffHttpConnection) {
  for (int workers : {1, 2}) {
    RuntimeConfig cfg;
    cfg.workers = workers;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("chain3", compile_app("chain3")).is_ok());
    ASSERT_TRUE(rt.register_module("relay", compile_app("relay")).is_ok());
    ASSERT_TRUE(rt.register_module("echo", compile_app("echo")).is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    const std::string payload = "pipelined, not stop-and-wait";
    for (int i = 0; i < 5; ++i) {
      int status = 0;
      auto resp = loadgen::single_request(
          "127.0.0.1", rt.bound_port(), "/chain3",
          std::vector<uint8_t>(payload.begin(), payload.end()), &status);
      ASSERT_TRUE(resp.ok()) << resp.error_message();
      EXPECT_EQ(status, 200) << "workers=" << workers;
      EXPECT_EQ(std::string(resp->begin(), resp->end()), payload);
    }
    EXPECT_EQ(rt.totals().invokes, 10u);  // relay + echo per request

    int status = 0;
    auto metrics = loadgen::http_get("127.0.0.1", rt.bound_port(),
                                     "/admin/metrics", &status);
    ASSERT_TRUE(metrics.ok()) << metrics.error_message();
    EXPECT_EQ(status, 200);
    EXPECT_NE(metrics->find("sledge_invoke_zerocopy_total"),
              std::string::npos);
    EXPECT_NE(metrics->find("sledge_invoke_handoff_seconds"),
              std::string::npos);
    auto doc = json::parse(rt.stats_json());
    ASSERT_TRUE(doc.ok()) << doc.error_message();
    EXPECT_GT((*doc)["modules"]["echo"]["invoke_zerocopy"].as_int(0), 0);
    rt.stop();
    expect_no_outstanding_transfers("after stream chain");
  }
}

// sb_invoke_stream, join-channel path: a joining head (sb_invoke) calls
// relay, which streams to echo. Relay has no HTTP connection, so its
// hand-off must transfer the upstream InvokeJoin instead — echo's response
// lands directly in the head's join (on the shm dataplane, in the head's
// transfer buffer: true end-to-end zero-copy).
TEST(InvokeDataplaneTest, StreamChainHandsOffUpstreamJoin) {
  const char* kJoinHeadSrc = R"(
char name[5];
char req[4096];
char resp[4096];
int main() {
  int len = req_len();
  if (len > 4096) len = 4096;
  req_read(req, 0, len);
  name[0] = 114;  // 'r'
  name[1] = 101;  // 'e'
  name[2] = 108;  // 'l'
  name[3] = 97;   // 'a'
  name[4] = 121;  // 'y'
  int n = sb_invoke(name, 5, req, len, resp, 4096);
  if (n < 0) {
    resp_i32(n);
    return n;
  }
  resp_write(resp, n);
  return n;
}
)";
  for (InvokeDataplane dataplane :
       {InvokeDataplane::kCopy, InvokeDataplane::kShm}) {
    RuntimeConfig cfg;
    cfg.workers = 2;
    cfg.invoke_dataplane = dataplane;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("head", compile(kJoinHeadSrc)).is_ok());
    ASSERT_TRUE(rt.register_module("relay", compile_app("relay")).is_ok());
    ASSERT_TRUE(rt.register_module("echo", compile_app("echo")).is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    const std::string payload = "join hand-off";
    int status = 0;
    auto resp = loadgen::single_request(
        "127.0.0.1", rt.bound_port(), "/head",
        std::vector<uint8_t>(payload.begin(), payload.end()), &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 200) << to_string(dataplane);
    EXPECT_EQ(std::string(resp->begin(), resp->end()), payload)
        << to_string(dataplane);
    EXPECT_EQ(rt.totals().invokes, 2u);
    rt.stop();
    expect_no_outstanding_transfers("after join hand-off");
  }
}

// Deadline kill mid-chain: the head's wall deadline fires while it is
// parked on its child's join. The caller gets 504, the child (whose
// deadline was clipped to its parent's) dies too, and every transfer-buffer
// loan the chain held comes back to the pool. The runtime keeps serving.
TEST(InvokeDataplaneTest, DeadlineKillMidChainReturnsTransferBuffers) {
  const char* kStallHeadSrc = R"(
char name[3];
char req[8];
char resp[8];
int main() {
  name[0] = 122;  // 'z'
  name[1] = 122;  // 'z'
  name[2] = 122;  // 'z'
  int n = sb_invoke(name, 3, req, 4, resp, 8);
  resp_i32(n);
  return n;
}
)";
  const char* kSleeperSrc = R"(
char out[1];
int main() { sleep_ms(2000); out[0] = 122; resp_write(out, 1); return 0; }
)";
  const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ModuleLimits limits;
  limits.deadline_ns = 150'000'000;  // 150 ms wall deadline on the head
  ASSERT_TRUE(rt.register_module("stall", compile(kStallHeadSrc), limits)
                  .is_ok());
  ASSERT_TRUE(rt.register_module("zzz", compile(kSleeperSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  int status = 0;
  auto resp =
      loadgen::single_request("127.0.0.1", rt.bound_port(), "/stall", {},
                              &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 504);

  // Both parties of the chain held loan references; all must come back.
  expect_no_outstanding_transfers("after mid-chain kill");
  EXPECT_GE(rt.totals().killed, 1u);

  status = 0;
  auto again = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                       {}, &status);
  ASSERT_TRUE(again.ok()) << again.error_message();
  EXPECT_EQ(status, 200);
  rt.stop();
}

// Regression (PR 7 teardown hunt, bug a): connection loans are generation-
// tagged so a worker's return reattaches parked parser state only to the
// same incarnation of the fd. Pipelined keep-alive pairs are the observable
// contract: request 2 of each pair rides bytes parked while request 1's fd
// was loaned out — a gen mismatch (or stale-discard) would strand them.
TEST(InvokeDataplaneTest, KeepAliveLoanRecycleServesPipelinedPairs) {
  const char* kEchoSrc = R"(
char buf[4096];
int main() {
  int len = req_len();
  if (len > 4096) len = 4096;
  req_read(buf, 0, len);
  resp_write(buf, len);
  return len;
}
)";
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("echo", compile(kEchoSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // One long-lived keep-alive connection. Each round writes TWO pipelined
  // requests in a single send: request 1 is admitted and its fd loaned to a
  // worker with request 2's bytes parked; the loan return must reattach
  // that parked state (gen match) for request 2 to ever be served. Rounds
  // repeat on the same fd, so its loan generation climbs every round.
  int fd = raw_connect(rt.bound_port());
  std::string carry;
  constexpr int kRounds = 40;
  for (int r = 0; r < kRounds; ++r) {
    std::string a = "pair-a-" + std::to_string(r);
    std::string b = "pair-b-" + std::to_string(r);
    auto post = [](const std::string& body) {
      return "POST /echo HTTP/1.1\r\nContent-Length: " +
             std::to_string(body.size()) + "\r\n\r\n" + body;
    };
    ASSERT_TRUE(send_all(fd, post(a) + post(b))) << "round " << r;
    int status = 0;
    std::string body;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "round " << r;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, a);
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry)) << "round " << r;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, b);
  }
  ::close(fd);

  // Every loaned fd came home: the shard ledgers must read zero.
  auto body = loadgen::http_get("127.0.0.1", rt.bound_port(), "/admin/stats");
  ASSERT_TRUE(body.ok()) << body.error_message();
  auto doc = json::parse(*body);
  ASSERT_TRUE(doc.ok()) << doc.error_message();
  for (const json::Value& shard : (*doc)["listeners"].as_array()) {
    EXPECT_EQ(shard["loaned_conns"].as_int(-1), 0);
  }
  rt.stop();
}

// Regression (PR 7 teardown hunt, bugs b+c): stop() while chains are still
// in flight. Admitted-but-never-fetched children are drained (their joins
// signalled, their fds closed) instead of leaking, and the listener's
// returned/discarded queues are flushed at destruction. Heap checkers
// (ASan / MALLOC_CHECK_) turn any double-close or leak into a hard fail.
TEST(InvokeDataplaneTest, StopWhileChainsInFlightDrainsCleanly) {
  const char* kSlowChainSrc = R"(
char name[3];
char req[8];
char resp[8];
int main() {
  name[0] = 122;  // 'z'
  name[1] = 122;  // 'z'
  name[2] = 122;  // 'z'
  int n = sb_invoke(name, 3, req, 4, resp, 8);
  resp_i32(n);
  return n;
}
)";
  const char* kSleeperSrc = R"(
char out[1];
int main() { sleep_ms(300); out[0] = 122; resp_write(out, 1); return 0; }
)";
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("slow", compile(kSlowChainSrc)).is_ok());
  ASSERT_TRUE(rt.register_module("zzz", compile(kSleeperSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&rt] {
      int status = 0;
      // The runtime is being torn down under us: errors and resets are
      // legitimate outcomes, crashing or hanging is not.
      (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/slow", {},
                                    &status);
    });
  }
  ::usleep(50'000);  // let the chains park on their joins
  rt.stop();
  for (std::thread& t : clients) t.join();
  expect_no_outstanding_transfers("after mid-flight stop");
}

}  // namespace
}  // namespace sledge::runtime
