// Disassembler tests: structural rendering of modules and instruction
// bodies (smoke-level — the output is for humans, tests pin the essentials).
#include <gtest/gtest.h>

#include "minicc/minicc.hpp"
#include "wasm/decoder.hpp"
#include "wasm/disasm.hpp"

namespace sledge::wasm {
namespace {

TEST(DisasmTest, RendersMiniccModule) {
  auto wasm = minicc::compile_to_wasm(R"(
    double acc = 1.5;
    int table_fn(int x) { return x + 1; }
    int main() {
      acc = acc * 2.0;
      return table_fn((int)acc);
    }
  )");
  ASSERT_TRUE(wasm.ok());
  auto mod = decode(*wasm);
  ASSERT_TRUE(mod.ok());
  std::string wat = disassemble(*mod);

  EXPECT_NE(wat.find("(module"), std::string::npos);
  EXPECT_NE(wat.find("(memory"), std::string::npos);
  EXPECT_NE(wat.find("(global $g0 (mut f64))"), std::string::npos);
  EXPECT_NE(wat.find("(export \"main\""), std::string::npos);
  EXPECT_NE(wat.find("(export \"run\""), std::string::npos);
  EXPECT_NE(wat.find("f64.mul"), std::string::npos);
  EXPECT_NE(wat.find("i32.trunc_f64_s"), std::string::npos);
  EXPECT_NE(wat.find("call "), std::string::npos);
}

TEST(DisasmTest, RendersControlFlowNesting) {
  auto wasm = minicc::compile_to_wasm(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 4; i++) {
        if (i % 2 == 0) sum += i;
      }
      return sum;
    }
  )");
  ASSERT_TRUE(wasm.ok());
  auto mod = decode(*wasm);
  ASSERT_TRUE(mod.ok());
  std::string wat = disassemble(*mod);
  EXPECT_NE(wat.find("block"), std::string::npos);
  EXPECT_NE(wat.find("loop"), std::string::npos);
  EXPECT_NE(wat.find("br_if"), std::string::npos);
  EXPECT_NE(wat.find("if"), std::string::npos);
  // Nesting increases indentation: the loop body is deeper than the block.
  size_t block_pos = wat.find("    block");
  size_t loop_pos = wat.find("      loop");
  EXPECT_NE(block_pos, std::string::npos);
  EXPECT_NE(loop_pos, std::string::npos);
}

TEST(DisasmTest, RendersImportsAndConstants) {
  auto wasm = minicc::compile_to_wasm(R"(
    char buf[8];
    int main() {
      resp_write(buf, req_len());
      return (int)(3.25 * 2.0);
    }
  )");
  ASSERT_TRUE(wasm.ok());
  auto mod = decode(*wasm);
  ASSERT_TRUE(mod.ok());
  std::string wat = disassemble(*mod);
  EXPECT_NE(wat.find("(import \"env\" \"req_len\""), std::string::npos);
  EXPECT_NE(wat.find("(import \"env\" \"resp_write\""), std::string::npos);
  EXPECT_NE(wat.find("f64.const 3.25"), std::string::npos);
}

TEST(DisasmTest, SingleFunctionView) {
  auto wasm = minicc::compile_to_wasm("int f(int a) { return a * a; }");
  ASSERT_TRUE(wasm.ok());
  auto mod = decode(*wasm);
  ASSERT_TRUE(mod.ok());
  std::string wat = disassemble_function(*mod, 0);
  EXPECT_NE(wat.find("(func $f0 (param i32) (result i32)"),
            std::string::npos);
  EXPECT_NE(wat.find("i32.mul"), std::string::npos);
}

}  // namespace
}  // namespace sledge::wasm
