// HTTP layer tests: incremental parsing under arbitrary TCP segmentation
// (property test), header handling, keep-alive semantics, malformed input,
// and serializer round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "http/http.hpp"

namespace sledge::http {
namespace {

const char kSimpleRequest[] =
    "POST /fib HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Length: 5\r\n"
    "Connection: keep-alive\r\n"
    "\r\n"
    "hello";

TEST(RequestParserTest, ParsesWholeRequest) {
  RequestParser p;
  int used = p.feed(kSimpleRequest, sizeof(kSimpleRequest) - 1);
  ASSERT_EQ(used, static_cast<int>(sizeof(kSimpleRequest) - 1));
  ASSERT_TRUE(p.done());
  Request& r = p.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/fib");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.headers.at("host"), "localhost");
  EXPECT_EQ(r.body, (std::vector<uint8_t>{'h', 'e', 'l', 'l', 'o'}));
  EXPECT_TRUE(r.keep_alive());
}

TEST(RequestParserTest, ByteAtATime) {
  RequestParser p;
  const char* s = kSimpleRequest;
  for (size_t i = 0; i < sizeof(kSimpleRequest) - 1; ++i) {
    int used = p.feed(s + i, 1);
    ASSERT_GE(used, 0) << "at byte " << i;
  }
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body.size(), 5u);
}

// Property: any segmentation of the byte stream parses identically.
TEST(RequestParserTest, PropertyRandomSegmentation) {
  std::string req = "POST /echo HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  std::string body(1000, 'x');
  for (size_t i = 0; i < body.size(); ++i) body[i] = static_cast<char>('a' + i % 26);
  req += body;

  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    RequestParser p;
    size_t pos = 0;
    while (pos < req.size()) {
      size_t chunk = 1 + rng.below(200);
      if (pos + chunk > req.size()) chunk = req.size() - pos;
      size_t chunk_pos = 0;
      while (chunk_pos < chunk) {
        int used = p.feed(req.data() + pos + chunk_pos, chunk - chunk_pos);
        ASSERT_GE(used, 0);
        ASSERT_GT(used, 0);  // must always make progress
        chunk_pos += static_cast<size_t>(used);
      }
      pos += chunk;
    }
    ASSERT_TRUE(p.done()) << "trial " << trial;
    EXPECT_EQ(p.request().body.size(), 1000u);
    EXPECT_EQ(std::string(p.request().body.begin(), p.request().body.end()),
              body);
  }
}

TEST(RequestParserTest, NoBodyWithoutContentLength) {
  RequestParser p;
  const char req[] = "GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
  p.feed(req, sizeof(req) - 1);
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.request().body.empty());
}

TEST(RequestParserTest, ConsumesOnlyItsRequest) {
  // Two pipelined requests: the parser must stop at the first boundary.
  std::string two = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nXY";
  std::string second = "POST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  std::string all = two + second;
  RequestParser p;
  int used = p.feed(all.data(), all.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(used, static_cast<int>(two.size()));
  p.reset();
  used = p.feed(all.data() + two.size(), second.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().target, "/b");
}

TEST(RequestParserTest, MalformedRequestLine) {
  for (const char* bad : {"GARBAGE\r\n\r\n", "POST\r\n\r\n",
                          "POST /x\r\n\r\n", "POST /x FTP/9\r\n\r\n"}) {
    RequestParser p;
    int used = p.feed(bad, strlen(bad));
    EXPECT_TRUE(used < 0 || p.failed()) << bad;
  }
}

TEST(RequestParserTest, MalformedHeaderLine) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, BadContentLength) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, OversizedHeadersRejected) {
  RequestParser p;
  std::string req = "POST /x HTTP/1.1\r\n";
  req += "X-Long: " + std::string(RequestParser::kMaxHeaderBytes, 'a');
  int used = p.feed(req.data(), req.size());
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, OversizedBodyRejected) {
  RequestParser p;
  std::string req =
      "POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
  int used = p.feed(req.data(), req.size());
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, KeepAliveDefaults) {
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.1\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_TRUE(p.request().keep_alive());  // 1.1 default
  }
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.0\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive());  // 1.0 default
  }
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.1\r\nConnection: close\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive());
  }
}

TEST(RequestParserTest, HeaderKeysLowercasedValuesTrimmed) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nX-FOO:   Bar Baz  \r\n\r\n";
  p.feed(req, sizeof(req) - 1);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().headers.at("x-foo"), "Bar Baz");
}

// ---- Strict Content-Length (table-driven) ----
//
// strtoull was too lax: it accepted empty values, leading whitespace and
// +/- signs ("-1" wrapped past the body cap). Only all-digit values parse.

TEST(RequestParserTest, ContentLengthStrictTable) {
  struct Case {
    const char* value;
    bool ok;
    size_t body_len;  // only meaningful when ok
  };
  const Case cases[] = {
      {"5", true, 5},
      {"0", true, 0},
      {"007", true, 7},  // leading zeros are still all-digit
      {"", false, 0},
      {"+5", false, 0},
      {"-1", false, 0},
      {"-5", false, 0},
      {" 5", true, 5},   // header value trim eats surrounding whitespace
      {"5 ", true, 5},
      {"5x", false, 0},
      {"x5", false, 0},
      {"4 2", false, 0},
      {"0x10", false, 0},
      {"5\t", true, 5},  // trailing tab trimmed with the header value
      {"99999999999999999999999999", false, 0},  // uint64 overflow
      {"18446744073709551615", false, 0},        // UINT64_MAX > body cap
  };
  for (const Case& c : cases) {
    RequestParser p;
    std::string req = "POST /x HTTP/1.1\r\nContent-Length: " +
                      std::string(c.value) + "\r\n\r\n";
    std::string body(c.ok ? c.body_len : 0, 'b');
    req += body;
    int used = p.feed(req.data(), req.size());
    if (c.ok) {
      ASSERT_GE(used, 0) << "value '" << c.value << "'";
      ASSERT_TRUE(p.done()) << "value '" << c.value << "'";
      EXPECT_EQ(p.request().body.size(), c.body_len)
          << "value '" << c.value << "'";
    } else {
      EXPECT_TRUE(used < 0 && p.failed()) << "value '" << c.value << "'";
    }
  }
}

TEST(RequestParserTest, DuplicateContentLengthDistinctRejected) {
  // Two distinct Content-Length values = request smuggling vector; the old
  // header map silently kept the last one.
  RequestParser p;
  const char req[] =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 && p.failed());
}

TEST(RequestParserTest, DuplicateContentLengthSameValueAccepted) {
  RequestParser p;
  const char req[] =
      "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nXY";
  int used = p.feed(req, sizeof(req) - 1);
  ASSERT_EQ(used, static_cast<int>(sizeof(req) - 1));
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body.size(), 2u);
}

// ---- Chunked transfer encoding: framed-and-discarded ----
//
// The parser walks the chunk framing to find the request boundary (so the
// byte stream stays in sync for pipelined successors) but stores no body;
// done() + chunked() tells the server to answer 501.

TEST(RequestParserTest, ChunkedFramedAndFlagged) {
  RequestParser p;
  const char req[] =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  ASSERT_EQ(used, static_cast<int>(sizeof(req) - 1));
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.chunked());
  EXPECT_TRUE(p.request().body.empty());  // discarded, not stored
}

TEST(RequestParserTest, ChunkedStopsAtBoundaryBeforePipelinedRequest) {
  // The old parser ignored Transfer-Encoding, treated the body as empty,
  // and re-parsed the chunk bytes as the *next* request (garbage 400 or a
  // smuggled request). The framing walk must stop exactly at the boundary.
  std::string chunked =
      "POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  std::string next = "POST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  std::string all = chunked + next;
  RequestParser p;
  int used = p.feed(all.data(), all.size());
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.chunked());
  ASSERT_EQ(used, static_cast<int>(chunked.size()));
  p.reset();
  EXPECT_FALSE(p.chunked());  // reset clears the flag
  used = p.feed(all.data() + chunked.size(), next.size());
  ASSERT_TRUE(p.done());
  EXPECT_FALSE(p.chunked());
  EXPECT_EQ(p.request().target, "/b");
}

TEST(RequestParserTest, ChunkedByteAtATimeWithExtensionsAndTrailers) {
  const char req[] =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;ext=1\r\nWiki\r\n0\r\nTrailer: v\r\n\r\n";
  RequestParser p;
  for (size_t i = 0; i < sizeof(req) - 1; ++i) {
    int used = p.feed(req + i, 1);
    ASSERT_GE(used, 0) << "at byte " << i;
  }
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.chunked());
}

TEST(RequestParserTest, ChunkedTakesPrecedenceOverContentLength) {
  // RFC 7230: Transfer-Encoding wins; honoring both is a smuggling vector.
  const char req[] =
      "POST /x HTTP/1.1\r\nContent-Length: 100\r\n"
      "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
  RequestParser p;
  int used = p.feed(req, sizeof(req) - 1);
  ASSERT_EQ(used, static_cast<int>(sizeof(req) - 1));
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.chunked());
}

TEST(RequestParserTest, ChunkedMalformedFraming) {
  for (const char* tail :
       {"Z\r\n",                // non-hex size
        "\r\n",                 // empty size line
        "3\r\nabcX",            // bad chunk terminator
        "ffffffffffffffff1\r\n"  // size overflow
       }) {
    RequestParser p;
    std::string req =
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    req += tail;
    int used = p.feed(req.data(), req.size());
    EXPECT_TRUE(used < 0 && p.failed()) << "tail: " << tail;
  }
}

TEST(RequestParserTest, UnsupportedTransferEncodingRejected) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 && p.failed());
}

// ---- Seeded framing property-fuzz ----
//
// Randomized pipelined streams — Content-Length bodies of arbitrary size,
// duplicate same-value Content-Length, chunked requests with extensions and
// trailers, noise headers — fed at random split points. The contract the
// listener depends on: the parser reports every request exactly once, in
// order, with byte-exact bodies, and always makes progress (a stall would
// wedge a keep-alive connection forever).

TEST(RequestParserTest, PropertyFuzzPipelinedFramingNeverDropsOrDuplicates) {
  struct Expected {
    std::string target;
    std::string body;  // empty for chunked (framed-and-discarded)
    bool chunked = false;
  };
  for (uint64_t seed : {1ull, 42ull, 777ull, 0xD00Dull}) {
    Rng rng(seed);
    for (int trial = 0; trial < 30; ++trial) {
      // Build a pipelined stream of 1..8 requests and its expected parse.
      std::string stream;
      std::vector<Expected> expected;
      int nreq = 1 + static_cast<int>(rng.below(8));
      for (int i = 0; i < nreq; ++i) {
        Expected e;
        e.target = "/m" + std::to_string(rng.below(10));
        std::string req = "POST " + e.target + " HTTP/1.1\r\n";
        if (rng.chance(0.3)) req += "X-Noise: n" +
                                    std::to_string(rng.below(100)) + "\r\n";
        if (rng.chance(0.3)) {
          // Chunked: random chunk sizes, optional extension and trailer.
          e.chunked = true;
          req += "Transfer-Encoding: chunked\r\n\r\n";
          int chunks = static_cast<int>(rng.below(4));
          for (int c = 0; c < chunks; ++c) {
            size_t len = 1 + rng.below(300);
            char hex[16];
            std::snprintf(hex, sizeof(hex), "%zx", len);
            req += hex;
            if (rng.chance(0.3)) req += ";ext=v";
            req += "\r\n" + std::string(len, static_cast<char>('a' + c)) +
                   "\r\n";
          }
          req += "0\r\n";
          if (rng.chance(0.3)) req += "Trailer: t\r\n";
          req += "\r\n";
        } else {
          size_t len = rng.below(2000);
          e.body.resize(len);
          for (char& ch : e.body) {
            ch = static_cast<char>(rng.below(256));
          }
          std::string cl = "Content-Length: " + std::to_string(len) + "\r\n";
          req += cl;
          if (rng.chance(0.2)) req += cl;  // duplicate, same value: legal
          req += "\r\n" + e.body;
        }
        stream += req;
        expected.push_back(std::move(e));
      }

      // Feed at random split points; harvest at each request boundary.
      std::vector<Expected> got;
      RequestParser p;
      size_t pos = 0;
      while (pos < stream.size()) {
        size_t chunk = 1 + rng.below(333);
        if (pos + chunk > stream.size()) chunk = stream.size() - pos;
        size_t off = 0;
        while (off < chunk) {
          int used = p.feed(stream.data() + pos + off, chunk - off);
          ASSERT_GT(used, 0) << "seed " << seed << " trial " << trial
                             << " stalled at byte " << pos + off;
          off += static_cast<size_t>(used);
          if (p.done()) {
            Expected e;
            e.target = p.request().target;
            e.body.assign(p.request().body.begin(), p.request().body.end());
            e.chunked = p.chunked();
            got.push_back(std::move(e));
            p.reset();
          }
        }
        pos += chunk;
      }

      ASSERT_EQ(got.size(), expected.size())
          << "seed " << seed << " trial " << trial;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].target, expected[i].target) << "request " << i;
        EXPECT_EQ(got[i].chunked, expected[i].chunked) << "request " << i;
        EXPECT_EQ(got[i].body, expected[i].body) << "request " << i;
      }
    }
  }
}

// The same property for malformed tails: any number of well-formed
// pipelined requests followed by a malformed one (smuggling-shaped
// Content-Length, bogus transfer coding, broken chunk framing). Every
// prefix request parses exactly once; the malformed request must fail —
// never be silently reported done — under any segmentation.
TEST(RequestParserTest, PropertyFuzzMalformedTailAlwaysFails) {
  const char* kMalformed[] = {
      "POST /x HTTP/1.1\r\nContent-Length: 5x\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZ\r\n",
      "POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
  };
  Rng rng(0xBAD5EED);
  for (int trial = 0; trial < 120; ++trial) {
    std::string stream;
    int nprefix = static_cast<int>(rng.below(4));
    for (int i = 0; i < nprefix; ++i) {
      size_t len = rng.below(50);
      stream += "POST /ok HTTP/1.1\r\nContent-Length: " +
                std::to_string(len) + "\r\n\r\n" + std::string(len, 'k');
    }
    stream += kMalformed[rng.below(sizeof(kMalformed) / sizeof(char*))];

    RequestParser p;
    int parsed_ok = 0;
    bool saw_failure = false;
    size_t pos = 0;
    while (pos < stream.size() && !saw_failure) {
      size_t chunk = 1 + rng.below(64);
      if (pos + chunk > stream.size()) chunk = stream.size() - pos;
      size_t off = 0;
      while (off < chunk) {
        int used = p.feed(stream.data() + pos + off, chunk - off);
        if (used < 0 || p.failed()) {
          saw_failure = true;
          break;
        }
        ASSERT_GT(used, 0);
        off += static_cast<size_t>(used);
        if (p.done()) {
          EXPECT_EQ(p.request().target, "/ok");
          ++parsed_ok;
          p.reset();
        }
      }
      pos += chunk;
    }
    EXPECT_TRUE(saw_failure) << "trial " << trial;
    EXPECT_EQ(parsed_ok, nprefix) << "trial " << trial;
  }
}

TEST(SerializerTest, HeaderOnlySerializerMatchesFullResponse) {
  // The writev fast path sends serialize_response_header + body iovecs; the
  // concatenation must be byte-identical to the legacy full serializer.
  std::vector<uint8_t> body = {'a', 'b', 'c'};
  std::string full =
      serialize_response(200, "OK", body, true, "text/plain", "X-A: 1\r\n");
  std::string header = serialize_response_header(200, "OK", body.size(), true,
                                                 "text/plain", "X-A: 1\r\n");
  EXPECT_EQ(full, header + "abc");
}

TEST(SerializerTest, ResponseRoundTrip) {
  std::vector<uint8_t> body = {1, 2, 3};
  std::string resp = serialize_response(200, "OK", body, true);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 3), std::string("\x01\x02\x03", 3));
}

TEST(SerializerTest, RequestParsesBack) {
  std::vector<uint8_t> body = {'p', 'q'};
  std::string req = serialize_request("POST", "/mod", body, false, "h");
  RequestParser p;
  int used = p.feed(req.data(), req.size());
  ASSERT_EQ(used, static_cast<int>(req.size()));
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().target, "/mod");
  EXPECT_EQ(p.request().body, body);
  EXPECT_FALSE(p.request().keep_alive());
}

}  // namespace
}  // namespace sledge::http
