// HTTP layer tests: incremental parsing under arbitrary TCP segmentation
// (property test), header handling, keep-alive semantics, malformed input,
// and serializer round-trips.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "http/http.hpp"

namespace sledge::http {
namespace {

const char kSimpleRequest[] =
    "POST /fib HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Length: 5\r\n"
    "Connection: keep-alive\r\n"
    "\r\n"
    "hello";

TEST(RequestParserTest, ParsesWholeRequest) {
  RequestParser p;
  int used = p.feed(kSimpleRequest, sizeof(kSimpleRequest) - 1);
  ASSERT_EQ(used, static_cast<int>(sizeof(kSimpleRequest) - 1));
  ASSERT_TRUE(p.done());
  Request& r = p.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/fib");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.headers.at("host"), "localhost");
  EXPECT_EQ(r.body, (std::vector<uint8_t>{'h', 'e', 'l', 'l', 'o'}));
  EXPECT_TRUE(r.keep_alive());
}

TEST(RequestParserTest, ByteAtATime) {
  RequestParser p;
  const char* s = kSimpleRequest;
  for (size_t i = 0; i < sizeof(kSimpleRequest) - 1; ++i) {
    int used = p.feed(s + i, 1);
    ASSERT_GE(used, 0) << "at byte " << i;
  }
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body.size(), 5u);
}

// Property: any segmentation of the byte stream parses identically.
TEST(RequestParserTest, PropertyRandomSegmentation) {
  std::string req = "POST /echo HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  std::string body(1000, 'x');
  for (size_t i = 0; i < body.size(); ++i) body[i] = static_cast<char>('a' + i % 26);
  req += body;

  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    RequestParser p;
    size_t pos = 0;
    while (pos < req.size()) {
      size_t chunk = 1 + rng.below(200);
      if (pos + chunk > req.size()) chunk = req.size() - pos;
      size_t chunk_pos = 0;
      while (chunk_pos < chunk) {
        int used = p.feed(req.data() + pos + chunk_pos, chunk - chunk_pos);
        ASSERT_GE(used, 0);
        ASSERT_GT(used, 0);  // must always make progress
        chunk_pos += static_cast<size_t>(used);
      }
      pos += chunk;
    }
    ASSERT_TRUE(p.done()) << "trial " << trial;
    EXPECT_EQ(p.request().body.size(), 1000u);
    EXPECT_EQ(std::string(p.request().body.begin(), p.request().body.end()),
              body);
  }
}

TEST(RequestParserTest, NoBodyWithoutContentLength) {
  RequestParser p;
  const char req[] = "GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
  p.feed(req, sizeof(req) - 1);
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.request().body.empty());
}

TEST(RequestParserTest, ConsumesOnlyItsRequest) {
  // Two pipelined requests: the parser must stop at the first boundary.
  std::string two = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nXY";
  std::string second = "POST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  std::string all = two + second;
  RequestParser p;
  int used = p.feed(all.data(), all.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(used, static_cast<int>(two.size()));
  p.reset();
  used = p.feed(all.data() + two.size(), second.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().target, "/b");
}

TEST(RequestParserTest, MalformedRequestLine) {
  for (const char* bad : {"GARBAGE\r\n\r\n", "POST\r\n\r\n",
                          "POST /x\r\n\r\n", "POST /x FTP/9\r\n\r\n"}) {
    RequestParser p;
    int used = p.feed(bad, strlen(bad));
    EXPECT_TRUE(used < 0 || p.failed()) << bad;
  }
}

TEST(RequestParserTest, MalformedHeaderLine) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, BadContentLength) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
  int used = p.feed(req, sizeof(req) - 1);
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, OversizedHeadersRejected) {
  RequestParser p;
  std::string req = "POST /x HTTP/1.1\r\n";
  req += "X-Long: " + std::string(RequestParser::kMaxHeaderBytes, 'a');
  int used = p.feed(req.data(), req.size());
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, OversizedBodyRejected) {
  RequestParser p;
  std::string req =
      "POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
  int used = p.feed(req.data(), req.size());
  EXPECT_TRUE(used < 0 || p.failed());
}

TEST(RequestParserTest, KeepAliveDefaults) {
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.1\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_TRUE(p.request().keep_alive());  // 1.1 default
  }
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.0\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive());  // 1.0 default
  }
  {
    RequestParser p;
    const char req[] = "POST /x HTTP/1.1\r\nConnection: close\r\n\r\n";
    p.feed(req, sizeof(req) - 1);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive());
  }
}

TEST(RequestParserTest, HeaderKeysLowercasedValuesTrimmed) {
  RequestParser p;
  const char req[] = "POST /x HTTP/1.1\r\nX-FOO:   Bar Baz  \r\n\r\n";
  p.feed(req, sizeof(req) - 1);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().headers.at("x-foo"), "Bar Baz");
}

TEST(SerializerTest, ResponseRoundTrip) {
  std::vector<uint8_t> body = {1, 2, 3};
  std::string resp = serialize_response(200, "OK", body, true);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 3), std::string("\x01\x02\x03", 3));
}

TEST(SerializerTest, RequestParsesBack) {
  std::vector<uint8_t> body = {'p', 'q'};
  std::string req = serialize_request("POST", "/mod", body, false, "h");
  RequestParser p;
  int used = p.feed(req.data(), req.size());
  ASSERT_EQ(used, static_cast<int>(req.size()));
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().target, "/mod");
  EXPECT_EQ(p.request().body, body);
  EXPECT_FALSE(p.request().keep_alive());
}

}  // namespace
}  // namespace sledge::http
