// Unit tests for the common substrate: Result/Status, JSON, histogram, RNG,
// file utilities.
#include <gtest/gtest.h>

#include "common/file_util.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace sledge {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  Status err = Status::error("boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  Result<int> e = Result<int>::error("nope");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error_message(), "nope");
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.take();
  EXPECT_EQ(s, "payload");
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->is_null());
  EXPECT_EQ(json::parse("true")->as_bool(), true);
  EXPECT_EQ(json::parse("42")->as_int(), 42);
  EXPECT_DOUBLE_EQ(json::parse("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(json::parse("\"hi\\nthere\"")->as_string(), "hi\nthere");
}

TEST(JsonTest, ParsesNested) {
  auto doc = json::parse(R"({"modules":[{"name":"ping","port":8080}],"n":3})");
  ASSERT_TRUE(doc.ok());
  const json::Value& v = *doc;
  EXPECT_EQ(v["n"].as_int(), 3);
  ASSERT_EQ(v["modules"].as_array().size(), 1u);
  EXPECT_EQ(v["modules"].as_array()[0]["name"].as_string(), "ping");
  EXPECT_EQ(v["modules"].as_array()[0]["port"].as_int(), 8080);
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("{\"a\":}").ok());
  EXPECT_FALSE(json::parse("42 43").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json::parse(deep).ok());
}

TEST(JsonTest, DumpRoundTrips) {
  auto doc = json::parse(R"({"a":[1,2.5,"x"],"b":{"c":true}})");
  ASSERT_TRUE(doc.ok());
  auto again = json::parse(doc->dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(HistogramTest, PercentilesExact) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 100; ++i) h.record(i * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean_ns(), 50500.0, 1.0);
  EXPECT_EQ(h.percentile_ns(0.0), 1000u);
  EXPECT_EQ(h.percentile_ns(1.0), 100000u);
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(0.5)), 50000.0, 1000.0);
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(0.99)), 99000.0, 1000.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  LatencyHistogram a, b;
  a.record(10);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_ns(), 20.0);
}

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(0.99), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

TEST(HistogramTest, EmptyEveryAccessorIsZero) {
  LatencyHistogram h;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile_ns(q), 0u) << "q=" << q;
  }
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99_ms(), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryStatistic) {
  LatencyHistogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile_ns(q), 12345u) << "q=" << q;
  }
  EXPECT_EQ(h.min_ns(), 12345u);
  EXPECT_EQ(h.max_ns(), 12345u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 12345.0);
}

TEST(HistogramTest, MergeDisjointSetsPreservesOrderStatistics) {
  LatencyHistogram lo, hi;
  for (uint64_t i = 1; i <= 50; ++i) lo.record(i);           // 1..50
  for (uint64_t i = 1001; i <= 1050; ++i) hi.record(i);      // 1001..1050
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 100u);
  EXPECT_EQ(lo.percentile_ns(0.0), 1u);
  EXPECT_EQ(lo.percentile_ns(1.0), 1050u);
  // The median straddles the gap between the two disjoint ranges.
  uint64_t med = lo.percentile_ns(0.5);
  EXPECT_TRUE(med == 50u || med == 1001u) << med;
  EXPECT_DOUBLE_EQ(lo.mean_ns(), (25.5 * 50 + 1025.5 * 50) / 100.0);
  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  lo.merge(empty);
  EXPECT_EQ(lo.count(), 100u);
}

TEST(HistogramTest, ExtremeQuantilesAreExactOrderStatistics) {
  // Unsorted insertion order: q=0 / q=1 must still be exact min / max.
  LatencyHistogram h;
  for (uint64_t v : {700u, 30u, 999u, 4u, 512u}) h.record(v);
  EXPECT_EQ(h.percentile_ns(0.0), 4u);
  EXPECT_EQ(h.percentile_ns(1.0), 999u);
  EXPECT_EQ(h.percentile_ns(0.0), h.min_ns());
  EXPECT_EQ(h.percentile_ns(1.0), h.max_ns());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(FileUtilTest, WriteReadRoundTrip) {
  auto dir = make_temp_dir("sledge_test");
  ASSERT_TRUE(dir.ok());
  std::string path = *dir + "/file.bin";
  std::string contents = "hello\0world", full(contents.data(), 11);
  ASSERT_TRUE(write_file(path, full).is_ok());
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(file_size(path), 11);
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, full);
  ::unlink(path.c_str());
  ::rmdir(dir->c_str());
}

TEST(FileUtilTest, MissingFileErrors) {
  EXPECT_FALSE(read_file("/nonexistent/really/not/here").ok());
  EXPECT_FALSE(file_exists("/nonexistent/really/not/here"));
  EXPECT_EQ(file_size("/nonexistent/really/not/here"), -1);
}

}  // namespace
}  // namespace sledge
