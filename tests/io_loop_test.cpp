// IoLoop unit tests (sanitizer-safe: no sandbox is ever dispatched, so no
// ucontext switches or SIGALRM preemption — wake conditions are fabricated
// via Sandbox::test_set_blocked). Covers the timer min-heap, fd wakes,
// cross-thread notify, deadline kills of blocked sandboxes, stale-entry
// validation, and EPOLLOUT write-fd parking. Also the MemView zero-length
// hostcall-pointer audit.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "engine/host.hpp"
#include "engine/trap.hpp"
#include "minicc/minicc.hpp"
#include "sledge/io_loop.hpp"
#include "sledge/sandbox.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

class IoLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wasm = minicc::compile_to_wasm(R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)");
    ASSERT_TRUE(wasm.ok()) << wasm.error_message();
    auto mod = engine::WasmModule::load(wasm.value(), {});
    ASSERT_TRUE(mod.ok()) << mod.error_message();
    module_ = std::make_unique<engine::WasmModule>(mod.take());
    ASSERT_TRUE(loop_.init().is_ok());
  }

  // A sandbox that never runs; tests only use its wake-condition fields.
  std::unique_ptr<Sandbox> make_sandbox() {
    std::unique_ptr<Sandbox> sb = Sandbox::create(module_.get(), {});
    EXPECT_NE(sb, nullptr);
    return sb;
  }

  std::unique_ptr<engine::WasmModule> module_;
  IoLoop loop_;
};

TEST_F(IoLoopTest, TimerHeapWakesInDeadlineOrder) {
  uint64_t now = now_ns();
  auto a = make_sandbox();
  auto b = make_sandbox();
  auto c = make_sandbox();
  a->test_set_blocked(WakeKind::kTimer, -1, now + 50'000'000);
  b->test_set_blocked(WakeKind::kTimer, -1, now + 10'000'000);
  c->test_set_blocked(WakeKind::kTimer, -1, now + 2'000'000'000);
  loop_.add_blocked(a.get());
  loop_.add_blocked(b.get());
  loop_.add_blocked(c.get());
  EXPECT_EQ(loop_.blocked_count(), 3u);

  // The nearest timer (b, +10ms) bounds the sleep budget.
  uint64_t budget = loop_.sleep_budget_ns(now, 1'000'000'000);
  EXPECT_LE(budget, 10'000'000u);
  EXPECT_GT(budget, 0u);

  // Collect wakes until both near timers fire (a single poll may deliver
  // one or both depending on scheduling noise); order must be b then a.
  std::vector<Sandbox*> ready;
  bool writes = false;
  uint64_t t0 = now_ns();
  while (ready.size() < 2 && now_ns() - t0 < 2'000'000'000) {
    loop_.poll(20'000'000, &ready, &writes);
  }
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], b.get());  // +10 ms fires before +50 ms
  EXPECT_EQ(ready[1], a.get());
  EXPECT_EQ(b->state(), SandboxState::kRunnable);
  EXPECT_FALSE(b->kill_requested());
  EXPECT_EQ(loop_.blocked_count(), 1u);

  std::vector<Sandbox*> rest;
  loop_.drain_all(&rest);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], c.get());
}

TEST_F(IoLoopTest, FdReadWakeFiresWhenDataArrives) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto sb = make_sandbox();
  sb->test_set_blocked(WakeKind::kFdRead, sv[0], 0);
  loop_.add_blocked(sb.get());

  std::vector<Sandbox*> ready;
  bool writes = false;
  loop_.poll(0, &ready, &writes);
  EXPECT_TRUE(ready.empty());  // no data yet

  char byte = 'x';
  ASSERT_EQ(::write(sv[1], &byte, 1), 1);
  uint64_t t0 = now_ns();
  loop_.poll(1'000'000'000, &ready, &writes);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], sb.get());
  EXPECT_EQ(sb->state(), SandboxState::kRunnable);
  EXPECT_LT(now_ns() - t0, 500'000'000u);  // woke on the event, not timeout
  EXPECT_TRUE(loop_.empty());
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(IoLoopTest, NotifyInterruptsSleepFromAnotherThread) {
  std::thread waker([this] {
    ::usleep(30'000);
    loop_.notify();
  });
  std::vector<Sandbox*> ready;
  bool writes = false;
  uint64_t t0 = now_ns();
  loop_.poll(2'000'000'000, &ready, &writes);
  EXPECT_LT(now_ns() - t0, 1'000'000'000u);
  EXPECT_TRUE(writes);  // a notify flags the worker to re-check everything
  waker.join();
}

TEST_F(IoLoopTest, WallDeadlineKillsSandboxBlockedOnQuietFd) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto sb = make_sandbox();
  sb->set_limits(0, now_ns() + 30'000'000);  // 30 ms wall deadline
  sb->test_set_blocked(WakeKind::kFdRead, sv[0], 0);
  loop_.add_blocked(sb.get());

  std::vector<Sandbox*> ready;
  bool writes = false;
  uint64_t t0 = now_ns();
  while (ready.empty() && now_ns() - t0 < 1'000'000'000) {
    loop_.poll(loop_.sleep_budget_ns(now_ns(), 100'000'000), &ready, &writes);
  }
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], sb.get());
  EXPECT_TRUE(sb->kill_requested());  // woken to die, fd never turned ready
  EXPECT_LT(now_ns() - t0, 500'000'000u);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(IoLoopTest, StaleTimerEntriesAreDiscardedWithoutEffect) {
  uint64_t now = now_ns();
  auto sb = make_sandbox();
  sb->set_limits(0, now + 30'000'000);
  sb->test_set_blocked(WakeKind::kTimer, -1, now + 10'000'000);
  loop_.add_blocked(sb.get());

  std::vector<Sandbox*> ready;
  bool writes = false;
  loop_.poll(20'000'000, &ready, &writes);
  ASSERT_EQ(ready.size(), 1u);  // the 10 ms sleep timer fired first
  EXPECT_FALSE(sb->kill_requested());

  // Re-block a new episode with no deadline: the first episode's 30 ms
  // deadline entry is still in the heap but must be ignored (stale seq).
  sb->set_limits(0, 0);
  sb->test_set_blocked(WakeKind::kTimer, -1, now + 2'000'000'000);
  loop_.add_blocked(sb.get());
  ready.clear();
  loop_.poll(40'000'000, &ready, &writes);  // past the stale deadline
  EXPECT_TRUE(ready.empty());
  EXPECT_FALSE(sb->kill_requested());
  EXPECT_EQ(loop_.blocked_count(), 1u);

  std::vector<Sandbox*> rest;
  loop_.drain_all(&rest);
  EXPECT_EQ(rest.size(), 1u);
}

TEST_F(IoLoopTest, WriteFdParkingSignalsWritableAndUnparks) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  loop_.watch_write_fd(sv[0]);
  std::vector<Sandbox*> ready;
  bool writes = false;
  loop_.poll(100'000'000, &ready, &writes);
  EXPECT_TRUE(writes);  // a fresh socket is writable immediately

  loop_.unwatch_write_fd(sv[0]);
  writes = false;
  loop_.poll(30'000'000, &ready, &writes);
  EXPECT_FALSE(writes);
  ::close(sv[0]);
  ::close(sv[1]);
}

// Satellite audit: zero-length hostcall pointers. A len==0 range is legal
// anywhere in [0, size] (one-past-the-end included) and must not trap; any
// ptr beyond size must trap even with len==0, and ptr+len overflow must not
// wrap into acceptance.
TEST(MemViewTest, ZeroLengthAndOverflowEdges) {
  std::vector<uint8_t> backing(16);
  engine::MemView mem{backing.data(), backing.size()};

  auto traps = [&](uint32_t ptr, uint32_t len) {
    engine::TrapFrame frame;
    volatile bool trapped = true;
    if (sigsetjmp(frame.env, 1) == 0) {
      engine::TrapScope scope(&frame);
      mem.check_range(ptr, len);
      trapped = false;
    }
    return trapped;
  };

  EXPECT_FALSE(traps(0, 0));
  EXPECT_FALSE(traps(0, 16));
  EXPECT_FALSE(traps(16, 0));  // one-past-the-end, empty: legal
  EXPECT_EQ(mem.check_range(16, 0), backing.data() + 16);
  EXPECT_TRUE(traps(17, 0));   // beyond the end, even empty: trap
  EXPECT_TRUE(traps(16, 1));
  EXPECT_TRUE(traps(0, 17));
  // 32-bit wrap: ptr+len overflows uint32 but must still be rejected.
  EXPECT_TRUE(traps(0xFFFFFFFFu, 0xFFFFFFFFu));
  EXPECT_TRUE(traps(8, 0xFFFFFFF8u));
}

}  // namespace
}  // namespace sledge::runtime
