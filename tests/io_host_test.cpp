// Async host-I/O subsystem end-to-end: outbound sockets (sb_connect /
// sb_send / sb_recv / sb_close), cross-function invocation (sb_invoke), the
// per-worker event loop's overlap of blocked and CPU-bound sandboxes, wall
// deadlines firing for blocked sandboxes, per-sandbox fd limits, invoke
// depth limits, blocking semantics under every scheduling policy, and the
// idle-CPU win from sleeping in epoll instead of spinning.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "common/clock.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const std::string& src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

std::vector<uint8_t> compile_app(const std::string& name) {
  auto src = apps::load_app_source(name);
  EXPECT_TRUE(src.ok()) << src.error_message();
  return compile(src.ok() ? src.value() : std::string{});
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

const char* kSleeperSrc = R"(
char out[1];
int main() { sleep_ms(150); out[0] = 122; resp_write(out, 1); return 0; }
)";

void append_i32(std::vector<uint8_t>* out, int32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + 4);
}

int32_t read_i32(const std::vector<uint8_t>& body) {
  int32_t v = 0;
  if (body.size() >= 4) std::memcpy(&v, body.data(), 4);
  return v;
}

// A loopback TCP peer for the fetch/connect workloads: listens on an
// ephemeral port, accepts one connection per call, and lets the test script
// the read/reply/close timing.
class TestPeer {
 public:
  TestPeer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~TestPeer() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }
  int accept_one() { return ::accept(listen_fd_, nullptr, nullptr); }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

std::vector<uint8_t> fetch_request(uint16_t port, const std::string& payload) {
  std::vector<uint8_t> body;
  append_i32(&body, port);
  body.insert(body.end(), payload.begin(), payload.end());
  return body;
}

// Acceptance: a sandbox blocked in sb_recv must not delay a CPU-bound
// sandbox on the same single worker — the core overlap the event loop buys.
TEST(IoHostTest, BlockedRecvOverlapsCpuWorkOnOneWorker) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("fetch", compile_app("fetch")).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  TestPeer peer;
  std::atomic<bool> fetch_done{false};
  std::thread server([&] {
    int fd = peer.accept_one();
    ASSERT_GE(fd, 0);
    char buf[64];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_EQ(n, 5);  // "hello"
    ::usleep(300'000);  // hold the sandbox in sb_recv while pings run
    ASSERT_EQ(::send(fd, buf, n, 0), n);
    ::close(fd);
  });
  int fetch_status = 0;
  std::vector<uint8_t> fetch_body;
  std::thread fetcher([&] {
    auto r = loadgen::single_request("127.0.0.1", rt.bound_port(), "/fetch",
                                     fetch_request(peer.port(), "hello"),
                                     &fetch_status);
    ASSERT_TRUE(r.ok()) << r.error_message();
    fetch_body = *r;
    fetch_done.store(true);
  });

  // While the fetch waits on its peer, the single worker must keep serving.
  int pings_during_fetch = 0;
  for (int i = 0; i < 5; ++i) {
    int status = 0;
    uint64_t t0 = now_ns();
    auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                        {}, &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 200);
    EXPECT_LT(ns_to_ms(now_ns() - t0), 150.0);
    if (!fetch_done.load()) ++pings_during_fetch;
  }
  EXPECT_GT(pings_during_fetch, 0);  // overlap actually happened

  fetcher.join();
  server.join();
  EXPECT_EQ(fetch_status, 200);
  EXPECT_EQ(fetch_body, (std::vector<uint8_t>{'h', 'e', 'l', 'l', 'o'}));

  Runtime::Totals t = rt.totals();
  EXPECT_GE(t.blocked, 1u);
  EXPECT_GE(t.woken, 1u);

  // The io_wait phase is visible on the admin plane.
  int status = 0;
  auto stats = loadgen::http_get("127.0.0.1", rt.bound_port(), "/admin/stats",
                                 &status);
  ASSERT_TRUE(stats.ok()) << stats.error_message();
  EXPECT_EQ(status, 200);
  EXPECT_NE(stats->find("\"io_wait\""), std::string::npos);
  EXPECT_NE(stats->find("\"blocked\""), std::string::npos);
  rt.stop();
}

// Acceptance: an sb_invoke chain A -> B returns B's payload to A's caller;
// it must work even on a single worker (parent parks, child runs, parent
// resumes) and the invoke shows up in the stats totals.
TEST(IoHostTest, InvokeChainReturnsChildPayload) {
  for (int workers : {1, 2}) {
    RuntimeConfig cfg;
    cfg.workers = workers;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("chain", compile_app("chain")).is_ok());
    ASSERT_TRUE(rt.register_module("echo", compile_app("echo")).is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    const std::string payload = "ride the sledge";
    int status = 0;
    auto resp = loadgen::single_request(
        "127.0.0.1", rt.bound_port(), "/chain",
        std::vector<uint8_t>(payload.begin(), payload.end()), &status);
    ASSERT_TRUE(resp.ok()) << resp.error_message();
    EXPECT_EQ(status, 200) << "workers=" << workers;
    EXPECT_EQ(std::string(resp->begin(), resp->end()), payload);

    Runtime::Totals t = rt.totals();
    EXPECT_EQ(t.invokes, 1u);
    EXPECT_GE(t.blocked, 1u);
    EXPECT_NE(rt.stats_json().find("\"invokes\""), std::string::npos);
    rt.stop();
  }
}

// Invoking a module that does not exist fails fast with kSbErrNoModule (-6)
// surfaced to the calling function, which still completes normally.
TEST(IoHostTest, InvokeUnknownModuleReturnsError) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("chain", compile_app("chain")).is_ok());
  // "echo" deliberately not registered.
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/chain",
                                      {'h', 'i'}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(read_i32(*resp), engine::kSbErrNoModule);
  EXPECT_EQ(rt.totals().invokes, 0u);
  rt.stop();
}

// Recursive self-invocation stops at max_invoke_depth with kSbErrDepth (-8)
// instead of exhausting sandboxes.
TEST(IoHostTest, InvokeDepthLimitStopsRecursion) {
  const char* kSelfSrc = R"(
char name[4];
char req[16];
char resp[16];
int main() {
  int len = req_len();
  if (len > 16) len = 16;
  req_read(req, 0, len);
  name[0] = 115;  // 's'
  name[1] = 101;  // 'e'
  name[2] = 108;  // 'l'
  name[3] = 102;  // 'f'
  int n = sb_invoke(name, 4, req, len, resp, 16);
  if (n < 0) {
    resp_i32(n);
    return n;
  }
  resp_write(resp, n);
  return n;
}
)";
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.max_invoke_depth = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("self", compile(kSelfSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/self",
                                      {'x'}, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  // Depth 0 invokes depth 1 invokes depth 2; depth 2's own invoke is denied
  // and the -8 propagates back up as each child's (valid) response payload.
  EXPECT_EQ(read_i32(*resp), engine::kSbErrDepth);
  EXPECT_EQ(rt.totals().invokes, 2u);
  rt.stop();
}

// Acceptance: a sandbox blocked in sb_recv past its wall deadline is
// killed, answered 504, and its outbound fd is actually closed (the peer
// observes EOF); the runtime keeps serving afterwards.
TEST(IoHostTest, WallDeadlineKillsBlockedRecvAndClosesFds) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ModuleLimits limits;
  limits.deadline_ns = 100'000'000;  // 100 ms wall deadline
  ASSERT_TRUE(
      rt.register_module("fetch", compile_app("fetch"), limits).is_ok());
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  TestPeer peer;
  std::atomic<bool> peer_saw_eof{false};
  std::thread server([&] {
    int fd = peer.accept_one();
    ASSERT_GE(fd, 0);
    char buf[64];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_GT(n, 0);
    // Never reply. The sandbox's kill must close its socket: we see EOF.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    n = ::recv(fd, buf, sizeof(buf), 0);
    peer_saw_eof.store(n == 0);
    ::close(fd);
  });

  int status = 0;
  uint64_t t0 = now_ns();
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/fetch",
                                      fetch_request(peer.port(), "hold"),
                                      &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 504);
  EXPECT_LT(ns_to_ms(now_ns() - t0), 1000.0);
  server.join();
  EXPECT_TRUE(peer_saw_eof.load());

  // Pooled resources were reclaimed and the worker is healthy: serve again.
  status = 0;
  auto again = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                       {}, &status);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(status, 200);
  EXPECT_GE(rt.totals().killed, 1u);
  rt.stop();
}

// Per-sandbox fd cap (tenant isolation): the N+1-th concurrently open
// socket is refused with kSbErrFdLimit (-3), not an OS error.
TEST(IoHostTest, PerSandboxFdLimitIsEnforced) {
  const char* kHoarderSrc = R"(
char host[9];
int main() {
  int port = req_i32(0);
  host[0] = 49; host[1] = 50; host[2] = 55; host[3] = 46;
  host[4] = 48; host[5] = 46; host[6] = 48; host[7] = 46;
  host[8] = 49;
  int a = sb_connect(host, 9, port);
  int b = sb_connect(host, 9, port);
  int c = sb_connect(host, 9, port);
  resp_i32(a);
  resp_i32(b);
  resp_i32(c);
  return c;
}
)";
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.max_sandbox_fds = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("hoard", compile(kHoarderSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  TestPeer peer;
  std::thread server([&] {
    // Accept the two allowed connections; they close with the sandbox.
    int a = peer.accept_one();
    int b = peer.accept_one();
    ::close(a);
    ::close(b);
  });
  std::vector<uint8_t> body;
  append_i32(&body, peer.port());
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/hoard",
                                      body, &status);
  server.join();
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  ASSERT_EQ(resp->size(), 12u);
  int32_t fds[3];
  std::memcpy(fds, resp->data(), 12);
  EXPECT_GE(fds[0], 0);
  EXPECT_GE(fds[1], 0);
  EXPECT_EQ(fds[2], engine::kSbErrFdLimit);
  rt.stop();
}

// Satellite: blocking semantics under every per-worker scheduling policy.
// FIFO is run-to-completion on CPU but must still yield the core on I/O;
// EDF reorders runnable peers around blocked ones. In all three, sleepers
// must not starve quick requests sharing their single worker.
TEST(IoHostTest, BlockedSandboxesYieldUnderEveryPolicy) {
  for (SchedPolicy sched : {SchedPolicy::kRoundRobin,
                            SchedPolicy::kFifoRunToCompletion,
                            SchedPolicy::kEdf}) {
    RuntimeConfig cfg;
    cfg.workers = 1;
    cfg.sched = sched;
    if (sched == SchedPolicy::kEdf) cfg.deadline_ns = 2'000'000'000;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("sleeper", compile(kSleeperSrc)).is_ok());
    ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    int sleeper_status = 0;
    std::thread sleeper([&] {
      auto r = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                       "/sleeper", {}, &sleeper_status);
      EXPECT_TRUE(r.ok()) << r.error_message();
    });
    ::usleep(30'000);  // let the sleeper block in its 150 ms sleep
    for (int i = 0; i < 3; ++i) {
      int status = 0;
      uint64_t t0 = now_ns();
      auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                          "/ping", {}, &status);
      ASSERT_TRUE(resp.ok()) << resp.error_message();
      EXPECT_EQ(status, 200) << to_string(sched);
      // Served while the sleeper holds its block — not after it.
      EXPECT_LT(ns_to_ms(now_ns() - t0), 120.0) << to_string(sched);
    }
    sleeper.join();
    EXPECT_EQ(sleeper_status, 200) << to_string(sched);
    rt.stop();
  }
}

// Satellite: idle workers sleep in epoll_wait instead of busy-spinning.
// Two idle workers over ~400 ms of wall time must burn only a sliver of
// CPU; the old spin loop burned most of two cores.
TEST(IoHostTest, IdleWorkersDoNotBurnCpu) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());
  int status = 0;
  ASSERT_TRUE(loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping",
                                      {}, &status)
                  .ok());  // warm up, then go idle

  auto cpu_ns = [] {
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    auto tv_ns = [](const timeval& tv) {
      return static_cast<uint64_t>(tv.tv_sec) * 1'000'000'000 +
             static_cast<uint64_t>(tv.tv_usec) * 1'000;
    };
    return tv_ns(ru.ru_utime) + tv_ns(ru.ru_stime);
  };
  uint64_t cpu0 = cpu_ns();
  ::usleep(400'000);
  uint64_t spent = cpu_ns() - cpu0;
  // Generous bound: 2 spinning workers would burn ~800 ms here; epoll
  // sleeping should cost well under a tenth of that.
  EXPECT_LT(spent, 200'000'000u) << "idle CPU burn: " << spent << " ns";
  rt.stop();
}

// sb_* error paths that need no runtime: connect to a dead port fails with
// kSbErrConnect after the async connect completes; a malformed host is
// rejected before any socket exists.
TEST(IoHostTest, ConnectFailuresSurfaceAsErrors) {
  const char* kBadConnectSrc = R"(
char host[9];
int main() {
  int port = req_i32(0);
  host[0] = 49; host[1] = 50; host[2] = 55; host[3] = 46;
  host[4] = 48; host[5] = 46; host[6] = 48; host[7] = 46;
  host[8] = 49;
  int fd = sb_connect(host, 9, port);
  resp_i32(fd);
  if (fd >= 0) { sb_close(fd); }
  return fd;
}
)";
  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("dial", compile(kBadConnectSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // A port nothing listens on: RST -> kSbErrConnect via the event loop.
  uint16_t dead_port;
  {
    TestPeer p;
    dead_port = p.port();
  }  // destructor closed the listener; the port is now dead
  std::vector<uint8_t> body;
  append_i32(&body, dead_port);
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/dial",
                                      body, &status);
  ASSERT_TRUE(resp.ok()) << resp.error_message();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(read_i32(*resp), engine::kSbErrConnect);
  rt.stop();
}

}  // namespace
}  // namespace sledge::runtime
