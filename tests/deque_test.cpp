// Chase-Lev work-stealing deque tests: single-owner semantics, growth, and
// a multi-thief stress test verifying every pushed item is consumed exactly
// once (the correctness property that matters for request dispatch).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sledge/deque.hpp"

namespace sledge::runtime {
namespace {

TEST(DequeTest, TakeFromEmptyFails) {
  WorkStealingDeque<int*> dq;
  int* out = nullptr;
  EXPECT_FALSE(dq.take(&out));
  EXPECT_FALSE(dq.steal(&out));
}

TEST(DequeTest, OwnerTakeIsLifo) {
  WorkStealingDeque<intptr_t> dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  intptr_t v;
  ASSERT_TRUE(dq.take(&v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(dq.take(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(dq.take(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(dq.take(&v));
}

TEST(DequeTest, StealIsFifo) {
  WorkStealingDeque<intptr_t> dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  intptr_t v;
  ASSERT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(dq.steal(&v));
}

TEST(DequeTest, GrowsBeyondInitialCapacity) {
  WorkStealingDeque<intptr_t> dq(16);
  for (intptr_t i = 0; i < 10000; ++i) dq.push(i);
  EXPECT_EQ(dq.size_estimate(), 10000);
  intptr_t v;
  for (intptr_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(dq.steal(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(DequeTest, InterleavedPushTakeSteal) {
  WorkStealingDeque<intptr_t> dq;
  intptr_t v;
  dq.push(1);
  dq.push(2);
  ASSERT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 1);
  dq.push(3);
  ASSERT_TRUE(dq.take(&v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(dq.take(&v));
  EXPECT_EQ(v, 2);
}

// Stress: one producer pushes N tokens; T thieves steal concurrently; the
// producer also takes. Every token must be consumed exactly once.
TEST(DequeTest, StressEveryItemConsumedExactlyOnce) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  WorkStealingDeque<intptr_t> dq;
  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> done{false};
  std::atomic<long> consumed{0};

  auto thief = [&] {
    intptr_t v;
    while (!done.load(std::memory_order_acquire) || dq.size_estimate() > 0) {
      if (dq.steal(&v)) {
        seen[v].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) thieves.emplace_back(thief);

  intptr_t v;
  for (intptr_t i = 0; i < kItems; ++i) {
    dq.push(i);
    if (i % 3 == 0 && dq.take(&v)) {
      seen[v].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Drain what's left from the owner side too.
  while (dq.take(&v)) {
    seen[v].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Final sweep in case thieves exited between push and visibility.
  while (dq.steal(&v)) {
    seen[v].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }

  EXPECT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// Steal-heavy stress: the owner pushes >= 1M items (taking only rarely, so
// nearly everything funnels through steal) against N concurrent thieves.
// Exactly-once consumption must hold across buffer growth and CAS races —
// the property request dispatch depends on under heavy multi-worker load.
TEST(DequeTest, StealHeavyMillionOpsNoLossNoDuplication) {
  constexpr intptr_t kItems = 1'000'000;
  constexpr int kThieves = 4;
  WorkStealingDeque<intptr_t> dq(32);  // small initial ring: force growth
  std::vector<std::atomic<uint8_t>> seen(kItems);
  std::atomic<bool> done{false};
  std::atomic<int64_t> consumed{0};

  auto consume = [&](intptr_t v) {
    seen[v].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      intptr_t v;
      while (!done.load(std::memory_order_acquire) ||
             dq.size_estimate() > 0) {
        if (dq.steal(&v)) consume(v);
      }
    });
  }

  intptr_t v;
  for (intptr_t i = 0; i < kItems; ++i) {
    dq.push(i);
    // Rare owner pops keep the take/steal race on the last element hot
    // without draining the deque away from the thieves.
    if ((i & 1023) == 0 && dq.take(&v)) consume(v);
  }
  while (dq.take(&v)) consume(v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (dq.steal(&v)) consume(v);

  ASSERT_EQ(consumed.load(), kItems);
  for (intptr_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace sledge::runtime
