// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "sledge/sandbox.hpp"

namespace sledge::testutil {

// ---- Deterministic concurrency/fault fixtures (deadline & overload tests) --

// A runaway request: loops forever, with a linear-memory store each
// iteration so no tier can optimize the loop away. state[1] is never
// written, so the condition never becomes false. Only deadline enforcement
// (or process death) ends it.
inline const char* kInfiniteLoopSrc = R"(
int state[2];
int main() {
  while (state[1] == 0) { state[0] = state[0] + 1; }
  return state[0];
}
)";

// A configurable CPU burner: ~`iters` loop iterations of linear-memory
// arithmetic, then a 1-byte response ('s'). Calibrate per test; 1e7 iters
// is tens of milliseconds on any recent CPU under the AoT tier.
inline std::string spin_src(long long iters) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
int acc[2];
char out[1];
int main() {
  int i = 0;
  while (i < %lld) { acc[0] = acc[0] + i; i = i + 1; }
  out[0] = 115;
  resp_write(out, 1);
  return acc[0];
}
)",
                iters);
  return std::string(buf);
}

// One step of a deterministic arrival script: wait `gap_us`, then issue a
// request against module index `module`. Scripts are generated from a seed
// so dispatcher/admission tests replay the exact same interleaved workload
// on every run (and across dispatcher×scheduler parameterizations).
struct Arrival {
  int module = 0;
  uint64_t gap_us = 0;
};

inline std::vector<Arrival> arrival_script(uint64_t seed, size_t count,
                                           int modules,
                                           uint64_t max_gap_us) {
  Rng rng(seed);
  std::vector<Arrival> script;
  script.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Arrival a;
    a.module = static_cast<int>(rng.below(static_cast<uint32_t>(
        modules < 1 ? 1 : modules)));
    a.gap_us = rng.below(static_cast<uint32_t>(max_gap_us + 1));
    script.push_back(a);
  }
  return script;
}

// Scoped fault injection into the sandbox allocation path: while alive,
// every Nth (default: every) Sandbox::create fails as if resources were
// exhausted, driving the listener's 503 path deterministically.
class ScopedSandboxAllocFault {
 public:
  ScopedSandboxAllocFault() {
    runtime::Sandbox::set_create_fault_hook(&always_fail);
  }
  ~ScopedSandboxAllocFault() {
    runtime::Sandbox::set_create_fault_hook(nullptr);
  }
  ScopedSandboxAllocFault(const ScopedSandboxAllocFault&) = delete;
  ScopedSandboxAllocFault& operator=(const ScopedSandboxAllocFault&) = delete;

 private:
  static bool always_fail() { return true; }
};

// Loads + instantiates + invokes in one step; fails the current test on
// load/instantiation errors (invoke outcomes are returned for inspection).
inline engine::InvokeOutcome run_module(
    const std::vector<uint8_t>& wasm_bytes,
    const engine::WasmModule::Config& config, const std::string& export_name,
    const std::vector<engine::Value>& args,
    engine::ServerlessEnv* env = nullptr) {
  auto mod = engine::WasmModule::load(wasm_bytes, config);
  if (!mod.ok()) {
    return engine::InvokeOutcome::failed("load: " + mod.error_message());
  }
  auto sandbox = mod->instantiate();
  if (!sandbox.ok()) {
    return engine::InvokeOutcome::failed("instantiate: " +
                                         sandbox.error_message());
  }
  return sandbox->call(export_name, args, env);
}

inline std::string param_name(
    const ::testing::TestParamInfo<
        std::tuple<engine::Tier, engine::BoundsStrategy>>& info) {
  return std::string(engine::to_string(std::get<0>(info.param))) + "_" +
         engine::to_string(std::get<1>(info.param));
}

}  // namespace sledge::testutil
