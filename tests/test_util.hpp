// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace sledge::testutil {

// Loads + instantiates + invokes in one step; fails the current test on
// load/instantiation errors (invoke outcomes are returned for inspection).
inline engine::InvokeOutcome run_module(
    const std::vector<uint8_t>& wasm_bytes,
    const engine::WasmModule::Config& config, const std::string& export_name,
    const std::vector<engine::Value>& args,
    engine::ServerlessEnv* env = nullptr) {
  auto mod = engine::WasmModule::load(wasm_bytes, config);
  if (!mod.ok()) {
    return engine::InvokeOutcome::failed("load: " + mod.error_message());
  }
  auto sandbox = mod->instantiate();
  if (!sandbox.ok()) {
    return engine::InvokeOutcome::failed("instantiate: " +
                                         sandbox.error_message());
  }
  return sandbox->call(export_name, args, env);
}

inline std::string param_name(
    const ::testing::TestParamInfo<
        std::tuple<engine::Tier, engine::BoundsStrategy>>& info) {
  return std::string(engine::to_string(std::get<0>(info.param))) + "_" +
         engine::to_string(std::get<1>(info.param));
}

}  // namespace sledge::testutil
