// Differential property testing: randomly generated (but always valid) Wasm
// programs must produce bit-identical outcomes — value or trap code — on
// every execution tier and bounds strategy. This is the strongest evidence
// that the interpreter tiers and the aWsm AoT translator implement one
// semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace sledge::engine {
namespace {

using sledge::Rng;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using V = wasm::ValType;

// Generates a random well-typed expression of type `t` into `f`. Loads are
// masked into the first page so only genuine semantics (not layout) vary.
class ExprGen {
 public:
  ExprGen(Rng& rng, FunctionBuilder& f, const std::vector<V>& locals)
      : rng_(rng), f_(f), locals_(locals) {}

  void gen(V t, int depth) {
    if (depth <= 0) {
      leaf(t);
      return;
    }
    switch (rng_.below(8)) {
      case 0:
        leaf(t);
        return;
      case 1:  // unary
        gen_unop(t, depth);
        return;
      case 2:
      case 3:
      case 4:  // binary
        gen_binop(t, depth);
        return;
      case 5:  // select
        gen(t, depth - 1);
        gen(t, depth - 1);
        gen(V::kI32, depth - 1);
        f_.emit(Op::kSelect);
        return;
      case 6:  // if/else with result
        gen(V::kI32, depth - 1);
        f_.if_(t);
        gen(t, depth - 1);
        f_.else_();
        gen(t, depth - 1);
        f_.end();
        return;
      case 7:  // load from the first page
        gen(V::kI32, depth - 1);
        f_.i32_const(0xFF8);
        f_.emit(Op::kI32And);  // mask well inside page 0
        switch (t) {
          case V::kI32: f_.mem(Op::kI32Load); break;
          case V::kI64: f_.mem(Op::kI64Load); break;
          case V::kF32: f_.mem(Op::kF32Load); break;
          case V::kF64: f_.mem(Op::kF64Load); break;
        }
        return;
    }
  }

 private:
  void leaf(V t) {
    // Prefer locals when one of the right type exists.
    std::vector<uint32_t> candidates;
    for (uint32_t i = 0; i < locals_.size(); ++i) {
      if (locals_[i] == t) candidates.push_back(i);
    }
    if (!candidates.empty() && rng_.chance(0.6)) {
      f_.local_get(candidates[rng_.below(
          static_cast<uint32_t>(candidates.size()))]);
      return;
    }
    switch (t) {
      case V::kI32: f_.i32_const(static_cast<int32_t>(rng_.next_u32())); break;
      case V::kI64: f_.i64_const(static_cast<int64_t>(rng_.next_u64())); break;
      case V::kF32:
        f_.f32_const(static_cast<float>(rng_.next_double() * 200.0 - 100.0));
        break;
      case V::kF64:
        f_.f64_const(rng_.next_double() * 200.0 - 100.0);
        break;
    }
  }

  void gen_unop(V t, int depth) {
    if (t == V::kI32) {
      switch (rng_.below(6)) {
        case 0: gen(V::kI32, depth - 1); f_.emit(Op::kI32Clz); return;
        case 1: gen(V::kI32, depth - 1); f_.emit(Op::kI32Ctz); return;
        case 2: gen(V::kI32, depth - 1); f_.emit(Op::kI32Popcnt); return;
        case 3: gen(V::kI64, depth - 1); f_.emit(Op::kI32WrapI64); return;
        case 4: gen(V::kI32, depth - 1); f_.emit(Op::kI32Extend8S); return;
        case 5: gen(V::kI64, depth - 1); f_.emit(Op::kI64Eqz); return;
      }
    }
    if (t == V::kI64) {
      switch (rng_.below(3)) {
        case 0: gen(V::kI64, depth - 1); f_.emit(Op::kI64Popcnt); return;
        case 1: gen(V::kI32, depth - 1); f_.emit(Op::kI64ExtendI32S); return;
        case 2: gen(V::kI32, depth - 1); f_.emit(Op::kI64ExtendI32U); return;
      }
    }
    if (t == V::kF32) {
      switch (rng_.below(4)) {
        case 0: gen(V::kF32, depth - 1); f_.emit(Op::kF32Abs); return;
        case 1: gen(V::kF32, depth - 1); f_.emit(Op::kF32Neg); return;
        case 2: gen(V::kF64, depth - 1); f_.emit(Op::kF32DemoteF64); return;
        case 3: gen(V::kF32, depth - 1); f_.emit(Op::kF32Floor); return;
      }
    }
    // f64
    switch (rng_.below(5)) {
      case 0: gen(V::kF64, depth - 1); f_.emit(Op::kF64Abs); return;
      case 1: gen(V::kF64, depth - 1); f_.emit(Op::kF64Neg); return;
      case 2: gen(V::kF32, depth - 1); f_.emit(Op::kF64PromoteF32); return;
      case 3: gen(V::kI32, depth - 1); f_.emit(Op::kF64ConvertI32S); return;
      case 4: gen(V::kF64, depth - 1); f_.emit(Op::kF64Sqrt); return;
    }
  }

  void gen_binop(V t, int depth) {
    if (t == V::kI32) {
      static const Op kOps[] = {Op::kI32Add, Op::kI32Sub, Op::kI32Mul,
                                Op::kI32And, Op::kI32Or, Op::kI32Xor,
                                Op::kI32Shl, Op::kI32ShrS, Op::kI32ShrU,
                                Op::kI32Rotl, Op::kI32Rotr, Op::kI32DivS,
                                Op::kI32DivU, Op::kI32RemS, Op::kI32RemU,
                                Op::kI32Eq, Op::kI32LtS, Op::kI32GtU};
      Op op = kOps[rng_.below(18)];
      gen(V::kI32, depth - 1);
      gen(V::kI32, depth - 1);
      f_.emit(op);
      return;
    }
    if (t == V::kI64) {
      static const Op kOps[] = {Op::kI64Add, Op::kI64Sub, Op::kI64Mul,
                                Op::kI64And, Op::kI64Xor, Op::kI64Shl,
                                Op::kI64ShrU, Op::kI64Rotl, Op::kI64DivS,
                                Op::kI64RemU};
      gen(V::kI64, depth - 1);
      gen(V::kI64, depth - 1);
      f_.emit(kOps[rng_.below(10)]);
      return;
    }
    if (t == V::kF32) {
      static const Op kOps[] = {Op::kF32Add, Op::kF32Sub, Op::kF32Mul,
                                Op::kF32Div, Op::kF32Min, Op::kF32Max,
                                Op::kF32Copysign};
      gen(V::kF32, depth - 1);
      gen(V::kF32, depth - 1);
      f_.emit(kOps[rng_.below(7)]);
      return;
    }
    static const Op kOps[] = {Op::kF64Add, Op::kF64Sub, Op::kF64Mul,
                              Op::kF64Div, Op::kF64Min, Op::kF64Max,
                              Op::kF64Copysign};
    gen(V::kF64, depth - 1);
    gen(V::kF64, depth - 1);
    f_.emit(kOps[rng_.below(7)]);
  }

  Rng& rng_;
  FunctionBuilder& f_;
  const std::vector<V>& locals_;
};

// Builds a random module: locals of all types get random statements
// assigned, a bounded loop mixes state, and an i32 digest of every local is
// returned.
std::vector<uint8_t> random_module(uint64_t seed) {
  Rng rng(seed);
  ModuleBuilder b;
  uint32_t t_main = b.add_type({V::kI32, V::kI64, V::kF64}, {V::kI32});
  b.set_memory(1, 2);
  // Deterministic data so loads differ from zero.
  std::vector<uint8_t> data(4096);
  Rng drng(seed ^ 0x5EED);
  for (auto& byte : data) byte = static_cast<uint8_t>(drng.next_u32());
  b.add_data(0, std::move(data));

  uint32_t f = b.declare_function(t_main);
  FunctionBuilder& fb = b.function(f);

  std::vector<V> locals = {V::kI32, V::kI64, V::kF64};  // params
  int extra = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < extra; ++i) {
    V t = static_cast<V>(0x7F - rng.below(4));
    fb.add_local(t);
    locals.push_back(t);
  }

  ExprGen gen(rng, fb, locals);

  int statements = 3 + static_cast<int>(rng.below(6));
  for (int s = 0; s < statements; ++s) {
    uint32_t target = rng.below(static_cast<uint32_t>(locals.size()));
    gen.gen(locals[target], 3);
    fb.local_set(target);
    if (rng.chance(0.3)) {
      // Store an i32 expression into page 0.
      gen.gen(V::kI32, 2);     // value
      uint32_t tmp = fb.add_local(V::kI32);
      locals.push_back(V::kI32);
      fb.local_set(tmp);
      gen.gen(V::kI32, 1);     // address
      fb.i32_const(0xFF8);
      fb.emit(Op::kI32And);
      fb.local_get(tmp);
      fb.mem(Op::kI32Store);
    }
  }

  // Digest: xor/mix every local into an i32.
  uint32_t acc = fb.add_local(V::kI32);
  locals.push_back(V::kI32);
  for (uint32_t i = 0; i + 1 < locals.size(); ++i) {
    fb.local_get(acc);
    switch (locals[i]) {
      case V::kI32:
        fb.local_get(i);
        break;
      case V::kI64:
        fb.local_get(i);
        fb.emit(Op::kI32WrapI64);
        break;
      case V::kF32:
        fb.local_get(i);
        fb.emit(Op::kI32ReinterpretF32);
        break;
      case V::kF64:
        fb.local_get(i);
        fb.emit(Op::kI64ReinterpretF64);
        fb.emit(Op::kI32WrapI64);
        break;
    }
    fb.emit(Op::kI32Xor);
    fb.i32_const(0x9E3779B9);
    fb.emit(Op::kI32Add);
    fb.local_set(acc);
  }
  fb.local_get(acc);
  fb.end();
  b.export_function("main", f);
  return b.build();
}

struct Outcome {
  TrapCode trap = TrapCode::kNone;
  int32_t value = 0;
  std::string error;

  bool operator==(const Outcome& o) const {
    return trap == o.trap && value == o.value && error == o.error;
  }
};

Outcome run_one(const std::vector<uint8_t>& bytes, Tier tier,
                BoundsStrategy strategy) {
  WasmModule::Config cfg;
  cfg.tier = tier;
  cfg.strategy = strategy;
  Outcome o;
  auto mod = WasmModule::load(bytes, cfg);
  if (!mod.ok()) {
    o.error = "load: " + mod.error_message();
    return o;
  }
  auto sandbox = mod->instantiate();
  if (!sandbox.ok()) {
    o.error = "inst: " + sandbox.error_message();
    return o;
  }
  auto out = sandbox->call(
      "main", {Value::i32(12345), Value::i64(-987654321), Value::f64(2.5)});
  o.trap = out.trap;
  o.error = out.error;
  if (out.ok() && out.value) o.value = out.value->as_i32();
  return o;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllTiersAgree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919 + 13;
  std::vector<uint8_t> bytes = random_module(seed);

  // Sanity: the generator must always produce valid modules.
  auto decoded = wasm::decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error_message();
  ASSERT_TRUE(wasm::validate(*decoded).is_ok())
      << wasm::validate(*decoded).message();

  Outcome reference = run_one(bytes, Tier::kInterp, BoundsStrategy::kSoftware);
  ASSERT_TRUE(reference.error.empty()) << reference.error;

  const struct {
    Tier tier;
    BoundsStrategy strategy;
  } kConfigs[] = {
      {Tier::kInterp, BoundsStrategy::kVmGuard},
      {Tier::kInterpFast, BoundsStrategy::kSoftware},
      {Tier::kInterpFast, BoundsStrategy::kMpxSim},
      {Tier::kAot, BoundsStrategy::kSoftware},
      {Tier::kAot, BoundsStrategy::kVmGuard},
      {Tier::kAot, BoundsStrategy::kMpxSim},
      {Tier::kAot, BoundsStrategy::kNone},
      {Tier::kAotO0, BoundsStrategy::kSoftware},
  };
  for (const auto& cfg : kConfigs) {
    Outcome other = run_one(bytes, cfg.tier, cfg.strategy);
    EXPECT_EQ(reference, other)
        << "seed=" << seed << " tier=" << to_string(cfg.tier)
        << " strategy=" << to_string(cfg.strategy) << " ref=("
        << trap_name(reference.trap) << "," << reference.value << ","
        << reference.error << ") got=(" << trap_name(other.trap) << ","
        << other.value << "," << other.error << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace sledge::engine
