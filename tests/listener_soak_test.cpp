// Sanitizer-safe multi-shard listener soak: exercises every listener
// control path (404, alloc-fault 503, chunked 501, malformed
// Content-Length 400, /admin scrapes) across two SO_REUSEPORT shards with
// interleaved keep-alive connections — without ever *executing* a sandbox,
// so no ucontext switches or SIGALRM preemption run under tsan/asan. This
// is the suite the `tsan-listener` preset races: shard epoll loops, batched
// admission, the writev control path, and the cross-thread stats plane.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"
#include "test_util.hpp"

namespace sledge::runtime {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto wasm = minicc::compile_to_wasm(src);
  EXPECT_TRUE(wasm.ok()) << wasm.error_message();
  return wasm.ok() ? wasm.value() : std::vector<uint8_t>{};
}

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool recv_response(int fd, int* status, std::string* body,
                   std::string* carry) {
  std::string& buf = *carry;
  char chunk[4096];
  for (;;) {
    size_t header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      if (::sscanf(buf.c_str(), "HTTP/1.1 %d", status) != 1) return false;
      size_t cl = buf.find("Content-Length:");
      if (cl == std::string::npos || cl > header_end) return false;
      size_t content_len = std::strtoul(buf.c_str() + cl + 15, nullptr, 10);
      size_t body_start = header_end + 4;
      if (buf.size() >= body_start + content_len) {
        *body = buf.substr(body_start, content_len);
        buf.erase(0, body_start + content_len);
        return true;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST(ListenerSoakTest, TwoShardControlPathSoak) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.num_listeners = 2;
  Runtime rt(cfg);
  ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
  ASSERT_TRUE(rt.start().is_ok());

  // Every admitted /ping fails sandbox allocation for the whole soak: the
  // listener answers 503 inline and no sandbox ever runs (sanitizer-safe).
  testutil::ScopedSandboxAllocFault fault;

  constexpr int kRounds = 100;
  uint64_t n404 = 0, n503 = 0, n501 = 0, n400 = 0;
  for (int r = 0; r < kRounds; ++r) {
    // One keep-alive connection per round, four requests pipelined through
    // the shard the kernel picked: 404, 503, chunked 501, then a closing
    // 404. A parse desync or wrong-shard return breaks the sequence.
    int fd = raw_connect(rt.bound_port());
    const std::string burst =
        "POST /ghost HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        "POST /ping HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        "3\r\nabc\r\n0\r\n\r\n"
        "GET /ghost HTTP/1.1\r\nConnection: close\r\n\r\n";
    ASSERT_TRUE(send_all(fd, burst));
    int status = 0;
    std::string body, carry;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 404);
    n404 += status == 404;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 503);
    n503 += status == 503;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 501);
    n501 += status == 501;
    ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
    EXPECT_EQ(status, 404);
    n404 += status == 404;
    ::close(fd);

    // Every 10th round, a malformed Content-Length on its own connection
    // (400 closes the stream, so it can't share the pipelined one).
    if (r % 10 == 0) {
      int bad = raw_connect(rt.bound_port());
      ASSERT_TRUE(
          send_all(bad, "POST /ping HTTP/1.1\r\nContent-Length: 5x\r\n\r\n"));
      ASSERT_TRUE(recv_response(bad, &status, &body, &carry));
      EXPECT_EQ(status, 400);
      n400 += status == 400;
      ::close(bad);
    }
  }
  EXPECT_EQ(n404, 2u * kRounds);
  EXPECT_EQ(n503, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(n501, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(n400, static_cast<uint64_t>(kRounds / 10));

  // The runtime's books agree: every 503 was a shed, nothing completed or
  // failed (no sandbox ever executed), and the shard counters aggregate to
  // the totals under concurrent scraping.
  Runtime::Totals t = rt.totals();
  EXPECT_EQ(t.shed, n503);
  EXPECT_EQ(t.completed, 0u);
  EXPECT_EQ(t.failed, 0u);
  EXPECT_EQ(t.accepted, static_cast<uint64_t>(kRounds) + n400);
  EXPECT_EQ(rt.inflight(), 0);

  auto body = loadgen::http_get("127.0.0.1", rt.bound_port(), "/admin/stats");
  ASSERT_TRUE(body.ok()) << body.error_message();
  auto doc = json::parse(*body);
  ASSERT_TRUE(doc.ok()) << doc.error_message();
  const json::Array& shards = (*doc)["listeners"].as_array();
  ASSERT_EQ(shards.size(), 2u);
  int64_t accepted = 0;
  for (const json::Value& shard : shards) {
    accepted += shard["accepted"].as_int(0);
    EXPECT_EQ(shard["loaned_conns"].as_int(-1), 0);
  }
  EXPECT_EQ(accepted, static_cast<int64_t>(kRounds + n400) + 1);

  rt.stop();
}

// Teardown regression (the PR-7 ~1/15 heap abort hunt): repeated full
// runtime start/stop cycles with connections still open — some idle, some
// holding half-written requests, some with a full pipelined burst in
// flight — at the moment stop() runs. The original abort did not reproduce
// in 80 instrumented 9.8k-connection soaks, but static inspection found
// three shutdown-ordering bugs (stale fd-recycle discards, sandboxes
// stranded by the listener's final admission flush, and undrained
// return/discard queues at listener destruction); this cycle drives those
// paths every iteration, and heap checkers turn any double-close or leak
// into a hard fail.
TEST(ListenerSoakTest, ShutdownWithConnectionsInEveryState) {
  testutil::ScopedSandboxAllocFault fault;  // no sandbox ever executes
  for (int cycle = 0; cycle < 10; ++cycle) {
    RuntimeConfig cfg;
    cfg.workers = 2;
    cfg.num_listeners = 2;
    Runtime rt(cfg);
    ASSERT_TRUE(rt.register_module("ping", compile(kPingSrc)).is_ok());
    ASSERT_TRUE(rt.start().is_ok());

    std::vector<int> fds;
    for (int i = 0; i < 30; ++i) {
      int fd = raw_connect(rt.bound_port());
      switch (i % 3) {
        case 0:  // full admitted request, response read back
          ASSERT_TRUE(send_all(
              fd, "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
          {
            int status = 0;
            std::string body, carry;
            ASSERT_TRUE(recv_response(fd, &status, &body, &carry));
            EXPECT_EQ(status, 503);  // alloc fault: shed inline
          }
          break;
        case 1:  // half-written request parked in the shard's parser
          ASSERT_TRUE(send_all(fd, "POST /ping HTTP/1.1\r\nContent-Le"));
          break;
        case 2:  // idle keep-alive connection
          break;
      }
      fds.push_back(fd);
    }
    // Stop with every connection still open; the shards and their queues
    // are destroyed underneath them.
    rt.stop();
    for (int fd : fds) ::close(fd);
    EXPECT_EQ(rt.inflight(), 0);
  }
}

}  // namespace
}  // namespace sledge::runtime
