// Edge image service: the paper's motivating deployment — a multi-tenant
// Sledge node running three image functions (resize, license-plate
// detection, CIFAR-10 classification) behind HTTP, exercised by concurrent
// clients.
//
//   $ ./examples/edge_image_service
//
// Starts a Sledge runtime on a loopback port, registers the three modules
// (AoT-compiled at registration — never on the request path), drives a
// short mixed workload and prints the per-module latency report.
#include <cstdio>
#include <thread>

#include "apps/workloads.hpp"
#include "loadgen/loadgen.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;

int main() {
  runtime::RuntimeConfig config;
  config.workers = 3;
  config.quantum_us = 5000;  // the paper's 5 ms time slice
  runtime::Runtime rt(config);

  for (const char* app : {"resize", "lpd", "cifar10"}) {
    auto wasm = apps::app_wasm(app);
    if (!wasm.ok()) {
      std::fprintf(stderr, "%s: %s\n", app, wasm.error_message().c_str());
      return 1;
    }
    Status s = rt.register_module(app, wasm.value());
    if (!s.is_ok()) {
      std::fprintf(stderr, "register %s: %s\n", app, s.message().c_str());
      return 1;
    }
    std::printf("registered /%s (%zu bytes of Wasm, AoT-compiled)\n", app,
                wasm->size());
  }

  if (!rt.start().is_ok()) {
    std::fprintf(stderr, "failed to start runtime\n");
    return 1;
  }
  std::printf("sledge listening on 127.0.0.1:%u with %d worker cores\n\n",
              rt.bound_port(), config.workers);

  // Three tenants hammer their functions concurrently.
  auto drive = [&](const char* app, int concurrency, uint64_t requests) {
    loadgen::Options opt;
    opt.port = rt.bound_port();
    opt.path = std::string("/") + app;
    opt.body = apps::app_request(app);
    opt.concurrency = concurrency;
    opt.total_requests = requests;
    auto report = loadgen::run_load(opt);
    if (report.ok()) {
      std::printf("  %-8s %5llu ok, %6.1f req/s, avg %.2f ms, p99 %.2f ms\n",
                  app, static_cast<unsigned long long>(report->ok),
                  report->throughput_rps, report->mean_ms(), report->p99_ms());
    }
  };

  std::printf("tenant load (concurrent):\n");
  std::thread t1([&] { drive("resize", 4, 40); });
  std::thread t2([&] { drive("lpd", 4, 40); });
  std::thread t3([&] { drive("cifar10", 4, 40); });
  t1.join();
  t2.join();
  t3.join();

  std::printf("\nruntime report:\n%s", rt.stats_report().c_str());
  rt.stop();
  return 0;
}
