// Quickstart: compile a serverless function from (mini-)C source, load it
// through the aWsm AoT pipeline, and run it in a sandbox — the minimal
// end-to-end tour of the library's public API.
//
//   $ ./examples/quickstart
//
// Steps shown:
//   1. minicc::compile_to_wasm  — C-subset source -> Wasm binary
//   2. WasmModule::load         — decode + validate + AoT compile + dlopen
//      (the once-per-module "heavyweight" path)
//   3. WasmModule::instantiate  — a fresh sandbox (linear memory + state)
//   4. WasmSandbox::run_serverless — request in, response out
//   5. What a trap looks like   — sandboxed faults are contained errors
#include <cstdio>
#include <string>

#include "engine/engine.hpp"
#include "minicc/minicc.hpp"

using namespace sledge;

// A little serverless function: parses an integer request, computes a
// checksum over it, responds with text.
const char* kFunctionSource = R"(
char buf[256];
char out[64];

char tmp[16];

int digits(int v) {
  int n = 0;
  if (v == 0) { out[n] = 48; return 1; }
  int t = 0;
  while (v > 0) { tmp[t] = 48 + v % 10; v /= 10; t++; }
  while (t > 0) { t--; out[n] = tmp[t]; n++; }
  return n;
}

int main() {
  int len = req_len();
  req_read(buf, 0, len);
  int sum = 0;
  for (int i = 0; i < len; i++) sum += buf[i];
  int n = digits(sum);
  resp_write(out, n);
  return sum;
}
)";

const char* kTrappingSource = R"(
int bigaccess[16];
int main() {
  // Deliberate out-of-bounds: index far outside the array (and outside the
  // whole linear memory). The sandbox converts this into a trap.
  int wild = 100000000;
  return bigaccess[wild];
}
)";

int main() {
  // 1. Compile C-subset source to a genuine WebAssembly binary.
  auto wasm = minicc::compile_to_wasm(kFunctionSource);
  if (!wasm.ok()) {
    std::fprintf(stderr, "compile: %s\n", wasm.error_message().c_str());
    return 1;
  }
  std::printf("compiled function to %zu bytes of Wasm\n", wasm->size());

  // 2. Heavyweight load: decode, validate, AoT-translate to native code via
  //    the system C compiler, dlopen. Done once per module.
  engine::WasmModule::Config config;  // default: AoT + vm_guard sandboxing
  auto module = engine::WasmModule::load(*wasm, config);
  if (!module.ok()) {
    std::fprintf(stderr, "load: %s\n", module.error_message().c_str());
    return 1;
  }
  std::printf("loaded module in %.2f ms (native object: %lld bytes)\n",
              module->load_ns() / 1e6,
              static_cast<long long>(module->native_object_size()));

  // 3+4. Cheap per-request path: instantiate a sandbox, run the function.
  auto sandbox = module->instantiate();
  if (!sandbox.ok()) {
    std::fprintf(stderr, "instantiate: %s\n", sandbox.error_message().c_str());
    return 1;
  }
  std::vector<uint8_t> request = {'h', 'e', 'l', 'l', 'o'};
  std::vector<uint8_t> response;
  auto outcome = sandbox->run_serverless(request, &response);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run: %s\n", outcome.describe().c_str());
    return 1;
  }
  std::printf("request \"hello\" -> response \"%s\" (byte sum)\n",
              std::string(response.begin(), response.end()).c_str());

  // 5. Traps are contained: an out-of-bounds access in another module
  //    surfaces as an error here, not a crash.
  auto bad_wasm = minicc::compile_to_wasm(kTrappingSource);
  auto bad_module = engine::WasmModule::load(*bad_wasm, config);
  auto bad_sandbox = bad_module->instantiate();
  auto bad_outcome = bad_sandbox->run_serverless({}, nullptr);
  std::printf("sandboxed wild access -> %s (process unharmed)\n",
              bad_outcome.describe().c_str());

  return 0;
}
