// Multi-tenant isolation demo: the paper's two core guarantees on one node.
//
//   Spatial isolation  — a hostile tenant's out-of-bounds accesses trap
//                        inside its Wasm sandbox; other tenants and the
//                        runtime are untouched (no process crash).
//   Temporal isolation — a tenant that spins forever is preempted every
//                        quantum; a latency-sensitive tenant sharing the
//                        same worker core still gets millisecond responses.
//
//   $ ./examples/multi_tenant_isolation
#include <cstdio>
#include <thread>

#include "common/clock.hpp"
#include "loadgen/loadgen.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;

namespace {

const char* kHostileSrc = R"(
int arr[4];
int main() {
  // Classic buffer overrun: scribble far past the array. Every access is
  // bounds-checked by the sandbox (vm_guard: the MMU does it for free).
  int sum = 0;
  for (int i = 0; i < 100000000; i += 65536) sum += arr[i];
  return sum;
}
)";

const char* kSpinSrc = R"(
char out[1];
int main() {
  double x = 1.0;
  for (int i = 0; i < 150000000; i++) { x += 0.5; if (x > 1e16) x = 1.0; }
  out[0] = 100;
  resp_write(out, 1);
  return (int)x;
}
)";

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

std::vector<uint8_t> compile(const char* src) {
  auto wasm = minicc::compile_to_wasm(src);
  if (!wasm.ok()) {
    std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
    std::exit(1);
  }
  return wasm.take();
}

}  // namespace

int main() {
  runtime::RuntimeConfig config;
  config.workers = 1;  // all three tenants share one worker core
  config.quantum_us = 5000;
  runtime::Runtime rt(config);
  rt.register_module("hostile", compile(kHostileSrc));
  rt.register_module("spin", compile(kSpinSrc));
  rt.register_module("ping", compile(kPingSrc));
  if (!rt.start().is_ok()) return 1;
  std::printf("one worker core, three tenants: /hostile /spin /ping\n\n");

  // --- spatial isolation ---
  int status = 0;
  auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(),
                                      "/hostile", {}, &status);
  std::printf("[spatial] hostile tenant's buffer overrun -> HTTP %d (%s)\n",
              status,
              resp.ok() ? std::string(resp->begin(), resp->end()).c_str()
                        : "?");
  resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {},
                                 &status);
  std::printf("[spatial] other tenant immediately after   -> HTTP %d "
              "(runtime intact)\n\n",
              status);

  // --- temporal isolation ---
  std::thread spinner([&] {
    uint64_t t0 = now_ns();
    loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin", {});
    std::printf("[temporal] spin tenant finished after %.0f ms (preempted "
                "%llu times)\n",
                ns_to_ms(now_ns() - t0),
                static_cast<unsigned long long>(rt.totals().preemptions));
  });
  ::usleep(30000);  // the spinner now owns the core...

  uint64_t t0 = now_ns();
  resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ping", {},
                                 &status);
  std::printf("[temporal] ping during the spin            -> HTTP %d in "
              "%.1f ms (quantum-bounded, not spin-bounded)\n",
              status, ns_to_ms(now_ns() - t0));
  spinner.join();

  rt.stop();
  return 0;
}
