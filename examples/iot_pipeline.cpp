// IoT pipeline: the paper's GPS-EKF scenario — a stateless serverless
// function tracking a vehicle, with the client carrying the filter state
// between requests (paper 5.2: "it returns to the client that state, and
// relies on it to pass it along with each request").
//
//   $ ./examples/iot_pipeline
//
// A simulated vehicle drives a circle; each noisy GPS fix is POSTed to the
// /ekf function together with the previous state; the response is the new
// state estimate. Prints truth vs estimate and the shrinking uncertainty.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "apps/workloads.hpp"
#include "common/rng.hpp"
#include "loadgen/loadgen.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;

namespace {

void put_f64(std::vector<uint8_t>* out, double v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + 8);
}

double get_f64(const std::vector<uint8_t>& bytes, size_t idx) {
  double v = 0;
  std::memcpy(&v, bytes.data() + idx * 8, 8);
  return v;
}

}  // namespace

int main() {
  runtime::RuntimeConfig config;
  config.workers = 2;
  runtime::Runtime rt(config);
  auto wasm = apps::app_wasm("ekf");
  if (!wasm.ok() || !rt.register_module("ekf", wasm.value()).is_ok() ||
      !rt.start().is_ok()) {
    std::fprintf(stderr, "failed to start /ekf service\n");
    return 1;
  }
  std::printf("GPS-EKF service on port %u\n\n", rt.bound_port());
  std::printf("%4s  %18s  %18s  %10s\n", "step", "truth (x, y)",
              "estimate (x, y)", "P[0][0]");

  Rng rng(42);
  // Initial state: position (0,0), velocities from the circle's tangent.
  std::vector<uint8_t> state;
  double truth_x = 10.0, truth_y = 0.0;
  {
    std::vector<uint8_t> init;
    double x0[8] = {truth_x, 0.0, truth_y, 1.0, 0, 0, 0, 0};
    for (double v : x0) put_f64(&init, v);
    for (int i = 0; i < 64; ++i) put_f64(&init, i % 9 == 0 ? 1.0 : 0.0);
    state = init;
  }

  for (int step = 0; step < 15; ++step) {
    // Vehicle truth: a circle of radius 10, angular velocity 0.1 rad/step.
    double angle = 0.1 * (step + 1);
    truth_x = 10.0 * std::cos(angle);
    truth_y = 10.0 * std::sin(angle);

    // Noisy GPS fix.
    double z[4] = {truth_x + (rng.next_double() - 0.5) * 0.4,
                   truth_y + (rng.next_double() - 0.5) * 0.4, 0.0, 0.0};

    std::vector<uint8_t> request = state;  // x + P from last step
    for (double v : z) put_f64(&request, v);

    int status = 0;
    auto resp = loadgen::single_request("127.0.0.1", rt.bound_port(), "/ekf",
                                        request, &status);
    if (!resp.ok() || status != 200 || resp->size() < 576) {
      std::fprintf(stderr, "request failed at step %d\n", step);
      return 1;
    }
    double est_x = get_f64(*resp, 0);
    double est_y = get_f64(*resp, 2);
    double p00 = get_f64(*resp, 8);
    std::printf("%4d  (%7.3f, %7.3f)  (%7.3f, %7.3f)  %10.5f\n", step,
                truth_x, truth_y, est_x, est_y, p00);
    state.assign(resp->begin(), resp->end());
  }

  std::printf("\n(the estimate locks onto the noisy fixes while P[0][0] — "
              "the filter's position uncertainty — collapses)\n");
  rt.stop();
  return 0;
}
