// §5.1 "Memory footprint": sizes of the per-function artifacts and the
// loaded runtime's RSS, versus the multi-megabyte container images of
// VM/container-based FaaS.
//
// Paper numbers: Sledge runtime binary 359KB; AoT shared objects 108-112KB;
// Nuclio function-processor container 96.4MB.
#include <sys/resource.h>

#include "bench_util.hpp"
#include "common/file_util.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

long rss_kb() {
  auto status = read_file("/proc/self/status");
  if (!status.ok()) return -1;
  size_t pos = status->find("VmRSS:");
  if (pos == std::string::npos) return -1;
  return std::atol(status->c_str() + pos + 6);
}

}  // namespace

int main() {
  print_header("Memory footprint of functions and runtime", "Section 5.1");

  long rss_before = rss_kb();

  runtime::RuntimeConfig cfg;
  cfg.workers = 2;
  runtime::Runtime rt(cfg);

  std::printf("%-12s %14s %14s\n", "module", "wasm bytes", "AoT .so bytes");
  int64_t total_so = 0;
  for (const std::string& app : apps::app_names()) {
    auto wasm = apps::app_wasm(app);
    if (!wasm.ok()) continue;
    Status s = rt.register_module(app, wasm.value());
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      continue;
    }
    int64_t so_size = rt.find_module(app)->module.native_object_size();
    total_so += so_size;
    std::printf("%-12s %14zu %14lld\n", app.c_str(), wasm.value().size(),
                static_cast<long long>(so_size));
  }

  if (!rt.start().is_ok()) return 1;
  long rss_after = rss_kb();
  rt.stop();

  std::printf("\n%-44s %10ld KB\n", "process RSS before loading modules",
              rss_before);
  std::printf("%-44s %10ld KB\n",
              "process RSS with 5 modules + runtime started", rss_after);
  std::printf("%-44s %10ld KB\n", "delta (all functions + runtime state)",
              rss_after - rss_before);
  std::printf("%-44s %10lld KB\n", "sum of AoT shared objects",
              static_cast<long long>(total_so / 1024));

  // Native function binaries (the per-function artifact of the
  // process-model baseline).
  std::printf("\n%-12s %14s\n", "fn binary", "bytes");
  for (const std::string& app : apps::app_names()) {
    std::printf("%-12s %14lld\n", app.c_str(),
                static_cast<long long>(file_size(fn_path(app))));
  }

  std::printf(
      "\nPaper (5.1): runtime binary 359KB, per-function .so 108-112KB — vs "
      "96.4MB per Nuclio function-processor container and GBs per VM. Any "
      "result in the 10s-to-100s of KB per function preserves the paper's "
      "2-3 orders-of-magnitude density argument.\n");
  return 0;
}
