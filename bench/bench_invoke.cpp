// Inter-function dataplane bench (the CWASI headline comparison): the same
// 2-stage chain measured three ways —
//
//   copy     — sb_invoke with the copy dataplane (per-invoke heap vectors
//              carry request and response)
//   shm      — sb_invoke with the zero-copy transfer-buffer dataplane and
//              locality-hinted child placement (the tentpole)
//   loopback — the "network-shaped" equivalent: the head function reaches
//              its peer over a loopback TCP socket (sb_connect/send/recv),
//              the way co-located functions talk when the runtime offers no
//              function-to-function fast path
//
// Each request makes SLEDGE_INVOKE_CALLS chained calls so the dataplane
// cost is amplified above HTTP/listener noise. A second experiment measures
// 3-stage chain shapes: nested stop-and-wait joins (chain_nested) vs the
// pipelined sb_invoke_stream hand-off (chain3), where latency should be
// bounded by the longest stage rather than the sum of joins.
//
// Emits BENCH_invoke.json. `--smoke` runs a scaled-down pass and exits
// nonzero unless the shm p50 beats the copy p50 for the 2-stage local
// chain (the acceptance gate wired into scripts/check.sh).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

// 2-stage head: `calls` sequential sb_invokes of /echo per request.
std::string chainloop_src(int calls) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
char name[4];
char req[65536];
char resp[65536];
int main() {
  int len = req_len();
  if (len > 65536) len = 65536;
  req_read(req, 0, len);
  name[0] = 101;
  name[1] = 99;
  name[2] = 104;
  name[3] = 111;
  int i = 0;
  int n = 0;
  while (i < %d) {
    n = sb_invoke(name, 4, req, len, resp, 65536);
    if (n < 0) { resp_i32(n); return n; }
    i = i + 1;
  }
  resp_write(resp, n);
  return n;
}
)",
                calls);
  return std::string(buf);
}

// Loopback-socket head: one connection, `calls` send/recv round trips of
// the same payload against the bench-side echo peer.
std::string fetchloop_src(int calls) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), R"(
char host[9];
char out[65536];
char in[65536];
int main() {
  int port = req_i32(0);
  int len = req_len() - 4;
  if (len < 1) len = 1;
  if (len > 65536) len = 65536;
  req_read(out, 4, len);
  host[0] = 49;
  host[1] = 50;
  host[2] = 55;
  host[3] = 46;
  host[4] = 48;
  host[5] = 46;
  host[6] = 48;
  host[7] = 46;
  host[8] = 49;
  int fd = sb_connect(host, 9, port);
  if (fd < 0) { resp_i32(fd); return fd; }
  int r = 0;
  int got = 0;
  int n = 0;
  int sent = 0;
  while (r < %d) {
    sent = sb_send(fd, out, len);
    if (sent < 0) { sb_close(fd); resp_i32(sent); return sent; }
    got = 0;
    while (got < len) {
      n = sb_recv(fd, in, 65536);
      if (n < 1) { sb_close(fd); resp_i32(n); return n; }
      got = got + n;
    }
    r = r + 1;
  }
  sb_close(fd);
  resp_write(in, got);
  return got;
}
)",
                calls);
  return std::string(buf);
}

// Bench-side echo peer: one thread per connection, echoing bytes until the
// client closes. Stands in for the co-located "second function" of the
// loopback leg.
class EchoPeer {
 public:
  EchoPeer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 64);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: shut down
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns_.emplace_back([fd] {
          char buf[8192];
          for (;;) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) break;
            ssize_t off = 0;
            while (off < n) {
              ssize_t w = ::send(fd, buf + off, n - off, MSG_NOSIGNAL);
              if (w <= 0) { off = n; break; }
              off += w;
            }
          }
          ::close(fd);
        });
      }
    });
  }
  ~EchoPeer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    acceptor_.join();
    for (std::thread& t : conns_) t.join();
  }
  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> conns_;
};

struct Leg {
  std::string name;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double throughput_rps = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
};

// Batched, interleaved measurement: on this class of host, machine-level
// drift (frequency scaling, background load, scheduler placement) between
// two back-to-back measurement phases is larger than the dataplane delta
// the bench exists to show. So the legs are measured round-robin in short
// batches — adjacent batches of different legs see the same drift — and
// each leg reports the median of its batch p50s, which discards the
// batches a hiccup poisoned.
struct BatchLeg {
  std::string name;
  uint16_t port = 0;
  std::string path;
  std::vector<uint8_t> body;
  std::vector<double> p50s{}, p99s{}, means{}, rpss{}, mins{};
  uint64_t ok = 0, errors = 0;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void run_batch(BatchLeg& leg, int conc, uint64_t batch_reqs) {
  loadgen::Report rep = drive(leg.port, leg.path, leg.body, conc, batch_reqs);
  leg.p50s.push_back(static_cast<double>(rep.latency.percentile_ns(0.5)) /
                     1e6);
  leg.p99s.push_back(rep.p99_ms());
  leg.mins.push_back(static_cast<double>(rep.latency.min_ns()) / 1e6);
  leg.means.push_back(rep.mean_ms());
  leg.rpss.push_back(rep.throughput_rps);
  leg.ok += rep.count(200);
  leg.errors += rep.errors + rep.count(500) + rep.count(503) + rep.count(504);
}

Leg finish(const BatchLeg& b) {
  Leg leg;
  leg.name = b.name;
  leg.p50_ms = median(b.p50s);
  leg.p99_ms = median(b.p99s);
  double msum = 0;
  for (double m : b.means) msum += m;
  leg.mean_ms = b.means.empty() ? 0 : msum / b.means.size();
  double rsum = 0;
  for (double r : b.rpss) rsum += r;
  leg.throughput_rps = b.rpss.empty() ? 0 : rsum / b.rpss.size();
  leg.ok = b.ok;
  leg.errors = b.errors;
  std::printf("%-22s | %8.3f %8.3f %8.3f | %7llu ok %4llu err\n",
              leg.name.c_str(), leg.p50_ms, leg.p99_ms, leg.mean_ms,
              static_cast<unsigned long long>(leg.ok),
              static_cast<unsigned long long>(leg.errors));
  return leg;
}

// One runtime serves both dataplanes: the global config is shm, and a
// second registration of the chain head under the per-module kCopy
// override gives the copy leg. Measuring both legs inside a single
// instance removes every instance-level confound (thread placement,
// sandbox-pool warmth, listener shard luck) from the comparison.
std::unique_ptr<runtime::Runtime> start_runtime(int calls) {
  runtime::RuntimeConfig cfg;
  cfg.workers = 3;
  cfg.invoke_dataplane = runtime::InvokeDataplane::kShm;
  auto rt = std::make_unique<runtime::Runtime>(cfg);
  struct Mod {
    const char* name;
    std::string src;
  };
  auto echo = apps::load_app_source("echo");
  auto chain_nested = apps::load_app_source("chain_nested");
  auto chain = apps::load_app_source("chain");
  auto chain3 = apps::load_app_source("chain3");
  auto relay = apps::load_app_source("relay");
  if (!echo.ok() || !chain_nested.ok() || !chain.ok() || !chain3.ok() ||
      !relay.ok()) {
    std::fprintf(stderr, "app sources missing\n");
    return nullptr;
  }
  const Mod mods[] = {
      {"chainloop", chainloop_src(calls)},
      {"chainloop_copy", chainloop_src(calls)},
      {"fetchloop", fetchloop_src(calls)},
      {"echo", echo.value()},
      {"chain", chain.value()},
      {"chain_nested", chain_nested.value()},
      {"chain3", chain3.value()},
      {"relay", relay.value()},
  };
  for (const Mod& m : mods) {
    auto wasm = minicc::compile_to_wasm(m.src);
    if (!wasm.ok()) {
      std::fprintf(stderr, "%s: %s\n", m.name, wasm.error_message().c_str());
      return nullptr;
    }
    runtime::ModuleLimits limits;
    if (std::strcmp(m.name, "chainloop_copy") == 0) {
      limits.invoke_dataplane = runtime::InvokeDataplaneOverride::kCopy;
    }
    if (!rt->register_module(m.name, wasm.value(), limits).is_ok()) {
      return nullptr;
    }
  }
  if (!rt->start().is_ok()) return nullptr;
  return rt;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  print_header("Inter-function dataplane: copy vs shm vs loopback socket",
               "DESIGN.md §13 (CWASI comparison)");

  const uint64_t reqs =
      static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", smoke ? 120 : 600));
  const int conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 2));
  const int calls = static_cast<int>(env_long("SLEDGE_INVOKE_CALLS", 16));
  // Big enough that the per-invoke payload copies the copy dataplane pays
  // are visible above fixed per-invoke costs (child spawn, dispatch, join).
  const size_t payload_len =
      static_cast<size_t>(env_long("SLEDGE_BENCH_PAYLOAD", 60'000));

  std::vector<uint8_t> payload(payload_len);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>('a' + i % 26);
  }

  std::printf("%llu reqs x %d chained calls, %zu B payload, conc %d\n\n",
              static_cast<unsigned long long>(reqs), calls, payload_len,
              conc);
  std::printf("%-22s | %8s %8s %8s |\n", "leg", "p50 ms", "p99 ms", "mean");

  auto rt = start_runtime(calls);
  if (!rt) return 1;
  EchoPeer peer;

  std::vector<uint8_t> loop_body;
  {
    int32_t port = peer.port();
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&port);
    loop_body.insert(loop_body.end(), p, p + 4);
    loop_body.insert(loop_body.end(), payload.begin(), payload.end());
  }
  // 3-stage chain shapes run a single chain per request; the .mc chain
  // stages cap payloads at 4 KiB.
  std::vector<uint8_t> payload3(
      payload.begin(),
      payload.begin() + (payload.size() < 3000 ? payload.size() : 3000));

  BatchLeg batch_legs[] = {
      {"2stage_copy", rt->bound_port(), "/chainloop_copy", payload},
      {"2stage_shm", rt->bound_port(), "/chainloop", payload},
      {"2stage_loopback", rt->bound_port(), "/fetchloop", loop_body},
      {"3stage_nested_join", rt->bound_port(), "/chain_nested", payload3},
      {"3stage_stream", rt->bound_port(), "/chain3", payload3},
  };
  BatchLeg& leg_copy = batch_legs[0];
  BatchLeg& leg_shm = batch_legs[1];
  constexpr int kBatches = 7;
  const uint64_t batch_reqs = reqs / kBatches > 0 ? reqs / kBatches : 1;
  for (BatchLeg& leg : batch_legs) {  // warm pools, tiers, predictor
    drive(leg.port, leg.path, leg.body, 2, batch_reqs / 2 + 8);
  }

  // Phase 1 — the copy/shm comparison the smoke gate rides on. The two
  // legs run as adjacent paired rounds (order alternating per round) and
  // the verdict is the median of the per-round p50 deltas: pairing
  // subtracts out whatever the host was doing that round, which run-level
  // or batch-level medians cannot. The p50 (not the min) is the right
  // metric here: at the noise floor the two dataplanes cost the same four
  // payload copies, and what the pooled carriers buy is freedom from
  // allocator jitter — visible from the median up.
  constexpr int kPairRounds = 17;
  const uint64_t pair_reqs = reqs / 20 > 48 ? reqs / 20 : 48;
  std::vector<double> pair_delta_ms;
  for (int r = 0; r < kPairRounds; ++r) {
    BatchLeg& first = (r % 2 == 0) ? leg_copy : leg_shm;
    BatchLeg& second = (r % 2 == 0) ? leg_shm : leg_copy;
    run_batch(first, conc, pair_reqs);
    run_batch(second, conc, pair_reqs);
    pair_delta_ms.push_back(leg_copy.p50s.back() - leg_shm.p50s.back());
  }
  const double gate_delta_ms = median(pair_delta_ms);

  // Phase 2 — the remaining legs, round-robin so drift is shared.
  for (int b = 0; b < kBatches; ++b) {
    for (size_t i = 2; i < 5; ++i) run_batch(batch_legs[i], conc, batch_reqs);
  }

  std::vector<Leg> legs;
  for (const BatchLeg& leg : batch_legs) legs.push_back(finish(leg));
  uint64_t zerocopy_invokes = rt->totals().invokes;
  const auto pool_counters =
      runtime::SandboxResourcePool::instance().counters();
  rt->stop();

  const Leg& copy = legs[0];
  const Leg& shm = legs[1];
  const Leg& loop = legs[2];
  const Leg& nested = legs[3];
  const Leg& stream = legs[4];

  const char* out_path = std::getenv("SLEDGE_BENCH_OUT");
  if (!out_path || !out_path[0]) out_path = "BENCH_invoke.json";
  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"invoke\",\n"
               "  \"workload\": {\"reqs\": %llu, \"conc\": %d, "
               "\"chained_calls\": %d, \"payload_bytes\": %zu, "
               "\"workers\": 3, \"batches\": %d, "
               "\"invokes_shm_run\": %llu},\n"
               "  \"legs\": [\n",
               static_cast<unsigned long long>(reqs), conc, calls,
               payload_len, kBatches,
               static_cast<unsigned long long>(zerocopy_invokes));
  for (size_t i = 0; i < legs.size(); ++i) {
    const Leg& l = legs[i];
    std::fprintf(f,
                 "    {\"leg\": \"%s\", \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"mean_ms\": %.4f, \"throughput_rps\": %.1f, "
                 "\"ok\": %llu, \"errors\": %llu}%s\n",
                 l.name.c_str(), l.p50_ms, l.p99_ms, l.mean_ms,
                 l.throughput_rps, static_cast<unsigned long long>(l.ok),
                 static_cast<unsigned long long>(l.errors),
                 i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"headline\": {\"shm_vs_copy_p50\": %.3f, "
               "\"shm_vs_loopback_p50\": %.3f, "
               "\"stream_vs_nested_p50\": %.3f, "
               "\"copy_minus_shm_paired_p50_ms\": %.4f}\n}\n",
               copy.p50_ms > 0 ? shm.p50_ms / copy.p50_ms : 0,
               loop.p50_ms > 0 ? shm.p50_ms / loop.p50_ms : 0,
               nested.p50_ms > 0 ? stream.p50_ms / nested.p50_ms : 0,
               gate_delta_ms);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  std::printf("transfer pool: %llu hits, %llu misses, %llu outstanding\n",
              static_cast<unsigned long long>(pool_counters.transfer_hits),
              static_cast<unsigned long long>(pool_counters.transfer_misses),
              static_cast<unsigned long long>(
                  pool_counters.transfer_outstanding));

  std::printf(
      "2-stage p50: shm %.3f ms vs copy %.3f ms vs loopback %.3f ms; "
      "paired copy-shm delta %.4f ms (%s)\n",
      shm.p50_ms, copy.p50_ms, loop.p50_ms, gate_delta_ms,
      gate_delta_ms > 0 && shm.p50_ms < loop.p50_ms
          ? "zero-copy wins"
          : "UNEXPECTED: zero-copy did not win");
  std::printf("3-stage p50: stream %.3f ms vs nested joins %.3f ms (%s)\n",
              stream.p50_ms, nested.p50_ms,
              stream.p50_ms < nested.p50_ms
                  ? "pipelined hand-off wins"
                  : "UNEXPECTED: stream did not win");

  if (shm.errors != 0 || copy.errors != 0) {
    std::fprintf(stderr, "FAIL: errors in measured legs\n");
    return 2;
  }
  if (smoke && !(gate_delta_ms > 0)) {
    std::fprintf(stderr,
                 "FAIL: shm did not beat copy on the paired 2-stage chain "
                 "(median copy-shm p50 delta %.4f ms; shm %.3f ms, copy "
                 "%.3f ms)\n",
                 gate_delta_ms, shm.p50_ms, copy.p50_ms);
    return 2;
  }
  return 0;
}
