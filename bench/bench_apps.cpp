// Figure 8: throughput and average/p99 latency of the five real-world edge
// applications (GPS-EKF, GOCR, CIFAR-10, RESIZE, LPD) under concurrent
// load — Sledge vs procfaas.
//
// Expected shape (paper): Sledge wins big on light functions (GPS-EKF 4x,
// GOCR 2.9x, CIFAR-10 1.36x) and loses its edge on compute-bound ones
// (RESIZE, LPD) where Wasm execution overhead dominates.
#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Real-world applications under concurrent load", "Figure 8");

  const int conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 20));
  const uint64_t base_reqs =
      static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 300));

  const std::vector<std::string>& names = apps::app_names();
  auto sledge_rt = start_sledge(names);
  auto baseline = start_procfaas(names);
  if (!sledge_rt || !baseline) return 1;

  std::printf("%-10s | %12s %10s %10s | %12s %10s %10s | %7s\n", "app",
              "sledge r/s", "avg ms", "p99 ms", "procfs r/s", "avg ms",
              "p99 ms", "ratio");

  for (const std::string& app : names) {
    std::vector<uint8_t> body = apps::app_request(app);
    // Heavier apps get fewer requests to keep the default run short.
    uint64_t reqs = base_reqs;
    if (app == "lpd" || app == "resize") reqs = base_reqs / 3 + 1;
    auto s = drive(sledge_rt->bound_port(), "/" + app, body, conc, reqs);
    auto n = drive(baseline->bound_port(), "/" + app, body, conc, reqs);
    double ratio = n.throughput_rps > 0 ? s.throughput_rps / n.throughput_rps
                                        : 0;
    std::printf("%-10s | %12.1f %10.3f %10.3f | %12.1f %10.3f %10.3f | %6.2fx\n",
                app.c_str(), s.throughput_rps, s.mean_ms(), s.p99_ms(),
                n.throughput_rps, n.mean_ms(), n.p99_ms(), ratio);
    if (s.errors || n.errors) {
      std::printf("           (errors: sledge=%llu procfaas=%llu)\n",
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(n.errors));
    }
  }

  std::printf("\nPaper (Fig. 8): GPS-EKF 4x, GOCR 2.9x, CIFAR10 1.36x in "
              "Sledge's favor; RESIZE/LPD below 1x (Wasm overhead "
              "dominates).\n");
  sledge_rt->stop();
  baseline->stop();
  return 0;
}
