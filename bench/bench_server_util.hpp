// Helpers for the end-to-end serverless benches: spin up a Sledge runtime
// and a procfaas (Nuclio-model) baseline with the same functions, drive
// both with the load generator, print paper-style rows.
#pragma once

#include "bench_util.hpp"
#include "loadgen/loadgen.hpp"
#include "procfaas/procfaas.hpp"
#include "sledge/runtime.hpp"

namespace sledge::bench {

inline std::unique_ptr<runtime::Runtime> start_sledge(
    const std::vector<std::string>& apps, int workers = 3) {
  runtime::RuntimeConfig cfg;
  cfg.workers = workers;
  auto rt = std::make_unique<runtime::Runtime>(cfg);
  for (const std::string& app : apps) {
    auto wasm = apps::app_wasm(app);
    if (!wasm.ok()) {
      std::fprintf(stderr, "app %s: %s\n", app.c_str(),
                   wasm.error_message().c_str());
      return nullptr;
    }
    Status s = rt->register_module(app, wasm.value());
    if (!s.is_ok()) {
      std::fprintf(stderr, "register %s: %s\n", app.c_str(),
                   s.message().c_str());
      return nullptr;
    }
  }
  if (!rt->start().is_ok()) return nullptr;
  return rt;
}

inline std::unique_ptr<procfaas::ProcFaas> start_procfaas(
    const std::vector<std::string>& apps, int max_workers = 16) {
  procfaas::ProcFaasConfig cfg;
  cfg.max_workers = max_workers;
  auto pf = std::make_unique<procfaas::ProcFaas>(cfg);
  for (const std::string& app : apps) {
    Status s = pf->register_function(app, fn_path(app));
    if (!s.is_ok()) {
      std::fprintf(stderr, "procfaas %s: %s\n", app.c_str(),
                   s.message().c_str());
      return nullptr;
    }
  }
  if (!pf->start().is_ok()) return nullptr;
  return pf;
}

inline loadgen::Report drive(uint16_t port, const std::string& path,
                             const std::vector<uint8_t>& body,
                             int concurrency, uint64_t total) {
  loadgen::Options opt;
  opt.port = port;
  opt.path = path;
  opt.body = body;
  opt.concurrency = concurrency;
  opt.total_requests = total;
  auto report = loadgen::run_load(opt);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", report.error_message().c_str());
    return loadgen::Report{};
  }
  return report.take();
}

}  // namespace sledge::bench
