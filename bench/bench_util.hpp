// Shared plumbing for the benchmark harnesses (one binary per paper
// table/figure — see DESIGN.md's per-experiment index).
#pragma once

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/native_host.hpp"
#include "apps/workloads.hpp"
#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "engine/cc_driver.hpp"
#include "engine/engine.hpp"
#include "minicc/minicc.hpp"

#ifndef SLEDGE_FN_BINDIR
#define SLEDGE_FN_BINDIR "build/src/apps"
#endif

namespace sledge::bench {

inline std::string fn_path(const std::string& app) {
  return std::string(SLEDGE_FN_BINDIR) + "/fn_" + app;
}

// Environment-tunable knob with a default (benchmarks default to quick
// runs; export e.g. SLEDGE_BENCH_REQS=10000 to reproduce paper-scale runs).
inline long env_long(const char* name, long dflt) {
  const char* v = std::getenv(name);
  return v && v[0] ? std::atol(v) : dflt;
}

// A natively compiled mini-C program loaded via dlopen: the "native"
// baseline of the paper's tables (clang -O3 equivalent).
class NativeProgram {
 public:
  static NativeProgram* load(const std::string& minicc_source,
                             const std::string& prefix) {
    // Force the mc_* host symbols into this binary (static-library objects
    // are otherwise dropped) so the dlopen'd native twins can resolve them.
    apps::native_host_reset();
    auto c = minicc::compile_to_c(minicc_source, prefix);
    if (!c.ok()) {
      std::fprintf(stderr, "native codegen failed: %s\n",
                   c.error_message().c_str());
      return nullptr;
    }
    engine::CcOptions opts;
    opts.opt_level = 3;
    auto so = engine::compile_c_to_so(*c, opts);
    if (!so.ok()) {
      std::fprintf(stderr, "native cc failed: %s\n", so.error_message().c_str());
      return nullptr;
    }
    void* handle = ::dlopen(so->so_path.c_str(), RTLD_NOW | RTLD_GLOBAL);
    if (!handle) {
      std::fprintf(stderr, "dlopen failed: %s\n", ::dlerror());
      engine::remove_work_dir(*so);
      return nullptr;
    }
    auto* prog = new NativeProgram();
    prog->cc_ = so.take();
    prog->handle_ = handle;
    prog->main_ = reinterpret_cast<int32_t (*)()>(
        ::dlsym(handle, (prefix + "main").c_str()));
    if (!prog->main_) {
      std::fprintf(stderr, "missing %smain symbol\n", prefix.c_str());
      delete prog;
      return nullptr;
    }
    return prog;
  }

  ~NativeProgram() {
    if (handle_) ::dlclose(handle_);
    engine::remove_work_dir(cc_);
  }

  int32_t run() { return main_(); }

 private:
  NativeProgram() = default;
  engine::CcResult cc_;
  void* handle_ = nullptr;
  int32_t (*main_)() = nullptr;
};

// Times `fn` over `iters` iterations; returns mean seconds per iteration.
template <typename Fn>
double time_mean_s(int iters, Fn&& fn) {
  Stopwatch sw;
  for (int i = 0; i < iters; ++i) fn();
  return static_cast<double>(sw.elapsed_ns()) / 1e9 / iters;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // stream rows when redirected
  std::printf("\n==============================================================\n");
  std::printf("%s\n  (reproduces %s; see EXPERIMENTS.md)\n", title, paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace sledge::bench
