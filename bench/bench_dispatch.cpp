// Ablation: dispatcher layer × admission policy under mixed-deadline
// overload (DESIGN.md §11). Two tenants share the server:
//
//   tight — a ~ms CPU burn with a deadline that is meetable when the
//           request runs immediately but NOT after queueing behind a
//           saturated backlog (the Lumos scenario: tail, not mean, decides)
//   loose — ping with a deadline three orders of magnitude above service
//           time (never legitimately missed)
//
// Every dispatcher (work_stealing / global_edf / sharded_module) runs under
// both admission policies (depth / slack). The claim under test: expected-
// slack admission converts admit-then-kill deadline misses (504 after the
// sandbox already burned CPU) into early 503 sheds, so the 504 rate drops
// while goodput holds — the raw-depth baseline keeps admitting requests the
// predictor already knows cannot finish in time.
//
// Emits BENCH_dispatch.json (one record per combo: p50/p99, miss rate, shed
// rate, goodput) as the recorded baseline future PRs diff against.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

const char* kPingSrc = R"(
char out[1];
int main() { out[0] = 112; resp_write(out, 1); return 0; }
)";

// ~2-5 ms of linear-memory arithmetic under the AoT tier.
std::string burn_src() {
  return R"(
int acc[2];
char out[1];
int main() {
  int i = 0;
  while (i < 3000000) { acc[0] = acc[0] + i; i = i + 1; }
  out[0] = 98;
  resp_write(out, 1);
  return acc[0];
}
)";
}

struct ComboResult {
  std::string dispatcher;
  std::string admission;
  double p50_ms = 0;
  double p99_ms = 0;
  double miss_rate = 0;   // 504s / issued (admitted-then-killed + early)
  double shed_rate = 0;   // 503s / issued
  double goodput_rps = 0; // in-deadline 200s per second, both tenants
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t missed = 0;
};

}  // namespace

int main() {
  print_header("Ablation: dispatcher x admission under overload",
               "DESIGN.md §11");

  const uint64_t tight_reqs =
      static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 1200));
  const uint64_t loose_reqs = tight_reqs / 2;
  const int tight_conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 16));

  auto ping = minicc::compile_to_wasm(kPingSrc);
  auto burn = minicc::compile_to_wasm(burn_src());
  if (!ping.ok() || !burn.ok()) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }

  std::printf("%-15s %-6s | %8s %8s | %7s %7s | %10s\n", "dispatcher",
              "admit", "p50 ms", "p99 ms", "miss%", "shed%", "goodput r/s");

  std::vector<ComboResult> results;
  for (runtime::DispatchPolicy dp :
       {runtime::DispatchPolicy::kWorkStealing,
        runtime::DispatchPolicy::kGlobalEdf,
        runtime::DispatchPolicy::kShardedByModule}) {
    for (runtime::AdmissionPolicy ap :
         {runtime::AdmissionPolicy::kQueueDepth,
          runtime::AdmissionPolicy::kExpectedSlack}) {
      runtime::RuntimeConfig cfg;
      cfg.workers = 3;
      cfg.dispatcher = dp;
      cfg.admission = ap;
      // Deep enough that queue wait dwarfs the tight deadline: admitted
      // tight requests behind a full backlog are doomed under depth-only
      // admission.
      cfg.max_pending = 24;
      runtime::Runtime rt(cfg);

      runtime::ModuleLimits tight_lim;
      tight_lim.deadline_ns = 20'000'000;  // 20 ms vs ~2-5 ms service time
      if (!rt.register_module("tight", burn.value(), tight_lim).is_ok()) {
        return 1;
      }
      runtime::ModuleLimits loose_lim;
      loose_lim.deadline_ns = 2'000'000'000;
      if (!rt.register_module("loose", ping.value(), loose_lim).is_ok()) {
        return 1;
      }
      if (!rt.start().is_ok()) return 1;

      // Warm the slack predictor (and both tiers' code paths) below
      // saturation so the measured phase starts with published p99s.
      drive(rt.bound_port(), "/tight", {}, 2, 60);
      drive(rt.bound_port(), "/loose", {}, 2, 60);

      // Measured phase: saturate the tight tenant; run the loose tenant
      // alongside to observe goodput protection.
      loadgen::Report tight_rep, loose_rep;
      std::thread loose_t([&] {
        loose_rep = drive(rt.bound_port(), "/loose", {}, 4, loose_reqs);
      });
      tight_rep = drive(rt.bound_port(), "/tight", {}, tight_conc, tight_reqs);
      loose_t.join();
      rt.stop();

      ComboResult r;
      r.dispatcher = to_string(dp);
      r.admission = to_string(ap);
      const uint64_t issued = tight_reqs + loose_reqs;
      r.ok = tight_rep.count(200) + loose_rep.count(200);
      r.shed = tight_rep.count(503) + loose_rep.count(503);
      r.missed = tight_rep.count(504) + loose_rep.count(504);
      r.miss_rate = static_cast<double>(r.missed) / issued;
      r.shed_rate = static_cast<double>(r.shed) / issued;
      // Latency histograms only record successful (200) requests; the
      // measured-phase duration is the longer of the two drivers.
      double duration =
          tight_rep.duration_s > loose_rep.duration_s ? tight_rep.duration_s
                                                      : loose_rep.duration_s;
      r.goodput_rps = duration > 0 ? r.ok / duration : 0;
      r.p50_ms =
          static_cast<double>(tight_rep.latency.percentile_ns(0.5)) / 1e6;
      r.p99_ms = tight_rep.p99_ms();
      results.push_back(r);

      std::printf("%-15s %-6s | %8.2f %8.2f | %6.1f%% %6.1f%% | %10.0f\n",
                  r.dispatcher.c_str(), r.admission.c_str(), r.p50_ms,
                  r.p99_ms, 100 * r.miss_rate, 100 * r.shed_rate,
                  r.goodput_rps);
    }
  }

  // Recorded baseline: one JSON record per combo.
  const char* out_path = std::getenv("SLEDGE_BENCH_OUT");
  if (!out_path || !out_path[0]) out_path = "BENCH_dispatch.json";
  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"dispatch\",\n"
               "  \"workload\": {\"tight_reqs\": %llu, \"loose_reqs\": %llu, "
               "\"tight_conc\": %d, \"tight_deadline_ms\": 20, "
               "\"workers\": 3, \"max_pending\": 24},\n  \"combos\": [\n",
               static_cast<unsigned long long>(tight_reqs),
               static_cast<unsigned long long>(loose_reqs), tight_conc);
  for (size_t i = 0; i < results.size(); ++i) {
    const ComboResult& r = results[i];
    std::fprintf(
        f,
        "    {\"dispatcher\": \"%s\", \"admission\": \"%s\", "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"miss_rate\": %.4f, "
        "\"shed_rate\": %.4f, \"goodput_rps\": %.1f, \"ok\": %llu, "
        "\"shed\": %llu, \"missed\": %llu}%s\n",
        r.dispatcher.c_str(), r.admission.c_str(), r.p50_ms, r.p99_ms,
        r.miss_rate, r.shed_rate, r.goodput_rps,
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.missed),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  // The headline comparison the acceptance gate reads: slack vs depth 504
  // rate, averaged over dispatchers.
  double depth_miss = 0, slack_miss = 0;
  int n = 0;
  for (const ComboResult& r : results) {
    if (r.admission == "depth") depth_miss += r.miss_rate;
    if (r.admission == "slack") slack_miss += r.miss_rate;
  }
  n = static_cast<int>(results.size()) / 2;
  if (n > 0) {
    std::printf("mean 504 rate: depth %.1f%% -> slack %.1f%% "
                "(%s)\n",
                100 * depth_miss / n, 100 * slack_miss / n,
                slack_miss < depth_miss
                    ? "slack admission sheds early instead of killing late"
                    : "UNEXPECTED: slack did not reduce misses");
  }
  return 0;
}
