// Figure 5 + Table 1: PolyBench/C execution time normalized to native, per
// Wasm runtime configuration.
//
// Runtime configurations and which paper system each models (DESIGN.md):
//   native             clang -O3 native build (the baseline denominator)
//   aWsm (vm_guard)    Sledge+aWsm — AoT, virtual-memory bounds
//   aWsm-bounds-chk    Sledge+aWsm-bounds-chk — AoT, software bounds
//   aWsm-mpx           Sledge+aWsm-mpx — AoT, MPX-cost-model bounds
//   aWsm-nochk         static compilation without bounds checks (§5.1 text)
//   aot-O0             fast-compile/slower-code tier (Cranelift-like:
//                      Lucet / Wasmer slot)
//   interp-fast        pre-decoded interpreter (mid comparator)
//   interp             classic interpreter (slow comparator)
//
// Iterations: SLEDGE_PB_ITERS (default 5; the paper used 15). Interpreter
// tiers are capped at SLEDGE_PB_INTERP_ITERS (default 2) to keep the
// default run short on this single-core host.
#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

struct RuntimeCfg {
  const char* name;
  engine::Tier tier;
  engine::BoundsStrategy strategy;
  bool is_interp;
};

const RuntimeCfg kRuntimes[] = {
    {"aWsm(vm)", engine::Tier::kAot, engine::BoundsStrategy::kVmGuard, false},
    {"aWsm-bchk", engine::Tier::kAot, engine::BoundsStrategy::kSoftware, false},
    {"aWsm-mpx", engine::Tier::kAot, engine::BoundsStrategy::kMpxSim, false},
    {"aWsm-nochk", engine::Tier::kAot, engine::BoundsStrategy::kNone, false},
    {"aot-O0", engine::Tier::kAotO0, engine::BoundsStrategy::kVmGuard, false},
    {"interp-fast", engine::Tier::kInterpFast, engine::BoundsStrategy::kSoftware, true},
    {"interp", engine::Tier::kInterp, engine::BoundsStrategy::kSoftware, true},
};
constexpr int kNumRuntimes = 7;

// One warm sandbox per runtime config: Figure 5 measures code quality, not
// startup, so pages are faulted in before timing (kernels fully re-init
// their arrays on each run).
double run_wasm_once(engine::WasmSandbox& sandbox) {
  std::vector<uint8_t> resp;
  Stopwatch sw;
  auto out = sandbox.run_serverless({}, &resp);
  double s = static_cast<double>(sw.elapsed_ns()) / 1e9;
  if (!out.ok()) return -1;
  return s;
}

}  // namespace

int main() {
  print_header("PolyBench/C: execution time normalized to native",
               "Figure 5 and Table 1 (x86_64 half)");

  const int iters = static_cast<int>(env_long("SLEDGE_PB_ITERS", 5));
  const int interp_iters =
      static_cast<int>(env_long("SLEDGE_PB_INTERP_ITERS", 2));
  const bool fast = env_long("SLEDGE_PB_FAST", 0) != 0;

  std::vector<std::string> kernels = apps::polybench_names();
  if (fast) kernels.resize(8);

  std::printf("%-16s %10s", "kernel", "native(ms)");
  for (const auto& rt : kRuntimes) std::printf(" %11s", rt.name);
  std::printf("\n");

  // Per-runtime slowdown factors for the Table 1 summary.
  std::vector<std::vector<double>> slowdowns(kNumRuntimes);

  for (const std::string& kernel : kernels) {
    auto src = apps::load_polybench_source(kernel);
    if (!src.ok()) {
      std::fprintf(stderr, "missing kernel %s\n", kernel.c_str());
      continue;
    }

    // Native baseline (cc -O3 of the minicc C backend output).
    std::string prefix = "pb_";
    for (char c : kernel) prefix += c == '-' ? '_' : c;
    prefix += "_";
    NativeProgram* native = NativeProgram::load(*src, prefix);
    if (!native) continue;
    native->run();  // warm
    double native_s = time_mean_s(iters, [&] { native->run(); });

    std::printf("%-16s %10.3f", kernel.c_str(), native_s * 1e3);
    std::fflush(stdout);

    auto wasm = minicc::compile_to_wasm(*src);
    if (!wasm.ok()) {
      std::fprintf(stderr, "\nwasm compile failed: %s\n",
                   wasm.error_message().c_str());
      delete native;
      continue;
    }

    for (int r = 0; r < kNumRuntimes; ++r) {
      const RuntimeCfg& rt = kRuntimes[r];
      engine::WasmModule::Config cfg;
      cfg.tier = rt.tier;
      cfg.strategy = rt.strategy;
      auto mod = engine::WasmModule::load(wasm.value(), cfg);
      if (!mod.ok()) {
        std::printf(" %11s", "ERR");
        continue;
      }
      auto sandbox = mod->instantiate();
      if (!sandbox.ok()) {
        std::printf(" %11s", "ERR");
        continue;
      }
      int n = rt.is_interp ? std::min(iters, interp_iters) : iters;
      run_wasm_once(sandbox.value());  // warm (faults pages in)
      double total = 0;
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        double s = run_wasm_once(sandbox.value());
        if (s < 0) ok = false;
        total += s;
      }
      if (!ok) {
        std::printf(" %11s", "TRAP");
        continue;
      }
      double norm = (total / n) / native_s;
      slowdowns[r].push_back(norm);
      std::printf(" %10.2fx", norm);
      std::fflush(stdout);
    }
    std::printf("\n");
    delete native;
  }

  // Table 1 block: arithmetic/geometric mean slowdown (%) + SD.
  std::printf("\n-- Table 1 summary: %% slowdown vs native (x86_64) --\n");
  std::printf("%-14s %14s %14s %10s\n", "runtime", "Slowdown(AM)",
              "Slowdown(GM)", "SD");
  for (int r = 0; r < kNumRuntimes; ++r) {
    const std::vector<double>& v = slowdowns[r];
    if (v.empty()) continue;
    double am = 0, gm_log = 0;
    for (double x : v) {
      am += x;
      gm_log += std::log(x);
    }
    am /= static_cast<double>(v.size());
    double gm = std::exp(gm_log / static_cast<double>(v.size()));
    double var = 0;
    for (double x : v) var += (x - am) * (x - am);
    double sd = std::sqrt(var / static_cast<double>(v.size()));
    std::printf("%-14s %13.1f%% %13.1f%% %10.2f\n", kRuntimes[r].name,
                (am - 1.0) * 100.0, (gm - 1.0) * 100.0, sd * 100.0);
  }
  std::printf(
      "\nPaper (Table 1): aWsm 13.4%% AM / 9.9%% GM; software-bounds 62.7%%; "
      "MPX 75.1%%; Cranelift-based 92.8-149.8%%.\n"
      "Expected shape: interp tiers >> { mpx > bounds-chk > vm_guard ~ nochk "
      "}; the O1 tier lands between vm_guard and the interpreters "
      "(Cranelift's slot). AArch64 columns: N/A on this host (see "
      "DESIGN.md).\n");
  return 0;
}
