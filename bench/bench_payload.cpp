// Figure 7: throughput and latency of the network-transfer (echo) function
// at payload sizes 1KB..1MB, 100 concurrent connections — Sledge vs
// procfaas.
//
// Expected shape (paper): ~2.8x Sledge advantage at 1-10KB, converging as
// payload copying dominates at 1MB.
#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Network-transfer function vs payload size", "Figure 7");

  const uint64_t reqs = static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 400));
  const int conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 100));

  auto sledge_rt = start_sledge({"echo"});
  auto baseline = start_procfaas({"echo"});
  if (!sledge_rt || !baseline) return 1;

  std::printf("%-8s | %12s %10s %10s | %12s %10s %10s | %7s\n", "payload",
              "sledge r/s", "avg ms", "p99 ms", "procfs r/s", "avg ms",
              "p99 ms", "ratio");

  const struct {
    const char* label;
    size_t bytes;
  } kSizes[] = {{"1KB", 1024},
                {"10KB", 10 * 1024},
                {"100KB", 100 * 1024},
                {"1MB", 1024 * 1024}};

  for (const auto& size : kSizes) {
    std::vector<uint8_t> body(size.bytes);
    for (size_t i = 0; i < body.size(); ++i) {
      body[i] = static_cast<uint8_t>(i * 131 + 7);
    }
    uint64_t n_reqs = size.bytes >= 1024 * 1024 ? reqs / 4 + 1 : reqs;
    auto s = drive(sledge_rt->bound_port(), "/echo", body, conc, n_reqs);
    auto n = drive(baseline->bound_port(), "/echo", body, conc, n_reqs);
    double ratio = n.throughput_rps > 0 ? s.throughput_rps / n.throughput_rps
                                        : 0;
    std::printf("%-8s | %12.0f %10.3f %10.3f | %12.0f %10.3f %10.3f | %6.2fx\n",
                size.label, s.throughput_rps, s.mean_ms(), s.p99_ms(),
                n.throughput_rps, n.mean_ms(), n.p99_ms(), ratio);
    if (s.errors || n.errors) {
      std::printf("         (errors: sledge=%llu procfaas=%llu)\n",
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(n.errors));
    }
  }

  std::printf("\nPaper (Fig. 7): ~2.8x at 1KB/10KB, gap closes toward 1MB as "
              "data copying dominates.\n");
  sledge_rt->stop();
  baseline->stop();
  return 0;
}
