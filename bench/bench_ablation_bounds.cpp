// Ablation (google-benchmark): per-access cost of the four bounds-check
// strategies on a memory-intensive kernel, plus sandbox-instantiation cost
// per strategy. This isolates the mechanism behind Figure 5's
// aWsm / bounds-chk / mpx spread.
#include <benchmark/benchmark.h>

#include "apps/workloads.hpp"
#include "engine/engine.hpp"
#include "minicc/minicc.hpp"

using namespace sledge;

namespace {

// Memory-heavy kernel: every loop iteration is a load+store.
const char* kMemKernel = R"(
int A[16384];
int main() {
  for (int i = 0; i < 16384; i++) A[i] = i;
  int sum = 0;
  for (int r = 0; r < 40; r++)
    for (int i = 0; i < 16384; i++)
      sum += A[(i * 7 + r) & 16383];
  return sum;
}
)";

engine::WasmModule* module_for(engine::BoundsStrategy strategy) {
  static std::map<engine::BoundsStrategy,
                  std::unique_ptr<engine::WasmModule>> cache;
  auto it = cache.find(strategy);
  if (it != cache.end()) return it->second.get();
  auto wasm = minicc::compile_to_wasm(kMemKernel);
  if (!wasm.ok()) return nullptr;
  engine::WasmModule::Config cfg;
  cfg.tier = engine::Tier::kAot;
  cfg.strategy = strategy;
  auto mod = engine::WasmModule::load(wasm.value(), cfg);
  if (!mod.ok()) return nullptr;
  auto owned = std::make_unique<engine::WasmModule>(mod.take());
  engine::WasmModule* raw = owned.get();
  cache[strategy] = std::move(owned);
  return raw;
}

void BM_MemKernel(benchmark::State& state) {
  auto strategy = static_cast<engine::BoundsStrategy>(state.range(0));
  engine::WasmModule* mod = module_for(strategy);
  if (!mod) {
    state.SkipWithError("module load failed");
    return;
  }
  auto sandbox = mod->instantiate();
  if (!sandbox.ok()) {
    state.SkipWithError("instantiate failed");
    return;
  }
  for (auto _ : state) {
    auto out = sandbox->call("run", {});
    if (!out.ok()) {
      state.SkipWithError("trap");
      return;
    }
    benchmark::DoNotOptimize(out.value->as_i32());
  }
  state.SetLabel(engine::to_string(strategy));
}

void BM_Instantiate(benchmark::State& state) {
  auto strategy = static_cast<engine::BoundsStrategy>(state.range(0));
  engine::WasmModule* mod = module_for(strategy);
  if (!mod) {
    state.SkipWithError("module load failed");
    return;
  }
  for (auto _ : state) {
    auto sandbox = mod->instantiate();
    benchmark::DoNotOptimize(sandbox.ok());
  }
  state.SetLabel(engine::to_string(strategy));
}

}  // namespace

BENCHMARK(BM_MemKernel)
    ->Arg(static_cast<int>(engine::BoundsStrategy::kNone))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kVmGuard))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kSoftware))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kMpxSim))
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Instantiate)
    ->Arg(static_cast<int>(engine::BoundsStrategy::kNone))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kVmGuard))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kSoftware))
    ->Arg(static_cast<int>(engine::BoundsStrategy::kMpxSim))
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
