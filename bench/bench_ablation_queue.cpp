// Ablation: work-distribution structure (DESIGN.md design-choice index).
// The same ping workload is pushed through the three Distributor policies:
//   work_stealing — lock-free Chase-Lev deque (the paper's design)
//   global_lock   — single mutex-protected FIFO
//   per_worker    — static round-robin, no stealing (not work-conserving)
// On a large machine the deque's scalability dominates; on this host the
// observable effect is lock-contention overhead and, for per_worker,
// head-of-line blocking under skewed service times.
#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Ablation: work-distribution policy", "DESIGN.md ablation");

  const uint64_t reqs = static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 1500));
  const int conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 20));

  auto ping = apps::app_wasm("ping");
  auto cifar = apps::app_wasm("cifar10");
  if (!ping.ok() || !cifar.ok()) return 1;

  std::printf("%-15s | %12s %10s %10s | %10s\n", "policy", "ping r/s",
              "avg ms", "p99 ms", "mix p99 ms");

  for (runtime::DistPolicy policy :
       {runtime::DistPolicy::kWorkStealing, runtime::DistPolicy::kGlobalLock,
        runtime::DistPolicy::kPerWorker}) {
    runtime::RuntimeConfig cfg;
    cfg.workers = 3;
    cfg.policy = policy;
    runtime::Runtime rt(cfg);
    if (!rt.register_module("ping", ping.value()).is_ok()) return 1;
    if (!rt.register_module("cifar10", cifar.value()).is_ok()) return 1;
    if (!rt.start().is_ok()) return 1;

    auto uniform = drive(rt.bound_port(), "/ping", {}, conc, reqs);

    // Skewed mix: long cifar10 requests interleaved with pings — the
    // non-work-conserving policy should show inflated ping tails.
    loadgen::Report mix_ping;
    {
      std::thread heavy([&] {
        drive(rt.bound_port(), "/cifar10", apps::app_request("cifar10"), 4,
              60);
      });
      mix_ping = drive(rt.bound_port(), "/ping", {}, 4, 400);
      heavy.join();
    }

    std::printf("%-15s | %12.0f %10.3f %10.3f | %10.3f\n",
                to_string(policy), uniform.throughput_rps, uniform.mean_ms(),
                uniform.p99_ms(), mix_ping.p99_ms());
    rt.stop();
  }

  std::printf("\nExpected shape: work_stealing >= global_lock on throughput "
              "(gap grows with cores); per_worker shows the worst skewed-mix "
              "p99 (no work conservation).\n");
  return 0;
}
