// Ablation: scheduling quantum (paper §4: "the time slice in scheduling has
// strong control over sandboxing preemptions and scheduling overheads").
// A long-running spin function shares one worker with latency-sensitive
// pings; we sweep the round-robin quantum and report ping latency and the
// preemption count, including a cooperative-only (no preemption) row.
#include <thread>

#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

const char* kSpinSrc = R"(
char out[1];
int main() {
  double x = 1.0;
  for (int i = 0; i < 80000000; i++) { x += 0.5; if (x > 1e16) x = 1.0; }
  out[0] = 115;
  resp_write(out, 1);
  return (int)x;
}
)";

}  // namespace

int main() {
  print_header("Ablation: preemption quantum vs short-function latency",
               "paper 4 (scheduling time slice)");

  auto ping = apps::app_wasm("ping");
  auto spin = minicc::compile_to_wasm(kSpinSrc);
  if (!ping.ok() || !spin.ok()) return 1;

  std::printf("%-14s | %10s %10s | %12s\n", "quantum", "ping avg", "ping p99",
              "preemptions");

  struct Config {
    const char* label;
    uint64_t quantum_us;
    bool preemption;
  };
  const Config kConfigs[] = {
      {"1ms", 1000, true},
      {"5ms (paper)", 5000, true},
      {"20ms", 20000, true},
      {"cooperative", 5000, false},
  };

  for (const Config& c : kConfigs) {
    runtime::RuntimeConfig cfg;
    cfg.workers = 1;
    cfg.quantum_us = c.quantum_us;
    cfg.preemption = c.preemption;
    runtime::Runtime rt(cfg);
    if (!rt.register_module("ping", ping.value()).is_ok()) return 1;
    if (!rt.register_module("spin", spin.value()).is_ok()) return 1;
    if (!rt.start().is_ok()) return 1;

    // Keep one spin request in flight while measuring pings.
    std::atomic<bool> stop_spinner{false};
    std::thread spinner([&] {
      while (!stop_spinner.load()) {
        (void)loadgen::single_request("127.0.0.1", rt.bound_port(), "/spin",
                                      {});
      }
    });
    ::usleep(50000);

    loadgen::Options opt;
    opt.port = rt.bound_port();
    opt.path = "/ping";
    opt.concurrency = 1;
    opt.total_requests = 30;
    opt.expect_body = {'p'};
    auto report = loadgen::run_load(opt);

    stop_spinner.store(true);
    spinner.join();
    auto totals = rt.totals();
    rt.stop();

    if (!report.ok()) {
      std::printf("%-14s | loadgen error\n", c.label);
      continue;
    }
    std::printf("%-14s | %8.2fms %8.2fms | %12llu\n", c.label,
                report->mean_ms(), report->p99_ms(),
                static_cast<unsigned long long>(totals.preemptions));
  }

  std::printf("\nExpected shape: ping latency tracks the quantum; the "
              "cooperative row starves pings for the spin function's whole "
              "runtime (hundreds of ms) — the paper's case for preemptive "
              "scheduling of untrusted multi-tenant functions.\n");
  return 0;
}
