// §5.2 text experiment: "We additionally run experiments (not shown) with
// CPU-bound functions of various computation times. As functions become
// increasingly CPU-bound, the performance of Sledge gets closer to Nuclio."
//
// A spin function parameterized by its request (number of kilo-iterations)
// sweeps from ~microseconds to ~tens of milliseconds of compute; the
// Sledge-vs-procfaas throughput ratio must decay toward 1 as the
// per-invocation framework overhead is amortized away.
#include <unistd.h>

#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("CPU-bound function sweep: framework overhead amortization",
               "paper 5.2 text (experiment not shown)");

  const uint64_t base_reqs =
      static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 200));
  const int conc = static_cast<int>(env_long("SLEDGE_BENCH_CONC", 8));

  // "spin" is shipped as an app-like source here: request = kiloiters (i32).
  const char* kSpinSrc = R"(
char out[1];
int main() {
  int kiloiters = req_i32(0);
  double x = 1.0;
  for (int k = 0; k < kiloiters; k++)
    for (int i = 0; i < 1000; i++) { x += 0.5; if (x > 1e16) x = 1.0; }
  out[0] = 115;
  resp_write(out, 1);
  return (int)x;
}
)";

  auto wasm = minicc::compile_to_wasm(kSpinSrc);
  if (!wasm.ok()) {
    std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
    return 1;
  }

  runtime::RuntimeConfig scfg;
  scfg.workers = 3;
  runtime::Runtime rt(scfg);
  if (!rt.register_module("spin", wasm.value()).is_ok() ||
      !rt.start().is_ok()) {
    return 1;
  }

  // The native twin for the baseline: a fn binary equivalent is not shipped,
  // so reuse fn_fib-style spin via the generated native backend is overkill;
  // procfaas runs the same Wasm-equivalent natively through fn_echo? No —
  // fork+exec the natively compiled spin produced at runtime.
  auto c = minicc::compile_to_c(kSpinSrc, "spin_");
  if (!c.ok()) return 1;
  std::string full = *c + R"(
#include <unistd.h>
#include <stdio.h>
static unsigned char g_req[64]; static int g_len = 0;
static unsigned char g_resp[64]; static int g_rlen = 0;
int32_t mc_req_len(void){ return g_len; }
int32_t mc_req_read(void* d, int32_t o, int32_t l){ (void)d;(void)o;(void)l; return 0; }
int32_t mc_resp_write(const void* s, int32_t l){ for (int i=0;i<l&&g_rlen<64;i++) g_resp[g_rlen++]=((const unsigned char*)s)[i]; return l; }
void mc_sleep_ms(int32_t m){(void)m;}
void mc_debug_i32(int32_t v){(void)v;}
double mc_req_f64(int32_t o){(void)o;return 0;}
void mc_resp_f64(double v){(void)v;}
int32_t mc_req_i32(int32_t o){ int32_t v=0; if (o>=0 && o+4<=g_len) __builtin_memcpy(&v, g_req+o, 4); return v; }
void mc_resp_i32(int32_t v){(void)v;}
int main(void){
  g_len = (int)read(0, g_req, sizeof(g_req));
  spin_main();
  (void)!write(1, g_resp, (size_t)g_rlen);
  return 0;
}
)";
  // Build the standalone native spin binary for fork+exec.
  engine::CcOptions cc;
  cc.opt_level = 2;
  auto so = engine::compile_c_to_so(full, cc);
  if (!so.ok()) {
    std::fprintf(stderr, "%s\n", so.error_message().c_str());
    return 1;
  }
  // compile_c_to_so produced a shared object; relink as an executable.
  std::string bin = so->work_dir + "/spin_bin";
  {
    std::string cmd = "cc -O2 -fno-math-errno -w -o " + bin + " " +
                      so->work_dir + "/module.c -lm 2>/dev/null";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "native spin build failed\n");
      return 1;
    }
  }

  procfaas::ProcFaasConfig pcfg;
  pcfg.max_workers = 16;
  procfaas::ProcFaas pf(pcfg);
  if (!pf.register_function("spin", bin).is_ok() || !pf.start().is_ok()) {
    return 1;
  }

  std::printf("%-10s | %12s %10s | %12s %10s | %7s\n", "kiloiters",
              "sledge r/s", "avg ms", "procfs r/s", "avg ms", "ratio");

  for (int kiloiters : {1, 10, 100, 1000, 5000}) {
    std::vector<uint8_t> body(4);
    std::memcpy(body.data(), &kiloiters, 4);
    uint64_t reqs = base_reqs;
    if (kiloiters >= 1000) reqs = base_reqs / 5 + 4;
    auto s = drive(rt.bound_port(), "/spin", body, conc, reqs);
    auto n = drive(pf.bound_port(), "/spin", body, conc, reqs);
    double ratio =
        n.throughput_rps > 0 ? s.throughput_rps / n.throughput_rps : 0;
    std::printf("%-10d | %12.1f %10.3f | %12.1f %10.3f | %6.2fx\n",
                kiloiters, s.throughput_rps, s.mean_ms(), n.throughput_rps,
                n.mean_ms(), ratio);
  }

  std::printf("\nExpected shape: the ratio decays toward 1 as per-request "
              "compute grows — framework overhead (Sledge's advantage) "
              "amortizes away, the paper's stated result.\n");
  rt.stop();
  pf.stop();
  engine::remove_work_dir(*so);
  ::unlink(bin.c_str());
  return 0;
}
