// Table 3: function churn — the cost of bringing up one invocation of
// GPS-EKF:
//   * Sledge sandbox: allocate linear memory + stack + context, run,
//     teardown (the paper's "optimized function startup"), and
//   * fork + exec + wait of the equivalent native function binary (the
//     Nuclio-model per-invocation cost).
// Reports avg and p99 over SLEDGE_BENCH_ITERS iterations (default 300;
// paper used 10k), plus the creation-only component.
#include "bench_util.hpp"
#include "procfaas/procfaas.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Churn: Sledge sandbox vs fork+exec+wait (GPS-EKF)", "Table 3");

  const int iters = static_cast<int>(env_long("SLEDGE_BENCH_ITERS", 300));
  std::vector<uint8_t> request = apps::app_request("ekf");

  auto wasm = apps::app_wasm("ekf");
  if (!wasm.ok()) {
    std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
    return 1;
  }
  engine::WasmModule::Config cfg;  // kAot + vm_guard
  auto mod = engine::WasmModule::load(wasm.value(), cfg);
  if (!mod.ok()) {
    std::fprintf(stderr, "%s\n", mod.error_message().c_str());
    return 1;
  }

  // Warm both paths.
  {
    auto sb = runtime::Sandbox::create(&mod.value(), request);
    runtime::run_sandbox_inline(sb.get());
    std::vector<uint8_t> resp;
    procfaas::spawn_function_process(fn_path("ekf"), request, &resp);
  }

  LatencyHistogram create_only, sandbox_full, fork_exec;

  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    auto sb = runtime::Sandbox::create(&mod.value(), request);
    create_only.record(sw.elapsed_ns());
    if (!sb) return 1;
    runtime::run_sandbox_inline(sb.get());
    sb.reset();  // teardown included
    sandbox_full.record(sw.elapsed_ns());
  }

  for (int i = 0; i < iters; ++i) {
    std::vector<uint8_t> resp;
    Stopwatch sw;
    if (!procfaas::spawn_function_process(fn_path("ekf"), request, &resp)) {
      std::fprintf(stderr, "fork+exec failed at iteration %d\n", i);
      return 1;
    }
    fork_exec.record(sw.elapsed_ns());
  }

  std::printf("%-36s %12s %12s\n", "", "Avg", "99%");
  std::printf("%-36s %10.1fus %10.1fus\n", "Sledge sandbox create only",
              create_only.mean_us(), create_only.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n",
              "Sledge sandbox create+run+teardown", sandbox_full.mean_us(),
              sandbox_full.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "fork + exec + wait (native)",
              fork_exec.mean_us(), fork_exec.p99_us());
  std::printf("%-36s %11.2fx %11.2fx\n", "fork+exec / sandbox ratio",
              fork_exec.mean_us() / sandbox_full.mean_us(),
              static_cast<double>(fork_exec.percentile_ns(0.99)) /
                  sandbox_full.percentile_ns(0.99));

  std::printf("\nPaper (Table 3): Sledge sandbox 61us avg / 146us p99; "
              "fork+exec+wait 487us avg / 588us p99 (~8x avg).\n");
  return 0;
}
