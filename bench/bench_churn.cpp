// Table 3: function churn — the cost of bringing up one invocation of
// GPS-EKF:
//   * Sledge sandbox: allocate linear memory + stack + context, run,
//     teardown (the paper's "optimized function startup"), and
//   * fork + exec + wait of the equivalent native function binary (the
//     Nuclio-model per-invocation cost).
// Reports avg and p99 over SLEDGE_BENCH_ITERS iterations (default 300;
// paper used 10k), plus the creation-only component.
//
// --smoke: instead of the fork+exec comparison, measure sandbox creation
// with the resource pool disabled (cold) and enabled (warm) in this one
// binary and fail (exit 1) unless warm p50 < cold p50. CI-sized pool
// acceptance check.
#include <cstring>

#include "bench_util.hpp"
#include "procfaas/procfaas.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

// One cold-or-warm measurement pass: reconfigure + drain the process-wide
// pool, warm unrelated caches with a throwaway request, then time
// Sandbox::create over `iters` full create/run/teardown cycles (teardown is
// what refills the free lists between pooled iterations).
bool measure_create(const engine::WasmModule* mod,
                    const std::vector<uint8_t>& request, int iters,
                    bool pool_enabled, LatencyHistogram* create_only) {
  auto& pool = runtime::SandboxResourcePool::instance();
  runtime::SandboxResourcePool::Config pc;
  pc.enabled = pool_enabled;
  pool.configure(pc);
  pool.purge();
  pool.reset_counters();
  {
    auto sb = runtime::Sandbox::create(mod, request);
    if (!sb) return false;
    runtime::run_sandbox_inline(sb.get());
  }
  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    auto sb = runtime::Sandbox::create(mod, request);
    uint64_t create_ns = sw.elapsed_ns();
    if (!sb) return false;
    create_only->record(create_ns);
    runtime::run_sandbox_inline(sb.get());
  }
  return true;
}

int run_smoke(const engine::WasmModule* mod,
              const std::vector<uint8_t>& request, int iters) {
  LatencyHistogram cold, warm;
  if (!measure_create(mod, request, iters, /*pool_enabled=*/false, &cold) ||
      !measure_create(mod, request, iters, /*pool_enabled=*/true, &warm)) {
    std::fprintf(stderr, "sandbox creation failed\n");
    return 1;
  }
  auto& pool = runtime::SandboxResourcePool::instance();
  runtime::SandboxResourcePool::Counters c = pool.counters();
  pool.purge();

  auto p50_us = [](const LatencyHistogram& h) {
    return static_cast<double>(h.percentile_ns(0.5)) / 1000.0;
  };
  std::printf("%-36s %12s %12s\n", "", "50%", "99%");
  std::printf("%-36s %10.1fus %10.1fus\n", "create, pool disabled (cold)",
              p50_us(cold), cold.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "create, pool enabled (warm)",
              p50_us(warm), warm.p99_us());
  std::printf("%-36s %11.2fx\n", "cold / warm p50 ratio",
              p50_us(cold) / p50_us(warm));
  std::printf("warm pass pool counters: mem hit/miss=%llu/%llu "
              "stack hit/miss=%llu/%llu\n",
              static_cast<unsigned long long>(c.memory_hits),
              static_cast<unsigned long long>(c.memory_misses),
              static_cast<unsigned long long>(c.stack_hits),
              static_cast<unsigned long long>(c.stack_misses));

  if (p50_us(warm) >= p50_us(cold)) {
    std::fprintf(stderr,
                 "FAIL: pooled create p50 (%.1fus) not below cold p50 "
                 "(%.1fus)\n",
                 p50_us(warm), p50_us(cold));
    return 1;
  }
  std::printf("PASS: pooled create p50 below cold p50\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header(smoke ? "Churn smoke: pooled vs cold sandbox startup (GPS-EKF)"
                     : "Churn: Sledge sandbox vs fork+exec+wait (GPS-EKF)",
               "Table 3");

  const int iters = static_cast<int>(env_long("SLEDGE_BENCH_ITERS", 300));
  std::vector<uint8_t> request = apps::app_request("ekf");

  auto wasm = apps::app_wasm("ekf");
  if (!wasm.ok()) {
    std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
    return 1;
  }
  engine::WasmModule::Config cfg;  // kAot + vm_guard
  auto mod = engine::WasmModule::load(wasm.value(), cfg);
  if (!mod.ok()) {
    std::fprintf(stderr, "%s\n", mod.error_message().c_str());
    return 1;
  }

  if (smoke) return run_smoke(&mod.value(), request, iters);

  // Warm both paths.
  {
    auto sb = runtime::Sandbox::create(&mod.value(), request);
    runtime::run_sandbox_inline(sb.get());
    std::vector<uint8_t> resp;
    procfaas::spawn_function_process(fn_path("ekf"), request, &resp);
  }

  LatencyHistogram create_only, sandbox_full, fork_exec;

  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    auto sb = runtime::Sandbox::create(&mod.value(), request);
    create_only.record(sw.elapsed_ns());
    if (!sb) return 1;
    runtime::run_sandbox_inline(sb.get());
    sb.reset();  // teardown included
    sandbox_full.record(sw.elapsed_ns());
  }

  for (int i = 0; i < iters; ++i) {
    std::vector<uint8_t> resp;
    Stopwatch sw;
    if (!procfaas::spawn_function_process(fn_path("ekf"), request, &resp)) {
      std::fprintf(stderr, "fork+exec failed at iteration %d\n", i);
      return 1;
    }
    fork_exec.record(sw.elapsed_ns());
  }

  std::printf("%-36s %12s %12s\n", "", "Avg", "99%");
  std::printf("%-36s %10.1fus %10.1fus\n", "Sledge sandbox create only",
              create_only.mean_us(), create_only.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n",
              "Sledge sandbox create+run+teardown", sandbox_full.mean_us(),
              sandbox_full.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "fork + exec + wait (native)",
              fork_exec.mean_us(), fork_exec.p99_us());
  std::printf("%-36s %11.2fx %11.2fx\n", "fork+exec / sandbox ratio",
              fork_exec.mean_us() / sandbox_full.mean_us(),
              static_cast<double>(fork_exec.percentile_ns(0.99)) /
                  sandbox_full.percentile_ns(0.99));

  std::printf("\nPaper (Table 3): Sledge sandbox 61us avg / 146us p99; "
              "fork+exec+wait 487us avg / 588us p99 (~8x avg).\n");
  return 0;
}
