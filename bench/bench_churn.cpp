// Table 3: function churn — the cost of bringing up one invocation of
// GPS-EKF:
//   * Sledge sandbox: allocate linear memory + stack + context, run,
//     teardown (the paper's "optimized function startup"), and
//   * fork + exec + wait of the equivalent native function binary (the
//     Nuclio-model per-invocation cost).
// Reports avg and p99 over SLEDGE_BENCH_ITERS iterations (default 300;
// paper used 10k), plus the creation-only component — for each of the
// three instantiation tiers:
//   cold     fresh mmap reservation per sandbox (resource pool bypassed)
//   pooled   recycled reservation from the sandbox resource pool
//   snapshot pooled reservation + MAP_PRIVATE mmap of the sealed memfd
//            template (post-start image materializes copy-on-write; no
//            zeroing, no data-segment copies, no start function)
// Emits BENCH_churn.json (override path with SLEDGE_BENCH_OUT).
//
// --smoke: measure just the three creation tiers at reduced iterations and
// fail (exit 1) unless snapshot p50 < pooled p50 < cold p50. CI-sized
// acceptance gate for the snapshot/COW subsystem (scripts/check.sh).
#include <cstring>

#include "bench_util.hpp"
#include "procfaas/procfaas.hpp"
#include "sledge/runtime.hpp"
#include "sledge/snapshot.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

// One per-tier measurement pass: reconfigure + drain the process-wide pool,
// warm unrelated caches with a throwaway request (which also builds the
// snapshot template on the snapshot tier), then time Sandbox::create over
// `iters` full create/run/teardown cycles (teardown is what refills the
// free lists between pooled iterations).
bool measure_create(const engine::WasmModule* mod,
                    const std::vector<uint8_t>& request, int iters,
                    runtime::InstantiationMode mode, bool pool_enabled,
                    LatencyHistogram* create_only) {
  auto& pool = runtime::SandboxResourcePool::instance();
  runtime::SandboxResourcePool::Config pc;
  pc.enabled = pool_enabled;
  pool.configure(pc);
  pool.purge();
  pool.reset_counters();
  {
    auto sb = runtime::Sandbox::create(mod, request, -1, false, mode);
    if (!sb) return false;
    runtime::run_sandbox_inline(sb.get());
  }
  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    auto sb = runtime::Sandbox::create(mod, request, -1, false, mode);
    uint64_t create_ns = sw.elapsed_ns();
    if (!sb) return false;
    create_only->record(create_ns);
    runtime::run_sandbox_inline(sb.get());
  }
  return true;
}

struct Tiers {
  LatencyHistogram cold, pooled, snapshot;
};

// Cold runs with the pool disabled AND the cold mode (fresh reservation,
// fresh stack); pooled/snapshot run with the pool enabled so recycled
// reservations are what get measured.
bool measure_tiers(const engine::WasmModule* mod,
                   const std::vector<uint8_t>& request, int iters, Tiers* t) {
  using runtime::InstantiationMode;
  runtime::SnapshotRegistry::instance().reset_counters();
  return measure_create(mod, request, iters, InstantiationMode::kCold,
                        /*pool_enabled=*/false, &t->cold) &&
         measure_create(mod, request, iters, InstantiationMode::kPooled,
                        /*pool_enabled=*/true, &t->pooled) &&
         measure_create(mod, request, iters, InstantiationMode::kSnapshot,
                        /*pool_enabled=*/true, &t->snapshot);
}

double p50_us(const LatencyHistogram& h) {
  return static_cast<double>(h.percentile_ns(0.5)) / 1000.0;
}

void print_tiers(const Tiers& t) {
  std::printf("%-36s %12s %12s\n", "", "50%", "99%");
  std::printf("%-36s %10.1fus %10.1fus\n", "create, cold (fresh mmap)",
              p50_us(t.cold), t.cold.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "create, pooled (recycled rsv)",
              p50_us(t.pooled), t.pooled.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "create, snapshot (COW template)",
              p50_us(t.snapshot), t.snapshot.p99_us());
  std::printf("%-36s %11.2fx\n", "cold / pooled p50 ratio",
              p50_us(t.cold) / p50_us(t.pooled));
  std::printf("%-36s %11.2fx\n", "pooled / snapshot p50 ratio",
              p50_us(t.pooled) / p50_us(t.snapshot));
  const runtime::SnapshotRegistry::Counters sc =
      runtime::SnapshotRegistry::instance().counters();
  std::printf("snapshot registry: hits=%llu misses=%llu builds=%llu "
              "failures=%llu\n",
              static_cast<unsigned long long>(sc.hits),
              static_cast<unsigned long long>(sc.misses),
              static_cast<unsigned long long>(sc.builds),
              static_cast<unsigned long long>(sc.build_failures));
}

bool write_json(const Tiers& t, int iters, const LatencyHistogram* fork_exec) {
  const char* out_path = std::getenv("SLEDGE_BENCH_OUT");
  if (!out_path || !out_path[0]) out_path = "BENCH_churn.json";
  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return false;
  }
  auto tier = [&](const char* name, const LatencyHistogram& h,
                  const char* trail) {
    std::fprintf(f,
                 "    {\"tier\": \"%s\", \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"mean_us\": %.2f}%s\n",
                 name, p50_us(h), h.p99_us(), h.mean_us(), trail);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"churn\",\n"
               "  \"workload\": {\"app\": \"ekf\", \"iters\": %d},\n"
               "  \"tiers\": [\n",
               iters);
  tier("cold", t.cold, ",");
  tier("pooled", t.pooled, ",");
  tier("snapshot", t.snapshot, fork_exec ? "," : "");
  if (fork_exec) tier("fork_exec_native", *fork_exec, "");
  std::fprintf(f,
               "  ],\n  \"headline\": {\"cold_over_pooled_p50\": %.3f, "
               "\"pooled_over_snapshot_p50\": %.3f, "
               "\"cold_over_snapshot_p50\": %.3f}\n}\n",
               p50_us(t.cold) / p50_us(t.pooled),
               p50_us(t.pooled) / p50_us(t.snapshot),
               p50_us(t.cold) / p50_us(t.snapshot));
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return true;
}

// The CI gate: the tiers must actually be ordered, or the subsystem is not
// earning its keep.
int check_ordering(const Tiers& t) {
  if (p50_us(t.snapshot) >= p50_us(t.pooled)) {
    std::fprintf(stderr,
                 "FAIL: snapshot create p50 (%.1fus) not below pooled p50 "
                 "(%.1fus)\n",
                 p50_us(t.snapshot), p50_us(t.pooled));
    return 1;
  }
  if (p50_us(t.pooled) >= p50_us(t.cold)) {
    std::fprintf(stderr,
                 "FAIL: pooled create p50 (%.1fus) not below cold p50 "
                 "(%.1fus)\n",
                 p50_us(t.pooled), p50_us(t.cold));
    return 1;
  }
  std::printf("PASS: snapshot p50 < pooled p50 < cold p50\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header(
      smoke ? "Churn smoke: cold vs pooled vs snapshot startup (GPS-EKF)"
            : "Churn: Sledge sandbox vs fork+exec+wait (GPS-EKF)",
      "Table 3");

  const int iters = static_cast<int>(env_long("SLEDGE_BENCH_ITERS", 300));
  std::vector<uint8_t> request = apps::app_request("ekf");

  auto wasm = apps::app_wasm("ekf");
  if (!wasm.ok()) {
    std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
    return 1;
  }
  engine::WasmModule::Config cfg;  // kAot + vm_guard
  auto mod = engine::WasmModule::load(wasm.value(), cfg);
  if (!mod.ok()) {
    std::fprintf(stderr, "%s\n", mod.error_message().c_str());
    return 1;
  }

  Tiers tiers;
  if (!measure_tiers(&mod.value(), request, iters, &tiers)) {
    std::fprintf(stderr, "sandbox creation failed\n");
    return 1;
  }
  print_tiers(tiers);

  if (smoke) {
    int rc = check_ordering(tiers);
    if (rc == 0 && !write_json(tiers, iters, nullptr)) rc = 1;
    runtime::SandboxResourcePool::instance().purge();
    runtime::SnapshotRegistry::instance().clear();
    return rc;
  }

  // Full mode: add the fork+exec+wait comparison (the per-invocation
  // process-isolation baseline) and the create+run+teardown cycle time.
  {
    std::vector<uint8_t> resp;
    procfaas::spawn_function_process(fn_path("ekf"), request, &resp);
  }

  LatencyHistogram sandbox_full, fork_exec;
  for (int i = 0; i < iters; ++i) {
    Stopwatch sw;
    auto sb = runtime::Sandbox::create(&mod.value(), request, -1, false,
                                       runtime::InstantiationMode::kSnapshot);
    if (!sb) return 1;
    runtime::run_sandbox_inline(sb.get());
    sb.reset();  // teardown included
    sandbox_full.record(sw.elapsed_ns());
  }
  for (int i = 0; i < iters; ++i) {
    std::vector<uint8_t> resp;
    Stopwatch sw;
    if (!procfaas::spawn_function_process(fn_path("ekf"), request, &resp)) {
      std::fprintf(stderr, "fork+exec failed at iteration %d\n", i);
      return 1;
    }
    fork_exec.record(sw.elapsed_ns());
  }

  std::printf("%-36s %12s %12s\n", "", "Avg", "99%");
  std::printf("%-36s %10.1fus %10.1fus\n",
              "Sledge create+run+teardown (snap)", sandbox_full.mean_us(),
              sandbox_full.p99_us());
  std::printf("%-36s %10.1fus %10.1fus\n", "fork + exec + wait (native)",
              fork_exec.mean_us(), fork_exec.p99_us());
  std::printf("%-36s %11.2fx %11.2fx\n", "fork+exec / sandbox ratio",
              fork_exec.mean_us() / sandbox_full.mean_us(),
              static_cast<double>(fork_exec.percentile_ns(0.99)) /
                  sandbox_full.percentile_ns(0.99));

  std::printf("\nPaper (Table 3): Sledge sandbox 61us avg / 146us p99; "
              "fork+exec+wait 487us avg / 588us p99 (~8x avg).\n");

  int rc = check_ordering(tiers);
  if (!write_json(tiers, iters, &fork_exec)) rc = 1;
  runtime::SandboxResourcePool::instance().purge();
  runtime::SnapshotRegistry::instance().clear();
  return rc;
}
