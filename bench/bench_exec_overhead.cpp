// Table 2: raw execution time of the real-world functions — native build vs
// Wasm-in-Sledge (AoT, vm_guard) — outside any serverless framework.
// Reports avg and p99 plus the normalized Wasm/native ratio.
//
// Iterations: SLEDGE_BENCH_ITERS (default 200, adaptively reduced for the
// heavy apps; the paper used 1k).
#include "apps/native_host.hpp"
#include "bench_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Execution time: native vs Wasm-in-Sledge", "Table 2");

  const int base_iters = static_cast<int>(env_long("SLEDGE_BENCH_ITERS", 200));

  std::printf("%-10s | %12s %12s | %12s %12s | %8s %8s\n", "app",
              "native avg", "native p99", "sledge avg", "sledge p99",
              "avg(x)", "p99(x)");

  for (const std::string& app : apps::app_names()) {
    auto src = apps::load_app_source(app);
    if (!src.ok()) continue;
    std::vector<uint8_t> request = apps::app_request(app);

    NativeProgram* native = NativeProgram::load(*src, app + "_x_");
    if (!native) continue;

    auto wasm = minicc::compile_to_wasm(*src);
    if (!wasm.ok()) {
      delete native;
      continue;
    }
    engine::WasmModule::Config cfg;  // defaults: kAot + vm_guard
    auto mod = engine::WasmModule::load(wasm.value(), cfg);
    if (!mod.ok()) {
      delete native;
      continue;
    }

    int iters = base_iters;
    if (app == "lpd" || app == "resize") iters = base_iters / 4 + 1;

    // Native timing (request injected through the mc_* host).
    LatencyHistogram native_hist;
    apps::native_host_set_request(request);
    native->run();  // warm
    for (int i = 0; i < iters; ++i) {
      apps::native_host_set_request(request);
      Stopwatch sw;
      native->run();
      native_hist.record(sw.elapsed_ns());
    }

    // Wasm timing: one sandbox per request (Sledge's execution model), but
    // timing only the function execution like the paper's Table 2.
    LatencyHistogram wasm_hist;
    {
      auto warm = mod->instantiate();
      if (warm.ok()) {
        std::vector<uint8_t> resp;
        warm->run_serverless(request, &resp);
      }
    }
    for (int i = 0; i < iters; ++i) {
      auto sandbox = mod->instantiate();
      if (!sandbox.ok()) break;
      std::vector<uint8_t> resp;
      Stopwatch sw;
      sandbox->run_serverless(request, &resp);
      wasm_hist.record(sw.elapsed_ns());
    }

    auto fmt_time = [](double us) {
      static char buf[8][32];
      static int slot = 0;
      char* b = buf[slot++ & 7];
      if (us < 1000) {
        std::snprintf(b, 32, "%.1fus", us);
      } else {
        std::snprintf(b, 32, "%.2fms", us / 1000.0);
      }
      return b;
    };

    double n_avg = native_hist.mean_us(), n_p99 = native_hist.p99_us();
    double w_avg = wasm_hist.mean_us(), w_p99 = wasm_hist.p99_us();
    std::printf("%-10s | %12s %12s | %12s %12s | %7.2fx %7.2fx\n", app.c_str(),
                fmt_time(n_avg), fmt_time(n_p99), fmt_time(w_avg),
                fmt_time(w_p99), w_avg / n_avg, w_p99 / n_p99);
    delete native;
  }

  std::printf("\nPaper (Table 2): GPS-EKF 1.09x, GOCR 1.48x, CIFAR10 1.49x, "
              "RESIZE 1.46x, LPD 1.83x (Wasm vs native).\n");
  return 0;
}
