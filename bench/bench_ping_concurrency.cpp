// Figure 6: throughput and average/p99 latency of a ping function with
// varying client concurrency — Sledge vs the procfaas (Nuclio-model)
// baseline.
//
// Request count per point: SLEDGE_BENCH_REQS (default 1000; the paper used
// 10k). Absolute numbers reflect this single-core host; the Sledge-vs-
// baseline ratio is the reproduction target (paper: ~3x).
#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

int main() {
  print_header("Ping throughput/latency vs concurrency (Sledge vs procfaas)",
               "Figure 6");

  const uint64_t reqs = static_cast<uint64_t>(env_long("SLEDGE_BENCH_REQS", 1000));
  auto sledge_rt = start_sledge({"ping"});
  auto baseline = start_procfaas({"ping"});
  if (!sledge_rt || !baseline) return 1;

  std::printf("%-6s | %12s %10s %10s | %12s %10s %10s | %7s\n", "conc",
              "sledge r/s", "avg ms", "p99 ms", "procfs r/s", "avg ms",
              "p99 ms", "ratio");

  for (int conc : {1, 5, 10, 20, 40, 60, 80, 100}) {
    auto s = drive(sledge_rt->bound_port(), "/ping", {}, conc, reqs);
    auto n = drive(baseline->bound_port(), "/ping", {}, conc, reqs);
    double ratio = n.throughput_rps > 0 ? s.throughput_rps / n.throughput_rps
                                        : 0;
    std::printf("%-6d | %12.0f %10.3f %10.3f | %12.0f %10.3f %10.3f | %6.2fx\n",
                conc, s.throughput_rps, s.mean_ms(), s.p99_ms(),
                n.throughput_rps, n.mean_ms(), n.p99_ms(), ratio);
    if (s.errors || n.errors) {
      std::printf("       (errors: sledge=%llu procfaas=%llu)\n",
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(n.errors));
    }
  }

  std::printf("\nPaper (Fig. 6): Sledge ~3x the throughput of Nuclio and "
              "markedly lower avg/p99 latency across all concurrency "
              "levels.\n");
  sledge_rt->stop();
  baseline->stop();
  return 0;
}
