// Figure 6: throughput and average/p99 latency of a ping function with
// varying client concurrency — Sledge vs the procfaas (Nuclio-model)
// baseline — plus the listener-shard saturation bench (BENCH_listener.json):
// an epoll client holding thousands of concurrent keep-alive connections
// against num_listeners=1 vs num_listeners=4, the canonical workload for the
// SO_REUSEPORT front-door split.
//
// Request count per point: SLEDGE_BENCH_REQS (default 1000; the paper used
// 10k). Saturation knobs: SLEDGE_BENCH_SAT_CONNS (default 10000, clamped to
// the fd budget — client and server share one process fd table, so each
// connection costs two fds), SLEDGE_BENCH_SAT_MS (measure window, default
// 5000). `--smoke` runs a seconds-long miniature of both sections for CI.
// Absolute numbers reflect this host; on a single-core machine the shard
// ratio is pinned near 1x (all shards multiplex one core), so the JSON
// records host_cores and the ≥2x scaling expectation applies at >=4 cores.
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_server_util.hpp"

using namespace sledge;
using namespace sledge::bench;

namespace {

// ---- Saturation client: N keep-alive connections, request depth 1 ----

struct SatConn {
  int fd = -1;
  size_t sent = 0;       // bytes of the request written so far
  std::string inbuf;     // response bytes accumulated
  uint64_t sent_at = 0;  // for latency, stamped when the request completes
  bool connected = false;
};

struct SatResult {
  int shards = 0;
  int conns = 0;
  uint64_t responses = 0;  // HTTP 200 within the measured window
  uint64_t shed = 0;       // non-200 (admission 503s under saturation)
  uint64_t errors = 0;
  double window_s = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

const char kSatRequest[] = "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n";

// One complete HTTP/1.1 response (header + Content-Length body) parsed off
// the front of `buf`? Trim it, store its status, and return true.
bool consume_response(std::string* buf, int* status) {
  size_t header_end = buf->find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  size_t cl = buf->find("Content-Length:");
  if (cl == std::string::npos || cl > header_end) return false;
  size_t content_len = std::strtoul(buf->c_str() + cl + 15, nullptr, 10);
  size_t total = header_end + 4 + content_len;
  if (buf->size() < total) return false;
  *status = 0;
  std::sscanf(buf->c_str(), "HTTP/1.1 %d", status);
  buf->erase(0, total);
  return true;
}

// Caps the connection count to what the shared fd table can hold: client
// end + server end both live in this process, plus headroom for the
// runtime's own fds (shards, eventfds, modules, reserve fds).
int clamp_conns(int want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return want;
  long budget = (static_cast<long>(rl.rlim_cur) - 400) / 2;
  if (budget < 1) budget = 1;
  return want < budget ? want : static_cast<int>(budget);
}

SatResult saturate(uint16_t port, int shards, int conns, int window_ms) {
  SatResult res;
  res.shards = shards;
  res.conns = conns;

  int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    std::perror("epoll_create1");
    return res;
  }
  std::vector<SatConn> cs(static_cast<size_t>(conns));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (size_t i = 0; i < cs.size(); ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      res.errors++;
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      res.errors++;
      continue;
    }
    cs[i].fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  }

  // Warm-up until every surviving connection has served one response (bounds
  // the connect/accept ramp out of the measured window), then measure.
  LatencyHistogram lat;
  uint64_t warm_left = 0;
  for (const SatConn& c : cs) warm_left += c.fd >= 0;
  bool measuring = false;
  uint64_t window_end = 0;
  uint64_t warm_deadline = now_ns() + 30ull * 1'000'000'000;
  std::vector<epoll_event> events(1024);

  while (true) {
    uint64_t now = now_ns();
    if (measuring && now >= window_end) break;
    if (!measuring && (warm_left == 0 || now >= warm_deadline)) {
      measuring = true;
      window_end = now + static_cast<uint64_t>(window_ms) * 1'000'000;
      res.responses = 0;  // ramp responses don't count
      res.shed = 0;
    }
    int n = ::epoll_wait(ep, events.data(), static_cast<int>(events.size()),
                         50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    uint64_t stamp = now_ns();
    for (int e = 0; e < n; ++e) {
      SatConn& c = cs[events[e].data.u64];
      if (c.fd < 0) continue;
      uint32_t ev = events[e].events;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        ::close(c.fd);
        c.fd = -1;
        res.errors++;
        warm_left -= !c.connected;
        continue;
      }
      if (ev & EPOLLOUT) {
        while (c.sent < sizeof(kSatRequest) - 1) {
          ssize_t w = ::send(c.fd, kSatRequest + c.sent,
                             sizeof(kSatRequest) - 1 - c.sent, MSG_NOSIGNAL);
          if (w > 0) {
            c.sent += static_cast<size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          res.errors++;
          warm_left -= !c.connected;
          break;
        }
        if (c.fd < 0) continue;
        if (c.sent == sizeof(kSatRequest) - 1 && c.sent_at == 0) {
          c.sent_at = stamp;
          // Request fully out: only readability matters until the reply.
          epoll_event mod{};
          mod.events = EPOLLIN;
          mod.data.u64 = events[e].data.u64;
          ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &mod);
        }
      }
      if (ev & EPOLLIN) {
        char buf[4096];
        for (;;) {
          ssize_t r = ::recv(c.fd, buf, sizeof(buf), 0);
          if (r > 0) {
            c.inbuf.append(buf, static_cast<size_t>(r));
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          res.errors++;
          warm_left -= !c.connected;
          break;
        }
        if (c.fd < 0) continue;
        int status = 0;
        if (consume_response(&c.inbuf, &status)) {
          if (measuring) {
            if (status == 200) {
              res.responses++;
              lat.record(stamp - c.sent_at);
            } else {
              res.shed++;
            }
          }
          if (!c.connected) {
            c.connected = true;
            warm_left--;
          }
          // Issue the next keep-alive request on this connection.
          c.sent = 0;
          c.sent_at = 0;
          epoll_event mod{};
          mod.events = EPOLLIN | EPOLLOUT;
          mod.data.u64 = events[e].data.u64;
          ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &mod);
        }
      }
    }
  }

  for (SatConn& c : cs) {
    if (c.fd >= 0) ::close(c.fd);
  }
  ::close(ep);
  res.window_s = window_ms / 1e3;
  res.throughput_rps = res.responses / res.window_s;
  res.p50_ms = static_cast<double>(lat.percentile_ns(0.5)) / 1e6;
  res.p99_ms = lat.p99_ms();
  return res;
}

std::unique_ptr<runtime::Runtime> start_sharded(int num_listeners,
                                                int max_pending) {
  runtime::RuntimeConfig cfg;
  cfg.workers = 3;
  cfg.num_listeners = num_listeners;
  // Saturation guard: at 10k depth-1 connections the admitted-sandbox plane
  // must stay bounded (each in-flight sandbox pins two VM guard regions —
  // linear memory + stack — against a 4096-slot registry), so the overflow
  // is shed with fast 503s — the listener's own writev path, which is
  // exactly what this bench measures.
  cfg.max_pending = max_pending;
  auto wasm = apps::app_wasm("ping");
  if (!wasm.ok()) {
    std::fprintf(stderr, "app ping: %s\n", wasm.error_message().c_str());
    return nullptr;
  }
  auto rt = std::make_unique<runtime::Runtime>(cfg);
  if (!rt->register_module("ping", wasm.value()).is_ok()) return nullptr;
  if (!rt->start().is_ok()) return nullptr;
  return rt;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  // ---- Section 1: Figure 6, Sledge vs procfaas across concurrency ----
  print_header("Ping throughput/latency vs concurrency (Sledge vs procfaas)",
               "Figure 6");

  const uint64_t reqs = static_cast<uint64_t>(
      env_long("SLEDGE_BENCH_REQS", smoke ? 100 : 1000));
  auto sledge_rt = start_sledge({"ping"});
  auto baseline = start_procfaas({"ping"});
  if (!sledge_rt || !baseline) return 1;

  std::printf("%-6s | %12s %10s %10s | %12s %10s %10s | %7s\n", "conc",
              "sledge r/s", "avg ms", "p99 ms", "procfs r/s", "avg ms",
              "p99 ms", "ratio");

  std::vector<int> concs = smoke ? std::vector<int>{1, 10}
                                 : std::vector<int>{1, 5, 10, 20, 40, 60, 80,
                                                    100};
  for (int conc : concs) {
    auto s = drive(sledge_rt->bound_port(), "/ping", {}, conc, reqs);
    auto n = drive(baseline->bound_port(), "/ping", {}, conc, reqs);
    double ratio = n.throughput_rps > 0 ? s.throughput_rps / n.throughput_rps
                                        : 0;
    std::printf("%-6d | %12.0f %10.3f %10.3f | %12.0f %10.3f %10.3f | %6.2fx\n",
                conc, s.throughput_rps, s.mean_ms(), s.p99_ms(),
                n.throughput_rps, n.mean_ms(), n.p99_ms(), ratio);
    if (s.errors || n.errors) {
      std::printf("       (errors: sledge=%llu procfaas=%llu)\n",
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(n.errors));
    }
  }
  sledge_rt->stop();
  sledge_rt.reset();
  baseline->stop();
  baseline.reset();

  std::printf("\nPaper (Fig. 6): Sledge ~3x the throughput of Nuclio and "
              "markedly lower avg/p99 latency across all concurrency "
              "levels.\n");

  // ---- Section 2: listener-shard saturation (BENCH_listener.json) ----
  print_header("Listener front-door saturation: 1 vs 4 SO_REUSEPORT shards",
               "front-door scaling");

  const int host_cores = static_cast<int>(std::thread::hardware_concurrency());
  int want_conns = static_cast<int>(
      env_long("SLEDGE_BENCH_SAT_CONNS", smoke ? 64 : 10000));
  const int sat_conns = clamp_conns(want_conns);
  const int window_ms = static_cast<int>(
      env_long("SLEDGE_BENCH_SAT_MS", smoke ? 500 : 5000));
  const int max_pending =
      static_cast<int>(env_long("SLEDGE_BENCH_SAT_PENDING", 1024));
  if (sat_conns < want_conns) {
    std::printf("(fd budget clamps connections: %d -> %d; client+server "
                "share one fd table)\n",
                want_conns, sat_conns);
  }

  std::printf("%-7s | %6s | %12s %10s %10s | %9s %9s %7s\n", "shards",
              "conns", "ok r/s", "p50 ms", "p99 ms", "ok", "shed",
              "errors");
  std::vector<SatResult> sat;
  for (int shards : {1, 4}) {
    auto rt = start_sharded(shards, max_pending);
    if (!rt) return 1;
    SatResult r = saturate(rt->bound_port(), shards, sat_conns, window_ms);
    rt->stop();
    std::printf("%-7d | %6d | %12.0f %10.3f %10.3f | %9llu %9llu %7llu\n",
                r.shards, r.conns, r.throughput_rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.responses),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.errors));
    sat.push_back(r);
  }
  double ratio = sat[0].throughput_rps > 0
                     ? sat[1].throughput_rps / sat[0].throughput_rps
                     : 0;
  std::printf("\n4-shard / 1-shard throughput: %.2fx on %d core(s)", ratio,
              host_cores);
  if (host_cores < 4) {
    std::printf(" — shard scaling needs >=4 cores; on this host the shards "
                "multiplex one accept path and ~1x is expected");
  }
  std::printf("\n");

  const char* out_path = std::getenv("SLEDGE_BENCH_OUT");
  if (!out_path || !out_path[0]) out_path = "BENCH_listener.json";
  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"listener\",\n"
               "  \"workload\": {\"conns\": %d, \"window_ms\": %d, "
               "\"workers\": 3, \"max_pending\": %d, \"smoke\": %s},\n"
               "  \"host_cores\": %d,\n  \"shard_points\": [\n",
               sat_conns, window_ms, max_pending, smoke ? "true" : "false",
               host_cores);
  for (size_t i = 0; i < sat.size(); ++i) {
    const SatResult& r = sat[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"throughput_rps\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ok\": %llu, "
                 "\"shed\": %llu, \"errors\": %llu}%s\n",
                 r.shards, r.throughput_rps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.responses),
                 static_cast<unsigned long long>(r.shed),
                 static_cast<unsigned long long>(r.errors),
                 i + 1 < sat.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"shard_ratio_4v1\": %.3f,\n"
               "  \"ratio_target\": {\"min\": 2.0, \"applies\": %s,\n"
               "    \"note\": \"REUSEPORT shard scaling requires >=4 cores; "
               "on fewer cores all shards multiplex the same CPU and ~1x is "
               "the physical ceiling\"}\n}\n",
               ratio, host_cores >= 4 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // Smoke mode gates CI: the sharded front door must not LOSE throughput or
  // leak errors relative to a single shard even where it cannot gain.
  if (smoke && sat[1].responses == 0) {
    std::fprintf(stderr, "smoke: 4-shard run served no responses\n");
    return 1;
  }
  if (host_cores >= 4 && ratio < 2.0 && !smoke) {
    std::fprintf(stderr, "shard scaling below 2x on a %d-core host\n",
                 host_cores);
    return 1;
  }
  return 0;
}
