#!/usr/bin/env bash
# One-command CI gate: tier-1 configure + build + full ctest, the quick
# preset, and the sanitizer-safe suites under ASan. Exits nonzero on the
# first failure. Run from anywhere; operates on the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== tier-1: full test suite =="
ctest --preset default -j "$(nproc)"

echo "== quick preset =="
ctest --preset quick -j "$(nproc)"

echo "== listener saturation bench (smoke) =="
./build/bench/bench_ping_concurrency --smoke

echo "== invoke dataplane bench (smoke: shm p50 must beat copy p50) =="
./build/bench/bench_invoke --smoke

echo "== churn bench (smoke: snapshot p50 < pooled p50 < cold p50) =="
./build/bench/bench_churn --smoke

echo "== asan: configure + build + sanitizer-safe tests =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)"

echo "== tsan: io event-loop tests (cross-thread wakeups) =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target io_loop_test
ctest --preset tsan-io -j "$(nproc)"

echo "== tsan: dispatcher/admission soak (concurrent push/inject/fetch) =="
cmake --build --preset tsan -j "$(nproc)" --target admission_test
ctest --preset tsan-dispatch -j "$(nproc)"

echo "== tsan: multi-shard listener soak (REUSEPORT shards + stats plane) =="
cmake --build --preset tsan -j "$(nproc)" --target listener_soak_test http_test
ctest --preset tsan-listener -j "$(nproc)"

echo "== tsan: invoke dataplane soak (transfer pool + hinted injection) =="
cmake --build --preset tsan -j "$(nproc)" --target invoke_soak_test
ctest --preset tsan-invoke -j "$(nproc)"

echo "== tsan: snapshot/COW soak (template registry + warm-pool races) =="
cmake --build --preset tsan -j "$(nproc)" --target snapshot_soak_test
ctest --preset tsan-snapshot -j "$(nproc)"

echo "== all checks passed =="
