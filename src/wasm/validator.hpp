// WebAssembly validator.
//
// Implements the spec's stack-polymorphic validation algorithm over the
// decoded instruction stream: every function body is type-checked, branch
// depths and branch operand types are verified, call and call_indirect
// signatures are checked against the type section (this is the static half
// of Sledge's control-flow-integrity story), and all index spaces are
// bounds-checked. Execution engines may assume a validated module is
// structurally sound.
#pragma once

#include "common/status.hpp"
#include "wasm/module.hpp"

namespace sledge::wasm {

Status validate(const Module& module);

}  // namespace sledge::wasm
