#include "wasm/validator.hpp"

#include <optional>
#include <string>
#include <vector>

namespace sledge::wasm {
namespace {

// A value-stack slot: a concrete type or "unknown" (bottom) in unreachable
// code, per the spec's validation algorithm.
struct StackType {
  bool unknown = false;
  ValType type = ValType::kI32;
};

struct ControlFrame {
  Op opcode = Op::kBlock;
  std::optional<ValType> result;  // block result type (MVP: 0 or 1)
  size_t height = 0;              // value-stack height at entry
  bool unreachable = false;
};

// Signature of a "simple" numeric/parametric instruction: up to two operand
// types and an optional result.
struct SimpleSig {
  int nargs = 0;
  ValType args[2] = {ValType::kI32, ValType::kI32};
  std::optional<ValType> result;
};

bool simple_sig(Op op, SimpleSig* sig) {
  using V = ValType;
  auto make = [sig](std::initializer_list<V> in, std::optional<V> out) {
    sig->nargs = static_cast<int>(in.size());
    int i = 0;
    for (V v : in) sig->args[i++] = v;
    sig->result = out;
    return true;
  };
  uint8_t b = static_cast<uint8_t>(op);
  // i32 test/compare
  if (op == Op::kI32Eqz) return make({V::kI32}, V::kI32);
  if (b >= 0x46 && b <= 0x4F) return make({V::kI32, V::kI32}, V::kI32);
  if (op == Op::kI64Eqz) return make({V::kI64}, V::kI32);
  if (b >= 0x51 && b <= 0x5A) return make({V::kI64, V::kI64}, V::kI32);
  if (b >= 0x5B && b <= 0x60) return make({V::kF32, V::kF32}, V::kI32);
  if (b >= 0x61 && b <= 0x66) return make({V::kF64, V::kF64}, V::kI32);
  // numeric
  if (b >= 0x67 && b <= 0x69) return make({V::kI32}, V::kI32);
  if (b >= 0x6A && b <= 0x78) return make({V::kI32, V::kI32}, V::kI32);
  if (b >= 0x79 && b <= 0x7B) return make({V::kI64}, V::kI64);
  if (b >= 0x7C && b <= 0x8A) return make({V::kI64, V::kI64}, V::kI64);
  if (b >= 0x8B && b <= 0x91) return make({V::kF32}, V::kF32);
  if (b >= 0x92 && b <= 0x98) return make({V::kF32, V::kF32}, V::kF32);
  if (b >= 0x99 && b <= 0x9F) return make({V::kF64}, V::kF64);
  if (b >= 0xA0 && b <= 0xA6) return make({V::kF64, V::kF64}, V::kF64);
  // conversions
  switch (op) {
    case Op::kI32WrapI64: return make({V::kI64}, V::kI32);
    case Op::kI32TruncF32S:
    case Op::kI32TruncF32U: return make({V::kF32}, V::kI32);
    case Op::kI32TruncF64S:
    case Op::kI32TruncF64U: return make({V::kF64}, V::kI32);
    case Op::kI64ExtendI32S:
    case Op::kI64ExtendI32U: return make({V::kI32}, V::kI64);
    case Op::kI64TruncF32S:
    case Op::kI64TruncF32U: return make({V::kF32}, V::kI64);
    case Op::kI64TruncF64S:
    case Op::kI64TruncF64U: return make({V::kF64}, V::kI64);
    case Op::kF32ConvertI32S:
    case Op::kF32ConvertI32U: return make({V::kI32}, V::kF32);
    case Op::kF32ConvertI64S:
    case Op::kF32ConvertI64U: return make({V::kI64}, V::kF32);
    case Op::kF32DemoteF64: return make({V::kF64}, V::kF32);
    case Op::kF64ConvertI32S:
    case Op::kF64ConvertI32U: return make({V::kI32}, V::kF64);
    case Op::kF64ConvertI64S:
    case Op::kF64ConvertI64U: return make({V::kI64}, V::kF64);
    case Op::kF64PromoteF32: return make({V::kF32}, V::kF64);
    case Op::kI32ReinterpretF32: return make({V::kF32}, V::kI32);
    case Op::kI64ReinterpretF64: return make({V::kF64}, V::kI64);
    case Op::kF32ReinterpretI32: return make({V::kI32}, V::kF32);
    case Op::kF64ReinterpretI64: return make({V::kI64}, V::kF64);
    case Op::kI32Extend8S:
    case Op::kI32Extend16S: return make({V::kI32}, V::kI32);
    case Op::kI64Extend8S:
    case Op::kI64Extend16S:
    case Op::kI64Extend32S: return make({V::kI64}, V::kI64);
    default: return false;
  }
}

// Memory op value type (the type loaded/stored).
ValType mem_val_type(Op op) {
  switch (op) {
    case Op::kF32Load:
    case Op::kF32Store:
      return ValType::kF32;
    case Op::kF64Load:
    case Op::kF64Store:
      return ValType::kF64;
    case Op::kI64Load:
    case Op::kI64Load8S:
    case Op::kI64Load8U:
    case Op::kI64Load16S:
    case Op::kI64Load16U:
    case Op::kI64Load32S:
    case Op::kI64Load32U:
    case Op::kI64Store:
    case Op::kI64Store8:
    case Op::kI64Store16:
    case Op::kI64Store32:
      return ValType::kI64;
    default:
      return ValType::kI32;
  }
}

bool is_load(Op op) {
  uint8_t b = static_cast<uint8_t>(op);
  return b >= 0x28 && b <= 0x35;
}
bool is_store(Op op) {
  uint8_t b = static_cast<uint8_t>(op);
  return b >= 0x36 && b <= 0x3E;
}

class FuncValidator {
 public:
  FuncValidator(const Module& m, const FunctionBody& body, uint32_t func_idx)
      : m_(m), body_(body), func_idx_(func_idx) {
    const FuncType& ft = m_.types[body.type_index];
    locals_ = ft.params;
    locals_.insert(locals_.end(), body.locals.begin(), body.locals.end());
    result_ = ft.results.empty() ? std::nullopt
                                 : std::optional<ValType>(ft.results[0]);
  }

  Status run() {
    push_ctrl(Op::kBlock, result_);
    for (size_t i = 0; i < body_.code.size(); ++i) {
      Status s = check(body_.code[i]);
      if (!s.is_ok()) {
        return Status::error("func " + std::to_string(func_idx_) + " instr " +
                             std::to_string(i) + " (" +
                             op_name(body_.code[i].op) + "): " + s.message());
      }
    }
    if (!ctrl_.empty()) return fail("missing final end");
    return Status::ok();
  }

 private:
  Status fail(const std::string& msg) { return Status::error(msg); }

  void push(ValType t) { stack_.push_back({false, t}); }
  void push_unknown() { stack_.push_back({true, ValType::kI32}); }

  // Pops a value expecting `want` (or anything when unknown).
  Status pop(std::optional<ValType> want, StackType* got = nullptr) {
    ControlFrame& frame = ctrl_.back();
    if (stack_.size() == frame.height) {
      if (frame.unreachable) {
        if (got) *got = {true, want.value_or(ValType::kI32)};
        return Status::ok();
      }
      return fail("value stack underflow");
    }
    StackType t = stack_.back();
    stack_.pop_back();
    if (want && !t.unknown && t.type != *want) {
      return fail(std::string("expected ") + to_string(*want) + " got " +
                  to_string(t.type));
    }
    if (got) *got = t;
    return Status::ok();
  }

  void push_ctrl(Op opcode, std::optional<ValType> result) {
    ctrl_.push_back({opcode, result, stack_.size(), false});
  }

  Status pop_ctrl(ControlFrame* out) {
    if (ctrl_.empty()) return fail("control stack underflow");
    ControlFrame frame = ctrl_.back();
    if (frame.result) {
      Status s = pop(frame.result);
      if (!s.is_ok()) return s;
    }
    if (stack_.size() != frame.height) {
      return fail("values remain on stack at block end");
    }
    ctrl_.pop_back();
    *out = frame;
    return Status::ok();
  }

  // Types a branch to relative depth d must provide (MVP: loop labels take
  // nothing; block/if labels take the block result).
  Status label_types(uint32_t depth, std::optional<ValType>* out) {
    if (depth >= ctrl_.size()) return fail("branch depth out of range");
    const ControlFrame& frame = ctrl_[ctrl_.size() - 1 - depth];
    *out = frame.opcode == Op::kLoop ? std::nullopt : frame.result;
    return Status::ok();
  }

  void mark_unreachable() {
    ControlFrame& frame = ctrl_.back();
    stack_.resize(frame.height);
    frame.unreachable = true;
  }

  Status check(const Instr& ins) {
    switch (ins.op) {
      case Op::kUnreachable:
        mark_unreachable();
        return Status::ok();
      case Op::kNop:
        return Status::ok();

      case Op::kBlock:
      case Op::kLoop: {
        push_ctrl(ins.op, block_result(ins));
        return Status::ok();
      }
      case Op::kIf: {
        Status s = pop(ValType::kI32);
        if (!s.is_ok()) return s;
        push_ctrl(Op::kIf, block_result(ins));
        return Status::ok();
      }
      case Op::kElse: {
        ControlFrame frame;
        Status s = pop_ctrl(&frame);
        if (!s.is_ok()) return s;
        if (frame.opcode != Op::kIf) return fail("else without if");
        push_ctrl(Op::kElse, frame.result);
        return Status::ok();
      }
      case Op::kEnd: {
        ControlFrame frame;
        Status s = pop_ctrl(&frame);
        if (!s.is_ok()) return s;
        // An `if` with a result but no else cannot produce the result on the
        // false path.
        if (frame.opcode == Op::kIf && frame.result) {
          return fail("if with result type requires else");
        }
        if (frame.result) push(*frame.result);
        return Status::ok();
      }

      case Op::kBr: {
        std::optional<ValType> need;
        Status s = label_types(ins.a, &need);
        if (!s.is_ok()) return s;
        if (need) {
          s = pop(*need);
          if (!s.is_ok()) return s;
        }
        mark_unreachable();
        return Status::ok();
      }
      case Op::kBrIf: {
        Status s = pop(ValType::kI32);
        if (!s.is_ok()) return s;
        std::optional<ValType> need;
        s = label_types(ins.a, &need);
        if (!s.is_ok()) return s;
        if (need) {
          s = pop(*need);
          if (!s.is_ok()) return s;
          push(*need);
        }
        return Status::ok();
      }
      case Op::kBrTable: {
        Status s = pop(ValType::kI32);
        if (!s.is_ok()) return s;
        const std::vector<uint32_t>& targets = m_.br_tables[ins.b];
        std::optional<ValType> need;
        s = label_types(targets.back(), &need);
        if (!s.is_ok()) return s;
        for (uint32_t t : targets) {
          std::optional<ValType> other;
          s = label_types(t, &other);
          if (!s.is_ok()) return s;
          if (other != need) return fail("br_table label types differ");
        }
        if (need) {
          s = pop(*need);
          if (!s.is_ok()) return s;
        }
        mark_unreachable();
        return Status::ok();
      }
      case Op::kReturn: {
        if (result_) {
          Status s = pop(*result_);
          if (!s.is_ok()) return s;
        }
        mark_unreachable();
        return Status::ok();
      }

      case Op::kCall: {
        if (ins.a >= m_.num_funcs()) return fail("call index out of range");
        return apply_call(m_.func_type(ins.a));
      }
      case Op::kCallIndirect: {
        if (!m_.table) return fail("call_indirect without table");
        if (ins.a >= m_.types.size()) return fail("bad call_indirect type");
        Status s = pop(ValType::kI32);  // table element index
        if (!s.is_ok()) return s;
        return apply_call(m_.types[ins.a]);
      }

      case Op::kDrop:
        return pop(std::nullopt);
      case Op::kSelect: {
        Status s = pop(ValType::kI32);
        if (!s.is_ok()) return s;
        StackType a, b;
        s = pop(std::nullopt, &a);
        if (!s.is_ok()) return s;
        s = pop(std::nullopt, &b);
        if (!s.is_ok()) return s;
        if (!a.unknown && !b.unknown && a.type != b.type) {
          return fail("select operand types differ");
        }
        const StackType& known = a.unknown ? b : a;
        if (known.unknown) {
          push_unknown();
        } else {
          push(known.type);
        }
        return Status::ok();
      }

      case Op::kLocalGet: {
        if (ins.a >= locals_.size()) return fail("local index out of range");
        push(locals_[ins.a]);
        return Status::ok();
      }
      case Op::kLocalSet: {
        if (ins.a >= locals_.size()) return fail("local index out of range");
        return pop(locals_[ins.a]);
      }
      case Op::kLocalTee: {
        if (ins.a >= locals_.size()) return fail("local index out of range");
        Status s = pop(locals_[ins.a]);
        if (!s.is_ok()) return s;
        push(locals_[ins.a]);
        return Status::ok();
      }
      case Op::kGlobalGet: {
        if (ins.a >= m_.globals.size()) return fail("global index out of range");
        push(m_.globals[ins.a].type);
        return Status::ok();
      }
      case Op::kGlobalSet: {
        if (ins.a >= m_.globals.size()) return fail("global index out of range");
        if (!m_.globals[ins.a].mutable_) return fail("set of immutable global");
        return pop(m_.globals[ins.a].type);
      }

      case Op::kMemorySize: {
        if (!m_.memory) return fail("memory.size without memory");
        push(ValType::kI32);
        return Status::ok();
      }
      case Op::kMemoryGrow: {
        if (!m_.memory) return fail("memory.grow without memory");
        Status s = pop(ValType::kI32);
        if (!s.is_ok()) return s;
        push(ValType::kI32);
        return Status::ok();
      }

      case Op::kI32Const:
        push(ValType::kI32);
        return Status::ok();
      case Op::kI64Const:
        push(ValType::kI64);
        return Status::ok();
      case Op::kF32Const:
        push(ValType::kF32);
        return Status::ok();
      case Op::kF64Const:
        push(ValType::kF64);
        return Status::ok();

      default:
        break;
    }

    if (is_load(ins.op)) {
      if (!m_.memory) return fail("load without memory");
      Status s = pop(ValType::kI32);
      if (!s.is_ok()) return s;
      push(mem_val_type(ins.op));
      return Status::ok();
    }
    if (is_store(ins.op)) {
      if (!m_.memory) return fail("store without memory");
      Status s = pop(mem_val_type(ins.op));
      if (!s.is_ok()) return s;
      return pop(ValType::kI32);
    }

    SimpleSig sig;
    if (simple_sig(ins.op, &sig)) {
      for (int i = sig.nargs - 1; i >= 0; --i) {
        Status s = pop(sig.args[i]);
        if (!s.is_ok()) return s;
      }
      if (sig.result) push(*sig.result);
      return Status::ok();
    }
    return fail("unhandled opcode in validator");
  }

  Status apply_call(const FuncType& ft) {
    for (size_t i = ft.params.size(); i > 0; --i) {
      Status s = pop(ft.params[i - 1]);
      if (!s.is_ok()) return s;
    }
    if (!ft.results.empty()) push(ft.results[0]);
    return Status::ok();
  }

  static std::optional<ValType> block_result(const Instr& ins) {
    if (ins.block_type == 0x40) return std::nullopt;
    return static_cast<ValType>(ins.block_type);
  }

  const Module& m_;
  const FunctionBody& body_;
  uint32_t func_idx_;
  std::vector<ValType> locals_;
  std::optional<ValType> result_;
  std::vector<StackType> stack_;
  std::vector<ControlFrame> ctrl_;
};

Status validate_module_level(const Module& m) {
  // Export indices must be in range.
  for (const Export& e : m.exports) {
    switch (e.kind) {
      case ExternalKind::kFunction:
        if (e.index >= m.num_funcs()) {
          return Status::error("export '" + e.name + "': bad function index");
        }
        break;
      case ExternalKind::kTable:
        if (!m.table || e.index != 0) {
          return Status::error("export '" + e.name + "': bad table index");
        }
        break;
      case ExternalKind::kMemory:
        if (!m.memory || e.index != 0) {
          return Status::error("export '" + e.name + "': bad memory index");
        }
        break;
      case ExternalKind::kGlobal:
        if (e.index >= m.globals.size()) {
          return Status::error("export '" + e.name + "': bad global index");
        }
        break;
    }
  }
  // Start function: () -> ().
  if (m.start) {
    if (*m.start >= m.num_funcs()) {
      return Status::error("start function index out of range");
    }
    const FuncType& ft = m.func_type(*m.start);
    if (!ft.params.empty() || !ft.results.empty()) {
      return Status::error("start function must have type () -> ()");
    }
  }
  // Element segments reference real functions and fit the declared table.
  for (const ElementSegment& seg : m.elements) {
    if (!m.table) return Status::error("element segment without table");
    uint64_t end = static_cast<uint64_t>(seg.offset) + seg.func_indices.size();
    if (end > m.table->min) {
      return Status::error("element segment exceeds table minimum size");
    }
    for (uint32_t f : seg.func_indices) {
      if (f >= m.num_funcs()) {
        return Status::error("element segment function index out of range");
      }
    }
  }
  // Data segments must fit the initial memory.
  for (const DataSegment& seg : m.data) {
    if (!m.memory) return Status::error("data segment without memory");
    uint64_t end = static_cast<uint64_t>(seg.offset) + seg.bytes.size();
    if (end > m.initial_memory_bytes()) {
      return Status::error("data segment exceeds initial memory");
    }
  }
  return Status::ok();
}

}  // namespace

Status validate(const Module& m) {
  Status s = validate_module_level(m);
  if (!s.is_ok()) return s;
  for (size_t i = 0; i < m.functions.size(); ++i) {
    uint32_t func_idx = m.num_imported_funcs() + static_cast<uint32_t>(i);
    FuncValidator fv(m, m.functions[i], func_idx);
    s = fv.run();
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace sledge::wasm
