// In-memory representation of a decoded WebAssembly module.
//
// The decoder turns the binary into this structure; the validator type-checks
// it; the interpreter tiers execute the decoded instruction stream; the
// AoT translator lowers it to C. Function bodies are stored as a flat
// vector<Instr> with immediates already decoded — branch *targets* are
// resolved later (engine/predecode) because the slow interpreter tier
// deliberately resolves them dynamically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/types.hpp"

namespace sledge::wasm {

// One decoded instruction. Immediates:
//   a: label depth / func idx / type idx / local idx / global idx / align
//   b: memarg offset / br_table pool index
//   imm: i32/i64 const (sign-extended) or f32/f64 bit pattern
struct Instr {
  Op op;
  uint8_t block_type = 0x40;  // for block/loop/if: 0x40 or a ValType byte
  uint32_t a = 0;
  uint32_t b = 0;
  uint64_t imm = 0;

  int32_t imm_i32() const { return static_cast<int32_t>(imm); }
  int64_t imm_i64() const { return static_cast<int64_t>(imm); }
  uint32_t f32_bits() const { return static_cast<uint32_t>(imm); }
  uint64_t f64_bits() const { return imm; }
};

enum class ExternalKind : uint8_t {
  kFunction = 0,
  kTable = 1,
  kMemory = 2,
  kGlobal = 3,
};

struct Import {
  std::string module;
  std::string field;
  ExternalKind kind = ExternalKind::kFunction;
  uint32_t type_index = 0;  // for function imports
};

struct Export {
  std::string name;
  ExternalKind kind = ExternalKind::kFunction;
  uint32_t index = 0;
};

struct GlobalDef {
  ValType type = ValType::kI32;
  bool mutable_ = false;
  // MVP global initializers are a single const instruction.
  uint64_t init_value = 0;  // bit pattern for the declared type
};

struct ElementSegment {
  uint32_t table_index = 0;
  uint32_t offset = 0;  // const-evaluated offset
  std::vector<uint32_t> func_indices;
};

struct DataSegment {
  uint32_t memory_index = 0;
  uint32_t offset = 0;  // const-evaluated offset
  std::vector<uint8_t> bytes;
};

struct FunctionBody {
  uint32_t type_index = 0;
  // Expanded local declarations (params NOT included).
  std::vector<ValType> locals;
  std::vector<Instr> code;  // terminated by the function's final kEnd
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;          // function imports only (MVP subset)
  std::vector<FunctionBody> functions;  // defined functions
  std::optional<Limits> table;          // funcref table
  std::optional<Limits> memory;         // limits in 64KiB pages
  std::vector<GlobalDef> globals;
  std::vector<Export> exports;
  std::optional<uint32_t> start;
  std::vector<ElementSegment> elements;
  std::vector<DataSegment> data;
  // Pool of br_table target lists; Instr.b indexes into this.
  std::vector<std::vector<uint32_t>> br_tables;

  uint32_t num_imported_funcs() const {
    return static_cast<uint32_t>(imports.size());
  }
  uint32_t num_funcs() const {
    return num_imported_funcs() + static_cast<uint32_t>(functions.size());
  }
  // Type of function `idx` in the joint (imports ++ defined) index space.
  const FuncType& func_type(uint32_t idx) const {
    if (idx < imports.size()) return types[imports[idx].type_index];
    return types[functions[idx - imports.size()].type_index];
  }
  bool is_imported(uint32_t idx) const { return idx < imports.size(); }

  const Export* find_export(const std::string& name, ExternalKind kind) const {
    for (const Export& e : exports) {
      if (e.kind == kind && e.name == name) return &e;
    }
    return nullptr;
  }

  // Total linear-memory size in bytes implied by the minimum page count.
  uint64_t initial_memory_bytes() const {
    return memory ? static_cast<uint64_t>(memory->min) * 65536ull : 0;
  }
};

constexpr uint32_t kPageSize = 65536;
constexpr uint32_t kMaxPages = 65536;  // 4 GiB

}  // namespace sledge::wasm
