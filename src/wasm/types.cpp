#include "wasm/types.hpp"

namespace sledge::wasm {

std::string FuncType::to_string() const {
  std::string s = "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) s += ", ";
    s += sledge::wasm::to_string(params[i]);
  }
  s += ") -> (";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) s += ", ";
    s += sledge::wasm::to_string(results[i]);
  }
  s += ")";
  return s;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kUnreachable: return "unreachable";
    case Op::kNop: return "nop";
    case Op::kBlock: return "block";
    case Op::kLoop: return "loop";
    case Op::kIf: return "if";
    case Op::kElse: return "else";
    case Op::kEnd: return "end";
    case Op::kBr: return "br";
    case Op::kBrIf: return "br_if";
    case Op::kBrTable: return "br_table";
    case Op::kReturn: return "return";
    case Op::kCall: return "call";
    case Op::kCallIndirect: return "call_indirect";
    case Op::kDrop: return "drop";
    case Op::kSelect: return "select";
    case Op::kLocalGet: return "local.get";
    case Op::kLocalSet: return "local.set";
    case Op::kLocalTee: return "local.tee";
    case Op::kGlobalGet: return "global.get";
    case Op::kGlobalSet: return "global.set";
    case Op::kI32Load: return "i32.load";
    case Op::kI64Load: return "i64.load";
    case Op::kF32Load: return "f32.load";
    case Op::kF64Load: return "f64.load";
    case Op::kI32Load8S: return "i32.load8_s";
    case Op::kI32Load8U: return "i32.load8_u";
    case Op::kI32Load16S: return "i32.load16_s";
    case Op::kI32Load16U: return "i32.load16_u";
    case Op::kI64Load8S: return "i64.load8_s";
    case Op::kI64Load8U: return "i64.load8_u";
    case Op::kI64Load16S: return "i64.load16_s";
    case Op::kI64Load16U: return "i64.load16_u";
    case Op::kI64Load32S: return "i64.load32_s";
    case Op::kI64Load32U: return "i64.load32_u";
    case Op::kI32Store: return "i32.store";
    case Op::kI64Store: return "i64.store";
    case Op::kF32Store: return "f32.store";
    case Op::kF64Store: return "f64.store";
    case Op::kI32Store8: return "i32.store8";
    case Op::kI32Store16: return "i32.store16";
    case Op::kI64Store8: return "i64.store8";
    case Op::kI64Store16: return "i64.store16";
    case Op::kI64Store32: return "i64.store32";
    case Op::kMemorySize: return "memory.size";
    case Op::kMemoryGrow: return "memory.grow";
    case Op::kI32Const: return "i32.const";
    case Op::kI64Const: return "i64.const";
    case Op::kF32Const: return "f32.const";
    case Op::kF64Const: return "f64.const";
    case Op::kI32Eqz: return "i32.eqz";
    case Op::kI32Eq: return "i32.eq";
    case Op::kI32Ne: return "i32.ne";
    case Op::kI32LtS: return "i32.lt_s";
    case Op::kI32LtU: return "i32.lt_u";
    case Op::kI32GtS: return "i32.gt_s";
    case Op::kI32GtU: return "i32.gt_u";
    case Op::kI32LeS: return "i32.le_s";
    case Op::kI32LeU: return "i32.le_u";
    case Op::kI32GeS: return "i32.ge_s";
    case Op::kI32GeU: return "i32.ge_u";
    case Op::kI64Eqz: return "i64.eqz";
    case Op::kI64Eq: return "i64.eq";
    case Op::kI64Ne: return "i64.ne";
    case Op::kI64LtS: return "i64.lt_s";
    case Op::kI64LtU: return "i64.lt_u";
    case Op::kI64GtS: return "i64.gt_s";
    case Op::kI64GtU: return "i64.gt_u";
    case Op::kI64LeS: return "i64.le_s";
    case Op::kI64LeU: return "i64.le_u";
    case Op::kI64GeS: return "i64.ge_s";
    case Op::kI64GeU: return "i64.ge_u";
    case Op::kF32Eq: return "f32.eq";
    case Op::kF32Ne: return "f32.ne";
    case Op::kF32Lt: return "f32.lt";
    case Op::kF32Gt: return "f32.gt";
    case Op::kF32Le: return "f32.le";
    case Op::kF32Ge: return "f32.ge";
    case Op::kF64Eq: return "f64.eq";
    case Op::kF64Ne: return "f64.ne";
    case Op::kF64Lt: return "f64.lt";
    case Op::kF64Gt: return "f64.gt";
    case Op::kF64Le: return "f64.le";
    case Op::kF64Ge: return "f64.ge";
    case Op::kI32Clz: return "i32.clz";
    case Op::kI32Ctz: return "i32.ctz";
    case Op::kI32Popcnt: return "i32.popcnt";
    case Op::kI32Add: return "i32.add";
    case Op::kI32Sub: return "i32.sub";
    case Op::kI32Mul: return "i32.mul";
    case Op::kI32DivS: return "i32.div_s";
    case Op::kI32DivU: return "i32.div_u";
    case Op::kI32RemS: return "i32.rem_s";
    case Op::kI32RemU: return "i32.rem_u";
    case Op::kI32And: return "i32.and";
    case Op::kI32Or: return "i32.or";
    case Op::kI32Xor: return "i32.xor";
    case Op::kI32Shl: return "i32.shl";
    case Op::kI32ShrS: return "i32.shr_s";
    case Op::kI32ShrU: return "i32.shr_u";
    case Op::kI32Rotl: return "i32.rotl";
    case Op::kI32Rotr: return "i32.rotr";
    case Op::kI64Clz: return "i64.clz";
    case Op::kI64Ctz: return "i64.ctz";
    case Op::kI64Popcnt: return "i64.popcnt";
    case Op::kI64Add: return "i64.add";
    case Op::kI64Sub: return "i64.sub";
    case Op::kI64Mul: return "i64.mul";
    case Op::kI64DivS: return "i64.div_s";
    case Op::kI64DivU: return "i64.div_u";
    case Op::kI64RemS: return "i64.rem_s";
    case Op::kI64RemU: return "i64.rem_u";
    case Op::kI64And: return "i64.and";
    case Op::kI64Or: return "i64.or";
    case Op::kI64Xor: return "i64.xor";
    case Op::kI64Shl: return "i64.shl";
    case Op::kI64ShrS: return "i64.shr_s";
    case Op::kI64ShrU: return "i64.shr_u";
    case Op::kI64Rotl: return "i64.rotl";
    case Op::kI64Rotr: return "i64.rotr";
    case Op::kF32Abs: return "f32.abs";
    case Op::kF32Neg: return "f32.neg";
    case Op::kF32Ceil: return "f32.ceil";
    case Op::kF32Floor: return "f32.floor";
    case Op::kF32Trunc: return "f32.trunc";
    case Op::kF32Nearest: return "f32.nearest";
    case Op::kF32Sqrt: return "f32.sqrt";
    case Op::kF32Add: return "f32.add";
    case Op::kF32Sub: return "f32.sub";
    case Op::kF32Mul: return "f32.mul";
    case Op::kF32Div: return "f32.div";
    case Op::kF32Min: return "f32.min";
    case Op::kF32Max: return "f32.max";
    case Op::kF32Copysign: return "f32.copysign";
    case Op::kF64Abs: return "f64.abs";
    case Op::kF64Neg: return "f64.neg";
    case Op::kF64Ceil: return "f64.ceil";
    case Op::kF64Floor: return "f64.floor";
    case Op::kF64Trunc: return "f64.trunc";
    case Op::kF64Nearest: return "f64.nearest";
    case Op::kF64Sqrt: return "f64.sqrt";
    case Op::kF64Add: return "f64.add";
    case Op::kF64Sub: return "f64.sub";
    case Op::kF64Mul: return "f64.mul";
    case Op::kF64Div: return "f64.div";
    case Op::kF64Min: return "f64.min";
    case Op::kF64Max: return "f64.max";
    case Op::kF64Copysign: return "f64.copysign";
    case Op::kI32WrapI64: return "i32.wrap_i64";
    case Op::kI32TruncF32S: return "i32.trunc_f32_s";
    case Op::kI32TruncF32U: return "i32.trunc_f32_u";
    case Op::kI32TruncF64S: return "i32.trunc_f64_s";
    case Op::kI32TruncF64U: return "i32.trunc_f64_u";
    case Op::kI64ExtendI32S: return "i64.extend_i32_s";
    case Op::kI64ExtendI32U: return "i64.extend_i32_u";
    case Op::kI64TruncF32S: return "i64.trunc_f32_s";
    case Op::kI64TruncF32U: return "i64.trunc_f32_u";
    case Op::kI64TruncF64S: return "i64.trunc_f64_s";
    case Op::kI64TruncF64U: return "i64.trunc_f64_u";
    case Op::kF32ConvertI32S: return "f32.convert_i32_s";
    case Op::kF32ConvertI32U: return "f32.convert_i32_u";
    case Op::kF32ConvertI64S: return "f32.convert_i64_s";
    case Op::kF32ConvertI64U: return "f32.convert_i64_u";
    case Op::kF32DemoteF64: return "f32.demote_f64";
    case Op::kF64ConvertI32S: return "f64.convert_i32_s";
    case Op::kF64ConvertI32U: return "f64.convert_i32_u";
    case Op::kF64ConvertI64S: return "f64.convert_i64_s";
    case Op::kF64ConvertI64U: return "f64.convert_i64_u";
    case Op::kF64PromoteF32: return "f64.promote_f32";
    case Op::kI32ReinterpretF32: return "i32.reinterpret_f32";
    case Op::kI64ReinterpretF64: return "i64.reinterpret_f64";
    case Op::kF32ReinterpretI32: return "f32.reinterpret_i32";
    case Op::kF64ReinterpretI64: return "f64.reinterpret_i64";
    case Op::kI32Extend8S: return "i32.extend8_s";
    case Op::kI32Extend16S: return "i32.extend16_s";
    case Op::kI64Extend8S: return "i64.extend8_s";
    case Op::kI64Extend16S: return "i64.extend16_s";
    case Op::kI64Extend32S: return "i64.extend32_s";
  }
  return "<invalid>";
}

ImmKind imm_kind(Op op) {
  switch (op) {
    case Op::kBlock:
    case Op::kLoop:
    case Op::kIf:
      return ImmKind::kBlockType;
    case Op::kBr:
    case Op::kBrIf:
      return ImmKind::kLabel;
    case Op::kBrTable:
      return ImmKind::kBrTable;
    case Op::kCall:
      return ImmKind::kFuncIdx;
    case Op::kCallIndirect:
      return ImmKind::kTypeIdxTableIdx;
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
      return ImmKind::kLocalIdx;
    case Op::kGlobalGet:
    case Op::kGlobalSet:
      return ImmKind::kGlobalIdx;
    case Op::kMemorySize:
    case Op::kMemoryGrow:
      return ImmKind::kMemIdx;
    case Op::kI32Const:
      return ImmKind::kI32Const;
    case Op::kI64Const:
      return ImmKind::kI64Const;
    case Op::kF32Const:
      return ImmKind::kF32Const;
    case Op::kF64Const:
      return ImmKind::kF64Const;
    default:
      break;
  }
  uint8_t b = static_cast<uint8_t>(op);
  if (b >= 0x28 && b <= 0x3E) return ImmKind::kMemArg;
  return ImmKind::kNone;
}

uint32_t access_width(Op op) {
  switch (op) {
    case Op::kI32Load8S:
    case Op::kI32Load8U:
    case Op::kI64Load8S:
    case Op::kI64Load8U:
    case Op::kI32Store8:
    case Op::kI64Store8:
      return 1;
    case Op::kI32Load16S:
    case Op::kI32Load16U:
    case Op::kI64Load16S:
    case Op::kI64Load16U:
    case Op::kI32Store16:
    case Op::kI64Store16:
      return 2;
    case Op::kI32Load:
    case Op::kF32Load:
    case Op::kI64Load32S:
    case Op::kI64Load32U:
    case Op::kI32Store:
    case Op::kF32Store:
    case Op::kI64Store32:
      return 4;
    case Op::kI64Load:
    case Op::kF64Load:
    case Op::kI64Store:
    case Op::kF64Store:
      return 8;
    default:
      return 0;
  }
}

}  // namespace sledge::wasm
