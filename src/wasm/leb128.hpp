// LEB128 variable-length integer encoding/decoding (WebAssembly binary
// format, §5.2.2). Decoding enforces the spec's length and sign-bit rules so
// malformed encodings are rejected rather than silently accepted.
#pragma once

#include <cstdint>
#include <vector>

namespace sledge::wasm {

// Byte cursor over an immutable buffer; all decode helpers report failure
// through the ok flag instead of throwing.
struct ByteReader {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t pos = 0;
  bool failed = false;

  ByteReader(const uint8_t* d, size_t n) : data(d), size(n) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : data(v.data()), size(v.size()) {}

  bool ok() const { return !failed; }
  bool at_end() const { return pos >= size; }
  size_t remaining() const { return size - pos; }

  uint8_t read_u8() {
    if (pos >= size) {
      failed = true;
      return 0;
    }
    return data[pos++];
  }

  uint8_t peek_u8() {
    if (pos >= size) {
      failed = true;
      return 0;
    }
    return data[pos];
  }

  bool read_bytes(uint8_t* out, size_t n) {
    if (pos + n > size) {
      failed = true;
      return false;
    }
    for (size_t i = 0; i < n; ++i) out[i] = data[pos + i];
    pos += n;
    return true;
  }

  bool skip(size_t n) {
    if (pos + n > size) {
      failed = true;
      return false;
    }
    pos += n;
    return true;
  }

  uint32_t read_u32_leb() {
    uint32_t result = 0;
    uint32_t shift = 0;
    for (int i = 0; i < 5; ++i) {
      uint8_t b = read_u8();
      if (failed) return 0;
      if (i == 4 && (b & 0x70) != 0) {  // bits beyond 32 must be zero
        failed = true;
        return 0;
      }
      result |= static_cast<uint32_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return result;
      shift += 7;
    }
    failed = true;  // too long
    return 0;
  }

  int32_t read_i32_leb() {
    int64_t v = read_sleb(32);
    return static_cast<int32_t>(v);
  }

  int64_t read_i64_leb() { return read_sleb(64); }

  uint32_t read_f32_bits() {
    uint8_t b[4];
    if (!read_bytes(b, 4)) return 0;
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
  }

  uint64_t read_f64_bits() {
    uint8_t b[8];
    if (!read_bytes(b, 8)) return 0;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }

 private:
  int64_t read_sleb(int bits) {
    int64_t result = 0;
    uint32_t shift = 0;
    int max_bytes = (bits + 6) / 7;
    for (int i = 0; i < max_bytes; ++i) {
      uint8_t b = read_u8();
      if (failed) return 0;
      result |= static_cast<int64_t>(b & 0x7F) << shift;
      shift += 7;
      if ((b & 0x80) == 0) {
        // Sign-extend when the value doesn't fill the 64-bit accumulator.
        if (shift < 64 && (b & 0x40)) {
          result |= -(static_cast<int64_t>(1) << shift);
        }
        // For i32, verify the unused high bits are a pure sign extension.
        if (bits == 32) {
          int32_t truncated = static_cast<int32_t>(result);
          if (static_cast<int64_t>(truncated) != result) {
            failed = true;
            return 0;
          }
        }
        return result;
      }
    }
    failed = true;  // too long
    return 0;
  }
};

// Append-only byte sink used by the module builder / encoder.
struct ByteWriter {
  std::vector<uint8_t> bytes;

  void u8(uint8_t b) { bytes.push_back(b); }

  void u32_leb(uint32_t v) {
    do {
      uint8_t b = v & 0x7F;
      v >>= 7;
      if (v) b |= 0x80;
      bytes.push_back(b);
    } while (v);
  }

  void i32_leb(int32_t value) { sleb(static_cast<int64_t>(value)); }
  void i64_leb(int64_t value) { sleb(value); }

  void f32_bits(uint32_t bits) {
    for (int i = 0; i < 4; ++i) bytes.push_back((bits >> (8 * i)) & 0xFF);
  }
  void f64_bits(uint64_t bits) {
    for (int i = 0; i < 8; ++i) bytes.push_back((bits >> (8 * i)) & 0xFF);
  }

  void raw(const std::vector<uint8_t>& v) {
    bytes.insert(bytes.end(), v.begin(), v.end());
  }
  void raw(const uint8_t* p, size_t n) { bytes.insert(bytes.end(), p, p + n); }

  void name(const std::string& s) {
    u32_leb(static_cast<uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }

 private:
  void sleb(int64_t v) {
    bool more = true;
    while (more) {
      uint8_t b = v & 0x7F;
      v >>= 7;  // arithmetic shift
      more = !((v == 0 && (b & 0x40) == 0) || (v == -1 && (b & 0x40) != 0));
      if (more) b |= 0x80;
      bytes.push_back(b);
    }
  }
};

}  // namespace sledge::wasm
