// WebAssembly text-format (WAT-flavored) disassembler for decoded modules.
// Used by the `minicc --dump-wat` tool flag, by tests asserting on generated
// code shape, and for debugging workloads by hand.
#pragma once

#include <string>

#include "wasm/module.hpp"

namespace sledge::wasm {

// Renders the whole module in a folded, WAT-like syntax. Output is for
// humans and tests; it is not guaranteed to round-trip through a WAT parser.
std::string disassemble(const Module& module);

// Renders a single function body (joint index space; imports render as
// their declaration).
std::string disassemble_function(const Module& module, uint32_t func_index);

}  // namespace sledge::wasm
