// WebAssembly binary decoder (Wasm 1.0 + sign-extension ops).
//
// Produces a Module with fully decoded instruction streams. Structural
// malformations (bad magic, truncated sections, unknown opcodes, over-long
// LEBs, misaligned memargs) are rejected here; *type* errors are the
// validator's job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "wasm/module.hpp"

namespace sledge::wasm {

Result<Module> decode(const std::vector<uint8_t>& bytes);
Result<Module> decode(const uint8_t* data, size_t size);

}  // namespace sledge::wasm
