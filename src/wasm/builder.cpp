#include "wasm/builder.hpp"

#include <cassert>

namespace sledge::wasm {
namespace {

// Writes `payload` as section `id` (id byte, LEB size, payload).
void write_section(ByteWriter& out, uint8_t id, const ByteWriter& payload) {
  out.u8(id);
  out.u32_leb(static_cast<uint32_t>(payload.bytes.size()));
  out.raw(payload.bytes);
}

void write_limits(ByteWriter& w, const Limits& lim) {
  w.u8(lim.has_max ? 1 : 0);
  w.u32_leb(lim.min);
  if (lim.has_max) w.u32_leb(lim.max);
}

}  // namespace

uint32_t ModuleBuilder::add_type(FuncType ft) {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i] == ft) return static_cast<uint32_t>(i);
  }
  types_.push_back(std::move(ft));
  return static_cast<uint32_t>(types_.size() - 1);
}

uint32_t ModuleBuilder::add_import(const std::string& module,
                                   const std::string& field,
                                   uint32_t type_index) {
  assert(functions_.empty() && "imports must precede function declarations");
  imports_.push_back({module, field, type_index});
  return static_cast<uint32_t>(imports_.size() - 1);
}

uint32_t ModuleBuilder::declare_function(uint32_t type_index) {
  assert(type_index < types_.size());
  uint32_t num_params = static_cast<uint32_t>(types_[type_index].params.size());
  functions_.push_back(FunctionBuilder(type_index, num_params));
  return num_imports() + static_cast<uint32_t>(functions_.size()) - 1;
}

FunctionBuilder& ModuleBuilder::function(uint32_t func_index) {
  assert(func_index >= num_imports());
  return functions_[func_index - num_imports()];
}

void ModuleBuilder::set_memory(uint32_t min_pages,
                               std::optional<uint32_t> max_pages) {
  Limits lim;
  lim.min = min_pages;
  lim.has_max = max_pages.has_value();
  lim.max = max_pages.value_or(0xFFFFFFFFu);
  memory_ = lim;
}

void ModuleBuilder::set_table(uint32_t min, std::optional<uint32_t> max) {
  Limits lim;
  lim.min = min;
  lim.has_max = max.has_value();
  lim.max = max.value_or(0xFFFFFFFFu);
  table_ = lim;
}

uint32_t ModuleBuilder::add_global(ValType type, bool mutable_,
                                   uint64_t init_bits) {
  globals_.push_back({type, mutable_, init_bits});
  return static_cast<uint32_t>(globals_.size() - 1);
}

void ModuleBuilder::add_export(const std::string& name, ExternalKind kind,
                               uint32_t index) {
  exports_.push_back({name, kind, index});
}

void ModuleBuilder::add_element(uint32_t offset,
                                std::vector<uint32_t> func_indices) {
  elements_.push_back({offset, std::move(func_indices)});
}

void ModuleBuilder::add_data(uint32_t offset, std::vector<uint8_t> bytes) {
  data_.push_back({offset, std::move(bytes)});
}

std::vector<uint8_t> ModuleBuilder::build() const {
  ByteWriter out;
  out.u8(0x00);
  out.u8('a');
  out.u8('s');
  out.u8('m');
  out.u8(0x01);
  out.u8(0x00);
  out.u8(0x00);
  out.u8(0x00);

  if (!types_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(types_.size()));
    for (const FuncType& ft : types_) {
      w.u8(0x60);
      w.u32_leb(static_cast<uint32_t>(ft.params.size()));
      for (ValType t : ft.params) w.u8(static_cast<uint8_t>(t));
      w.u32_leb(static_cast<uint32_t>(ft.results.size()));
      for (ValType t : ft.results) w.u8(static_cast<uint8_t>(t));
    }
    write_section(out, 1, w);
  }

  if (!imports_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(imports_.size()));
    for (const PendingImport& imp : imports_) {
      w.name(imp.module);
      w.name(imp.field);
      w.u8(0);  // function import
      w.u32_leb(imp.type_index);
    }
    write_section(out, 2, w);
  }

  if (!functions_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(functions_.size()));
    for (const FunctionBuilder& f : functions_) w.u32_leb(f.type_index_);
    write_section(out, 3, w);
  }

  if (table_) {
    ByteWriter w;
    w.u32_leb(1);
    w.u8(0x70);  // funcref
    write_limits(w, *table_);
    write_section(out, 4, w);
  }

  if (memory_) {
    ByteWriter w;
    w.u32_leb(1);
    write_limits(w, *memory_);
    write_section(out, 5, w);
  }

  if (!globals_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(globals_.size()));
    for (const PendingGlobal& g : globals_) {
      w.u8(static_cast<uint8_t>(g.type));
      w.u8(g.mutable_ ? 1 : 0);
      switch (g.type) {
        case ValType::kI32:
          w.u8(static_cast<uint8_t>(Op::kI32Const));
          w.i32_leb(static_cast<int32_t>(g.init));
          break;
        case ValType::kI64:
          w.u8(static_cast<uint8_t>(Op::kI64Const));
          w.i64_leb(static_cast<int64_t>(g.init));
          break;
        case ValType::kF32:
          w.u8(static_cast<uint8_t>(Op::kF32Const));
          w.f32_bits(static_cast<uint32_t>(g.init));
          break;
        case ValType::kF64:
          w.u8(static_cast<uint8_t>(Op::kF64Const));
          w.f64_bits(g.init);
          break;
      }
      w.u8(static_cast<uint8_t>(Op::kEnd));
    }
    write_section(out, 6, w);
  }

  if (!exports_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(exports_.size()));
    for (const PendingExport& e : exports_) {
      w.name(e.name);
      w.u8(static_cast<uint8_t>(e.kind));
      w.u32_leb(e.index);
    }
    write_section(out, 7, w);
  }

  if (start_) {
    ByteWriter w;
    w.u32_leb(*start_);
    write_section(out, 8, w);
  }

  if (!elements_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(elements_.size()));
    for (const PendingElement& e : elements_) {
      w.u32_leb(0);  // table index
      w.u8(static_cast<uint8_t>(Op::kI32Const));
      w.i32_leb(static_cast<int32_t>(e.offset));
      w.u8(static_cast<uint8_t>(Op::kEnd));
      w.u32_leb(static_cast<uint32_t>(e.funcs.size()));
      for (uint32_t f : e.funcs) w.u32_leb(f);
    }
    write_section(out, 9, w);
  }

  if (!functions_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(functions_.size()));
    for (const FunctionBuilder& f : functions_) {
      assert(f.depth_ == 0 && "function body must close with end()");
      ByteWriter body;
      // Locals are emitted as runs of identical types.
      std::vector<std::pair<uint32_t, ValType>> groups;
      for (ValType t : f.locals_) {
        if (!groups.empty() && groups.back().second == t) {
          ++groups.back().first;
        } else {
          groups.push_back({1, t});
        }
      }
      body.u32_leb(static_cast<uint32_t>(groups.size()));
      for (auto& [n, t] : groups) {
        body.u32_leb(n);
        body.u8(static_cast<uint8_t>(t));
      }
      body.raw(f.w_.bytes);
      w.u32_leb(static_cast<uint32_t>(body.bytes.size()));
      w.raw(body.bytes);
    }
    write_section(out, 10, w);
  }

  if (!data_.empty()) {
    ByteWriter w;
    w.u32_leb(static_cast<uint32_t>(data_.size()));
    for (const PendingData& d : data_) {
      w.u32_leb(0);  // memory index
      w.u8(static_cast<uint8_t>(Op::kI32Const));
      w.i32_leb(static_cast<int32_t>(d.offset));
      w.u8(static_cast<uint8_t>(Op::kEnd));
      w.u32_leb(static_cast<uint32_t>(d.bytes.size()));
      w.raw(d.bytes);
    }
    write_section(out, 11, w);
  }

  return out.bytes;
}

}  // namespace sledge::wasm
