// Programmatic WebAssembly module construction.
//
// The mini-C compiler and the test suites author modules through this
// builder; build() emits a genuine Wasm 1.0 binary which then flows through
// the same decoder/validator path as any external module — the builder is
// *not* a side door into the engine.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "wasm/leb128.hpp"
#include "wasm/module.hpp"
#include "wasm/types.hpp"

namespace sledge::wasm {

class ModuleBuilder;

// Emits the instruction stream for one function body. All emitters append
// binary-format bytes immediately; structural correctness (balanced end)
// is asserted at finish().
class FunctionBuilder {
 public:
  // Declares an additional local of type t; returns its index (params come
  // first in the local index space).
  uint32_t add_local(ValType t) {
    locals_.push_back(t);
    return num_params_ + static_cast<uint32_t>(locals_.size()) - 1;
  }

  void emit(Op op) { w_.u8(static_cast<uint8_t>(op)); }

  void block(std::optional<ValType> result = std::nullopt) {
    emit(Op::kBlock);
    block_type(result);
    ++depth_;
  }
  void loop(std::optional<ValType> result = std::nullopt) {
    emit(Op::kLoop);
    block_type(result);
    ++depth_;
  }
  void if_(std::optional<ValType> result = std::nullopt) {
    emit(Op::kIf);
    block_type(result);
    ++depth_;
  }
  void else_() { emit(Op::kElse); }
  void end() {
    emit(Op::kEnd);
    --depth_;
  }

  void br(uint32_t depth) {
    emit(Op::kBr);
    w_.u32_leb(depth);
  }
  void br_if(uint32_t depth) {
    emit(Op::kBrIf);
    w_.u32_leb(depth);
  }
  void br_table(const std::vector<uint32_t>& targets, uint32_t default_target) {
    emit(Op::kBrTable);
    w_.u32_leb(static_cast<uint32_t>(targets.size()));
    for (uint32_t t : targets) w_.u32_leb(t);
    w_.u32_leb(default_target);
  }
  void ret() { emit(Op::kReturn); }
  void call(uint32_t func_index) {
    emit(Op::kCall);
    w_.u32_leb(func_index);
  }
  void call_indirect(uint32_t type_index) {
    emit(Op::kCallIndirect);
    w_.u32_leb(type_index);
    w_.u8(0);  // reserved table index
  }

  void local_get(uint32_t i) {
    emit(Op::kLocalGet);
    w_.u32_leb(i);
  }
  void local_set(uint32_t i) {
    emit(Op::kLocalSet);
    w_.u32_leb(i);
  }
  void local_tee(uint32_t i) {
    emit(Op::kLocalTee);
    w_.u32_leb(i);
  }
  void global_get(uint32_t i) {
    emit(Op::kGlobalGet);
    w_.u32_leb(i);
  }
  void global_set(uint32_t i) {
    emit(Op::kGlobalSet);
    w_.u32_leb(i);
  }

  void i32_const(int32_t v) {
    emit(Op::kI32Const);
    w_.i32_leb(v);
  }
  void i64_const(int64_t v) {
    emit(Op::kI64Const);
    w_.i64_leb(v);
  }
  void f32_const(float v) {
    emit(Op::kF32Const);
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    w_.f32_bits(bits);
  }
  void f64_const(double v) {
    emit(Op::kF64Const);
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    w_.f64_bits(bits);
  }

  // Memory access; align_log2 defaults to the natural alignment.
  void mem(Op op, uint32_t offset = 0, int align_log2 = -1) {
    emit(op);
    uint32_t width = access_width(op);
    uint32_t natural = width == 1 ? 0 : width == 2 ? 1 : width == 4 ? 2 : 3;
    w_.u32_leb(align_log2 < 0 ? natural : static_cast<uint32_t>(align_log2));
    w_.u32_leb(offset);
  }
  void memory_size() {
    emit(Op::kMemorySize);
    w_.u8(0);
  }
  void memory_grow() {
    emit(Op::kMemoryGrow);
    w_.u8(0);
  }

  int depth() const { return depth_; }

 private:
  friend class ModuleBuilder;
  FunctionBuilder(uint32_t type_index, uint32_t num_params)
      : type_index_(type_index), num_params_(num_params) {}

  void block_type(std::optional<ValType> result) {
    w_.u8(result ? static_cast<uint8_t>(*result) : 0x40);
  }

  uint32_t type_index_;
  uint32_t num_params_;
  std::vector<ValType> locals_;
  ByteWriter w_;
  int depth_ = 1;  // implicit function block
};

class ModuleBuilder {
 public:
  // Returns the index of the (possibly deduplicated) function type.
  uint32_t add_type(FuncType ft);
  uint32_t add_type(std::vector<ValType> params, std::vector<ValType> results) {
    return add_type(FuncType{std::move(params), std::move(results)});
  }

  // All imports must be added before the first declare_function call.
  uint32_t add_import(const std::string& module, const std::string& field,
                      uint32_t type_index);

  // Reserves a function index (imports + declaration order); the body is
  // attached later via function(). Two-phase so bodies can call forward.
  uint32_t declare_function(uint32_t type_index);
  FunctionBuilder& function(uint32_t func_index);

  void set_memory(uint32_t min_pages, std::optional<uint32_t> max_pages = {});
  void set_table(uint32_t min, std::optional<uint32_t> max = {});
  uint32_t add_global(ValType type, bool mutable_, uint64_t init_bits);
  void add_export(const std::string& name, ExternalKind kind, uint32_t index);
  void export_function(const std::string& name, uint32_t func_index) {
    add_export(name, ExternalKind::kFunction, func_index);
  }
  void add_element(uint32_t offset, std::vector<uint32_t> func_indices);
  void add_data(uint32_t offset, std::vector<uint8_t> bytes);
  void set_start(uint32_t func_index) { start_ = func_index; }

  uint32_t num_imports() const { return static_cast<uint32_t>(imports_.size()); }

  std::vector<uint8_t> build() const;

 private:
  struct PendingImport {
    std::string module, field;
    uint32_t type_index;
  };
  struct PendingGlobal {
    ValType type;
    bool mutable_;
    uint64_t init;
  };
  struct PendingExport {
    std::string name;
    ExternalKind kind;
    uint32_t index;
  };
  struct PendingElement {
    uint32_t offset;
    std::vector<uint32_t> funcs;
  };
  struct PendingData {
    uint32_t offset;
    std::vector<uint8_t> bytes;
  };

  std::vector<FuncType> types_;
  std::vector<PendingImport> imports_;
  std::vector<FunctionBuilder> functions_;
  std::optional<Limits> memory_;
  std::optional<Limits> table_;
  std::vector<PendingGlobal> globals_;
  std::vector<PendingExport> exports_;
  std::vector<PendingElement> elements_;
  std::vector<PendingData> data_;
  std::optional<uint32_t> start_;
};

}  // namespace sledge::wasm
