#include "wasm/decoder.hpp"

#include <string>

#include "wasm/leb128.hpp"

namespace sledge::wasm {
namespace {

// Defensive ceiling on every vector count read from the binary, so a hostile
// module cannot make us allocate unbounded memory before validation.
constexpr uint32_t kMaxCount = 1u << 20;

class Decoder {
 public:
  explicit Decoder(const uint8_t* data, size_t size) : r_(data, size) {}

  Result<Module> run() {
    uint8_t magic[4];
    if (!r_.read_bytes(magic, 4) || magic[0] != 0 || magic[1] != 'a' ||
        magic[2] != 's' || magic[3] != 'm') {
      return err("bad magic");
    }
    uint8_t version[4];
    if (!r_.read_bytes(version, 4) || version[0] != 1 || version[1] != 0 ||
        version[2] != 0 || version[3] != 0) {
      return err("unsupported version");
    }

    int last_section = 0;
    while (!r_.at_end()) {
      uint8_t id = r_.read_u8();
      uint32_t size = r_.read_u32_leb();
      if (!r_.ok()) return err("truncated section header");
      if (size > r_.remaining()) return err("section size beyond end");
      size_t section_end = r_.pos + size;

      if (id != 0) {  // custom sections may appear anywhere
        if (id <= last_section) return err("out-of-order section");
        if (id > 11) return err("unknown section id");
        last_section = id;
      }

      Status s = Status::ok();
      switch (id) {
        case 0: r_.skip(size); break;  // custom: name payload ignored
        case 1: s = decode_types(); break;
        case 2: s = decode_imports(); break;
        case 3: s = decode_func_decls(); break;
        case 4: s = decode_table(); break;
        case 5: s = decode_memory(); break;
        case 6: s = decode_globals(); break;
        case 7: s = decode_exports(); break;
        case 8: s = decode_start(); break;
        case 9: s = decode_elements(); break;
        case 10: s = decode_code(); break;
        case 11: s = decode_data(); break;
        default: return err("unreachable section id");
      }
      if (!s.is_ok()) return Result<Module>(s);
      if (!r_.ok()) return err("truncated section body");
      if (r_.pos != section_end) return err("section size mismatch");
    }

    if (m_.functions.size() != func_type_decls_.size()) {
      return err("function and code section counts differ");
    }
    return Result<Module>(std::move(m_));
  }

 private:
  Result<Module> err(const std::string& msg) {
    return Result<Module>::error("wasm decode: " + msg + " (offset " +
                                 std::to_string(r_.pos) + ")");
  }
  Status serr(const std::string& msg) {
    return Status::error("wasm decode: " + msg + " (offset " +
                         std::to_string(r_.pos) + ")");
  }

  Result<ValType> read_val_type() {
    uint8_t b = r_.read_u8();
    if (!r_.ok() || !is_val_type(b)) {
      return Result<ValType>::error("invalid value type");
    }
    return Result<ValType>(static_cast<ValType>(b));
  }

  Status read_limits(Limits* out) {
    uint8_t flags = r_.read_u8();
    if (flags > 1) return serr("bad limits flags");
    out->min = r_.read_u32_leb();
    out->has_max = flags == 1;
    out->max = out->has_max ? r_.read_u32_leb() : 0xFFFFFFFFu;
    if (out->has_max && out->max < out->min) return serr("limits max < min");
    return Status::ok();
  }

  Status read_name(std::string* out) {
    uint32_t n = r_.read_u32_leb();
    if (!r_.ok() || n > r_.remaining()) return serr("bad name length");
    out->assign(reinterpret_cast<const char*>(r_.data + r_.pos), n);
    r_.skip(n);
    return Status::ok();
  }

  Status decode_types() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("type count too large");
    for (uint32_t i = 0; i < count; ++i) {
      if (r_.read_u8() != 0x60) return serr("expected functype tag 0x60");
      FuncType ft;
      uint32_t nparams = r_.read_u32_leb();
      if (nparams > kMaxCount) return serr("param count too large");
      for (uint32_t p = 0; p < nparams; ++p) {
        auto t = read_val_type();
        if (!t.ok()) return t.status();
        ft.params.push_back(t.value());
      }
      uint32_t nresults = r_.read_u32_leb();
      if (nresults > 1) return serr("multi-value results unsupported (MVP)");
      for (uint32_t q = 0; q < nresults; ++q) {
        auto t = read_val_type();
        if (!t.ok()) return t.status();
        ft.results.push_back(t.value());
      }
      m_.types.push_back(std::move(ft));
    }
    return Status::ok();
  }

  Status decode_imports() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("import count too large");
    for (uint32_t i = 0; i < count; ++i) {
      Import imp;
      Status s = read_name(&imp.module);
      if (!s.is_ok()) return s;
      s = read_name(&imp.field);
      if (!s.is_ok()) return s;
      uint8_t kind = r_.read_u8();
      if (kind != 0) {
        // Sledge modules own their memory/table; only function imports (the
        // runtime's host ABI) cross the sandbox boundary.
        return serr("only function imports are supported");
      }
      imp.kind = ExternalKind::kFunction;
      imp.type_index = r_.read_u32_leb();
      if (imp.type_index >= m_.types.size()) {
        return serr("import type index out of range");
      }
      m_.imports.push_back(std::move(imp));
    }
    return Status::ok();
  }

  Status decode_func_decls() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("function count too large");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t type_index = r_.read_u32_leb();
      if (type_index >= m_.types.size()) {
        return serr("function type index out of range");
      }
      func_type_decls_.push_back(type_index);
    }
    return Status::ok();
  }

  Status decode_table() {
    uint32_t count = r_.read_u32_leb();
    if (count > 1) return serr("at most one table (MVP)");
    if (count == 1) {
      if (r_.read_u8() != 0x70) return serr("table element type must be funcref");
      Limits lim;
      Status s = read_limits(&lim);
      if (!s.is_ok()) return s;
      m_.table = lim;
    }
    return Status::ok();
  }

  Status decode_memory() {
    uint32_t count = r_.read_u32_leb();
    if (count > 1) return serr("at most one memory (MVP)");
    if (count == 1) {
      Limits lim;
      Status s = read_limits(&lim);
      if (!s.is_ok()) return s;
      if (lim.min > kMaxPages || (lim.has_max && lim.max > kMaxPages)) {
        return serr("memory limits exceed 4GiB");
      }
      m_.memory = lim;
    }
    return Status::ok();
  }

  // MVP initializer expressions: a single const instruction + end.
  Status read_const_init(ValType expected, uint64_t* out) {
    uint8_t op = r_.read_u8();
    switch (static_cast<Op>(op)) {
      case Op::kI32Const:
        if (expected != ValType::kI32) return serr("init type mismatch");
        *out = static_cast<uint64_t>(
            static_cast<int64_t>(r_.read_i32_leb()));
        break;
      case Op::kI64Const:
        if (expected != ValType::kI64) return serr("init type mismatch");
        *out = static_cast<uint64_t>(r_.read_i64_leb());
        break;
      case Op::kF32Const:
        if (expected != ValType::kF32) return serr("init type mismatch");
        *out = r_.read_f32_bits();
        break;
      case Op::kF64Const:
        if (expected != ValType::kF64) return serr("init type mismatch");
        *out = r_.read_f64_bits();
        break;
      default:
        return serr("unsupported initializer expression");
    }
    if (static_cast<Op>(r_.read_u8()) != Op::kEnd) {
      return serr("initializer must end with 'end'");
    }
    return Status::ok();
  }

  Status decode_globals() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("global count too large");
    for (uint32_t i = 0; i < count; ++i) {
      GlobalDef g;
      auto t = read_val_type();
      if (!t.ok()) return t.status();
      g.type = t.value();
      uint8_t mut = r_.read_u8();
      if (mut > 1) return serr("bad global mutability");
      g.mutable_ = mut == 1;
      Status s = read_const_init(g.type, &g.init_value);
      if (!s.is_ok()) return s;
      m_.globals.push_back(g);
    }
    return Status::ok();
  }

  Status decode_exports() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("export count too large");
    for (uint32_t i = 0; i < count; ++i) {
      Export e;
      Status s = read_name(&e.name);
      if (!s.is_ok()) return s;
      uint8_t kind = r_.read_u8();
      if (kind > 3) return serr("bad export kind");
      e.kind = static_cast<ExternalKind>(kind);
      e.index = r_.read_u32_leb();
      m_.exports.push_back(std::move(e));
    }
    return Status::ok();
  }

  Status decode_start() {
    m_.start = r_.read_u32_leb();
    return Status::ok();
  }

  Status decode_elements() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("element count too large");
    for (uint32_t i = 0; i < count; ++i) {
      ElementSegment seg;
      seg.table_index = r_.read_u32_leb();
      if (seg.table_index != 0) return serr("element table index must be 0");
      uint64_t off = 0;
      Status s = read_const_init(ValType::kI32, &off);
      if (!s.is_ok()) return s;
      seg.offset = static_cast<uint32_t>(off);
      uint32_t n = r_.read_u32_leb();
      if (n > kMaxCount) return serr("element segment too large");
      for (uint32_t j = 0; j < n; ++j) {
        seg.func_indices.push_back(r_.read_u32_leb());
      }
      m_.elements.push_back(std::move(seg));
    }
    return Status::ok();
  }

  Status decode_data() {
    uint32_t count = r_.read_u32_leb();
    if (count > kMaxCount) return serr("data count too large");
    for (uint32_t i = 0; i < count; ++i) {
      DataSegment seg;
      seg.memory_index = r_.read_u32_leb();
      if (seg.memory_index != 0) return serr("data memory index must be 0");
      uint64_t off = 0;
      Status s = read_const_init(ValType::kI32, &off);
      if (!s.is_ok()) return s;
      seg.offset = static_cast<uint32_t>(off);
      uint32_t n = r_.read_u32_leb();
      if (!r_.ok() || n > r_.remaining()) return serr("data segment too large");
      seg.bytes.assign(r_.data + r_.pos, r_.data + r_.pos + n);
      r_.skip(n);
      m_.data.push_back(std::move(seg));
    }
    return Status::ok();
  }

  Status decode_code() {
    uint32_t count = r_.read_u32_leb();
    if (count != func_type_decls_.size()) {
      return serr("code count != function count");
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t body_size = r_.read_u32_leb();
      if (!r_.ok() || body_size > r_.remaining()) {
        return serr("code body size beyond end");
      }
      size_t body_end = r_.pos + body_size;

      FunctionBody body;
      body.type_index = func_type_decls_[i];

      uint32_t local_groups = r_.read_u32_leb();
      if (local_groups > kMaxCount) return serr("too many local groups");
      uint64_t total_locals = 0;
      for (uint32_t g = 0; g < local_groups; ++g) {
        uint32_t n = r_.read_u32_leb();
        auto t = read_val_type();
        if (!t.ok()) return t.status();
        total_locals += n;
        if (total_locals > 65536) return serr("too many locals");
        body.locals.insert(body.locals.end(), n, t.value());
      }

      Status s = decode_expr(&body.code, body_end);
      if (!s.is_ok()) return s;
      if (r_.pos != body_end) return serr("code body size mismatch");
      m_.functions.push_back(std::move(body));
    }
    return Status::ok();
  }

  // Decodes instructions until the `end` matching the implicit function
  // block. Nesting is tracked structurally; type checking happens later.
  Status decode_expr(std::vector<Instr>* out, size_t limit) {
    int depth = 1;
    while (true) {
      if (r_.pos >= limit) return serr("unterminated expression");
      Instr ins;
      uint8_t opb = r_.read_u8();
      if (!r_.ok()) return serr("truncated opcode");
      if (!is_known_opcode(opb)) {
        return serr("unknown opcode 0x" + hex(opb));
      }
      ins.op = static_cast<Op>(opb);

      switch (imm_kind(ins.op)) {
        case ImmKind::kNone:
          break;
        case ImmKind::kBlockType: {
          uint8_t bt = r_.read_u8();
          if (bt != 0x40 && !is_val_type(bt)) return serr("bad block type");
          ins.block_type = bt;
          break;
        }
        case ImmKind::kLabel:
          ins.a = r_.read_u32_leb();
          break;
        case ImmKind::kBrTable: {
          uint32_t n = r_.read_u32_leb();
          if (n > kMaxCount) return serr("br_table too large");
          std::vector<uint32_t> targets(n + 1);
          for (uint32_t j = 0; j < n; ++j) targets[j] = r_.read_u32_leb();
          targets[n] = r_.read_u32_leb();  // default target last
          ins.b = static_cast<uint32_t>(m_.br_tables.size());
          m_.br_tables.push_back(std::move(targets));
          break;
        }
        case ImmKind::kFuncIdx:
        case ImmKind::kLocalIdx:
        case ImmKind::kGlobalIdx:
          ins.a = r_.read_u32_leb();
          break;
        case ImmKind::kTypeIdxTableIdx:
          ins.a = r_.read_u32_leb();
          if (r_.read_u8() != 0) return serr("call_indirect reserved byte");
          break;
        case ImmKind::kMemArg: {
          ins.a = r_.read_u32_leb();  // log2(alignment)
          ins.b = r_.read_u32_leb();  // offset
          uint32_t width = access_width(ins.op);
          uint32_t natural = width == 1 ? 0 : width == 2 ? 1 : width == 4 ? 2 : 3;
          if (ins.a > natural) return serr("alignment exceeds natural");
          break;
        }
        case ImmKind::kMemIdx:
          if (r_.read_u8() != 0) return serr("memory index reserved byte");
          break;
        case ImmKind::kI32Const:
          ins.imm = static_cast<uint64_t>(
              static_cast<int64_t>(r_.read_i32_leb()));
          break;
        case ImmKind::kI64Const:
          ins.imm = static_cast<uint64_t>(r_.read_i64_leb());
          break;
        case ImmKind::kF32Const:
          ins.imm = r_.read_f32_bits();
          break;
        case ImmKind::kF64Const:
          ins.imm = r_.read_f64_bits();
          break;
      }
      if (!r_.ok()) return serr("truncated immediate");

      if (ins.op == Op::kBlock || ins.op == Op::kLoop || ins.op == Op::kIf) {
        ++depth;
      } else if (ins.op == Op::kEnd) {
        --depth;
      }
      out->push_back(ins);
      if (depth == 0) return Status::ok();
    }
  }

  static bool is_known_opcode(uint8_t b) {
    if (b <= 0x11) {
      return b <= 0x05 || b == 0x0B || (b >= 0x0C && b <= 0x11);
    }
    if (b == 0x1A || b == 0x1B) return true;
    if (b >= 0x20 && b <= 0x24) return true;
    if (b >= 0x28 && b <= 0xC4) return true;
    return false;
  }

  static std::string hex(uint8_t b) {
    const char* digits = "0123456789abcdef";
    return std::string{digits[b >> 4], digits[b & 0xF]};
  }

  ByteReader r_;
  Module m_;
  std::vector<uint32_t> func_type_decls_;
};

}  // namespace

Result<Module> decode(const uint8_t* data, size_t size) {
  return Decoder(data, size).run();
}

Result<Module> decode(const std::vector<uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

}  // namespace sledge::wasm
