#include "wasm/disasm.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace sledge::wasm {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

std::string type_use(const FuncType& ft) {
  std::string s;
  if (!ft.params.empty()) {
    s += " (param";
    for (ValType t : ft.params) s += std::string(" ") + to_string(t);
    s += ")";
  }
  if (!ft.results.empty()) {
    s += " (result";
    for (ValType t : ft.results) s += std::string(" ") + to_string(t);
    s += ")";
  }
  return s;
}

std::string block_suffix(const Instr& ins) {
  if (ins.block_type == 0x40) return "";
  return std::string(" (result ") +
         to_string(static_cast<ValType>(ins.block_type)) + ")";
}

void disasm_body(const Module& m, const FunctionBody& body, std::string* out) {
  int indent = 2;
  auto pad = [&] { out->append(static_cast<size_t>(indent) * 2, ' '); };

  for (size_t i = 0; i < body.code.size(); ++i) {
    const Instr& ins = body.code[i];
    if (ins.op == Op::kEnd || ins.op == Op::kElse) {
      if (indent > 1) --indent;
    }
    if (ins.op == Op::kEnd && i + 1 == body.code.size()) break;  // func end
    pad();
    switch (imm_kind(ins.op)) {
      case ImmKind::kNone:
        *out += op_name(ins.op);
        break;
      case ImmKind::kBlockType:
        *out += std::string(op_name(ins.op)) + block_suffix(ins);
        break;
      case ImmKind::kLabel:
      case ImmKind::kFuncIdx:
      case ImmKind::kLocalIdx:
      case ImmKind::kGlobalIdx:
        *out += fmt("%s %u", op_name(ins.op), ins.a);
        break;
      case ImmKind::kTypeIdxTableIdx:
        *out += fmt("%s (type %u)", op_name(ins.op), ins.a);
        break;
      case ImmKind::kBrTable: {
        *out += op_name(ins.op);
        const std::vector<uint32_t>& targets = m.br_tables[ins.b];
        for (uint32_t t : targets) *out += fmt(" %u", t);
        break;
      }
      case ImmKind::kMemArg:
        if (ins.b) {
          *out += fmt("%s offset=%u", op_name(ins.op), ins.b);
        } else {
          *out += op_name(ins.op);
        }
        break;
      case ImmKind::kMemIdx:
        *out += op_name(ins.op);
        break;
      case ImmKind::kI32Const:
        *out += fmt("i32.const %d", ins.imm_i32());
        break;
      case ImmKind::kI64Const:
        *out += fmt("i64.const %" PRId64, ins.imm_i64());
        break;
      case ImmKind::kF32Const: {
        float v;
        uint32_t bits = ins.f32_bits();
        std::memcpy(&v, &bits, 4);
        *out += fmt("f32.const %g", static_cast<double>(v));
        break;
      }
      case ImmKind::kF64Const: {
        double v;
        uint64_t bits = ins.f64_bits();
        std::memcpy(&v, &bits, 8);
        *out += fmt("f64.const %g", v);
        break;
      }
    }
    *out += "\n";
    if (ins.op == Op::kBlock || ins.op == Op::kLoop || ins.op == Op::kIf ||
        ins.op == Op::kElse) {
      ++indent;
    }
  }
}

}  // namespace

std::string disassemble_function(const Module& m, uint32_t func_index) {
  std::string out;
  const FuncType& ft = m.func_type(func_index);
  if (m.is_imported(func_index)) {
    const Import& imp = m.imports[func_index];
    out += fmt("  (import \"%s\" \"%s\" (func $f%u%s))\n", imp.module.c_str(),
               imp.field.c_str(), func_index, type_use(ft).c_str());
    return out;
  }
  const FunctionBody& body = m.functions[func_index - m.num_imported_funcs()];
  out += fmt("  (func $f%u%s", func_index, type_use(ft).c_str());
  if (!body.locals.empty()) {
    out += " (local";
    for (ValType t : body.locals) out += std::string(" ") + to_string(t);
    out += ")";
  }
  out += "\n";
  disasm_body(m, body, &out);
  out += "  )\n";
  return out;
}

std::string disassemble(const Module& m) {
  std::string out = "(module\n";

  if (m.memory) {
    out += fmt("  (memory %u", m.memory->min);
    if (m.memory->has_max) out += fmt(" %u", m.memory->max);
    out += ")\n";
  }
  if (m.table) {
    out += fmt("  (table %u", m.table->min);
    if (m.table->has_max) out += fmt(" %u", m.table->max);
    out += " funcref)\n";
  }
  for (size_t i = 0; i < m.globals.size(); ++i) {
    const GlobalDef& g = m.globals[i];
    out += fmt("  (global $g%zu %s%s%s)\n", i, g.mutable_ ? "(mut " : "",
               to_string(g.type), g.mutable_ ? ")" : "");
  }
  for (uint32_t i = 0; i < m.num_funcs(); ++i) {
    out += disassemble_function(m, i);
  }
  for (const ElementSegment& seg : m.elements) {
    out += fmt("  (elem (i32.const %u)", seg.offset);
    for (uint32_t f : seg.func_indices) out += fmt(" $f%u", f);
    out += ")\n";
  }
  for (const DataSegment& seg : m.data) {
    out += fmt("  (data (i32.const %u) ;; %zu bytes\n  )\n", seg.offset,
               seg.bytes.size());
  }
  for (const Export& e : m.exports) {
    const char* kind = e.kind == ExternalKind::kFunction ? "func"
                       : e.kind == ExternalKind::kMemory ? "memory"
                       : e.kind == ExternalKind::kTable  ? "table"
                                                         : "global";
    out += fmt("  (export \"%s\" (%s %u))\n", e.name.c_str(), kind, e.index);
  }
  if (m.start) out += fmt("  (start $f%u)\n", *m.start);
  out += ")\n";
  return out;
}

}  // namespace sledge::wasm
