#include "apps/native_host.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace {
std::vector<uint8_t> g_request;
std::vector<uint8_t> g_response;
}  // namespace

namespace sledge::apps {

void native_host_set_request(std::vector<uint8_t> request) {
  g_request = std::move(request);
  g_response.clear();
}

const std::vector<uint8_t>& native_host_response() { return g_response; }

void native_host_reset() {
  g_request.clear();
  g_response.clear();
}

}  // namespace sledge::apps

extern "C" {

int32_t mc_req_len(void) { return static_cast<int32_t>(g_request.size()); }

int32_t mc_req_read(void* dst, int32_t off, int32_t len) {
  if (off < 0 || len < 0 || static_cast<size_t>(off) >= g_request.size()) {
    return 0;
  }
  size_t n = std::min(static_cast<size_t>(len), g_request.size() - off);
  std::memcpy(dst, g_request.data() + off, n);
  return static_cast<int32_t>(n);
}

int32_t mc_resp_write(const void* src, int32_t len) {
  if (len < 0) return 0;
  const uint8_t* p = static_cast<const uint8_t*>(src);
  g_response.insert(g_response.end(), p, p + len);
  return len;
}

void mc_sleep_ms(int32_t ms) {
  if (ms > 0) ::usleep(static_cast<useconds_t>(ms) * 1000);
}

void mc_debug_i32(int32_t) {}

double mc_req_f64(int32_t off) {
  double v = 0;
  if (off >= 0 && static_cast<size_t>(off) + 8 <= g_request.size()) {
    std::memcpy(&v, g_request.data() + off, 8);
  }
  return v;
}

void mc_resp_f64(double v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  g_response.insert(g_response.end(), p, p + 8);
}

int32_t mc_req_i32(int32_t off) {
  int32_t v = 0;
  if (off >= 0 && static_cast<size_t>(off) + 4 <= g_request.size()) {
    std::memcpy(&v, g_request.data() + off, 4);
  }
  return v;
}

void mc_resp_i32(int32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  g_response.insert(g_response.end(), p, p + 4);
}

// Async host I/O is a runtime service (sockets, sibling functions); the
// native baseline has neither, so these report "unsupported" (-1, matching
// engine::kSbErrUnsupported) like a Wasm sandbox with no hooks installed.
int32_t mc_sb_connect(const void*, int32_t, int32_t) { return -1; }
int32_t mc_sb_send(int32_t, const void*, int32_t) { return -1; }
int32_t mc_sb_recv(int32_t, void*, int32_t) { return -1; }
int32_t mc_sb_close(int32_t) { return -1; }
int32_t mc_sb_invoke(const void*, int32_t, const void*, int32_t, void*,
                     int32_t) {
  return -1;
}
int32_t mc_sb_invoke_stream(const void*, int32_t, const void*, int32_t) {
  return -1;
}

}  // extern "C"
