// Workload catalog: loads the mini-C application sources shipped under
// src/apps/wasm_src (and the PolyBench kernels under src/apps/polybench),
// compiles them on demand, and generates representative request payloads.
// Shared by tests, benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sledge::apps {

// Names of the real-world edge applications from the paper's §5.2.
const std::vector<std::string>& app_names();       // ekf gocr cifar10 resize lpd
const std::vector<std::string>& polybench_names(); // 30 kernels

// Absolute path of a shipped mini-C source ("<name>.mc").
std::string app_source_path(const std::string& name);
std::string polybench_source_path(const std::string& name);

// Reads + returns the mini-C source text.
Result<std::string> load_app_source(const std::string& name);
Result<std::string> load_polybench_source(const std::string& name);

// Compiles a shipped app to Wasm bytes (through minicc).
Result<std::vector<uint8_t>> app_wasm(const std::string& name);
Result<std::vector<uint8_t>> polybench_wasm(const std::string& name);

// Representative request payload for an app (deterministic):
//   ekf     -> x[8] + P[8][8] + z[4] doubles
//   cifar10 -> 3072-byte image
//   gocr    -> 8192-byte page rendering "SLEDGE0..." with noise
//   resize  -> 49152-byte raster
//   lpd     -> 76800-byte scene with a plate at (110,150,100,30)
//   others  -> empty
std::vector<uint8_t> app_request(const std::string& name);

}  // namespace sledge::apps
