// Generic main() for natively compiled function binaries (fn_<app>):
// stdin = request body, stdout = response body. These are the executables
// the procfaas (Nuclio-model) baseline fork+execs per invocation, and also
// what the churn benchmark measures for the fork+exec+wait row of Table 3.
//
// FN_ENTRY is set per target by CMake to the generated <app>_main symbol.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "apps/native_host.hpp"

extern "C" int32_t FN_ENTRY(void);

int main() {
  std::vector<uint8_t> request;
  uint8_t buf[65536];
  ssize_t n;
  while ((n = ::read(0, buf, sizeof(buf))) > 0) {
    request.insert(request.end(), buf, buf + n);
  }
  sledge::apps::native_host_set_request(std::move(request));

  FN_ENTRY();

  const std::vector<uint8_t>& response = sledge::apps::native_host_response();
  size_t off = 0;
  while (off < response.size()) {
    ssize_t w = ::write(1, response.data() + off, response.size() - off);
    if (w <= 0) return 1;
    off += static_cast<size_t>(w);
  }
  return 0;
}
