#include "apps/workloads.hpp"

#include <cstring>

#include "common/file_util.hpp"
#include "common/rng.hpp"
#include "minicc/minicc.hpp"

#ifndef SLEDGE_APPS_DIR
#define SLEDGE_APPS_DIR "src/apps"
#endif

namespace sledge::apps {

const std::vector<std::string>& app_names() {
  static const std::vector<std::string> kNames = {"ekf", "gocr", "cifar10",
                                                  "resize", "lpd"};
  return kNames;
}

const std::vector<std::string>& polybench_names() {
  static const std::vector<std::string> kNames = {
      "correlation", "covariance",
      "gemm", "gemver", "gesummv", "symm", "syr2k", "syrk", "trmm",
      "2mm", "3mm", "atax", "bicg", "doitgen", "mvt",
      "cholesky", "durbin", "gramschmidt", "lu", "ludcmp", "trisolv",
      "deriche", "floyd-warshall", "nussinov",
      "adi", "fdtd-2d", "heat-3d", "jacobi-1d", "jacobi-2d", "seidel-2d"};
  return kNames;
}

std::string app_source_path(const std::string& name) {
  return std::string(SLEDGE_APPS_DIR) + "/wasm_src/" + name + ".mc";
}

std::string polybench_source_path(const std::string& name) {
  return std::string(SLEDGE_APPS_DIR) + "/polybench/" + name + ".mc";
}

Result<std::string> load_app_source(const std::string& name) {
  return read_file(app_source_path(name));
}

Result<std::string> load_polybench_source(const std::string& name) {
  return read_file(polybench_source_path(name));
}

Result<std::vector<uint8_t>> app_wasm(const std::string& name) {
  Result<std::string> src = load_app_source(name);
  if (!src.ok()) return Result<std::vector<uint8_t>>::error(src.error_message());
  return minicc::compile_to_wasm(src.value());
}

Result<std::vector<uint8_t>> polybench_wasm(const std::string& name) {
  Result<std::string> src = load_polybench_source(name);
  if (!src.ok()) return Result<std::vector<uint8_t>>::error(src.error_message());
  return minicc::compile_to_wasm(src.value());
}

namespace {

void append_f64(std::vector<uint8_t>* out, double v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + 8);
}

std::vector<uint8_t> ekf_request() {
  std::vector<uint8_t> out;
  // x: a vehicle moving along +x at 1 m/s.
  double x[8] = {0.0, 1.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0};
  for (double v : x) append_f64(&out, v);
  // P: identity.
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      append_f64(&out, i == j ? 1.0 : 0.0);
  // z: a plausible GPS fix.
  append_f64(&out, 0.12);
  append_f64(&out, 0.05);
  append_f64(&out, 0.01);
  append_f64(&out, 0.0);
  return out;
}

std::vector<uint8_t> cifar_request() {
  std::vector<uint8_t> out(3072);
  Rng rng(2024);
  // A blue-ish "airplane on sky" style gradient with a dark fuselage bar.
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      int i = (y * 32 + x) * 3;
      out[i + 0] = static_cast<uint8_t>(100 + y * 3 + rng.below(8));
      out[i + 1] = static_cast<uint8_t>(120 + y * 2);
      out[i + 2] = static_cast<uint8_t>(200 - y);
      if (y >= 14 && y <= 17 && x >= 4 && x <= 27) {
        out[i] = out[i + 1] = out[i + 2] = 40;
      }
    }
  }
  return out;
}

// Mirrors gocr.mc's template generator so tests can render pages.
void gocr_template(int code, uint8_t glyph[64]) {
  if (code == 32) {
    std::memset(glyph, 0, 64);
    return;
  }
  int32_t s = static_cast<int32_t>(code * 2654435761u);
  if (s < 0) s = -s;
  for (int i = 0; i < 64; ++i) {
    int64_t t = static_cast<int64_t>(s) * 1103515245 + 12345;
    s = static_cast<int32_t>(t & 2147483647);
    glyph[i] = static_cast<uint8_t>((s >> 16) & 1);
  }
  for (int i = 0; i < 8; ++i) glyph[i] = 1;
}

std::vector<uint8_t> gocr_request() {
  std::vector<uint8_t> page(8192, 0);
  Rng rng(90210);
  for (auto& b : page) {
    if (rng.below(100) < 3) b = 1;
  }
  const char* msg = "SLEDGE0";
  uint8_t glyph[64];
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 16; ++col) {
      gocr_template(msg[(row * 16 + col) % 7], glyph);
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          page[(row * 8 + y) * 128 + col * 8 + x] = glyph[y * 8 + x];
    }
  }
  return page;
}

std::vector<uint8_t> resize_request() {
  std::vector<uint8_t> img(49152);
  Rng rng(606);
  for (int y = 0; y < 192; ++y) {
    for (int x = 0; x < 256; ++x) {
      int v = (x * 255) / 256;
      if (((x / 16) + (y / 16)) % 2 == 0) v = 255 - v;
      v += static_cast<int>(rng.below(10));
      img[y * 256 + x] = static_cast<uint8_t>(v > 255 ? 255 : v);
    }
  }
  return img;
}

std::vector<uint8_t> lpd_request() {
  std::vector<uint8_t> img(76800);
  Rng rng(17);
  for (auto& b : img) b = static_cast<uint8_t>(96 + rng.below(32));
  // Plate at (110, 150) size 100x30, with vertical strokes.
  for (int y = 150; y < 180; ++y) {
    for (int x = 110; x < 210; ++x) {
      int v = 230;
      int sx = (x - 110) % 12;
      if (sx >= 3 && sx <= 5 && y > 155 && y < 175) v = 20;
      img[y * 320 + x] = static_cast<uint8_t>(v);
    }
  }
  return img;
}

}  // namespace

std::vector<uint8_t> app_request(const std::string& name) {
  if (name == "ekf") return ekf_request();
  if (name == "cifar10") return cifar_request();
  if (name == "gocr") return gocr_request();
  if (name == "resize") return resize_request();
  if (name == "lpd") return lpd_request();
  return {};
}

}  // namespace sledge::apps
