// Host side of the native (non-sandboxed) build of mini-C workloads: the
// mc_* functions the generated C calls. Request/response buffers are
// process-global (each procfaas function binary handles one request per
// process, mirroring the fork-per-invocation model).
#pragma once

#include <cstdint>
#include <vector>

namespace sledge::apps {

// Replaces the current request buffer and clears the response.
void native_host_set_request(std::vector<uint8_t> request);
const std::vector<uint8_t>& native_host_response();
void native_host_reset();

}  // namespace sledge::apps

extern "C" {
int32_t mc_req_len(void);
int32_t mc_req_read(void* dst, int32_t off, int32_t len);
int32_t mc_resp_write(const void* src, int32_t len);
void mc_sleep_ms(int32_t ms);
void mc_debug_i32(int32_t v);
double mc_req_f64(int32_t off);
void mc_resp_f64(double v);
int32_t mc_req_i32(int32_t off);
void mc_resp_i32(int32_t v);
}
