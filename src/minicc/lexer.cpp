#include "minicc/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

namespace sledge::minicc {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kKwChar: return "char";
    case Tok::kKwInt: return "int";
    case Tok::kKwLong: return "long";
    case Tok::kKwFloat: return "float";
    case Tok::kKwDouble: return "double";
    case Tok::kKwVoid: return "void";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwWhile: return "while";
    case Tok::kKwFor: return "for";
    case Tok::kKwReturn: return "return";
    case Tok::kKwBreak: return "break";
    case Tok::kKwContinue: return "continue";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kSemi: return ";";
    case Tok::kComma: return ",";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kTilde: return "~";
    case Tok::kAssign: return "=";
    case Tok::kPlusEq: return "+=";
    case Tok::kMinusEq: return "-=";
    case Tok::kStarEq: return "*=";
    case Tok::kSlashEq: return "/=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kBang: return "!";
    case Tok::kQuestion: return "?";
    case Tok::kColon: return ":";
  }
  return "?";
}

Result<std::vector<Token>> lex(const std::string& src) {
  static const std::map<std::string, Tok> kKeywords = {
      {"char", Tok::kKwChar},   {"int", Tok::kKwInt},
      {"long", Tok::kKwLong},   {"float", Tok::kKwFloat},
      {"double", Tok::kKwDouble}, {"void", Tok::kKwVoid},
      {"if", Tok::kKwIf},       {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile}, {"for", Tok::kKwFor},
      {"return", Tok::kKwReturn}, {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue},
  };

  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto fail = [&](const std::string& msg) {
    return Result<std::vector<Token>>::error(
        "minicc lex error at line " + std::to_string(line) + ": " + msg);
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // comments
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) return fail("unterminated block comment");
      i += 2;
      continue;
    }

    Token t;
    t.line = line;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      t.text = src.substr(start, i - start);
      auto kw = kKeywords.find(t.text);
      t.kind = kw == kKeywords.end() ? Tok::kIdent : kw->second;
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      bool is_hex = c == '0' && i + 1 < src.size() &&
                    (src[i + 1] == 'x' || src[i + 1] == 'X');
      if (is_hex) {
        i += 2;
        while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) ++i;
      } else {
        while (i < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[i])) ||
                src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                ((src[i] == '+' || src[i] == '-') && i > start &&
                 (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
          if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') is_float = true;
          ++i;
        }
      }
      std::string num = src.substr(start, i - start);
      // suffixes
      bool long_suffix = false, float_suffix = false;
      while (i < src.size() && (src[i] == 'L' || src[i] == 'l' ||
                                src[i] == 'f' || src[i] == 'F' ||
                                src[i] == 'u' || src[i] == 'U')) {
        if (src[i] == 'L' || src[i] == 'l') long_suffix = true;
        if (src[i] == 'f' || src[i] == 'F') float_suffix = true;
        ++i;
      }
      if (is_float || float_suffix) {
        t.kind = Tok::kFloatLit;
        t.float_value = std::strtod(num.c_str(), nullptr);
        t.text = float_suffix ? "f" : "";  // remembers 'f' suffix
      } else {
        t.kind = Tok::kIntLit;
        t.int_value = static_cast<int64_t>(
            std::strtoull(num.c_str(), nullptr, is_hex ? 16 : 10));
        t.text = long_suffix ? "L" : "";
      }
      out.push_back(std::move(t));
      continue;
    }

    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case '(': t.kind = Tok::kLParen; ++i; break;
      case ')': t.kind = Tok::kRParen; ++i; break;
      case '{': t.kind = Tok::kLBrace; ++i; break;
      case '}': t.kind = Tok::kRBrace; ++i; break;
      case '[': t.kind = Tok::kLBracket; ++i; break;
      case ']': t.kind = Tok::kRBracket; ++i; break;
      case ';': t.kind = Tok::kSemi; ++i; break;
      case ',': t.kind = Tok::kComma; ++i; break;
      case '~': t.kind = Tok::kTilde; ++i; break;
      case '?': t.kind = Tok::kQuestion; ++i; break;
      case ':': t.kind = Tok::kColon; ++i; break;
      case '+':
        if (two('+')) { t.kind = Tok::kPlusPlus; i += 2; }
        else if (two('=')) { t.kind = Tok::kPlusEq; i += 2; }
        else { t.kind = Tok::kPlus; ++i; }
        break;
      case '-':
        if (two('-')) { t.kind = Tok::kMinusMinus; i += 2; }
        else if (two('=')) { t.kind = Tok::kMinusEq; i += 2; }
        else { t.kind = Tok::kMinus; ++i; }
        break;
      case '*':
        if (two('=')) { t.kind = Tok::kStarEq; i += 2; }
        else { t.kind = Tok::kStar; ++i; }
        break;
      case '/':
        if (two('=')) { t.kind = Tok::kSlashEq; i += 2; }
        else { t.kind = Tok::kSlash; ++i; }
        break;
      case '%': t.kind = Tok::kPercent; ++i; break;
      case '&':
        if (two('&')) { t.kind = Tok::kAndAnd; i += 2; }
        else { t.kind = Tok::kAmp; ++i; }
        break;
      case '|':
        if (two('|')) { t.kind = Tok::kOrOr; i += 2; }
        else { t.kind = Tok::kPipe; ++i; }
        break;
      case '^': t.kind = Tok::kCaret; ++i; break;
      case '<':
        if (two('<')) { t.kind = Tok::kShl; i += 2; }
        else if (two('=')) { t.kind = Tok::kLe; i += 2; }
        else { t.kind = Tok::kLt; ++i; }
        break;
      case '>':
        if (two('>')) { t.kind = Tok::kShr; i += 2; }
        else if (two('=')) { t.kind = Tok::kGe; i += 2; }
        else { t.kind = Tok::kGt; ++i; }
        break;
      case '=':
        if (two('=')) { t.kind = Tok::kEq; i += 2; }
        else { t.kind = Tok::kAssign; ++i; }
        break;
      case '!':
        if (two('=')) { t.kind = Tok::kNe; i += 2; }
        else { t.kind = Tok::kBang; ++i; }
        break;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(t));
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  out.push_back(eof);
  return Result<std::vector<Token>>(std::move(out));
}

}  // namespace sledge::minicc
