// mini-C compiler facade.
//
// mini-C is the workload-authoring language of this repository — the
// stand-in for the paper's "compile C with clang to Wasm" step (DESIGN.md
// substitutions). One source compiles to:
//   * a genuine WebAssembly binary (compile_to_wasm) that flows through the
//     decoder -> validator -> engine tiers like any external module, and
//   * plain C (compile_to_c) built natively as the baseline twin.
//
// Language summary:
//   types       char (array elements only), int, long, float, double
//   globals     scalars (wasm globals) and 1-D/2-D arrays (linear memory)
//   functions   scalar params/returns; forward references allowed
//   statements  blocks, if/else, while, for, return, break, continue,
//               local scalar declarations
//   expressions C operators incl. ?:, && and || (short-circuit), casts,
//               compound assignment and ++/-- (value = updated value)
//   builtins    serverless ABI: req_len, req_read(arr,off,len),
//               resp_write(arr,len), sleep_ms, debug_i32
//               math: sqrt fabs floor ceil trunc fmin fmax (Wasm opcodes);
//               exp log sin cos tan atan tanh pow atan2 (env imports)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "minicc/ast.hpp"

namespace sledge::minicc {

// Lex + parse + type-check. Exposed for tests and tooling.
Result<Program> frontend(const std::string& source);

Result<std::vector<uint8_t>> compile_to_wasm(const std::string& source);
Result<std::string> compile_to_c(const std::string& source,
                                 const std::string& symbol_prefix);

}  // namespace sledge::minicc
