// mini-C lexer.
//
// mini-C is the workload-authoring language of this repository: a C subset
// (scalars, global arrays, functions, loops) that compiles to genuine Wasm
// bytecode (stand-in for the paper's clang->Wasm path) and to plain C (the
// native baseline). See docs in minicc.hpp for the language reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sledge::minicc {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  // keywords
  kKwChar, kKwInt, kKwLong, kKwFloat, kKwDouble, kKwVoid,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwReturn, kKwBreak, kKwContinue,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kShl, kShr, kTilde,
  kAssign, kPlusEq, kMinusEq, kStarEq, kSlashEq,
  kPlusPlus, kMinusMinus,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAndAnd, kOrOr, kBang,
  kQuestion, kColon,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier spelling
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
};

Result<std::vector<Token>> lex(const std::string& source);

const char* tok_name(Tok t);

}  // namespace sledge::minicc
