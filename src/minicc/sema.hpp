// mini-C semantic analysis: name resolution, type checking with C-style
// arithmetic promotions (implicit casts are materialized in the AST), local
// slot assignment, global memory layout, and builtin-usage collection.
#pragma once

#include "common/status.hpp"
#include "minicc/ast.hpp"

namespace sledge::minicc {

Status analyze(Program* program);

}  // namespace sledge::minicc
