// mini-C builtin functions: the serverless ABI (req_*/resp_*), math that
// maps to Wasm opcodes (sqrt, fabs, ...), and transcendental math that
// lowers to "env" imports (exp, pow, ...). The C backend spells the same
// builtins as libm calls / mc_* host functions so native and sandboxed
// builds share semantics.
#pragma once

#include <string>
#include <vector>

#include "wasm/types.hpp"

namespace sledge::minicc {

enum class BuiltinLower : uint8_t {
  kImport,  // call an "env" import
  kOpcode,  // single Wasm opcode
};

struct Builtin {
  const char* name;
  // Parameter spec, one char per param:
  //   'a' global array reference (lowers to base address / pointer)
  //   'i' int, 'l' long, 'd' double
  const char* params;
  char result;  // 'v' void, 'i', 'l', 'd'
  BuiltinLower lower;
  wasm::Op opcode;          // kOpcode only
  const char* import_field; // kImport only: "env" field name
  const char* c_spelling;   // native-C backend call target
};

const std::vector<Builtin>& builtins();
int find_builtin(const std::string& name);  // -1 when absent

}  // namespace sledge::minicc
