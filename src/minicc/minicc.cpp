#include "minicc/minicc.hpp"

#include "minicc/codegen_c.hpp"
#include "minicc/codegen_wasm.hpp"
#include "minicc/lexer.hpp"
#include "minicc/parser.hpp"
#include "minicc/sema.hpp"

namespace sledge::minicc {

Result<Program> frontend(const std::string& source) {
  Result<std::vector<Token>> tokens = lex(source);
  if (!tokens.ok()) return Result<Program>::error(tokens.error_message());
  Result<Program> prog = parse(tokens.value());
  if (!prog.ok()) return prog;
  Status s = analyze(&prog.value());
  if (!s.is_ok()) return Result<Program>::error(s.message());
  return prog;
}

Result<std::vector<uint8_t>> compile_to_wasm(const std::string& source) {
  Result<Program> prog = frontend(source);
  if (!prog.ok()) {
    return Result<std::vector<uint8_t>>::error(prog.error_message());
  }
  return generate_wasm(prog.value());
}

Result<std::string> compile_to_c(const std::string& source,
                                 const std::string& symbol_prefix) {
  Result<Program> prog = frontend(source);
  if (!prog.ok()) return Result<std::string>::error(prog.error_message());
  return generate_c(prog.value(), symbol_prefix);
}

}  // namespace sledge::minicc
