#include "minicc/codegen_wasm.hpp"

#include <map>
#include <string>

#include "minicc/builtins.hpp"
#include "wasm/builder.hpp"

namespace sledge::minicc {
namespace {

using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;

ValType vt(MType t) {
  switch (t) {
    case MType::kInt: return ValType::kI32;
    case MType::kLong: return ValType::kI64;
    case MType::kFloat: return ValType::kF32;
    case MType::kDouble: return ValType::kF64;
    default: return ValType::kI32;  // char promotes; void never materializes
  }
}

struct LoopCtx {
  int break_level;     // builder depth just inside the break block
  int continue_level;  // builder depth of the continue target
  bool continue_is_loop;
};

class WasmGen {
 public:
  explicit WasmGen(const Program& prog) : prog_(prog) {}

  Result<std::vector<uint8_t>> run() {
    // Imports for used builtins.
    for (int bi : prog_.used_builtins) {
      const Builtin& b = builtins()[bi];
      std::vector<ValType> params;
      for (const char* p = b.params; *p; ++p) {
        params.push_back(*p == 'a' ? ValType::kI32
                         : *p == 'i' ? ValType::kI32
                         : *p == 'l' ? ValType::kI64
                                     : ValType::kF64);
      }
      std::vector<ValType> results;
      if (b.result == 'i') results.push_back(ValType::kI32);
      if (b.result == 'l') results.push_back(ValType::kI64);
      if (b.result == 'd') results.push_back(ValType::kF64);
      uint32_t type_idx = b_.add_type(params, results);
      import_index_[bi] = b_.add_import("env", b.import_field, type_idx);
    }

    // Linear memory sized to the global arrays plus working slack.
    uint32_t min_pages = (prog_.memory_bytes_used + 65535u) / 65536u + 2;
    b_.set_memory(min_pages, min_pages + 64);

    // Wasm globals for mini-C scalar globals.
    for (const GlobalVar& g : prog_.globals) {
      if (g.is_array()) continue;
      uint64_t bits = 0;
      if (g.init) {
        const Expr& e = *g.init;
        switch (g.elem_type) {
          case MType::kInt:
            bits = static_cast<uint64_t>(static_cast<uint32_t>(
                e.kind == ExprKind::kIntLit ? e.int_value
                                            : static_cast<int64_t>(e.float_value)));
            break;
          case MType::kLong:
            bits = static_cast<uint64_t>(
                e.kind == ExprKind::kIntLit ? e.int_value
                                            : static_cast<int64_t>(e.float_value));
            break;
          case MType::kFloat: {
            float f = static_cast<float>(e.kind == ExprKind::kFloatLit
                                             ? e.float_value
                                             : static_cast<double>(e.int_value));
            uint32_t fb;
            std::memcpy(&fb, &f, 4);
            bits = fb;
            break;
          }
          case MType::kDouble: {
            double d = e.kind == ExprKind::kFloatLit
                           ? e.float_value
                           : static_cast<double>(e.int_value);
            std::memcpy(&bits, &d, 8);
            break;
          }
          default:
            break;
        }
      }
      b_.add_global(vt(g.elem_type), /*mutable=*/true, bits);
    }

    // Declare all functions (two-phase for forward calls).
    for (const Function& f : prog_.functions) {
      std::vector<ValType> params;
      for (const Param& p : f.params) params.push_back(vt(p.type));
      std::vector<ValType> results;
      if (f.return_type != MType::kVoid) results.push_back(vt(f.return_type));
      uint32_t type_idx = b_.add_type(params, results);
      func_index_.push_back(b_.declare_function(type_idx));
    }

    for (size_t i = 0; i < prog_.functions.size(); ++i) {
      Status s = gen_function(prog_.functions[i], func_index_[i]);
      if (!s.is_ok()) return Result<std::vector<uint8_t>>::error(s.message());
    }

    for (size_t i = 0; i < prog_.functions.size(); ++i) {
      b_.export_function(prog_.functions[i].name, func_index_[i]);
      if (prog_.functions[i].name == "main") {
        b_.export_function("run", func_index_[i]);
      }
    }

    return Result<std::vector<uint8_t>>(b_.build());
  }

 private:
  Status fail(int line, const std::string& msg) {
    return Status::error("minicc codegen error at line " +
                         std::to_string(line) + ": " + msg);
  }

  Status gen_function(const Function& fn, uint32_t func_index) {
    fb_ = &b_.function(func_index);
    cur_fn_ = &fn;
    scratch_.clear();
    // Declare non-param locals in slot order.
    for (size_t i = fn.params.size(); i < fn.local_types.size(); ++i) {
      fb_->add_local(vt(fn.local_types[i]));
    }
    loops_.clear();
    Status s = gen_stmt(*fn.body);
    if (!s.is_ok()) return s;
    // Implicit return value for fall-through paths.
    if (fn.return_type != MType::kVoid) {
      emit_zero(fn.return_type);
    }
    fb_->end();
    return Status::ok();
  }

  void emit_zero(MType t) {
    switch (t) {
      case MType::kLong: fb_->i64_const(0); break;
      case MType::kFloat: fb_->f32_const(0); break;
      case MType::kDouble: fb_->f64_const(0); break;
      default: fb_->i32_const(0); break;
    }
  }

  uint32_t scratch_local(MType t) {
    auto it = scratch_.find(t);
    if (it != scratch_.end()) return it->second;
    uint32_t idx = fb_->add_local(vt(t));
    scratch_[t] = idx;
    return idx;
  }

  // ---- statements ----
  Status gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const StmtPtr& child : s.body) {
          Status st = gen_stmt(*child);
          if (!st.is_ok()) return st;
        }
        return Status::ok();

      case StmtKind::kDecl:
        if (s.decl_init) {
          Status st = gen_expr(*s.decl_init);
          if (!st.is_ok()) return st;
          fb_->local_set(static_cast<uint32_t>(s.decl_local_index));
        }
        return Status::ok();

      case StmtKind::kExpr:
        return gen_expr_for_effect(*s.expr);

      case StmtKind::kIf: {
        Status st = gen_expr(*s.expr);
        if (!st.is_ok()) return st;
        fb_->if_();
        st = gen_stmt(*s.then_branch);
        if (!st.is_ok()) return st;
        if (s.else_branch) {
          fb_->else_();
          st = gen_stmt(*s.else_branch);
          if (!st.is_ok()) return st;
        }
        fb_->end();
        return Status::ok();
      }

      case StmtKind::kWhile: {
        fb_->block();
        int break_level = fb_->depth();
        fb_->loop();
        int loop_level = fb_->depth();
        Status st = gen_expr(*s.expr);
        if (!st.is_ok()) return st;
        fb_->emit(Op::kI32Eqz);
        fb_->br_if(static_cast<uint32_t>(fb_->depth() - break_level));
        loops_.push_back({break_level, loop_level, true});
        st = gen_stmt(*s.loop_body);
        loops_.pop_back();
        if (!st.is_ok()) return st;
        fb_->br(static_cast<uint32_t>(fb_->depth() - loop_level));
        fb_->end();
        fb_->end();
        return Status::ok();
      }

      case StmtKind::kFor: {
        Status st = Status::ok();
        if (s.init) {
          st = gen_stmt(*s.init);
          if (!st.is_ok()) return st;
        }
        fb_->block();
        int break_level = fb_->depth();
        fb_->loop();
        int loop_level = fb_->depth();
        if (s.expr) {
          st = gen_expr(*s.expr);
          if (!st.is_ok()) return st;
          fb_->emit(Op::kI32Eqz);
          fb_->br_if(static_cast<uint32_t>(fb_->depth() - break_level));
        }
        fb_->block();
        int continue_level = fb_->depth();
        loops_.push_back({break_level, continue_level, false});
        st = gen_stmt(*s.loop_body);
        loops_.pop_back();
        if (!st.is_ok()) return st;
        fb_->end();  // continue target: falls into the step
        if (s.step) {
          st = gen_stmt(*s.step);
          if (!st.is_ok()) return st;
        }
        fb_->br(static_cast<uint32_t>(fb_->depth() - loop_level));
        fb_->end();
        fb_->end();
        return Status::ok();
      }

      case StmtKind::kReturn:
        if (s.expr) {
          Status st = gen_expr(*s.expr);
          if (!st.is_ok()) return st;
        }
        fb_->ret();
        return Status::ok();

      case StmtKind::kBreak:
        fb_->br(static_cast<uint32_t>(fb_->depth() - loops_.back().break_level));
        return Status::ok();
      case StmtKind::kContinue:
        fb_->br(
            static_cast<uint32_t>(fb_->depth() - loops_.back().continue_level));
        return Status::ok();
    }
    return Status::ok();
  }

  // Expression evaluated purely for side effects (no value left on stack).
  Status gen_expr_for_effect(const Expr& e) {
    if (e.kind == ExprKind::kAssign) {
      return gen_assign(e, /*want_value=*/false);
    }
    Status st = gen_expr(e);
    if (!st.is_ok()) return st;
    if (e.type != MType::kVoid) fb_->emit(Op::kDrop);
    return Status::ok();
  }

  // ---- expressions: leave exactly one value (or none for void calls) ----
  Status gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        if (e.type == MType::kLong) {
          fb_->i64_const(e.int_value);
        } else {
          fb_->i32_const(static_cast<int32_t>(e.int_value));
        }
        return Status::ok();
      case ExprKind::kFloatLit:
        if (e.type == MType::kFloat) {
          fb_->f32_const(static_cast<float>(e.float_value));
        } else {
          fb_->f64_const(e.float_value);
        }
        return Status::ok();

      case ExprKind::kVar:
        if (e.local_index >= 0) {
          fb_->local_get(static_cast<uint32_t>(e.local_index));
        } else {
          const GlobalVar& g = prog_.globals[e.global_index];
          if (g.is_array()) {
            // Builtin array argument: its base address.
            fb_->i32_const(static_cast<int32_t>(g.mem_offset));
          } else {
            fb_->global_get(static_cast<uint32_t>(g.wasm_global_index));
          }
        }
        return Status::ok();

      case ExprKind::kIndex: {
        const GlobalVar& g = prog_.globals[e.global_index];
        Status st = gen_element_addr(e, g);
        if (!st.is_ok()) return st;
        switch (g.elem_type) {
          case MType::kChar: fb_->mem(Op::kI32Load8U); break;
          case MType::kInt: fb_->mem(Op::kI32Load); break;
          case MType::kLong: fb_->mem(Op::kI64Load); break;
          case MType::kFloat: fb_->mem(Op::kF32Load); break;
          case MType::kDouble: fb_->mem(Op::kF64Load); break;
          default: return fail(e.line, "bad element type");
        }
        return Status::ok();
      }

      case ExprKind::kCall:
        return gen_call(e);

      case ExprKind::kUnary:
        return gen_unary(e);

      case ExprKind::kBinary:
        return gen_binary(e);

      case ExprKind::kAssign:
        return gen_assign(e, /*want_value=*/true);

      case ExprKind::kCond: {
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        fb_->if_(vt(e.type));
        st = gen_expr(*e.b);
        if (!st.is_ok()) return st;
        fb_->else_();
        st = gen_expr(*e.c);
        if (!st.is_ok()) return st;
        fb_->end();
        return Status::ok();
      }

      case ExprKind::kCast: {
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        return gen_conversion(e.a->type, e.type, e.line);
      }
    }
    return Status::ok();
  }

  // Pushes the byte address of a (possibly 2-D) array element.
  Status gen_element_addr(const Expr& e, const GlobalVar& g) {
    Status st = gen_expr(*e.args[0]);
    if (!st.is_ok()) return st;
    if (g.dims.size() == 2) {
      fb_->i32_const(static_cast<int32_t>(g.dims[1]));
      fb_->emit(Op::kI32Mul);
      st = gen_expr(*e.args[1]);
      if (!st.is_ok()) return st;
      fb_->emit(Op::kI32Add);
    }
    int esize = type_size(g.elem_type);
    if (esize > 1) {
      fb_->i32_const(esize == 2 ? 1 : esize == 4 ? 2 : 3);
      fb_->emit(Op::kI32Shl);
    }
    fb_->i32_const(static_cast<int32_t>(g.mem_offset));
    fb_->emit(Op::kI32Add);
    return Status::ok();
  }

  Status gen_assign(const Expr& e, bool want_value) {
    const Expr& target = *e.a;
    if (target.kind == ExprKind::kVar) {
      Status st = gen_expr(*e.b);
      if (!st.is_ok()) return st;
      if (target.local_index >= 0) {
        if (want_value) {
          fb_->local_tee(static_cast<uint32_t>(target.local_index));
        } else {
          fb_->local_set(static_cast<uint32_t>(target.local_index));
        }
      } else {
        const GlobalVar& g = prog_.globals[target.global_index];
        fb_->global_set(static_cast<uint32_t>(g.wasm_global_index));
        if (want_value) {
          fb_->global_get(static_cast<uint32_t>(g.wasm_global_index));
        }
      }
      return Status::ok();
    }
    // array element store
    const GlobalVar& g = prog_.globals[target.global_index];
    Status st = gen_element_addr(target, g);
    if (!st.is_ok()) return st;
    st = gen_expr(*e.b);
    if (!st.is_ok()) return st;
    uint32_t tmp = 0;
    if (want_value) {
      tmp = scratch_local(e.type);
      fb_->local_tee(tmp);
    }
    switch (g.elem_type) {
      case MType::kChar: fb_->mem(Op::kI32Store8); break;
      case MType::kInt: fb_->mem(Op::kI32Store); break;
      case MType::kLong: fb_->mem(Op::kI64Store); break;
      case MType::kFloat: fb_->mem(Op::kF32Store); break;
      case MType::kDouble: fb_->mem(Op::kF64Store); break;
      default: return fail(e.line, "bad element type");
    }
    if (want_value) fb_->local_get(tmp);
    return Status::ok();
  }

  Status gen_call(const Expr& e) {
    if (e.builtin_index >= 0) {
      const Builtin& b = builtins()[e.builtin_index];
      for (const ExprPtr& arg : e.args) {
        Status st = gen_expr(*arg);
        if (!st.is_ok()) return st;
      }
      if (b.lower == BuiltinLower::kOpcode) {
        fb_->emit(b.opcode);
      } else {
        fb_->call(import_index_.at(e.builtin_index));
      }
      return Status::ok();
    }
    for (const ExprPtr& arg : e.args) {
      Status st = gen_expr(*arg);
      if (!st.is_ok()) return st;
    }
    fb_->call(func_index_[e.callee_index]);
    return Status::ok();
  }

  Status gen_unary(const Expr& e) {
    if (e.op == "!") {
      Status st = gen_expr(*e.a);
      if (!st.is_ok()) return st;
      switch (e.a->type) {
        case MType::kLong: fb_->emit(Op::kI64Eqz); break;
        case MType::kFloat:
          fb_->f32_const(0);
          fb_->emit(Op::kF32Eq);
          break;
        case MType::kDouble:
          fb_->f64_const(0);
          fb_->emit(Op::kF64Eq);
          break;
        default: fb_->emit(Op::kI32Eqz); break;
      }
      return Status::ok();
    }
    if (e.op == "~") {
      Status st = gen_expr(*e.a);
      if (!st.is_ok()) return st;
      if (e.type == MType::kLong) {
        fb_->i64_const(-1);
        fb_->emit(Op::kI64Xor);
      } else {
        fb_->i32_const(-1);
        fb_->emit(Op::kI32Xor);
      }
      return Status::ok();
    }
    // unary minus
    switch (e.type) {
      case MType::kFloat: {
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        fb_->emit(Op::kF32Neg);
        return Status::ok();
      }
      case MType::kDouble: {
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        fb_->emit(Op::kF64Neg);
        return Status::ok();
      }
      case MType::kLong: {
        fb_->i64_const(0);
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        fb_->emit(Op::kI64Sub);
        return Status::ok();
      }
      default: {
        fb_->i32_const(0);
        Status st = gen_expr(*e.a);
        if (!st.is_ok()) return st;
        fb_->emit(Op::kI32Sub);
        return Status::ok();
      }
    }
  }

  Status gen_binary(const Expr& e) {
    if (e.op == "&&") {
      Status st = gen_expr(*e.a);  // already an i32 condition (sema)
      if (!st.is_ok()) return st;
      fb_->if_(ValType::kI32);
      st = gen_expr(*e.b);
      if (!st.is_ok()) return st;
      fb_->emit(Op::kI32Eqz);
      fb_->emit(Op::kI32Eqz);  // normalize to 0/1
      fb_->else_();
      fb_->i32_const(0);
      fb_->end();
      return Status::ok();
    }
    if (e.op == "||") {
      Status st = gen_expr(*e.a);
      if (!st.is_ok()) return st;
      fb_->if_(ValType::kI32);
      fb_->i32_const(1);
      fb_->else_();
      st = gen_expr(*e.b);
      if (!st.is_ok()) return st;
      fb_->emit(Op::kI32Eqz);
      fb_->emit(Op::kI32Eqz);
      fb_->end();
      return Status::ok();
    }

    Status st = gen_expr(*e.a);
    if (!st.is_ok()) return st;
    st = gen_expr(*e.b);
    if (!st.is_ok()) return st;

    MType t = e.a->type;  // operands share the promoted type
    Op op;
    if (!binop_opcode(e.op, t, &op)) {
      return fail(e.line, "unsupported operator '" + e.op + "'");
    }
    fb_->emit(op);
    return Status::ok();
  }

  static bool binop_opcode(const std::string& op, MType t, Op* out) {
    struct Entry {
      const char* name;
      Op i32, i64, f32, f64;
    };
    static const Entry kMap[] = {
        {"+", Op::kI32Add, Op::kI64Add, Op::kF32Add, Op::kF64Add},
        {"-", Op::kI32Sub, Op::kI64Sub, Op::kF32Sub, Op::kF64Sub},
        {"*", Op::kI32Mul, Op::kI64Mul, Op::kF32Mul, Op::kF64Mul},
        {"/", Op::kI32DivS, Op::kI64DivS, Op::kF32Div, Op::kF64Div},
        {"%", Op::kI32RemS, Op::kI64RemS, Op::kNop, Op::kNop},
        {"&", Op::kI32And, Op::kI64And, Op::kNop, Op::kNop},
        {"|", Op::kI32Or, Op::kI64Or, Op::kNop, Op::kNop},
        {"^", Op::kI32Xor, Op::kI64Xor, Op::kNop, Op::kNop},
        {"<<", Op::kI32Shl, Op::kI64Shl, Op::kNop, Op::kNop},
        {">>", Op::kI32ShrS, Op::kI64ShrS, Op::kNop, Op::kNop},
        {"==", Op::kI32Eq, Op::kI64Eq, Op::kF32Eq, Op::kF64Eq},
        {"!=", Op::kI32Ne, Op::kI64Ne, Op::kF32Ne, Op::kF64Ne},
        {"<", Op::kI32LtS, Op::kI64LtS, Op::kF32Lt, Op::kF64Lt},
        {">", Op::kI32GtS, Op::kI64GtS, Op::kF32Gt, Op::kF64Gt},
        {"<=", Op::kI32LeS, Op::kI64LeS, Op::kF32Le, Op::kF64Le},
        {">=", Op::kI32GeS, Op::kI64GeS, Op::kF32Ge, Op::kF64Ge},
    };
    for (const Entry& entry : kMap) {
      if (op == entry.name) {
        Op chosen = t == MType::kLong ? entry.i64
                    : t == MType::kFloat ? entry.f32
                    : t == MType::kDouble ? entry.f64
                                          : entry.i32;
        if (chosen == Op::kNop) return false;
        *out = chosen;
        return true;
      }
    }
    return false;
  }

  Status gen_conversion(MType from, MType to, int line) {
    if (from == to) return Status::ok();
    // char never reaches here (promoted to int during sema).
    switch (from) {
      case MType::kInt:
        switch (to) {
          case MType::kLong: fb_->emit(Op::kI64ExtendI32S); return Status::ok();
          case MType::kFloat: fb_->emit(Op::kF32ConvertI32S); return Status::ok();
          case MType::kDouble: fb_->emit(Op::kF64ConvertI32S); return Status::ok();
          default: break;
        }
        break;
      case MType::kLong:
        switch (to) {
          case MType::kInt: fb_->emit(Op::kI32WrapI64); return Status::ok();
          case MType::kFloat: fb_->emit(Op::kF32ConvertI64S); return Status::ok();
          case MType::kDouble: fb_->emit(Op::kF64ConvertI64S); return Status::ok();
          default: break;
        }
        break;
      case MType::kFloat:
        switch (to) {
          case MType::kInt: fb_->emit(Op::kI32TruncF32S); return Status::ok();
          case MType::kLong: fb_->emit(Op::kI64TruncF32S); return Status::ok();
          case MType::kDouble: fb_->emit(Op::kF64PromoteF32); return Status::ok();
          default: break;
        }
        break;
      case MType::kDouble:
        switch (to) {
          case MType::kInt: fb_->emit(Op::kI32TruncF64S); return Status::ok();
          case MType::kLong: fb_->emit(Op::kI64TruncF64S); return Status::ok();
          case MType::kFloat: fb_->emit(Op::kF32DemoteF64); return Status::ok();
          default: break;
        }
        break;
      default:
        break;
    }
    return fail(line, "unsupported conversion");
  }

  const Program& prog_;
  ModuleBuilder b_;
  std::map<int, uint32_t> import_index_;  // builtin index -> import func idx
  std::vector<uint32_t> func_index_;
  FunctionBuilder* fb_ = nullptr;
  const Function* cur_fn_ = nullptr;
  std::vector<LoopCtx> loops_;
  std::map<MType, uint32_t> scratch_;
};

}  // namespace

Result<std::vector<uint8_t>> generate_wasm(const Program& program) {
  return WasmGen(program).run();
}

}  // namespace sledge::minicc
