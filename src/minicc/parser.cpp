#include "minicc/parser.hpp"

namespace sledge::minicc {

const char* to_string(MType t) {
  switch (t) {
    case MType::kVoid: return "void";
    case MType::kChar: return "char";
    case MType::kInt: return "int";
    case MType::kLong: return "long";
    case MType::kFloat: return "float";
    case MType::kDouble: return "double";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>& toks) : toks_(toks) {}

  Result<Program> run() {
    Program prog;
    while (peek().kind != Tok::kEof) {
      Status s = parse_top_level(&prog);
      if (!s.is_ok()) return Result<Program>::error(s.message());
    }
    return Result<Program>(std::move(prog));
  }

 private:
  const Token& peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_++]; }
  bool check(Tok t) const { return peek().kind == t; }
  bool match(Tok t) {
    if (check(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status fail(const std::string& msg) {
    return Status::error("minicc parse error at line " +
                         std::to_string(peek().line) + ": " + msg);
  }
  Status expect(Tok t) {
    if (match(t)) return Status::ok();
    return fail(std::string("expected '") + tok_name(t) + "', got '" +
                tok_name(peek().kind) + "'");
  }

  static bool is_type_tok(Tok t) {
    return t == Tok::kKwChar || t == Tok::kKwInt || t == Tok::kKwLong ||
           t == Tok::kKwFloat || t == Tok::kKwDouble || t == Tok::kKwVoid;
  }
  static MType type_of(Tok t) {
    switch (t) {
      case Tok::kKwChar: return MType::kChar;
      case Tok::kKwInt: return MType::kInt;
      case Tok::kKwLong: return MType::kLong;
      case Tok::kKwFloat: return MType::kFloat;
      case Tok::kKwDouble: return MType::kDouble;
      default: return MType::kVoid;
    }
  }

  Status parse_top_level(Program* prog) {
    if (!is_type_tok(peek().kind)) {
      return fail("expected type at top level");
    }
    MType type = type_of(advance().kind);
    if (!check(Tok::kIdent)) return fail("expected name");
    std::string name = advance().text;
    int line = peek().line;

    if (check(Tok::kLParen)) {
      // function definition
      Function fn;
      fn.name = std::move(name);
      fn.return_type = type;
      fn.line = line;
      advance();  // (
      if (!check(Tok::kRParen)) {
        do {
          if (!is_type_tok(peek().kind) || peek().kind == Tok::kKwVoid) {
            if (peek().kind == Tok::kKwVoid && peek(1).kind == Tok::kRParen &&
                fn.params.empty()) {
              advance();
              break;
            }
            return fail("expected parameter type");
          }
          MType pt = type_of(advance().kind);
          if (!check(Tok::kIdent)) return fail("expected parameter name");
          fn.params.push_back({pt, advance().text});
        } while (match(Tok::kComma));
      }
      Status s = expect(Tok::kRParen);
      if (!s.is_ok()) return s;
      StmtPtr body;
      s = parse_block(&body);
      if (!s.is_ok()) return s;
      fn.body = std::move(body);
      prog->functions.push_back(std::move(fn));
      return Status::ok();
    }

    // global variable (scalar or array)
    if (type == MType::kVoid) return fail("void variable");
    GlobalVar g;
    g.name = std::move(name);
    g.elem_type = type;
    g.line = line;
    while (match(Tok::kLBracket)) {
      if (!check(Tok::kIntLit)) return fail("array dimension must be an integer literal");
      int64_t dim = advance().int_value;
      if (dim <= 0) return fail("array dimension must be positive");
      g.dims.push_back(dim);
      Status s = expect(Tok::kRBracket);
      if (!s.is_ok()) return s;
    }
    if (g.dims.size() > 2) return fail("at most 2 array dimensions");
    if (match(Tok::kAssign)) {
      if (g.is_array()) return fail("array initializers are not supported");
      Status s = parse_expr(&g.init);
      if (!s.is_ok()) return s;
    }
    Status s = expect(Tok::kSemi);
    if (!s.is_ok()) return s;
    prog->globals.push_back(std::move(g));
    return Status::ok();
  }

  Status parse_block(StmtPtr* out) {
    Status s = expect(Tok::kLBrace);
    if (!s.is_ok()) return s;
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = peek().line;
    while (!check(Tok::kRBrace)) {
      if (check(Tok::kEof)) return fail("unterminated block");
      StmtPtr stmt;
      s = parse_stmt(&stmt);
      if (!s.is_ok()) return s;
      block->body.push_back(std::move(stmt));
    }
    advance();  // }
    *out = std::move(block);
    return Status::ok();
  }

  Status parse_stmt(StmtPtr* out) {
    int line = peek().line;
    if (check(Tok::kLBrace)) return parse_block(out);

    if (is_type_tok(peek().kind)) {
      // local declaration: type name (= init)? (, name (= init)?)* ;
      MType type = type_of(advance().kind);
      if (type == MType::kVoid) return fail("void local");
      auto block = std::make_unique<Stmt>();
      block->kind = StmtKind::kBlock;
      block->line = line;
      do {
        if (!check(Tok::kIdent)) return fail("expected local name");
        auto decl = std::make_unique<Stmt>();
        decl->kind = StmtKind::kDecl;
        decl->line = line;
        decl->decl_type = type;
        decl->decl_name = advance().text;
        if (check(Tok::kLBracket)) {
          return fail("local arrays are not supported; declare arrays at global scope");
        }
        if (match(Tok::kAssign)) {
          Status s = parse_assignment(&decl->decl_init);
          if (!s.is_ok()) return s;
        }
        block->body.push_back(std::move(decl));
      } while (match(Tok::kComma));
      Status s = expect(Tok::kSemi);
      if (!s.is_ok()) return s;
      // Unwrap single declarations for a cleaner tree.
      if (block->body.size() == 1) {
        *out = std::move(block->body[0]);
      } else {
        *out = std::move(block);
      }
      return Status::ok();
    }

    if (match(Tok::kKwIf)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kIf;
      stmt->line = line;
      Status s = expect(Tok::kLParen);
      if (!s.is_ok()) return s;
      s = parse_expr(&stmt->expr);
      if (!s.is_ok()) return s;
      s = expect(Tok::kRParen);
      if (!s.is_ok()) return s;
      s = parse_stmt(&stmt->then_branch);
      if (!s.is_ok()) return s;
      if (match(Tok::kKwElse)) {
        s = parse_stmt(&stmt->else_branch);
        if (!s.is_ok()) return s;
      }
      *out = std::move(stmt);
      return Status::ok();
    }

    if (match(Tok::kKwWhile)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kWhile;
      stmt->line = line;
      Status s = expect(Tok::kLParen);
      if (!s.is_ok()) return s;
      s = parse_expr(&stmt->expr);
      if (!s.is_ok()) return s;
      s = expect(Tok::kRParen);
      if (!s.is_ok()) return s;
      s = parse_stmt(&stmt->loop_body);
      if (!s.is_ok()) return s;
      *out = std::move(stmt);
      return Status::ok();
    }

    if (match(Tok::kKwFor)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kFor;
      stmt->line = line;
      Status s = expect(Tok::kLParen);
      if (!s.is_ok()) return s;
      if (!check(Tok::kSemi)) {
        s = parse_stmt_simple(&stmt->init);
        if (!s.is_ok()) return s;
      } else {
        advance();
      }
      if (!check(Tok::kSemi)) {
        s = parse_expr(&stmt->expr);
        if (!s.is_ok()) return s;
      }
      s = expect(Tok::kSemi);
      if (!s.is_ok()) return s;
      if (!check(Tok::kRParen)) {
        ExprPtr step_expr;
        s = parse_expr(&step_expr);
        if (!s.is_ok()) return s;
        auto step = std::make_unique<Stmt>();
        step->kind = StmtKind::kExpr;
        step->line = line;
        step->expr = std::move(step_expr);
        stmt->step = std::move(step);
      }
      s = expect(Tok::kRParen);
      if (!s.is_ok()) return s;
      s = parse_stmt(&stmt->loop_body);
      if (!s.is_ok()) return s;
      *out = std::move(stmt);
      return Status::ok();
    }

    if (match(Tok::kKwReturn)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->line = line;
      if (!check(Tok::kSemi)) {
        Status s = parse_expr(&stmt->expr);
        if (!s.is_ok()) return s;
      }
      *out = std::move(stmt);
      return expect(Tok::kSemi);
    }
    if (match(Tok::kKwBreak)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBreak;
      stmt->line = line;
      *out = std::move(stmt);
      return expect(Tok::kSemi);
    }
    if (match(Tok::kKwContinue)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kContinue;
      stmt->line = line;
      *out = std::move(stmt);
      return expect(Tok::kSemi);
    }

    // expression statement
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = line;
    Status s = parse_expr(&stmt->expr);
    if (!s.is_ok()) return s;
    *out = std::move(stmt);
    return expect(Tok::kSemi);
  }

  // A declaration or expression statement inside `for(...)` init; consumes
  // the trailing ';'.
  Status parse_stmt_simple(StmtPtr* out) {
    if (is_type_tok(peek().kind)) {
      return parse_stmt(out);  // local declaration consumes ';'
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = peek().line;
    Status s = parse_expr(&stmt->expr);
    if (!s.is_ok()) return s;
    *out = std::move(stmt);
    return expect(Tok::kSemi);
  }

  // ---- expressions (precedence climbing) ----
  Status parse_expr(ExprPtr* out) { return parse_assignment(out); }

  Status parse_assignment(ExprPtr* out) {
    ExprPtr lhs;
    Status s = parse_ternary(&lhs);
    if (!s.is_ok()) return s;
    Tok k = peek().kind;
    if (k == Tok::kAssign || k == Tok::kPlusEq || k == Tok::kMinusEq ||
        k == Tok::kStarEq || k == Tok::kSlashEq) {
      if (lhs->kind != ExprKind::kVar && lhs->kind != ExprKind::kIndex) {
        return fail("assignment target must be a variable or array element");
      }
      advance();
      ExprPtr rhs;
      s = parse_assignment(&rhs);
      if (!s.is_ok()) return s;
      if (k != Tok::kAssign) {
        // Desugar `lhs op= rhs` into `lhs = lhs op rhs`; index expressions
        // are cloned (and therefore re-evaluated — mini-C indexes are pure).
        const char* op = k == Tok::kPlusEq ? "+"
                         : k == Tok::kMinusEq ? "-"
                         : k == Tok::kStarEq ? "*"
                                             : "/";
        auto bin = std::make_unique<Expr>();
        bin->kind = ExprKind::kBinary;
        bin->line = lhs->line;
        bin->op = op;
        bin->a = clone(*lhs);
        bin->b = std::move(rhs);
        rhs = std::move(bin);
      }
      auto assign = std::make_unique<Expr>();
      assign->kind = ExprKind::kAssign;
      assign->line = lhs->line;
      assign->a = std::move(lhs);
      assign->b = std::move(rhs);
      *out = std::move(assign);
      return Status::ok();
    }
    *out = std::move(lhs);
    return Status::ok();
  }

  Status parse_ternary(ExprPtr* out) {
    ExprPtr cond;
    Status s = parse_binary(&cond, 0);
    if (!s.is_ok()) return s;
    if (match(Tok::kQuestion)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCond;
      e->line = cond->line;
      e->a = std::move(cond);
      s = parse_assignment(&e->b);
      if (!s.is_ok()) return s;
      s = expect(Tok::kColon);
      if (!s.is_ok()) return s;
      s = parse_ternary(&e->c);
      if (!s.is_ok()) return s;
      *out = std::move(e);
      return Status::ok();
    }
    *out = std::move(cond);
    return Status::ok();
  }

  static int precedence(Tok t) {
    switch (t) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq: case Tok::kNe: return 6;
      case Tok::kLt: case Tok::kGt: case Tok::kLe: case Tok::kGe: return 7;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  Status parse_binary(ExprPtr* out, int min_prec) {
    ExprPtr lhs;
    Status s = parse_unary(&lhs);
    if (!s.is_ok()) return s;
    while (true) {
      int prec = precedence(peek().kind);
      if (prec < 0 || prec < min_prec) break;
      Tok op = advance().kind;
      ExprPtr rhs;
      s = parse_binary(&rhs, prec + 1);
      if (!s.is_ok()) return s;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->line = lhs->line;
      e->op = tok_name(op);
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    *out = std::move(lhs);
    return Status::ok();
  }

  Status parse_unary(ExprPtr* out) {
    int line = peek().line;
    if (check(Tok::kMinus) || check(Tok::kBang) || check(Tok::kTilde)) {
      Tok op = advance().kind;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->line = line;
      e->op = tok_name(op);
      Status s = parse_unary(&e->a);
      if (!s.is_ok()) return s;
      *out = std::move(e);
      return Status::ok();
    }
    if (check(Tok::kPlusPlus) || check(Tok::kMinusMinus)) {
      // prefix ++/--: desugar to (x = x +/- 1)
      Tok op = advance().kind;
      ExprPtr target;
      Status s = parse_unary(&target);
      if (!s.is_ok()) return s;
      return make_incdec(std::move(target), op == Tok::kPlusPlus, line, out);
    }
    // cast: (type) unary
    if (check(Tok::kLParen) && is_type_tok(peek(1).kind) &&
        peek(2).kind == Tok::kRParen) {
      advance();
      MType t = type_of(advance().kind);
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->line = line;
      e->type = t;
      Status s = parse_unary(&e->a);
      if (!s.is_ok()) return s;
      *out = std::move(e);
      return Status::ok();
    }
    return parse_postfix(out);
  }

  Status make_incdec(ExprPtr target, bool inc, int line, ExprPtr* out) {
    if (target->kind != ExprKind::kVar && target->kind != ExprKind::kIndex) {
      return fail("++/-- target must be a variable or array element");
    }
    auto one = std::make_unique<Expr>();
    one->kind = ExprKind::kIntLit;
    one->line = line;
    one->int_value = 1;
    one->type = MType::kInt;
    auto bin = std::make_unique<Expr>();
    bin->kind = ExprKind::kBinary;
    bin->line = line;
    bin->op = inc ? "+" : "-";
    bin->a = clone(*target);
    bin->b = std::move(one);
    auto assign = std::make_unique<Expr>();
    assign->kind = ExprKind::kAssign;
    assign->line = line;
    assign->a = std::move(target);
    assign->b = std::move(bin);
    *out = std::move(assign);
    return Status::ok();
  }

  Status parse_postfix(ExprPtr* out) {
    ExprPtr e;
    Status s = parse_primary(&e);
    if (!s.is_ok()) return s;
    // postfix ++/--: value semantics of pre-increment (documented quirk).
    if (check(Tok::kPlusPlus) || check(Tok::kMinusMinus)) {
      Tok op = advance().kind;
      return make_incdec(std::move(e), op == Tok::kPlusPlus, peek().line, out);
    }
    *out = std::move(e);
    return Status::ok();
  }

  Status parse_primary(ExprPtr* out) {
    int line = peek().line;
    if (check(Tok::kIntLit)) {
      const Token& t = advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIntLit;
      e->line = line;
      e->int_value = t.int_value;
      e->type = t.text == "L" ? MType::kLong : MType::kInt;
      *out = std::move(e);
      return Status::ok();
    }
    if (check(Tok::kFloatLit)) {
      const Token& t = advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFloatLit;
      e->line = line;
      e->float_value = t.float_value;
      e->type = t.text == "f" ? MType::kFloat : MType::kDouble;
      *out = std::move(e);
      return Status::ok();
    }
    if (match(Tok::kLParen)) {
      Status s = parse_expr(out);
      if (!s.is_ok()) return s;
      return expect(Tok::kRParen);
    }
    if (check(Tok::kIdent)) {
      std::string name = advance().text;
      if (match(Tok::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->line = line;
        e->name = std::move(name);
        if (!check(Tok::kRParen)) {
          do {
            ExprPtr arg;
            Status s = parse_assignment(&arg);
            if (!s.is_ok()) return s;
            e->args.push_back(std::move(arg));
          } while (match(Tok::kComma));
        }
        Status s = expect(Tok::kRParen);
        if (!s.is_ok()) return s;
        *out = std::move(e);
        return Status::ok();
      }
      if (check(Tok::kLBracket)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIndex;
        e->line = line;
        e->name = std::move(name);
        while (match(Tok::kLBracket)) {
          ExprPtr idx;
          Status s = parse_expr(&idx);
          if (!s.is_ok()) return s;
          e->args.push_back(std::move(idx));
          s = expect(Tok::kRBracket);
          if (!s.is_ok()) return s;
        }
        *out = std::move(e);
        return Status::ok();
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kVar;
      e->line = line;
      e->name = std::move(name);
      *out = std::move(e);
      return Status::ok();
    }
    return fail(std::string("unexpected token '") + tok_name(peek().kind) + "'");
  }

  // Deep copy used by compound-assignment / ++ desugaring.
  static ExprPtr clone(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->type = e.type;
    out->line = e.line;
    out->int_value = e.int_value;
    out->float_value = e.float_value;
    out->name = e.name;
    out->op = e.op;
    for (const ExprPtr& a : e.args) out->args.push_back(clone(*a));
    if (e.a) out->a = clone(*e.a);
    if (e.b) out->b = clone(*e.b);
    if (e.c) out->c = clone(*e.c);
    return out;
  }

  const std::vector<Token>& toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> parse(const std::vector<Token>& tokens) {
  return Parser(tokens).run();
}

}  // namespace sledge::minicc
