#include "minicc/builtins.hpp"

namespace sledge::minicc {

const std::vector<Builtin>& builtins() {
  using Op = wasm::Op;
  static const std::vector<Builtin> kTable = {
      // serverless ABI
      {"req_len", "", 'i', BuiltinLower::kImport, Op::kNop, "req_len", "mc_req_len"},
      {"req_read", "aii", 'i', BuiltinLower::kImport, Op::kNop, "req_read", "mc_req_read"},
      {"resp_write", "ai", 'i', BuiltinLower::kImport, Op::kNop, "resp_write", "mc_resp_write"},
      {"sleep_ms", "i", 'v', BuiltinLower::kImport, Op::kNop, "sleep_ms", "mc_sleep_ms"},
      {"req_f64", "i", 'd', BuiltinLower::kImport, Op::kNop, "req_f64", "mc_req_f64"},
      {"resp_f64", "d", 'v', BuiltinLower::kImport, Op::kNop, "resp_f64", "mc_resp_f64"},
      {"req_i32", "i", 'i', BuiltinLower::kImport, Op::kNop, "req_i32", "mc_req_i32"},
      {"resp_i32", "i", 'v', BuiltinLower::kImport, Op::kNop, "resp_i32", "mc_resp_i32"},
      {"debug_i32", "i", 'v', BuiltinLower::kImport, Op::kNop, "debug_i32", "mc_debug_i32"},
      // async host I/O (outbound sockets + cross-function invocation)
      {"sb_connect", "aii", 'i', BuiltinLower::kImport, Op::kNop, "sb_connect", "mc_sb_connect"},
      {"sb_send", "iai", 'i', BuiltinLower::kImport, Op::kNop, "sb_send", "mc_sb_send"},
      {"sb_recv", "iai", 'i', BuiltinLower::kImport, Op::kNop, "sb_recv", "mc_sb_recv"},
      {"sb_close", "i", 'i', BuiltinLower::kImport, Op::kNop, "sb_close", "mc_sb_close"},
      {"sb_invoke", "aiaiai", 'i', BuiltinLower::kImport, Op::kNop, "sb_invoke", "mc_sb_invoke"},
      {"sb_invoke_stream", "aiai", 'i', BuiltinLower::kImport, Op::kNop, "sb_invoke_stream", "mc_sb_invoke_stream"},
      // math with Wasm opcodes
      {"sqrt", "d", 'd', BuiltinLower::kOpcode, Op::kF64Sqrt, "", "sqrt"},
      {"fabs", "d", 'd', BuiltinLower::kOpcode, Op::kF64Abs, "", "fabs"},
      {"floor", "d", 'd', BuiltinLower::kOpcode, Op::kF64Floor, "", "floor"},
      {"ceil", "d", 'd', BuiltinLower::kOpcode, Op::kF64Ceil, "", "ceil"},
      {"trunc", "d", 'd', BuiltinLower::kOpcode, Op::kF64Trunc, "", "trunc"},
      {"fmin", "dd", 'd', BuiltinLower::kOpcode, Op::kF64Min, "", "fmin"},
      {"fmax", "dd", 'd', BuiltinLower::kOpcode, Op::kF64Max, "", "fmax"},
      // transcendental math via env imports (no Wasm opcodes exist)
      {"exp", "d", 'd', BuiltinLower::kImport, Op::kNop, "exp", "exp"},
      {"log", "d", 'd', BuiltinLower::kImport, Op::kNop, "log", "log"},
      {"sin", "d", 'd', BuiltinLower::kImport, Op::kNop, "sin", "sin"},
      {"cos", "d", 'd', BuiltinLower::kImport, Op::kNop, "cos", "cos"},
      {"tan", "d", 'd', BuiltinLower::kImport, Op::kNop, "tan", "tan"},
      {"atan", "d", 'd', BuiltinLower::kImport, Op::kNop, "atan", "atan"},
      {"tanh", "d", 'd', BuiltinLower::kImport, Op::kNop, "tanh", "tanh"},
      {"pow", "dd", 'd', BuiltinLower::kImport, Op::kNop, "pow", "pow"},
      {"atan2", "dd", 'd', BuiltinLower::kImport, Op::kNop, "atan2", "atan2"},
  };
  return kTable;
}

int find_builtin(const std::string& name) {
  const std::vector<Builtin>& table = builtins();
  for (size_t i = 0; i < table.size(); ++i) {
    if (name == table[i].name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sledge::minicc
