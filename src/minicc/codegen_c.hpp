// mini-C -> plain C code generator: the *native baseline* path.
//
// Emits idiomatic C (real static arrays, native loops, direct libm calls)
// from the same AST the Wasm backend consumes, so every workload has a
// semantically identical native twin — the denominator of all
// "normalized to native" results. Symbols are prefixed so several generated
// workloads can link into one binary.
#pragma once

#include <string>

#include "common/status.hpp"
#include "minicc/ast.hpp"

namespace sledge::minicc {

// Requires an analyzed program. `prefix` is prepended to every emitted
// global/function symbol (e.g. "ekf_" -> ekf_main).
Result<std::string> generate_c(const Program& program,
                               const std::string& prefix);

}  // namespace sledge::minicc
