// mini-C recursive-descent parser. Produces an unannotated AST; all name
// resolution and type checking happens in sema.
#pragma once

#include "common/status.hpp"
#include "minicc/ast.hpp"
#include "minicc/lexer.hpp"

namespace sledge::minicc {

Result<Program> parse(const std::vector<Token>& tokens);

}  // namespace sledge::minicc
