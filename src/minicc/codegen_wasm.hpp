// mini-C -> WebAssembly code generator. Produces a genuine Wasm 1.0 binary
// (via wasm::ModuleBuilder) that round-trips through the decoder and
// validator like any external module. `main` is additionally exported as
// "run", the Sledge serverless entrypoint.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "minicc/ast.hpp"

namespace sledge::minicc {

// Requires an analyzed program (sema annotations present).
Result<std::vector<uint8_t>> generate_wasm(const Program& program);

}  // namespace sledge::minicc
