#include "minicc/sema.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minicc/builtins.hpp"

namespace sledge::minicc {
namespace {

MType promote(MType a, MType b) {
  if (a == MType::kDouble || b == MType::kDouble) return MType::kDouble;
  if (a == MType::kFloat || b == MType::kFloat) return MType::kFloat;
  if (a == MType::kLong || b == MType::kLong) return MType::kLong;
  return MType::kInt;
}

MType builtin_param_type(char c) {
  switch (c) {
    case 'i': return MType::kInt;
    case 'l': return MType::kLong;
    case 'd': return MType::kDouble;
    default: return MType::kVoid;
  }
}

class Sema {
 public:
  explicit Sema(Program* prog) : prog_(prog) {}

  Status run() {
    // Pass 1: globals and function signatures.
    uint32_t mem_cursor = 64;  // keep address 0 unmapped-by-convention
    int wasm_global_count = 0;
    for (GlobalVar& g : prog_->globals) {
      if (globals_.count(g.name) || funcs_.count(g.name)) {
        return fail(g.line, "duplicate global '" + g.name + "'");
      }
      if (g.is_array()) {
        uint64_t size = g.byte_size();
        mem_cursor = (mem_cursor + 15u) & ~15u;  // 16-byte align arrays
        if (static_cast<uint64_t>(mem_cursor) + size > 0xFFFF0000ull) {
          return fail(g.line, "global arrays exceed linear memory");
        }
        g.mem_offset = mem_cursor;
        mem_cursor += static_cast<uint32_t>(size);
      } else {
        if (g.elem_type == MType::kChar) {
          return fail(g.line, "char globals must be arrays");
        }
        g.wasm_global_index = wasm_global_count++;
        if (g.init) {
          Status s = check_const_init(g);
          if (!s.is_ok()) return s;
        }
      }
      globals_[g.name] = static_cast<int>(&g - prog_->globals.data());
    }
    prog_->memory_bytes_used = mem_cursor;

    for (Function& f : prog_->functions) {
      if (funcs_.count(f.name) || globals_.count(f.name)) {
        return fail(f.line, "duplicate function '" + f.name + "'");
      }
      if (find_builtin(f.name) >= 0) {
        return fail(f.line, "'" + f.name + "' shadows a builtin");
      }
      funcs_[f.name] = static_cast<int>(&f - prog_->functions.data());
    }

    // Pass 2: bodies.
    for (Function& f : prog_->functions) {
      Status s = check_function(&f);
      if (!s.is_ok()) return s;
    }

    for (int b : used_builtin_set_) prog_->used_builtins.push_back(b);
    return Status::ok();
  }

 private:
  Status fail(int line, const std::string& msg) {
    return Status::error("minicc sema error at line " + std::to_string(line) +
                         ": " + msg);
  }

  Status check_const_init(GlobalVar& g) {
    Expr* e = g.init.get();
    bool neg = false;
    if (e->kind == ExprKind::kUnary && e->op == "-") {
      neg = true;
      e = e->a.get();
    }
    if (e->kind == ExprKind::kIntLit) {
      if (neg) e->int_value = -e->int_value;
      return Status::ok();
    }
    if (e->kind == ExprKind::kFloatLit) {
      if (neg) e->float_value = -e->float_value;
      return Status::ok();
    }
    return fail(g.line, "global initializer must be a literal");
  }

  Status check_function(Function* f) {
    cur_fn_ = f;
    scopes_.clear();
    scopes_.emplace_back();
    f->local_types.clear();
    for (const Param& p : f->params) {
      if (p.type == MType::kChar) {
        return fail(f->line, "char parameters are not supported");
      }
      if (scopes_.back().count(p.name)) {
        return fail(f->line, "duplicate parameter '" + p.name + "'");
      }
      scopes_.back()[p.name] = static_cast<int>(f->local_types.size());
      f->local_types.push_back(p.type);
    }
    return check_stmt(f->body.get());
  }

  int declare_local(const std::string& name, MType type) {
    int idx = static_cast<int>(cur_fn_->local_types.size());
    cur_fn_->local_types.push_back(type);
    scopes_.back()[name] = idx;
    return idx;
  }

  int lookup_local(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return -1;
  }

  Status check_stmt(Stmt* s) {
    switch (s->kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (StmtPtr& child : s->body) {
          Status st = check_stmt(child.get());
          if (!st.is_ok()) return st;
        }
        scopes_.pop_back();
        return Status::ok();
      }
      case StmtKind::kDecl: {
        if (s->decl_type == MType::kChar) {
          return fail(s->line, "char locals are not supported");
        }
        if (scopes_.back().count(s->decl_name)) {
          return fail(s->line, "duplicate local '" + s->decl_name + "'");
        }
        if (s->decl_init) {
          Status st = check_expr(s->decl_init.get());
          if (!st.is_ok()) return st;
          coerce(&s->decl_init, s->decl_type);
        }
        s->decl_local_index = declare_local(s->decl_name, s->decl_type);
        return Status::ok();
      }
      case StmtKind::kExpr:
        return check_expr(s->expr.get());
      case StmtKind::kIf: {
        Status st = check_cond(&s->expr);
        if (!st.is_ok()) return st;
        st = check_stmt(s->then_branch.get());
        if (!st.is_ok()) return st;
        if (s->else_branch) return check_stmt(s->else_branch.get());
        return Status::ok();
      }
      case StmtKind::kWhile: {
        Status st = check_cond(&s->expr);
        if (!st.is_ok()) return st;
        ++loop_depth_;
        st = check_stmt(s->loop_body.get());
        --loop_depth_;
        return st;
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();  // for-init scope
        Status st = Status::ok();
        if (s->init) st = check_stmt(s->init.get());
        if (!st.is_ok()) return st;
        if (s->expr) {
          st = check_cond(&s->expr);
          if (!st.is_ok()) return st;
        }
        if (s->step) {
          st = check_stmt(s->step.get());
          if (!st.is_ok()) return st;
        }
        ++loop_depth_;
        st = check_stmt(s->loop_body.get());
        --loop_depth_;
        scopes_.pop_back();
        return st;
      }
      case StmtKind::kReturn: {
        if (cur_fn_->return_type == MType::kVoid) {
          if (s->expr) return fail(s->line, "void function returns a value");
          return Status::ok();
        }
        if (!s->expr) return fail(s->line, "non-void function needs a return value");
        Status st = check_expr(s->expr.get());
        if (!st.is_ok()) return st;
        coerce(&s->expr, cur_fn_->return_type);
        return Status::ok();
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          return fail(s->line, "break/continue outside a loop");
        }
        return Status::ok();
    }
    return Status::ok();
  }

  // Conditions become i32 "booleans": non-int operands get a `!= 0`.
  Status check_cond(ExprPtr* e) {
    Status st = check_expr(e->get());
    if (!st.is_ok()) return st;
    MType t = (*e)->type;
    if (t == MType::kInt) return Status::ok();
    if (t == MType::kVoid) return fail((*e)->line, "void value used as condition");
    auto zero = std::make_unique<Expr>();
    zero->line = (*e)->line;
    if (is_float_type(t)) {
      zero->kind = ExprKind::kFloatLit;
      zero->float_value = 0;
    } else {
      zero->kind = ExprKind::kIntLit;
      zero->int_value = 0;
    }
    zero->type = t;
    auto cmp = std::make_unique<Expr>();
    cmp->kind = ExprKind::kBinary;
    cmp->line = (*e)->line;
    cmp->op = "!=";
    cmp->type = MType::kInt;
    cmp->a = std::move(*e);
    cmp->b = std::move(zero);
    *e = std::move(cmp);
    return Status::ok();
  }

  // Wraps `*e` in a cast to `want` when types differ.
  void coerce(ExprPtr* e, MType want) {
    if ((*e)->type == want || want == MType::kVoid) return;
    auto cast = std::make_unique<Expr>();
    cast->kind = ExprKind::kCast;
    cast->line = (*e)->line;
    cast->type = want;
    cast->a = std::move(*e);
    *e = std::move(cast);
  }

  Status check_expr(Expr* e) {
    switch (e->kind) {
      case ExprKind::kIntLit:
        if (e->type == MType::kVoid) e->type = MType::kInt;
        return Status::ok();
      case ExprKind::kFloatLit:
        if (e->type == MType::kVoid) e->type = MType::kDouble;
        return Status::ok();

      case ExprKind::kVar: {
        int local = lookup_local(e->name);
        if (local >= 0) {
          e->local_index = local;
          e->type = cur_fn_->local_types[local];
          return Status::ok();
        }
        auto g = globals_.find(e->name);
        if (g == globals_.end()) {
          return fail(e->line, "unknown variable '" + e->name + "'");
        }
        const GlobalVar& gv = prog_->globals[g->second];
        if (gv.is_array()) {
          return fail(e->line,
                      "array '" + e->name + "' used without an index");
        }
        e->global_index = g->second;
        e->type = gv.elem_type;
        return Status::ok();
      }

      case ExprKind::kIndex: {
        auto g = globals_.find(e->name);
        if (g == globals_.end()) {
          return fail(e->line, "unknown array '" + e->name + "'");
        }
        const GlobalVar& gv = prog_->globals[g->second];
        if (!gv.is_array()) {
          return fail(e->line, "'" + e->name + "' is not an array");
        }
        if (e->args.size() != gv.dims.size()) {
          return fail(e->line, "wrong number of indices for '" + e->name + "'");
        }
        for (ExprPtr& idx : e->args) {
          Status st = check_expr(idx.get());
          if (!st.is_ok()) return st;
          if (!is_int_type(idx->type)) {
            return fail(idx->line, "array index must be an integer");
          }
          coerce(&idx, MType::kInt);
        }
        e->global_index = g->second;
        // char elements promote to int on read; stores narrow in codegen.
        e->type = gv.elem_type == MType::kChar ? MType::kInt : gv.elem_type;
        return Status::ok();
      }

      case ExprKind::kCall:
        return check_call(e);

      case ExprKind::kUnary: {
        Status st = check_expr(e->a.get());
        if (!st.is_ok()) return st;
        MType t = e->a->type;
        if (e->op == "!") {
          if (t == MType::kVoid) return fail(e->line, "! on void");
          // Lowered as (a == 0); operate on the original type.
          e->type = MType::kInt;
          return Status::ok();
        }
        if (e->op == "~") {
          if (!is_int_type(t)) return fail(e->line, "~ needs an integer");
          coerce(&e->a, t == MType::kLong ? MType::kLong : MType::kInt);
          e->type = e->a->type;
          return Status::ok();
        }
        // unary minus
        if (t == MType::kVoid) return fail(e->line, "- on void");
        if (t == MType::kChar) {
          coerce(&e->a, MType::kInt);
          t = MType::kInt;
        }
        e->type = t;
        return Status::ok();
      }

      case ExprKind::kBinary: {
        Status st = check_expr(e->a.get());
        if (!st.is_ok()) return st;
        st = check_expr(e->b.get());
        if (!st.is_ok()) return st;
        MType ta = e->a->type, tb = e->b->type;
        if (ta == MType::kVoid || tb == MType::kVoid) {
          return fail(e->line, "void operand");
        }

        if (e->op == "&&" || e->op == "||") {
          ExprPtr tmp_a = std::move(e->a);
          ExprPtr tmp_b = std::move(e->b);
          Status sa = check_cond(&tmp_a);
          if (!sa.is_ok()) return sa;
          Status sb = check_cond(&tmp_b);
          if (!sb.is_ok()) return sb;
          e->a = std::move(tmp_a);
          e->b = std::move(tmp_b);
          e->type = MType::kInt;
          return Status::ok();
        }

        bool is_cmp = e->op == "==" || e->op == "!=" || e->op == "<" ||
                      e->op == ">" || e->op == "<=" || e->op == ">=";
        bool int_only = e->op == "%" || e->op == "&" || e->op == "|" ||
                        e->op == "^" || e->op == "<<" || e->op == ">>";
        if (int_only && (!is_int_type(ta) || !is_int_type(tb))) {
          return fail(e->line, "'" + e->op + "' needs integer operands");
        }
        MType common = promote(ta, tb);
        coerce(&e->a, common);
        coerce(&e->b, common);
        e->type = is_cmp ? MType::kInt : common;
        return Status::ok();
      }

      case ExprKind::kAssign: {
        Status st = check_expr(e->a.get());
        if (!st.is_ok()) return st;
        st = check_expr(e->b.get());
        if (!st.is_ok()) return st;
        // Store target type; char array elements store as char but the
        // expression value is the promoted int.
        MType target = e->a->type;
        coerce(&e->b, target);
        e->type = target;
        return Status::ok();
      }

      case ExprKind::kCond: {
        Status st = check_cond(&e->a);
        if (!st.is_ok()) return st;
        st = check_expr(e->b.get());
        if (!st.is_ok()) return st;
        st = check_expr(e->c.get());
        if (!st.is_ok()) return st;
        MType common = promote(e->b->type, e->c->type);
        coerce(&e->b, common);
        coerce(&e->c, common);
        e->type = common;
        return Status::ok();
      }

      case ExprKind::kCast: {
        Status st = check_expr(e->a.get());
        if (!st.is_ok()) return st;
        if (e->type == MType::kChar) {
          return fail(e->line, "cast to char is not supported; use `& 255`");
        }
        if (e->a->type == MType::kVoid) {
          return fail(e->line, "cast of void value");
        }
        return Status::ok();
      }
    }
    return Status::ok();
  }

  Status check_call(Expr* e) {
    int builtin = find_builtin(e->name);
    if (builtin >= 0) {
      const Builtin& b = builtins()[builtin];
      size_t nparams = std::string(b.params).size();
      if (e->args.size() != nparams) {
        return fail(e->line, std::string("builtin '") + b.name + "' expects " +
                                 std::to_string(nparams) + " arguments");
      }
      for (size_t i = 0; i < nparams; ++i) {
        char spec = b.params[i];
        if (spec == 'a') {
          Expr* arg = e->args[i].get();
          if (arg->kind != ExprKind::kVar) {
            return fail(arg->line, "argument must be a global array name");
          }
          auto g = globals_.find(arg->name);
          if (g == globals_.end() || !prog_->globals[g->second].is_array()) {
            return fail(arg->line,
                        "'" + arg->name + "' is not a global array");
          }
          arg->global_index = g->second;
          arg->type = MType::kInt;  // lowered to a base address
          continue;
        }
        Status st = check_expr(e->args[i].get());
        if (!st.is_ok()) return st;
        coerce(&e->args[i], builtin_param_type(spec));
      }
      e->builtin_index = builtin;
      switch (b.result) {
        case 'i': e->type = MType::kInt; break;
        case 'l': e->type = MType::kLong; break;
        case 'd': e->type = MType::kDouble; break;
        default: e->type = MType::kVoid; break;
      }
      if (b.lower == BuiltinLower::kImport) used_builtin_set_.insert(builtin);
      return Status::ok();
    }

    auto f = funcs_.find(e->name);
    if (f == funcs_.end()) {
      return fail(e->line, "unknown function '" + e->name + "'");
    }
    const Function& callee = prog_->functions[f->second];
    if (e->args.size() != callee.params.size()) {
      return fail(e->line, "'" + e->name + "' expects " +
                               std::to_string(callee.params.size()) +
                               " arguments");
    }
    for (size_t i = 0; i < e->args.size(); ++i) {
      Status st = check_expr(e->args[i].get());
      if (!st.is_ok()) return st;
      coerce(&e->args[i], callee.params[i].type);
    }
    e->callee_index = f->second;
    e->type = callee.return_type;
    return Status::ok();
  }

  Program* prog_;
  std::map<std::string, int> globals_;
  std::map<std::string, int> funcs_;
  Function* cur_fn_ = nullptr;
  std::vector<std::map<std::string, int>> scopes_;
  int loop_depth_ = 0;
  std::set<int> used_builtin_set_;
};

}  // namespace

Status analyze(Program* program) { return Sema(program).run(); }

}  // namespace sledge::minicc
