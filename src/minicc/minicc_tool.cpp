// minicc command-line tool.
//
//   minicc --emit-wasm input.mc output.wasm
//   minicc --emit-c prefix_ input.mc output.c
//   minicc --dump-wat input.mc            (disassembly to stdout)
//
// Used by the CMake build to generate native baseline sources for the
// procfaas function binaries, and handy for inspecting generated code.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/file_util.hpp"
#include "minicc/minicc.hpp"
#include "wasm/decoder.hpp"
#include "wasm/disasm.hpp"

int main(int argc, char** argv) {
  using namespace sledge;
  if (argc >= 4 && std::strcmp(argv[1], "--emit-wasm") == 0) {
    auto src = read_file(argv[2]);
    if (!src.ok()) {
      std::fprintf(stderr, "%s\n", src.error_message().c_str());
      return 1;
    }
    auto wasm = minicc::compile_to_wasm(src.value());
    if (!wasm.ok()) {
      std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
      return 1;
    }
    std::string bytes(wasm.value().begin(), wasm.value().end());
    Status s = write_file(argv[3], bytes);
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--dump-wat") == 0) {
    auto src = read_file(argv[2]);
    if (!src.ok()) {
      std::fprintf(stderr, "%s\n", src.error_message().c_str());
      return 1;
    }
    auto wasm = minicc::compile_to_wasm(src.value());
    if (!wasm.ok()) {
      std::fprintf(stderr, "%s\n", wasm.error_message().c_str());
      return 1;
    }
    auto mod = wasm::decode(wasm.value());
    if (!mod.ok()) {
      std::fprintf(stderr, "%s\n", mod.error_message().c_str());
      return 1;
    }
    std::fputs(wasm::disassemble(*mod).c_str(), stdout);
    return 0;
  }
  if (argc >= 5 && std::strcmp(argv[1], "--emit-c") == 0) {
    auto src = read_file(argv[3]);
    if (!src.ok()) {
      std::fprintf(stderr, "%s\n", src.error_message().c_str());
      return 1;
    }
    auto c = minicc::compile_to_c(src.value(), argv[2]);
    if (!c.ok()) {
      std::fprintf(stderr, "%s\n", c.error_message().c_str());
      return 1;
    }
    Status s = write_file(argv[4], c.value());
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr,
               "usage:\n  minicc --emit-wasm input.mc output.wasm\n"
               "  minicc --emit-c prefix_ input.mc output.c\n"
               "  minicc --dump-wat input.mc\n");
  return 2;
}
