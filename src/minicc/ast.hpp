// mini-C abstract syntax tree. Built by the parser, annotated by sema
// (types, symbol resolution, global memory layout), consumed by the two
// code generators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sledge::minicc {

enum class MType : uint8_t { kVoid, kChar, kInt, kLong, kFloat, kDouble };

const char* to_string(MType t);
inline bool is_float_type(MType t) { return t == MType::kFloat || t == MType::kDouble; }
inline bool is_int_type(MType t) {
  return t == MType::kChar || t == MType::kInt || t == MType::kLong;
}
inline int type_size(MType t) {
  switch (t) {
    case MType::kChar: return 1;
    case MType::kInt: case MType::kFloat: return 4;
    case MType::kLong: case MType::kDouble: return 8;
    default: return 0;
  }
}

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kIntLit,
  kFloatLit,
  kVar,      // scalar variable (local, param or global)
  kIndex,    // global array element: name[idx] or name[i][j]
  kCall,     // user function or builtin
  kUnary,    // - ! ~
  kBinary,   // arithmetic / comparison / bitwise / logical
  kAssign,   // lhs (kVar or kIndex) = value
  kCond,     // a ? b : c
  kCast,     // (type)e — explicit or inserted by sema
};

struct Expr {
  ExprKind kind;
  MType type = MType::kVoid;  // annotated by sema
  int line = 0;

  // literals
  int64_t int_value = 0;
  double float_value = 0;

  // kVar / kIndex / kCall
  std::string name;
  std::vector<ExprPtr> args;  // index expressions or call arguments

  // kUnary/kBinary/kAssign/kCond/kCast
  std::string op;  // operator spelling for unary/binary
  ExprPtr a, b, c;

  // sema annotations
  int local_index = -1;      // kVar: local slot (params first), -1 = global
  int global_index = -1;     // kVar/kIndex: index into Program::globals
  int callee_index = -1;     // kCall: function index, -1 = builtin
  int builtin_index = -1;    // kCall: builtin table index
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  kBlock,
  kExpr,
  kDecl,    // local scalar declaration with optional init
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::vector<StmtPtr> body;           // kBlock
  ExprPtr expr;                        // kExpr / kReturn value / condition
  // kDecl
  MType decl_type = MType::kInt;
  std::string decl_name;
  ExprPtr decl_init;
  int decl_local_index = -1;  // sema
  // kIf
  StmtPtr then_branch, else_branch;
  // kWhile/kFor
  StmtPtr init, step, loop_body;
};

struct Param {
  MType type;
  std::string name;
};

struct Function {
  std::string name;
  MType return_type = MType::kVoid;
  std::vector<Param> params;
  StmtPtr body;
  int line = 0;

  // sema: full local slot table (params first), types per slot.
  std::vector<MType> local_types;
};

struct GlobalVar {
  std::string name;
  MType elem_type = MType::kInt;
  // dims: 0 = scalar, 1 = [n], 2 = [n][m]
  std::vector<int64_t> dims;
  ExprPtr init;  // scalars only; constant expression
  int line = 0;

  // sema: scalars get a wasm-global slot, arrays a linear-memory offset.
  int wasm_global_index = -1;
  uint32_t mem_offset = 0;

  bool is_array() const { return !dims.empty(); }
  uint64_t element_count() const {
    uint64_t n = 1;
    for (int64_t d : dims) n *= static_cast<uint64_t>(d);
    return n;
  }
  uint64_t byte_size() const {
    return element_count() * static_cast<uint64_t>(type_size(elem_type));
  }
};

struct Program {
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;

  // sema results
  uint32_t memory_bytes_used = 0;   // linear-memory high-water mark
  std::vector<int> used_builtins;   // indices into the builtin table
};

}  // namespace sledge::minicc
