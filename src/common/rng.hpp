// Deterministic, fast PRNG (splitmix64 + xoshiro-style helpers) for
// property-based tests and workload generation. Reproducibility matters more
// than statistical perfection here, so we keep the state tiny and the
// sequence fixed for a given seed.
#pragma once

#include <cstdint>

namespace sledge {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next_u64() {
    // splitmix64
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint32_t below(uint32_t bound) {
    if (bound == 0) return 0;
    return static_cast<uint32_t>((static_cast<uint64_t>(next_u32()) * bound) >> 32);
  }

  // Uniform in [lo, hi] inclusive.
  int32_t range(int32_t lo, int32_t hi) {
    return lo + static_cast<int32_t>(below(static_cast<uint32_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return next_double() < p; }

 private:
  uint64_t state_;
};

}  // namespace sledge
