// Latency recording used by the load generator, the runtime's per-request
// accounting, and the benchmark harnesses. Values are recorded in
// nanoseconds; percentiles are exact nearest-rank order statistics over a
// sorted copy that is rebuilt lazily — record() only appends and marks the
// cache dirty, so a snapshot that asks for several quantiles sorts once,
// not once per call (the stats paths ask for 4+ quantiles per histogram on
// up to hundreds of thousands of samples).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sledge {

class LatencyHistogram {
 public:
  void record(uint64_t ns) {
    samples_.push_back(ns);
    sum_ns_ += static_cast<double>(ns);
    dirty_ = true;
  }
  void merge(const LatencyHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ns_ += other.sum_ns_;
    dirty_ = !samples_.empty();
  }
  void clear() {
    samples_.clear();
    sorted_.clear();
    sum_ns_ = 0;
    dirty_ = false;
  }

  size_t count() const { return samples_.size(); }
  double sum_ns() const { return sum_ns_; }

  double mean_ns() const {
    return samples_.empty() ? 0.0
                            : sum_ns_ / static_cast<double>(samples_.size());
  }

  // q in [0,1]; e.g. 0.99 for p99. Exact nearest-rank order statistic:
  // the smallest sample such that at least ceil(q*N) samples are <= it.
  uint64_t percentile_ns(double q) const {
    if (samples_.empty()) return 0;
    ensure_sorted();
    return sorted_[rank_index(q)];
  }

  // Batch form: one sort serves every requested quantile.
  std::vector<uint64_t> percentiles(const std::vector<double>& qs) const {
    std::vector<uint64_t> out(qs.size(), 0);
    if (samples_.empty()) return out;
    ensure_sorted();
    for (size_t i = 0; i < qs.size(); ++i) out[i] = sorted_[rank_index(qs[i])];
    return out;
  }

  uint64_t min_ns() const { return percentile_ns(0.0); }
  uint64_t max_ns() const { return percentile_ns(1.0); }

  // Copyable point-in-time digest (what the admin endpoint serves): taking
  // it under the owner's lock costs one amortized sort, not one per field.
  struct Summary {
    size_t count = 0;
    double sum_ns = 0;
    uint64_t min_ns = 0;
    uint64_t p50_ns = 0;
    uint64_t p90_ns = 0;
    uint64_t p99_ns = 0;
    uint64_t max_ns = 0;
  };
  Summary summary() const {
    Summary s;
    s.count = samples_.size();
    s.sum_ns = sum_ns_;
    if (s.count != 0) {
      ensure_sorted();
      s.min_ns = sorted_.front();
      s.p50_ns = sorted_[rank_index(0.5)];
      s.p90_ns = sorted_[rank_index(0.9)];
      s.p99_ns = sorted_[rank_index(0.99)];
      s.max_ns = sorted_.back();
    }
    return s;
  }

  double mean_ms() const { return mean_ns() / 1e6; }
  double p99_ms() const { return static_cast<double>(percentile_ns(0.99)) / 1e6; }
  double mean_us() const { return mean_ns() / 1e3; }
  double p99_us() const { return static_cast<double>(percentile_ns(0.99)) / 1e3; }

 private:
  void ensure_sorted() const {
    if (!dirty_) return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }

  size_t rank_index(double q) const {
    const size_t n = sorted_.size();
    if (q <= 0.0) return 0;
    if (q >= 1.0) return n - 1;
    double rank = std::ceil(q * static_cast<double>(n));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return idx >= n ? n - 1 : idx;
  }

  std::vector<uint64_t> samples_;
  mutable std::vector<uint64_t> sorted_;  // lazily rebuilt percentile cache
  mutable bool dirty_ = false;
  double sum_ns_ = 0;
};

}  // namespace sledge
