// Latency recording used by the load generator, the runtime's per-request
// accounting, and the benchmark harnesses. Values are recorded in
// nanoseconds; percentiles are exact (sorted copy) because sample counts in
// our experiments are modest (<= a few hundred thousand).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sledge {

class LatencyHistogram {
 public:
  void record(uint64_t ns) { samples_.push_back(ns); }
  void merge(const LatencyHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  void clear() { samples_.clear(); }

  size_t count() const { return samples_.size(); }

  double mean_ns() const {
    if (samples_.empty()) return 0.0;
    long double sum = 0;
    for (uint64_t s : samples_) sum += s;
    return static_cast<double>(sum / samples_.size());
  }

  // q in [0,1]; e.g. 0.99 for p99. Exact order statistic.
  uint64_t percentile_ns(double q) const {
    if (samples_.empty()) return 0;
    std::vector<uint64_t> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t idx = static_cast<size_t>(pos + 0.5);
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }

  uint64_t min_ns() const {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  uint64_t max_ns() const {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  double mean_ms() const { return mean_ns() / 1e6; }
  double p99_ms() const { return static_cast<double>(percentile_ns(0.99)) / 1e6; }
  double mean_us() const { return mean_ns() / 1e3; }
  double p99_us() const { return static_cast<double>(percentile_ns(0.99)) / 1e3; }

 private:
  std::vector<uint64_t> samples_;
};

}  // namespace sledge
