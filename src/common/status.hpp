// Lightweight error-handling vocabulary used across the Sledge codebase.
//
// The runtime's hot paths (request handling, sandbox switches) never throw;
// fallible operations return Result<T> which is a thin expected-like type.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sledge {

// A success-or-message status. Empty message == OK.
class Status {
 public:
  Status() = default;
  static Status ok() { return Status{}; }
  static Status error(std::string msg) { return Status{std::move(msg)}; }

  bool is_ok() const { return msg_.empty(); }
  explicit operator bool() const { return is_ok(); }
  const std::string& message() const { return msg_; }

 private:
  explicit Status(std::string msg) : msg_(std::move(msg)) {}
  std::string msg_;
};

// Minimal expected<T, string>. We deliberately avoid exceptions in library
// code; callers must check ok() before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : data_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(data_).is_ok() && "Result error must carry a message");
  }
  static Result error(std::string msg) {
    return Result(Status::error(std::move(msg)));
  }

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& take() {
    assert(ok());
    return std::move(std::get<0>(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<1>(data_);
  }
  const std::string& error_message() const { return status().message(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sledge
