#include "common/log.hpp"

#include <cstdlib>

namespace sledge {
namespace internal {

LogLevel& log_level_ref() {
  static LogLevel level = [] {
    const char* env = std::getenv("SLEDGE_LOG");
    if (!env) return LogLevel::kWarn;
    switch (env[0]) {
      case 'd': return LogLevel::kDebug;
      case 'i': return LogLevel::kInfo;
      case 'w': return LogLevel::kWarn;
      case 'e': return LogLevel::kError;
      default: return LogLevel::kOff;
    }
  }();
  return level;
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace internal

void log_line(LogLevel lvl, const char* tag, const std::string& msg) {
  if (lvl < log_level()) return;
  std::lock_guard<std::mutex> lock(internal::log_mutex());
  std::fprintf(stderr, "[sledge:%s] %s\n", tag, msg.c_str());
}

}  // namespace sledge
