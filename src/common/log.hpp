// Tiny leveled logger. Thread-safe line-at-a-time output to stderr.
// The runtime keeps logging off its hot path; levels above the configured
// threshold compile down to a single branch.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace sledge {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace internal {
LogLevel& log_level_ref();
std::mutex& log_mutex();
}  // namespace internal

inline void set_log_level(LogLevel lvl) { internal::log_level_ref() = lvl; }
inline LogLevel log_level() { return internal::log_level_ref(); }

void log_line(LogLevel lvl, const char* tag, const std::string& msg);

template <typename... Args>
void logf(LogLevel lvl, const char* tag, const char* fmt, Args... args) {
  if (lvl < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  log_line(lvl, tag, buf);
}

#define SLEDGE_LOG_DEBUG(...) ::sledge::logf(::sledge::LogLevel::kDebug, "DBG", __VA_ARGS__)
#define SLEDGE_LOG_INFO(...) ::sledge::logf(::sledge::LogLevel::kInfo, "INF", __VA_ARGS__)
#define SLEDGE_LOG_WARN(...) ::sledge::logf(::sledge::LogLevel::kWarn, "WRN", __VA_ARGS__)
#define SLEDGE_LOG_ERROR(...) ::sledge::logf(::sledge::LogLevel::kError, "ERR", __VA_ARGS__)

}  // namespace sledge
