// Small filesystem helpers shared by the toolchain (reading mini-C sources,
// writing generated C, probing artifact sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sledge {

Result<std::string> read_file(const std::string& path);
Status write_file(const std::string& path, const std::string& contents);
bool file_exists(const std::string& path);
int64_t file_size(const std::string& path);

// Creates a fresh private temp directory (mkdtemp under $TMPDIR or /tmp).
Result<std::string> make_temp_dir(const std::string& prefix);

}  // namespace sledge
