#include "common/file_util.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sledge {

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Result<std::string>::error("cannot open file: " + path);
  }
  std::string out;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Result<std::string>::error("read error: " + path);
  return Result<std::string>(std::move(out));
}

Status write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::error("cannot open for write: " + path);
  size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  int rc = std::fclose(f);
  if (n != contents.size() || rc != 0) {
    return Status::error("write error: " + path);
  }
  return Status::ok();
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

int64_t file_size(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

Result<std::string> make_temp_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  if (!base) base = "/tmp";
  std::string tmpl = std::string(base) + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data())) {
    return Result<std::string>::error("mkdtemp failed for " + tmpl);
  }
  return Result<std::string>(std::string(buf.data()));
}

}  // namespace sledge
