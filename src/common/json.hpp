// Minimal recursive-descent JSON parser used for the Sledge module-registry
// configuration files (the paper loads modules from a JSON config). Supports
// the full JSON grammar minus \u surrogate pairs (escapes map to '?').
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sledge::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(Array a) : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool dflt = false) const { return is_bool() ? bool_ : dflt; }
  double as_number(double dflt = 0) const { return is_number() ? num_ : dflt; }
  int64_t as_int(int64_t dflt = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : dflt;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }
  const Array& as_array() const {
    static const Array kEmpty;
    return is_array() ? *arr_ : kEmpty;
  }
  const Object& as_object() const {
    static const Object kEmpty;
    return is_object() ? *obj_ : kEmpty;
  }

  // Object field lookup; returns null value when absent or not an object.
  const Value& operator[](const std::string& key) const {
    static const Value kNull;
    if (!is_object()) return kNull;
    auto it = obj_->find(key);
    return it == obj_->end() ? kNull : it->second;
  }

  std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// Parses a complete JSON document; trailing garbage is an error.
Result<Value> parse(const std::string& text);

}  // namespace sledge::json
