// Monotonic time helpers used by the scheduler, histograms and benches.
#pragma once

#include <cstdint>
#include <ctime>

namespace sledge {

// Nanoseconds from the monotonic clock. Cheap enough for per-request use.
inline uint64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

inline double ns_to_ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double ns_to_us(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_ms() const { return ns_to_ms(elapsed_ns()); }
  void reset() { start_ = now_ns(); }

 private:
  uint64_t start_;
};

}  // namespace sledge
