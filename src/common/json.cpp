#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sledge::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> parse_document() {
    skip_ws();
    Result<Value> v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Result<Value> fail(const std::string& msg) {
    return Result<Value>::error("json: " + msg + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_literal(const char* lit) {
    size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (++depth_ > 128) return fail("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Result<std::string> s = parse_string();
      if (!s.ok()) return Result<Value>::error(s.error_message());
      return Result<Value>(Value(s.take()));
    }
    if (match_literal("true")) return Result<Value>(Value(true));
    if (match_literal("false")) return Result<Value>(Value(false));
    if (match_literal("null")) return Result<Value>(Value());
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  Result<Value> parse_number() {
    size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string num = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0' || !std::isfinite(d)) {
      return fail("invalid number '" + num + "'");
    }
    return Result<Value>(Value(d));
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return Result<std::string>::error("json: expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Result<std::string>(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Unicode escapes are accepted syntactically but flattened; the
            // registry config is plain ASCII in practice.
            if (pos_ + 4 > text_.size())
              return Result<std::string>::error("json: bad \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default:
            return Result<std::string>::error("json: bad escape");
        }
      } else {
        out += c;
      }
    }
    return Result<std::string>::error("json: unterminated string");
  }

  Result<Value> parse_array() {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Result<Value>(Value(std::move(arr)));
    while (true) {
      Result<Value> v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(v.take());
      skip_ws();
      if (consume(']')) return Result<Value>(Value(std::move(arr)));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Result<Value> parse_object() {
    consume('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Result<Value>(Value(std::move(obj)));
    while (true) {
      skip_ws();
      Result<std::string> key = parse_string();
      if (!key.ok()) return Result<Value>::error(key.error_message());
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      Result<Value> v = parse_value();
      if (!v.ok()) return v;
      obj[key.value()] = v.take();
      skip_ws();
      if (consume('}')) return Result<Value>(Value(std::move(obj)));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void dump_value(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber: {
      char buf[64];
      double d = v.as_number();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out += buf;
      break;
    }
    case Value::Type::kString:
      dump_string(v.as_string(), out);
      break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Result<Value> parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

}  // namespace sledge::json
