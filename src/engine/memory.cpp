#include "engine/memory.hpp"

#include <sys/mman.h>

#include <cstring>
#include <utility>

#include "engine/trap.hpp"

namespace sledge::engine {

namespace {
// vm_guard reserves the whole 32-bit index space plus slack so that
// `base + u32_index + static_offset` always lands inside the reservation.
constexpr uint64_t kGuardSlack = 16ull << 20;  // covers static offsets
constexpr uint64_t kGuardReservation = (4ull << 30) + kGuardSlack;
}  // namespace

const char* to_string(BoundsStrategy s) {
  switch (s) {
    case BoundsStrategy::kNone: return "none";
    case BoundsStrategy::kSoftware: return "software";
    case BoundsStrategy::kMpxSim: return "mpx_sim";
    case BoundsStrategy::kVmGuard: return "vm_guard";
  }
  return "?";
}

uint64_t LinearMemory::reservation_bytes(BoundsStrategy strategy,
                                         uint32_t max_pages) {
  uint64_t bytes = strategy == BoundsStrategy::kVmGuard
                       ? kGuardReservation
                       : static_cast<uint64_t>(max_pages) * wasm::kPageSize;
  return bytes == 0 ? wasm::kPageSize : bytes;
}

LinearMemory::~LinearMemory() { release(); }

LinearMemory& LinearMemory::operator=(LinearMemory&& o) noexcept {
  if (this != &o) {
    release();
    strategy_ = o.strategy_;
    base_ = std::exchange(o.base_, nullptr);
    size_bytes_ = std::exchange(o.size_bytes_, 0);
    reserved_bytes_ = std::exchange(o.reserved_bytes_, 0);
    file_mapped_bytes_ = std::exchange(o.file_mapped_bytes_, 0);
    max_pages_ = o.max_pages_;
    guard_id_ = std::exchange(o.guard_id_, -1);
    bounds_dir_ = std::move(o.bounds_dir_);
  }
  return *this;
}

void LinearMemory::release() {
  if (guard_id_ >= 0) {
    unregister_guard_region(guard_id_);
    guard_id_ = -1;
  }
  if (base_) {
    ::munmap(base_, reserved_bytes_);
    base_ = nullptr;
  }
  size_bytes_ = 0;
  reserved_bytes_ = 0;
  file_mapped_bytes_ = 0;
}

Result<LinearMemory> LinearMemory::create(BoundsStrategy strategy,
                                          uint32_t min_pages,
                                          uint32_t max_pages) {
  if (max_pages < min_pages) max_pages = min_pages;
  if (max_pages > wasm::kMaxPages) {
    return Result<LinearMemory>::error("memory max exceeds 4GiB");
  }

  LinearMemory mem;
  mem.strategy_ = strategy;
  mem.max_pages_ = max_pages;
  mem.reserved_bytes_ = reservation_bytes(strategy, max_pages);

  void* p = ::mmap(nullptr, mem.reserved_bytes_, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) {
    return Result<LinearMemory>::error("mmap reservation failed");
  }
  mem.base_ = static_cast<uint8_t*>(p);
  mem.size_bytes_ = static_cast<uint64_t>(min_pages) * wasm::kPageSize;

  if (mem.size_bytes_ > 0 &&
      ::mprotect(mem.base_, mem.size_bytes_, PROT_READ | PROT_WRITE) != 0) {
    ::munmap(p, mem.reserved_bytes_);
    mem.base_ = nullptr;
    return Result<LinearMemory>::error("mprotect commit failed");
  }

  if (strategy == BoundsStrategy::kVmGuard) {
    install_trap_signal_handler();
    mem.guard_id_ = register_guard_region(mem.base_, mem.reserved_bytes_);
  }

  if (strategy == BoundsStrategy::kMpxSim) {
    mem.bounds_dir_ = std::make_unique<BoundsDirEntry[]>(kBoundsDirEntries);
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      mem.bounds_dir_[i] = {0, mem.size_bytes_};
    }
  }

  return Result<LinearMemory>(std::move(mem));
}

bool LinearMemory::recycle() {
  if (!base_) return false;
  if (file_mapped_bytes_ > 0) {
    // A private *file* mapping does not zero under MADV_DONTNEED — the next
    // touch re-reads the template. Replace the whole committed prefix with
    // an anonymous PROT_NONE mapping so pooled reuse keeps its zero-on-reuse
    // cross-tenant guarantee.
    uint64_t extent = size_bytes_ > file_mapped_bytes_ ? size_bytes_
                                                       : file_mapped_bytes_;
    void* p = ::mmap(base_, extent, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED,
                     -1, 0);
    if (p == MAP_FAILED) return false;
    file_mapped_bytes_ = 0;
    size_bytes_ = 0;
    return true;
  }
  if (size_bytes_ > 0) {
    // MADV_DONTNEED on private anonymous pages discards them; the next
    // touch is a fresh zero page. This is the zero-on-reuse guarantee.
    if (::madvise(base_, size_bytes_, MADV_DONTNEED) != 0) return false;
    if (::mprotect(base_, size_bytes_, PROT_NONE) != 0) return false;
  }
  size_bytes_ = 0;
  return true;
}

bool LinearMemory::reset(uint32_t min_pages, uint32_t max_pages) {
  if (!base_ || size_bytes_ != 0) return false;  // must be recycled first
  if (max_pages < min_pages) max_pages = min_pages;
  if (static_cast<uint64_t>(max_pages) * wasm::kPageSize > reserved_bytes_ ||
      max_pages > wasm::kMaxPages) {
    return false;
  }
  uint64_t bytes = static_cast<uint64_t>(min_pages) * wasm::kPageSize;
  if (bytes > 0 &&
      ::mprotect(base_, bytes, PROT_READ | PROT_WRITE) != 0) {
    return false;
  }
  size_bytes_ = bytes;
  max_pages_ = max_pages;
  if (bounds_dir_) {
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      bounds_dir_[i] = {0, size_bytes_};
    }
  }
  return true;
}

bool LinearMemory::map_template(int fd, uint64_t content_bytes,
                                uint32_t max_pages) {
  if (!base_ || size_bytes_ != 0 || fd < 0) return false;
  if (content_bytes == 0 || content_bytes % wasm::kPageSize != 0) return false;
  if (max_pages > wasm::kMaxPages) return false;
  uint64_t ceiling = static_cast<uint64_t>(max_pages) * wasm::kPageSize;
  if (content_bytes > ceiling || ceiling > reserved_bytes_) return false;

  void* p = ::mmap(base_, content_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_FIXED | MAP_NORESERVE, fd, 0);
  if (p == MAP_FAILED) return false;

  size_bytes_ = content_bytes;
  file_mapped_bytes_ = content_bytes;
  max_pages_ = max_pages;
  if (bounds_dir_) {
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      bounds_dir_[i] = {0, size_bytes_};
    }
  }
  return true;
}

bool LinearMemory::remap_template(int fd) {
  if (!base_ || file_mapped_bytes_ == 0 || fd < 0) return false;
  // Restore the pristine template view in place: a fresh private file
  // mapping discards every COW page the departing tenant dirtied, and any
  // grown tail above the image returns to the uncommitted reservation.
  void* p = ::mmap(base_, file_mapped_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_FIXED | MAP_NORESERVE, fd, 0);
  if (p == MAP_FAILED) return false;
  if (size_bytes_ > file_mapped_bytes_) {
    void* q = ::mmap(base_ + file_mapped_bytes_,
                     size_bytes_ - file_mapped_bytes_, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED,
                     -1, 0);
    if (q == MAP_FAILED) return false;
  }
  size_bytes_ = file_mapped_bytes_;
  if (bounds_dir_) {
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      bounds_dir_[i] = {0, size_bytes_};
    }
  }
  return true;
}

int32_t LinearMemory::grow(uint32_t delta_pages) {
  uint32_t old_pages = pages();
  uint64_t new_pages = static_cast<uint64_t>(old_pages) + delta_pages;
  if (new_pages > max_pages_) return -1;
  uint64_t new_size = new_pages * wasm::kPageSize;
  if (new_size > reserved_bytes_) return -1;
  if (delta_pages > 0) {
    if (::mprotect(base_ + size_bytes_, new_size - size_bytes_,
                   PROT_READ | PROT_WRITE) != 0) {
      return -1;
    }
  }
  size_bytes_ = new_size;
  if (bounds_dir_) {
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      bounds_dir_[i].hi = size_bytes_;
    }
  }
  return static_cast<int32_t>(old_pages);
}

}  // namespace sledge::engine
