#include "engine/interp_fast.hpp"

#include <cstring>

#include "engine/numeric.hpp"

namespace sledge::engine {

using wasm::Op;

InvokeOutcome FastInterpreter::invoke_export(const std::string& name,
                                             const std::vector<Value>& args) {
  const wasm::Export* exp =
      inst_.module().find_export(name, wasm::ExternalKind::kFunction);
  if (!exp) return InvokeOutcome::failed("no exported function '" + name + "'");
  return invoke(exp->index, args);
}

InvokeOutcome FastInterpreter::invoke(uint32_t func_index,
                                      const std::vector<Value>& args) {
  const wasm::FuncType& ft = inst_.module().func_type(func_index);
  if (args.size() != ft.params.size()) {
    return InvokeOutcome::failed("argument count mismatch");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != ft.params[i]) {
      return InvokeOutcome::failed("argument type mismatch");
    }
  }
  std::vector<Slot> arg_slots;
  arg_slots.reserve(args.size());
  for (const Value& v : args) arg_slots.push_back(v.slot);

  depth_ = 0;
  Slot ret;
  // Landing pad for host-function raise_trap (see Interpreter::invoke).
  TrapCode t;
  TrapFrame frame;
  if (sigsetjmp(frame.env, 1) == 0) {
    TrapScope scope(&frame);
    t = run(func_index, arg_slots.data(), &ret);
  } else {
    t = frame.code;
  }
  if (t != TrapCode::kNone) return InvokeOutcome::trapped(t);

  InvokeOutcome out;
  if (!ft.results.empty()) out.value = Value(ft.results[0], ret);
  return out;
}

TrapCode FastInterpreter::run(uint32_t func_index, const Slot* args,
                              Slot* ret) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    return TrapCode::kCallStackExhausted;
  }
  struct DepthGuard {
    int& d;
    ~DepthGuard() { --d; }
  } guard{depth_};

  const wasm::Module& m = inst_.module();
  if (m.is_imported(func_index)) {
    const HostBinding* binding = inst_.import_binding(func_index);
    HostCallCtx ctx{inst_.mem_view(), inst_.host_user};
    Slot r = binding->fn(ctx, args);
    if (!binding->type.results.empty()) *ret = r;
    return TrapCode::kNone;
  }

  const FastFunc& f = fm_.func(func_index);
  const FastInstr* code = f.code.data();
  const uint32_t code_len = static_cast<uint32_t>(f.code.size());

  // Untagged frame storage. +1 slack so `select`-style peeks stay in range.
  std::vector<Slot> frame(f.num_locals + f.max_stack + 1);
  Slot* locals = frame.data();
  Slot* stack = locals + f.num_locals;
  uint32_t sp = 0;

  for (uint32_t i = 0; i < f.num_params; ++i) locals[i] = args[i];

  uint8_t* mem_base = inst_.memory().base();
  uint64_t mem_size = inst_.memory().size_bytes();

  uint32_t pc = 0;
  while (pc < code_len) {
    const FastInstr& ins = code[pc];
    switch (ins.op) {
      case Op::kUnreachable:
        return TrapCode::kUnreachable;
      case Op::kNop:
      case Op::kBlock:
      case Op::kLoop:
        ++pc;
        break;

      case Op::kIf: {
        uint32_t cond = stack[--sp].u32();
        pc = cond ? pc + 1 : ins.target;
        break;
      }
      case Op::kElse: {
        // Fall-through from the true arm: jump to end, carrying the result.
        if (ins.carry) {
          Slot v = stack[sp - 1];
          sp = ins.unwind;
          stack[sp++] = v;
        } else {
          sp = ins.unwind;
        }
        pc = ins.target;
        break;
      }
      case Op::kEnd:
        if (pc + 1 == code_len) {
          const wasm::FuncType& ft = m.types[f.type_index];
          if (!ft.results.empty()) *ret = stack[sp - 1];
          return TrapCode::kNone;
        }
        ++pc;
        break;

      case Op::kBr: {
        if (ins.carry) {
          Slot v = stack[sp - 1];
          sp = ins.unwind;
          stack[sp++] = v;
        } else {
          sp = ins.unwind;
        }
        pc = ins.target;
        break;
      }
      case Op::kBrIf: {
        uint32_t cond = stack[--sp].u32();
        if (!cond) {
          ++pc;
          break;
        }
        if (ins.carry) {
          Slot v = stack[sp - 1];
          sp = ins.unwind;
          stack[sp++] = v;
        } else {
          sp = ins.unwind;
        }
        pc = ins.target;
        break;
      }
      case Op::kBrTable: {
        uint32_t idx = stack[--sp].u32();
        const std::vector<BrTableEntry>& pool = fm_.br_pools[ins.b];
        const BrTableEntry& e =
            idx < pool.size() - 1 ? pool[idx] : pool.back();
        if (e.carry) {
          Slot v = stack[sp - 1];
          sp = e.unwind;
          stack[sp++] = v;
        } else {
          sp = e.unwind;
        }
        pc = e.target;
        break;
      }
      case Op::kReturn: {
        const wasm::FuncType& ft = m.types[f.type_index];
        if (!ft.results.empty()) *ret = stack[sp - 1];
        return TrapCode::kNone;
      }

      case Op::kCall: {
        const wasm::FuncType& callee = m.func_type(ins.a);
        uint32_t n = static_cast<uint32_t>(callee.params.size());
        sp -= n;
        Slot r;
        TrapCode t = run(ins.a, stack + sp, &r);
        if (t != TrapCode::kNone) return t;
        if (!callee.results.empty()) stack[sp++] = r;
        mem_size = inst_.memory().size_bytes();  // callee may have grown it
        ++pc;
        break;
      }
      case Op::kCallIndirect: {
        uint32_t elem = stack[--sp].u32();
        if (elem >= inst_.table().size()) return TrapCode::kIndirectCallOob;
        const Instance::TableEntry& entry = inst_.table()[elem];
        if (entry.func_index < 0) return TrapCode::kIndirectCallNull;
        if (entry.canon_type != inst_.canon_type_id(ins.a)) {
          return TrapCode::kIndirectCallType;  // CFI violation
        }
        const wasm::FuncType& callee = m.types[ins.a];
        uint32_t n = static_cast<uint32_t>(callee.params.size());
        sp -= n;
        Slot r;
        TrapCode t =
            run(static_cast<uint32_t>(entry.func_index), stack + sp, &r);
        if (t != TrapCode::kNone) return t;
        if (!callee.results.empty()) stack[sp++] = r;
        mem_size = inst_.memory().size_bytes();
        ++pc;
        break;
      }

      case Op::kDrop:
        --sp;
        ++pc;
        break;
      case Op::kSelect: {
        uint32_t cond = stack[--sp].u32();
        Slot b = stack[--sp];
        Slot a = stack[--sp];
        stack[sp++] = cond ? a : b;
        ++pc;
        break;
      }

      case Op::kLocalGet:
        stack[sp++] = locals[ins.a];
        ++pc;
        break;
      case Op::kLocalSet:
        locals[ins.a] = stack[--sp];
        ++pc;
        break;
      case Op::kLocalTee:
        locals[ins.a] = stack[sp - 1];
        ++pc;
        break;
      case Op::kGlobalGet:
        stack[sp++] = inst_.globals()[ins.a];
        ++pc;
        break;
      case Op::kGlobalSet:
        inst_.globals()[ins.a] = stack[--sp];
        ++pc;
        break;

      case Op::kMemorySize:
        stack[sp++] = Slot::from_u32(inst_.memory().pages());
        ++pc;
        break;
      case Op::kMemoryGrow: {
        uint32_t delta = stack[--sp].u32();
        stack[sp++] = Slot::from_i32(inst_.memory().grow(delta));
        mem_size = inst_.memory().size_bytes();
        ++pc;
        break;
      }

      case Op::kI32Const:
      case Op::kI64Const:
      case Op::kF32Const:
      case Op::kF64Const:
        stack[sp++] = Slot::from_u64(ins.imm);
        ++pc;
        break;

      default: {
        uint8_t b = static_cast<uint8_t>(ins.op);
        if (b >= 0x28 && b <= 0x35) {  // loads
          uint64_t addr = static_cast<uint64_t>(stack[--sp].u32()) + ins.b;
          uint32_t width = wasm::access_width(ins.op);
          if (addr + width > mem_size) return TrapCode::kOutOfBoundsMemory;
          const uint8_t* p = mem_base + addr;
          uint64_t raw = 0;
          std::memcpy(&raw, p, width);
          Slot v;
          switch (ins.op) {
            case Op::kI32Load:
            case Op::kF32Load: v = Slot::from_u32(static_cast<uint32_t>(raw)); break;
            case Op::kI64Load:
            case Op::kF64Load: v = Slot::from_u64(raw); break;
            case Op::kI32Load8S: v = Slot::from_i32(static_cast<int8_t>(raw)); break;
            case Op::kI32Load8U: v = Slot::from_u32(static_cast<uint8_t>(raw)); break;
            case Op::kI32Load16S: v = Slot::from_i32(static_cast<int16_t>(raw)); break;
            case Op::kI32Load16U: v = Slot::from_u32(static_cast<uint16_t>(raw)); break;
            case Op::kI64Load8S: v = Slot::from_i64(static_cast<int8_t>(raw)); break;
            case Op::kI64Load8U: v = Slot::from_u64(static_cast<uint8_t>(raw)); break;
            case Op::kI64Load16S: v = Slot::from_i64(static_cast<int16_t>(raw)); break;
            case Op::kI64Load16U: v = Slot::from_u64(static_cast<uint16_t>(raw)); break;
            case Op::kI64Load32S: v = Slot::from_i64(static_cast<int32_t>(raw)); break;
            case Op::kI64Load32U: v = Slot::from_u64(static_cast<uint32_t>(raw)); break;
            default: return TrapCode::kUnreachable;
          }
          stack[sp++] = v;
          ++pc;
          break;
        }
        if (b >= 0x36 && b <= 0x3E) {  // stores
          Slot val = stack[--sp];
          uint64_t addr = static_cast<uint64_t>(stack[--sp].u32()) + ins.b;
          uint32_t width = wasm::access_width(ins.op);
          if (addr + width > mem_size) return TrapCode::kOutOfBoundsMemory;
          std::memcpy(mem_base + addr, &val.bits, width);
          ++pc;
          break;
        }

        NumArity arity = numeric_arity(ins.op);
        if (arity == NumArity::kUnary) {
          Slot out;
          TrapCode t = apply_unop(ins.op, stack[sp - 1], &out);
          if (t != TrapCode::kNone) return t;
          stack[sp - 1] = out;
          ++pc;
          break;
        }
        if (arity == NumArity::kBinary) {
          Slot out;
          TrapCode t = apply_binop(ins.op, stack[sp - 2], stack[sp - 1], &out);
          if (t != TrapCode::kNone) return t;
          --sp;
          stack[sp - 1] = out;
          ++pc;
          break;
        }
        return TrapCode::kUnreachable;
      }
    }
  }
  return TrapCode::kNone;
}

}  // namespace sledge::engine
