#include "engine/engine.hpp"

#include <utility>

#include "common/clock.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace sledge::engine {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kInterp: return "interp";
    case Tier::kInterpFast: return "interp_fast";
    case Tier::kAotO0: return "aot_o0";
    case Tier::kAot: return "aot";
  }
  return "?";
}

bool tier_needs_cc(Tier tier) {
  return tier == Tier::kAotO0 || tier == Tier::kAot;
}

Result<WasmModule> WasmModule::load(const std::vector<uint8_t>& wasm_bytes,
                                    const Config& config,
                                    const HostRegistry& hosts) {
  Stopwatch sw;
  WasmModule out;
  out.config_ = config;
  out.hosts_ = &hosts;

  Result<wasm::Module> decoded = wasm::decode(wasm_bytes);
  if (!decoded.ok()) return Result<WasmModule>::error(decoded.error_message());
  out.module_ = std::make_unique<wasm::Module>(decoded.take());

  Status valid = wasm::validate(*out.module_);
  if (!valid.is_ok()) return Result<WasmModule>::error(valid.message());

  switch (config.tier) {
    case Tier::kInterp:
      break;
    case Tier::kInterpFast: {
      Result<FastModule> fast = predecode(*out.module_);
      if (!fast.ok()) return Result<WasmModule>::error(fast.error_message());
      out.fast_ = std::make_unique<FastModule>(fast.take());
      break;
    }
    case Tier::kAotO0:
    case Tier::kAot: {
      AotModule::Options options;
      options.strategy = config.strategy;
      options.opt_level = config.tier == Tier::kAotO0 ? 1 : 2;
      options.default_max_pages = config.default_max_pages;
      Result<AotModule> aot = AotModule::compile(*out.module_, hosts, options);
      if (!aot.ok()) return Result<WasmModule>::error(aot.error_message());
      out.aot_ = std::make_unique<AotModule>(aot.take());
      break;
    }
  }

  out.load_ns_ = sw.elapsed_ns();
  return Result<WasmModule>(std::move(out));
}

WasmModule::MemorySpec WasmModule::memory_spec() const {
  MemorySpec spec;
  spec.strategy = config_.strategy;
  if (!module_ || !module_->memory) return spec;
  spec.has_memory = true;
  spec.min_pages = module_->memory->min;
  spec.max_pages = module_->memory->has_max ? module_->memory->max
                                            : config_.default_max_pages;
  if (spec.max_pages < spec.min_pages) spec.max_pages = spec.min_pages;
  return spec;
}

Result<WasmSandbox> WasmModule::instantiate(LinearMemory recycled) const {
  WasmSandbox sandbox;
  sandbox.owner_ = this;

  if (aot_) {
    Result<AotInstanceHandle> inst = aot_->instantiate(std::move(recycled));
    if (!inst.ok()) return Result<WasmSandbox>::error(inst.error_message());
    sandbox.aot_ = inst.take();
  } else {
    Result<Instance> inst = Instance::instantiate(
        *module_, config_.strategy, *hosts_, config_.default_max_pages,
        std::move(recycled));
    if (!inst.ok()) return Result<WasmSandbox>::error(inst.error_message());
    sandbox.instance_ = std::make_unique<Instance>(inst.take());
  }

  // Run the start function, if declared.
  if (module_->start) {
    InvokeOutcome start;
    if (aot_) {
      start = sandbox.aot_.invoke(*module_->start, {});
    } else if (config_.tier == Tier::kInterpFast) {
      FastInterpreter fi(*sandbox.instance_, *fast_);
      start = fi.invoke(*module_->start, {});
    } else {
      Interpreter it(*sandbox.instance_);
      start = it.invoke(*module_->start, {});
    }
    if (!start.ok()) {
      return Result<WasmSandbox>::error("start function failed: " +
                                        start.describe());
    }
  }
  return Result<WasmSandbox>(std::move(sandbox));
}

InstantiationSeed WasmModule::capture_seed(const WasmSandbox& sandbox) const {
  InstantiationSeed seed;
  if (aot_) {
    const uint8_t* block = sandbox.aot_.inst_block();
    seed.aot_inst_block.assign(block, block + aot_->inst_size());
  } else if (sandbox.instance_) {
    Instance& inst = *sandbox.instance_;
    seed.globals = inst.globals();
    seed.table = inst.table();
  }
  return seed;
}

Result<WasmSandbox> WasmModule::instantiate_seeded(
    LinearMemory memory, const InstantiationSeed& seed) const {
  WasmSandbox sandbox;
  sandbox.owner_ = this;

  if (aot_) {
    Result<AotInstanceHandle> inst =
        aot_->instantiate_seeded(std::move(memory), seed.aot_inst_block);
    if (!inst.ok()) return Result<WasmSandbox>::error(inst.error_message());
    sandbox.aot_ = inst.take();
  } else {
    Result<Instance> inst = Instance::instantiate_seeded(
        *module_, *hosts_, std::move(memory), seed.globals, seed.table);
    if (!inst.ok()) return Result<WasmSandbox>::error(inst.error_message());
    sandbox.instance_ = std::make_unique<Instance>(inst.take());
  }
  // The start function already ran into the template; deliberately skipped.
  return Result<WasmSandbox>(std::move(sandbox));
}

const LinearMemory* WasmSandbox::memory() const {
  if (aot_.valid()) {
    const LinearMemory& m = aot_.memory();
    return m.valid() ? &m : nullptr;
  }
  if (instance_) {
    const LinearMemory& m = instance_->memory();
    return m.valid() ? &m : nullptr;
  }
  return nullptr;
}

InvokeOutcome WasmSandbox::call(const std::string& export_name,
                                const std::vector<Value>& args,
                                ServerlessEnv* env) {
  const WasmModule& m = *owner_;
  if (m.aot_) {
    aot_.set_host_user(env);
    InvokeOutcome out = aot_.invoke_export(export_name, args);
    aot_.set_host_user(nullptr);
    return out;
  }
  instance_->host_user = env;
  InvokeOutcome out;
  if (m.config_.tier == Tier::kInterpFast) {
    FastInterpreter fi(*instance_, *m.fast_);
    out = fi.invoke_export(export_name, args);
  } else {
    Interpreter it(*instance_);
    out = it.invoke_export(export_name, args);
  }
  instance_->host_user = nullptr;
  return out;
}

LinearMemory WasmSandbox::reclaim_memory() {
  if (aot_.valid()) return std::move(aot_.memory());
  if (instance_) return std::move(instance_->memory());
  return LinearMemory();
}

InvokeOutcome WasmSandbox::run_serverless(const std::vector<uint8_t>& request,
                                          std::vector<uint8_t>* response) {
  ServerlessEnv env;
  env.request = request;
  InvokeOutcome out = call("run", {}, &env);
  if (response) *response = std::move(env.response);
  return out;
}

}  // namespace sledge::engine
