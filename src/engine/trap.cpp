#include "engine/trap.hpp"

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace sledge::engine {

const char* trap_name(TrapCode code) {
  switch (code) {
    case TrapCode::kNone: return "none";
    case TrapCode::kUnreachable: return "unreachable executed";
    case TrapCode::kOutOfBoundsMemory: return "out-of-bounds memory access";
    case TrapCode::kDivByZero: return "integer divide by zero";
    case TrapCode::kIntegerOverflow: return "integer overflow";
    case TrapCode::kInvalidConversion: return "invalid float-to-int conversion";
    case TrapCode::kIndirectCallNull: return "indirect call to null table entry";
    case TrapCode::kIndirectCallType: return "indirect call type mismatch";
    case TrapCode::kIndirectCallOob: return "indirect call index out of range";
    case TrapCode::kCallStackExhausted: return "call stack exhausted";
    case TrapCode::kHostError: return "host function error";
    case TrapCode::kDeadlineExceeded: return "execution deadline exceeded";
  }
  return "?";
}

namespace trap_internal {
TrapFrame*& current_frame() {
  thread_local TrapFrame* frame = nullptr;
  return frame;
}
}  // namespace trap_internal

bool in_trap_scope() { return trap_internal::current_frame() != nullptr; }

TrapFrame* exchange_trap_chain(TrapFrame* frame) {
  TrapFrame* old = trap_internal::current_frame();
  trap_internal::current_frame() = frame;
  return old;
}

[[noreturn]] void raise_trap(TrapCode code) {
  TrapFrame* frame = trap_internal::current_frame();
  if (!frame) {
    std::fprintf(stderr, "fatal: trap '%s' with no active TrapScope\n",
                 trap_name(code));
    std::abort();
  }
  frame->code = code;
  // siglongjmp skips the TrapScope destructor: pop the frame here so the
  // chain never points at the dead stack frame after the unwind. (The
  // asynchronous deadline-kill path probes in_trap_scope() from a signal
  // handler and must not see a stale frame.)
  trap_internal::current_frame() = frame->prev;
  siglongjmp(frame->env, 1);
}

namespace {

// Guard-region registry. Fixed-size, lock-free reads: the SIGSEGV handler
// must not take locks. Slots are claimed under a mutex (writers only).
struct GuardRegion {
  std::atomic<uintptr_t> base{0};
  std::atomic<size_t> len{0};
};

constexpr int kMaxGuardRegions = 4096;
GuardRegion g_regions[kMaxGuardRegions];
std::mutex g_regions_mutex;

struct sigaction g_prev_segv;
struct sigaction g_prev_bus;

bool address_in_guard_region(uintptr_t addr) {
  for (int i = 0; i < kMaxGuardRegions; ++i) {
    size_t len = g_regions[i].len.load(std::memory_order_acquire);
    if (len == 0) continue;
    uintptr_t base = g_regions[i].base.load(std::memory_order_relaxed);
    if (addr >= base && addr < base + len) return true;
  }
  return false;
}

void segv_handler(int signo, siginfo_t* info, void* ucontext) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(info->si_addr);
  if (trap_internal::current_frame() && address_in_guard_region(addr)) {
    // Fault inside a sandbox guard region while sandboxed code was running:
    // this is the vm_guard bounds check firing.
    raise_trap(TrapCode::kOutOfBoundsMemory);
  }
  // Not ours: restore and re-raise so the default crash behavior (and
  // debuggers) see the original fault.
  const struct sigaction* prev = signo == SIGSEGV ? &g_prev_segv : &g_prev_bus;
  if (prev->sa_flags & SA_SIGINFO) {
    if (prev->sa_sigaction) {
      prev->sa_sigaction(signo, info, ucontext);
      return;
    }
  } else if (prev->sa_handler == SIG_IGN) {
    return;
  } else if (prev->sa_handler != SIG_DFL && prev->sa_handler) {
    prev->sa_handler(signo);
    return;
  }
  signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

int register_guard_region(const void* base, size_t len) {
  std::lock_guard<std::mutex> lock(g_regions_mutex);
  for (int i = 0; i < kMaxGuardRegions; ++i) {
    if (g_regions[i].len.load(std::memory_order_relaxed) == 0) {
      g_regions[i].base.store(reinterpret_cast<uintptr_t>(base),
                              std::memory_order_relaxed);
      g_regions[i].len.store(len, std::memory_order_release);
      return i;
    }
  }
  std::fprintf(stderr, "fatal: guard region registry exhausted\n");
  std::abort();
}

void unregister_guard_region(int id) {
  if (id < 0 || id >= kMaxGuardRegions) return;
  g_regions[id].len.store(0, std::memory_order_release);
}

void install_trap_signal_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    sa.sa_sigaction = segv_handler;
    sigemptyset(&sa.sa_mask);
    // SA_NODEFER so a longjmp out of the handler leaves SIGSEGV deliverable;
    // SA_ONSTACK so stack-overflow faults can still run the handler (threads
    // that execute sandboxes call ensure_sigaltstack()).
    sa.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
    sigaction(SIGSEGV, &sa, &g_prev_segv);
    sigaction(SIGBUS, &sa, &g_prev_bus);
  });
}

void ensure_sigaltstack() {
  thread_local bool installed = false;
  if (installed) return;
  constexpr size_t kAltSize = 64 * 1024;  // >= SIGSTKSZ on this platform
  static thread_local std::vector<char> alt(kAltSize);
  stack_t ss;
  ss.ss_sp = alt.data();
  ss.ss_size = alt.size();
  ss.ss_flags = 0;
  sigaltstack(&ss, nullptr);
  installed = true;
}

}  // namespace sledge::engine
