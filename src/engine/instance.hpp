// Instantiated module state for the interpreter tiers: linear memory,
// globals, the indirect-call table, and resolved host imports.
//
// The AoT tier keeps its own instance layout inside generated code (see
// wasm2c.cpp / aot.cpp); both implement the same semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "engine/host.hpp"
#include "engine/memory.hpp"
#include "engine/value.hpp"
#include "wasm/module.hpp"

namespace sledge::engine {

class Instance {
 public:
  // Table entry: resolved function index plus the *canonical* type id used
  // for call_indirect signature checks (the dynamic half of CFI).
  struct TableEntry {
    int32_t func_index = -1;  // -1 = null entry
    uint32_t canon_type = 0;
  };

  // `module` and `hosts` must outlive the instance. default_max_pages caps
  // memory growth for modules that declare no maximum. `recycled`, when
  // valid, is an already-reset() pooled linear memory used instead of a
  // fresh mapping (the warm-start path); it must match the module's
  // strategy and committed min size.
  static Result<Instance> instantiate(const wasm::Module& module,
                                      BoundsStrategy strategy,
                                      const HostRegistry& hosts,
                                      uint32_t default_max_pages = 4096,
                                      LinearMemory recycled = LinearMemory());

  // Snapshot path: `memory` is already populated (a COW template mapping of
  // the post-start image), and `globals`/`table` are the captured post-start
  // mutable state — so globals init, element segments, data segments, and
  // the start function are all skipped. Imports and canonical type ids are
  // derived from the module as usual.
  static Result<Instance> instantiate_seeded(
      const wasm::Module& module, const HostRegistry& hosts,
      LinearMemory memory, const std::vector<Slot>& globals,
      const std::vector<TableEntry>& table);

  const wasm::Module& module() const { return *module_; }
  LinearMemory& memory() { return memory_; }
  const LinearMemory& memory() const { return memory_; }
  std::vector<Slot>& globals() { return globals_; }
  std::vector<TableEntry>& table() { return table_; }

  const HostBinding* import_binding(uint32_t import_index) const {
    return imports_[import_index];
  }

  // Canonical (structural) type id for call_indirect comparisons.
  uint32_t canon_type_id(uint32_t type_index) const {
    return canon_ids_[type_index];
  }

  MemView mem_view() {
    return MemView{memory_.base(), memory_.size_bytes()};
  }

  // Per-request opaque pointer handed to host functions (ServerlessEnv*).
  void* host_user = nullptr;

 private:
  Instance() = default;

  const wasm::Module* module_ = nullptr;
  LinearMemory memory_;
  std::vector<Slot> globals_;
  std::vector<TableEntry> table_;
  std::vector<const HostBinding*> imports_;
  std::vector<uint32_t> canon_ids_;
};

}  // namespace sledge::engine
