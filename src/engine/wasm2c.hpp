// Tier 3 front half: the aWsm ahead-of-time translator.
//
// Lowers a validated Wasm module to portable C99 with the configured
// sandboxing strategy baked in (bounds-check macro, CFI-checked indirect
// calls, call-depth guard). The output is compiled by the system C compiler
// into a shared object and loaded with dlopen — the same
// "heavyweight linking & loading decoupled from instantiation" pipeline the
// paper's Figure 2 describes, with C as the portable IR in place of LLVM IR
// (see DESIGN.md substitutions).
#pragma once

#include <string>

#include "common/status.hpp"
#include "engine/memory.hpp"
#include "wasm/module.hpp"

namespace sledge::engine {

struct Wasm2COptions {
  BoundsStrategy strategy = BoundsStrategy::kVmGuard;
};

// Requires a validated module.
Result<std::string> wasm_to_c(const wasm::Module& module,
                              const Wasm2COptions& options);

}  // namespace sledge::engine
