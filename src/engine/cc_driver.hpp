// Drives the system C compiler to turn aWsm-generated C into a shared
// object. This is the "heavyweight linking & loading" half of the paper's
// pipeline — it happens once per module at registration time, never on the
// request path.
#pragma once

#include <string>

#include "common/status.hpp"

namespace sledge::engine {

struct CcOptions {
  int opt_level = 2;        // -O0 models fast-compile tiers, -O2 is aWsm
  bool debug_keep = false;  // keep the temp dir for inspection
};

struct CcResult {
  std::string so_path;   // compiled shared object
  std::string work_dir;  // owning temp dir (remove_work_dir cleans it)
  uint64_t compile_ns = 0;
  int64_t so_size = 0;
};

// Returns true when a usable C compiler is available on this host.
bool cc_available();

Result<CcResult> compile_c_to_so(const std::string& c_source,
                                 const CcOptions& options);

void remove_work_dir(const CcResult& result);

}  // namespace sledge::engine
