// Linear memory with the paper's four configurable bounds-check strategies
// (§3.2 of the paper):
//
//   kNone     — no checks (breaks the sandbox; for overhead studies only)
//   kSoftware — explicit compare-and-branch on every access
//   kMpxSim   — bounds-directory load + two compares per access, modelling
//               Intel MPX's bndldx/bndcl/bndcu cost profile (MPX silicon is
//               deprecated/unavailable; see DESIGN.md substitutions)
//   kVmGuard  — the "4 GiB aligned span" trick: the full 32-bit index space
//               plus a slack for static offsets is reserved PROT_NONE and
//               only the committed prefix is accessible, so out-of-bounds
//               accesses fault and are converted to traps.
//
// All strategies reserve the address range up-front so base() is stable
// across memory.grow — the AoT ABI and the interpreters cache the base.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.hpp"
#include "wasm/module.hpp"

namespace sledge::engine {

enum class BoundsStrategy : uint8_t {
  kNone = 0,
  kSoftware = 1,
  kMpxSim = 2,
  kVmGuard = 3,
};

const char* to_string(BoundsStrategy s);

// mpx-sim bounds directory entry; mirrored in the generated-C ABI.
struct BoundsDirEntry {
  uint64_t lo = 0;
  uint64_t hi = 0;
};
constexpr int kBoundsDirEntries = 64;

class LinearMemory {
 public:
  LinearMemory() = default;
  ~LinearMemory();
  LinearMemory(LinearMemory&& o) noexcept { *this = std::move(o); }
  LinearMemory& operator=(LinearMemory&& o) noexcept;
  LinearMemory(const LinearMemory&) = delete;
  LinearMemory& operator=(const LinearMemory&) = delete;

  // max_pages: hard growth ceiling (also the reservation size for non-guard
  // strategies). Callers should pass the module's declared max, or a policy
  // cap for modules without one.
  static Result<LinearMemory> create(BoundsStrategy strategy,
                                     uint32_t min_pages, uint32_t max_pages);

  // Address-space reservation a create() with these parameters would make.
  // Resource pools bucket reusable regions by (strategy, reservation).
  static uint64_t reservation_bytes(BoundsStrategy strategy,
                                    uint32_t max_pages);

  uint8_t* base() const { return base_; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t pages() const {
    return static_cast<uint32_t>(size_bytes_ / wasm::kPageSize);
  }
  uint32_t max_pages() const { return max_pages_; }
  BoundsStrategy strategy() const { return strategy_; }
  bool valid() const { return base_ != nullptr; }

  // Returns previous size in pages, or -1 on failure (per wasm semantics).
  int32_t grow(uint32_t delta_pages);

  // ---- Pooled reuse (warm-start path) ----
  //
  // recycle() quiesces the region for pooling: the committed prefix is
  // decommitted (PROT_NONE) and its pages discarded (madvise MADV_DONTNEED),
  // so the kernel guarantees zero-filled pages on the next commit — the
  // cross-tenant isolation property pooling depends on. The reservation,
  // guard registration and bounds directory allocation are all kept, which
  // is exactly what makes reuse cheaper than a fresh create().
  bool recycle();

  // reset() re-arms a recycled region for its next request: commits
  // min_pages and installs the new growth ceiling. Fails (false) if the
  // ceiling would not fit the existing reservation — the caller must then
  // fall back to create(). Memory contents after reset() are all-zero.
  bool reset(uint32_t min_pages, uint32_t max_pages);

  // ---- Snapshot instantiation (COW template path) ----
  //
  // map_template() overlays the first content_bytes of the reservation with
  // a MAP_PRIVATE mapping of fd (a sealed per-module memfd template), so the
  // initial memory image materializes copy-on-write instead of being zeroed
  // and rebuilt. Writes stay private to this instance; the template is never
  // modified. Requires a quiesced region (size_bytes() == 0, i.e. freshly
  // recycled or created with min_pages = 0). grow() past content_bytes
  // commits zero pages from the anonymous reservation above the file map.
  bool map_template(int fd, uint64_t content_bytes, uint32_t max_pages);

  // Restores the pristine template view of an already template-backed
  // region: every COW page the departing tenant dirtied is discarded and
  // any grown tail returns to the uncommitted reservation. Lets a release
  // path pre-pay the mmap so the next template instantiation is
  // syscall-free. fd must be the same sealed template the region was
  // mapped from.
  bool remap_template(int fd);

  // Bytes of the committed prefix currently backed by a template file
  // mapping (0 when the region is purely anonymous).
  uint64_t file_mapped_bytes() const { return file_mapped_bytes_; }

  uint64_t reserved_bytes() const { return reserved_bytes_; }

  // Software check used by the interpreter tiers (AoT code inlines its own
  // per-strategy checks).
  bool in_bounds(uint64_t addr, uint32_t width) const {
    return addr + width <= size_bytes_;
  }

  BoundsDirEntry* bounds_dir() { return bounds_dir_.get(); }

 private:
  void release();

  BoundsStrategy strategy_ = BoundsStrategy::kSoftware;
  uint8_t* base_ = nullptr;
  uint64_t size_bytes_ = 0;
  uint64_t reserved_bytes_ = 0;
  uint64_t file_mapped_bytes_ = 0;
  uint32_t max_pages_ = 0;
  int guard_id_ = -1;
  std::unique_ptr<BoundsDirEntry[]> bounds_dir_;
};

}  // namespace sledge::engine
