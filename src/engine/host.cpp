#include "engine/host.hpp"

#include <cmath>

#include "common/clock.hpp"

namespace sledge::engine {

namespace {

using wasm::ValType;

ServerlessEnv* env_of(HostCallCtx& ctx) {
  // A null env means the module was run outside a serverless request (e.g.
  // a unit test driving a pure function); give it an empty request.
  static ServerlessEnv empty;
  return ctx.user ? static_cast<ServerlessEnv*>(ctx.user) : &empty;
}

wasm::FuncType sig(std::vector<ValType> params, std::vector<ValType> results) {
  return wasm::FuncType{std::move(params), std::move(results)};
}

}  // namespace

void register_serverless_abi(HostRegistry& r) {
  using V = ValType;

  // The req_* / resp_* lambdas go through ServerlessEnv's view-aware
  // accessors: on the shm invoke dataplane the request bytes live in a
  // pooled TransferBuffer (req_data/req_size) and response bytes land in
  // the buffer's response region (resp_append), with identical semantics
  // to the heap-vector path.
  r.register_fn("env", "req_len", sig({}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot*) {
                  return Slot::from_u32(
                      static_cast<uint32_t>(env_of(ctx)->req_size()));
                });

  // req_read(dst, src_off, len) -> bytes copied
  r.register_fn(
      "env", "req_read", sig({V::kI32, V::kI32, V::kI32}, {V::kI32}),
      [](HostCallCtx& ctx, const Slot* args) {
        ServerlessEnv* env = env_of(ctx);
        uint32_t dst = args[0].u32();
        uint32_t off = args[1].u32();
        uint32_t len = args[2].u32();
        uint32_t avail = off < env->req_size()
                             ? static_cast<uint32_t>(env->req_size()) - off
                             : 0;
        uint32_t n = len < avail ? len : avail;
        // Validate dst even when nothing will be copied (n == 0): a zero-
        // length copy to a pointer past the end of linear memory still traps.
        uint8_t* p = ctx.mem.check_range(dst, n);
        if (n != 0) std::memcpy(p, env->req_data() + off, n);
        return Slot::from_u32(n);
      });

  // resp_write(src, len) -> bytes appended
  r.register_fn("env", "resp_write", sig({V::kI32, V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t src = args[0].u32();
                  uint32_t len = args[1].u32();
                  const uint8_t* p = ctx.mem.check_range(src, len);
                  env->resp_append(p, len);
                  return Slot::from_u32(len);
                });

  // Little-endian f64 views of the request/response streams (used by
  // stateful functions like GPS-EKF that shuttle state through the client).
  r.register_fn("env", "req_f64", sig({V::kI32}, {V::kF64}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t off = args[0].u32();
                  double v = 0;
                  if (static_cast<uint64_t>(off) + 8 <= env->req_size()) {
                    std::memcpy(&v, env->req_data() + off, 8);
                  }
                  return Slot::from_f64(v);
                });
  r.register_fn("env", "resp_f64", sig({V::kF64}, {}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  double v = args[0].f64();
                  env->resp_append(&v, 8);
                  return Slot{};
                });
  r.register_fn("env", "req_i32", sig({V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t off = args[0].u32();
                  int32_t v = 0;
                  if (static_cast<uint64_t>(off) + 4 <= env->req_size()) {
                    std::memcpy(&v, env->req_data() + off, 4);
                  }
                  return Slot::from_i32(v);
                });
  r.register_fn("env", "resp_i32", sig({V::kI32}, {}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  int32_t v = args[0].i32();
                  env->resp_append(&v, 4);
                  return Slot{};
                });

  r.register_fn("env", "now_ns", sig({}, {V::kI64}),
                [](HostCallCtx&, const Slot*) {
                  return Slot::from_u64(now_ns());
                });

  // Cooperative sleep: under the Sledge scheduler this yields the worker
  // core; standalone it is a no-op (pure functions shouldn't sleep).
  r.register_fn("env", "sleep_ms", sig({V::kI32}, {}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  if (env->sleep_hook) {
                    env->sleep_hook(static_cast<uint64_t>(args[0].u32()) *
                                    1'000'000ull);
                  }
                  return Slot{};
                });

  r.register_fn("env", "debug_i32", sig({V::kI32}, {}),
                [](HostCallCtx&, const Slot*) { return Slot{}; });

  // ---- Async host I/O (sb_*): outbound sockets + cross-function invoke ----
  //
  // Pointer/length pairs are validated against linear memory before the
  // hook runs (including the len==0 / cap==0 edges: the pointer itself must
  // stay within [0, size]). Without a scheduler-installed hook every call
  // returns kSbErrUnsupported so pure-function runs stay deterministic.

  // sb_connect(host_ptr, host_len, port) -> fd | negative error
  r.register_fn("env", "sb_connect",
                sig({V::kI32, V::kI32, V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t ptr = args[0].u32();
                  uint32_t len = args[1].u32();
                  const uint8_t* host = ctx.mem.check_range(ptr, len);
                  if (!env->connect_hook) {
                    return Slot::from_i32(kSbErrUnsupported);
                  }
                  return Slot::from_i32(
                      env->connect_hook(host, len, args[2].u32()));
                });

  // sb_send(fd, ptr, len) -> bytes sent | negative error
  r.register_fn("env", "sb_send",
                sig({V::kI32, V::kI32, V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t ptr = args[1].u32();
                  uint32_t len = args[2].u32();
                  const uint8_t* data = ctx.mem.check_range(ptr, len);
                  if (!env->send_hook) return Slot::from_i32(kSbErrUnsupported);
                  if (len == 0) return Slot::from_i32(0);  // nothing to send
                  return Slot::from_i32(
                      env->send_hook(args[0].i32(), data, len));
                });

  // sb_recv(fd, ptr, cap) -> bytes received | 0 on EOF | negative error.
  // cap == 0 returns 0 without touching the socket (it must not be
  // mistakable for EOF by the hook's blocking path).
  r.register_fn("env", "sb_recv",
                sig({V::kI32, V::kI32, V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  uint32_t ptr = args[1].u32();
                  uint32_t cap = args[2].u32();
                  uint8_t* buf = ctx.mem.check_range(ptr, cap);
                  if (!env->recv_hook) return Slot::from_i32(kSbErrUnsupported);
                  if (cap == 0) return Slot::from_i32(0);
                  return Slot::from_i32(env->recv_hook(args[0].i32(), buf, cap));
                });

  // sb_close(fd) -> 0 | negative error
  r.register_fn("env", "sb_close", sig({V::kI32}, {V::kI32}),
                [](HostCallCtx& ctx, const Slot* args) {
                  ServerlessEnv* env = env_of(ctx);
                  if (!env->close_hook) {
                    return Slot::from_i32(kSbErrUnsupported);
                  }
                  return Slot::from_i32(env->close_hook(args[0].i32()));
                });

  // sb_invoke(module_ptr, module_len, req_ptr, req_len, resp_ptr, resp_cap)
  //   -> bytes copied into resp (child response truncated to resp_cap)
  //    | negative error
  r.register_fn(
      "env", "sb_invoke",
      sig({V::kI32, V::kI32, V::kI32, V::kI32, V::kI32, V::kI32}, {V::kI32}),
      [](HostCallCtx& ctx, const Slot* args) {
        ServerlessEnv* env = env_of(ctx);
        const uint8_t* name = ctx.mem.check_range(args[0].u32(), args[1].u32());
        const uint8_t* req = ctx.mem.check_range(args[2].u32(), args[3].u32());
        uint8_t* resp = ctx.mem.check_range(args[4].u32(), args[5].u32());
        if (!env->invoke_hook) return Slot::from_i32(kSbErrUnsupported);
        return Slot::from_i32(env->invoke_hook(name, args[1].u32(), req,
                                               args[3].u32(), resp,
                                               args[5].u32()));
      });

  // sb_invoke_stream(module_ptr, module_len, req_ptr, req_len)
  //   -> 0 on hand-off | negative error
  // Pipelined chains: the caller's response channel (HTTP connection or
  // upstream join) transfers to the child, and the caller finishes without
  // waiting — chain latency is bounded by the longest stage, not the sum
  // of stop-and-wait joins.
  r.register_fn(
      "env", "sb_invoke_stream",
      sig({V::kI32, V::kI32, V::kI32, V::kI32}, {V::kI32}),
      [](HostCallCtx& ctx, const Slot* args) {
        ServerlessEnv* env = env_of(ctx);
        const uint8_t* name = ctx.mem.check_range(args[0].u32(), args[1].u32());
        const uint8_t* req = ctx.mem.check_range(args[2].u32(), args[3].u32());
        if (!env->invoke_stream_hook) {
          return Slot::from_i32(kSbErrUnsupported);
        }
        return Slot::from_i32(
            env->invoke_stream_hook(name, args[1].u32(), req, args[3].u32()));
      });

  // libm bridge: transcendental functions that Wasm MVP has no opcodes for.
  // Both the native builds and the sandboxed builds route through the same
  // libm, so they pay comparable costs (see DESIGN.md).
  auto unary = [&r](const char* name, double (*fn)(double)) {
    r.register_fn("env", name, sig({V::kF64}, {V::kF64}),
                  [fn](HostCallCtx&, const Slot* args) {
                    return Slot::from_f64(fn(args[0].f64()));
                  });
  };
  unary("exp", std::exp);
  unary("log", std::log);
  unary("sin", std::sin);
  unary("cos", std::cos);
  unary("tan", std::tan);
  unary("atan", std::atan);
  unary("tanh", std::tanh);

  r.register_fn("env", "pow", sig({V::kF64, V::kF64}, {V::kF64}),
                [](HostCallCtx&, const Slot* args) {
                  return Slot::from_f64(std::pow(args[0].f64(), args[1].f64()));
                });
  r.register_fn("env", "atan2", sig({V::kF64, V::kF64}, {V::kF64}),
                [](HostCallCtx&, const Slot* args) {
                  return Slot::from_f64(
                      std::atan2(args[0].f64(), args[1].f64()));
                });
}

const HostRegistry& default_host_registry() {
  static const HostRegistry registry = [] {
    HostRegistry r;
    register_serverless_abi(r);
    return r;
  }();
  return registry;
}

}  // namespace sledge::engine
