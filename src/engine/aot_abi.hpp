// Binary ABI between the Sledge runtime and aWsm-generated native code.
//
// wasm2c.cpp emits C whose `awsm_inst` struct must match AotInst below
// field-for-field; aot.cpp (the loader) allocates instances and provides the
// AotEnv callback table. Trap codes on the wire are the integer values of
// engine::TrapCode.
//
// A generated shared object exports exactly three symbols:
//   const awsm_desc* awsm_get_desc(void);
//   void awsm_inst_init(awsm_inst*);   // globals, table, data segments
//   int32_t awsm_invoke(awsm_inst*, uint32_t func_idx,
//                       const uint64_t* args, uint64_t* ret);
#pragma once

#include <cstdint>

namespace sledge::engine {

struct AotBnd {
  uint64_t lo;
  uint64_t hi;
};

struct AotElem {
  uint32_t type_id;  // canonical (structural) type id, for CFI checks
  void* fn;
};

struct AotInst;

struct AotEnv {
  // Unwinds via the runtime's trap machinery; never returns.
  void (*trap)(AotInst*, int32_t code);
  // wasm memory.grow semantics: old size in pages, or -1.
  int32_t (*memory_grow)(AotInst*, uint32_t delta_pages);
  // Calls host import `import_idx` with bit-pattern args; returns the
  // result's bit pattern (0 for void).
  uint64_t (*host_call)(AotInst*, uint32_t import_idx, const uint64_t* args);
};

// Fixed header of the generated instance; generated code appends
// `uint64_t globals[]`.
struct AotInst {
  uint8_t* mem;
  uint64_t mem_size;
  AotBnd* bnd;  // mpx_sim bounds directory (kBoundsDirEntries entries)
  AotElem* table;
  uint32_t table_size;
  uint32_t call_depth;
  const AotEnv* env;
  void* rt;  // runtime context (AotModule::RunContext)
};

struct AotDesc {
  uint32_t mem_min_pages;
  uint32_t mem_max_pages;
  uint32_t has_mem_max;
  uint32_t num_globals;
  uint32_t table_size;
  uint32_t inst_size;
};

using AotGetDescFn = const AotDesc* (*)();
using AotInstInitFn = void (*)(AotInst*);
using AotInvokeFn = int32_t (*)(AotInst*, uint32_t, const uint64_t*, uint64_t*);

}  // namespace sledge::engine
