// Shared numeric-instruction semantics for the interpreter tiers.
//
// Implements exact WebAssembly semantics: masked shift counts, trapping
// integer division, NaN-propagating min/max, round-to-nearest-even, and
// trapping float->int truncation. The AoT translator emits the same
// semantics as C (see wasm2c.cpp); differential tests in tests/ hold the
// tiers to bit-exact agreement.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "engine/trap.hpp"
#include "engine/value.hpp"
#include "wasm/types.hpp"

namespace sledge::engine {

enum class NumArity : uint8_t { kNotSimple = 0, kUnary, kBinary };

// How many value operands a "simple" numeric op takes (0 = not simple:
// control/memory/variable ops are handled by the interpreter loops).
inline NumArity numeric_arity(wasm::Op op) {
  uint8_t b = static_cast<uint8_t>(op);
  if (b == 0x45 || b == 0x50) return NumArity::kUnary;                // eqz
  if (b >= 0x46 && b <= 0x66) return NumArity::kBinary;               // cmps
  if ((b >= 0x67 && b <= 0x69) || (b >= 0x79 && b <= 0x7B)) return NumArity::kUnary;
  if ((b >= 0x6A && b <= 0x78) || (b >= 0x7C && b <= 0x8A)) return NumArity::kBinary;
  if ((b >= 0x8B && b <= 0x91) || (b >= 0x99 && b <= 0x9F)) return NumArity::kUnary;
  if ((b >= 0x92 && b <= 0x98) || (b >= 0xA0 && b <= 0xA6)) return NumArity::kBinary;
  if (b >= 0xA7 && b <= 0xC4) return NumArity::kUnary;  // conversions, extends
  return NumArity::kNotSimple;
}

// Result value type of a simple numeric op (comparisons produce i32, etc.).
inline wasm::ValType numeric_result_type(wasm::Op op) {
  using wasm::ValType;
  uint8_t b = static_cast<uint8_t>(op);
  if (b >= 0x45 && b <= 0x78) return ValType::kI32;   // tests, cmps, i32 arith
  if (b >= 0x79 && b <= 0x8A) return ValType::kI64;   // i64 arith
  if (b >= 0x8B && b <= 0x98) return ValType::kF32;   // f32 arith
  if (b >= 0x99 && b <= 0xA6) return ValType::kF64;   // f64 arith
  if (b >= 0xA7 && b <= 0xAB) return ValType::kI32;   // wrap, trunc->i32
  if (b >= 0xAC && b <= 0xB1) return ValType::kI64;   // extend, trunc->i64
  if (b >= 0xB2 && b <= 0xB6) return ValType::kF32;   // convert->f32
  if (b >= 0xB7 && b <= 0xBB) return ValType::kF64;   // convert->f64
  switch (op) {
    case wasm::Op::kI32ReinterpretF32: return ValType::kI32;
    case wasm::Op::kI64ReinterpretF64: return ValType::kI64;
    case wasm::Op::kF32ReinterpretI32: return ValType::kF32;
    case wasm::Op::kF64ReinterpretI64: return ValType::kF64;
    case wasm::Op::kI32Extend8S:
    case wasm::Op::kI32Extend16S: return ValType::kI32;
    default: return ValType::kI64;  // i64.extend*_s
  }
}

namespace numeric_detail {

inline float wasm_fmin(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<float>::quiet_NaN();
  if (a == 0.0f && b == 0.0f) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline float wasm_fmax(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<float>::quiet_NaN();
  if (a == 0.0f && b == 0.0f) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}
inline double wasm_fmin(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<double>::quiet_NaN();
  if (a == 0.0 && b == 0.0) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline double wasm_fmax(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<double>::quiet_NaN();
  if (a == 0.0 && b == 0.0) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

// Trapping truncation. `lo`/`hi` bound the open interval of valid inputs.
template <typename Int>
inline TrapCode trunc_checked(double d, double lo, double hi, Int* out) {
  if (std::isnan(d)) return TrapCode::kInvalidConversion;
  if (!(d > lo && d < hi)) {
    // Allow the exact lower bound for signed i64 (it is representable).
    if (d == lo && lo == -9223372036854775808.0 &&
        std::numeric_limits<Int>::is_signed && sizeof(Int) == 8) {
      *out = std::numeric_limits<Int>::min();
      return TrapCode::kNone;
    }
    return TrapCode::kIntegerOverflow;
  }
  *out = static_cast<Int>(d);
  return TrapCode::kNone;
}

}  // namespace numeric_detail

// Applies a unary simple op. Returns a trap code (kNone on success).
inline TrapCode apply_unop(wasm::Op op, Slot a, Slot* out) {
  using wasm::Op;
  using namespace numeric_detail;
  switch (op) {
    case Op::kI32Eqz: *out = Slot::from_u32(a.u32() == 0); return TrapCode::kNone;
    case Op::kI64Eqz: *out = Slot::from_u32(a.u64() == 0); return TrapCode::kNone;

    case Op::kI32Clz:
      *out = Slot::from_u32(a.u32() == 0 ? 32 : std::countl_zero(a.u32()));
      return TrapCode::kNone;
    case Op::kI32Ctz:
      *out = Slot::from_u32(a.u32() == 0 ? 32 : std::countr_zero(a.u32()));
      return TrapCode::kNone;
    case Op::kI32Popcnt:
      *out = Slot::from_u32(std::popcount(a.u32()));
      return TrapCode::kNone;
    case Op::kI64Clz:
      *out = Slot::from_u64(a.u64() == 0 ? 64 : std::countl_zero(a.u64()));
      return TrapCode::kNone;
    case Op::kI64Ctz:
      *out = Slot::from_u64(a.u64() == 0 ? 64 : std::countr_zero(a.u64()));
      return TrapCode::kNone;
    case Op::kI64Popcnt:
      *out = Slot::from_u64(std::popcount(a.u64()));
      return TrapCode::kNone;

    case Op::kF32Abs: *out = Slot::from_f32(std::fabs(a.f32())); return TrapCode::kNone;
    case Op::kF32Neg: *out = Slot::from_f32(-a.f32()); return TrapCode::kNone;
    case Op::kF32Ceil: *out = Slot::from_f32(std::ceil(a.f32())); return TrapCode::kNone;
    case Op::kF32Floor: *out = Slot::from_f32(std::floor(a.f32())); return TrapCode::kNone;
    case Op::kF32Trunc: *out = Slot::from_f32(std::trunc(a.f32())); return TrapCode::kNone;
    case Op::kF32Nearest: *out = Slot::from_f32(std::nearbyint(a.f32())); return TrapCode::kNone;
    case Op::kF32Sqrt: *out = Slot::from_f32(std::sqrt(a.f32())); return TrapCode::kNone;
    case Op::kF64Abs: *out = Slot::from_f64(std::fabs(a.f64())); return TrapCode::kNone;
    case Op::kF64Neg: *out = Slot::from_f64(-a.f64()); return TrapCode::kNone;
    case Op::kF64Ceil: *out = Slot::from_f64(std::ceil(a.f64())); return TrapCode::kNone;
    case Op::kF64Floor: *out = Slot::from_f64(std::floor(a.f64())); return TrapCode::kNone;
    case Op::kF64Trunc: *out = Slot::from_f64(std::trunc(a.f64())); return TrapCode::kNone;
    case Op::kF64Nearest: *out = Slot::from_f64(std::nearbyint(a.f64())); return TrapCode::kNone;
    case Op::kF64Sqrt: *out = Slot::from_f64(std::sqrt(a.f64())); return TrapCode::kNone;

    case Op::kI32WrapI64: *out = Slot::from_u32(static_cast<uint32_t>(a.u64())); return TrapCode::kNone;
    case Op::kI64ExtendI32S: *out = Slot::from_i64(a.i32()); return TrapCode::kNone;
    case Op::kI64ExtendI32U: *out = Slot::from_u64(a.u32()); return TrapCode::kNone;

    case Op::kI32TruncF32S: {
      int32_t v;
      TrapCode t = trunc_checked<int32_t>(a.f32(), -2147483649.0, 2147483648.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_i32(v);
      return TrapCode::kNone;
    }
    case Op::kI32TruncF32U: {
      uint32_t v;
      TrapCode t = trunc_checked<uint32_t>(a.f32(), -1.0, 4294967296.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_u32(v);
      return TrapCode::kNone;
    }
    case Op::kI32TruncF64S: {
      int32_t v;
      TrapCode t = trunc_checked<int32_t>(a.f64(), -2147483649.0, 2147483648.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_i32(v);
      return TrapCode::kNone;
    }
    case Op::kI32TruncF64U: {
      uint32_t v;
      TrapCode t = trunc_checked<uint32_t>(a.f64(), -1.0, 4294967296.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_u32(v);
      return TrapCode::kNone;
    }
    case Op::kI64TruncF32S: {
      int64_t v;
      TrapCode t = trunc_checked<int64_t>(a.f32(), -9223372036854775808.0,
                                          9223372036854775808.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_i64(v);
      return TrapCode::kNone;
    }
    case Op::kI64TruncF32U: {
      uint64_t v;
      TrapCode t = trunc_checked<uint64_t>(a.f32(), -1.0,
                                           18446744073709551616.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_u64(v);
      return TrapCode::kNone;
    }
    case Op::kI64TruncF64S: {
      int64_t v;
      TrapCode t = trunc_checked<int64_t>(a.f64(), -9223372036854775808.0,
                                          9223372036854775808.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_i64(v);
      return TrapCode::kNone;
    }
    case Op::kI64TruncF64U: {
      uint64_t v;
      TrapCode t = trunc_checked<uint64_t>(a.f64(), -1.0,
                                           18446744073709551616.0, &v);
      if (t != TrapCode::kNone) return t;
      *out = Slot::from_u64(v);
      return TrapCode::kNone;
    }

    case Op::kF32ConvertI32S: *out = Slot::from_f32(static_cast<float>(a.i32())); return TrapCode::kNone;
    case Op::kF32ConvertI32U: *out = Slot::from_f32(static_cast<float>(a.u32())); return TrapCode::kNone;
    case Op::kF32ConvertI64S: *out = Slot::from_f32(static_cast<float>(a.i64())); return TrapCode::kNone;
    case Op::kF32ConvertI64U: *out = Slot::from_f32(static_cast<float>(a.u64())); return TrapCode::kNone;
    case Op::kF32DemoteF64: *out = Slot::from_f32(static_cast<float>(a.f64())); return TrapCode::kNone;
    case Op::kF64ConvertI32S: *out = Slot::from_f64(static_cast<double>(a.i32())); return TrapCode::kNone;
    case Op::kF64ConvertI32U: *out = Slot::from_f64(static_cast<double>(a.u32())); return TrapCode::kNone;
    case Op::kF64ConvertI64S: *out = Slot::from_f64(static_cast<double>(a.i64())); return TrapCode::kNone;
    case Op::kF64ConvertI64U: *out = Slot::from_f64(static_cast<double>(a.u64())); return TrapCode::kNone;
    case Op::kF64PromoteF32: *out = Slot::from_f64(static_cast<double>(a.f32())); return TrapCode::kNone;

    case Op::kI32ReinterpretF32: *out = Slot::from_u32(static_cast<uint32_t>(a.bits)); return TrapCode::kNone;
    case Op::kI64ReinterpretF64: *out = Slot::from_u64(a.bits); return TrapCode::kNone;
    case Op::kF32ReinterpretI32: *out = Slot::from_u32(a.u32()); return TrapCode::kNone;
    case Op::kF64ReinterpretI64: *out = Slot::from_u64(a.u64()); return TrapCode::kNone;

    case Op::kI32Extend8S: *out = Slot::from_i32(static_cast<int8_t>(a.u32())); return TrapCode::kNone;
    case Op::kI32Extend16S: *out = Slot::from_i32(static_cast<int16_t>(a.u32())); return TrapCode::kNone;
    case Op::kI64Extend8S: *out = Slot::from_i64(static_cast<int8_t>(a.u64())); return TrapCode::kNone;
    case Op::kI64Extend16S: *out = Slot::from_i64(static_cast<int16_t>(a.u64())); return TrapCode::kNone;
    case Op::kI64Extend32S: *out = Slot::from_i64(static_cast<int32_t>(a.u64())); return TrapCode::kNone;

    default:
      return TrapCode::kUnreachable;  // validator prevents this
  }
}

inline TrapCode apply_binop(wasm::Op op, Slot a, Slot b, Slot* out) {
  using wasm::Op;
  using namespace numeric_detail;
  switch (op) {
    // i32 compare
    case Op::kI32Eq: *out = Slot::from_u32(a.u32() == b.u32()); return TrapCode::kNone;
    case Op::kI32Ne: *out = Slot::from_u32(a.u32() != b.u32()); return TrapCode::kNone;
    case Op::kI32LtS: *out = Slot::from_u32(a.i32() < b.i32()); return TrapCode::kNone;
    case Op::kI32LtU: *out = Slot::from_u32(a.u32() < b.u32()); return TrapCode::kNone;
    case Op::kI32GtS: *out = Slot::from_u32(a.i32() > b.i32()); return TrapCode::kNone;
    case Op::kI32GtU: *out = Slot::from_u32(a.u32() > b.u32()); return TrapCode::kNone;
    case Op::kI32LeS: *out = Slot::from_u32(a.i32() <= b.i32()); return TrapCode::kNone;
    case Op::kI32LeU: *out = Slot::from_u32(a.u32() <= b.u32()); return TrapCode::kNone;
    case Op::kI32GeS: *out = Slot::from_u32(a.i32() >= b.i32()); return TrapCode::kNone;
    case Op::kI32GeU: *out = Slot::from_u32(a.u32() >= b.u32()); return TrapCode::kNone;
    // i64 compare
    case Op::kI64Eq: *out = Slot::from_u32(a.u64() == b.u64()); return TrapCode::kNone;
    case Op::kI64Ne: *out = Slot::from_u32(a.u64() != b.u64()); return TrapCode::kNone;
    case Op::kI64LtS: *out = Slot::from_u32(a.i64() < b.i64()); return TrapCode::kNone;
    case Op::kI64LtU: *out = Slot::from_u32(a.u64() < b.u64()); return TrapCode::kNone;
    case Op::kI64GtS: *out = Slot::from_u32(a.i64() > b.i64()); return TrapCode::kNone;
    case Op::kI64GtU: *out = Slot::from_u32(a.u64() > b.u64()); return TrapCode::kNone;
    case Op::kI64LeS: *out = Slot::from_u32(a.i64() <= b.i64()); return TrapCode::kNone;
    case Op::kI64LeU: *out = Slot::from_u32(a.u64() <= b.u64()); return TrapCode::kNone;
    case Op::kI64GeS: *out = Slot::from_u32(a.i64() >= b.i64()); return TrapCode::kNone;
    case Op::kI64GeU: *out = Slot::from_u32(a.u64() >= b.u64()); return TrapCode::kNone;
    // float compare
    case Op::kF32Eq: *out = Slot::from_u32(a.f32() == b.f32()); return TrapCode::kNone;
    case Op::kF32Ne: *out = Slot::from_u32(a.f32() != b.f32()); return TrapCode::kNone;
    case Op::kF32Lt: *out = Slot::from_u32(a.f32() < b.f32()); return TrapCode::kNone;
    case Op::kF32Gt: *out = Slot::from_u32(a.f32() > b.f32()); return TrapCode::kNone;
    case Op::kF32Le: *out = Slot::from_u32(a.f32() <= b.f32()); return TrapCode::kNone;
    case Op::kF32Ge: *out = Slot::from_u32(a.f32() >= b.f32()); return TrapCode::kNone;
    case Op::kF64Eq: *out = Slot::from_u32(a.f64() == b.f64()); return TrapCode::kNone;
    case Op::kF64Ne: *out = Slot::from_u32(a.f64() != b.f64()); return TrapCode::kNone;
    case Op::kF64Lt: *out = Slot::from_u32(a.f64() < b.f64()); return TrapCode::kNone;
    case Op::kF64Gt: *out = Slot::from_u32(a.f64() > b.f64()); return TrapCode::kNone;
    case Op::kF64Le: *out = Slot::from_u32(a.f64() <= b.f64()); return TrapCode::kNone;
    case Op::kF64Ge: *out = Slot::from_u32(a.f64() >= b.f64()); return TrapCode::kNone;

    // i32 arithmetic
    case Op::kI32Add: *out = Slot::from_u32(a.u32() + b.u32()); return TrapCode::kNone;
    case Op::kI32Sub: *out = Slot::from_u32(a.u32() - b.u32()); return TrapCode::kNone;
    case Op::kI32Mul: *out = Slot::from_u32(a.u32() * b.u32()); return TrapCode::kNone;
    case Op::kI32DivS:
      if (b.i32() == 0) return TrapCode::kDivByZero;
      if (a.i32() == INT32_MIN && b.i32() == -1) return TrapCode::kIntegerOverflow;
      *out = Slot::from_i32(a.i32() / b.i32());
      return TrapCode::kNone;
    case Op::kI32DivU:
      if (b.u32() == 0) return TrapCode::kDivByZero;
      *out = Slot::from_u32(a.u32() / b.u32());
      return TrapCode::kNone;
    case Op::kI32RemS:
      if (b.i32() == 0) return TrapCode::kDivByZero;
      if (a.i32() == INT32_MIN && b.i32() == -1) {
        *out = Slot::from_i32(0);
      } else {
        *out = Slot::from_i32(a.i32() % b.i32());
      }
      return TrapCode::kNone;
    case Op::kI32RemU:
      if (b.u32() == 0) return TrapCode::kDivByZero;
      *out = Slot::from_u32(a.u32() % b.u32());
      return TrapCode::kNone;
    case Op::kI32And: *out = Slot::from_u32(a.u32() & b.u32()); return TrapCode::kNone;
    case Op::kI32Or: *out = Slot::from_u32(a.u32() | b.u32()); return TrapCode::kNone;
    case Op::kI32Xor: *out = Slot::from_u32(a.u32() ^ b.u32()); return TrapCode::kNone;
    case Op::kI32Shl: *out = Slot::from_u32(a.u32() << (b.u32() & 31)); return TrapCode::kNone;
    case Op::kI32ShrS: *out = Slot::from_i32(a.i32() >> (b.u32() & 31)); return TrapCode::kNone;
    case Op::kI32ShrU: *out = Slot::from_u32(a.u32() >> (b.u32() & 31)); return TrapCode::kNone;
    case Op::kI32Rotl: *out = Slot::from_u32(std::rotl(a.u32(), static_cast<int>(b.u32() & 31))); return TrapCode::kNone;
    case Op::kI32Rotr: *out = Slot::from_u32(std::rotr(a.u32(), static_cast<int>(b.u32() & 31))); return TrapCode::kNone;

    // i64 arithmetic
    case Op::kI64Add: *out = Slot::from_u64(a.u64() + b.u64()); return TrapCode::kNone;
    case Op::kI64Sub: *out = Slot::from_u64(a.u64() - b.u64()); return TrapCode::kNone;
    case Op::kI64Mul: *out = Slot::from_u64(a.u64() * b.u64()); return TrapCode::kNone;
    case Op::kI64DivS:
      if (b.i64() == 0) return TrapCode::kDivByZero;
      if (a.i64() == INT64_MIN && b.i64() == -1) return TrapCode::kIntegerOverflow;
      *out = Slot::from_i64(a.i64() / b.i64());
      return TrapCode::kNone;
    case Op::kI64DivU:
      if (b.u64() == 0) return TrapCode::kDivByZero;
      *out = Slot::from_u64(a.u64() / b.u64());
      return TrapCode::kNone;
    case Op::kI64RemS:
      if (b.i64() == 0) return TrapCode::kDivByZero;
      if (a.i64() == INT64_MIN && b.i64() == -1) {
        *out = Slot::from_i64(0);
      } else {
        *out = Slot::from_i64(a.i64() % b.i64());
      }
      return TrapCode::kNone;
    case Op::kI64RemU:
      if (b.u64() == 0) return TrapCode::kDivByZero;
      *out = Slot::from_u64(a.u64() % b.u64());
      return TrapCode::kNone;
    case Op::kI64And: *out = Slot::from_u64(a.u64() & b.u64()); return TrapCode::kNone;
    case Op::kI64Or: *out = Slot::from_u64(a.u64() | b.u64()); return TrapCode::kNone;
    case Op::kI64Xor: *out = Slot::from_u64(a.u64() ^ b.u64()); return TrapCode::kNone;
    case Op::kI64Shl: *out = Slot::from_u64(a.u64() << (b.u64() & 63)); return TrapCode::kNone;
    case Op::kI64ShrS: *out = Slot::from_i64(a.i64() >> (b.u64() & 63)); return TrapCode::kNone;
    case Op::kI64ShrU: *out = Slot::from_u64(a.u64() >> (b.u64() & 63)); return TrapCode::kNone;
    case Op::kI64Rotl: *out = Slot::from_u64(std::rotl(a.u64(), static_cast<int>(b.u64() & 63))); return TrapCode::kNone;
    case Op::kI64Rotr: *out = Slot::from_u64(std::rotr(a.u64(), static_cast<int>(b.u64() & 63))); return TrapCode::kNone;

    // f32 arithmetic
    case Op::kF32Add: *out = Slot::from_f32(a.f32() + b.f32()); return TrapCode::kNone;
    case Op::kF32Sub: *out = Slot::from_f32(a.f32() - b.f32()); return TrapCode::kNone;
    case Op::kF32Mul: *out = Slot::from_f32(a.f32() * b.f32()); return TrapCode::kNone;
    case Op::kF32Div: *out = Slot::from_f32(a.f32() / b.f32()); return TrapCode::kNone;
    case Op::kF32Min: *out = Slot::from_f32(wasm_fmin(a.f32(), b.f32())); return TrapCode::kNone;
    case Op::kF32Max: *out = Slot::from_f32(wasm_fmax(a.f32(), b.f32())); return TrapCode::kNone;
    case Op::kF32Copysign: *out = Slot::from_f32(std::copysign(a.f32(), b.f32())); return TrapCode::kNone;

    // f64 arithmetic
    case Op::kF64Add: *out = Slot::from_f64(a.f64() + b.f64()); return TrapCode::kNone;
    case Op::kF64Sub: *out = Slot::from_f64(a.f64() - b.f64()); return TrapCode::kNone;
    case Op::kF64Mul: *out = Slot::from_f64(a.f64() * b.f64()); return TrapCode::kNone;
    case Op::kF64Div: *out = Slot::from_f64(a.f64() / b.f64()); return TrapCode::kNone;
    case Op::kF64Min: *out = Slot::from_f64(wasm_fmin(a.f64(), b.f64())); return TrapCode::kNone;
    case Op::kF64Max: *out = Slot::from_f64(wasm_fmax(a.f64(), b.f64())); return TrapCode::kNone;
    case Op::kF64Copysign: *out = Slot::from_f64(std::copysign(a.f64(), b.f64())); return TrapCode::kNone;

    default:
      return TrapCode::kUnreachable;  // validator prevents this
  }
}

}  // namespace sledge::engine
