#include "engine/interp.hpp"

#include <cstring>

#include "engine/numeric.hpp"

namespace sledge::engine {

using wasm::Instr;
using wasm::Op;

std::string InvokeOutcome::describe() const {
  if (!error.empty()) return error;
  if (trap != TrapCode::kNone) return std::string("trap: ") + trap_name(trap);
  return "ok";
}

namespace {

// A control label on the (dynamically maintained) label stack.
struct Label {
  size_t start_pc;     // index of the block/loop/if instruction
  size_t stack_base;   // operand stack height at entry
  bool is_loop;
  bool has_result;
};

// Scans forward from the instruction *after* code[start] to find the
// matching end (and optionally the matching else at depth 1). This dynamic
// scan is the tier's designed-in inefficiency.
size_t find_matching_end(const std::vector<Instr>& code, size_t start,
                         size_t* else_pc = nullptr) {
  int depth = 1;
  if (else_pc) *else_pc = 0;
  for (size_t pc = start + 1; pc < code.size(); ++pc) {
    Op op = code[pc].op;
    if (op == Op::kBlock || op == Op::kLoop || op == Op::kIf) {
      ++depth;
    } else if (op == Op::kElse) {
      if (depth == 1 && else_pc) *else_pc = pc;
    } else if (op == Op::kEnd) {
      if (--depth == 0) return pc;
    }
  }
  return code.size();  // validated code never gets here
}

}  // namespace

InvokeOutcome Interpreter::invoke_export(const std::string& name,
                                         const std::vector<Value>& args) {
  const wasm::Export* exp =
      inst_.module().find_export(name, wasm::ExternalKind::kFunction);
  if (!exp) return InvokeOutcome::failed("no exported function '" + name + "'");
  return invoke(exp->index, args);
}

InvokeOutcome Interpreter::invoke(uint32_t func_index,
                                  const std::vector<Value>& args) {
  const wasm::FuncType& ft = inst_.module().func_type(func_index);
  if (args.size() != ft.params.size()) {
    return InvokeOutcome::failed("argument count mismatch");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != ft.params[i]) {
      return InvokeOutcome::failed("argument type mismatch");
    }
  }
  std::vector<Slot> arg_slots;
  arg_slots.reserve(args.size());
  for (const Value& v : args) arg_slots.push_back(v.slot);

  depth_ = 0;
  Slot ret;
  // Host functions report pointer faults through raise_trap (a longjmp);
  // give them a landing pad alongside the interpreter's return-code path.
  TrapCode t;
  TrapFrame frame;
  if (sigsetjmp(frame.env, 1) == 0) {
    TrapScope scope(&frame);
    t = run(func_index, arg_slots.data(), &ret);
  } else {
    t = frame.code;
  }
  if (t != TrapCode::kNone) return InvokeOutcome::trapped(t);

  InvokeOutcome out;
  if (!ft.results.empty()) out.value = Value(ft.results[0], ret);
  return out;
}

TrapCode Interpreter::call_host(uint32_t import_index, const Slot* args,
                                Slot* ret) {
  const HostBinding* binding = inst_.import_binding(import_index);
  HostCallCtx ctx{inst_.mem_view(), inst_.host_user};
  Slot r = binding->fn(ctx, args);
  if (!binding->type.results.empty()) *ret = r;
  return TrapCode::kNone;
}

TrapCode Interpreter::run(uint32_t func_index, const Slot* args, Slot* ret) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    return TrapCode::kCallStackExhausted;
  }
  struct DepthGuard {
    int& d;
    ~DepthGuard() { --d; }
  } guard{depth_};

  const wasm::Module& m = inst_.module();
  if (m.is_imported(func_index)) {
    return call_host(func_index, args, ret);
  }

  const wasm::FunctionBody& body =
      m.functions[func_index - m.num_imported_funcs()];
  const wasm::FuncType& ft = m.types[body.type_index];
  const std::vector<Instr>& code = body.code;

  // Tagged locals: params then declared locals (zero-initialized).
  std::vector<Value> locals;
  locals.reserve(ft.params.size() + body.locals.size());
  for (size_t i = 0; i < ft.params.size(); ++i) {
    locals.emplace_back(ft.params[i], args[i]);
  }
  for (wasm::ValType t : body.locals) {
    locals.emplace_back(t, Slot{});
  }

  std::vector<Value> stack;
  std::vector<Label> labels;

  auto push = [&stack](Value v) { stack.push_back(v); };
  auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  // Unwinds the label stack for a branch to relative depth d; returns the
  // next pc. Loop labels jump back to the loop header; block/if labels jump
  // past the matching end, carrying the block result.
  auto do_branch = [&](uint32_t d, size_t pc) -> size_t {
    size_t target_idx = labels.size() - 1 - d;
    Label target = labels[target_idx];
    if (target.is_loop) {
      labels.resize(target_idx);
      stack.resize(target.stack_base);
      return target.start_pc;  // re-executes the loop instr (re-pushes label)
    }
    Value result{};
    bool carry = target.has_result;
    if (carry) result = pop();
    stack.resize(target.stack_base);
    if (carry) push(result);
    labels.resize(target_idx);
    (void)pc;
    return find_matching_end(code, target.start_pc) + 1;
  };

  size_t pc = 0;
  while (pc < code.size()) {
    const Instr& ins = code[pc];
    switch (ins.op) {
      case Op::kUnreachable:
        return TrapCode::kUnreachable;
      case Op::kNop:
        ++pc;
        break;

      case Op::kBlock:
        labels.push_back({pc, stack.size(), false, ins.block_type != 0x40});
        ++pc;
        break;
      case Op::kLoop:
        labels.push_back({pc, stack.size(), true, ins.block_type != 0x40});
        ++pc;
        break;
      case Op::kIf: {
        bool cond = pop().slot.u32() != 0;
        size_t else_pc = 0;
        size_t end_pc = find_matching_end(code, pc, &else_pc);
        labels.push_back({pc, stack.size(), false, ins.block_type != 0x40});
        if (cond) {
          ++pc;
        } else if (else_pc != 0) {
          pc = else_pc + 1;
        } else {
          labels.pop_back();
          pc = end_pc + 1;
        }
        break;
      }
      case Op::kElse: {
        // Reached only by falling off the true arm: skip to the end.
        Label lab = labels.back();
        labels.pop_back();
        pc = find_matching_end(code, lab.start_pc) + 1;
        break;
      }
      case Op::kEnd: {
        if (labels.empty()) {
          // Function end.
          if (!ft.results.empty()) *ret = pop().slot;
          return TrapCode::kNone;
        }
        labels.pop_back();
        ++pc;
        break;
      }

      case Op::kBr:
        pc = do_branch(ins.a, pc);
        break;
      case Op::kBrIf: {
        bool cond = pop().slot.u32() != 0;
        pc = cond ? do_branch(ins.a, pc) : pc + 1;
        break;
      }
      case Op::kBrTable: {
        uint32_t idx = pop().slot.u32();
        const std::vector<uint32_t>& targets = m.br_tables[ins.b];
        uint32_t d = idx < targets.size() - 1 ? targets[idx] : targets.back();
        pc = do_branch(d, pc);
        break;
      }
      case Op::kReturn: {
        if (!ft.results.empty()) *ret = pop().slot;
        return TrapCode::kNone;
      }

      case Op::kCall: {
        const wasm::FuncType& callee = m.func_type(ins.a);
        size_t n = callee.params.size();
        std::vector<Slot> call_args(n);
        for (size_t i = n; i > 0; --i) call_args[i - 1] = pop().slot;
        Slot r;
        TrapCode t = run(ins.a, call_args.data(), &r);
        if (t != TrapCode::kNone) return t;
        if (!callee.results.empty()) {
          push(Value(callee.results[0], r));
        }
        ++pc;
        break;
      }
      case Op::kCallIndirect: {
        uint32_t elem = pop().slot.u32();
        if (elem >= inst_.table().size()) return TrapCode::kIndirectCallOob;
        const Instance::TableEntry& entry = inst_.table()[elem];
        if (entry.func_index < 0) return TrapCode::kIndirectCallNull;
        if (entry.canon_type != inst_.canon_type_id(ins.a)) {
          return TrapCode::kIndirectCallType;  // CFI violation
        }
        const wasm::FuncType& callee = m.types[ins.a];
        size_t n = callee.params.size();
        std::vector<Slot> call_args(n);
        for (size_t i = n; i > 0; --i) call_args[i - 1] = pop().slot;
        Slot r;
        TrapCode t =
            run(static_cast<uint32_t>(entry.func_index), call_args.data(), &r);
        if (t != TrapCode::kNone) return t;
        if (!callee.results.empty()) {
          push(Value(callee.results[0], r));
        }
        ++pc;
        break;
      }

      case Op::kDrop:
        pop();
        ++pc;
        break;
      case Op::kSelect: {
        uint32_t cond = pop().slot.u32();
        Value b = pop();
        Value a = pop();
        push(cond ? a : b);
        ++pc;
        break;
      }

      case Op::kLocalGet:
        push(locals[ins.a]);
        ++pc;
        break;
      case Op::kLocalSet:
        locals[ins.a].slot = pop().slot;
        ++pc;
        break;
      case Op::kLocalTee:
        locals[ins.a].slot = stack.back().slot;
        ++pc;
        break;
      case Op::kGlobalGet:
        push(Value(m.globals[ins.a].type, inst_.globals()[ins.a]));
        ++pc;
        break;
      case Op::kGlobalSet:
        inst_.globals()[ins.a] = pop().slot;
        ++pc;
        break;

      case Op::kMemorySize:
        push(Value::i32(static_cast<int32_t>(inst_.memory().pages())));
        ++pc;
        break;
      case Op::kMemoryGrow: {
        uint32_t delta = pop().slot.u32();
        push(Value::i32(inst_.memory().grow(delta)));
        ++pc;
        break;
      }

      case Op::kI32Const:
        push(Value::i32(ins.imm_i32()));
        ++pc;
        break;
      case Op::kI64Const:
        push(Value::i64(ins.imm_i64()));
        ++pc;
        break;
      case Op::kF32Const:
        push(Value(wasm::ValType::kF32, Slot::from_u32(ins.f32_bits())));
        ++pc;
        break;
      case Op::kF64Const:
        push(Value(wasm::ValType::kF64, Slot::from_u64(ins.f64_bits())));
        ++pc;
        break;

      default: {
        uint8_t b = static_cast<uint8_t>(ins.op);
        if (b >= 0x28 && b <= 0x35) {  // loads
          uint64_t addr = static_cast<uint64_t>(pop().slot.u32()) + ins.b;
          uint32_t width = wasm::access_width(ins.op);
          if (!inst_.memory().in_bounds(addr, width)) {
            return TrapCode::kOutOfBoundsMemory;
          }
          const uint8_t* p = inst_.memory().base() + addr;
          uint64_t raw = 0;
          std::memcpy(&raw, p, width);
          Value v;
          switch (ins.op) {
            case Op::kI32Load: v = Value::i32(static_cast<int32_t>(raw)); break;
            case Op::kI64Load: v = Value::i64(static_cast<int64_t>(raw)); break;
            case Op::kF32Load:
              v = Value(wasm::ValType::kF32,
                        Slot::from_u32(static_cast<uint32_t>(raw)));
              break;
            case Op::kF64Load:
              v = Value(wasm::ValType::kF64, Slot::from_u64(raw));
              break;
            case Op::kI32Load8S: v = Value::i32(static_cast<int8_t>(raw)); break;
            case Op::kI32Load8U: v = Value::i32(static_cast<uint8_t>(raw)); break;
            case Op::kI32Load16S: v = Value::i32(static_cast<int16_t>(raw)); break;
            case Op::kI32Load16U: v = Value::i32(static_cast<uint16_t>(raw)); break;
            case Op::kI64Load8S: v = Value::i64(static_cast<int8_t>(raw)); break;
            case Op::kI64Load8U: v = Value::i64(static_cast<uint8_t>(raw)); break;
            case Op::kI64Load16S: v = Value::i64(static_cast<int16_t>(raw)); break;
            case Op::kI64Load16U: v = Value::i64(static_cast<uint16_t>(raw)); break;
            case Op::kI64Load32S: v = Value::i64(static_cast<int32_t>(raw)); break;
            case Op::kI64Load32U: v = Value::i64(static_cast<uint32_t>(raw)); break;
            default: return TrapCode::kUnreachable;
          }
          push(v);
          ++pc;
          break;
        }
        if (b >= 0x36 && b <= 0x3E) {  // stores
          Slot val = pop().slot;
          uint64_t addr = static_cast<uint64_t>(pop().slot.u32()) + ins.b;
          uint32_t width = wasm::access_width(ins.op);
          if (!inst_.memory().in_bounds(addr, width)) {
            return TrapCode::kOutOfBoundsMemory;
          }
          uint8_t* p = inst_.memory().base() + addr;
          uint64_t raw = val.bits;
          std::memcpy(p, &raw, width);
          ++pc;
          break;
        }

        // Simple numeric ops.
        NumArity arity = numeric_arity(ins.op);
        if (arity == NumArity::kUnary) {
          Value a = pop();
          Slot out;
          TrapCode t = apply_unop(ins.op, a.slot, &out);
          if (t != TrapCode::kNone) return t;
          push(Value(numeric_result_type(ins.op), out));
          ++pc;
          break;
        }
        if (arity == NumArity::kBinary) {
          Value vb = pop();
          Value va = pop();
          Slot out;
          TrapCode t = apply_binop(ins.op, va.slot, vb.slot, &out);
          if (t != TrapCode::kNone) return t;
          push(Value(numeric_result_type(ins.op), out));
          ++pc;
          break;
        }
        return TrapCode::kUnreachable;  // validated code never gets here
      }
    }
  }
  // Fell off the end without the final kEnd (decoder prevents this).
  if (!ft.results.empty()) *ret = stack.back().slot;
  return TrapCode::kNone;
}

}  // namespace sledge::engine
