#include "engine/aot.hpp"

#include <dlfcn.h>

#include <cstring>
#include <utility>

#include "engine/wasm2c.hpp"

namespace sledge::engine {

namespace {

// AotEnv callbacks: generated code calls back into the runtime through
// these. They run inside the invoking thread's TrapScope.

[[noreturn]] void env_trap(AotInst*, int32_t code) {
  raise_trap(static_cast<TrapCode>(code));
}

int32_t env_memory_grow(AotInst* inst, uint32_t delta_pages) {
  auto* ctx = static_cast<AotInstanceHandle::RunContext*>(inst->rt);
  int32_t old_pages = ctx->memory->grow(delta_pages);
  if (old_pages >= 0) {
    inst->mem_size = ctx->memory->size_bytes();
    if (inst->bnd) {
      for (int i = 0; i < kBoundsDirEntries; ++i) {
        inst->bnd[i].hi = inst->mem_size;
      }
    }
  }
  return old_pages;
}

uint64_t env_host_call(AotInst* inst, uint32_t import_index,
                       const uint64_t* args) {
  auto* ctx = static_cast<AotInstanceHandle::RunContext*>(inst->rt);
  const HostBinding* binding = ctx->module->import_binding(import_index);
  size_t nargs = binding->type.params.size();
  Slot slots[16];
  for (size_t i = 0; i < nargs && i < 16; ++i) {
    slots[i] = Slot::from_u64(args[i]);
  }
  HostCallCtx hctx{MemView{inst->mem, inst->mem_size}, ctx->host_user};
  Slot r = binding->fn(hctx, slots);
  return r.bits;
}

const AotEnv kAotEnv = {env_trap, env_memory_grow, env_host_call};

}  // namespace

AotModule::~AotModule() { release(); }

AotModule& AotModule::operator=(AotModule&& o) noexcept {
  if (this != &o) {
    release();
    module_ = std::exchange(o.module_, nullptr);
    imports_ = std::move(o.imports_);
    options_ = o.options_;
    cc_result_ = std::exchange(o.cc_result_, CcResult{});
    dl_handle_ = std::exchange(o.dl_handle_, nullptr);
    get_desc_ = std::exchange(o.get_desc_, nullptr);
    inst_init_ = std::exchange(o.inst_init_, nullptr);
    invoke_ = std::exchange(o.invoke_, nullptr);
    desc_ = std::exchange(o.desc_, nullptr);
  }
  return *this;
}

void AotModule::release() {
  if (dl_handle_) {
    ::dlclose(dl_handle_);
    dl_handle_ = nullptr;
  }
  remove_work_dir(cc_result_);
  cc_result_ = CcResult{};
}

Result<AotModule> AotModule::compile(const wasm::Module& module,
                                     const HostRegistry& hosts,
                                     const Options& options) {
  AotModule out;
  out.module_ = &module;
  out.options_ = options;

  // Resolve imports up front (same checks as Instance::instantiate).
  for (const wasm::Import& imp : module.imports) {
    const HostBinding* binding = hosts.lookup(imp.module, imp.field);
    if (!binding) {
      return Result<AotModule>::error("unresolved import " + imp.module + "." +
                                      imp.field);
    }
    if (!(binding->type == module.types[imp.type_index])) {
      return Result<AotModule>::error("import type mismatch for " +
                                      imp.module + "." + imp.field);
    }
    out.imports_.push_back(binding);
  }

  Wasm2COptions w2c;
  w2c.strategy = options.strategy;
  Result<std::string> c_source = wasm_to_c(module, w2c);
  if (!c_source.ok()) return Result<AotModule>::error(c_source.error_message());

  CcOptions cc;
  cc.opt_level = options.opt_level;
  Result<CcResult> compiled = compile_c_to_so(c_source.value(), cc);
  if (!compiled.ok()) return Result<AotModule>::error(compiled.error_message());
  out.cc_result_ = compiled.take();

  out.dl_handle_ = ::dlopen(out.cc_result_.so_path.c_str(),
                            RTLD_NOW | RTLD_LOCAL);
  if (!out.dl_handle_) {
    return Result<AotModule>::error(std::string("dlopen failed: ") +
                                    ::dlerror());
  }
  out.get_desc_ = reinterpret_cast<AotGetDescFn>(
      ::dlsym(out.dl_handle_, "awsm_get_desc"));
  out.inst_init_ = reinterpret_cast<AotInstInitFn>(
      ::dlsym(out.dl_handle_, "awsm_inst_init"));
  out.invoke_ =
      reinterpret_cast<AotInvokeFn>(::dlsym(out.dl_handle_, "awsm_invoke"));
  if (!out.get_desc_ || !out.inst_init_ || !out.invoke_) {
    return Result<AotModule>::error("generated .so missing ABI symbols");
  }
  out.desc_ = out.get_desc_();

  return Result<AotModule>(std::move(out));
}

Result<AotInstanceHandle> AotModule::instantiate(LinearMemory recycled) const {
  AotInstanceHandle h;
  h.module_ = this;

  if (module_->memory) {
    if (recycled.valid() && recycled.strategy() == options_.strategy &&
        recycled.pages() >= module_->memory->min) {
      h.memory_ = std::move(recycled);
    } else {
      uint32_t max = module_->memory->has_max ? module_->memory->max
                                              : options_.default_max_pages;
      if (max < module_->memory->min) max = module_->memory->min;
      auto mem =
          LinearMemory::create(options_.strategy, module_->memory->min, max);
      if (!mem.ok()) {
        return Result<AotInstanceHandle>::error(mem.error_message());
      }
      h.memory_ = mem.take();
    }
  }

  h.inst_storage_ = std::make_unique<uint8_t[]>(desc_->inst_size);
  std::memset(h.inst_storage_.get(), 0, desc_->inst_size);
  h.inst_ = reinterpret_cast<AotInst*>(h.inst_storage_.get());

  h.run_ctx_ = std::make_unique<AotInstanceHandle::RunContext>();
  h.run_ctx_->module = this;
  h.run_ctx_->memory = &h.memory_;

  h.inst_->mem = h.memory_.base();
  h.inst_->mem_size = h.memory_.size_bytes();
  h.inst_->env = &kAotEnv;
  h.inst_->rt = h.run_ctx_.get();

  if (options_.strategy == BoundsStrategy::kMpxSim) {
    h.bounds_dir_ = std::make_unique<AotBnd[]>(kBoundsDirEntries);
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      h.bounds_dir_[i] = {0, h.inst_->mem_size};
    }
    h.inst_->bnd = h.bounds_dir_.get();
  }

  inst_init_(h.inst_);

  return Result<AotInstanceHandle>(std::move(h));
}

Result<AotInstanceHandle> AotModule::instantiate_seeded(
    LinearMemory memory, const std::vector<uint8_t>& inst_block) const {
  if (inst_block.size() != desc_->inst_size) {
    return Result<AotInstanceHandle>::error("seed inst block size mismatch");
  }
  if (module_->memory && !memory.valid()) {
    return Result<AotInstanceHandle>::error(
        "seeded instantiation requires a memory");
  }

  AotInstanceHandle h;
  h.module_ = this;
  h.memory_ = std::move(memory);

  h.inst_storage_ = std::make_unique<uint8_t[]>(desc_->inst_size);
  std::memcpy(h.inst_storage_.get(), inst_block.data(), desc_->inst_size);
  h.inst_ = reinterpret_cast<AotInst*>(h.inst_storage_.get());

  h.run_ctx_ = std::make_unique<AotInstanceHandle::RunContext>();
  h.run_ctx_->module = this;
  h.run_ctx_->memory = &h.memory_;

  // Everything per-instance in the copied header must be re-anchored; the
  // table pointer is .so-static and the trailing globals are the captured
  // post-start values, both correct as copied.
  h.inst_->mem = h.memory_.base();
  h.inst_->mem_size = h.memory_.size_bytes();
  h.inst_->env = &kAotEnv;
  h.inst_->rt = h.run_ctx_.get();
  h.inst_->call_depth = 0;
  h.inst_->bnd = nullptr;

  if (options_.strategy == BoundsStrategy::kMpxSim) {
    h.bounds_dir_ = std::make_unique<AotBnd[]>(kBoundsDirEntries);
    for (int i = 0; i < kBoundsDirEntries; ++i) {
      h.bounds_dir_[i] = {0, h.inst_->mem_size};
    }
    h.inst_->bnd = h.bounds_dir_.get();
  }

  return Result<AotInstanceHandle>(std::move(h));
}

InvokeOutcome AotInstanceHandle::invoke_export(const std::string& name,
                                               const std::vector<Value>& args) {
  const wasm::Export* exp =
      module_->module().find_export(name, wasm::ExternalKind::kFunction);
  if (!exp) return InvokeOutcome::failed("no exported function '" + name + "'");
  return invoke(exp->index, args);
}

InvokeOutcome AotInstanceHandle::invoke(uint32_t func_index,
                                        const std::vector<Value>& args) {
  const wasm::FuncType& ft = module_->module().func_type(func_index);
  if (args.size() != ft.params.size()) {
    return InvokeOutcome::failed("argument count mismatch");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != ft.params[i]) {
      return InvokeOutcome::failed("argument type mismatch");
    }
  }

  // Copied out before sigsetjmp so nothing live spans the longjmp.
  const bool has_result = !ft.results.empty();
  const wasm::ValType result_type =
      has_result ? ft.results[0] : wasm::ValType::kI32;

  std::vector<uint64_t> raw_args;
  raw_args.reserve(args.size());
  for (const Value& v : args) raw_args.push_back(v.slot.bits);

  // The memory pointer is stable, but the size may have changed on a
  // previous trap-unwound invocation; refresh both. The RunContext memory
  // pointer is also re-anchored here because the handle may have been moved
  // since instantiate().
  run_ctx_->memory = &memory_;
  inst_->mem = memory_.base();
  inst_->mem_size = memory_.size_bytes();

  uint64_t raw_ret = 0;
  TrapFrame frame;
  if (sigsetjmp(frame.env, 1) == 0) {
    TrapScope scope(&frame);
    int32_t rc = module_->invoke_(inst_, func_index, raw_args.data(), &raw_ret);
    if (rc != 0) {
      return InvokeOutcome::failed("function not reachable via dispatcher");
    }
  } else {
    inst_->call_depth = 0;  // unwound mid-call; reset the guard
    return InvokeOutcome::trapped(frame.code);
  }

  InvokeOutcome out;
  if (has_result) {
    out.value = Value(result_type, Slot::from_u64(raw_ret));
  }
  return out;
}

}  // namespace sledge::engine
