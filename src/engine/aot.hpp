// Tier 3 back half: the AoT module loader and instance manager.
//
// AotModule::compile performs the expensive pipeline once (translate to C,
// compile to .so, dlopen, dlsym) — the paper's "heavyweight linking and
// loading". AotModule::instantiate is the cheap per-request path: allocate
// linear memory + a small instance block, run the generated initializer.
// This split is what gives Sledge its microsecond-scale function startup
// (Table 3 in the paper).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/aot_abi.hpp"
#include "engine/cc_driver.hpp"
#include "engine/host.hpp"
#include "engine/interp.hpp"
#include "engine/memory.hpp"
#include "wasm/module.hpp"

namespace sledge::engine {

class AotModule;

// One live sandbox instance of an AoT-compiled module. Move-only; owns its
// linear memory and instance block.
class AotInstanceHandle {
 public:
  AotInstanceHandle() = default;
  AotInstanceHandle(AotInstanceHandle&&) noexcept = default;
  AotInstanceHandle& operator=(AotInstanceHandle&&) noexcept = default;

  bool valid() const { return inst_ != nullptr; }
  LinearMemory& memory() { return memory_; }
  const LinearMemory& memory() const { return memory_; }
  // Per-request host context (ServerlessEnv*).
  void set_host_user(void* user) { run_ctx_->host_user = user; }

  InvokeOutcome invoke(uint32_t func_index, const std::vector<Value>& args);
  InvokeOutcome invoke_export(const std::string& name,
                              const std::vector<Value>& args);

  // Raw instance block (header + trailing globals), for snapshot capture.
  const uint8_t* inst_block() const { return inst_storage_.get(); }

  // Shared with the AotEnv callbacks (generated code -> runtime).
  struct RunContext {
    const AotModule* module = nullptr;
    LinearMemory* memory = nullptr;
    void* host_user = nullptr;
  };

 private:
  friend class AotModule;

  const AotModule* module_ = nullptr;
  LinearMemory memory_;
  std::unique_ptr<uint8_t[]> inst_storage_;
  AotInst* inst_ = nullptr;
  std::unique_ptr<RunContext> run_ctx_;
  std::unique_ptr<AotBnd[]> bounds_dir_;
};

class AotModule {
 public:
  struct Options {
    BoundsStrategy strategy = BoundsStrategy::kVmGuard;
    int opt_level = 2;
    uint32_t default_max_pages = 4096;  // cap for modules without a max
  };

  AotModule() = default;
  ~AotModule();
  AotModule(AotModule&& o) noexcept { *this = std::move(o); }
  AotModule& operator=(AotModule&& o) noexcept;
  AotModule(const AotModule&) = delete;
  AotModule& operator=(const AotModule&) = delete;

  // `module` and `hosts` must outlive the AotModule.
  static Result<AotModule> compile(const wasm::Module& module,
                                   const HostRegistry& hosts,
                                   const Options& options);

  // `recycled`, when valid, is an already-reset() pooled linear memory used
  // instead of a fresh mapping (the warm-start path).
  Result<AotInstanceHandle> instantiate(
      LinearMemory recycled = LinearMemory()) const;

  // Snapshot path: `memory` is already populated (COW template mapping) and
  // `inst_block` is a captured post-init instance block (inst_size() bytes).
  // The block is copied and its per-instance pointers (mem, bnd, env, rt)
  // re-anchored; the table pointer inside is .so-static and stays valid for
  // the module's lifetime. awsm_inst_init — and with it globals init, table
  // fill and data-segment copies — is skipped entirely.
  Result<AotInstanceHandle> instantiate_seeded(
      LinearMemory memory, const std::vector<uint8_t>& inst_block) const;

  uint32_t inst_size() const { return desc_->inst_size; }

  // Resolved host binding for import `idx` (joint function index space).
  const HostBinding* import_binding(uint32_t idx) const {
    return imports_[idx];
  }

  const wasm::Module& module() const { return *module_; }
  uint64_t compile_ns() const { return cc_result_.compile_ns; }
  int64_t so_size_bytes() const { return cc_result_.so_size; }
  const std::string& so_path() const { return cc_result_.so_path; }
  BoundsStrategy strategy() const { return options_.strategy; }

 private:
  friend class AotInstanceHandle;

  void release();

  const wasm::Module* module_ = nullptr;
  std::vector<const HostBinding*> imports_;
  Options options_;
  CcResult cc_result_;
  void* dl_handle_ = nullptr;
  AotGetDescFn get_desc_ = nullptr;
  AotInstInitFn inst_init_ = nullptr;
  AotInvokeFn invoke_ = nullptr;
  const AotDesc* desc_ = nullptr;
};

}  // namespace sledge::engine
