// Tier 1: the baseline ("classic") interpreter.
//
// Deliberately naive: tagged values, dynamic branch-target resolution (it
// scans for the matching `end`/`else` every time control transfers), and a
// heap-allocated operand stack per frame. This tier models the slow
// comparator runtimes of the paper's Figure 5 (see DESIGN.md) and doubles
// as the executable semantic reference for differential tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/instance.hpp"
#include "engine/value.hpp"

namespace sledge::engine {

// Uniform result of invoking a Wasm function on any engine tier.
struct InvokeOutcome {
  TrapCode trap = TrapCode::kNone;
  std::optional<Value> value;
  std::string error;  // non-trap failure (missing export, bad arity, ...)

  bool ok() const { return trap == TrapCode::kNone && error.empty(); }
  static InvokeOutcome trapped(TrapCode t) {
    InvokeOutcome o;
    o.trap = t;
    return o;
  }
  static InvokeOutcome failed(std::string msg) {
    InvokeOutcome o;
    o.error = std::move(msg);
    return o;
  }
  std::string describe() const;
};

class Interpreter {
 public:
  explicit Interpreter(Instance& inst) : inst_(inst) {}

  InvokeOutcome invoke(uint32_t func_index, const std::vector<Value>& args);
  InvokeOutcome invoke_export(const std::string& name,
                              const std::vector<Value>& args);

 private:
  TrapCode run(uint32_t func_index, const Slot* args, Slot* ret);
  TrapCode call_host(uint32_t import_index, const Slot* args, Slot* ret);

  Instance& inst_;
  int depth_ = 0;
  static constexpr int kMaxDepth = 512;
};

}  // namespace sledge::engine
