// Host-function ABI between sandboxed Wasm code and the Sledge runtime.
//
// Modules import functions from the "env" namespace; the runtime resolves
// them against a HostRegistry at instantiation. Host functions receive a
// view of the sandbox's linear memory and a user pointer (the per-request
// serverless context). Pointer/length arguments coming from the sandbox are
// validated against the memory view — a bad pointer raises an
// out-of-bounds trap exactly like a bad load would.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/trap.hpp"
#include "engine/value.hpp"
#include "wasm/types.hpp"

namespace sledge::engine {

// Bounds-checked view of a sandbox's linear memory handed to host functions.
struct MemView {
  uint8_t* base = nullptr;
  uint64_t size = 0;

  // Validates [ptr, ptr+len) and returns a raw pointer, or traps.
  //
  // Zero-length ranges: `ptr` must still lie within [0, size] — a len==0
  // call with ptr > size traps rather than fabricating an out-of-range
  // pointer. The returned pointer may be one-past-the-end (ptr == size);
  // callers never dereference it for an empty range, but must not assume it
  // points at mapped guard-free memory either.
  uint8_t* check_range(uint32_t ptr, uint32_t len) const {
    if (static_cast<uint64_t>(ptr) + len > size) {
      raise_trap(TrapCode::kOutOfBoundsMemory);
    }
    return base + ptr;
  }
};

struct HostCallCtx {
  MemView mem;
  void* user = nullptr;  // per-request context (e.g. ServerlessEnv)
};

// Host functions execute inside the caller's TrapScope: they may raise_trap.
// `args` has one Slot per declared parameter; the return Slot is ignored for
// void signatures.
using HostFunc = std::function<Slot(HostCallCtx&, const Slot* args)>;

struct HostBinding {
  wasm::FuncType type;
  HostFunc fn;
};

class HostRegistry {
 public:
  void register_fn(const std::string& module, const std::string& field,
                   wasm::FuncType type, HostFunc fn) {
    bindings_[module + "." + field] = {std::move(type), std::move(fn)};
  }

  const HostBinding* lookup(const std::string& module,
                            const std::string& field) const {
    auto it = bindings_.find(module + "." + field);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  size_t size() const { return bindings_.size(); }

 private:
  std::map<std::string, HostBinding> bindings_;
};

// Error codes shared by the async host-I/O hostcalls (sb_connect /
// sb_send / sb_recv / sb_close / sb_invoke). Returned to the sandbox as
// negative i32 values; 0/positive is a byte count or descriptor.
enum SbIoError : int32_t {
  kSbErrUnsupported = -1,  // no scheduler hook installed (standalone run)
  kSbErrBadFd = -2,        // descriptor not in this sandbox's fd table
  kSbErrFdLimit = -3,      // per-sandbox open-fd cap reached
  kSbErrConnect = -4,      // resolve/connect failure
  kSbErrIo = -5,           // send/recv error (peer reset, ...)
  kSbErrNoModule = -6,     // sb_invoke: target module not registered
  kSbErrOverload = -7,     // sb_invoke: child admission shed (503 analogue)
  kSbErrDepth = -8,        // sb_invoke: invoke-chain depth cap (cycle guard)
  kSbErrChildFailed = -9,  // sb_invoke: child trapped / was killed
  kSbErrNoChannel = -10,   // sb_invoke_stream: caller has no response
                           // channel (conn or join) left to hand off
};

// The serverless request/response environment backing the standard "env"
// ABI (req_len / req_read / resp_write / ...). One per sandbox execution.
struct ServerlessEnv {
  std::vector<uint8_t> request;
  std::vector<uint8_t> response;

  // ---- Zero-copy invoke dataplane views ----
  //
  // When a sandbox is an invoke child on the shm dataplane, its request
  // bytes live in a pooled TransferBuffer rather than `request`
  // (`req_view`), and its response bytes append into the transfer buffer's
  // response region (`resp_sink`) so the parent reads them without a heap
  // hop. The sink spills into `response` on overflow — `resp_append` copies
  // the sink prefix across first, so byte order is always preserved and
  // the copy/shm dataplanes stay byte-identical.
  const uint8_t* req_view = nullptr;
  size_t req_view_len = 0;
  uint8_t* resp_sink = nullptr;
  size_t resp_sink_cap = 0;
  size_t resp_sink_len = 0;

  const uint8_t* req_data() const {
    return req_view ? req_view : request.data();
  }
  size_t req_size() const { return req_view ? req_view_len : request.size(); }
  size_t resp_size() const { return resp_sink_len + response.size(); }
  void resp_append(const void* p, size_t n) {
    if (resp_sink) {
      if (resp_sink_len + n <= resp_sink_cap) {
        std::memcpy(resp_sink + resp_sink_len, p, n);
        resp_sink_len += n;
        return;
      }
      // Overflow: move what the sink holds into the heap vector and retire
      // the sink for the rest of this response.
      response.insert(response.end(), resp_sink, resp_sink + resp_sink_len);
      resp_sink = nullptr;
      resp_sink_len = 0;
    }
    const uint8_t* bytes = static_cast<const uint8_t*>(p);
    response.insert(response.end(), bytes, bytes + n);
  }
  // Optional cooperative-yield hook installed by the Sledge scheduler so a
  // sandbox can block (e.g. env.sleep_ms) without holding its worker core.
  std::function<void(uint64_t ns)> sleep_hook;

  // ---- Async host-I/O hooks (sb_* hostcalls) ----
  //
  // Installed by the Sledge sandbox before entering Wasm; absent hooks make
  // the corresponding hostcall return kSbErrUnsupported. All descriptors are
  // sandbox-virtual (indices into a per-sandbox fd table), never raw OS fds.
  // Hooks may block cooperatively (yield the worker core) and may raise a
  // deadline trap on resume, so they must only be called inside a TrapScope.
  std::function<int32_t(const uint8_t* host, uint32_t host_len,
                        uint32_t port)>
      connect_hook;
  std::function<int32_t(int32_t fd, const uint8_t* data, uint32_t len)>
      send_hook;
  std::function<int32_t(int32_t fd, uint8_t* buf, uint32_t cap)> recv_hook;
  std::function<int32_t(int32_t fd)> close_hook;
  // sb_invoke: run another registered module on `req` and copy its response
  // into `resp` (truncated to `resp_cap`); returns bytes copied or an error.
  std::function<int32_t(const uint8_t* name, uint32_t name_len,
                        const uint8_t* req, uint32_t req_len, uint8_t* resp,
                        uint32_t resp_cap)>
      invoke_hook;
  // sb_invoke_stream: hand the caller's response channel (HTTP connection
  // or upstream InvokeJoin) to a child of `name` running on `req`, without
  // a stop-and-wait join. Returns 0 on hand-off or a negative SbIoError;
  // after success the caller's own response bytes are discarded.
  std::function<int32_t(const uint8_t* name, uint32_t name_len,
                        const uint8_t* req, uint32_t req_len)>
      invoke_stream_hook;
};

// Registers the standard Sledge serverless ABI plus libm-style math imports
// (exp/log/pow/...; see DESIGN.md). Host user pointer must be ServerlessEnv*.
void register_serverless_abi(HostRegistry& registry);

// The default registry shared by engines that don't need custom hosts.
const HostRegistry& default_host_registry();

}  // namespace sledge::engine
