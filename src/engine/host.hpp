// Host-function ABI between sandboxed Wasm code and the Sledge runtime.
//
// Modules import functions from the "env" namespace; the runtime resolves
// them against a HostRegistry at instantiation. Host functions receive a
// view of the sandbox's linear memory and a user pointer (the per-request
// serverless context). Pointer/length arguments coming from the sandbox are
// validated against the memory view — a bad pointer raises an
// out-of-bounds trap exactly like a bad load would.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/trap.hpp"
#include "engine/value.hpp"
#include "wasm/types.hpp"

namespace sledge::engine {

// Bounds-checked view of a sandbox's linear memory handed to host functions.
struct MemView {
  uint8_t* base = nullptr;
  uint64_t size = 0;

  // Validates [ptr, ptr+len) and returns a raw pointer, or traps.
  uint8_t* check_range(uint32_t ptr, uint32_t len) const {
    if (static_cast<uint64_t>(ptr) + len > size) {
      raise_trap(TrapCode::kOutOfBoundsMemory);
    }
    return base + ptr;
  }
};

struct HostCallCtx {
  MemView mem;
  void* user = nullptr;  // per-request context (e.g. ServerlessEnv)
};

// Host functions execute inside the caller's TrapScope: they may raise_trap.
// `args` has one Slot per declared parameter; the return Slot is ignored for
// void signatures.
using HostFunc = std::function<Slot(HostCallCtx&, const Slot* args)>;

struct HostBinding {
  wasm::FuncType type;
  HostFunc fn;
};

class HostRegistry {
 public:
  void register_fn(const std::string& module, const std::string& field,
                   wasm::FuncType type, HostFunc fn) {
    bindings_[module + "." + field] = {std::move(type), std::move(fn)};
  }

  const HostBinding* lookup(const std::string& module,
                            const std::string& field) const {
    auto it = bindings_.find(module + "." + field);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  size_t size() const { return bindings_.size(); }

 private:
  std::map<std::string, HostBinding> bindings_;
};

// The serverless request/response environment backing the standard "env"
// ABI (req_len / req_read / resp_write / ...). One per sandbox execution.
struct ServerlessEnv {
  std::vector<uint8_t> request;
  std::vector<uint8_t> response;
  // Optional cooperative-yield hook installed by the Sledge scheduler so a
  // sandbox can block (e.g. env.sleep_ms) without holding its worker core.
  std::function<void(uint64_t ns)> sleep_hook;
};

// Registers the standard Sledge serverless ABI plus libm-style math imports
// (exp/log/pow/...; see DESIGN.md). Host user pointer must be ServerlessEnv*.
void register_serverless_abi(HostRegistry& registry);

// The default registry shared by engines that don't need custom hosts.
const HostRegistry& default_host_registry();

}  // namespace sledge::engine
