// Tier 2: the pre-decoded ("threaded") interpreter.
//
// Runs over predecoded FastInstr streams: branch targets resolved, untagged
// 64-bit slots, preallocated operand stack. Roughly an order of magnitude
// faster than the classic tier, still well behind AoT native code — it fills
// the fast-compile/slow-code slot in the Figure 5 comparison.
#pragma once

#include "engine/instance.hpp"
#include "engine/interp.hpp"
#include "engine/predecode.hpp"

namespace sledge::engine {

class FastInterpreter {
 public:
  // Both `inst` and `fm` must outlive the interpreter; fm must be the
  // predecode of inst.module().
  FastInterpreter(Instance& inst, const FastModule& fm)
      : inst_(inst), fm_(fm) {}

  InvokeOutcome invoke(uint32_t func_index, const std::vector<Value>& args);
  InvokeOutcome invoke_export(const std::string& name,
                              const std::vector<Value>& args);

 private:
  TrapCode run(uint32_t func_index, const Slot* args, Slot* ret);

  Instance& inst_;
  const FastModule& fm_;
  int depth_ = 0;
  static constexpr int kMaxDepth = 512;
};

}  // namespace sledge::engine
