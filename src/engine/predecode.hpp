// Tier-2 preparation: pre-decoded function bodies with *resolved* control
// flow. Every br/br_if/if/else knows its absolute jump target and the
// operand-stack height to unwind to, so the fast interpreter runs with no
// label stack and no dynamic scanning. This mirrors what a real baseline
// JIT front-end (e.g. Cranelift's or wasm3's prepass) computes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "wasm/module.hpp"

namespace sledge::engine {

struct FastInstr {
  wasm::Op op;
  uint8_t carry = 0;    // branch carries one result value
  uint32_t a = 0;       // local/global/func/type index, align
  uint32_t b = 0;       // memarg offset, br_table pool index
  uint32_t target = 0;  // resolved jump target (pc index)
  uint32_t unwind = 0;  // operand-stack height to resize to on branch
  uint64_t imm = 0;
};

struct BrTableEntry {
  uint32_t target = 0;
  uint32_t unwind = 0;
  uint8_t carry = 0;
};

struct FastFunc {
  uint32_t type_index = 0;
  uint32_t num_params = 0;
  uint32_t num_locals = 0;  // params + declared locals
  // Value types of all locals (params first); used to zero-init correctly.
  std::vector<wasm::ValType> local_types;
  std::vector<FastInstr> code;
  // Static upper bound of the operand stack, for preallocation.
  uint32_t max_stack = 0;
};

struct FastModule {
  const wasm::Module* module = nullptr;
  std::vector<FastFunc> funcs;                      // defined functions only
  std::vector<std::vector<BrTableEntry>> br_pools;  // resolved br_tables

  const FastFunc& func(uint32_t joint_index) const {
    return funcs[joint_index - module->num_imported_funcs()];
  }
};

// Requires a *validated* module (heights/types are trusted).
Result<FastModule> predecode(const wasm::Module& module);

}  // namespace sledge::engine
