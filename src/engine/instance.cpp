#include "engine/instance.hpp"

#include <cstring>
#include <utility>

namespace sledge::engine {

Result<Instance> Instance::instantiate(const wasm::Module& module,
                                       BoundsStrategy strategy,
                                       const HostRegistry& hosts,
                                       uint32_t default_max_pages,
                                       LinearMemory recycled) {
  Instance inst;
  inst.module_ = &module;

  // Resolve imports against the host registry, checking signatures.
  for (const wasm::Import& imp : module.imports) {
    const HostBinding* binding = hosts.lookup(imp.module, imp.field);
    if (!binding) {
      return Result<Instance>::error("unresolved import " + imp.module + "." +
                                     imp.field);
    }
    if (!(binding->type == module.types[imp.type_index])) {
      return Result<Instance>::error(
          "import type mismatch for " + imp.module + "." + imp.field +
          ": module wants " + module.types[imp.type_index].to_string() +
          ", host provides " + binding->type.to_string());
    }
    inst.imports_.push_back(binding);
  }

  // Memory: adopt the pooled region when one was handed in, else map fresh.
  if (module.memory) {
    if (recycled.valid() && recycled.strategy() == strategy &&
        recycled.pages() >= module.memory->min) {
      inst.memory_ = std::move(recycled);
    } else {
      uint32_t max = module.memory->has_max ? module.memory->max
                                            : default_max_pages;
      if (max < module.memory->min) max = module.memory->min;
      auto mem = LinearMemory::create(strategy, module.memory->min, max);
      if (!mem.ok()) return Result<Instance>::error(mem.error_message());
      inst.memory_ = mem.take();
    }
  }

  // Globals.
  for (const wasm::GlobalDef& g : module.globals) {
    inst.globals_.push_back(Slot::from_u64(g.init_value));
  }

  // Canonical type ids (structural equality) for CFI checks.
  inst.canon_ids_.resize(module.types.size());
  for (size_t i = 0; i < module.types.size(); ++i) {
    uint32_t canon = static_cast<uint32_t>(i);
    for (size_t j = 0; j < i; ++j) {
      if (module.types[j] == module.types[i]) {
        canon = static_cast<uint32_t>(j);
        break;
      }
    }
    inst.canon_ids_[i] = canon;
  }

  // Indirect-call table.
  if (module.table) {
    inst.table_.resize(module.table->min);
    for (const wasm::ElementSegment& seg : module.elements) {
      for (size_t k = 0; k < seg.func_indices.size(); ++k) {
        uint32_t func = seg.func_indices[k];
        uint32_t type_index =
            func < module.num_imported_funcs()
                ? module.imports[func].type_index
                : module.functions[func - module.num_imported_funcs()]
                      .type_index;
        inst.table_[seg.offset + k] = {static_cast<int32_t>(func),
                                       inst.canon_ids_[type_index]};
      }
    }
  }

  // Data segments (validator guaranteed they fit).
  for (const wasm::DataSegment& seg : module.data) {
    std::memcpy(inst.memory_.base() + seg.offset, seg.bytes.data(),
                seg.bytes.size());
  }

  return Result<Instance>(std::move(inst));
}

Result<Instance> Instance::instantiate_seeded(
    const wasm::Module& module, const HostRegistry& hosts, LinearMemory memory,
    const std::vector<Slot>& globals, const std::vector<TableEntry>& table) {
  Instance inst;
  inst.module_ = &module;

  for (const wasm::Import& imp : module.imports) {
    const HostBinding* binding = hosts.lookup(imp.module, imp.field);
    if (!binding) {
      return Result<Instance>::error("unresolved import " + imp.module + "." +
                                     imp.field);
    }
    inst.imports_.push_back(binding);
  }

  if (module.memory && !memory.valid()) {
    return Result<Instance>::error("seeded instantiation requires a memory");
  }
  inst.memory_ = std::move(memory);

  inst.canon_ids_.resize(module.types.size());
  for (size_t i = 0; i < module.types.size(); ++i) {
    uint32_t canon = static_cast<uint32_t>(i);
    for (size_t j = 0; j < i; ++j) {
      if (module.types[j] == module.types[i]) {
        canon = static_cast<uint32_t>(j);
        break;
      }
    }
    inst.canon_ids_[i] = canon;
  }

  // Post-start mutable state comes straight from the captured seed; data
  // segments and the start function have already run into the template.
  inst.globals_ = globals;
  inst.table_ = table;

  return Result<Instance>(std::move(inst));
}

}  // namespace sledge::engine
