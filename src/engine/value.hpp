// Runtime value representations.
//
// The fast interpreter and the AoT ABI use untagged 64-bit slots (the
// validator guarantees type correctness); the slow interpreter tier carries
// explicit tags, which is one honest source of its slowness (it models
// naive runtimes the paper compares against).
#pragma once

#include <cstdint>
#include <cstring>

#include "wasm/types.hpp"

namespace sledge::engine {

// Untagged 64-bit slot. Conversions go through bit copies, never unions with
// active-member UB.
struct Slot {
  uint64_t bits = 0;

  static Slot from_i32(int32_t v) {
    Slot s;
    s.bits = static_cast<uint64_t>(static_cast<uint32_t>(v));
    return s;
  }
  static Slot from_u32(uint32_t v) {
    Slot s;
    s.bits = v;
    return s;
  }
  static Slot from_i64(int64_t v) {
    Slot s;
    s.bits = static_cast<uint64_t>(v);
    return s;
  }
  static Slot from_u64(uint64_t v) {
    Slot s;
    s.bits = v;
    return s;
  }
  static Slot from_f32(float v) {
    Slot s;
    uint32_t b;
    std::memcpy(&b, &v, 4);
    s.bits = b;
    return s;
  }
  static Slot from_f64(double v) {
    Slot s;
    uint64_t b;
    std::memcpy(&b, &v, 8);
    s.bits = b;
    return s;
  }

  int32_t i32() const { return static_cast<int32_t>(static_cast<uint32_t>(bits)); }
  uint32_t u32() const { return static_cast<uint32_t>(bits); }
  int64_t i64() const { return static_cast<int64_t>(bits); }
  uint64_t u64() const { return bits; }
  float f32() const {
    float v;
    uint32_t b = static_cast<uint32_t>(bits);
    std::memcpy(&v, &b, 4);
    return v;
  }
  double f64() const {
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
};

// Tagged value used at API boundaries (invoking exports) and by the slow
// interpreter tier.
struct Value {
  wasm::ValType type = wasm::ValType::kI32;
  Slot slot;

  Value() = default;
  Value(wasm::ValType t, Slot s) : type(t), slot(s) {}
  static Value i32(int32_t v) { return {wasm::ValType::kI32, Slot::from_i32(v)}; }
  static Value i64(int64_t v) { return {wasm::ValType::kI64, Slot::from_i64(v)}; }
  static Value f32(float v) { return {wasm::ValType::kF32, Slot::from_f32(v)}; }
  static Value f64(double v) { return {wasm::ValType::kF64, Slot::from_f64(v)}; }

  int32_t as_i32() const { return slot.i32(); }
  int64_t as_i64() const { return slot.i64(); }
  float as_f32() const { return slot.f32(); }
  double as_f64() const { return slot.f64(); }
};

}  // namespace sledge::engine
