// Public facade over the execution tiers.
//
//   WasmModule::load — the once-per-module "heavyweight" path: decode,
//     validate, and prepare the chosen tier (predecode for the fast
//     interpreter; translate + cc + dlopen for the AoT tiers).
//   WasmModule::instantiate — the per-request path: a fresh sandbox with its
//     own linear memory, globals and (for Sledge) request/response context.
//
// Tiers (see DESIGN.md for how they map onto the paper's Figure 5 runtimes):
//   kInterp     classic interpreter        (slow comparator runtimes)
//   kInterpFast pre-decoded interpreter    (mid-tier comparators)
//   kAotO0      wasm->C-> cc -O1 .so       (fast-compile/slower-code, Cranelift-like)
//   kAot        wasm->C-> cc -O3 .so       (aWsm proper)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/aot.hpp"
#include "engine/host.hpp"
#include "engine/instance.hpp"
#include "engine/interp.hpp"
#include "engine/interp_fast.hpp"
#include "engine/memory.hpp"
#include "engine/predecode.hpp"

namespace sledge::engine {

enum class Tier : uint8_t { kInterp, kInterpFast, kAotO0, kAot };

const char* to_string(Tier tier);
bool tier_needs_cc(Tier tier);

class WasmModule;

// A live sandbox: per-request execution state for one module instance.
class WasmSandbox {
 public:
  WasmSandbox() = default;
  WasmSandbox(WasmSandbox&&) noexcept = default;
  WasmSandbox& operator=(WasmSandbox&&) noexcept = default;

  // Invokes an exported function. `env` (optional) backs the serverless ABI
  // imports for the duration of the call.
  InvokeOutcome call(const std::string& export_name,
                     const std::vector<Value>& args,
                     ServerlessEnv* env = nullptr);

  // Convenience for the standard serverless entrypoint "run": feeds
  // `request`, returns the function's response buffer.
  InvokeOutcome run_serverless(const std::vector<uint8_t>& request,
                               std::vector<uint8_t>* response);

  // End-of-life: extracts the linear memory so the caller can recycle it
  // into a resource pool instead of unmapping. The sandbox must not be
  // invoked afterwards. Returns an invalid memory for memory-less modules.
  LinearMemory reclaim_memory();

  // The sandbox's linear memory, or nullptr for memory-less modules.
  const LinearMemory* memory() const;

 private:
  friend class WasmModule;

  const WasmModule* owner_ = nullptr;
  std::unique_ptr<Instance> instance_;  // interp tiers
  AotInstanceHandle aot_;               // aot tiers
};

// Post-start mutable instance state captured from a settled sandbox; paired
// with a memfd image of the linear memory, it lets later instantiations skip
// globals init, data segments and the start function (the snapshot tier).
// Per execution tier, only the matching members are populated.
struct InstantiationSeed {
  std::vector<Slot> globals;                    // interp tiers
  std::vector<Instance::TableEntry> table;      // interp tiers
  std::vector<uint8_t> aot_inst_block;          // aot tiers
};

class WasmModule {
 public:
  struct Config {
    Tier tier = Tier::kAot;
    BoundsStrategy strategy = BoundsStrategy::kVmGuard;
    uint32_t default_max_pages = 4096;
  };

  WasmModule() = default;
  WasmModule(WasmModule&&) noexcept = default;
  WasmModule& operator=(WasmModule&&) noexcept = default;

  static Result<WasmModule> load(const std::vector<uint8_t>& wasm_bytes,
                                 const Config& config,
                                 const HostRegistry& hosts =
                                     default_host_registry());

  // `recycled`, when valid, is a pooled linear memory (already reset() to
  // this module's spec) adopted instead of a fresh per-request mapping.
  Result<WasmSandbox> instantiate(LinearMemory recycled = LinearMemory()) const;

  // Snapshot capture/restore. capture_seed() reads the post-start mutable
  // state out of a settled sandbox; instantiate_seeded() builds a sandbox
  // from a memory whose contents already hold the post-start image (a COW
  // template mapping) plus that seed — no data segments, no start function.
  InstantiationSeed capture_seed(const WasmSandbox& sandbox) const;
  Result<WasmSandbox> instantiate_seeded(LinearMemory memory,
                                         const InstantiationSeed& seed) const;

  // What a sandbox of this module needs from a resource pool. min/max are 0
  // (and has_memory false) for modules that declare no linear memory.
  struct MemorySpec {
    bool has_memory = false;
    uint32_t min_pages = 0;
    uint32_t max_pages = 0;
    BoundsStrategy strategy = BoundsStrategy::kVmGuard;
  };
  MemorySpec memory_spec() const;

  const wasm::Module& module() const { return *module_; }
  const Config& config() const { return config_; }
  uint64_t load_ns() const { return load_ns_; }
  // AoT artifact size (-1 for interpreter tiers).
  int64_t native_object_size() const {
    return aot_ ? aot_->so_size_bytes() : -1;
  }

 private:
  friend class WasmSandbox;

  Config config_;
  const HostRegistry* hosts_ = nullptr;
  std::unique_ptr<wasm::Module> module_;
  std::unique_ptr<FastModule> fast_;    // kInterpFast
  std::unique_ptr<AotModule> aot_;      // kAotO0 / kAot
  uint64_t load_ns_ = 0;
};

}  // namespace sledge::engine
