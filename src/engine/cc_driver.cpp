#include "engine/cc_driver.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/clock.hpp"
#include "common/file_util.hpp"
#include "common/log.hpp"

namespace sledge::engine {

namespace {

const char* compiler_path() {
  const char* env = std::getenv("SLEDGE_CC");
  return env && env[0] ? env : "cc";
}

// fork+exec the compiler with stderr captured to `err_path`.
Status run_compiler(const std::vector<std::string>& argv,
                    const std::string& err_path) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) return Status::error("fork failed");
  if (pid == 0) {
    // Child: redirect stderr into the capture file.
    FILE* err = std::fopen(err_path.c_str(), "w");
    if (err) {
      ::dup2(fileno(err), 2);
      std::fclose(err);
    }
    ::execvp(cargv[0], cargv.data());
    _exit(127);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return Status::error("waitpid failed");
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::string diag;
    auto contents = read_file(err_path);
    if (contents.ok()) diag = contents.value().substr(0, 2000);
    return Status::error("compiler failed (exit " +
                         std::to_string(WIFEXITED(status)
                                            ? WEXITSTATUS(status)
                                            : -1) +
                         "): " + diag);
  }
  return Status::ok();
}

}  // namespace

bool cc_available() {
  static const bool available = [] {
    std::string path = compiler_path();
    if (path.find('/') != std::string::npos) {
      return ::access(path.c_str(), X_OK) == 0;
    }
    const char* env_path = std::getenv("PATH");
    if (!env_path) return false;
    std::string dirs(env_path);
    size_t start = 0;
    while (start <= dirs.size()) {
      size_t end = dirs.find(':', start);
      if (end == std::string::npos) end = dirs.size();
      std::string candidate = dirs.substr(start, end - start) + "/" + path;
      if (::access(candidate.c_str(), X_OK) == 0) return true;
      start = end + 1;
    }
    return false;
  }();
  return available;
}

Result<CcResult> compile_c_to_so(const std::string& c_source,
                                 const CcOptions& options) {
  auto dir = make_temp_dir("awsm");
  if (!dir.ok()) return Result<CcResult>::error(dir.error_message());

  CcResult result;
  result.work_dir = dir.value();
  std::string c_path = result.work_dir + "/module.c";
  std::string err_path = result.work_dir + "/cc.err";
  result.so_path = result.work_dir + "/module.so";

  Status s = write_file(c_path, c_source);
  if (!s.is_ok()) return Result<CcResult>::error(s.message());

  std::vector<std::string> argv = {
      compiler_path(),
      "-std=c99",
      options.opt_level == 0 ? "-O0" : ("-O" + std::to_string(options.opt_level)),
      "-fPIC",
      "-shared",
      // Loads/stores in generated code go through memcpy (alias-safe);
      // -fno-math-errno lets sqrt/floor/ceil inline to single instructions.
      "-fno-math-errno",
      "-w",
      "-o",
      result.so_path,
      c_path,
      "-lm",
  };

  Stopwatch sw;
  s = run_compiler(argv, err_path);
  if (!s.is_ok()) {
    if (!options.debug_keep) remove_work_dir(result);
    return Result<CcResult>::error(s.message());
  }
  result.compile_ns = sw.elapsed_ns();
  result.so_size = file_size(result.so_path);
  return Result<CcResult>(std::move(result));
}

void remove_work_dir(const CcResult& result) {
  if (result.work_dir.empty()) return;
  for (const char* name : {"/module.c", "/module.so", "/cc.err"}) {
    ::unlink((result.work_dir + name).c_str());
  }
  ::rmdir(result.work_dir.c_str());
}

}  // namespace sledge::engine
