#include "engine/predecode.hpp"

#include <string>

#include "engine/numeric.hpp"
#include "wasm/types.hpp"

namespace sledge::engine {

using wasm::Instr;
using wasm::Op;

namespace {

// Structure pass: for every block/loop/if pc, the pc of its matching `end`
// (and `else`, when present).
struct BlockMatch {
  uint32_t end_pc = 0;
  uint32_t else_pc = UINT32_MAX;
};

void match_blocks(const std::vector<Instr>& code,
                  std::vector<BlockMatch>* match) {
  match->assign(code.size(), BlockMatch{});
  std::vector<uint32_t> stack;
  for (uint32_t pc = 0; pc < code.size(); ++pc) {
    Op op = code[pc].op;
    if (op == Op::kBlock || op == Op::kLoop || op == Op::kIf) {
      stack.push_back(pc);
    } else if (op == Op::kElse) {
      (*match)[stack.back()].else_pc = pc;
    } else if (op == Op::kEnd) {
      if (!stack.empty()) {
        (*match)[stack.back()].end_pc = pc;
        stack.pop_back();
      }
      // The final end (function level) has an empty stack; nothing to match.
    }
  }
}

struct Frame {
  Op kind;
  uint32_t entry_height;
  uint8_t arity;
  uint32_t header_pc;
  bool unreachable = false;
};

class FuncPredecoder {
 public:
  FuncPredecoder(const wasm::Module& m, const wasm::FunctionBody& body,
                 std::vector<std::vector<BrTableEntry>>& pools)
      : m_(m), body_(body), pools_(pools) {}

  Result<FastFunc> run() {
    const std::vector<Instr>& code = body_.code;
    match_blocks(code, &match_);

    const wasm::FuncType& ft = m_.types[body_.type_index];
    out_.type_index = body_.type_index;
    out_.num_params = static_cast<uint32_t>(ft.params.size());
    out_.local_types = ft.params;
    out_.local_types.insert(out_.local_types.end(), body_.locals.begin(),
                            body_.locals.end());
    out_.num_locals = static_cast<uint32_t>(out_.local_types.size());

    frames_.push_back(
        Frame{Op::kBlock, 0, static_cast<uint8_t>(ft.results.empty() ? 0 : 1),
              UINT32_MAX});

    out_.code.reserve(code.size());
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
      const Instr& ins = code[pc];
      FastInstr fi;
      fi.op = ins.op;
      fi.a = ins.a;
      fi.b = ins.b;
      fi.imm = ins.imm;

      switch (ins.op) {
        case Op::kBlock:
        case Op::kLoop: {
          frames_.push_back(Frame{ins.op, h_,
                                  static_cast<uint8_t>(ins.block_type == 0x40 ? 0 : 1),
                                  pc, frames_.back().unreachable});
          break;
        }
        case Op::kIf: {
          adjust(-1);  // condition
          // False edge: enter after `else` when present, at `end` otherwise
          // (`end` executes as a nop and falls through).
          fi.target = match_[pc].else_pc != UINT32_MAX ? match_[pc].else_pc + 1
                                                       : match_[pc].end_pc;
          fi.unwind = h_;
          frames_.push_back(Frame{ins.op, h_,
                                  static_cast<uint8_t>(ins.block_type == 0x40 ? 0 : 1),
                                  pc, frames_.back().unreachable});
          break;
        }
        case Op::kElse: {
          // Executed only when the true arm falls through: jump to end,
          // carrying the block result (heights already correct, no unwind
          // actually trims anything in validated code).
          Frame& f = frames_.back();
          fi.target = match_[f.header_pc].end_pc;
          fi.unwind = f.entry_height;
          fi.carry = f.arity;
          f.unreachable = frames_[frames_.size() - 2].unreachable;
          h_ = f.entry_height;
          break;
        }
        case Op::kEnd: {
          Frame f = frames_.back();
          frames_.pop_back();
          if (frames_.empty()) {
            out_.code.push_back(fi);
            if (pc + 1 != code.size()) {
              return fail("trailing code after function end");
            }
            return Result<FastFunc>(std::move(out_));
          }
          h_ = f.entry_height + f.arity;
          if (h_ > out_.max_stack) out_.max_stack = h_;
          break;
        }

        case Op::kBr:
          resolve_branch(ins.a, &fi.target, &fi.unwind, &fi.carry);
          mark_unreachable();
          break;
        case Op::kBrIf:
          adjust(-1);
          resolve_branch(ins.a, &fi.target, &fi.unwind, &fi.carry);
          break;
        case Op::kBrTable: {
          adjust(-1);
          const std::vector<uint32_t>& targets = m_.br_tables[ins.b];
          std::vector<BrTableEntry> pool(targets.size());
          for (size_t j = 0; j < targets.size(); ++j) {
            resolve_branch(targets[j], &pool[j].target, &pool[j].unwind,
                           &pool[j].carry);
          }
          fi.b = static_cast<uint32_t>(pools_.size());
          pools_.push_back(std::move(pool));
          mark_unreachable();
          break;
        }
        case Op::kReturn:
        case Op::kUnreachable:
          mark_unreachable();
          break;

        case Op::kCall: {
          const wasm::FuncType& callee = m_.func_type(ins.a);
          adjust(-static_cast<int>(callee.params.size()) +
                 static_cast<int>(callee.results.size()));
          break;
        }
        case Op::kCallIndirect: {
          const wasm::FuncType& callee = m_.types[ins.a];
          adjust(-1 - static_cast<int>(callee.params.size()) +
                 static_cast<int>(callee.results.size()));
          break;
        }

        case Op::kDrop: adjust(-1); break;
        case Op::kSelect: adjust(-2); break;
        case Op::kLocalGet: adjust(+1); break;
        case Op::kLocalSet: adjust(-1); break;
        case Op::kLocalTee: break;
        case Op::kGlobalGet: adjust(+1); break;
        case Op::kGlobalSet: adjust(-1); break;
        case Op::kMemorySize: adjust(+1); break;
        case Op::kMemoryGrow: break;
        case Op::kI32Const:
        case Op::kI64Const:
        case Op::kF32Const:
        case Op::kF64Const: adjust(+1); break;
        case Op::kNop: break;

        default: {
          uint8_t b = static_cast<uint8_t>(ins.op);
          if (b >= 0x28 && b <= 0x35) {
            // load: pop address, push value — net zero
          } else if (b >= 0x36 && b <= 0x3E) {
            adjust(-2);
          } else if (numeric_arity(ins.op) == NumArity::kBinary) {
            adjust(-1);
          }
          break;
        }
      }
      out_.code.push_back(fi);
    }
    return fail("missing function end");
  }

 private:
  Result<FastFunc> fail(const std::string& msg) {
    return Result<FastFunc>::error("predecode: " + msg);
  }

  void adjust(int delta) {
    if (frames_.back().unreachable) return;
    h_ = static_cast<uint32_t>(static_cast<int>(h_) + delta);
    if (h_ > out_.max_stack) out_.max_stack = h_;
  }

  void mark_unreachable() {
    frames_.back().unreachable = true;
    h_ = frames_.back().entry_height;
  }

  void resolve_branch(uint32_t d, uint32_t* target, uint32_t* unwind,
                      uint8_t* carry) {
    const Frame& f = frames_[frames_.size() - 1 - d];
    if (d == frames_.size() - 1) {
      // Branch to the function label: behaves like return. Jump to the
      // final `end`.
      *target = static_cast<uint32_t>(body_.code.size()) - 1;
      *unwind = f.entry_height;
      *carry = f.arity;
      return;
    }
    if (f.kind == Op::kLoop) {
      *target = f.header_pc + 1;
      *unwind = f.entry_height;
      *carry = 0;
    } else {
      *target = match_[f.header_pc].end_pc;  // `end` is a nop; falls through
      *unwind = f.entry_height;
      *carry = f.arity;
    }
  }

  const wasm::Module& m_;
  const wasm::FunctionBody& body_;
  std::vector<std::vector<BrTableEntry>>& pools_;
  FastFunc out_;
  std::vector<BlockMatch> match_;
  std::vector<Frame> frames_;
  uint32_t h_ = 0;
};

}  // namespace

Result<FastModule> predecode(const wasm::Module& module) {
  FastModule fm;
  fm.module = &module;
  fm.funcs.reserve(module.functions.size());
  for (const wasm::FunctionBody& body : module.functions) {
    FuncPredecoder pd(module, body, fm.br_pools);
    Result<FastFunc> f = pd.run();
    if (!f.ok()) return Result<FastModule>::error(f.error_message());
    fm.funcs.push_back(f.take());
  }
  return Result<FastModule>(std::move(fm));
}

}  // namespace sledge::engine
