// Sandbox trap machinery.
//
// A trap is a fault the sandbox caused (out-of-bounds access, div/0, CFI
// violation, ...). Interpreters report traps through return codes; AoT
// native code reports them by calling into the runtime which unwinds with
// siglongjmp. The vm_guard bounds strategy additionally converts SIGSEGV
// faults that land inside a registered guard region into kOutOfBoundsMemory
// traps — this is the paper's "virtual memory based bounds management".
#pragma once

#include <csetjmp>
#include <cstdint>
#include <string>

namespace sledge::engine {

enum class TrapCode : int {
  kNone = 0,
  kUnreachable,
  kOutOfBoundsMemory,
  kDivByZero,
  kIntegerOverflow,
  kInvalidConversion,     // f->i truncation of NaN or out-of-range value
  kIndirectCallNull,      // table slot empty
  kIndirectCallType,      // CFI: signature mismatch
  kIndirectCallOob,       // table index out of range
  kCallStackExhausted,
  kHostError,
  kDeadlineExceeded,      // runtime killed the sandbox (CPU budget / deadline)
};

const char* trap_name(TrapCode code);

// Per-thread trap unwind target. Scope-based: constructing a TrapScope makes
// this thread's current sigsetjmp buffer available to raise_trap().
struct TrapFrame {
  sigjmp_buf env;
  TrapCode code = TrapCode::kNone;
  TrapFrame* prev = nullptr;
};

namespace trap_internal {
TrapFrame*& current_frame();
}

// Installs `frame` as the innermost trap handler for this thread.
// Usage:
//   TrapFrame frame;
//   if (sigsetjmp(frame.env, 1) == 0) {
//     TrapScope scope(&frame);
//     ... run sandboxed code ...
//   } else {
//     ... frame.code holds the trap ...
//   }
class TrapScope {
 public:
  explicit TrapScope(TrapFrame* frame) : frame_(frame) {
    frame->prev = trap_internal::current_frame();
    trap_internal::current_frame() = frame;
  }
  ~TrapScope() { trap_internal::current_frame() = frame_->prev; }
  TrapScope(const TrapScope&) = delete;
  TrapScope& operator=(const TrapScope&) = delete;

 private:
  TrapFrame* frame_;
};

// Unwinds to the innermost TrapScope on this thread. Aborts the process if
// no scope is active (a runtime bug, not a sandbox bug).
[[noreturn]] void raise_trap(TrapCode code);

// True when a TrapScope is active on this thread, i.e. raise_trap() would
// unwind instead of aborting. Schedulers use this to decide whether an
// asynchronous kill (deadline enforcement) can unwind the sandbox right now.
bool in_trap_scope();

// Swaps the thread's innermost trap frame chain for `frame`, returning the
// old chain. User-level schedulers call this when switching sandbox
// contexts: the trap chain lives on a sandbox's stack and must travel with
// it, not with the OS thread, or interleaved preemption corrupts it.
TrapFrame* exchange_trap_chain(TrapFrame* frame);

// Registers [base, base+len) as a guard region: SIGSEGV faults inside it are
// converted to kOutOfBoundsMemory traps. Returns a registration id.
int register_guard_region(const void* base, size_t len);
void unregister_guard_region(int id);

// Installs the process-wide SIGSEGV/SIGBUS handler (idempotent, thread-safe).
void install_trap_signal_handler();

// Installs a per-thread alternate signal stack so stack-overflow faults in
// sandboxes can still be handled. Call once on every sandbox-running thread.
void ensure_sigaltstack();

}  // namespace sledge::engine
