// Minimal HTTP/1.1 machinery for the Sledge listener and the procfaas
// baseline: an incremental request parser (byte stream in, request out —
// resilient to arbitrary TCP segmentation) and a response serializer.
// POST bodies are delimited by Content-Length; chunked encoding is not
// needed by either the paper's workloads or our load generator.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sledge::http {

struct Request {
  std::string method;
  std::string target;   // request path, e.g. "/fib"
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;  // keys lowercased
  std::vector<uint8_t> body;

  bool keep_alive() const {
    auto it = headers.find("connection");
    if (it != headers.end()) {
      if (it->second == "close") return false;
      if (it->second == "keep-alive") return true;
    }
    return version == "HTTP/1.1";  // 1.1 defaults to keep-alive
  }
};

// Push parser: feed() consumes bytes and returns how many were used; call
// done()/failed() after each feed. After done(), reset() prepares the parser
// for the next request on a kept-alive connection.
class RequestParser {
 public:
  // Returns the number of bytes consumed, or -1 on a malformed request.
  int feed(const uint8_t* data, size_t len);
  int feed(const char* data, size_t len) {
    return feed(reinterpret_cast<const uint8_t*>(data), len);
  }

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  const std::string& error() const { return error_; }

  Request& request() { return req_; }
  void reset();

  static constexpr size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

 private:
  enum class State { kHeaders, kBody, kDone, kError };

  int fail(const std::string& msg) {
    state_ = State::kError;
    error_ = msg;
    return -1;
  }
  bool parse_header_block();

  State state_ = State::kHeaders;
  std::string header_buf_;
  size_t body_expected_ = 0;
  Request req_;
  std::string error_;
};

// Serializes a response with Content-Length and Connection headers.
// `extra_headers` is a pre-formatted header block appended verbatim before
// the terminating blank line; each header must end with "\r\n"
// (e.g. "Retry-After: 1\r\n").
std::string serialize_response(int status, const std::string& reason,
                               const std::vector<uint8_t>& body,
                               bool keep_alive,
                               const std::string& content_type =
                                   "application/octet-stream",
                               const std::string& extra_headers = "");

std::string serialize_request(const std::string& method,
                              const std::string& target,
                              const std::vector<uint8_t>& body,
                              bool keep_alive,
                              const std::string& host = "localhost");

}  // namespace sledge::http
