// Minimal HTTP/1.1 machinery for the Sledge listener and the procfaas
// baseline: an incremental request parser (byte stream in, request out —
// resilient to arbitrary TCP segmentation) and a response serializer.
// POST bodies are delimited by Content-Length. `Transfer-Encoding:
// chunked` bodies are framed-and-discarded (the request is flagged so the
// server can answer 501 while keeping the connection in sync for the next
// pipelined request); any other transfer coding is a hard parse error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sledge::http {

struct Request {
  std::string method;
  std::string target;   // request path, e.g. "/fib"
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;  // keys lowercased
  std::vector<uint8_t> body;

  bool keep_alive() const {
    auto it = headers.find("connection");
    if (it != headers.end()) {
      if (it->second == "close") return false;
      if (it->second == "keep-alive") return true;
    }
    return version == "HTTP/1.1";  // 1.1 defaults to keep-alive
  }
};

// Push parser: feed() consumes bytes and returns how many were used; call
// done()/failed() after each feed. After done(), reset() prepares the parser
// for the next request on a kept-alive connection.
class RequestParser {
 public:
  // Returns the number of bytes consumed, or -1 on a malformed request.
  int feed(const uint8_t* data, size_t len);
  int feed(const char* data, size_t len) {
    return feed(reinterpret_cast<const uint8_t*>(data), len);
  }

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  const std::string& error() const { return error_; }

  // True once done() for a request that declared `Transfer-Encoding:
  // chunked`. The chunk framing has been consumed (body discarded) so the
  // byte stream is positioned at the next request boundary; the server
  // answers 501 Not Implemented and may keep the connection alive.
  bool chunked() const { return chunked_; }

  Request& request() { return req_; }
  void reset();

  static constexpr size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

 private:
  enum class State {
    kHeaders,
    kBody,
    kChunkSize,     // reading "<hex-size>[;ext]\r\n"
    kChunkData,     // discarding `chunk_left_` payload bytes
    kChunkDataEnd,  // consuming the CRLF that closes a chunk
    kChunkTrailer,  // trailer lines after the 0-size chunk, until CRLF CRLF
    kDone,
    kError,
  };

  int fail(const std::string& msg) {
    state_ = State::kError;
    error_ = msg;
    return -1;
  }
  bool parse_header_block();
  // Advances the chunked-framing state machine over data[0..len); returns
  // bytes consumed or -1 (malformed framing / body cap exceeded).
  int feed_chunked(const uint8_t* data, size_t len);

  State state_ = State::kHeaders;
  std::string header_buf_;
  size_t body_expected_ = 0;
  bool chunked_ = false;
  std::string chunk_line_;     // accumulating size/trailer line
  size_t chunk_left_ = 0;      // payload bytes left in the current chunk
  size_t chunked_consumed_ = 0;  // total framed bytes (kMaxBodyBytes cap)
  Request req_;
  std::string error_;
};

// Serializes just the status line + headers (terminated by the blank line)
// for a response whose body is `body_len` bytes. The body is sent
// separately (writev of header + body iovecs — no concatenation copy).
// `extra_headers` is a pre-formatted header block appended verbatim before
// the terminating blank line; each header must end with "\r\n"
// (e.g. "Retry-After: 1\r\n").
std::string serialize_response_header(int status, const std::string& reason,
                                      size_t body_len, bool keep_alive,
                                      const std::string& content_type =
                                          "application/octet-stream",
                                      const std::string& extra_headers = "");

// Serializes a full response (header + body in one string). Convenience
// wrapper over serialize_response_header for tests and non-hot paths.
std::string serialize_response(int status, const std::string& reason,
                               const std::vector<uint8_t>& body,
                               bool keep_alive,
                               const std::string& content_type =
                                   "application/octet-stream",
                               const std::string& extra_headers = "");

std::string serialize_request(const std::string& method,
                              const std::string& target,
                              const std::vector<uint8_t>& body,
                              bool keep_alive,
                              const std::string& host = "localhost");

}  // namespace sledge::http
