#include "http/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sledge::http {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

}  // namespace

void RequestParser::reset() {
  state_ = State::kHeaders;
  header_buf_.clear();
  body_expected_ = 0;
  req_ = Request{};
  error_.clear();
}

int RequestParser::feed(const uint8_t* data, size_t len) {
  size_t consumed = 0;

  if (state_ == State::kHeaders) {
    // Accumulate until the blank line; the terminator may straddle feeds.
    size_t take = std::min(len, kMaxHeaderBytes - header_buf_.size() + 4);
    header_buf_.append(reinterpret_cast<const char*>(data), take);
    size_t end = header_buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (header_buf_.size() >= kMaxHeaderBytes) {
        return fail("header block too large");
      }
      return static_cast<int>(take);
    }
    // Bytes of `data` actually belonging to the header block.
    size_t header_total = end + 4;
    size_t prev = header_buf_.size() - take;
    consumed = header_total - prev;
    header_buf_.resize(header_total);
    if (!parse_header_block()) return -1;

    auto it = req_.headers.find("content-length");
    if (it != req_.headers.end()) {
      char* endp = nullptr;
      unsigned long long v = std::strtoull(it->second.c_str(), &endp, 10);
      if (!endp || *endp != '\0') return fail("bad content-length");
      if (v > kMaxBodyBytes) return fail("body too large");
      body_expected_ = static_cast<size_t>(v);
    }
    if (body_expected_ == 0) {
      state_ = State::kDone;
      return static_cast<int>(consumed);
    }
    req_.body.reserve(body_expected_);
    state_ = State::kBody;
    data += consumed;
    len -= consumed;
  }

  if (state_ == State::kBody) {
    size_t need = body_expected_ - req_.body.size();
    size_t take = std::min(len, need);
    req_.body.insert(req_.body.end(), data, data + take);
    consumed += take;
    if (req_.body.size() == body_expected_) state_ = State::kDone;
  }

  return static_cast<int>(consumed);
}

bool RequestParser::parse_header_block() {
  size_t pos = 0;
  size_t line_end = header_buf_.find("\r\n", pos);
  if (line_end == std::string::npos) {
    fail("missing request line");
    return false;
  }
  std::string line = header_buf_.substr(pos, line_end - pos);
  pos = line_end + 2;

  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    fail("malformed request line");
    return false;
  }
  req_.method = line.substr(0, sp1);
  req_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req_.version = line.substr(sp2 + 1);
  if (req_.method.empty() || req_.target.empty() ||
      req_.version.rfind("HTTP/", 0) != 0) {
    fail("malformed request line");
    return false;
  }

  while (pos + 2 <= header_buf_.size()) {
    line_end = header_buf_.find("\r\n", pos);
    if (line_end == std::string::npos || line_end == pos) break;
    std::string header = header_buf_.substr(pos, line_end - pos);
    pos = line_end + 2;
    size_t colon = header.find(':');
    if (colon == std::string::npos) {
      fail("malformed header line");
      return false;
    }
    std::string key = to_lower(trim(header.substr(0, colon)));
    std::string value = trim(header.substr(colon + 1));
    if (key.empty()) {
      fail("empty header name");
      return false;
    }
    req_.headers[key] = value;
  }
  return true;
}

std::string serialize_response(int status, const std::string& reason,
                               const std::vector<uint8_t>& body,
                               bool keep_alive,
                               const std::string& content_type,
                               const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: " +
                    (keep_alive ? "keep-alive" : "close") + "\r\n" +
                    extra_headers + "\r\n";
  out.append(reinterpret_cast<const char*>(body.data()), body.size());
  return out;
}

std::string serialize_request(const std::string& method,
                              const std::string& target,
                              const std::vector<uint8_t>& body,
                              bool keep_alive, const std::string& host) {
  std::string out = method + " " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: " +
                    (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  out.append(reinterpret_cast<const char*>(body.data()), body.size());
  return out;
}

}  // namespace sledge::http
