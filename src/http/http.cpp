#include "http/http.hpp"

#include <algorithm>
#include <cctype>

namespace sledge::http {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

// Strict Content-Length: non-empty, every byte a digit (no sign, no
// whitespace, no trailing junk), no overflow. strtoull was too lax — it
// accepted "", "  5", "+5" and "-1" (the latter wrapping past any cap).
bool parse_content_length(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void RequestParser::reset() {
  state_ = State::kHeaders;
  header_buf_.clear();
  body_expected_ = 0;
  chunked_ = false;
  chunk_line_.clear();
  chunk_left_ = 0;
  chunked_consumed_ = 0;
  req_ = Request{};
  error_.clear();
}

int RequestParser::feed(const uint8_t* data, size_t len) {
  size_t consumed = 0;

  if (state_ == State::kHeaders) {
    // Accumulate until the blank line; the terminator may straddle feeds.
    size_t take = std::min(len, kMaxHeaderBytes - header_buf_.size() + 4);
    header_buf_.append(reinterpret_cast<const char*>(data), take);
    size_t end = header_buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (header_buf_.size() >= kMaxHeaderBytes) {
        return fail("header block too large");
      }
      return static_cast<int>(take);
    }
    // Bytes of `data` actually belonging to the header block.
    size_t header_total = end + 4;
    size_t prev = header_buf_.size() - take;
    consumed = header_total - prev;
    header_buf_.resize(header_total);
    if (!parse_header_block()) return -1;

    auto te = req_.headers.find("transfer-encoding");
    if (te != req_.headers.end()) {
      std::string coding = to_lower(trim(te->second));
      if (coding == "chunked") {
        // Framed-and-discarded: walk the chunk framing to find the request
        // boundary so pipelined successors stay parseable, but keep no
        // body. Content-Length, if also present, is ignored (RFC 7230:
        // Transfer-Encoding wins; honoring both is a smuggling vector).
        chunked_ = true;
        state_ = State::kChunkSize;
        int used = feed_chunked(data + consumed, len - consumed);
        if (used < 0) return -1;
        return static_cast<int>(consumed) + used;
      }
      if (coding != "identity") {
        return fail("unsupported transfer-encoding: " + coding);
      }
    }

    auto it = req_.headers.find("content-length");
    if (it != req_.headers.end()) {
      uint64_t v = 0;
      if (!parse_content_length(it->second, &v)) {
        return fail("bad content-length");
      }
      if (v > kMaxBodyBytes) return fail("body too large");
      body_expected_ = static_cast<size_t>(v);
    }
    if (body_expected_ == 0) {
      state_ = State::kDone;
      return static_cast<int>(consumed);
    }
    req_.body.reserve(body_expected_);
    state_ = State::kBody;
    data += consumed;
    len -= consumed;
  }

  if (state_ == State::kBody) {
    size_t need = body_expected_ - req_.body.size();
    size_t take = std::min(len, need);
    req_.body.insert(req_.body.end(), data, data + take);
    consumed += take;
    if (req_.body.size() == body_expected_) state_ = State::kDone;
    return static_cast<int>(consumed);
  }

  if (state_ == State::kChunkSize || state_ == State::kChunkData ||
      state_ == State::kChunkDataEnd || state_ == State::kChunkTrailer) {
    int used = feed_chunked(data, len);
    if (used < 0) return -1;
    return static_cast<int>(consumed) + used;
  }

  return static_cast<int>(consumed);
}

int RequestParser::feed_chunked(const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    if (chunked_consumed_ > kMaxBodyBytes) {
      return fail("chunked body too large");
    }
    switch (state_) {
      case State::kChunkSize: {
        char c = static_cast<char>(data[off++]);
        ++chunked_consumed_;
        if (c == '\n') {
          // Line complete (tolerate a bare LF; strip the CR if present).
          if (!chunk_line_.empty() && chunk_line_.back() == '\r') {
            chunk_line_.pop_back();
          }
          size_t semi = chunk_line_.find(';');  // drop chunk extensions
          std::string digits = trim(chunk_line_.substr(0, semi));
          chunk_line_.clear();
          if (digits.empty()) return fail("empty chunk size");
          uint64_t size = 0;
          for (char d : digits) {
            int h = hex_digit(d);
            if (h < 0) return fail("bad chunk size");
            if (size > (UINT64_MAX - static_cast<uint64_t>(h)) / 16) {
              return fail("chunk size overflow");
            }
            size = size * 16 + static_cast<uint64_t>(h);
          }
          if (size > kMaxBodyBytes) return fail("chunked body too large");
          if (size == 0) {
            state_ = State::kChunkTrailer;
          } else {
            chunk_left_ = static_cast<size_t>(size);
            state_ = State::kChunkData;
          }
        } else {
          chunk_line_.push_back(c);
          if (chunk_line_.size() > 128) return fail("chunk size line too long");
        }
        break;
      }
      case State::kChunkData: {
        size_t take = std::min(len - off, chunk_left_);
        off += take;  // payload is discarded, not stored
        chunked_consumed_ += take;
        chunk_left_ -= take;
        if (chunk_left_ == 0) state_ = State::kChunkDataEnd;
        break;
      }
      case State::kChunkDataEnd: {
        // The CRLF closing the chunk payload. Accept CR then LF; a bare LF
        // also terminates (same tolerance as the size line).
        char c = static_cast<char>(data[off++]);
        ++chunked_consumed_;
        if (c == '\r') break;  // stay: LF must follow
        if (c == '\n') {
          state_ = State::kChunkSize;
          break;
        }
        return fail("bad chunk terminator");
      }
      case State::kChunkTrailer: {
        char c = static_cast<char>(data[off++]);
        ++chunked_consumed_;
        if (c == '\n') {
          if (!chunk_line_.empty() && chunk_line_.back() == '\r') {
            chunk_line_.pop_back();
          }
          bool blank = chunk_line_.empty();
          chunk_line_.clear();
          if (blank) {
            state_ = State::kDone;  // end of trailers = end of request
            return static_cast<int>(off);
          }
        } else {
          chunk_line_.push_back(c);
          if (chunk_line_.size() > kMaxHeaderBytes) {
            return fail("chunk trailer too long");
          }
        }
        break;
      }
      default:
        return static_cast<int>(off);
    }
  }
  return static_cast<int>(off);
}

bool RequestParser::parse_header_block() {
  size_t pos = 0;
  size_t line_end = header_buf_.find("\r\n", pos);
  if (line_end == std::string::npos) {
    fail("missing request line");
    return false;
  }
  std::string line = header_buf_.substr(pos, line_end - pos);
  pos = line_end + 2;

  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    fail("malformed request line");
    return false;
  }
  req_.method = line.substr(0, sp1);
  req_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req_.version = line.substr(sp2 + 1);
  if (req_.method.empty() || req_.target.empty() ||
      req_.version.rfind("HTTP/", 0) != 0) {
    fail("malformed request line");
    return false;
  }

  while (pos + 2 <= header_buf_.size()) {
    line_end = header_buf_.find("\r\n", pos);
    if (line_end == std::string::npos || line_end == pos) break;
    std::string header = header_buf_.substr(pos, line_end - pos);
    pos = line_end + 2;
    size_t colon = header.find(':');
    if (colon == std::string::npos) {
      fail("malformed header line");
      return false;
    }
    std::string key = to_lower(trim(header.substr(0, colon)));
    std::string value = trim(header.substr(colon + 1));
    if (key.empty()) {
      fail("empty header name");
      return false;
    }
    if (key == "content-length") {
      // Duplicate Content-Length headers with distinct values are a request
      // smuggling vector; the old map insert silently kept the last one.
      auto prev = req_.headers.find(key);
      if (prev != req_.headers.end() && prev->second != value) {
        fail("conflicting content-length headers");
        return false;
      }
    }
    req_.headers[key] = value;
  }
  return true;
}

std::string serialize_response_header(int status, const std::string& reason,
                                      size_t body_len, bool keep_alive,
                                      const std::string& content_type,
                                      const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body_len) +
                    "\r\nConnection: " +
                    (keep_alive ? "keep-alive" : "close") + "\r\n" +
                    extra_headers + "\r\n";
  return out;
}

std::string serialize_response(int status, const std::string& reason,
                               const std::vector<uint8_t>& body,
                               bool keep_alive,
                               const std::string& content_type,
                               const std::string& extra_headers) {
  std::string out = serialize_response_header(status, reason, body.size(),
                                              keep_alive, content_type,
                                              extra_headers);
  if (!body.empty()) {
    out.append(reinterpret_cast<const char*>(body.data()), body.size());
  }
  return out;
}

std::string serialize_request(const std::string& method,
                              const std::string& target,
                              const std::vector<uint8_t>& body,
                              bool keep_alive, const std::string& host) {
  std::string out = method + " " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: " +
                    (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  out.append(reinterpret_cast<const char*>(body.data()), body.size());
  return out;
}

}  // namespace sledge::http
