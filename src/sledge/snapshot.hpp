// Snapshot/COW instantiation (the Lumos-style template tier) plus the
// warm-pool autoscaler that pre-builds snapshot-backed sandboxes.
//
// After a module's first successful instantiation (start function run,
// globals and data segments settled), the post-start linear memory image is
// written into a sealed per-module memfd and the mutable instance state
// (globals, indirect-call table / AoT instance block) captured as an
// InstantiationSeed. Subsequent instantiations mmap(MAP_PRIVATE) the memfd
// over a pooled reservation, so the initial image materializes page-by-page
// copy-on-write — no zeroing, no data-segment copies, no start function.
//
// Tenant isolation: every instance gets a *private* mapping (writes never
// reach the template), templates are keyed by WasmModule* and never shared
// across modules, and LinearMemory::recycle() replaces a template-backed
// prefix with fresh anonymous pages before the region re-enters the pool —
// so the pool's zero-on-reuse contract is preserved (see memory.cpp).
//
// Latency: the template mmap is paid at *release* time, not create time —
// a retiring sandbox's region is remapped to the pristine view and parked
// on its template (stash_memory/adopt_memory), so the next snapshot
// instantiation is syscall-free. See DESIGN.md §14.
//
// On top, WarmPool + ArrivalRateEstimator + warm_pool_target() implement
// per-module warm-pool autoscaling: a background replenisher (Runtime)
// sizes each pool from the observed arrival rate over a sliding window
// (the SlackPredictor ring idiom from admission.hpp), pre-builds
// snapshot-backed sandboxes, and decays idle modules back to zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/engine.hpp"
#include "sledge/sandbox.hpp"

namespace sledge::runtime {

// A built template: sealed memfd holding the post-start memory image plus
// the captured mutable instance state. Immutable after construction; shared
// read-only between the listener, workers and the replenisher.
struct SnapshotTemplate {
  int fd = -1;                  // sealed memfd (SEAL_SHRINK|GROW|WRITE)
  uint64_t content_bytes = 0;   // image size (page multiple, >= min_pages)
  uint32_t max_pages = 0;       // growth ceiling at capture time
  engine::InstantiationSeed seed;
  // Template-backed regions parked by departing tenants (pristine view
  // restored at stash time); adopt_memory() pops one with zero syscalls.
  // Guarded by the registry mutex.
  std::vector<engine::LinearMemory> spares;

  ~SnapshotTemplate();
  SnapshotTemplate() = default;
  SnapshotTemplate(const SnapshotTemplate&) = delete;
  SnapshotTemplate& operator=(const SnapshotTemplate&) = delete;
};

// Process-wide template registry, keyed by module identity. Templates build
// lazily (one cold instantiation + one memfd write, under the registry
// mutex so concurrent first requests build exactly once) and persist until
// the module is invalidated (unload/reload) or the registry is cleared.
class SnapshotRegistry {
 public:
  struct Counters {
    uint64_t hits = 0;            // snapshot-backed instantiations served
    uint64_t misses = 0;          // snapshot requested, fell back to pooled
    uint64_t builds = 0;          // templates built
    uint64_t build_failures = 0;  // build attempts that failed (memfd, ...)
  };

  static SnapshotRegistry& instance();

  // Returns the module's template, building it on first call. nullptr when
  // the module declares no linear memory, memfd_create fails, or a previous
  // build failed (failures are remembered; no per-request rebuild storm).
  // The pointer stays valid until invalidate(module) or clear().
  const SnapshotTemplate* get_or_build(const engine::WasmModule* module);

  // Drops the module's template (module reload path: the image would be
  // stale) and forgets any remembered build failure. Safe to call with no
  // template present.
  void invalidate(const engine::WasmModule* module);

  // Drops every template (tests; process teardown is fine without it).
  void clear();

  // Release-time recycling of template-backed regions: stash_memory()
  // restores the pristine template view (the mmap is paid here, off the
  // instantiation path) and parks the region on the module's template;
  // adopt_memory() pops one ready to seed — no syscalls on the create
  // path. stash returns false (region untouched — release it to the
  // resource pool instead) when the template was invalidated, the spare
  // cache is full, or the remap failed.
  engine::LinearMemory adopt_memory(const engine::WasmModule* module);
  bool stash_memory(const engine::WasmModule* module,
                    engine::LinearMemory* memory);

  Counters counters() const;
  void reset_counters();

  // Instantiation-path accounting (called from Sandbox::create).
  void note_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void note_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  // Test-only fault injection: when set and returning true, memfd creation
  // fails as if the kernel lacked memfd_create — the graceful-degrade path.
  using MemfdFaultHook = bool (*)();
  static void set_memfd_fault_hook(MemfdFaultHook hook);

 private:
  SnapshotRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<const engine::WasmModule*,
                     std::unique_ptr<SnapshotTemplate>>
      templates_;
  std::unordered_set<const engine::WasmModule*> failed_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> builds_{0};
  std::atomic<uint64_t> build_failures_{0};
};

// Sliding-window arrival-rate estimator: a lock-free ring of the last
// kWindow arrival timestamps (the SlackPredictor ring idiom — single
// conceptual writer per module via the listener/broker, racy reads
// tolerated because the output only sizes a warm pool).
class ArrivalRateEstimator {
 public:
  static constexpr int kWindow = 64;

  void note_arrival(uint64_t now_ns) {
    uint64_t ticket = count_.fetch_add(1, std::memory_order_relaxed);
    stamps_[ticket % kWindow].store(now_ns, std::memory_order_relaxed);
    last_.store(now_ns, std::memory_order_release);
  }

  // Arrivals per second over the window ending at `now_ns`; 0 until two
  // arrivals have been observed.
  double rate_per_sec(uint64_t now_ns) const {
    uint64_t c = count_.load(std::memory_order_acquire);
    if (c < 2) return 0.0;
    uint64_t n = c < kWindow ? c : kWindow;
    // After c arrivals, slot c % kWindow holds the oldest retained stamp
    // (arrival c - kWindow); below a full window the oldest is slot 0.
    uint64_t oldest =
        stamps_[c >= kWindow ? c % kWindow : 0].load(std::memory_order_relaxed);
    if (now_ns <= oldest) return 0.0;
    return static_cast<double>(n) /
           (static_cast<double>(now_ns - oldest) / 1e9);
  }

  // Monotonic timestamp of the most recent arrival (0 = never).
  uint64_t last_arrival_ns() const {
    return last_.load(std::memory_order_acquire);
  }

  uint64_t total() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> stamps_[kWindow] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> last_{0};
};

// Autoscaler policy knobs (RuntimeConfig::warm_pool).
struct WarmPoolConfig {
  bool enabled = true;
  // Hard per-module cap on pre-built sandboxes.
  int max_per_module = 8;
  // Replenisher pass period; also the coverage horizon the target sizes
  // for (arrivals expected before the next pass).
  uint64_t replenish_interval_us = 2000;
  // Over-provisioning factor on the expected arrivals per interval.
  double headroom = 1.5;
  // A module with no arrival for this long decays to a target of zero
  // (its pre-built sandboxes are dropped back to the resource pool).
  uint64_t idle_decay_us = 2'000'000;
};

// Pure autoscaler policy: pre-build enough sandboxes to cover the arrivals
// expected in one replenish interval (rate × interval × headroom, rounded
// up), clamped to [0, max_per_module]; idle modules decay to zero. Split
// out so the schedule math is unit-testable without threads.
int warm_pool_target(double rate_per_sec, uint64_t idle_ns,
                     const WarmPoolConfig& config);

// Per-module stash of pre-built, never-dispatched snapshot-backed
// sandboxes. pop() is the admission fast path (listener / invoke broker);
// push() is the replenisher. target is written by the replenisher only.
class WarmPool {
 public:
  std::unique_ptr<Sandbox> pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return nullptr;
    std::unique_ptr<Sandbox> sb = std::move(ready_.back());
    ready_.pop_back();
    hits_.fetch_add(1, std::memory_order_relaxed);
    return sb;
  }

  // False (sandbox dropped by the caller) once the pool is at its target —
  // covers the race where the target decayed mid-build.
  bool push(std::unique_ptr<Sandbox> sb) {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(ready_.size()) >= target()) return false;
    ready_.push_back(std::move(sb));
    refills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void clear() {
    std::vector<std::unique_ptr<Sandbox>> drop;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drop.swap(ready_);
    }
    // Sandboxes destruct outside the lock (they release pooled resources).
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ready_.size();
  }

  void set_target(int t) { target_.store(t, std::memory_order_release); }
  int target() const { return target_.load(std::memory_order_acquire); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t refills() const {
    return refills_.load(std::memory_order_relaxed);
  }

  ArrivalRateEstimator arrivals;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Sandbox>> ready_;
  std::atomic<int> target_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> refills_{0};
};

}  // namespace sledge::runtime
