// SandboxResourcePool: warm reuse of the three per-request resources the
// paper's "optimized function startup" allocates — linear memory, a guarded
// execution stack, and a ucontext (§4).
//
// The cold path pays, per request: one mmap (a multi-GiB PROT_NONE
// reservation under vm_guard), an mprotect commit, a guard-region
// registration, a second mmap+mprotect for the stack, and another guard
// registration. The pool converts all of that into a free-list pop:
//
//   * Linear memories are bucketed by (bounds strategy, reservation size),
//     since a recycled region can serve any module whose growth ceiling
//     fits the existing reservation. Under vm_guard every module shares one
//     bucket (the reservation is always 4 GiB + slack). On release the
//     region is decommitted and madvise(MADV_DONTNEED)'d, so the kernel
//     guarantees zero-filled pages on reuse — cross-tenant isolation does
//     not depend on trusting the previous occupant.
//   * Execution stacks keep their mapping, guard page, and guard-region
//     registration alive between requests; the ucontext storage rides along
//     (it is re-initialized by getcontext/makecontext per request). Stacks
//     are NOT zeroed: the split-stack design means sandboxed loads/stores
//     cannot address the C stack, so stale contents are unreachable.
//
// Structure: each acquiring thread keeps a small free list (fast, no
// locks; sized by per_thread_cap) and overflows into a bounded global pool
// (mutex; sized by global_cap, the reclaim watermark — resources beyond it
// are released to the OS). Release-only threads skip the local list so
// resources flow back to the acquirers: in the server, workers release into
// the global pool and the listener acquires from it; in the inline/bench
// path one thread hits its own lock-free list.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/memory.hpp"

namespace sledge::runtime {

// A pooled execution stack: mmap'd region whose first guard_size bytes are
// PROT_NONE, registered with the engine's guard-region table so overflow
// faults become traps, plus reusable ucontext storage.
struct ExecStack {
  uint8_t* base = nullptr;  // whole mapping, guard page first
  size_t size = 0;          // total mapping size, guard included
  size_t guard_size = 0;
  int guard_id = -1;
  ucontext_t ctx;
};

class SandboxResourcePool {
 public:
  struct Config {
    bool enabled = true;
    // Free-list entries kept per thread before overflowing to the global
    // pool (applies independently to memories and stacks).
    int per_thread_cap = 8;
    // Reclaim watermark: global entries beyond this are released to the OS.
    int global_cap = 64;
  };

  struct Counters {
    uint64_t memory_hits = 0;    // acquires served from a free list
    uint64_t memory_misses = 0;  // acquires that fell back to create()
    uint64_t stack_hits = 0;
    uint64_t stack_misses = 0;
    uint64_t released = 0;  // resources dropped at the reclaim watermark
  };

  // Process-wide pool (sandbox creation is a static path; tests and benches
  // reconfigure it). Never destructed, so thread-local cache flushes at
  // thread exit are always safe.
  static SandboxResourcePool& instance();

  void configure(const Config& config);
  Config config() const;

  // Pops a region matching (strategy, reservation-for-max_pages) and
  // reset()s it to the requested spec; falls back to LinearMemory::create
  // on a miss. `from_pool`, when non-null, reports which path was taken.
  engine::LinearMemory acquire_memory(engine::BoundsStrategy strategy,
                                      uint32_t min_pages, uint32_t max_pages,
                                      bool* from_pool = nullptr);
  // Recycles (zero + decommit) and pools `mem`; releases it to the OS when
  // the pool is disabled, recycling fails, or caps are hit.
  void release_memory(engine::LinearMemory mem);

  // Pops a pooled stack of exactly (stack_size, guard_size), or maps and
  // registers a fresh one. Returns nullptr only on mmap failure.
  ExecStack* acquire_stack(size_t stack_size, size_t guard_size,
                           bool* from_pool = nullptr);
  void release_stack(ExecStack* stack);

  Counters counters() const;
  void reset_counters();

  // Drops the global free lists and (for the calling thread) the local
  // ones. Other threads' caches drain when those threads exit. Used by
  // tests and the pooled-vs-cold ablation.
  void purge();

  // Internal (thread-exit flush path): push straight to the global pool,
  // bypassing the thread-local list. False when the watermark is hit.
  bool pool_memory_global(engine::LinearMemory* mem);
  bool pool_stack_global(ExecStack* stack);

 private:
  SandboxResourcePool() = default;

  struct MemBucket {
    engine::BoundsStrategy strategy;
    uint64_t reserved_bytes;
    std::vector<engine::LinearMemory> free;
  };

  // Knobs are atomics so the hot acquire/release paths can check them
  // without taking the global mutex (thread-local hits never lock).
  std::atomic<bool> enabled_{true};
  std::atomic<int> per_thread_cap_{8};
  std::atomic<int> global_cap_{64};

  std::atomic<uint64_t> memory_hits_{0};
  std::atomic<uint64_t> memory_misses_{0};
  std::atomic<uint64_t> stack_hits_{0};
  std::atomic<uint64_t> stack_misses_{0};
  std::atomic<uint64_t> released_{0};

  mutable std::mutex mu_;
  std::vector<MemBucket> mem_buckets_;
  std::vector<ExecStack*> stacks_;
};

}  // namespace sledge::runtime
