// SandboxResourcePool: warm reuse of the three per-request resources the
// paper's "optimized function startup" allocates — linear memory, a guarded
// execution stack, and a ucontext (§4).
//
// The cold path pays, per request: one mmap (a multi-GiB PROT_NONE
// reservation under vm_guard), an mprotect commit, a guard-region
// registration, a second mmap+mprotect for the stack, and another guard
// registration. The pool converts all of that into a free-list pop:
//
//   * Linear memories are bucketed by (bounds strategy, reservation size),
//     since a recycled region can serve any module whose growth ceiling
//     fits the existing reservation. Under vm_guard every module shares one
//     bucket (the reservation is always 4 GiB + slack). On release the
//     region is decommitted and madvise(MADV_DONTNEED)'d, so the kernel
//     guarantees zero-filled pages on reuse — cross-tenant isolation does
//     not depend on trusting the previous occupant.
//   * Execution stacks keep their mapping, guard page, and guard-region
//     registration alive between requests; the ucontext storage rides along
//     (it is re-initialized by getcontext/makecontext per request). Stacks
//     are NOT zeroed: the split-stack design means sandboxed loads/stores
//     cannot address the C stack, so stale contents are unreachable.
//
// Structure: each acquiring thread keeps a small free list (fast, no
// locks; sized by per_thread_cap) and overflows into a bounded global pool
// (mutex; sized by global_cap, the reclaim watermark — resources beyond it
// are released to the OS). Release-only threads skip the local list so
// resources flow back to the acquirers: in the server, workers release into
// the global pool and the listener acquires from it; in the inline/bench
// path one thread hits its own lock-free list.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/memory.hpp"

namespace sledge::runtime {

// A pooled execution stack: mmap'd region whose first guard_size bytes are
// PROT_NONE, registered with the engine's guard-region table so overflow
// faults become traps, plus reusable ucontext storage.
struct ExecStack {
  uint8_t* base = nullptr;  // whole mapping, guard page first
  size_t size = 0;          // total mapping size, guard included
  size_t guard_size = 0;
  int guard_id = -1;
  ucontext_t ctx;
};

// A reusable payload carrier for the zero-copy invoke dataplane: the parent
// writes its request at [0, len), the child reads it through its
// MemView-checked hostcalls and appends its response after the request
// region — neither payload ever transits a per-request heap vector.
// Buffers are bucketed by power-of-two capacity and, like pooled linear
// memories, zeroed when the tenant key changes between uses so one chain's
// payload can never leak into another tenant's buffer.
struct TransferBuffer {
  uint8_t* data = nullptr;
  size_t cap = 0;
  size_t len = 0;       // valid request bytes (written by the parent)
  uint64_t tenant = 0;  // key of the last (parent, child) pair served
};

// RAII loan of a TransferBuffer: whichever holder drops the last reference
// (parent hostcall frame, InvokeJoin, child sandbox — any of which may be
// killed or abandoned first) returns the buffer to the pool exactly once.
class TransferLoan {
 public:
  explicit TransferLoan(TransferBuffer* tb) : tb_(tb) {}
  ~TransferLoan();
  TransferLoan(const TransferLoan&) = delete;
  TransferLoan& operator=(const TransferLoan&) = delete;
  TransferBuffer* get() const { return tb_; }

 private:
  TransferBuffer* tb_;
};

class SandboxResourcePool {
 public:
  struct Config {
    bool enabled = true;
    // Free-list entries kept per thread before overflowing to the global
    // pool (applies independently to memories and stacks).
    int per_thread_cap = 8;
    // Reclaim watermark: global entries beyond this are released to the OS.
    int global_cap = 64;
  };

  struct Counters {
    uint64_t memory_hits = 0;    // acquires served from a free list
    uint64_t memory_misses = 0;  // acquires that fell back to create()
    uint64_t stack_hits = 0;
    uint64_t stack_misses = 0;
    uint64_t released = 0;  // resources dropped at the reclaim watermark
    uint64_t transfer_hits = 0;
    uint64_t transfer_misses = 0;
    uint64_t transfer_outstanding = 0;  // loans not yet returned (leak probe)
  };

  // Process-wide pool (sandbox creation is a static path; tests and benches
  // reconfigure it). Never destructed, so thread-local cache flushes at
  // thread exit are always safe.
  static SandboxResourcePool& instance();

  void configure(const Config& config);
  Config config() const;

  // Pops a region matching (strategy, reservation-for-max_pages) and
  // reset()s it to the requested spec; falls back to LinearMemory::create
  // on a miss. `from_pool`, when non-null, reports which path was taken.
  engine::LinearMemory acquire_memory(engine::BoundsStrategy strategy,
                                      uint32_t min_pages, uint32_t max_pages,
                                      bool* from_pool = nullptr);
  // Recycles (zero + decommit) and pools `mem`; releases it to the OS when
  // the pool is disabled, recycling fails, or caps are hit.
  void release_memory(engine::LinearMemory mem);

  // Pops a pooled stack of exactly (stack_size, guard_size), or maps and
  // registers a fresh one. Returns nullptr only on mmap failure.
  ExecStack* acquire_stack(size_t stack_size, size_t guard_size,
                           bool* from_pool = nullptr);
  void release_stack(ExecStack* stack);

  // Pops a transfer buffer with cap >= min_cap (power-of-two bucketed,
  // floor 4 KiB). A pooled buffer whose last tenant differs from `tenant`
  // is zeroed before handout; fresh buffers start zeroed. Returns nullptr
  // only on allocation failure (callers fall back to the copy dataplane).
  TransferBuffer* acquire_transfer(size_t min_cap, uint64_t tenant,
                                   bool* from_pool = nullptr);
  void release_transfer(TransferBuffer* tb);

  Counters counters() const;
  void reset_counters();

  // Drops the global free lists and (for the calling thread) the local
  // ones. Other threads' caches drain when those threads exit. Used by
  // tests and the pooled-vs-cold ablation.
  void purge();

  // Internal (thread-exit flush path): push straight to the global pool,
  // bypassing the thread-local list. False when the watermark is hit.
  bool pool_memory_global(engine::LinearMemory* mem);
  bool pool_stack_global(ExecStack* stack);
  bool pool_transfer_global(TransferBuffer* tb);

 private:
  SandboxResourcePool() = default;

  struct MemBucket {
    engine::BoundsStrategy strategy;
    uint64_t reserved_bytes;
    std::vector<engine::LinearMemory> free;
  };

  // Knobs are atomics so the hot acquire/release paths can check them
  // without taking the global mutex (thread-local hits never lock).
  std::atomic<bool> enabled_{true};
  std::atomic<int> per_thread_cap_{8};
  std::atomic<int> global_cap_{64};

  std::atomic<uint64_t> memory_hits_{0};
  std::atomic<uint64_t> memory_misses_{0};
  std::atomic<uint64_t> stack_hits_{0};
  std::atomic<uint64_t> stack_misses_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> transfer_hits_{0};
  std::atomic<uint64_t> transfer_misses_{0};
  std::atomic<uint64_t> transfer_outstanding_{0};

  mutable std::mutex mu_;
  std::vector<MemBucket> mem_buckets_;
  std::vector<ExecStack*> stacks_;
  // Transfer buffers: one free list per power-of-two capacity. Acquiring
  // threads (workers running sb_invoke parents) front this with a
  // thread-local tier — with locality-hinted placement the same worker
  // usually releases and re-acquires a buffer, so the hot chain path never
  // takes this mutex. Cross-worker releases overflow here.
  struct TransferBucket {
    size_t cap;
    std::vector<TransferBuffer*> free;
  };
  std::vector<TransferBucket> transfer_buckets_;
};

}  // namespace sledge::runtime
