#include "sledge/io_loop.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace sledge::runtime {

IoLoop::~IoLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
}

Status IoLoop::init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::error("io_loop: epoll_create1 failed");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) return Status::error("io_loop: eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    return Status::error("io_loop: epoll_ctl(eventfd) failed");
  }
  return Status::ok();
}

void IoLoop::notify() {
  if (event_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void IoLoop::push_timer(uint64_t when_ns, Sandbox* sb, uint64_t seq,
                        bool is_deadline) {
  timers_.push_back(TimerEntry{when_ns, sb, seq, is_deadline});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
}

void IoLoop::add_blocked(Sandbox* sb) {
  Blocked entry;
  entry.seq = next_seq_++;
  entry.kind = sb->wake_kind();

  // Every blocked sandbox with a wall deadline gets a kill timer: deadline
  // enforcement (PR 1) must keep firing for sandboxes parked on I/O.
  if (sb->deadline_at_ns() != 0) {
    push_timer(sb->deadline_at_ns(), sb, entry.seq, /*is_deadline=*/true);
  }

  switch (entry.kind) {
    case WakeKind::kTimer:
      push_timer(sb->wake_at_ns(), sb, entry.seq, /*is_deadline=*/false);
      break;
    case WakeKind::kFdRead:
    case WakeKind::kFdWrite: {
      entry.fd = sb->wake_os_fd();
      epoll_event ev{};
      ev.events = entry.kind == WakeKind::kFdRead ? EPOLLIN : EPOLLOUT;
      ev.data.fd = entry.fd;
      if (entry.fd < 0 ||
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, entry.fd, &ev) < 0) {
        // Fail open: hand the sandbox right back so the hostcall retries
        // and surfaces the error through the normal I/O path.
        SLEDGE_LOG_WARN("io_loop: watch fd %d failed (%s); waking eagerly",
                        entry.fd, strerror(errno));
        sb->set_state(SandboxState::kRunnable);
        // No registry entry was added; the possible deadline timer entry
        // above is stale but harmless (seq never matches a live entry).
        return;
      }
      fd_waiters_[entry.fd] = sb;
      break;
    }
    case WakeKind::kChild:
      child_waiters_.push_back(sb);
      break;
    case WakeKind::kNone:
      // A sandbox that blocked without a condition would sleep forever;
      // treat as a runtime bug and keep it runnable.
      SLEDGE_LOG_ERROR("io_loop: blocked sandbox without a wake condition");
      sb->set_state(SandboxState::kRunnable);
      return;
  }
  blocked_[sb] = entry;
}

void IoLoop::wake(Sandbox* sb, std::vector<Sandbox*>* ready) {
  auto it = blocked_.find(sb);
  if (it == blocked_.end()) return;
  const Blocked& b = it->second;
  if (b.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, b.fd, nullptr);
    fd_waiters_.erase(b.fd);
  }
  if (b.kind == WakeKind::kChild) {
    child_waiters_.erase(
        std::remove(child_waiters_.begin(), child_waiters_.end(), sb),
        child_waiters_.end());
  }
  blocked_.erase(it);
  sb->set_state(SandboxState::kRunnable);
  ready->push_back(sb);
}

void IoLoop::pump_timers(uint64_t now, std::vector<Sandbox*>* ready) {
  while (!timers_.empty() && timers_.front().when_ns <= now) {
    TimerEntry e = timers_.front();
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    timers_.pop_back();
    // Validate before ANY dereference: the sandbox may have woken (stale
    // seq), completed, or even been freed and its address recycled.
    auto it = blocked_.find(e.sb);
    if (it == blocked_.end() || it->second.seq != e.seq) continue;
    if (e.is_deadline) {
      // Wall deadline passed while blocked: kill. The wake delivers the
      // sandbox back to the worker, whose resume path raises the trap that
      // unwinds it (504). kChild parents wake immediately too — the shared
      // InvokeJoin keeps the child's completion signal safe.
      e.sb->request_kill();
    }
    wake(e.sb, ready);
  }
}

void IoLoop::pump_child_waiters(std::vector<Sandbox*>* ready) {
  for (size_t i = 0; i < child_waiters_.size();) {
    Sandbox* sb = child_waiters_[i];
    const std::shared_ptr<InvokeJoin>& join = sb->pending_join();
    bool done = join && join->done.load(std::memory_order_acquire);
    if (done || sb->kill_requested()) {
      wake(sb, ready);  // removes child_waiters_[i] (swap-free erase)
      continue;         // re-inspect index i
    }
    ++i;
  }
}

void IoLoop::poll(uint64_t timeout_ns, std::vector<Sandbox*>* ready,
                  bool* writes_ready) {
  epoll_event events[64];
  int timeout_ms = 0;
  if (timeout_ns > 0) {
    // Round up: returning early busy-loops; oversleeping is bounded by the
    // caller's budget math.
    uint64_t ms = (timeout_ns + 999'999) / 1'000'000;
    timeout_ms = static_cast<int>(std::min<uint64_t>(ms, 60'000));
  }
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == event_fd_) {
      uint64_t junk;
      while (::read(event_fd_, &junk, sizeof(junk)) > 0) {
      }
      // A notify may signal new distributor work, a child completion, or a
      // stop; the worker re-checks all of those. Flag writes too: cheap.
      *writes_ready = true;
      continue;
    }
    auto w = fd_waiters_.find(fd);
    if (w != fd_waiters_.end()) {
      wake(w->second, ready);
      continue;
    }
    if (write_fds_.count(fd)) *writes_ready = true;
  }
  uint64_t now = now_ns();
  pump_timers(now, ready);
  pump_child_waiters(ready);
}

uint64_t IoLoop::sleep_budget_ns(uint64_t now, uint64_t cap_ns) const {
  if (timers_.empty()) return cap_ns;
  uint64_t next = timers_.front().when_ns;  // stale entries only wake early
  uint64_t until = next > now ? next - now : 1;
  return std::min(until, cap_ns);
}

void IoLoop::watch_write_fd(int fd) {
  if (!write_fds_.insert(fd).second) return;  // already parked
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void IoLoop::unwatch_write_fd(int fd) {
  if (write_fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void IoLoop::drain_all(std::vector<Sandbox*>* out) {
  for (auto& [sb, entry] : blocked_) {
    if (entry.fd >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, entry.fd, nullptr);
    out->push_back(sb);
  }
  blocked_.clear();
  fd_waiters_.clear();
  child_waiters_.clear();
  timers_.clear();
  for (int fd : write_fds_) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  write_fds_.clear();
}

}  // namespace sledge::runtime
