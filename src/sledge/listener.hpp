// The Sledge listener core: epoll-based request forwarding (paper §4).
// Accepts connections, incrementally parses HTTP, resolves the target
// module, creates the sandbox and pushes it onto the work-distribution
// structure. Workers hand kept-alive connections back through
// return_connection (eventfd-signalled queue).
//
// Control-path responses (400/404/503 and the /admin observability
// endpoints) are written with short-write safety: a partial ::send parks
// the remainder on the Conn and re-arms EPOLLOUT instead of silently
// truncating. While a connection is loaned to a worker its Conn (parser
// state plus any already-received bytes of the next pipelined request) is
// parked in `loaned_` and replayed when the worker returns the fd.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "http/http.hpp"

namespace sledge::runtime {

class Runtime;

class Listener {
 public:
  explicit Listener(Runtime* rt);
  ~Listener();

  // Creates and binds the listening socket; fills bound port.
  Status init(uint16_t port, uint16_t* bound_port);
  void start();
  void join();

  // Thread-safe: workers return kept-alive connections here.
  void return_connection(int fd);
  // Thread-safe: workers report a loaned fd they closed, so the listener
  // can drop the parked Conn state (stashed pipelined bytes) for it.
  void discard_connection(int fd);
  // Wakes the epoll loop (used by stop()).
  void wake();

 private:
  struct Conn {
    int fd;
    http::RequestParser parser;
    // Unsent control-path response bytes, parked when ::send would block;
    // flushed by EPOLLOUT events (outoff = consumed prefix).
    std::string outbuf;
    size_t outoff = 0;
    bool close_after_write = false;
    // Bytes of the next pipelined request received before the previous one
    // was admitted; replayed when the worker returns the connection.
    std::string stash;
  };

  // Whether the caller may keep touching the Conn / parsing its input.
  enum class Consume : uint8_t { kContinue, kStop };

  void thread_main();
  void accept_new();
  void handle_readable(Conn* conn);
  // Flushes parked outbuf bytes; returns false if the conn was dropped.
  bool handle_writable(Conn* conn);
  // Runs `n` received bytes through the parser/dispatch state machine.
  Consume process_bytes(Conn* conn, const char* data, size_t n);
  // Short-write-safe response send: parks the remainder on EAGAIN and
  // re-arms EPOLLOUT. Returns false if the conn was dropped (peer dead, or
  // close_after and everything flushed).
  bool conn_send(Conn* conn, const std::string& data, bool close_after);
  // Bounded blocking flush of parked bytes, used only before loaning a
  // connection to a worker (response order on the socket must be kept).
  bool flush_outbuf_blocking(Conn* conn);
  void set_events(Conn* conn, uint32_t events);
  void add_connection(int fd);
  // Re-registers a worker-returned fd, restoring parked state and
  // replaying any stashed pipelined bytes.
  void reattach_connection(int fd);
  // Moves the Conn out of the epoll set into `loaned_` (sandbox admitted;
  // the worker owns the fd until return/close).
  void detach_to_loaned(Conn* conn);
  void drop_connection(int fd);
  void drain_returned();

  Runtime* rt_;
  std::thread thread_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  // Connections currently owned by workers; fds here are NOT in the epoll
  // set and are closed (if at all) by the worker side, never by us.
  std::unordered_map<int, std::unique_ptr<Conn>> loaned_;
  std::mutex ret_mu_;
  std::vector<int> returned_;
  std::vector<int> discarded_;
};

}  // namespace sledge::runtime
