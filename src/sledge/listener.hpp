// A Sledge listener shard: epoll-based request forwarding (paper §4),
// replicated N times behind one SO_REUSEPORT port so accepts, parsing,
// admission and control-path writes scale per core (the front door stops
// being a single epoll loop). Each shard owns its listen socket, epoll fd,
// eventfd and connection table end to end; the kernel's REUSEPORT 4-tuple
// hash spreads incoming connections across shards. Workers hand kept-alive
// fds back to the *owning* shard (the shard index is stamped into the
// loaned Sandbox) through return_connection (eventfd-signalled queue).
//
// Control-path responses (400/404/501/503 and the /admin observability
// endpoints) are written zero-copy as a writev of header+body iovecs, with
// short-write safety: a partial send parks the remainder on the Conn and
// re-arms EPOLLOUT instead of silently truncating. Admissions are batched
// per epoll tick: admitted sandboxes collect into a local vector and reach
// the dispatcher through one push_batch() + one notify_workers() per
// wakeup. While a connection is loaned to a worker its Conn (parser state
// plus any already-received bytes of the next pipelined request) is parked
// in `loaned_` and replayed when the worker returns the fd.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "http/http.hpp"

namespace sledge::runtime {

class Runtime;
class Sandbox;

class Listener {
 public:
  Listener(Runtime* rt, int shard);
  ~Listener();

  // Creates and binds the SO_REUSEPORT listening socket; fills bound port.
  // Shard 0 may bind port 0 (kernel-picked); later shards must pass shard
  // 0's resolved port so all shards share the accept queue hash.
  Status init(uint16_t port, uint16_t* bound_port);
  void start();
  void join();

  int shard() const { return shard_; }

  // Thread-safe: workers return kept-alive connections here. `gen` is the
  // loan generation stamped into the sandbox at admission; a mismatch with
  // the parked Conn marks the message as stale (the fd number was recycled
  // into a newer loan) and it is ignored instead of touching live state.
  void return_connection(int fd, uint64_t gen);
  // Thread-safe: workers report a loaned fd they closed, so the listener
  // can drop the parked Conn state (stashed pipelined bytes) for it.
  void discard_connection(int fd, uint64_t gen);
  // Wakes the epoll loop (used by stop()).
  void wake();

  // ---- Live per-shard counters (the /admin observability plane) ----
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  // Failed accepts: fd-pressure sheds (EMFILE/ENFILE accept-and-close via
  // the reserve fd) plus unexpected accept errno.
  uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }
  int64_t open_conns() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  int64_t loaned_conns() const {
    return loaned_conns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd;
    http::RequestParser parser;
    // Unsent control-path response bytes, parked when the socket would
    // block; flushed by EPOLLOUT events (outoff = consumed prefix). The
    // fast path never touches this — writev straight from header+body.
    std::string outbuf;
    size_t outoff = 0;
    bool close_after_write = false;
    // Bytes of the next pipelined request received before the previous one
    // was admitted; replayed when the worker returns the connection.
    std::string stash;
    // Loan generation (stamped at admission, echoed by worker-side
    // return/discard messages). Guards against the fd-recycle race: a
    // worker's discard of a closed fd arriving after the kernel reissued
    // that fd number to a new, live loan must not erase the new loan.
    uint64_t gen = 0;
  };

  // Whether the caller may keep touching the Conn / parsing its input.
  enum class Consume : uint8_t { kContinue, kStop };

  void thread_main();
  void accept_new();
  // EMFILE/ENFILE shed: close the reserve fd, accept-and-close one pending
  // connection, retake the reserve. Returns false if no progress was
  // possible (accept must then back off instead of spinning).
  bool shed_one_accept();
  // Drops EPOLLIN on the listen socket for a short backoff (re-armed by
  // thread_main) so persistent fd exhaustion cannot spin the shard at 100%.
  void disarm_accept();
  void rearm_accept_if_due(uint64_t now);
  void handle_readable(Conn* conn);
  // Flushes parked outbuf bytes; returns false if the conn was dropped.
  bool handle_writable(Conn* conn);
  // Runs `n` received bytes through the parser/dispatch state machine.
  Consume process_bytes(Conn* conn, const char* data, size_t n);
  // Zero-copy response send: one writev of header+body iovecs. Parks the
  // unsent remainder (copying only then) on EAGAIN and re-arms EPOLLOUT.
  // Returns false if the conn was dropped (peer dead, or close_after and
  // everything flushed).
  bool conn_send(Conn* conn, const std::string& header, const void* body,
                 size_t body_len, bool close_after);
  bool conn_send(Conn* conn, const std::string& data, bool close_after) {
    return conn_send(conn, data, nullptr, 0, close_after);
  }
  // Bounded blocking flush of parked bytes, used only before loaning a
  // connection to a worker (response order on the socket must be kept).
  bool flush_outbuf_blocking(Conn* conn);
  // Hands the tick's admitted sandboxes to the dispatcher: one
  // push_batch() + one notify_workers() per epoll wakeup.
  void flush_admitted();
  void set_events(Conn* conn, uint32_t events);
  void add_connection(int fd);
  // Re-registers a worker-returned fd, restoring parked state and
  // replaying any stashed pipelined bytes. Parked state is only restored
  // when the loan generation matches (see return_connection).
  void reattach_connection(int fd, uint64_t gen);
  // Moves the Conn out of the epoll set into `loaned_` (sandbox admitted;
  // the worker owns the fd until return/close).
  void detach_to_loaned(Conn* conn);
  void drop_connection(int fd);
  void drain_returned();

  Runtime* rt_;
  const int shard_;
  std::thread thread_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  // Reserved dummy fd (EMFILE headroom): closed to free a slot, used to
  // accept-and-close under fd pressure, then reopened.
  int reserve_fd_ = -1;
  // 0 = accept armed; else earliest ns the disarmed accept re-arms.
  uint64_t accept_rearm_at_ns_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  // Connections currently owned by workers; fds here are NOT in the epoll
  // set and are closed (if at all) by the worker side, never by us.
  std::unordered_map<int, std::unique_ptr<Conn>> loaned_;
  // Sandboxes admitted this epoll tick, flushed in one dispatcher batch.
  std::vector<Sandbox*> pending_admits_;
  // Monotone loan-generation counter (listener thread only).
  uint64_t loan_gen_ = 0;
  std::mutex ret_mu_;
  std::vector<std::pair<int, uint64_t>> returned_;   // (fd, loan gen)
  std::vector<std::pair<int, uint64_t>> discarded_;  // (fd, loan gen)
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<int64_t> open_conns_{0};
  std::atomic<int64_t> loaned_conns_{0};
};

}  // namespace sledge::runtime
