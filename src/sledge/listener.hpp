// The Sledge listener core: epoll-based request forwarding (paper §4).
// Accepts connections, incrementally parses HTTP, resolves the target
// module, creates the sandbox and pushes it onto the work-distribution
// structure. Workers hand kept-alive connections back through
// return_connection (eventfd-signalled queue).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "http/http.hpp"

namespace sledge::runtime {

class Runtime;

class Listener {
 public:
  explicit Listener(Runtime* rt);
  ~Listener();

  // Creates and binds the listening socket; fills bound port.
  Status init(uint16_t port, uint16_t* bound_port);
  void start();
  void join();

  // Thread-safe: workers return kept-alive connections here.
  void return_connection(int fd);
  // Wakes the epoll loop (used by stop()).
  void wake();

 private:
  struct Conn {
    int fd;
    http::RequestParser parser;
  };

  void thread_main();
  void accept_new();
  void handle_readable(Conn* conn);
  void add_connection(int fd);
  void drop_connection(int fd);
  void drain_returned();

  Runtime* rt_;
  std::thread thread_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::mutex ret_mu_;
  std::vector<int> returned_;
};

}  // namespace sledge::runtime
