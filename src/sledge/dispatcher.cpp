#include "sledge/dispatcher.hpp"

#include <algorithm>
#include <functional>

namespace sledge::runtime {

const char* to_string(DistPolicy p) {
  switch (p) {
    case DistPolicy::kWorkStealing: return "work_stealing";
    case DistPolicy::kGlobalLock: return "global_lock";
    case DistPolicy::kPerWorker: return "per_worker";
  }
  return "?";
}

const char* to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kWorkStealing: return "work_stealing";
    case DispatchPolicy::kGlobalEdf: return "global_edf";
    case DispatchPolicy::kShardedByModule: return "sharded_module";
  }
  return "?";
}

// ---- Distributor -----------------------------------------------------

Distributor::Distributor(DistPolicy policy, int workers)
    : policy_(policy), workers_(workers) {
  if (policy_ == DistPolicy::kPerWorker) {
    for (int i = 0; i < workers; ++i) {
      per_worker_.push_back(std::make_unique<PerWorkerQ>());
    }
  }
  for (int i = 0; i < workers; ++i) {
    hinted_.push_back(std::make_unique<HintQ>());
  }
}

void Distributor::push(Sandbox* sb) { push_batch(&sb, 1); }

void Distributor::push_batch(Sandbox* const* sbs, size_t n) {
  if (n == 0) return;
  switch (policy_) {
    case DistPolicy::kWorkStealing: {
      // One owner-end session per batch: push_mu_ serializes the N listener
      // shards (the deque's owner ops assume a single thread at a time).
      std::lock_guard<std::mutex> lock(push_mu_);
      for (size_t i = 0; i < n; ++i) deque_.push(sbs[i]);
      break;
    }
    case DistPolicy::kGlobalLock: {
      std::lock_guard<std::mutex> lock(global_mu_);
      for (size_t i = 0; i < n; ++i) global_q_.push_back(sbs[i]);
      break;
    }
    case DistPolicy::kPerWorker: {
      for (size_t i = 0; i < n; ++i) {
        uint64_t idx = rr_cursor_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<uint64_t>(workers_);
        PerWorkerQ& q = *per_worker_[idx];
        std::lock_guard<std::mutex> lock(q.mu);
        q.q.push_back(sbs[i]);
      }
      break;
    }
  }
}

void Distributor::inject(Sandbox* sb, int worker_hint) {
  // Locality-hinted placement: land the child on its parent's worker so it
  // runs with warm caches and a zero-hop join wake. Advisory — a hinted
  // queue deeper than the cap means the worker is busier than the caller's
  // slack check believed, so fall back to the shared entrance where any
  // worker can pick the child up.
  if (worker_hint >= 0 && worker_hint < workers_) {
    HintQ& hq = *hinted_[worker_hint];
    if (hq.count.load(std::memory_order_relaxed) < 16) {
      std::lock_guard<std::mutex> lock(hq.mu);
      hq.q.push_back(sb);
      hq.count.fetch_add(1, std::memory_order_release);
      return;
    }
  }
  // Worker-thread-safe side entrance: the Chase–Lev owner end belongs to
  // the listener, so children bypass it through a small mutexed queue that
  // fetch() probes with a relaxed counter (zero-cost when unused).
  std::lock_guard<std::mutex> lock(inject_mu_);
  inject_q_.push_back(sb);
  inject_count_.fetch_add(1, std::memory_order_release);
}

bool Distributor::fetch(int worker_index, Sandbox** out) {
  // Own hinted queue first: children placed here were aimed at this
  // worker specifically, and serving them before stolen/global work keeps
  // the parent->child locality the hint paid for.
  if (worker_index >= 0 && worker_index < workers_) {
    HintQ& hq = *hinted_[worker_index];
    if (hq.count.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(hq.mu);
      if (!hq.q.empty()) {
        *out = hq.q.front();
        hq.q.pop_front();
        hq.count.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
  }
  if (inject_count_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_q_.empty()) {
      *out = inject_q_.front();
      inject_q_.pop_front();
      inject_count_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  switch (policy_) {
    case DistPolicy::kWorkStealing:
      return deque_.steal(out);
    case DistPolicy::kGlobalLock: {
      std::lock_guard<std::mutex> lock(global_mu_);
      if (global_q_.empty()) return false;
      *out = global_q_.front();
      global_q_.pop_front();
      return true;
    }
    case DistPolicy::kPerWorker: {
      PerWorkerQ& q = *per_worker_[worker_index];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.q.empty()) return false;
      *out = q.q.front();
      q.q.pop_front();
      return true;
    }
  }
  return false;
}

int64_t Distributor::backlog_estimate() const {
  int64_t injected = inject_count_.load(std::memory_order_acquire);
  for (const auto& hq : hinted_) {
    injected += hq->count.load(std::memory_order_acquire);
  }
  switch (policy_) {
    case DistPolicy::kWorkStealing:
      return injected + deque_.size_estimate();
    case DistPolicy::kGlobalLock: {
      std::lock_guard<std::mutex> lock(global_mu_);
      return injected + static_cast<int64_t>(global_q_.size());
    }
    case DistPolicy::kPerWorker: {
      int64_t total = injected;
      for (const auto& q : per_worker_) {
        std::lock_guard<std::mutex> lock(q->mu);
        total += static_cast<int64_t>(q->q.size());
      }
      return total;
    }
  }
  return injected;
}

// ---- Dispatchers ------------------------------------------------------

namespace {

// The paper's design, unchanged: the Distributor (and its DistPolicy queue
// ablation) behind the Dispatcher interface.
class WorkStealingDispatcher : public Dispatcher {
 public:
  WorkStealingDispatcher(DistPolicy dist, int workers)
      : dist_(dist, workers) {}

  DispatchPolicy kind() const override {
    return DispatchPolicy::kWorkStealing;
  }
  void push(Sandbox* sb) override { dist_.push(sb); }
  void push_batch(Sandbox* const* sbs, size_t n) override {
    dist_.push_batch(sbs, n);
  }
  void inject(Sandbox* sb, int worker_hint) override {
    dist_.inject(sb, worker_hint);
  }
  bool fetch(int worker_index, Sandbox** out) override {
    return dist_.fetch(worker_index, out);
  }
  int64_t backlog_estimate() const override {
    return dist_.backlog_estimate();
  }

 private:
  Distributor dist_;
};

// Centralized deadline-sorted admit order: one mutexed min-heap on the
// absolute wall-clock deadline stamped at admission. Every fetch — from any
// worker — pops the globally earliest deadline, so under bursts the tightest
// requests reach a core first regardless of arrival order. Deadline-less
// requests sort last; equal deadlines break FIFO (seq).
class GlobalEdfDispatcher : public Dispatcher {
 public:
  DispatchPolicy kind() const override { return DispatchPolicy::kGlobalEdf; }

  void push(Sandbox* sb) override { place(sb); }
  // Locality hints are ignored: global deadline order IS the policy here.
  void inject(Sandbox* sb, int) override { place(sb); }

  bool fetch(int, Sandbox** out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    *out = heap_.back().sb;
    heap_.pop_back();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  int64_t backlog_estimate() const override {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t deadline;  // absolute ns; UINT64_MAX = no deadline
    uint64_t seq;       // FIFO tie-break
    Sandbox* sb;
  };
  // Min-heap on (deadline, seq) via std::*_heap's max-heap comparator.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void place(Sandbox* sb) {
    uint64_t deadline = sb->deadline_at_ns();
    std::lock_guard<std::mutex> lock(mu_);
    heap_.push_back(Entry{deadline == 0 ? UINT64_MAX : deadline, seq_++, sb});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::vector<Entry> heap_;
  uint64_t seq_ = 0;
  std::atomic<int64_t> size_{0};
};

// Sharded-by-module placement: the target module (Sandbox::user_tag, set
// before push/inject) hashes to one worker's shard, so a module's requests
// always run on the same core — instruction/data locality and hard
// per-module isolation, at the price of work conservation (an idle worker
// never helps a loaded shard).
class ShardedByModuleDispatcher : public Dispatcher {
 public:
  explicit ShardedByModuleDispatcher(int workers) : workers_(workers) {
    for (int i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  DispatchPolicy kind() const override {
    return DispatchPolicy::kShardedByModule;
  }

  void push(Sandbox* sb) override { place(sb); }
  // Locality hints are ignored: module affinity IS the policy here.
  void inject(Sandbox* sb, int) override { place(sb); }

  bool fetch(int worker_index, Sandbox** out) override {
    if (worker_index < 0 || worker_index >= workers_) return false;
    Shard& s = *shards_[worker_index];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.q.empty()) return false;
    *out = s.q.front();
    s.q.pop_front();
    return true;
  }

  int64_t backlog_estimate() const override {
    int64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += static_cast<int64_t>(s->q.size());
    }
    return total;
  }

  int shard_of(const void* module_tag) const {
    // Mix the pointer bits (splitmix-style) so allocation alignment does
    // not funnel every module onto shard 0.
    uint64_t z = reinterpret_cast<uintptr_t>(module_tag);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<int>((z ^ (z >> 31)) %
                            static_cast<uint64_t>(workers_));
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<Sandbox*> q;
  };

  void place(Sandbox* sb) {
    Shard& s = *shards_[shard_of(sb->user_tag)];
    std::lock_guard<std::mutex> lock(s.mu);
    s.q.push_back(sb);
  }

  int workers_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace

std::unique_ptr<Dispatcher> Dispatcher::make(DispatchPolicy policy,
                                             DistPolicy dist, int workers) {
  switch (policy) {
    case DispatchPolicy::kGlobalEdf:
      return std::make_unique<GlobalEdfDispatcher>();
    case DispatchPolicy::kShardedByModule:
      return std::make_unique<ShardedByModuleDispatcher>(workers);
    case DispatchPolicy::kWorkStealing:
      break;
  }
  return std::make_unique<WorkStealingDispatcher>(dist, workers);
}

}  // namespace sledge::runtime
