// A Sledge worker core: a pluggable per-worker scheduling policy (round
// robin / FIFO run-to-completion / EDF) over sandbox contexts, fused with a
// per-worker epoll event loop (IoLoop — the libuv-style loop of paper §4)
// that parks blocked sandboxes on wake conditions (timers, outbound-socket
// readiness, child-sandbox completion) and sleeps the core when nothing is
// runnable. The quantum timer is only armed when both the runtime config
// and the policy allow preemption.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sledge/io_loop.hpp"
#include "sledge/sandbox.hpp"
#include "sledge/scheduler_policy.hpp"

namespace sledge::runtime {

class Runtime;
struct LoadedModule;

// Marks the scheduler→sandbox context switch on this thread complete.
// Called by the sandbox-side landing points (Sandbox::entry start,
// block_yield resume, quantum-handler resume); the quantum handler defers
// preemption while a switch is in flight because swapcontext is not atomic
// (it unblocks SIGALRM and restores registers in several steps).
void worker_switch_landed();

class Worker {
 public:
  Worker(Runtime* rt, int index);
  ~Worker();

  void start();
  void join();

  // Cross-thread wake: interrupts an idle epoll sleep. Safe from any thread.
  void notify() { io_loop_.notify(); }

  // Racy snapshot of this worker's runnable backlog (policy queue + the
  // sandbox on core), refreshed each scheduler iteration. The invoke
  // locality check reads it to decide whether the parent's worker has
  // slack for a co-located child.
  uint32_t backlog_hint() const {
    return backlog_hint_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::atomic<uint64_t> dispatches{0};
    std::atomic<uint64_t> preemptions{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> killed{0};   // deadline/budget terminations (504)
    std::atomic<uint64_t> drained{0};  // abandoned at shutdown
    std::atomic<uint64_t> blocked{0};  // sandboxes parked on a wake condition
    std::atomic<uint64_t> woken{0};    // sandboxes handed back by the IoLoop
    // Resource-pool split of retired sandboxes: warm (every resource off a
    // free list) vs cold (at least one fresh allocation).
    std::atomic<uint64_t> pool_hits{0};
    std::atomic<uint64_t> pool_misses{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  friend void worker_quantum_handler(int);

  // Per-request phase breakdown, captured at finalize() so it outlives the
  // sandbox: the response-write phase completes after the sandbox is gone.
  struct RequestTrace {
    LoadedModule* mod = nullptr;
    int status = 0;
    uint64_t created_ns = 0;
    uint64_t done_ns = 0;
    uint64_t queue_wait_ns = 0;
    uint64_t startup_ns = 0;
    uint64_t exec_cpu_ns = 0;
    uint64_t io_wait_ns = 0;
    uint32_t dispatches = 0;
    uint32_t preempts = 0;
  };

  // Response bytes are kept as header + body and written as a writev of
  // two iovecs (zero-copy: the body is moved out of the sandbox, never
  // concatenated into a temporary). `offset` indexes the logical
  // header·body concatenation.
  struct WriteJob {
    int fd;
    std::string header;
    std::vector<uint8_t> body;
    size_t offset = 0;
    bool keep_alive = false;
    int shard = 0;      // owning listener shard (fd return address)
    uint64_t gen = 0;   // loan generation (echoed on return/discard)
    RequestTrace trace;
  };

  void thread_main();
  Sandbox* next_sandbox();
  void dispatch(Sandbox* sb);
  void finalize(Sandbox* sb);
  void abandon(Sandbox* sb);  // shutdown: retire without a response
  // Re-enqueues sandboxes the IoLoop handed back from poll().
  void admit_woken(std::vector<Sandbox*>* woken);
  // Completes (or errors out) a child sandbox's InvokeJoin and pings the
  // parent's worker. No-op for listener-originated sandboxes.
  void signal_join(Sandbox* sb, int32_t status, bool take_response);
  // Returns true if any write made progress or completed.
  bool pump_writes();
  // A flushed (or failed) response: record the response_write phase and
  // append the structured access-log line to the worker-local buffer.
  void complete_write(const WriteJob& w, uint64_t now, bool write_ok);
  void flush_access_log();
  void setup_timer();
  // Arms the quantum timer, clipped to the sandbox's remaining CPU budget /
  // wall deadline so kills land promptly, not at the next full quantum.
  void arm_timer(const Sandbox* sb);
  void disarm_timer();
  // Async-signal-safe: re-arms a minimal (100us) slice. Used by the quantum
  // handler to defer a preemption that landed off the sandbox stack (the
  // swapcontext mask-switch window).
  void rearm_timer_min();

  Runtime* rt_;
  int index_;
  std::thread thread_;

  ucontext_t sched_ctx_;
  Sandbox* current_ = nullptr;

  std::unique_ptr<SchedulerPolicy> policy_;
  IoLoop io_loop_;
  std::vector<WriteJob> writes_;
  std::string access_buf_;  // buffered access-log lines (flushed off-path)

  timer_t timer_{};
  bool timer_valid_ = false;

  std::atomic<uint32_t> backlog_hint_{0};

  Stats stats_;
};

}  // namespace sledge::runtime
