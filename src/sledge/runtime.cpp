#include "sledge/runtime.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/json.hpp"
#include "common/log.hpp"
#include "engine/host.hpp"
#include "sledge/listener.hpp"
#include "sledge/worker.hpp"

namespace sledge::runtime {

const char* to_string(InvokeDataplane d) {
  switch (d) {
    case InvokeDataplane::kCopy: return "copy";
    case InvokeDataplane::kShm: return "shm";
  }
  return "?";
}

namespace {

// A hinted child only lands on the parent's worker when that worker's
// runnable backlog is at most this deep — beyond it, the chain would
// serialize behind unrelated work and global placement wins.
constexpr uint32_t kInvokeLocalitySlack = 2;

}  // namespace

LoadedModule::~LoadedModule() {
  // Drop the snapshot template with the module: a reloaded module must
  // rebuild from its own post-start image, never instantiate from a stale
  // one. (warm_pool is declared after `module`, so its pre-built sandboxes
  // are destroyed before the engine module they reference.)
  SnapshotRegistry::instance().invalidate(&module);
}

// ---- Runtime ----------------------------------------------------------

Runtime::Runtime(RuntimeConfig config)
    : config_(config), admission_(config.admission, config.max_pending) {
  if (config_.workers < 1) config_.workers = 1;
  dispatcher_ =
      Dispatcher::make(config_.dispatcher, config_.policy, config_.workers);
  SandboxResourcePool::instance().configure(config_.pool);
}

Runtime::~Runtime() { stop(); }

Status Runtime::register_module(const std::string& name,
                                const std::vector<uint8_t>& wasm_bytes) {
  return register_module(name, wasm_bytes, config_.engine, ModuleLimits{});
}

Status Runtime::register_module(
    const std::string& name, const std::vector<uint8_t>& wasm_bytes,
    const engine::WasmModule::Config& engine_config) {
  return register_module(name, wasm_bytes, engine_config, ModuleLimits{});
}

Status Runtime::register_module(const std::string& name,
                                const std::vector<uint8_t>& wasm_bytes,
                                const ModuleLimits& limits) {
  return register_module(name, wasm_bytes, config_.engine, limits);
}

Status Runtime::register_module(
    const std::string& name, const std::vector<uint8_t>& wasm_bytes,
    const engine::WasmModule::Config& engine_config,
    const ModuleLimits& limits) {
  if (modules_.count(name)) {
    return Status::error("module '" + name + "' already registered");
  }
  Result<engine::WasmModule> mod =
      engine::WasmModule::load(wasm_bytes, engine_config);
  if (!mod.ok()) {
    return Status::error("module '" + name + "': " + mod.error_message());
  }
  auto loaded = std::make_unique<LoadedModule>();
  loaded->name = name;
  loaded->module = mod.take();
  loaded->limits = limits;
  total_weight_.fetch_add(limits.tenant_weight == 0 ? 1 : limits.tenant_weight,
                          std::memory_order_acq_rel);
  modules_[name] = std::move(loaded);
  return Status::ok();
}

LoadedModule* Runtime::find_module(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

Status Runtime::update_module_limits(const std::string& name,
                                     const ModuleLimits& limits) {
  LoadedModule* mod = find_module(name);
  if (!mod) return Status::error("module '" + name + "' not registered");
  uint64_t old_w = mod->limits.tenant_weight == 0 ? 1
                                                  : mod->limits.tenant_weight;
  uint64_t new_w = limits.tenant_weight == 0 ? 1 : limits.tenant_weight;
  mod->limits = limits;
  total_weight_.fetch_add(new_w - old_w, std::memory_order_acq_rel);
  return Status::ok();
}

int Runtime::num_listeners() const {
  if (config_.num_listeners > 0) return config_.num_listeners;
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  return static_cast<int>(std::min(4u, cores));
}

Status Runtime::start() {
  if (running_.load()) return Status::error("already running");
  listeners_.clear();
  // Shard 0 resolves the port (config_.port may be 0 = kernel-picked);
  // every later shard joins the same SO_REUSEPORT group on that port.
  const int shards = num_listeners();
  for (int i = 0; i < shards; ++i) {
    listeners_.push_back(std::make_unique<Listener>(this, i));
    uint16_t port = 0;
    Status s = listeners_.back()->init(i == 0 ? config_.port : bound_port_,
                                       &port);
    if (!s.is_ok()) {
      listeners_.clear();
      return s;
    }
    if (i == 0) bound_port_ = port;
  }

  if (!config_.access_log_path.empty()) {
    access_log_fd_ = ::open(config_.access_log_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (access_log_fd_ < 0) {
      return Status::error("access log open failed: " +
                           config_.access_log_path);
    }
  }

  start_ns_ = now_ns();
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < config_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
    workers_.back()->start();
  }
  for (auto& l : listeners_) l->start();
  if (config_.warm_pool.enabled) {
    replenish_run_.store(true, std::memory_order_release);
    replenisher_ = std::thread([this] { replenisher_main(); });
  }
  SLEDGE_LOG_INFO(
      "sledge runtime on port %u (%d listeners, %d workers, quantum %lu us, "
      "%s, dispatcher=%s, sched=%s, admission=%s, pool=%s, dataplane=%s)",
      bound_port_, shards, config_.workers,
      static_cast<unsigned long>(config_.quantum_us),
      to_string(config_.policy), to_string(config_.dispatcher),
      to_string(config_.sched), to_string(config_.admission),
      config_.pool.enabled ? "on" : "off",
      to_string(config_.invoke_dataplane));
  return Status::ok();
}

AdmitVerdict Runtime::admission_check(const LoadedModule* mod) const {
  AdmitRequest in;
  in.inflight = inflight();
  if (mod) {
    in.module_inflight = mod->inflight.load(std::memory_order_acquire);
    in.tenant_weight =
        mod->limits.tenant_weight == 0 ? 1 : mod->limits.tenant_weight;
    in.deadline_rel_ns = mod->limits.deadline_ns != 0 ? mod->limits.deadline_ns
                                                      : config_.deadline_ns;
    in.queue_wait_p99_ns = mod->stats.predictor.queue_wait_p99_ns();
    in.exec_cpu_p99_ns = mod->stats.predictor.exec_cpu_p99_ns();
    in.predictor_ready = mod->stats.predictor.ready();
  }
  in.total_weight = total_weight();
  return admission_.check(in);
}

void Runtime::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Graceful drain: stop admitting (the listener sheds with 503 while
  // draining) and give in-flight sandboxes and unflushed responses a bounded
  // grace period to finish. Runaway sandboxes that outlive the grace period
  // are abandoned and counted as drained by their workers.
  if (!draining_.exchange(true)) {
    uint64_t deadline = now_ns() + config_.drain_grace_ns;
    while (now_ns() < deadline &&
           (inflight_.load(std::memory_order_acquire) > 0 ||
            pending_writes_.load(std::memory_order_acquire) > 0)) {
      ::usleep(500);
    }
  }
  if (!running_.exchange(false)) return;
  // The replenisher goes first: nothing may pre-build sandboxes while the
  // pools drain, and the warm pools release their resources before the
  // resource pool's consumers are gone.
  replenish_run_.store(false, std::memory_order_release);
  if (replenisher_.joinable()) replenisher_.join();
  for (auto& [name, mod] : modules_) {
    mod->warm_pool.set_target(0);
    mod->warm_pool.clear();
  }
  for (auto& w : workers_) w->notify();  // interrupt idle epoll sleeps
  for (auto& l : listeners_) l->wake();
  for (auto& w : workers_) w->join();
  for (auto& l : listeners_) l->join();
  // Workers are joined before listeners, so a listener's final admission
  // flush can still hand the dispatcher sandboxes nobody will ever fetch.
  // Drain them here — the same bookkeeping as a worker abandon — so
  // shutdown leaks neither sandboxes nor their connection fds.
  Sandbox* orphan = nullptr;
  for (int i = 0; i < config_.workers; ++i) {
    while (dispatcher_->fetch(i, &orphan)) {
      retired_totals_.drained++;
      note_retired(static_cast<LoadedModule*>(orphan->user_tag));
      if (const auto& join = orphan->result_join()) {
        join->status = engine::kSbErrChildFailed;
        join->done.store(true, std::memory_order_release);
      }
      if (orphan->conn_fd() >= 0) ::close(orphan->conn_fd());
      delete orphan;
    }
  }
  // Fold worker counters into the retired totals before tearing down.
  for (const auto& w : workers_) {
    retired_totals_.completed +=
        w->stats().completed.load(std::memory_order_relaxed);
    retired_totals_.failed += w->stats().failed.load(std::memory_order_relaxed);
    retired_totals_.killed += w->stats().killed.load(std::memory_order_relaxed);
    retired_totals_.drained +=
        w->stats().drained.load(std::memory_order_relaxed);
    retired_totals_.preemptions +=
        w->stats().preemptions.load(std::memory_order_relaxed);
    retired_totals_.steals += w->stats().steals.load(std::memory_order_relaxed);
    retired_totals_.pool_hits +=
        w->stats().pool_hits.load(std::memory_order_relaxed);
    retired_totals_.pool_misses +=
        w->stats().pool_misses.load(std::memory_order_relaxed);
    retired_totals_.blocked +=
        w->stats().blocked.load(std::memory_order_relaxed);
    retired_totals_.woken += w->stats().woken.load(std::memory_order_relaxed);
  }
  for (const auto& l : listeners_) {
    retired_totals_.accepted += l->accepted();
    retired_totals_.accept_errors += l->accept_errors();
  }
  workers_.clear();
  listeners_.clear();
  if (access_log_fd_ >= 0) {
    ::close(access_log_fd_);  // workers flushed their buffers before join
    access_log_fd_ = -1;
  }
}

void Runtime::return_connection(int fd, int shard, uint64_t gen) {
  if (running() && shard >= 0 &&
      shard < static_cast<int>(listeners_.size())) {
    listeners_[shard]->return_connection(fd, gen);
  } else {
    ::close(fd);
  }
}

void Runtime::forget_connection(int fd, int shard, uint64_t gen) {
  if (running() && shard >= 0 &&
      shard < static_cast<int>(listeners_.size())) {
    listeners_[shard]->discard_connection(fd, gen);
  }
}

std::unique_ptr<Sandbox> Runtime::create_sandbox(LoadedModule* mod,
                                                 std::vector<uint8_t> request,
                                                 int conn_fd,
                                                 bool keep_alive) {
  Stopwatch sw;
  mod->warm_pool.arrivals.note_arrival(now_ns());
  InstantiationMode mode = module_instantiation(mod);
  if (mode == InstantiationMode::kSnapshot && config_.warm_pool.enabled) {
    if (std::unique_ptr<Sandbox> sb = mod->warm_pool.pop()) {
      // Pre-built by the replenisher; the request only pays the pop.
      sb->adopt_request(std::move(request), conn_fd, keep_alive,
                        sw.elapsed_ns());
      return sb;
    }
  }
  return Sandbox::create(&mod->module, std::move(request), conn_fd,
                         keep_alive, mode);
}

void Runtime::replenisher_main() {
  const WarmPoolConfig& wp = config_.warm_pool;
  while (replenish_run_.load(std::memory_order_acquire)) {
    for (auto& [name, mod] : modules_) {
      if (module_instantiation(mod.get()) != InstantiationMode::kSnapshot) {
        continue;
      }
      WarmPool& pool = mod->warm_pool;
      uint64_t now = now_ns();
      uint64_t last = pool.arrivals.last_arrival_ns();
      uint64_t idle = last == 0 ? ~uint64_t{0} : now - last;
      int target =
          warm_pool_target(pool.arrivals.rate_per_sec(now), idle, wp);
      pool.set_target(target);
      if (target == 0) {
        // Idle decay: the pre-built sandboxes flow back to the resource
        // pool (memory recycled, stacks kept warm for other modules).
        if (pool.size() != 0) pool.clear();
        continue;
      }
      while (static_cast<int>(pool.size()) < target &&
             replenish_run_.load(std::memory_order_acquire)) {
        std::unique_ptr<Sandbox> sb = Sandbox::create(
            &mod->module, {}, -1, false, InstantiationMode::kSnapshot);
        if (!sb) break;
        sb->user_tag = mod.get();
        // push() refuses once the target was reached (or decayed) under a
        // concurrent pop — the spare build is simply dropped back.
        if (!pool.push(std::move(sb))) break;
      }
    }
    ::usleep(static_cast<useconds_t>(wp.replenish_interval_us));
  }
}

LoadedModule* Runtime::admit_invoke_module(const std::string& name,
                                           int32_t* err) {
  LoadedModule* mod = find_module(name);
  if (!mod) {
    *err = engine::kSbErrNoModule;
    return nullptr;
  }
  // Children obey the same admission control as listener requests: a
  // draining or saturated runtime sheds the invoke instead of queueing it.
  if (!running() || draining()) {
    note_shed(mod);
    *err = engine::kSbErrOverload;
    return nullptr;
  }
  switch (admission_check(mod)) {
    case AdmitVerdict::kAdmit:
      break;
    case AdmitVerdict::kShedOverload:
      note_shed(mod);
      *err = engine::kSbErrOverload;
      return nullptr;
    case AdmitVerdict::kShedDeadline:
      // The child's deadline is unmeetable per the predictor; the parent
      // sees the same overload error either way (no HTTP status here).
      note_shed_deadline(mod);
      *err = engine::kSbErrOverload;
      return nullptr;
  }
  return mod;
}

void Runtime::configure_invoke_child(Sandbox* parent, LoadedModule* mod,
                                     Sandbox* child) {
  // The child gets its module's budget, but its wall deadline is clipped to
  // the parent's: when a blocked parent is killed at its deadline (504),
  // the child dies at the same wall instant on its own — no cross-thread
  // kill pointer that could dangle.
  uint64_t budget = mod->limits.execution_budget_ns != 0
                        ? mod->limits.execution_budget_ns
                        : config_.execution_budget_ns;
  uint64_t deadline_rel =
      mod->limits.deadline_ns != 0 ? mod->limits.deadline_ns
                                   : config_.deadline_ns;
  uint64_t deadline_abs =
      deadline_rel != 0 ? child->created_ns() + deadline_rel : 0;
  if (parent->deadline_at_ns() != 0 &&
      (deadline_abs == 0 || parent->deadline_at_ns() < deadline_abs)) {
    deadline_abs = parent->deadline_at_ns();
  }
  child->set_limits(budget, deadline_abs);
  child->set_io_config(this, static_cast<uint32_t>(config_.max_sandbox_fds),
                       parent->invoke_depth() + 1,
                       static_cast<uint32_t>(config_.max_invoke_depth));
  // Grandchildren follow the child module's dataplane (override or config).
  child->set_invoke_shm(module_invoke_shm(mod));
  child->mark_invoke_child();
}

void Runtime::place_invoke_child(Sandbox* parent, LoadedModule* mod,
                                 std::unique_ptr<Sandbox> child,
                                 bool zerocopy) {
  // Locality: prefer the parent's worker when its runnable backlog has
  // slack — the child starts on warm caches and the join wake is zero-hop.
  // Only computed for work-stealing, the one dispatcher that honors hints
  // (deadline order / module affinity dominate in the others), so the
  // invoke_local counter reflects placements actually requested.
  int hint = -1;
  if (config_.invoke_locality &&
      dispatcher_->kind() == DispatchPolicy::kWorkStealing) {
    int pw = parent->owner_worker();
    if (pw >= 0 && pw < static_cast<int>(workers_.size()) &&
        workers_[pw]->backlog_hint() <= kInvokeLocalitySlack) {
      hint = pw;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mod->stats.mu);
    mod->stats.requests++;
    mod->stats.startup.record(child->startup_cost_ns());
    (child->snapshot_backed()
         ? mod->stats.startup_snapshot
         : child->pooled() ? mod->stats.startup_pooled
                           : mod->stats.startup_cold)
        .record(child->startup_cost_ns());
    if (hint >= 0) ++mod->stats.invoke_local;
    if (zerocopy) ++mod->stats.invoke_zerocopy;
  }
  invokes_.fetch_add(1, std::memory_order_relaxed);
  note_admitted(mod);
  dispatcher_->inject(child.release(), hint);
  if (hint >= 0) {
    notify_worker(hint);
  } else {
    notify_workers();  // the parent's own worker may be the only idle core
  }
}

bool Runtime::invoke_child(Sandbox* parent, const std::string& name,
                           std::vector<uint8_t> request,
                           std::shared_ptr<InvokeJoin> join, int32_t* err) {
  LoadedModule* mod = admit_invoke_module(name, err);
  if (!mod) return false;
  // Zero-copy dataplane: the parent staged its request in a transfer
  // buffer — the child reads it in place and writes its response into the
  // buffer's response region, so neither payload crosses a heap copy.
  //
  // Copy dataplane: heap ownership does not cross sandbox boundaries — the
  // child gets its own copy of the request bytes, as any hand-off through
  // a socket, pipe, or process boundary would (these boundary copies are
  // precisely what the transfer-buffer plane eliminates).
  const bool zerocopy = join && join->xfer != nullptr;
  std::unique_ptr<Sandbox> child = create_sandbox(
      mod, zerocopy ? std::vector<uint8_t>() : std::vector<uint8_t>(request),
      -1, false);
  if (!child) {
    note_shed(mod);
    *err = engine::kSbErrOverload;
    return false;
  }
  child->user_tag = mod;
  if (zerocopy) {
    child->adopt_request_view(join->xfer, join->xfer->get()->len);
  }
  child->set_result_join(std::move(join));
  if (zerocopy) child->wire_result_sink();
  configure_invoke_child(parent, mod, child.get());
  place_invoke_child(parent, mod, std::move(child), zerocopy);
  return true;
}

bool Runtime::invoke_stream_child(Sandbox* parent, const std::string& name,
                                  std::vector<uint8_t> request,
                                  std::shared_ptr<TransferLoan> loan,
                                  size_t req_len, int32_t* err) {
  LoadedModule* mod = admit_invoke_module(name, err);
  if (!mod) return false;
  // Same boundary semantics as invoke_child: the copy dataplane hands the
  // child its own copy of the request bytes.
  const bool zerocopy = loan != nullptr;
  std::unique_ptr<Sandbox> child = create_sandbox(
      mod, zerocopy ? std::vector<uint8_t>() : std::vector<uint8_t>(request),
      -1, false);
  if (!child) {
    note_shed(mod);
    *err = engine::kSbErrOverload;
    return false;
  }
  child->user_tag = mod;
  if (zerocopy) child->adopt_request_view(std::move(loan), req_len);
  configure_invoke_child(parent, mod, child.get());
  // Channel transfer happens last — after every failure path above — so a
  // shed invoke leaves the parent still owning its response channel and
  // able to answer the error itself. The child inherits either the
  // parent's HTTP connection (top-level parent) or the parent's upstream
  // join (parent is itself an invoke child); the hostcall already refused
  // parents with neither.
  if (parent->conn_fd() >= 0) {
    child->adopt_connection(parent->conn_fd(), parent->keep_alive(),
                            parent->conn_shard(), parent->conn_gen());
    parent->release_connection();
  } else {
    child->set_result_join(parent->take_result_join());
    child->wire_result_sink();
  }
  place_invoke_child(parent, mod, std::move(child), zerocopy);
  return true;
}

void Runtime::notify_worker(int index) {
  if (index >= 0 && index < static_cast<int>(workers_.size())) {
    workers_[index]->notify();
  }
}

void Runtime::notify_workers() {
  for (auto& w : workers_) w->notify();
}

void Runtime::record_completion(Sandbox* sb, SandboxState final_state) {
  auto* mod = static_cast<LoadedModule*>(sb->user_tag);
  note_retired(mod);
  if (!mod) return;
  std::lock_guard<std::mutex> lock(mod->stats.mu);
  if (final_state == SandboxState::kKilled) {
    mod->stats.kills++;
  } else if (final_state != SandboxState::kComplete) {
    mod->stats.failures++;
  }
  mod->stats.end_to_end.record(sb->done_ns() - sb->created_ns());
  mod->stats.queue_wait.record(sb->queue_wait_ns());
  mod->stats.exec_cpu.record(sb->cpu_ns());
  // Feed the slack predictor (killed requests included: their truncated
  // exec and full queue_wait are the congestion signal the gate wants).
  mod->stats.predictor.record(sb->queue_wait_ns(), sb->cpu_ns());
  if (sb->io_wait_ns() != 0) mod->stats.io_wait.record(sb->io_wait_ns());
  mod->stats.preemptions += sb->preempt_count();
  if (sb->is_invoke_child() && sb->first_run_ns() != 0) {
    // Admission (parent hostcall) -> first dispatch: the hand-off latency
    // the locality hint exists to shrink.
    mod->stats.invoke_handoff.record(sb->first_run_ns() - sb->created_ns());
  }
}

void Runtime::record_response_write(LoadedModule* mod, uint64_t write_ns,
                                    size_t bytes) {
  if (!mod) return;
  std::lock_guard<std::mutex> lock(mod->stats.mu);
  mod->stats.response_write.record(write_ns);
  mod->stats.response_bytes += bytes;
}

void Runtime::access_log_write(const std::string& block) {
  if (access_log_fd_ < 0 || block.empty()) return;
  // O_APPEND: one write per flushed block keeps lines whole without a lock.
  [[maybe_unused]] ssize_t n =
      ::write(access_log_fd_, block.data(), block.size());
}

Runtime::Totals Runtime::totals() const {
  Totals t = retired_totals_;
  t.shed += shed_.load(std::memory_order_relaxed);
  t.shed_deadline += shed_deadline_.load(std::memory_order_relaxed);
  t.invokes += invokes_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    t.completed += w->stats().completed.load(std::memory_order_relaxed);
    t.failed += w->stats().failed.load(std::memory_order_relaxed);
    t.killed += w->stats().killed.load(std::memory_order_relaxed);
    t.drained += w->stats().drained.load(std::memory_order_relaxed);
    t.preemptions += w->stats().preemptions.load(std::memory_order_relaxed);
    t.steals += w->stats().steals.load(std::memory_order_relaxed);
    t.pool_hits += w->stats().pool_hits.load(std::memory_order_relaxed);
    t.pool_misses += w->stats().pool_misses.load(std::memory_order_relaxed);
    t.blocked += w->stats().blocked.load(std::memory_order_relaxed);
    t.woken += w->stats().woken.load(std::memory_order_relaxed);
  }
  for (const auto& l : listeners_) {
    t.accepted += l->accepted();
    t.accept_errors += l->accept_errors();
  }
  return t;
}

Runtime::StatsSnapshot Runtime::snapshot() const {
  StatsSnapshot s;
  s.uptime_ns = start_ns_ != 0 ? now_ns() - start_ns_ : 0;
  s.inflight = inflight();
  s.totals = totals();
  for (const auto& l : listeners_) {
    ListenerSnapshot ls;
    ls.id = l->shard();
    ls.accepted = l->accepted();
    ls.accept_errors = l->accept_errors();
    ls.open_conns = l->open_conns();
    ls.loaned_conns = l->loaned_conns();
    s.listeners.push_back(ls);
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker::Stats& w = workers_[i]->stats();
    WorkerSnapshot ws;
    ws.id = static_cast<int>(i);
    ws.dispatches = w.dispatches.load(std::memory_order_relaxed);
    ws.preemptions = w.preemptions.load(std::memory_order_relaxed);
    ws.steals = w.steals.load(std::memory_order_relaxed);
    ws.completed = w.completed.load(std::memory_order_relaxed);
    ws.failed = w.failed.load(std::memory_order_relaxed);
    ws.killed = w.killed.load(std::memory_order_relaxed);
    ws.blocked = w.blocked.load(std::memory_order_relaxed);
    ws.woken = w.woken.load(std::memory_order_relaxed);
    s.workers.push_back(ws);
  }
  for (const auto& [name, mod] : modules_) {
    ModuleSnapshot ms;
    ms.name = name;
    ms.inflight = mod->inflight.load(std::memory_order_acquire);
    ms.tenant_weight =
        mod->limits.tenant_weight == 0 ? 1 : mod->limits.tenant_weight;
    ms.predicted_queue_p99_ns = mod->stats.predictor.queue_wait_p99_ns();
    ms.predicted_exec_p99_ns = mod->stats.predictor.exec_cpu_p99_ns();
    ms.warm_hits = mod->warm_pool.hits();
    ms.warm_refills = mod->warm_pool.refills();
    ms.warm_size = mod->warm_pool.size();
    ms.warm_target = mod->warm_pool.target();
    std::lock_guard<std::mutex> lock(mod->stats.mu);
    ms.requests = mod->stats.requests;
    ms.failures = mod->stats.failures;
    ms.kills = mod->stats.kills;
    ms.shed = mod->stats.shed;
    ms.shed_deadline = mod->stats.shed_deadline;
    ms.preemptions = mod->stats.preemptions;
    ms.response_bytes = mod->stats.response_bytes;
    ms.invoke_local = mod->stats.invoke_local;
    ms.invoke_zerocopy = mod->stats.invoke_zerocopy;
    ms.end_to_end = mod->stats.end_to_end.summary();
    ms.startup = mod->stats.startup.summary();
    ms.startup_pooled = mod->stats.startup_pooled.summary();
    ms.startup_cold = mod->stats.startup_cold.summary();
    ms.startup_snapshot = mod->stats.startup_snapshot.summary();
    ms.queue_wait = mod->stats.queue_wait.summary();
    ms.exec_cpu = mod->stats.exec_cpu.summary();
    ms.response_write = mod->stats.response_write.summary();
    ms.io_wait = mod->stats.io_wait.summary();
    ms.invoke_handoff = mod->stats.invoke_handoff.summary();
    s.modules.push_back(std::move(ms));
  }
  return s;
}

namespace {

json::Value hist_to_json(const LatencyHistogram::Summary& h) {
  json::Object o;
  o["count"] = json::Value(static_cast<double>(h.count));
  o["sum_ns"] = json::Value(h.sum_ns);
  o["mean_ns"] = json::Value(
      h.count != 0 ? h.sum_ns / static_cast<double>(h.count) : 0.0);
  o["min_ns"] = json::Value(static_cast<double>(h.min_ns));
  o["p50_ns"] = json::Value(static_cast<double>(h.p50_ns));
  o["p90_ns"] = json::Value(static_cast<double>(h.p90_ns));
  o["p99_ns"] = json::Value(static_cast<double>(h.p99_ns));
  o["max_ns"] = json::Value(static_cast<double>(h.max_ns));
  return json::Value(std::move(o));
}

}  // namespace

std::string Runtime::stats_json() const {
  StatsSnapshot s = snapshot();
  json::Object root;
  root["uptime_s"] = json::Value(static_cast<double>(s.uptime_ns) / 1e9);
  root["inflight"] = json::Value(static_cast<double>(s.inflight));
  root["dispatcher"] = json::Value(std::string(to_string(config_.dispatcher)));
  root["admission"] = json::Value(std::string(to_string(config_.admission)));

  json::Object totals;
  totals["completed"] = json::Value(static_cast<double>(s.totals.completed));
  totals["failed"] = json::Value(static_cast<double>(s.totals.failed));
  totals["killed"] = json::Value(static_cast<double>(s.totals.killed));
  totals["drained"] = json::Value(static_cast<double>(s.totals.drained));
  totals["shed"] = json::Value(static_cast<double>(s.totals.shed));
  totals["shed_deadline"] =
      json::Value(static_cast<double>(s.totals.shed_deadline));
  totals["preemptions"] =
      json::Value(static_cast<double>(s.totals.preemptions));
  totals["steals"] = json::Value(static_cast<double>(s.totals.steals));
  totals["pool_hits"] = json::Value(static_cast<double>(s.totals.pool_hits));
  totals["pool_misses"] =
      json::Value(static_cast<double>(s.totals.pool_misses));
  totals["blocked"] = json::Value(static_cast<double>(s.totals.blocked));
  totals["woken"] = json::Value(static_cast<double>(s.totals.woken));
  totals["invokes"] = json::Value(static_cast<double>(s.totals.invokes));
  totals["accepted"] = json::Value(static_cast<double>(s.totals.accepted));
  totals["accept_errors"] =
      json::Value(static_cast<double>(s.totals.accept_errors));
  root["totals"] = json::Value(std::move(totals));

  {
    const SnapshotRegistry::Counters sc =
        SnapshotRegistry::instance().counters();
    json::Object snap;
    snap["hits"] = json::Value(static_cast<double>(sc.hits));
    snap["misses"] = json::Value(static_cast<double>(sc.misses));
    snap["builds"] = json::Value(static_cast<double>(sc.builds));
    snap["build_failures"] =
        json::Value(static_cast<double>(sc.build_failures));
    root["snapshot"] = json::Value(std::move(snap));
  }

  json::Array listeners;
  for (const ListenerSnapshot& l : s.listeners) {
    json::Object o;
    o["id"] = json::Value(l.id);
    o["accepted"] = json::Value(static_cast<double>(l.accepted));
    o["accept_errors"] = json::Value(static_cast<double>(l.accept_errors));
    o["open_conns"] = json::Value(static_cast<double>(l.open_conns));
    o["loaned_conns"] = json::Value(static_cast<double>(l.loaned_conns));
    listeners.push_back(json::Value(std::move(o)));
  }
  root["listeners"] = json::Value(std::move(listeners));

  json::Array workers;
  for (const WorkerSnapshot& w : s.workers) {
    json::Object o;
    o["id"] = json::Value(w.id);
    o["dispatches"] = json::Value(static_cast<double>(w.dispatches));
    o["preemptions"] = json::Value(static_cast<double>(w.preemptions));
    o["steals"] = json::Value(static_cast<double>(w.steals));
    o["completed"] = json::Value(static_cast<double>(w.completed));
    o["failed"] = json::Value(static_cast<double>(w.failed));
    o["killed"] = json::Value(static_cast<double>(w.killed));
    o["blocked"] = json::Value(static_cast<double>(w.blocked));
    o["woken"] = json::Value(static_cast<double>(w.woken));
    workers.push_back(json::Value(std::move(o)));
  }
  root["workers"] = json::Value(std::move(workers));

  json::Object modules;
  for (const ModuleSnapshot& m : s.modules) {
    json::Object o;
    o["requests"] = json::Value(static_cast<double>(m.requests));
    o["failures"] = json::Value(static_cast<double>(m.failures));
    o["kills"] = json::Value(static_cast<double>(m.kills));
    o["shed"] = json::Value(static_cast<double>(m.shed));
    o["shed_deadline"] = json::Value(static_cast<double>(m.shed_deadline));
    o["inflight"] = json::Value(static_cast<double>(m.inflight));
    o["tenant_weight"] = json::Value(static_cast<double>(m.tenant_weight));
    o["predicted_queue_p99_ns"] =
        json::Value(static_cast<double>(m.predicted_queue_p99_ns));
    o["predicted_exec_p99_ns"] =
        json::Value(static_cast<double>(m.predicted_exec_p99_ns));
    o["preemptions"] = json::Value(static_cast<double>(m.preemptions));
    o["response_bytes"] =
        json::Value(static_cast<double>(m.response_bytes));
    o["invoke_local"] = json::Value(static_cast<double>(m.invoke_local));
    o["invoke_zerocopy"] =
        json::Value(static_cast<double>(m.invoke_zerocopy));
    o["warm_hits"] = json::Value(static_cast<double>(m.warm_hits));
    o["warm_refills"] = json::Value(static_cast<double>(m.warm_refills));
    o["warm_pool_size"] = json::Value(static_cast<double>(m.warm_size));
    o["warm_pool_target"] = json::Value(static_cast<double>(m.warm_target));
    o["end_to_end"] = hist_to_json(m.end_to_end);
    o["startup"] = hist_to_json(m.startup);
    o["startup_pooled"] = hist_to_json(m.startup_pooled);
    o["startup_cold"] = hist_to_json(m.startup_cold);
    o["startup_snapshot"] = hist_to_json(m.startup_snapshot);
    o["queue_wait"] = hist_to_json(m.queue_wait);
    o["exec_cpu"] = hist_to_json(m.exec_cpu);
    o["response_write"] = hist_to_json(m.response_write);
    o["io_wait"] = hist_to_json(m.io_wait);
    o["invoke_handoff"] = hist_to_json(m.invoke_handoff);
    modules[m.name] = json::Value(std::move(o));
  }
  root["modules"] = json::Value(std::move(modules));
  return json::Value(std::move(root)).dump();
}

std::string Runtime::stats_prometheus() const {
  StatsSnapshot s = snapshot();
  std::string out;
  out.reserve(4096);
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  emit("# TYPE sledge_uptime_seconds gauge\nsledge_uptime_seconds %.3f\n",
       static_cast<double>(s.uptime_ns) / 1e9);
  emit("# TYPE sledge_inflight gauge\nsledge_inflight %lld\n",
       static_cast<long long>(s.inflight));
  struct Counter {
    const char* name;
    uint64_t value;
  };
  const Counter counters[] = {
      {"sledge_completed_total", s.totals.completed},
      {"sledge_failed_total", s.totals.failed},
      {"sledge_killed_total", s.totals.killed},
      {"sledge_drained_total", s.totals.drained},
      {"sledge_shed_total", s.totals.shed},
      {"sledge_shed_deadline_total", s.totals.shed_deadline},
      {"sledge_preemptions_total", s.totals.preemptions},
      {"sledge_steals_total", s.totals.steals},
      {"sledge_pool_hits_total", s.totals.pool_hits},
      {"sledge_pool_misses_total", s.totals.pool_misses},
      {"sledge_blocked_total", s.totals.blocked},
      {"sledge_woken_total", s.totals.woken},
      {"sledge_invokes_total", s.totals.invokes},
      {"sledge_accepted_total", s.totals.accepted},
      {"sledge_accept_errors_total", s.totals.accept_errors},
  };
  const SnapshotRegistry::Counters snap =
      SnapshotRegistry::instance().counters();
  const Counter snap_counters[] = {
      {"sledge_snapshot_hits_total", snap.hits},
      {"sledge_snapshot_misses_total", snap.misses},
      {"sledge_snapshot_builds_total", snap.builds},
      {"sledge_snapshot_build_failures_total", snap.build_failures},
  };
  for (const Counter& c : counters) {
    emit("# TYPE %s counter\n%s %llu\n", c.name, c.name,
         static_cast<unsigned long long>(c.value));
  }
  for (const Counter& c : snap_counters) {
    emit("# TYPE %s counter\n%s %llu\n", c.name, c.name,
         static_cast<unsigned long long>(c.value));
  }

  emit("# TYPE sledge_listener_accepted_total counter\n");
  for (const ListenerSnapshot& l : s.listeners) {
    emit("sledge_listener_accepted_total{shard=\"%d\"} %llu\n", l.id,
         static_cast<unsigned long long>(l.accepted));
  }
  emit("# TYPE sledge_listener_accept_errors_total counter\n");
  for (const ListenerSnapshot& l : s.listeners) {
    emit("sledge_listener_accept_errors_total{shard=\"%d\"} %llu\n", l.id,
         static_cast<unsigned long long>(l.accept_errors));
  }
  emit("# TYPE sledge_listener_open_conns gauge\n");
  for (const ListenerSnapshot& l : s.listeners) {
    emit("sledge_listener_open_conns{shard=\"%d\"} %lld\n", l.id,
         static_cast<long long>(l.open_conns));
  }
  emit("# TYPE sledge_listener_loaned_conns gauge\n");
  for (const ListenerSnapshot& l : s.listeners) {
    emit("sledge_listener_loaned_conns{shard=\"%d\"} %lld\n", l.id,
         static_cast<long long>(l.loaned_conns));
  }

  struct ModCounter {
    const char* name;
    uint64_t ModuleSnapshot::* field;
  };
  const ModCounter mod_counters[] = {
      {"sledge_requests_total", &ModuleSnapshot::requests},
      {"sledge_failures_total", &ModuleSnapshot::failures},
      {"sledge_kills_total", &ModuleSnapshot::kills},
      {"sledge_module_shed_total", &ModuleSnapshot::shed},
      {"sledge_module_shed_deadline_total", &ModuleSnapshot::shed_deadline},
      {"sledge_module_preemptions_total", &ModuleSnapshot::preemptions},
      {"sledge_response_bytes_total", &ModuleSnapshot::response_bytes},
      {"sledge_invoke_local_total", &ModuleSnapshot::invoke_local},
      {"sledge_invoke_zerocopy_total", &ModuleSnapshot::invoke_zerocopy},
      {"sledge_warm_pool_hits_total", &ModuleSnapshot::warm_hits},
      {"sledge_warm_pool_refills_total", &ModuleSnapshot::warm_refills},
  };
  for (const ModCounter& c : mod_counters) {
    emit("# TYPE %s counter\n", c.name);
    for (const ModuleSnapshot& m : s.modules) {
      emit("%s{module=\"%s\"} %llu\n", c.name, m.name.c_str(),
           static_cast<unsigned long long>(m.*(c.field)));
    }
  }

  struct Phase {
    const char* name;
    LatencyHistogram::Summary ModuleSnapshot::* field;
  };
  emit("# TYPE sledge_warm_pool_size gauge\n");
  for (const ModuleSnapshot& m : s.modules) {
    emit("sledge_warm_pool_size{module=\"%s\"} %llu\n", m.name.c_str(),
         static_cast<unsigned long long>(m.warm_size));
  }
  emit("# TYPE sledge_warm_pool_target gauge\n");
  for (const ModuleSnapshot& m : s.modules) {
    emit("sledge_warm_pool_target{module=\"%s\"} %d\n", m.name.c_str(),
         m.warm_target);
  }

  const Phase phases[] = {
      {"sledge_queue_wait_seconds", &ModuleSnapshot::queue_wait},
      {"sledge_startup_seconds", &ModuleSnapshot::startup},
      {"sledge_startup_snapshot_seconds", &ModuleSnapshot::startup_snapshot},
      {"sledge_exec_cpu_seconds", &ModuleSnapshot::exec_cpu},
      {"sledge_io_wait_seconds", &ModuleSnapshot::io_wait},
      {"sledge_response_write_seconds", &ModuleSnapshot::response_write},
      {"sledge_end_to_end_seconds", &ModuleSnapshot::end_to_end},
      {"sledge_invoke_handoff_seconds", &ModuleSnapshot::invoke_handoff},
  };
  for (const Phase& p : phases) {
    emit("# TYPE %s summary\n", p.name);
    for (const ModuleSnapshot& m : s.modules) {
      const LatencyHistogram::Summary& h = m.*(p.field);
      const struct {
        const char* q;
        uint64_t ns;
      } qs[] = {{"0.5", h.p50_ns}, {"0.9", h.p90_ns}, {"0.99", h.p99_ns}};
      for (const auto& q : qs) {
        emit("%s{module=\"%s\",quantile=\"%s\"} %.9f\n", p.name,
             m.name.c_str(), q.q, static_cast<double>(q.ns) / 1e9);
      }
      emit("%s_sum{module=\"%s\"} %.9f\n", p.name, m.name.c_str(),
           h.sum_ns / 1e9);
      emit("%s_count{module=\"%s\"} %llu\n", p.name, m.name.c_str(),
           static_cast<unsigned long long>(h.count));
    }
  }
  return out;
}

std::string Runtime::stats_report() const {
  std::string out;
  char buf[384];
  Totals t = totals();
  std::snprintf(buf, sizeof(buf),
                "runtime: completed=%llu failed=%llu killed=%llu "
                "drained=%llu shed=%llu shed_deadline=%llu preemptions=%llu "
                "steals=%llu blocked=%llu woken=%llu invokes=%llu "
                "(dispatcher=%s sched=%s admission=%s dataplane=%s)\n",
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.failed),
                static_cast<unsigned long long>(t.killed),
                static_cast<unsigned long long>(t.drained),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.shed_deadline),
                static_cast<unsigned long long>(t.preemptions),
                static_cast<unsigned long long>(t.steals),
                static_cast<unsigned long long>(t.blocked),
                static_cast<unsigned long long>(t.woken),
                static_cast<unsigned long long>(t.invokes),
                to_string(config_.dispatcher), to_string(config_.sched),
                to_string(config_.admission),
                to_string(config_.invoke_dataplane));
  out += buf;

  const SandboxResourcePool::Counters pc =
      SandboxResourcePool::instance().counters();
  const uint64_t warm_total = t.pool_hits + t.pool_misses;
  std::snprintf(buf, sizeof(buf),
                "pool: warm=%llu cold=%llu (%.1f%% warm) "
                "mem hit/miss=%llu/%llu stack hit/miss=%llu/%llu "
                "reclaimed=%llu\n",
                static_cast<unsigned long long>(t.pool_hits),
                static_cast<unsigned long long>(t.pool_misses),
                warm_total ? 100.0 * static_cast<double>(t.pool_hits) /
                                 static_cast<double>(warm_total)
                           : 0.0,
                static_cast<unsigned long long>(pc.memory_hits),
                static_cast<unsigned long long>(pc.memory_misses),
                static_cast<unsigned long long>(pc.stack_hits),
                static_cast<unsigned long long>(pc.stack_misses),
                static_cast<unsigned long long>(pc.released));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "xfer: hit/miss=%llu/%llu outstanding=%llu\n",
                static_cast<unsigned long long>(pc.transfer_hits),
                static_cast<unsigned long long>(pc.transfer_misses),
                static_cast<unsigned long long>(pc.transfer_outstanding));
  out += buf;
  const SnapshotRegistry::Counters sc = SnapshotRegistry::instance().counters();
  std::snprintf(buf, sizeof(buf),
                "snapshot: hit/miss=%llu/%llu builds=%llu failures=%llu\n",
                static_cast<unsigned long long>(sc.hits),
                static_cast<unsigned long long>(sc.misses),
                static_cast<unsigned long long>(sc.builds),
                static_cast<unsigned long long>(sc.build_failures));
  out += buf;

  auto p50_us = [](const LatencyHistogram& h) {
    return static_cast<double>(h.percentile_ns(0.5)) / 1e3;
  };
  for (const auto& [name, mod] : modules_) {
    std::lock_guard<std::mutex> lock(mod->stats.mu);
    std::snprintf(buf, sizeof(buf),
                  "  %-12s reqs=%llu fail=%llu kills=%llu "
                  "e2e(avg=%.3fms p99=%.3fms) "
                  "startup(avg=%.1fus p99=%.1fus)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(mod->stats.requests),
                  static_cast<unsigned long long>(mod->stats.failures),
                  static_cast<unsigned long long>(mod->stats.kills),
                  mod->stats.end_to_end.mean_ms(), mod->stats.end_to_end.p99_ms(),
                  mod->stats.startup.mean_us(), mod->stats.startup.p99_us());
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  %-12s startup pooled n=%zu (p50=%.1fus p99=%.1fus) "
        "cold n=%zu (p50=%.1fus p99=%.1fus) "
        "snapshot n=%zu (p50=%.1fus p99=%.1fus)\n",
        "", mod->stats.startup_pooled.count(),
        p50_us(mod->stats.startup_pooled), mod->stats.startup_pooled.p99_us(),
        mod->stats.startup_cold.count(), p50_us(mod->stats.startup_cold),
        mod->stats.startup_cold.p99_us(),
        mod->stats.startup_snapshot.count(),
        p50_us(mod->stats.startup_snapshot),
        mod->stats.startup_snapshot.p99_us());
    out += buf;
    if (mod->warm_pool.hits() != 0 || mod->warm_pool.refills() != 0 ||
        mod->warm_pool.target() != 0) {
      std::snprintf(buf, sizeof(buf),
                    "  %-12s warm-pool hits=%llu refills=%llu size=%zu "
                    "target=%d\n",
                    "",
                    static_cast<unsigned long long>(mod->warm_pool.hits()),
                    static_cast<unsigned long long>(mod->warm_pool.refills()),
                    mod->warm_pool.size(), mod->warm_pool.target());
      out += buf;
    }
    if (mod->stats.invoke_local != 0 || mod->stats.invoke_zerocopy != 0 ||
        mod->stats.invoke_handoff.count() != 0) {
      std::snprintf(
          buf, sizeof(buf),
          "  %-12s invoke local=%llu zerocopy=%llu "
          "handoff(p50=%.1fus p99=%.1fus)\n",
          "", static_cast<unsigned long long>(mod->stats.invoke_local),
          static_cast<unsigned long long>(mod->stats.invoke_zerocopy),
          p50_us(mod->stats.invoke_handoff),
          mod->stats.invoke_handoff.p99_us());
      out += buf;
    }
  }
  return out;
}

Status run_sandbox_inline(Sandbox* sandbox) {
  ucontext_t here;
  while (true) {
    SandboxState st = sandbox->state();
    if (st == SandboxState::kComplete) return Status::ok();
    if (st == SandboxState::kFailed || st == SandboxState::kKilled) {
      return Status::error(sandbox->outcome().describe());
    }
    if (st == SandboxState::kBlocked) {
      // Inline runner: honor each wake condition synchronously (no event
      // loop on this thread). kChild never appears — there is no broker.
      switch (sandbox->wake_kind()) {
        case WakeKind::kFdRead:
        case WakeKind::kFdWrite: {
          pollfd p{};
          p.fd = sandbox->wake_os_fd();
          p.events =
              sandbox->wake_kind() == WakeKind::kFdRead ? POLLIN : POLLOUT;
          ::poll(&p, 1, 100);  // spurious wakes just re-block
          break;
        }
        case WakeKind::kChild:
          return Status::error(
              "sandbox blocked on sb_invoke outside a runtime");
        default: {
          uint64_t now = now_ns();
          if (sandbox->wake_at_ns() > now) {
            ::usleep(static_cast<useconds_t>(
                (sandbox->wake_at_ns() - now) / 1000 + 1));
          }
          break;
        }
      }
      sandbox->set_state(SandboxState::kRunnable);
    }
    sandbox->dispatch(&here);
  }
}

}  // namespace sledge::runtime
