// Expected-slack admission control (the SLEdgeScale-style "reject what
// cannot make its deadline anyway" gate) plus per-tenant weighted fair
// shares.
//
// The predictor keeps a sliding window of recent per-request phase samples
// (queue_wait, exec_cpu — the PR 3 histograms' inputs) per module and
// publishes their p99s lock-free. At admit time the controller computes
//
//   predicted_completion = now + queue_wait_p99 + exec_cpu_p99
//   slack               = deadline_abs - predicted_completion
//
// and sheds early instead of queueing a request that is predicted to miss:
// 504-early when exec_cpu_p99 alone exceeds the deadline (unmeetable even
// from an empty queue), 503 when the queueing component is what kills it
// (a retry after backoff may succeed). The window (not all-time histograms)
// matters: shedding drains the queue, fresh samples show small queue_wait,
// and the gate reopens — a self-regulating feedback loop instead of a
// sticky all-time p99 that would latch the server shut after one burst.
//
// Fair shares: with `admission = slack` and max_pending > 0, each module m
// holds at most share_m = max(1, max_pending * weight_m / total_weight)
// in-flight slots; a hot module saturates its share and gets 503s while
// cold tenants' shares stay free (hard reservation, see DESIGN.md §11 for
// the work-conservation trade-off).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sledge::runtime {

enum class AdmissionPolicy : uint8_t {
  kQueueDepth = 0,    // raw inflight >= max_pending (the PR 1 behaviour)
  kExpectedSlack = 1, // + fair shares + predicted-slack gate
};

const char* to_string(AdmissionPolicy p);

// What the listener answers when a request is not admitted.
enum class AdmitVerdict : uint8_t {
  kAdmit = 0,
  kShedOverload = 1,  // 503: depth / fair-share cap / queueing kills slack
  kShedDeadline = 2,  // 504-early: deadline unmeetable even unqueued
};

const char* to_string(AdmitVerdict v);

// Sliding-window phase predictor, one per module. record() is called by
// workers under the module's stats mutex (serialized writers); the p99s are
// read lock-free on the listener's admit path. Samples from killed requests
// are included: their (truncated) exec and full queue_wait are exactly the
// congestion signal the gate needs.
class SlackPredictor {
 public:
  static constexpr size_t kWindow = 256;       // samples kept per phase
  static constexpr uint64_t kMinSamples = 16;  // gate is bypass below this
  static constexpr uint64_t kRefreshPeriod = 32;  // records between re-sorts

  // Owner-locked (module stats mutex). Publishes fresh p99s every
  // kRefreshPeriod records (and once at kMinSamples so ready() never reads
  // stale zeros).
  void record(uint64_t queue_wait_ns, uint64_t exec_cpu_ns);

  // Lock-free readers (listener admit path, stats surfaces).
  uint64_t queue_wait_p99_ns() const {
    return queue_p99_.load(std::memory_order_acquire);
  }
  uint64_t exec_cpu_p99_ns() const {
    return exec_p99_.load(std::memory_order_acquire);
  }
  uint64_t samples() const {
    return published_.load(std::memory_order_acquire);
  }
  bool ready() const { return samples() >= kMinSamples; }

 private:
  void refresh();

  std::array<uint64_t, kWindow> queue_ring_{};
  std::array<uint64_t, kWindow> exec_ring_{};
  uint64_t count_ = 0;  // total records (ring cursor = count_ % kWindow)
  std::atomic<uint64_t> queue_p99_{0};
  std::atomic<uint64_t> exec_p99_{0};
  std::atomic<uint64_t> published_{0};  // records visible to readers
};

// Everything one admit decision needs, gathered by the caller (Runtime) so
// the controller itself is pure and property-testable without a server.
struct AdmitRequest {
  int64_t inflight = 0;         // global queued+running+blocked
  int64_t module_inflight = 0;  // the target module's in-flight slots
  uint32_t tenant_weight = 1;   // the target module's weight
  uint64_t total_weight = 1;    // sum of weights over registered modules
  uint64_t deadline_rel_ns = 0; // resolved wall deadline (0 = none)
  uint64_t queue_wait_p99_ns = 0;
  uint64_t exec_cpu_p99_ns = 0;
  bool predictor_ready = false; // >= kMinSamples recorded
};

class AdmissionController {
 public:
  AdmissionController(AdmissionPolicy policy, int64_t max_pending)
      : policy_(policy), max_pending_(max_pending) {}

  AdmissionPolicy policy() const { return policy_; }

  // Weighted fair share in slots; every module keeps at least one.
  static int64_t fair_share(int64_t max_pending, uint32_t weight,
                            uint64_t total_weight);

  // Pure decision: accepted => predicted slack >= 0 at admit time (when the
  // request has a deadline and the predictor is ready).
  AdmitVerdict check(const AdmitRequest& in) const;

 private:
  AdmissionPolicy policy_;
  int64_t max_pending_;  // 0 = depth/fair-share caps off
};

}  // namespace sledge::runtime
