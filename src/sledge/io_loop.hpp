// Per-worker event loop for async host I/O (the libuv-style loop of paper
// §4, completing the preemptive+cooperative scheduler pairing).
//
// One IoLoop instance per Worker unifies what used to be three ad-hoc
// mechanisms — the O(n) sleeping_ timer scan, opportunistic response-write
// flushing, and idle busy-spinning — behind a single epoll instance:
//
//   * Blocked sandboxes register a wake condition (timer deadline, fd
//     readability/writability, or child-sandbox completion) and leave the
//     run queue entirely.
//   * Timers (sleep wakes AND wall-clock kill deadlines of blocked
//     sandboxes) live in a min-heap keyed on fire time, so pumping is
//     O(log n) per event instead of a linear scan per loop iteration.
//   * Response WriteJob fds that hit EAGAIN are parked for EPOLLOUT, so a
//     slow reader costs nothing until the kernel says the socket drained.
//   * When no sandbox is runnable the worker sleeps in epoll_wait with a
//     timeout clipped to the nearest timer; cross-thread events (new work
//     pushed by the listener, a child completing on another worker) land on
//     an eventfd, so CPU-bound and I/O-bound requests overlap on one core
//     without busy-spinning.
//
// Threading: everything except notify() is owner-worker-only. notify() is
// async-signal- and cross-thread-safe (a single eventfd write).
//
// Lifetime safety: the heap may hold entries for sandboxes that woke (or
// died) before their timer fired. Entries are validated against the blocked
// registry by (pointer, block-sequence) pair before any dereference, so a
// stale entry — even one whose sandbox memory was recycled for a new
// request — is discarded without being touched.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "sledge/sandbox.hpp"

namespace sledge::runtime {

class IoLoop {
 public:
  IoLoop() = default;
  ~IoLoop();

  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;

  Status init();

  // Cross-thread wake: makes a concurrent (or the next) poll() return
  // promptly. Safe from any thread while the loop exists.
  void notify();

  // Registers a sandbox the worker just observed entering kBlocked. Reads
  // the sandbox's wake condition (wake_kind/wake_os_fd/wake_at_ns) and its
  // wall deadline; the sandbox must not be dispatched again until this loop
  // hands it back from poll().
  void add_blocked(Sandbox* sb);

  // Parks/unparks a response-write fd for EPOLLOUT (WriteJob hit EAGAIN).
  void watch_write_fd(int fd);
  void unwatch_write_fd(int fd);

  // Drains ready events. Woken sandboxes (timer fired, fd ready, child
  // done, or deadline kill) are appended to *ready in kRunnable state;
  // *writes_ready is set when a parked write fd turned writable (or a
  // notify arrived, which may be a write-side signal). Blocks in epoll_wait
  // for at most `timeout_ns` (0 = non-blocking drain).
  void poll(uint64_t timeout_ns, std::vector<Sandbox*>* ready,
            bool* writes_ready);

  // How long poll() may sleep without missing a timer: min(nearest heap
  // entry - now, cap_ns). Returns cap_ns when no timers are pending.
  uint64_t sleep_budget_ns(uint64_t now, uint64_t cap_ns) const;

  // Blocked-sandbox census (sb_invoke child waiters included).
  size_t blocked_count() const { return blocked_.size(); }
  bool empty() const { return blocked_.empty(); }

  // Shutdown: hands every still-blocked sandbox back (without state
  // changes) and clears all registrations.
  void drain_all(std::vector<Sandbox*>* out);

 private:
  struct Blocked {
    uint64_t seq = 0;   // block-episode id; validates heap entries
    WakeKind kind = WakeKind::kNone;
    int fd = -1;        // OS fd watched (kFdRead/kFdWrite only)
  };
  struct TimerEntry {
    uint64_t when_ns = 0;
    Sandbox* sb = nullptr;  // NEVER dereferenced until seq-validated
    uint64_t seq = 0;
    bool is_deadline = false;  // wall-deadline kill vs. cooperative timer
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.when_ns > b.when_ns;
    }
  };

  void push_timer(uint64_t when_ns, Sandbox* sb, uint64_t seq,
                  bool is_deadline);
  // Unregisters + marks runnable + appends to *ready. Requires a live
  // registry entry for sb.
  void wake(Sandbox* sb, std::vector<Sandbox*>* ready);
  void pump_timers(uint64_t now, std::vector<Sandbox*>* ready);
  void pump_child_waiters(std::vector<Sandbox*>* ready);

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint64_t next_seq_ = 1;

  std::unordered_map<Sandbox*, Blocked> blocked_;
  std::unordered_map<int, Sandbox*> fd_waiters_;   // OS fd -> blocked sandbox
  std::unordered_set<int> write_fds_;              // parked WriteJob fds
  std::vector<Sandbox*> child_waiters_;            // kChild subset of blocked_
  std::vector<TimerEntry> timers_;                 // min-heap (TimerLater)
};

}  // namespace sledge::runtime
