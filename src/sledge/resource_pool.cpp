#include "sledge/resource_pool.hpp"

#include <sys/mman.h>

#include <utility>

#include "engine/trap.hpp"

namespace sledge::runtime {

namespace {

void destroy_stack(ExecStack* stack) {
  if (!stack) return;
  if (stack->guard_id >= 0) engine::unregister_guard_region(stack->guard_id);
  if (stack->base) ::munmap(stack->base, stack->size);
  delete stack;
}

ExecStack* create_stack(size_t stack_size, size_t guard_size) {
  void* mem = ::mmap(nullptr, stack_size + guard_size,
                     PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  ExecStack* stack = new ExecStack();
  stack->base = static_cast<uint8_t*>(mem);
  stack->size = stack_size + guard_size;
  stack->guard_size = guard_size;
  if (guard_size > 0) {
    ::mprotect(stack->base, guard_size, PROT_NONE);
    engine::install_trap_signal_handler();
    stack->guard_id = engine::register_guard_region(stack->base, guard_size);
  }
  return stack;
}

// Per-thread free lists. The destructor runs at thread exit and flushes
// into the (never-destructed) global pool, so thread-cached resources
// survive Runtime restarts within a process.
//
// `acquirer` marks threads that create sandboxes (the listener, the
// inline/bench path). Only those cache locally on release: a release-only
// thread (a worker retiring sandboxes the listener created) would hoard
// resources its cache can never hand back, so it pushes straight to the
// global pool where the acquiring threads can see them.
struct ThreadCache {
  std::vector<engine::LinearMemory> memories;
  std::vector<ExecStack*> stacks;
  bool acquirer = false;
  ~ThreadCache();
};

thread_local ThreadCache t_cache;

}  // namespace

SandboxResourcePool& SandboxResourcePool::instance() {
  // Intentionally leaked: thread-local caches flush here at thread exit,
  // which must work regardless of static destruction order.
  static SandboxResourcePool* pool = new SandboxResourcePool();
  return *pool;
}

ThreadCache::~ThreadCache() {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  for (engine::LinearMemory& mem : memories) {
    if (!pool.pool_memory_global(&mem)) {
      mem = engine::LinearMemory();  // release to the OS
    }
  }
  for (ExecStack* stack : stacks) {
    if (!pool.pool_stack_global(stack)) destroy_stack(stack);
  }
}

void SandboxResourcePool::configure(const Config& config) {
  enabled_.store(config.enabled, std::memory_order_release);
  per_thread_cap_.store(config.per_thread_cap, std::memory_order_release);
  global_cap_.store(config.global_cap, std::memory_order_release);
}

SandboxResourcePool::Config SandboxResourcePool::config() const {
  Config cfg;
  cfg.enabled = enabled_.load(std::memory_order_acquire);
  cfg.per_thread_cap = per_thread_cap_.load(std::memory_order_acquire);
  cfg.global_cap = global_cap_.load(std::memory_order_acquire);
  return cfg;
}

engine::LinearMemory SandboxResourcePool::acquire_memory(
    engine::BoundsStrategy strategy, uint32_t min_pages, uint32_t max_pages,
    bool* from_pool) {
  if (from_pool) *from_pool = false;
  t_cache.acquirer = true;
  const uint64_t reserved =
      engine::LinearMemory::reservation_bytes(strategy, max_pages);

  if (enabled_.load(std::memory_order_acquire)) {
    engine::LinearMemory pooled;
    // Thread-local list first (lock-free), then the global buckets.
    for (size_t i = 0; i < t_cache.memories.size(); ++i) {
      engine::LinearMemory& m = t_cache.memories[i];
      if (m.strategy() == strategy && m.reserved_bytes() == reserved) {
        pooled = std::move(m);
        t_cache.memories.erase(t_cache.memories.begin() +
                               static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (!pooled.valid()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (MemBucket& bucket : mem_buckets_) {
        if (bucket.strategy == strategy &&
            bucket.reserved_bytes == reserved && !bucket.free.empty()) {
          pooled = std::move(bucket.free.back());
          bucket.free.pop_back();
          break;
        }
      }
    }
    if (pooled.valid() && pooled.reset(min_pages, max_pages)) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      if (from_pool) *from_pool = true;
      return pooled;
    }
    // reset() failure drops `pooled` (released to the OS) and goes cold.
  }

  memory_misses_.fetch_add(1, std::memory_order_relaxed);
  auto fresh = engine::LinearMemory::create(strategy, min_pages, max_pages);
  if (!fresh.ok()) return engine::LinearMemory();
  return fresh.take();
}

void SandboxResourcePool::release_memory(engine::LinearMemory mem) {
  if (!mem.valid()) return;
  if (!enabled_.load(std::memory_order_acquire) || !mem.recycle()) {
    return;  // destructor unmaps
  }
  int cap = per_thread_cap_.load(std::memory_order_acquire);
  if (t_cache.acquirer && static_cast<int>(t_cache.memories.size()) < cap) {
    t_cache.memories.push_back(std::move(mem));
    return;
  }
  if (!pool_memory_global(&mem)) {
    released_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SandboxResourcePool::pool_memory_global(engine::LinearMemory* mem) {
  int cap = global_cap_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  MemBucket* bucket = nullptr;
  int64_t total = 0;
  for (MemBucket& b : mem_buckets_) {
    total += static_cast<int64_t>(b.free.size());
    if (b.strategy == mem->strategy() &&
        b.reserved_bytes == mem->reserved_bytes()) {
      bucket = &b;
    }
  }
  if (total >= cap) return false;  // reclaim watermark: release to the OS
  if (!bucket) {
    mem_buckets_.push_back(MemBucket{mem->strategy(), mem->reserved_bytes(), {}});
    bucket = &mem_buckets_.back();
  }
  bucket->free.push_back(std::move(*mem));
  return true;
}

ExecStack* SandboxResourcePool::acquire_stack(size_t stack_size,
                                              size_t guard_size,
                                              bool* from_pool) {
  if (from_pool) *from_pool = false;
  t_cache.acquirer = true;
  const size_t total = stack_size + guard_size;
  if (enabled_.load(std::memory_order_acquire)) {
    for (size_t i = 0; i < t_cache.stacks.size(); ++i) {
      ExecStack* s = t_cache.stacks[i];
      if (s->size == total && s->guard_size == guard_size) {
        t_cache.stacks.erase(t_cache.stacks.begin() +
                             static_cast<ptrdiff_t>(i));
        stack_hits_.fetch_add(1, std::memory_order_relaxed);
        if (from_pool) *from_pool = true;
        return s;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < stacks_.size(); ++i) {
        ExecStack* s = stacks_[i];
        if (s->size == total && s->guard_size == guard_size) {
          stacks_[i] = stacks_.back();
          stacks_.pop_back();
          stack_hits_.fetch_add(1, std::memory_order_relaxed);
          if (from_pool) *from_pool = true;
          return s;
        }
      }
    }
  }
  stack_misses_.fetch_add(1, std::memory_order_relaxed);
  return create_stack(stack_size, guard_size);
}

void SandboxResourcePool::release_stack(ExecStack* stack) {
  if (!stack) return;
  if (!enabled_.load(std::memory_order_acquire)) {
    destroy_stack(stack);
    return;
  }
  int cap = per_thread_cap_.load(std::memory_order_acquire);
  if (t_cache.acquirer && static_cast<int>(t_cache.stacks.size()) < cap) {
    t_cache.stacks.push_back(stack);
    return;
  }
  if (!pool_stack_global(stack)) {
    released_.fetch_add(1, std::memory_order_relaxed);
    destroy_stack(stack);
  }
}

bool SandboxResourcePool::pool_stack_global(ExecStack* stack) {
  int cap = global_cap_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(stacks_.size()) >= cap) return false;
  stacks_.push_back(stack);
  return true;
}

SandboxResourcePool::Counters SandboxResourcePool::counters() const {
  Counters c;
  c.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  c.memory_misses = memory_misses_.load(std::memory_order_relaxed);
  c.stack_hits = stack_hits_.load(std::memory_order_relaxed);
  c.stack_misses = stack_misses_.load(std::memory_order_relaxed);
  c.released = released_.load(std::memory_order_relaxed);
  return c;
}

void SandboxResourcePool::reset_counters() {
  memory_hits_.store(0, std::memory_order_relaxed);
  memory_misses_.store(0, std::memory_order_relaxed);
  stack_hits_.store(0, std::memory_order_relaxed);
  stack_misses_.store(0, std::memory_order_relaxed);
  released_.store(0, std::memory_order_relaxed);
}

void SandboxResourcePool::purge() {
  t_cache.memories.clear();  // LinearMemory destructors unmap
  for (ExecStack* stack : t_cache.stacks) destroy_stack(stack);
  t_cache.stacks.clear();

  std::vector<MemBucket> buckets;
  std::vector<ExecStack*> stacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buckets.swap(mem_buckets_);
    stacks.swap(stacks_);
  }
  for (ExecStack* stack : stacks) destroy_stack(stack);
  // `buckets` destructs here, unmapping the pooled memories.
}

}  // namespace sledge::runtime
