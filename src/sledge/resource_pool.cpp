#include "sledge/resource_pool.hpp"

#include <sys/mman.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "engine/trap.hpp"

namespace sledge::runtime {

namespace {

void destroy_stack(ExecStack* stack) {
  if (!stack) return;
  if (stack->guard_id >= 0) engine::unregister_guard_region(stack->guard_id);
  if (stack->base) ::munmap(stack->base, stack->size);
  delete stack;
}

ExecStack* create_stack(size_t stack_size, size_t guard_size) {
  void* mem = ::mmap(nullptr, stack_size + guard_size,
                     PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  ExecStack* stack = new ExecStack();
  stack->base = static_cast<uint8_t*>(mem);
  stack->size = stack_size + guard_size;
  stack->guard_size = guard_size;
  if (guard_size > 0) {
    ::mprotect(stack->base, guard_size, PROT_NONE);
    engine::install_trap_signal_handler();
    stack->guard_id = engine::register_guard_region(stack->base, guard_size);
  }
  return stack;
}

// Per-thread free lists. The destructor runs at thread exit and flushes
// into the (never-destructed) global pool, so thread-cached resources
// survive Runtime restarts within a process.
//
// `acquirer` marks threads that create sandboxes (the listener, the
// inline/bench path). Only those cache locally on release: a release-only
// thread (a worker retiring sandboxes the listener created) would hoard
// resources its cache can never hand back, so it pushes straight to the
// global pool where the acquiring threads can see them.
struct ThreadCache {
  std::vector<engine::LinearMemory> memories;
  std::vector<ExecStack*> stacks;
  std::vector<TransferBuffer*> transfers;
  bool acquirer = false;
  // Tracked separately from `acquirer`: transfer buffers are acquired by
  // worker threads (the parent's sb_invoke hostcall), which are
  // release-only for memories/stacks and must not start hoarding those.
  bool transfer_acquirer = false;
  ~ThreadCache();
};

thread_local ThreadCache t_cache;

constexpr size_t kTransferMinCap = 4096;

size_t round_up_pow2(size_t n) {
  size_t cap = kTransferMinCap;
  while (cap < n) cap <<= 1;
  return cap;
}

void destroy_transfer(TransferBuffer* tb) {
  if (!tb) return;
  std::free(tb->data);
  delete tb;
}

}  // namespace

TransferLoan::~TransferLoan() {
  if (tb_) SandboxResourcePool::instance().release_transfer(tb_);
}

SandboxResourcePool& SandboxResourcePool::instance() {
  // Intentionally leaked: thread-local caches flush here at thread exit,
  // which must work regardless of static destruction order.
  static SandboxResourcePool* pool = new SandboxResourcePool();
  return *pool;
}

ThreadCache::~ThreadCache() {
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  for (engine::LinearMemory& mem : memories) {
    if (!pool.pool_memory_global(&mem)) {
      mem = engine::LinearMemory();  // release to the OS
    }
  }
  for (ExecStack* stack : stacks) {
    if (!pool.pool_stack_global(stack)) destroy_stack(stack);
  }
  for (TransferBuffer* tb : transfers) {
    if (!pool.pool_transfer_global(tb)) destroy_transfer(tb);
  }
}

void SandboxResourcePool::configure(const Config& config) {
  enabled_.store(config.enabled, std::memory_order_release);
  per_thread_cap_.store(config.per_thread_cap, std::memory_order_release);
  global_cap_.store(config.global_cap, std::memory_order_release);
}

SandboxResourcePool::Config SandboxResourcePool::config() const {
  Config cfg;
  cfg.enabled = enabled_.load(std::memory_order_acquire);
  cfg.per_thread_cap = per_thread_cap_.load(std::memory_order_acquire);
  cfg.global_cap = global_cap_.load(std::memory_order_acquire);
  return cfg;
}

engine::LinearMemory SandboxResourcePool::acquire_memory(
    engine::BoundsStrategy strategy, uint32_t min_pages, uint32_t max_pages,
    bool* from_pool) {
  if (from_pool) *from_pool = false;
  t_cache.acquirer = true;
  const uint64_t reserved =
      engine::LinearMemory::reservation_bytes(strategy, max_pages);

  if (enabled_.load(std::memory_order_acquire)) {
    engine::LinearMemory pooled;
    // Thread-local list first (lock-free), then the global buckets.
    for (size_t i = 0; i < t_cache.memories.size(); ++i) {
      engine::LinearMemory& m = t_cache.memories[i];
      if (m.strategy() == strategy && m.reserved_bytes() == reserved) {
        pooled = std::move(m);
        t_cache.memories.erase(t_cache.memories.begin() +
                               static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (!pooled.valid()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (MemBucket& bucket : mem_buckets_) {
        if (bucket.strategy == strategy &&
            bucket.reserved_bytes == reserved && !bucket.free.empty()) {
          pooled = std::move(bucket.free.back());
          bucket.free.pop_back();
          break;
        }
      }
    }
    if (pooled.valid() && pooled.reset(min_pages, max_pages)) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      if (from_pool) *from_pool = true;
      return pooled;
    }
    // reset() failure drops `pooled` (released to the OS) and goes cold.
  }

  memory_misses_.fetch_add(1, std::memory_order_relaxed);
  auto fresh = engine::LinearMemory::create(strategy, min_pages, max_pages);
  if (!fresh.ok()) return engine::LinearMemory();
  return fresh.take();
}

void SandboxResourcePool::release_memory(engine::LinearMemory mem) {
  if (!mem.valid()) return;
  if (!enabled_.load(std::memory_order_acquire) || !mem.recycle()) {
    return;  // destructor unmaps
  }
  int cap = per_thread_cap_.load(std::memory_order_acquire);
  if (t_cache.acquirer && static_cast<int>(t_cache.memories.size()) < cap) {
    t_cache.memories.push_back(std::move(mem));
    return;
  }
  if (!pool_memory_global(&mem)) {
    released_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SandboxResourcePool::pool_memory_global(engine::LinearMemory* mem) {
  int cap = global_cap_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  MemBucket* bucket = nullptr;
  int64_t total = 0;
  for (MemBucket& b : mem_buckets_) {
    total += static_cast<int64_t>(b.free.size());
    if (b.strategy == mem->strategy() &&
        b.reserved_bytes == mem->reserved_bytes()) {
      bucket = &b;
    }
  }
  if (total >= cap) return false;  // reclaim watermark: release to the OS
  if (!bucket) {
    mem_buckets_.push_back(MemBucket{mem->strategy(), mem->reserved_bytes(), {}});
    bucket = &mem_buckets_.back();
  }
  bucket->free.push_back(std::move(*mem));
  return true;
}

ExecStack* SandboxResourcePool::acquire_stack(size_t stack_size,
                                              size_t guard_size,
                                              bool* from_pool) {
  if (from_pool) *from_pool = false;
  t_cache.acquirer = true;
  const size_t total = stack_size + guard_size;
  if (enabled_.load(std::memory_order_acquire)) {
    for (size_t i = 0; i < t_cache.stacks.size(); ++i) {
      ExecStack* s = t_cache.stacks[i];
      if (s->size == total && s->guard_size == guard_size) {
        t_cache.stacks.erase(t_cache.stacks.begin() +
                             static_cast<ptrdiff_t>(i));
        stack_hits_.fetch_add(1, std::memory_order_relaxed);
        if (from_pool) *from_pool = true;
        return s;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < stacks_.size(); ++i) {
        ExecStack* s = stacks_[i];
        if (s->size == total && s->guard_size == guard_size) {
          stacks_[i] = stacks_.back();
          stacks_.pop_back();
          stack_hits_.fetch_add(1, std::memory_order_relaxed);
          if (from_pool) *from_pool = true;
          return s;
        }
      }
    }
  }
  stack_misses_.fetch_add(1, std::memory_order_relaxed);
  return create_stack(stack_size, guard_size);
}

void SandboxResourcePool::release_stack(ExecStack* stack) {
  if (!stack) return;
  if (!enabled_.load(std::memory_order_acquire)) {
    destroy_stack(stack);
    return;
  }
  int cap = per_thread_cap_.load(std::memory_order_acquire);
  if (t_cache.acquirer && static_cast<int>(t_cache.stacks.size()) < cap) {
    t_cache.stacks.push_back(stack);
    return;
  }
  if (!pool_stack_global(stack)) {
    released_.fetch_add(1, std::memory_order_relaxed);
    destroy_stack(stack);
  }
}

TransferBuffer* SandboxResourcePool::acquire_transfer(size_t min_cap,
                                                      uint64_t tenant,
                                                      bool* from_pool) {
  if (from_pool) *from_pool = false;
  const size_t cap = round_up_pow2(min_cap);
  t_cache.transfer_acquirer = true;
  if (enabled_.load(std::memory_order_acquire)) {
    TransferBuffer* pooled = nullptr;
    // Thread-local tier first (lock-free; with locality-hinted placement
    // the same worker releases and re-acquires, so the hot invoke path
    // never touches the global mutex). Newest first — warmest cache lines.
    for (size_t i = t_cache.transfers.size(); i-- > 0;) {
      if (t_cache.transfers[i]->cap == cap) {
        pooled = t_cache.transfers[i];
        t_cache.transfers.erase(t_cache.transfers.begin() +
                                static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (!pooled) {
      std::lock_guard<std::mutex> lock(mu_);
      for (TransferBucket& bucket : transfer_buckets_) {
        if (bucket.cap == cap && !bucket.free.empty()) {
          pooled = bucket.free.back();
          bucket.free.pop_back();
          break;
        }
      }
    }
    if (pooled) {
      if (pooled->tenant != tenant) {
        // Cross-tenant reuse: scrub the previous occupant's payload, same
        // contract as zero-on-reuse linear memories.
        std::memset(pooled->data, 0, pooled->cap);
        pooled->tenant = tenant;
      }
      pooled->len = 0;
      transfer_hits_.fetch_add(1, std::memory_order_relaxed);
      transfer_outstanding_.fetch_add(1, std::memory_order_relaxed);
      if (from_pool) *from_pool = true;
      return pooled;
    }
  }
  void* data = std::calloc(1, cap);
  if (!data) return nullptr;
  TransferBuffer* tb = new TransferBuffer();
  tb->data = static_cast<uint8_t*>(data);
  tb->cap = cap;
  tb->tenant = tenant;
  transfer_misses_.fetch_add(1, std::memory_order_relaxed);
  transfer_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return tb;
}

void SandboxResourcePool::release_transfer(TransferBuffer* tb) {
  if (!tb) return;
  transfer_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (enabled_.load(std::memory_order_acquire)) {
    int cap = per_thread_cap_.load(std::memory_order_acquire);
    if (t_cache.transfer_acquirer &&
        static_cast<int>(t_cache.transfers.size()) < cap) {
      t_cache.transfers.push_back(tb);
      return;
    }
    if (pool_transfer_global(tb)) return;
  }
  released_.fetch_add(1, std::memory_order_relaxed);
  destroy_transfer(tb);
}

bool SandboxResourcePool::pool_transfer_global(TransferBuffer* tb) {
  int cap = global_cap_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  TransferBucket* bucket = nullptr;
  int64_t total = 0;
  for (TransferBucket& b : transfer_buckets_) {
    total += static_cast<int64_t>(b.free.size());
    if (b.cap == tb->cap) bucket = &b;
  }
  if (total >= cap) return false;  // reclaim watermark: release to the OS
  if (!bucket) {
    transfer_buckets_.push_back(TransferBucket{tb->cap, {}});
    bucket = &transfer_buckets_.back();
  }
  bucket->free.push_back(tb);
  return true;
}

bool SandboxResourcePool::pool_stack_global(ExecStack* stack) {
  int cap = global_cap_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(stacks_.size()) >= cap) return false;
  stacks_.push_back(stack);
  return true;
}

SandboxResourcePool::Counters SandboxResourcePool::counters() const {
  Counters c;
  c.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  c.memory_misses = memory_misses_.load(std::memory_order_relaxed);
  c.stack_hits = stack_hits_.load(std::memory_order_relaxed);
  c.stack_misses = stack_misses_.load(std::memory_order_relaxed);
  c.released = released_.load(std::memory_order_relaxed);
  c.transfer_hits = transfer_hits_.load(std::memory_order_relaxed);
  c.transfer_misses = transfer_misses_.load(std::memory_order_relaxed);
  c.transfer_outstanding =
      transfer_outstanding_.load(std::memory_order_relaxed);
  return c;
}

void SandboxResourcePool::reset_counters() {
  memory_hits_.store(0, std::memory_order_relaxed);
  memory_misses_.store(0, std::memory_order_relaxed);
  stack_hits_.store(0, std::memory_order_relaxed);
  stack_misses_.store(0, std::memory_order_relaxed);
  released_.store(0, std::memory_order_relaxed);
  transfer_hits_.store(0, std::memory_order_relaxed);
  transfer_misses_.store(0, std::memory_order_relaxed);
  // transfer_outstanding_ deliberately survives resets: it is a live gauge.
}

void SandboxResourcePool::purge() {
  t_cache.memories.clear();  // LinearMemory destructors unmap
  for (ExecStack* stack : t_cache.stacks) destroy_stack(stack);
  t_cache.stacks.clear();
  for (TransferBuffer* tb : t_cache.transfers) destroy_transfer(tb);
  t_cache.transfers.clear();

  std::vector<MemBucket> buckets;
  std::vector<ExecStack*> stacks;
  std::vector<TransferBucket> transfers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buckets.swap(mem_buckets_);
    stacks.swap(stacks_);
    transfers.swap(transfer_buckets_);
  }
  for (ExecStack* stack : stacks) destroy_stack(stack);
  for (TransferBucket& bucket : transfers) {
    for (TransferBuffer* tb : bucket.free) destroy_transfer(tb);
  }
  // `buckets` destructs here, unmapping the pooled memories.
}

}  // namespace sledge::runtime
