#include "sledge/admission.hpp"

#include <algorithm>

namespace sledge::runtime {

const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kQueueDepth: return "depth";
    case AdmissionPolicy::kExpectedSlack: return "slack";
  }
  return "?";
}

const char* to_string(AdmitVerdict v) {
  switch (v) {
    case AdmitVerdict::kAdmit: return "admit";
    case AdmitVerdict::kShedOverload: return "shed_overload";
    case AdmitVerdict::kShedDeadline: return "shed_deadline";
  }
  return "?";
}

void SlackPredictor::record(uint64_t queue_wait_ns, uint64_t exec_cpu_ns) {
  size_t slot = static_cast<size_t>(count_ % kWindow);
  queue_ring_[slot] = queue_wait_ns;
  exec_ring_[slot] = exec_cpu_ns;
  ++count_;
  // Publish fresh p99s periodically, plus once exactly at kMinSamples so
  // the first ready() read never sees zeroed percentiles.
  if (count_ % kRefreshPeriod == 0 || count_ == kMinSamples) refresh();
}

void SlackPredictor::refresh() {
  size_t n = static_cast<size_t>(std::min<uint64_t>(count_, kWindow));
  if (n == 0) return;
  std::array<uint64_t, kWindow> scratch;
  size_t rank = (n * 99) / 100;  // index of the p99 order statistic
  if (rank >= n) rank = n - 1;

  std::copy(queue_ring_.begin(), queue_ring_.begin() + n, scratch.begin());
  std::nth_element(scratch.begin(), scratch.begin() + rank,
                   scratch.begin() + n);
  uint64_t qp = scratch[rank];

  std::copy(exec_ring_.begin(), exec_ring_.begin() + n, scratch.begin());
  std::nth_element(scratch.begin(), scratch.begin() + rank,
                   scratch.begin() + n);
  uint64_t ep = scratch[rank];

  // p99s first, then the sample count: a reader that observes ready() is
  // guaranteed to read percentiles at least this fresh.
  queue_p99_.store(qp, std::memory_order_release);
  exec_p99_.store(ep, std::memory_order_release);
  published_.store(count_, std::memory_order_release);
}

int64_t AdmissionController::fair_share(int64_t max_pending, uint32_t weight,
                                        uint64_t total_weight) {
  if (max_pending <= 0) return INT64_MAX;  // caps off
  if (total_weight == 0) total_weight = 1;
  uint64_t w = weight == 0 ? 1 : weight;
  int64_t share = static_cast<int64_t>(
      (static_cast<uint64_t>(max_pending) * w) / total_weight);
  return std::max<int64_t>(1, share);
}

AdmitVerdict AdmissionController::check(const AdmitRequest& in) const {
  // Depth cap applies under both policies (the PR 1 contract).
  if (max_pending_ > 0 && in.inflight >= max_pending_) {
    return AdmitVerdict::kShedOverload;
  }
  if (policy_ != AdmissionPolicy::kExpectedSlack) {
    return AdmitVerdict::kAdmit;
  }
  // Weighted fair share: a module may not hold more than its reservation
  // of the global admission window.
  if (max_pending_ > 0 &&
      in.module_inflight >=
          fair_share(max_pending_, in.tenant_weight, in.total_weight)) {
    return AdmitVerdict::kShedOverload;
  }
  // Expected-slack gate: only meaningful with a deadline and a warmed-up
  // predictor (cold modules are admitted — the window fills fast).
  if (in.deadline_rel_ns != 0 && in.predictor_ready) {
    if (in.exec_cpu_p99_ns > in.deadline_rel_ns) {
      // Unmeetable even from an empty queue: the work itself blows the
      // deadline. 504-early — a retry won't help until the module or its
      // deadline changes.
      return AdmitVerdict::kShedDeadline;
    }
    if (in.queue_wait_p99_ns + in.exec_cpu_p99_ns > in.deadline_rel_ns) {
      // Queueing is what kills it: predicted completion past the deadline,
      // but a retry after backoff (drained queue) may well succeed. 503.
      return AdmitVerdict::kShedOverload;
    }
  }
  return AdmitVerdict::kAdmit;
}

}  // namespace sledge::runtime
