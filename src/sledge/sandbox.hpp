// A Sledge sandbox: one client request executing one Wasm function.
//
// Creation is the paper's "optimized function startup" path — it only
// allocates linear memory (via the already-loaded module), a guarded
// execution stack, and a user-level context (§4: "allocation of required
// linear memory, a dedicated stack, and a user-level context"). The
// expensive link/load happened once in WasmModule::load. All three
// per-request resources are acquired from the SandboxResourcePool and
// returned to it on destruction, so a warm start skips every mmap,
// mprotect, and guard-registration syscall of the cold path.
//
// Sandboxes are green threads: the worker swapcontext()s into them, and
// they come back by completing, blocking (cooperative I/O / sleep), or
// being preempted by the quantum timer.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "engine/engine.hpp"
#include "sledge/resource_pool.hpp"

namespace sledge::runtime {

enum class SandboxState : uint8_t {
  kAllocated,  // created, never run
  kRunnable,   // on a runqueue (or preempted)
  kRunning,    // currently on a worker core
  kBlocked,    // waiting on a wake condition (timer / fd / child sandbox)
  kComplete,   // function returned
  kFailed,     // trapped or errored
  kKilled,     // terminated by the runtime (CPU budget / deadline exceeded)
};

const char* to_string(SandboxState s);

// Why a kBlocked sandbox is parked, i.e. what wakes it (io_loop.hpp):
//   kTimer   — wake_at_ns() passing (env.sleep_ms)
//   kFdRead  — wake_fd() readable (sb_recv)
//   kFdWrite — wake_fd() writable (sb_connect in progress, sb_send EAGAIN)
//   kChild   — pending_join()->done (sb_invoke child completion)
enum class WakeKind : uint8_t { kNone, kTimer, kFdRead, kFdWrite, kChild };

const char* to_string(WakeKind k);

// How Sandbox::create obtains a sandbox's initial state (the startup-tier
// A/B knob — RuntimeConfig::instantiation / per-module override):
//   kCold     — fresh linear-memory mapping, full instantiation (mmap +
//               globals + data segments + start function). The ablation
//               baseline; bypasses the pooled memory free list.
//   kPooled   — recycled zeroed memory off the SandboxResourcePool, full
//               instantiation on top (the PR 2 warm path).
//   kSnapshot — memfd template of the post-start image mapped MAP_PRIVATE
//               (copy-on-write); globals/data/start are all skipped. Falls
//               back to kPooled when no template can be built.
enum class InstantiationMode : uint8_t { kCold, kPooled, kSnapshot };

const char* to_string(InstantiationMode m);

class Sandbox;

// Parent<->child rendezvous for sb_invoke. Shared (shared_ptr) between the
// blocked parent and the child sandbox so either side may die first — a
// parent killed at its wall deadline unwinds immediately and the child's
// completion signal lands on an orphaned (but live) join; a child abandoned
// at shutdown signals failure instead of leaving the parent parked forever.
struct InvokeJoin {
  // Written by the child's worker strictly before the `done` release-store;
  // read by the parent only after acquiring `done`.
  int32_t status = 0;  // 0 = child completed; else a SbIoError value
  std::vector<uint8_t> response;
  int waiter_worker = -1;  // worker index to notify on completion
  std::atomic<bool> done{false};

  // ---- Zero-copy (shm) dataplane ----
  //
  // When set, the request bytes live at xfer[0, request len) and the child
  // appends its response at xfer_resp_off. The loan is shared with the
  // parent's hostcall frame and the child sandbox, so the buffer returns to
  // the pool only after every party (in any death order) lets go.
  std::shared_ptr<TransferLoan> xfer;
  size_t xfer_resp_off = 0;   // response region start (16-byte aligned)
  size_t xfer_resp_len = 0;   // child's response bytes in the xfer region
  bool resp_in_xfer = false;  // response lives in xfer, not `response`
};

// How a sandbox reaches back into the runtime to spawn a child request
// (implemented by Runtime; an interface to keep sandbox.hpp free of a
// runtime.hpp cycle).
class InvokeBroker {
 public:
  virtual ~InvokeBroker() = default;
  // Admits one child request of module `name` through the normal dispatch
  // path. On success the child signals `join` when it retires. On failure
  // returns false with *err set (kSbErrNoModule / kSbErrOverload / ...).
  virtual bool invoke_child(Sandbox* parent, const std::string& name,
                            std::vector<uint8_t> request,
                            std::shared_ptr<InvokeJoin> join,
                            int32_t* err) = 0;
  // sb_invoke_stream: admits a child that INHERITS the parent's response
  // channel (HTTP connection or upstream join) — no join back to the
  // parent. On the shm dataplane `request` is empty and the payload rides
  // `loan`; otherwise `loan` is null. On failure (false, *err set) the
  // parent's channel is untouched.
  virtual bool invoke_stream_child(Sandbox* parent, const std::string& name,
                                   std::vector<uint8_t> request,
                                   std::shared_ptr<TransferLoan> loan,
                                   size_t req_len, int32_t* err) = 0;
};

class Sandbox {
 public:
  // Creation = the cheap per-request path. `module` must outlive the
  // sandbox. Returns nullptr only on resource exhaustion.
  static std::unique_ptr<Sandbox> create(
      const engine::WasmModule* module, std::vector<uint8_t> request,
      int conn_fd = -1, bool keep_alive = false,
      InstantiationMode mode = InstantiationMode::kPooled);
  ~Sandbox();

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  // Worker-side: run/resume the sandbox on the calling thread. Returns when
  // the sandbox completes, blocks or is preempted; inspect state() after.
  void dispatch(ucontext_t* scheduler_ctx);

  // Sandbox-side (host hook): block for `ns`, yielding the worker core.
  void sleep_yield(uint64_t ns);

  // ---- Async host I/O (sb_* hostcall implementations) ----
  //
  // All run on the sandbox's green-thread stack inside the engine's
  // TrapScope; any of them may block cooperatively (kBlocked + wake
  // condition) and raise a deadline trap on resume. Descriptors are indices
  // into the per-sandbox fd table (never raw OS fds), capped at
  // max_fds(): the per-tenant isolation limit.
  int32_t io_connect(const uint8_t* host, uint32_t host_len, uint32_t port);
  int32_t io_send(int32_t vfd, const uint8_t* data, uint32_t len);
  int32_t io_recv(int32_t vfd, uint8_t* buf, uint32_t cap);
  int32_t io_close(int32_t vfd);
  int32_t io_invoke(const uint8_t* name, uint32_t name_len,
                    const uint8_t* req, uint32_t req_len, uint8_t* resp,
                    uint32_t resp_cap);
  int32_t io_invoke_stream(const uint8_t* name, uint32_t name_len,
                           const uint8_t* req, uint32_t req_len);

  // Per-sandbox I/O limits and the runtime broker for sb_invoke; set at
  // admission (before the first dispatch). `depth` is this request's
  // position in an invoke chain (0 = external request) — the invoke-cycle
  // guard rejects children at max_depth.
  void set_io_config(InvokeBroker* broker, uint32_t max_fds,
                     uint32_t depth, uint32_t max_depth) {
    broker_ = broker;
    max_fds_ = max_fds;
    invoke_depth_ = depth;
    max_invoke_depth_ = max_depth;
  }
  uint32_t invoke_depth() const { return invoke_depth_; }
  uint32_t max_invoke_depth() const { return max_invoke_depth_; }
  uint32_t max_fds() const { return max_fds_; }
  size_t open_fds() const;

  // ---- Wake condition (valid while state() == kBlocked) ----
  WakeKind wake_kind() const { return wake_kind_; }
  int wake_os_fd() const { return wake_fd_; }
  const std::shared_ptr<InvokeJoin>& pending_join() const {
    return pending_join_;
  }
  // Child side: set when this sandbox is an sb_invoke child; its worker
  // signals the join at retirement instead of writing an HTTP response.
  void set_result_join(std::shared_ptr<InvokeJoin> join) {
    result_join_ = std::move(join);
  }
  const std::shared_ptr<InvokeJoin>& result_join() const {
    return result_join_;
  }

  // ---- Zero-copy (shm) invoke dataplane ----
  //
  // Set at admission alongside set_io_config; when true, this sandbox's
  // outbound sb_invoke / sb_invoke_stream calls carry their request in a
  // pooled TransferBuffer instead of a heap vector.
  void set_invoke_shm(bool on) { invoke_shm_ = on; }
  bool invoke_shm() const { return invoke_shm_; }
  // Child side (shm): read the request straight out of the loaned transfer
  // buffer. The loan is retained so the bytes outlive every death order.
  void adopt_request_view(std::shared_ptr<TransferLoan> loan, size_t req_len) {
    env_.req_view = loan->get()->data;
    env_.req_view_len = req_len;
    req_hold_ = std::move(loan);
  }
  // Child side (shm): append response bytes into the result join's transfer
  // buffer so the waiting parent reads them without a heap hop. No-op when
  // there is no join or no buffer (HTTP-channeled or copy-dataplane child).
  void wire_result_sink() {
    if (!result_join_ || !result_join_->xfer) return;
    TransferBuffer* tb = result_join_->xfer->get();
    if (result_join_->xfer_resp_off >= tb->cap) return;
    env_.resp_sink = tb->data + result_join_->xfer_resp_off;
    env_.resp_sink_cap = tb->cap - result_join_->xfer_resp_off;
    env_.resp_sink_len = 0;
  }
  // Worker side, at retirement: hand the response to the waiting parent —
  // either by publishing the sink length (bytes are already in the transfer
  // buffer) or by moving the heap vector. Must run strictly before the
  // join's `done` release-store.
  void harvest_response(InvokeJoin* join) {
    if (env_.resp_sink && join == result_join_.get()) {
      if (env_.response.empty()) {
        join->xfer_resp_len = env_.resp_sink_len;
        join->resp_in_xfer = true;
      } else {
        // Sink overflow: the oversized response spilled to the heap
        // vector; hand it over without a further copy.
        join->response = std::move(env_.response);
      }
    } else {
      // Copy dataplane: the response crosses the sandbox boundary by
      // value — the join owns its own bytes, mirroring the request-side
      // hand-off (see Runtime::invoke_child).
      join->response = env_.response;
    }
  }

  // ---- Stream hand-off (sb_invoke_stream) ----
  //
  // The broker moves the parent's response channel to the child: exactly
  // one of an HTTP connection or an upstream join transfers.
  void adopt_connection(int fd, bool keep_alive, int shard, uint64_t gen) {
    conn_fd_ = fd;
    keep_alive_ = keep_alive;
    conn_shard_ = shard;
    conn_gen_ = gen;
  }
  void release_connection() {
    conn_fd_ = -1;
    keep_alive_ = false;
    conn_gen_ = 0;
  }
  std::shared_ptr<InvokeJoin> take_result_join() {
    return std::move(result_join_);
  }

  // Marks sandboxes admitted via sb_invoke / sb_invoke_stream so completion
  // accounting can record the hand-off phase (created -> first run).
  void mark_invoke_child() { invoke_child_ = true; }
  bool is_invoke_child() const { return invoke_child_; }

  // Worker that currently owns this sandbox (dispatching it or holding it
  // blocked); -1 before first dispatch. Single-writer: the owning worker.
  void set_owner_worker(int index) { owner_worker_ = index; }
  int owner_worker() const { return owner_worker_; }

  // ---- Deadline enforcement ----
  //
  // `budget_ns` caps consumed CPU time across preemptions (0 = unlimited);
  // `deadline_abs_ns` is an absolute monotonic wall-clock deadline
  // (0 = none). Set once at admission, before the first dispatch.
  void set_limits(uint64_t budget_ns, uint64_t deadline_abs_ns) {
    budget_ns_ = budget_ns;
    deadline_at_ns_ = deadline_abs_ns;
  }
  uint64_t budget_ns() const { return budget_ns_; }
  uint64_t deadline_at_ns() const { return deadline_at_ns_; }

  // CPU time consumed so far; while running, includes the current slice.
  uint64_t cpu_consumed_ns(uint64_t now) const {
    uint64_t ns = cpu_ns_;
    if (run_started_ns_ != 0 && now > run_started_ns_) {
      ns += now - run_started_ns_;
    }
    return ns;
  }

  // True once the CPU budget or wall-clock deadline is blown. Called from
  // the quantum signal handler (same thread as the owning worker).
  bool deadline_exceeded(uint64_t now) const {
    if (budget_ns_ != 0 && cpu_consumed_ns(now) >= budget_ns_) return true;
    if (deadline_at_ns_ != 0 && now >= deadline_at_ns_) return true;
    return false;
  }

  // Asks the sandbox to die at its next safe unwind point (entry, sleep
  // resume, or quantum expiry). The worker that owns the sandbox acts on it.
  void request_kill() { kill_requested_.store(true, std::memory_order_release); }
  bool kill_requested() const {
    return kill_requested_.load(std::memory_order_acquire);
  }

  // Marks a never-run sandbox as killed without dispatching it (there is no
  // engine state to unwind yet). Only valid before the first dispatch.
  void mark_killed_undispatched();

  // Test-only fault injection: when set and returning true, create() fails
  // as if sandbox allocation were exhausted (the listener's 503 path).
  using CreateFaultHook = bool (*)();
  static void set_create_fault_hook(CreateFaultHook hook);

  // Test-only: fabricate a blocked state + wake condition without running
  // sandbox code (IoLoop unit tests stay free of ucontext switches so they
  // can run under TSan).
  void test_set_blocked(WakeKind kind, int os_fd, uint64_t wake_at_ns) {
    wake_kind_ = kind;
    wake_fd_ = os_fd;
    wake_at_ns_ = wake_at_ns;
    set_state(SandboxState::kBlocked);
  }

  SandboxState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(SandboxState s) {
    state_.store(s, std::memory_order_release);
  }

  const engine::InvokeOutcome& outcome() const { return outcome_; }
  std::vector<uint8_t>& response() { return env_.response; }
  int conn_fd() const { return conn_fd_; }
  bool keep_alive() const { return keep_alive_; }
  // Listener shard that loaned conn_fd; workers must return/discard the fd
  // to this shard (each shard has its own epoll set and connection table).
  int conn_shard() const { return conn_shard_; }
  void set_conn_shard(int shard) { conn_shard_ = shard; }
  // Loan generation of conn_fd (stamped by the listener at admission);
  // echoed in return/discard so recycled fd numbers cannot alias loans.
  uint64_t conn_gen() const { return conn_gen_; }
  void set_conn_gen(uint64_t gen) { conn_gen_ = gen; }
  uint64_t wake_at_ns() const { return wake_at_ns_; }

  uint64_t created_ns() const { return t_created_; }
  uint64_t first_run_ns() const { return t_first_run_; }
  uint64_t done_ns() const { return t_done_; }
  uint64_t startup_cost_ns() const { return startup_cost_ns_; }

  // ---- Phase tracing (observability plane) ----
  //
  // Every sandbox is stamped at admission (created_ns), first dispatch
  // (first_run_ns), each preemption/resume (dispatch/preempt counters plus
  // the cpu_ns accumulator), and completion (done_ns); the worker stamps
  // response-write-complete on the WriteJob that outlives the sandbox.
  // CPU time consumed over completed slices (== total once done).
  uint64_t cpu_ns() const { return cpu_ns_; }
  // Wall time spent blocked on I/O wake conditions (timer/fd/child),
  // measured block -> resume so it includes post-wake scheduling delay.
  uint64_t io_wait_ns() const { return io_wait_ns_; }
  uint32_t dispatch_count() const { return dispatch_count_; }
  uint32_t preempt_count() const { return preempt_count_; }
  // Quantum-handler side: runs on the owning worker's thread only.
  void note_preempted() { ++preempt_count_; }
  // Admission -> first dispatch, excluding the allocation work create()
  // itself performed (so queue_wait + startup + exec_cpu <= end_to_end).
  uint64_t queue_wait_ns() const {
    uint64_t start = t_first_run_ != 0 ? t_first_run_ : t_done_;
    uint64_t ready = t_created_ + startup_cost_ns_;
    return start > ready ? start - ready : 0;
  }
  // True when every pooled resource (memory if the module has one, stack)
  // came off a free list — the warm-start path, no allocation syscalls.
  bool pooled() const { return pooled_; }
  // True when the linear memory is a COW mapping of the module's snapshot
  // template (the snapshot startup tier; implies the start function was
  // skipped). Drives the startup_snapshot histogram split.
  bool snapshot_backed() const { return snapshot_backed_; }

  // Warm-pool adoption: re-arms a pre-built, never-dispatched sandbox with
  // a real request. `startup_ns` is the cost the request actually observed
  // (the pool pop), replacing the build-time cost for phase accounting.
  void adopt_request(std::vector<uint8_t> request, int conn_fd,
                     bool keep_alive, uint64_t startup_ns);

  ucontext_t* context() { return &stack_->ctx; }
  ucontext_t* scheduler_context() { return scheduler_ctx_; }

  // True when `p` lies on this sandbox's execution stack (above the guard
  // page). The quantum handler runs on whatever stack the signal interrupted,
  // so it probes a local's address with this to tell "inside sandbox code"
  // from the swapcontext mask-switch window (still on the scheduler stack)
  // or the trap handler's sigaltstack — contexts it must never save.
  bool on_own_stack(const void* p) const {
    const uint8_t* u = static_cast<const uint8_t*>(p);
    return stack_ != nullptr && u >= stack_->base + stack_->guard_size &&
           u < stack_->base + stack_->size;
  }

  // Opaque owner tag (the runtime stores its LoadedModule* here so workers
  // can attribute completions without a sandbox->runtime dependency).
  void* user_tag = nullptr;

 private:
  Sandbox() = default;
  static void entry_trampoline(unsigned hi, unsigned lo);
  void entry();
  // Parks the sandbox (kBlocked + wake condition), swaps to the scheduler,
  // and on resume accumulates io_wait and raises a deadline trap if a kill
  // arrived while blocked. The generalization of the old sleep-only yield.
  void block_yield(WakeKind kind, int os_fd, uint64_t wake_at_ns);
  void close_all_fds();
  int os_fd_of(int32_t vfd) const;  // -1 when vfd is invalid/closed

  const engine::WasmModule* module_ = nullptr;
  engine::WasmSandbox wasm_;
  engine::ServerlessEnv env_;
  engine::InvokeOutcome outcome_;

  std::atomic<SandboxState> state_{SandboxState::kAllocated};
  int conn_fd_ = -1;
  int conn_shard_ = 0;
  uint64_t conn_gen_ = 0;
  bool keep_alive_ = false;

  ExecStack* stack_ = nullptr;  // pooled: guarded stack + ucontext storage
  bool pooled_ = false;
  bool snapshot_backed_ = false;
  ucontext_t* scheduler_ctx_ = nullptr;  // valid while running
  uint64_t wake_at_ns_ = 0;
  WakeKind wake_kind_ = WakeKind::kNone;
  int wake_fd_ = -1;  // OS fd backing kFdRead/kFdWrite waits

  // ---- Async host I/O state ----
  std::vector<int> fd_table_;  // vfd -> OS fd (-1 = closed slot)
  uint32_t max_fds_ = 8;
  InvokeBroker* broker_ = nullptr;  // null outside the Sledge runtime
  uint32_t invoke_depth_ = 0;
  uint32_t max_invoke_depth_ = 4;
  // Held as a member (not a hostcall local) so a deadline trap's longjmp
  // unwind cannot leak the join: the destructor drops the reference.
  std::shared_ptr<InvokeJoin> pending_join_;
  std::shared_ptr<InvokeJoin> result_join_;  // set when we ARE the child
  // Keeps the transfer buffer backing env_.req_view alive (shm children).
  std::shared_ptr<TransferLoan> req_hold_;
  bool invoke_shm_ = false;
  bool invoke_child_ = false;
  int owner_worker_ = -1;
  uint64_t io_wait_ns_ = 0;

  uint64_t budget_ns_ = 0;       // CPU budget (0 = unlimited)
  uint64_t deadline_at_ns_ = 0;  // absolute wall deadline (0 = none)
  uint64_t cpu_ns_ = 0;          // CPU consumed over completed slices
  uint64_t run_started_ns_ = 0;  // nonzero while on a core
  uint32_t dispatch_count_ = 0;  // run slices (first run + resumes)
  uint32_t preempt_count_ = 0;   // quantum expiries taken
  std::atomic<bool> kill_requested_{false};
  // The engine's trap-unwind chain lives on this stack; it parks here while
  // the sandbox is descheduled (see exchange_trap_chain).
  engine::TrapFrame* trap_chain_ = nullptr;

  uint64_t t_created_ = 0;
  uint64_t t_first_run_ = 0;
  uint64_t t_done_ = 0;
  uint64_t startup_cost_ns_ = 0;  // memory+stack+context allocation time
};

}  // namespace sledge::runtime
