// sledged: the Sledge serverless runtime as a standalone server.
//
//   $ sledged config.json
//
// Config format (paper §4: "a JSON-based configuration file"):
// {
//   "port": 8080,            // 0 = pick a free port
//   "workers": 3,
//   "num_listeners": 0,      // SO_REUSEPORT accept shards; 0 = min(4, cores)
//   "quantum_us": 5000,
//   "preemption": true,
//   "policy": "work_stealing",   // | "global_lock" | "per_worker"
//   "dispatcher": "work_stealing",  // | "global_edf" | "sharded_module"
//   "scheduler": "round_robin",  // | "fifo" (run-to-completion) | "edf"
//   "admission": "depth",        // | "slack" (expected-slack + fair shares)
//   "pool": true,                // sandbox resource pool (warm startup)
//   "pool_per_thread": 8,        // free-list entries kept per thread
//   "pool_global": 64,           // global overflow cap / reclaim watermark
//   "instantiation": "pooled",   // | "cold" | "snapshot" (COW templates)
//   "warm_pool": true,           // autoscaled pre-built snapshot sandboxes
//   "warm_pool_max": 8,          // per-module cap on pre-built sandboxes
//   "warm_pool_interval_us": 2000,   // replenisher period / sizing horizon
//   "warm_pool_headroom": 1.5,   // over-provisioning factor on arrival rate
//   "warm_pool_idle_decay_ms": 2000, // idle modules decay to target 0
//   "tier": "aot",               // | "aot_o1" | "interp_fast" | "interp"
//   "bounds": "vm_guard",        // | "software" | "mpx_sim" | "none"
//   "budget_us": 0,          // per-request CPU budget; over-budget -> 504
//   "deadline_us": 0,        // wall-clock deadline from admission -> 504
//   "max_pending": 0,        // shed with 503 beyond this many in flight
//   "drain_grace_ms": 2000,  // graceful-stop bound for in-flight requests
//   "max_sandbox_fds": 8,    // per-sandbox open outbound-socket cap
//   "max_invoke_depth": 4,   // sb_invoke chain depth cap (top level = 0)
//   "invoke_dataplane": "shm",  // | "copy" (per-request vector copies)
//   "invoke_locality": true,    // place invoke children on parent's worker
//   "admin_endpoint": true,  // GET /admin/stats (JSON) + /admin/metrics
//   "access_log": "",        // per-request JSON lines file ("" = off)
//   "modules": [
//     {"name": "fib", "wasm": "path/to/fib.wasm"},
//     {"name": "ekf", "minicc": "src/apps/wasm_src/ekf.mc",
//      "budget_us": 50000, "deadline_us": 200000,   // per-module overrides
//      "tenant_weight": 2,   // fair-share weight (admission = "slack")
//      "instantiation": "snapshot",  // per-module tier (unset = inherit)
//      "invoke_dataplane": "copy"}  // | "shm" (unset = inherit global)
//   ]
// }
//
// Functions are served at POST /<name>. SIGINT/SIGTERM shut down cleanly.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "common/file_util.hpp"
#include "common/json.hpp"
#include "minicc/minicc.hpp"
#include "sledge/runtime.hpp"

using namespace sledge;

namespace {

std::atomic<bool> g_shutdown{false};
void on_signal(int) { g_shutdown.store(true); }

Result<runtime::RuntimeConfig> parse_config(const json::Value& doc) {
  runtime::RuntimeConfig cfg;
  cfg.port = static_cast<uint16_t>(doc["port"].as_int(0));
  cfg.workers = static_cast<int>(doc["workers"].as_int(3));
  cfg.num_listeners = static_cast<int>(doc["num_listeners"].as_int(0));
  cfg.quantum_us = static_cast<uint64_t>(doc["quantum_us"].as_int(5000));
  if (doc["preemption"].is_bool()) cfg.preemption = doc["preemption"].as_bool();
  cfg.execution_budget_ns =
      static_cast<uint64_t>(doc["budget_us"].as_int(0)) * 1000;
  cfg.deadline_ns = static_cast<uint64_t>(doc["deadline_us"].as_int(0)) * 1000;
  cfg.max_pending = doc["max_pending"].as_int(0);
  cfg.drain_grace_ns =
      static_cast<uint64_t>(doc["drain_grace_ms"].as_int(2000)) * 1'000'000;
  cfg.max_sandbox_fds = static_cast<int>(doc["max_sandbox_fds"].as_int(8));
  cfg.max_invoke_depth = static_cast<int>(doc["max_invoke_depth"].as_int(4));
  const std::string& dataplane = doc["invoke_dataplane"].as_string();
  if (dataplane == "copy") {
    cfg.invoke_dataplane = runtime::InvokeDataplane::kCopy;
  } else if (dataplane.empty() || dataplane == "shm") {
    cfg.invoke_dataplane = runtime::InvokeDataplane::kShm;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown invoke_dataplane: " +
                                                 dataplane);
  }
  if (doc["invoke_locality"].is_bool()) {
    cfg.invoke_locality = doc["invoke_locality"].as_bool();
  }
  if (doc["admin_endpoint"].is_bool()) {
    cfg.admin_endpoint = doc["admin_endpoint"].as_bool();
  }
  cfg.access_log_path = doc["access_log"].as_string();

  const std::string& policy = doc["policy"].as_string();
  if (policy == "global_lock") {
    cfg.policy = runtime::DistPolicy::kGlobalLock;
  } else if (policy == "per_worker") {
    cfg.policy = runtime::DistPolicy::kPerWorker;
  } else if (policy.empty() || policy == "work_stealing") {
    cfg.policy = runtime::DistPolicy::kWorkStealing;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown policy: " + policy);
  }

  const std::string& dispatcher = doc["dispatcher"].as_string();
  if (dispatcher == "global_edf") {
    cfg.dispatcher = runtime::DispatchPolicy::kGlobalEdf;
  } else if (dispatcher == "sharded_module") {
    cfg.dispatcher = runtime::DispatchPolicy::kShardedByModule;
  } else if (dispatcher.empty() || dispatcher == "work_stealing") {
    cfg.dispatcher = runtime::DispatchPolicy::kWorkStealing;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown dispatcher: " +
                                                 dispatcher);
  }

  const std::string& admission = doc["admission"].as_string();
  if (admission == "slack") {
    cfg.admission = runtime::AdmissionPolicy::kExpectedSlack;
  } else if (admission.empty() || admission == "depth") {
    cfg.admission = runtime::AdmissionPolicy::kQueueDepth;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown admission: " +
                                                 admission);
  }

  const std::string& sched = doc["scheduler"].as_string();
  if (sched == "fifo") {
    cfg.sched = runtime::SchedPolicy::kFifoRunToCompletion;
  } else if (sched == "edf") {
    cfg.sched = runtime::SchedPolicy::kEdf;
  } else if (sched.empty() || sched == "round_robin" || sched == "rr") {
    cfg.sched = runtime::SchedPolicy::kRoundRobin;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown scheduler: " +
                                                 sched);
  }

  if (doc["pool"].is_bool()) cfg.pool.enabled = doc["pool"].as_bool();
  cfg.pool.per_thread_cap = static_cast<int>(
      doc["pool_per_thread"].as_int(cfg.pool.per_thread_cap));
  cfg.pool.global_cap =
      static_cast<int>(doc["pool_global"].as_int(cfg.pool.global_cap));

  const std::string& inst = doc["instantiation"].as_string();
  if (inst == "cold") {
    cfg.instantiation = runtime::InstantiationMode::kCold;
  } else if (inst == "snapshot") {
    cfg.instantiation = runtime::InstantiationMode::kSnapshot;
  } else if (inst.empty() || inst == "pooled") {
    cfg.instantiation = runtime::InstantiationMode::kPooled;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown instantiation: " +
                                                 inst);
  }
  if (doc["warm_pool"].is_bool()) {
    cfg.warm_pool.enabled = doc["warm_pool"].as_bool();
  }
  cfg.warm_pool.max_per_module = static_cast<int>(
      doc["warm_pool_max"].as_int(cfg.warm_pool.max_per_module));
  cfg.warm_pool.replenish_interval_us = static_cast<uint64_t>(
      doc["warm_pool_interval_us"].as_int(
          static_cast<int64_t>(cfg.warm_pool.replenish_interval_us)));
  cfg.warm_pool.headroom =
      doc["warm_pool_headroom"].as_number(cfg.warm_pool.headroom);
  cfg.warm_pool.idle_decay_us =
      static_cast<uint64_t>(doc["warm_pool_idle_decay_ms"].as_int(
          static_cast<int64_t>(cfg.warm_pool.idle_decay_us / 1000))) *
      1000;

  const std::string& tier = doc["tier"].as_string();
  if (tier == "interp") {
    cfg.engine.tier = engine::Tier::kInterp;
  } else if (tier == "interp_fast") {
    cfg.engine.tier = engine::Tier::kInterpFast;
  } else if (tier == "aot_o1") {
    cfg.engine.tier = engine::Tier::kAotO0;
  } else if (tier.empty() || tier == "aot") {
    cfg.engine.tier = engine::Tier::kAot;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown tier: " + tier);
  }

  const std::string& bounds = doc["bounds"].as_string();
  if (bounds == "software") {
    cfg.engine.strategy = engine::BoundsStrategy::kSoftware;
  } else if (bounds == "mpx_sim") {
    cfg.engine.strategy = engine::BoundsStrategy::kMpxSim;
  } else if (bounds == "none") {
    cfg.engine.strategy = engine::BoundsStrategy::kNone;
  } else if (bounds.empty() || bounds == "vm_guard") {
    cfg.engine.strategy = engine::BoundsStrategy::kVmGuard;
  } else {
    return Result<runtime::RuntimeConfig>::error("unknown bounds: " + bounds);
  }
  return Result<runtime::RuntimeConfig>(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  ::setvbuf(stdout, nullptr, _IOLBF, 0);  // line-buffered even when piped
  if (argc != 2) {
    std::fprintf(stderr, "usage: sledged <config.json>\n");
    return 2;
  }
  auto text = read_file(argv[1]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.error_message().c_str());
    return 1;
  }
  auto doc = json::parse(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.error_message().c_str());
    return 1;
  }
  auto cfg = parse_config(*doc);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.error_message().c_str());
    return 1;
  }

  runtime::Runtime rt(*cfg);

  for (const json::Value& module : (*doc)["modules"].as_array()) {
    const std::string& name = module["name"].as_string();
    if (name.empty()) {
      std::fprintf(stderr, "module without a name\n");
      return 1;
    }
    std::vector<uint8_t> wasm_bytes;
    if (module["wasm"].is_string()) {
      auto bytes = read_file(module["wasm"].as_string());
      if (!bytes.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     bytes.error_message().c_str());
        return 1;
      }
      wasm_bytes.assign(bytes->begin(), bytes->end());
    } else if (module["minicc"].is_string()) {
      auto src = read_file(module["minicc"].as_string());
      if (!src.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     src.error_message().c_str());
        return 1;
      }
      auto wasm = minicc::compile_to_wasm(*src);
      if (!wasm.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     wasm.error_message().c_str());
        return 1;
      }
      wasm_bytes = wasm.take();
    } else {
      std::fprintf(stderr, "module %s needs \"wasm\" or \"minicc\"\n",
                   name.c_str());
      return 1;
    }
    runtime::ModuleLimits limits;
    limits.execution_budget_ns =
        static_cast<uint64_t>(module["budget_us"].as_int(0)) * 1000;
    limits.deadline_ns =
        static_cast<uint64_t>(module["deadline_us"].as_int(0)) * 1000;
    limits.tenant_weight =
        static_cast<uint32_t>(module["tenant_weight"].as_int(0));
    const std::string& mod_inst = module["instantiation"].as_string();
    if (mod_inst == "cold") {
      limits.instantiation = runtime::InstantiationOverride::kCold;
    } else if (mod_inst == "pooled") {
      limits.instantiation = runtime::InstantiationOverride::kPooled;
    } else if (mod_inst == "snapshot") {
      limits.instantiation = runtime::InstantiationOverride::kSnapshot;
    } else if (!mod_inst.empty()) {
      std::fprintf(stderr, "module %s: unknown instantiation: %s\n",
                   name.c_str(), mod_inst.c_str());
      return 1;
    }
    const std::string& mod_dataplane = module["invoke_dataplane"].as_string();
    if (mod_dataplane == "copy") {
      limits.invoke_dataplane = runtime::InvokeDataplaneOverride::kCopy;
    } else if (mod_dataplane == "shm") {
      limits.invoke_dataplane = runtime::InvokeDataplaneOverride::kShm;
    } else if (!mod_dataplane.empty()) {
      std::fprintf(stderr, "module %s: unknown invoke_dataplane: %s\n",
                   name.c_str(), mod_dataplane.c_str());
      return 1;
    }
    Status s = rt.register_module(name, wasm_bytes, limits);
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    std::printf("loaded /%s (%zu bytes)\n", name.c_str(), wasm_bytes.size());
  }

  Status s = rt.start();
  if (!s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("sledged on 127.0.0.1:%u — Ctrl-C to stop\n", rt.bound_port());
  if (cfg->admin_endpoint) {
    std::printf("live stats: GET /admin/stats (JSON), /admin/metrics "
                "(Prometheus)\n");
  }

  ::signal(SIGINT, on_signal);
  ::signal(SIGTERM, on_signal);
  while (!g_shutdown.load()) ::usleep(100000);

  rt.stop();  // drains in-flight requests (bounded by drain_grace_ms)
  std::printf("\n%s", rt.stats_report().c_str());
  return 0;
}
