// Per-worker scheduling policy, extracted from Worker's embedded run queue.
//
// The policy owns the worker-local set of runnable sandboxes and decides
// (a) which one runs next and (b) whether the quantum timer may preempt it:
//
//   kRoundRobin          — the paper's default (§3.4): FIFO queue, preempted
//                          sandboxes rotate to the tail, quantum timer armed.
//   kFifoRunToCompletion — admission order, no preemption ever: the timer is
//                          never armed, so a dispatched sandbox keeps the
//                          core until it completes, blocks, or traps.
//   kEdf                 — earliest-deadline-first over the absolute
//                          wall-clock deadlines set at admission
//                          (Sandbox::deadline_at_ns, PR 1); deadline-less
//                          sandboxes sort last, ties break FIFO. Preemption
//                          stays quantum-granular: a newly arrived tighter
//                          deadline is picked at the next quantum expiry or
//                          yield, not instantly.
//
// Policies are per-worker and single-threaded: only the owning worker
// touches its instance (the cross-thread handoff stays in Distributor).
#pragma once

#include <cstdint>
#include <memory>

#include "sledge/sandbox.hpp"

namespace sledge::runtime {

enum class SchedPolicy : uint8_t {
  kRoundRobin = 0,
  kFifoRunToCompletion = 1,
  kEdf = 2,
};

const char* to_string(SchedPolicy p);

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual SchedPolicy kind() const = 0;

  // Adds a runnable sandbox: a fresh admission or a preempted/woken one.
  virtual void enqueue(Sandbox* sb) = 0;

  // Pops the sandbox to run next, or nullptr when empty.
  virtual Sandbox* pick_next() = 0;

  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // False = run-to-completion: the worker must not arm the quantum timer.
  virtual bool allows_preemption() const = 0;

  // True = the worker should drain every available distributor entry into
  // the policy before picking (EDF needs the full candidate set to order by
  // deadline; RR keeps the paper's one-admission-per-iteration fairness).
  virtual bool admit_eagerly() const = 0;

  static std::unique_ptr<SchedulerPolicy> make(SchedPolicy kind);
};

}  // namespace sledge::runtime
